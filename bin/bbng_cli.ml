(* bbng — command-line laboratory for bounded budget network creation
   games.

   Subcommands:
     construct   build one of the paper's equilibrium families
     verify      certify a serialized profile as a Nash equilibrium
     dynamics    run best-response dynamics from a random start
     opt         OPT diameter bounds (and exact value when feasible)
     kcenter     solve k-center on a G(n,p) instance via Theorem 2.1

   Profiles are serialized as semicolon-separated target lists, e.g.
   "1,2;0;0" is the 3-player profile S_0={1,2}, S_1={0}, S_2={0}. *)

open Cmdliner
open Bbng_core
module Obs = Bbng_obs

(* --- shared term fragments --- *)

let ( let* ) = Result.bind

(* [die] is exit-on-error: unlike a clean exit it leaves an open
   --report stream as FILE.partial (a replayable prefix announcing an
   aborted run) instead of committing it over the previous FILE. *)
let exiting_dirty = ref false

let die code =
  exiting_dirty := true;
  Obs.Ledger.note_exit code;
  Stdlib.exit code

(* Non-zero exit for a run that completed cleanly (the report still
   commits) but whose answer is "no" — verification failure, replay
   divergence, a regressed runs diff.  Unlike [die] it leaves
   [exiting_dirty] unset. *)
let exit_failed code =
  Obs.Ledger.note_exit code;
  Stdlib.exit code

(* Observability setup, shared by every subcommand: [--stats] prints a
   counter/span summary to stderr on exit; [--report FILE.jsonl]
   streams structured events to FILE and appends a final [run.summary]
   event with the counter and span totals.  Both leave the default
   Null sink untouched when absent, so unobserved runs pay nothing. *)
let obs_term =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print a counter/span summary to stderr when the run exits.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE.jsonl"
          ~doc:
            "Stream structured events (one JSON object per line) to \
             $(docv), ending with a run.summary event.  Pass '-' to \
             write JSONL to stdout, enabling pipelines like \
             $(b,bbng_cli dynamics --report - | bbng_cli report \
             --summarize -).")
  in
  let fault =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"POINT@ACTION[@N]"
          ~doc:
            "Arm a fault-injection probe (repeatable).  ACTION is one of \
             raise, kill, exit:N, delay:MS — e.g. $(b,--fault \
             sink.dynamics.step@kill@20) SIGKILLs the process as the 20th \
             dynamics step is emitted.  The $(b,BBNG_FAULT) environment \
             variable takes the same specs, comma-separated.")
  in
  let engine =
    Arg.(
      value & opt string "auto"
      & info [ "eval-engine" ] ~docv:"bfs|rows|auto"
          ~doc:
            "Deviation pricing engine for exact searches: $(b,bfs) runs one \
             BFS per candidate strategy, $(b,rows) combines cached \
             per-target distance rows in O(b*n) per candidate, $(b,auto) \
             (default) picks rows for players with budget >= 2.  Both \
             engines are exact; certificates record which one priced them \
             and $(b,verify) re-prices through the other.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE.prom"
          ~doc:
            "Maintain an OpenMetrics/Prometheus text snapshot of the live \
             counter, gauge and histogram registries at $(docv), rewritten \
             atomically on every progress heartbeat ($(b,BBNG_HEARTBEAT_MS) \
             tunes the cadence, default 1000).  The file is always a \
             complete, parseable exposition — scrape it, or watch the run \
             with $(b,bbng_cli top).")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE.folded"
          ~doc:
            "Write call-path folded stacks on exit: self-time (wall ns) to \
             $(docv) and self-allocation (minor words) to \
             $(i,FILE.alloc.folded), both flamegraph.pl/speedscope \
             compatible.  Implies span collection; see also $(b,bbng_cli \
             flame) for profiling an already-recorded report.")
  in
  let setup stats report faults engine metrics_out profile_out =
    let rec arm = function
      | [] -> Ok ()
      | s :: rest -> (
          match Obs.Fault.parse s with
          | Ok spec ->
              Obs.Fault.arm spec;
              arm rest
          | Error msg -> Error (Printf.sprintf "bad --fault spec: %s" msg))
    in
    match
      let* () = arm faults in
      match Bbng_core.Deviation_eval.choice_of_name engine with
      | Some choice ->
          Bbng_core.Deviation_eval.set_default_choice choice;
          Ok ()
      | None ->
          Error
            (Printf.sprintf "bad --eval-engine %S (expected bfs, rows or auto)"
               engine)
    with
    | Error _ as e -> e
    | Ok () ->
        if stats || report <> None || profile_out <> None then begin
          Obs.Span.set_enabled true;
          (* call-path attribution rides on the same span enter/exit
             points; enabling it with spans keeps --stats' self-time
             top-10 and --profile's folded output in agreement *)
          Obs.Profile.set_enabled true
        end;
        let metrics_result =
          match metrics_out with
          | None -> Ok ()
          | Some path -> (
              (* arm the heartbeat scrape file, and write the first
                 snapshot right now: an unwritable path fails before
                 any work runs, and the file exists from the first
                 moment a scraper could look *)
              Obs.Progress.set_metrics_out (Some path);
              match Obs.Openmetrics.write path with
              | () -> Ok ()
              | exception Sys_error e ->
                  Error (Printf.sprintf "cannot write metrics file %S: %s" path e))
        in
        let result =
          let* () = metrics_result in
          match report with
          | None -> Ok ()
          | Some "-" ->
              Obs.Sink.add (Obs.Sink.Jsonl stdout);
              at_exit (fun () ->
                  (* closing heartbeats first, so they land inside the
                     stream before the summary line ends it *)
                  Obs.Progress.finalize ();
                  Obs.Sink.emit "run.summary" (Obs.Stats.summary_fields ());
                  flush stdout);
              Ok ()
          | Some file -> (
              (* Fail before any work runs: an unwritable --report path
                 is a usage error, not something to discover after
                 minutes of dynamics.

                 The stream lands in FILE.partial and is atomically
                 promoted to FILE on exit, so a crashed or SIGKILLed run
                 leaves any previous FILE untouched and the partial as a
                 valid replayable JSONL prefix (resumable with
                 [dynamics --resume]). *)
              match Obs.Atomic_io.open_stream file with
              | exception Sys_error e ->
                  Error (Printf.sprintf "cannot open report file %S: %s" file e)
              | oc ->
                  Obs.Sink.add (Obs.Sink.Jsonl oc);
                  (* the ledger row will digest whichever of FILE /
                     FILE.partial the exit leaves behind *)
                  Obs.Ledger.note_report file;
                  at_exit (fun () ->
                      Obs.Progress.finalize ();
                      Obs.Sink.emit "run.summary" (Obs.Stats.summary_fields ());
                      Obs.Sink.flush_all ();
                      close_out_noerr oc;
                      if not !exiting_dirty then Obs.Atomic_io.commit_stream file);
                  Ok ())
        in
        let result =
          let* () = result in
          match profile_out with
          | None -> Ok ()
          | Some path -> (
              (* fail-fast writability probe on the temp name, so an
                 unusable path never clobbers an existing .folded *)
              let tmp = Obs.Atomic_io.tmp_path path in
              match open_out tmp with
              | exception Sys_error e ->
                  Error (Printf.sprintf "cannot write profile file %S: %s" path e)
              | oc ->
                  close_out_noerr oc;
                  (try Sys.remove tmp with Sys_error _ -> ());
                  (* registered after the report hook, so at_exit's LIFO
                     order exports the profile before the report stream
                     commits: a crash mid-export leaves the report as a
                     replayable .partial *)
                  at_exit (fun () -> Obs.Profile.write_folded path);
                  Ok ())
        in
        if stats then at_exit (fun () -> Obs.Stats.print stderr);
        result
  in
  Term.term_result'
    Term.(
      const setup $ stats $ report $ fault $ engine $ metrics_out $ profile_out)

(* Deadline/work-budget flags, shared by the deadline-aware
   subcommands.  Absent flags yield the shared unlimited token, which
   costs nothing in the hot loops. *)
let budget_term =
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget in milliseconds.  When it expires, exact \
             searches degrade to typed partial results (degraded \
             certificates, interrupted dynamics) instead of running \
             unboundedly.")
  in
  let max_work =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-work" ] ~docv:"UNITS"
          ~doc:
            "Work budget in vertex-visit units (one BFS costs about n).  \
             Deterministic counterpart of $(b,--deadline-ms).")
  in
  let make deadline_ms work_limit =
    match (deadline_ms, work_limit) with
    | None, None -> Obs.Budgeted.unlimited
    | _ -> Obs.Budgeted.create ?deadline_ms ?work_limit ()
  in
  Term.(const make $ deadline $ max_work)

let version_term =
  let parse = function
    | "max" | "MAX" -> Ok Cost.Max
    | "sum" | "SUM" -> Ok Cost.Sum
    | s -> Error (`Msg (Printf.sprintf "unknown version %S (max|sum)" s))
  in
  let print ppf v = Format.pp_print_string ppf (Cost.version_name v) in
  Arg.(
    value
    & opt (conv (parse, print)) Cost.Sum
    & info [ "cost"; "c" ] ~docv:"VERSION" ~doc:"Cost version: max or sum.")

let seed_term =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let budgets_term =
  let parse s =
    try
      Ok
        (Budget.of_list
           (List.map int_of_string (String.split_on_char ',' (String.trim s))))
    with _ -> Error (`Msg "budgets must look like 0,1,2,1")
  in
  let print ppf b = Budget.pp ppf b in
  Arg.(
    required
    & opt (some (conv (parse, print))) None
    & info [ "budgets"; "b" ] ~docv:"B1,B2,..." ~doc:"Budget vector.")

(* Optional variant for subcommands where the instance can come from
   elsewhere (dynamics --resume reads it out of the recording). *)
let budgets_opt_term =
  let parse s =
    try
      Ok
        (Budget.of_list
           (List.map int_of_string (String.split_on_char ',' (String.trim s))))
    with _ -> Error (`Msg "budgets must look like 0,1,2,1")
  in
  let print ppf b = Budget.pp ppf b in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "budgets"; "b" ] ~docv:"B1,B2,..."
        ~doc:"Budget vector (not needed with --resume).")

(* A recording name and its commit sibling: RUN.jsonl.partial is
   renamed to RUN.jsonl the instant the writer exits cleanly, so any
   offline consumer handed one name must try the other before failing —
   otherwise `flame RUN.jsonl.partial` races the commit it has no way
   to see. *)
let sibling_recording p =
  if Filename.check_suffix p ".partial" then Filename.chop_suffix p ".partial"
  else p ^ ".partial"

let resolve_recording input =
  if input = "-" || Sys.file_exists input then input
  else
    let s = sibling_recording input in
    if Sys.file_exists s then begin
      Printf.eprintf "bbng: %s not found, reading %s\n" input s;
      s
    end
    else input

(* Shared flight-recording reader: '-' is stdin; a just-renamed
   .partial resolves to its final sibling (and vice versa); open
   failures are IO errors (4), never backtraces. *)
let read_events_or_exit input =
  let input = resolve_recording input in
  let events, skipped =
    if input = "-" then Obs.Trace_export.read_events stdin
    else
      match open_in input with
      | exception Sys_error e ->
          Printf.eprintf "bbng: cannot open recording: %s\n" e;
          die Obs.Exit_code.io_error
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Obs.Trace_export.read_events ic)
  in
  if skipped > 0 then
    Printf.eprintf "bbng: skipped %d non-event line%s\n" skipped
      (if skipped = 1 then "" else "s");
  events

let report_profile version profile =
  let game = Game.make version (Strategy.budgets profile) in
  Format.printf "profile:   %s@." (Strategy.to_string profile);
  Format.printf "graph:     %a@." Bbng_graph.Digraph.pp (Strategy.realize profile);
  Format.printf "diameter:  %d@." (Game.social_cost game profile);
  Format.printf "welfare:   %d@." (Game.social_welfare game profile);
  Format.printf "verdict:   %a@." Equilibrium.pp_verdict
    (Equilibrium.certify game profile)

(* --- construct --- *)

let construct_cmd =
  let family =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FAMILY"
          ~doc:
            "One of: existence (needs --budgets), tripod (needs --k), binary \
             (needs --depth), sun (needs --n), shift (needs --t and --k).")
  in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Family parameter k.") in
  let t = Arg.(value & opt int 4 & info [ "t" ] ~docv:"T" ~doc:"Shift-graph digit count t.") in
  let depth = Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc:"Binary tree depth.") in
  let n = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Player count.") in
  let budgets =
    Arg.(
      value
      & opt (some string) None
      & info [ "budgets"; "b" ] ~docv:"B1,B2,..." ~doc:"Budget vector (existence).")
  in
  let run () family version k t depth n budgets =
    let open Bbng_constructions in
    match family with
    | "existence" -> (
        match budgets with
        | None -> `Error (false, "existence requires --budgets")
        | Some s ->
            let b =
              Budget.of_list (List.map int_of_string (String.split_on_char ',' s))
            in
            Format.printf "case: %s@." (Existence.case_name (Existence.case_of b));
            report_profile version (Existence.construct b);
            `Ok ())
    | "tripod" ->
        report_profile version (Tripod.profile ~k);
        `Ok ()
    | "binary" ->
        report_profile version (Binary_tree.profile ~depth);
        `Ok ()
    | "sun" ->
        report_profile version (Unit_budget.concentrated_sun ~n);
        `Ok ()
    | "shift" ->
        if version = Cost.Sum then
          Format.printf
            "note: the shift construction is a MAX-version equilibrium; pass -c max@.";
        let c = Shift_graph.certificate ~t ~k in
        Format.printf "lemma 5.2 certificate: n=%d maxdeg=%d valid=%b@."
          c.Shift_graph.n c.Shift_graph.max_degree c.Shift_graph.valid;
        if c.Shift_graph.n <= 64 then report_profile version (Shift_graph.profile ~t ~k)
        else
          Format.printf
            "(n too large to print/certify directly; the certificate stands)@.";
        `Ok ()
    | other -> `Error (false, Printf.sprintf "unknown family %S" other)
  in
  let info =
    Cmd.info "construct" ~doc:"Build one of the paper's equilibrium families."
  in
  Cmd.v info
    Term.(
      ret (const run $ obs_term $ family $ version_term $ k $ t $ depth $ n $ budgets))

(* --- verify --- *)

let pp_evidence_summary ppf (cert : Equilibrium.certificate) =
  let tally = Hashtbl.create 4 in
  let scanned = ref 0 in
  List.iter
    (fun (_, a) ->
      let name = Best_response.tier_name a.Best_response.tier in
      Hashtbl.replace tally name
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally name));
      scanned := !scanned + a.Best_response.scanned)
    cert.Equilibrium.cert_evidence;
  let tiers =
    List.filter_map
      (fun t ->
        match Hashtbl.find_opt tally t with
        | Some c -> Some (Printf.sprintf "%s: %d" t c)
        | None -> None)
      [ "exact"; "swap"; "lemma-2.2"; "cost-floor"; "degraded" ]
  in
  Format.fprintf ppf "%d player%s — %s; %d candidate%s scanned"
    (List.length cert.Equilibrium.cert_evidence)
    (if List.length cert.Equilibrium.cert_evidence = 1 then "" else "s")
    (String.concat ", " tiers) !scanned
    (if !scanned = 1 then "" else "s")

let verify_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROFILE|CERT.json"
          ~doc:
            "A serialized profile (e.g. \"1,2;0;0\") to certify, or the \
             path of a previously written certificate artifact to \
             independently re-check.  An existing file is treated as a \
             certificate.")
  in
  let cert_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ] ~docv:"OUT.json"
          ~doc:
            "Write the certification's evidence (per-player tier, \
             candidates scanned, best deviation) as a single-line JSON \
             certificate artifact to $(docv).  Re-check later with \
             $(b,bbng_cli verify OUT.json).")
  in
  let swap =
    Arg.(
      value & flag
      & info [ "swap" ]
          ~doc:"Certify swap stability instead of exact Nash (polynomial).")
  in
  let par =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:"Fan the per-player checks out over domains (same certificate).")
  in
  let samples =
    Arg.(
      value & opt int 32
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "When re-checking a certificate: random non-recorded \
             candidates re-evaluated per exhaustively scanned player.")
  in
  let verify_artifact path samples =
    match Equilibrium.read_certificate path with
    | Error msg ->
        (* a file that exists but doesn't parse as a certificate is bad
           input, not CLI misuse: taxonomy code 2, message names the
           file *)
        Printf.eprintf "bbng: %s: %s\n" path msg;
        die Obs.Exit_code.input_error
    | Ok cert -> (
        Format.printf "certificate: %s (mode %s, %s, %a)@." path
          (Equilibrium.mode_name cert.Equilibrium.cert_mode)
          (Cost.version_name cert.Equilibrium.cert_version)
          pp_evidence_summary cert;
        Format.printf "recorded verdict: %a@." Equilibrium.pp_verdict
          (Equilibrium.certificate_verdict cert);
        match Equilibrium.verify_certificate ~samples cert with
        | Ok () ->
            Format.printf "independent re-check: OK (%d samples/player)@."
              samples;
            `Ok ()
        | Error msg ->
            Format.eprintf "independent re-check FAILED: %s@." msg;
            Obs.Ledger.note_outcome "recheck-failed";
            exit_failed 1)
  in
  let certify_profile version profile cert_out swap par budget =
    let game = Game.make version (Strategy.budgets profile) in
    let cert =
      if swap then Equilibrium.certify_swap_cert ~budget game profile
      else if par then Equilibrium.certify_parallel_cert ~budget game profile
      else Equilibrium.certify_cert ~budget game profile
    in
    Format.printf "profile:   %s@." (Strategy.to_string profile);
    Format.printf "graph:     %a@." Bbng_graph.Digraph.pp
      (Strategy.realize profile);
    Format.printf "diameter:  %d@." (Game.social_cost game profile);
    Format.printf "welfare:   %d@." (Game.social_welfare game profile);
    Format.printf "verdict:   %a@." Equilibrium.pp_verdict
      (Equilibrium.certificate_verdict cert);
    Format.printf "evidence:  %a@." pp_evidence_summary cert;
    (match cert_out with
    | None -> ()
    | Some path ->
        Equilibrium.write_certificate path cert;
        Format.printf "wrote %s@." path);
    `Ok ()
  in
  let run () version target cert_out swap par samples budget =
    if Sys.file_exists target then verify_artifact target samples
    else
      match Strategy.of_string target with
      | exception Invalid_argument msg -> `Error (false, msg)
      | profile -> certify_profile version profile cert_out swap par budget
  in
  let info =
    Cmd.info "verify"
      ~doc:
        "Certify a serialized profile (optionally writing a certificate \
         artifact), or independently re-check a certificate file."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ obs_term $ version_term $ target $ cert_out $ swap $ par
        $ samples $ budget_term))

(* --- certify: the profile-certification half of verify, with an
   unambiguous positional (never interpreted as a file path) --- *)

let certify_cmd =
  let profile_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROFILE"
          ~doc:"A serialized profile to certify, e.g. \"1,2;0;0\".")
  in
  let cert_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ] ~docv:"OUT.json"
          ~doc:
            "Write the evidence as a single-line JSON certificate \
             artifact (crash-safe: temp file + atomic rename).  A \
             deadline-degraded certificate carries a $(i,degraded) \
             provenance field and still passes $(b,bbng_cli verify).")
  in
  let swap =
    Arg.(
      value & flag
      & info [ "swap" ]
          ~doc:"Certify swap stability instead of exact Nash (polynomial).")
  in
  let par =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:"Fan the per-player checks out over domains (same certificate).")
  in
  let run () version profile_str cert_out swap par budget =
    match Strategy.of_string profile_str with
    | exception Invalid_argument msg -> `Error (false, msg)
    | profile ->
        let game = Game.make version (Strategy.budgets profile) in
        let cert =
          if swap then Equilibrium.certify_swap_cert ~budget game profile
          else if par then
            Equilibrium.certify_parallel_cert ~budget game profile
          else Equilibrium.certify_cert ~budget game profile
        in
        Format.printf "profile:   %s@." (Strategy.to_string profile);
        Format.printf "verdict:   %a@." Equilibrium.pp_verdict
          (Equilibrium.certificate_verdict cert);
        Format.printf "evidence:  %a@." pp_evidence_summary cert;
        (match cert_out with
        | None -> ()
        | Some path ->
            Equilibrium.write_certificate path cert;
            Format.printf "wrote %s@." path);
        `Ok ()
  in
  let info =
    Cmd.info "certify"
      ~doc:
        "Certify a serialized profile under an optional deadline/work \
         budget; an expired budget yields a degraded certificate (typed \
         partial evidence), never a crash."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ obs_term $ version_term $ profile_arg $ cert_out $ swap
        $ par $ budget_term))

(* --- dynamics --- *)

let dynamics_cmd =
  let steps =
    Arg.(value & opt int 10_000 & info [ "max-steps" ] ~docv:"STEPS" ~doc:"Step budget.")
  in
  let rule =
    let parse = function
      | "best" -> Ok Bbng_dynamics.Dynamics.Exact_best
      | "first" -> Ok Bbng_dynamics.Dynamics.First_improving
      | "swap" -> Ok Bbng_dynamics.Dynamics.Best_swap
      | "first-swap" -> Ok Bbng_dynamics.Dynamics.First_swap
      | s -> Error (`Msg (Printf.sprintf "unknown rule %S" s))
    in
    let print ppf r =
      Format.pp_print_string ppf (Bbng_dynamics.Dynamics.rule_name r)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Bbng_dynamics.Dynamics.Exact_best
      & info [ "rule" ] ~docv:"RULE" ~doc:"Move rule: best|first|swap|first-swap.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Show every improving move (routed through the pretty event \
             sink, so it matches --report's JSONL line for line).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"REPORT.jsonl"
          ~doc:
            "Resume a recorded run: re-apply (and verify) the recorded \
             step prefix, then continue the dynamics from its last \
             consistent state.  Accepts interrupted runs and \
             crash-truncated .partial recordings; version, budgets and \
             rule come from the recording.")
  in
  let finish_run game rule budget steps seed extra_meta start =
    let outcome =
      Bbng_dynamics.Dynamics.run ~max_steps:steps ~budget
        ~meta:(("seed", Obs.Json.Int seed) :: extra_meta)
        game ~schedule:Bbng_dynamics.Schedule.Round_robin ~rule start
    in
    Format.printf "outcome: %s after %d steps@."
      (Bbng_dynamics.Dynamics.outcome_name outcome)
      (Bbng_dynamics.Dynamics.steps outcome);
    report_profile (Game.version game)
      (Bbng_dynamics.Dynamics.final_profile outcome);
    `Ok ()
  in
  let run () version budgets seed steps rule trace resume budget =
    (* --trace is just the pretty sink: the same dynamics.step events a
       --report file receives, rendered for humans on stderr. *)
    if trace then Obs.Sink.add Obs.Sink.Stderr_pretty;
    match resume with
    | Some file -> (
        let events = read_events_or_exit file in
        match Obs.Replay.runs_of_events events with
        | [] ->
            Printf.eprintf "bbng: %s: no recorded dynamics runs\n" file;
            die Obs.Exit_code.input_error
        | runs -> (
            (* the last run is the one a crash truncated *)
            let r = List.nth runs (List.length runs - 1) in
            match Bbng_dynamics.Replay.resume_state r with
            | Error d ->
                Printf.eprintf
                  "bbng: %s: recorded prefix diverges at step %d: %s\n" file
                  d.Bbng_dynamics.Replay.at_step d.Bbng_dynamics.Replay.reason;
                die Obs.Exit_code.input_error
            | Ok (game, profile, done_steps) ->
                let rule =
                  match
                    Option.bind r.Obs.Replay.rule
                      Bbng_dynamics.Dynamics.rule_of_name
                  with
                  | Some recorded -> recorded
                  | None -> rule
                in
                Format.printf "resumed: %s at step %d, profile %s@." file
                  done_steps
                  (Strategy.to_string profile);
                finish_run game rule budget steps seed
                  [
                    ("resumed_from", Obs.Json.Str file);
                    ("resumed_at_step", Obs.Json.Int done_steps);
                  ]
                  profile))
    | None -> (
        match budgets with
        | None -> `Error (true, "either --budgets or --resume is required")
        | Some budgets ->
            let game = Game.make version budgets in
            let start = Strategy.random (Random.State.make [| seed |]) budgets in
            Format.printf "start: %s (diameter %d)@."
              (Strategy.to_string start)
              (Game.social_cost game start);
            finish_run game rule budget steps seed [] start)
  in
  let info =
    Cmd.info "dynamics"
      ~doc:
        "Run best-response dynamics from a random start, or resume a \
         recorded run."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ obs_term $ version_term $ budgets_opt_term $ seed_term
        $ steps $ rule $ trace $ resume $ budget_term))

(* --- opt --- *)

let opt_cmd =
  let run () budgets =
    let lo, hi = Poa.opt_diameter_bounds budgets in
    Format.printf "instance: %a (%s)@." Budget.pp budgets
      (Budget.class_name (Budget.classify budgets));
    Format.printf "OPT diameter bounds: [%d, %d]@." lo hi;
    (match Poa.opt_diameter_exact ~max_profiles:500_000 budgets with
    | Some opt -> Format.printf "OPT diameter exact:  %d@." opt
    | None -> Format.printf "OPT diameter exact:  (instance too large)@.");
    let witness = Poa.canonical_low_diameter_realization budgets in
    Format.printf "witness realization: %s@." (Strategy.to_string witness)
  in
  let info = Cmd.info "opt" ~doc:"Minimum diameter over realizations of an instance." in
  Cmd.v info Term.(const run $ obs_term $ budgets_term)

(* --- kcenter (Theorem 2.1 in action) --- *)

let kcenter_cmd =
  let n = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Vertices.") in
  let p = Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Centers.") in
  let graph_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph" ] ~docv:"FILE"
          ~doc:
            "Read the instance from an edge-list file (header \"graph N\", \
             one \"u v\" edge per line, # comments) instead of sampling \
             G(n,p); see $(b,bbng_cli export -f text).")
  in
  let load_graph file =
    let text =
      match open_in file with
      | exception Sys_error e ->
          Printf.eprintf "bbng: cannot read graph file: %s\n" e;
          die Obs.Exit_code.io_error
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Bbng_graph.Serialize.Undirected_io.of_text text with
    | exception Invalid_argument msg ->
        (* taxonomy: malformed input names the file, exits 2 — never a
           backtrace *)
        Printf.eprintf "bbng: %s: malformed graph file: %s\n" file msg;
        die Obs.Exit_code.input_error
    | g -> g
  in
  let run () n p k seed graph_file budget =
    let g =
      match graph_file with
      | Some file -> load_graph file
      | None ->
          Bbng_graph.Generators.random_connected_gnp
            (Random.State.make [| seed |])
            ~n ~p
    in
    Format.printf "graph: %a@." Bbng_graph.Undirected.pp g;
    let show tag (s : Bbng_solvers.K_center.solution) =
      Format.printf "%s: radius %d, centers {%s}@." tag
        s.Bbng_solvers.K_center.radius
        (String.concat ","
           (List.map string_of_int (Array.to_list s.Bbng_solvers.K_center.centers)))
    in
    match Bbng_solvers.K_center.exact_within ~budget g ~k with
    | Obs.Budgeted.Exhausted ->
        Printf.eprintf
          "bbng: k-center budget exhausted before any candidate was priced\n";
        die Obs.Exit_code.exhausted
    | Obs.Budgeted.Degraded s ->
        show "degraded solver   " s;
        Format.printf
          "(budget expired: radius %d is an upper bound, not proven optimal)@."
          s.Bbng_solvers.K_center.radius
    | Obs.Budgeted.Complete direct ->
        let via = Bbng_solvers.Reduction.solve_center_via_game g ~k in
        show "direct solver     " direct;
        show "via best response " via;
        Format.printf "agreement (Theorem 2.1): %b@."
          (direct.Bbng_solvers.K_center.radius = via.Bbng_solvers.K_center.radius)
  in
  let info =
    Cmd.info "kcenter" ~doc:"Solve k-center through the Theorem 2.1 reduction."
  in
  Cmd.v info
    Term.(const run $ obs_term $ n $ p $ k $ seed_term $ graph_file $ budget_term)

(* --- fip: improvement-graph analysis --- *)

let fip_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit the improvement graph as Graphviz DOT.")
  in
  let run () version budgets dot =
    let module Ig = Bbng_dynamics.Improvement_graph in
    let profiles = Equilibrium.count_profiles budgets in
    if profiles > 100_000 then
      Format.printf "instance has %d profiles; the exact improvement graph is for small instances@." profiles
    else begin
      let game = Game.make version budgets in
      let t = Ig.build game in
      if dot then print_string (Ig.to_dot t)
      else begin
        Format.printf "profiles: %d, improving arcs: %d@."
          (Array.length t.Ig.profiles) (List.length t.Ig.arcs);
        Format.printf "sinks (Nash equilibria): %d@." (List.length t.Ig.sinks);
        if t.Ig.has_cycle then
          Format.printf "improvement graph HAS A CYCLE: better-response dynamics can loop@."
        else begin
          Format.printf
            "acyclic: the finite improvement property holds (worst improving path: %d steps)@."
            t.Ig.longest_path_lower_bound;
          match Ig.potential t with
          | Some phi ->
              let maxp = Array.fold_left max 0 phi in
              Format.printf "ordinal potential extracted (range 0..%d)@." maxp
          | None -> ()
        end
      end
    end
  in
  let info =
    Cmd.info "fip"
      ~doc:"Build the exact improvement graph of a small instance (Section 8)."
  in
  Cmd.v info Term.(const run $ obs_term $ version_term $ budgets_term $ dot)

(* --- census --- *)

let census_cmd =
  let module Census = Bbng_analysis.Census in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE.jsonl"
          ~doc:
            "Run the sharded, checkpointed census: each completed shard \
             appends a digest-stamped row to $(docv).partial, and the \
             complete census commits $(docv) atomically.  A killed or \
             deadline-expired run resumes with $(b,--resume).")
  in
  let resume_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE[.partial]"
          ~doc:
            "Reload a census checkpoint with the tolerant codec (torn or \
             alien lines are skipped and counted), recompute only the \
             missing shards, and commit the final artifact.  The instance \
             and shard size come from the recorded plan row, so $(b,-b) is \
             not needed.")
  in
  let worker =
    Arg.(
      value & flag
      & info [ "worker" ]
          ~doc:
            "Claim shards cooperatively from $(b,--out)'s checkpoint via \
             appended claim rows, so several OS processes can drain one \
             census; claims left by dead workers go stale and are \
             reclaimed.  Whichever worker finishes last commits the final \
             artifact.")
  in
  let owner =
    Arg.(
      value
      & opt (some string) None
      & info [ "owner" ] ~docv:"NAME"
          ~doc:"Worker name recorded in claim rows (default pid-<pid>).")
  in
  let shard_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-size" ] ~docv:"N"
          ~doc:
            "Profiles per shard (default: about a 64th of the space, capped \
             at 4096).  Recorded in the plan row; a resumed run keeps the \
             original partitioning.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"K"
          ~doc:"Domains to scan shards on (default: cores - 1).")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:"Stop after N equilibria (in-memory scan only).")
  in
  let report_outcome ?(skipped = 0) outcome =
    if skipped > 0 then
      Format.printf "checkpoint: skipped %d torn/alien line%s@." skipped
        (if skipped = 1 then "" else "s");
    let census =
      match outcome with
      | Census.Complete c -> c
      | Census.Partial { census; _ } -> census
    in
    Format.printf "%a@." Census.pp_outcome outcome;
    (match Census.price_of_anarchy census with
    | Some r when census.Census.scanned_profiles = census.Census.total_profiles
      ->
        Format.printf "exact PoA: %a@." Poa.pp_ratio r
    | Some _ | None -> ());
    List.iteri
      (fun i (p, count) ->
        Format.printf "class %d representative: %s (diameter %d, x%d)@." i
          (Strategy.to_string p)
          (Game.social_cost census.Census.game p)
          count)
      census.Census.iso_class_counts;
    Obs.Ledger.add_metric "census.profiles"
      (Obs.Json.Int census.Census.total_profiles);
    Obs.Ledger.add_metric "census.scanned"
      (Obs.Json.Int census.Census.scanned_profiles);
    Obs.Ledger.add_metric "census.equilibria"
      (Obs.Json.Int census.Census.equilibria);
    Obs.Ledger.add_metric "census.iso_classes"
      (Obs.Json.Int (List.length census.Census.iso_classes));
    match outcome with
    | Census.Complete _ -> Obs.Ledger.note_outcome "complete"
    | Census.Partial _ ->
        Obs.Ledger.note_outcome "partial";
        Format.printf "resume with: bbng_cli census --resume FILE[.partial]@.";
        (* clean exit, but the answer is "incomplete": scripts must be
           able to tell a resumable stop from a finished census *)
        exit_failed Obs.Exit_code.exhausted
  in
  let run () version budgets out resume worker owner shard_size domains limit
      budget =
    match resume with
    | Some path -> (
        match Census.resume ?domains ~budget path with
        | Ok (outcome, skipped) -> report_outcome ~skipped outcome
        | Error msg ->
            Format.eprintf "census: %s@." msg;
            die Obs.Exit_code.input_error)
    | None -> (
        if worker then
          match out with
          | None ->
              Format.eprintf "census: --worker needs --out FILE.jsonl@.";
              die Obs.Exit_code.cli_error
          | Some path -> (
              let seed = Option.map (Game.make version) budgets in
              match Census.work ~budget ?owner ?shard_size ?seed path with
              | Ok outcome -> report_outcome outcome
              | Error msg ->
                  Format.eprintf "census: %s@." msg;
                  die Obs.Exit_code.input_error)
        else
          let budgets =
            match budgets with
            | Some b -> b
            | None ->
                Format.eprintf
                  "census: -b BUDGETS is required (unless --resume)@.";
                die Obs.Exit_code.cli_error
          in
          let game = Game.make version budgets in
          match out with
          | Some path -> (
              match
                Census.run_sharded ?domains ?shard_size ~budget
                  ~checkpoint:path game
              with
              | outcome -> report_outcome outcome
              | exception Invalid_argument msg ->
                  Format.eprintf "census: %s@." msg;
                  die Obs.Exit_code.input_error)
          | None ->
              let profiles = Equilibrium.count_profiles budgets in
              if profiles > 200_000 then
                Format.printf
                  "instance has %d profiles; run the sharded census with \
                   --out FILE.jsonl (checkpointed, resumable, parallel)@."
                  profiles
              else report_outcome (Census.run ?limit ~budget game))
  in
  let info =
    Cmd.info "census"
      ~doc:
        "Enumerate and classify every Nash equilibrium of an instance: \
         in-memory for small spaces, sharded + checkpointed + resumable \
         with --out/--resume, cooperatively multi-process with --worker."
  in
  Cmd.v info
    Term.(
      const run $ obs_term $ version_term $ budgets_opt_term $ out
      $ resume_file $ worker $ owner $ shard_size $ domains $ limit
      $ budget_term)

(* --- export --- *)

let export_cmd =
  let profile =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROFILE" ~doc:"Serialized profile, e.g. \"1,2;0;0\".")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("dot", `Dot); ("text", `Text); ("undirected-dot", `Udot) ]) `Dot
      & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output: dot, text, or undirected-dot.")
  in
  let run () profile_str format =
    match Strategy.of_string profile_str with
    | exception Invalid_argument msg -> `Error (false, msg)
    | profile ->
        let g = Strategy.realize profile in
        let out =
          match format with
          | `Dot -> Bbng_graph.Serialize.Digraph_io.to_dot g
          | `Text -> Bbng_graph.Serialize.Digraph_io.to_text g
          | `Udot ->
              Bbng_graph.Serialize.Undirected_io.to_dot (Strategy.underlying profile)
        in
        print_string out;
        `Ok ()
  in
  let info =
    Cmd.info "export" ~doc:"Export a profile's realization as DOT or edge-list text."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ profile $ format))

(* --- report: offline consumers of recorded JSONL runs --- *)

let report_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE.jsonl"
          ~doc:"A --report JSONL stream; '-' reads stdin.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "to-chrome-trace" ] ~docv:"OUT.json"
          ~doc:
            "Convert the event stream to Chrome trace-event JSON \
             (openable in Perfetto or chrome://tracing); '-' writes to \
             stdout.")
  in
  let summarize =
    Arg.(
      value & flag
      & info [ "summarize" ]
          ~doc:
            "Pretty-print the recorded run (event tally, outcomes, \
             run.summary) without re-running it.  This is the default \
             when --to-chrome-trace is absent.")
  in
  let run () input chrome summarize =
    let input = resolve_recording input in
    let events = read_events_or_exit input in
    if events = [] then begin
      Printf.eprintf "bbng: no events in %s\n" input;
      die Obs.Exit_code.input_error
    end;
    (match chrome with
    | None -> ()
    | Some out ->
        let trace = Obs.Trace_export.to_chrome events in
        let write oc =
          output_string oc (Obs.Json.to_string trace);
          output_char oc '\n'
        in
        if out = "-" then begin
          write stdout;
          flush stdout
        end
        else begin
          (match Obs.Atomic_io.write_file out write with
          | () -> ()
          | exception Sys_error e ->
              Printf.eprintf "bbng: cannot write output: %s\n" e;
              die Obs.Exit_code.io_error);
          Printf.eprintf "wrote %s (%d events)\n" out (List.length events)
        end);
    if summarize || chrome = None then begin
      Obs.Trace_export.summarize events stdout;
      (* the digest of the bytes just summarized — the same value the
         producing run stamped into its ledger row, so this line joins
         the summary to `bbng_cli runs show` output *)
      if input <> "-" then
        match Digest.file input with
        | d -> Printf.printf "report digest: %s (%s)\n" (Digest.to_hex d) input
        | exception Sys_error _ -> ()
    end;
    `Ok ()
  in
  let info =
    Cmd.info "report"
      ~doc:
        "Summarize a recorded --report JSONL run or export it as a \
         Chrome trace."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ input $ chrome $ summarize))

(* --- flame: offline folded stacks from a recorded run --- *)

let flame_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REPORT.jsonl[.partial]"
          ~doc:
            "A --report JSONL recording (final or the .partial prefix of \
             an interrupted run; torn trailing lines are skipped); '-' \
             reads stdin.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"OUT.folded"
          ~doc:
            "Write the folded stacks to $(docv) (atomic write) instead of \
             stdout.")
  in
  let alloc =
    Arg.(
      value & flag
      & info [ "alloc" ]
          ~doc:
            "Emit self minor-words (allocation) values instead of \
             self-time nanoseconds.")
  in
  let run () input out alloc =
    let events = read_events_or_exit input in
    (* re-nest the recorded span closes into per-domain call paths —
       the same attribution a live --profile run accumulates *)
    let snap = Obs.Profile.of_events events in
    if snap = [] then begin
      Printf.eprintf "bbng: no span events in %s (was it recorded with --report?)\n"
        input;
      die Obs.Exit_code.input_error
    end;
    let flavor = if alloc then Obs.Profile.Minor_words else Obs.Profile.Wall_ns in
    let lines = Obs.Profile.folded_lines flavor snap in
    (match out with
    | None ->
        List.iter print_endline lines;
        flush stdout
    | Some path ->
        (match
           Obs.Atomic_io.write_file path (fun oc ->
               List.iter
                 (fun l ->
                   output_string oc l;
                   output_char oc '\n')
                 lines)
         with
        | () -> ()
        | exception Sys_error e ->
            Printf.eprintf "bbng: cannot write output: %s\n" e;
            die Obs.Exit_code.io_error);
        Printf.eprintf "wrote %s (%d stacks)\n" path (List.length lines));
    `Ok ()
  in
  let info =
    Cmd.info "flame"
      ~doc:
        "Reconstruct flamegraph.pl/speedscope folded stacks (self-time, \
         or self-allocation with --alloc) from a recorded --report run, \
         per recording domain, merged."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ input $ out $ alloc))

(* --- replay: re-apply a recorded dynamics run and verify it --- *)

let replay_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REPORT.jsonl"
          ~doc:
            "A --report JSONL flight recording of one or more dynamics \
             runs; '-' reads stdin.")
  in
  let no_stable =
    Arg.(
      value & flag
      & info [ "no-check-stable" ]
          ~doc:
            "Skip re-verifying that converged outcomes are stable under \
             the recorded rule (the expensive part on exact-rule runs).")
  in
  let run () input no_stable =
    let events = read_events_or_exit input in
    match Obs.Replay.runs_of_events events with
    | [] ->
        Printf.eprintf "bbng: no recorded dynamics runs in %s\n" input;
        die Obs.Exit_code.input_error
    | runs ->
        let check_stable = not no_stable in
        let failures =
          List.mapi
            (fun i r ->
              match Bbng_dynamics.Replay.check_run ~check_stable r with
              | Ok summary ->
                  Format.printf "run %d: %s@." i summary;
                  false
              | Error d ->
                  Format.eprintf "run %d: DIVERGED at step %d: %s@." i
                    d.Bbng_dynamics.Replay.at_step
                    d.Bbng_dynamics.Replay.reason;
                  true)
            runs
        in
        if List.exists Fun.id failures then begin
          Obs.Ledger.note_outcome "diverged";
          exit_failed 1
        end
        else `Ok ()
  in
  let info =
    Cmd.info "replay"
      ~doc:
        "Re-apply a recorded dynamics run move by move, verifying every \
         recorded cost and the final outcome; exits non-zero at the \
         first divergence."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ input $ no_stable))

(* --- top: refreshing live view over a (possibly in-flight) recording --- *)

let top_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN.jsonl[.partial]"
          ~doc:
            "A --report recording to watch — final, or the .partial of a \
             run still in flight.  Either name works: the viewer follows \
             the stream across its .partial → final commit rename.")
  in
  let interval =
    Arg.(
      value & opt float 500.
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:"Polling/refresh interval (default 500).")
  in
  let frames =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N"
          ~doc:"Render at most $(docv) frames, then exit (for scripting).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Render a single frame and exit (--frames 1).")
  in
  let no_clear =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:
            "Do not clear the terminal between frames — frames append, \
             which keeps the output a plain readable log under redirection.")
  in
  let sibling = sibling_recording in
  let run () input interval frames once no_clear =
    let path =
      if Sys.file_exists input then input
      else if Sys.file_exists (sibling input) then sibling input
      else begin
        Printf.eprintf "bbng: no recording at %s (or %s)\n" input
          (sibling input);
        die Obs.Exit_code.input_error
      end
    in
    let limit = if once then Some 1 else frames in
    let st = Obs.Live_view.create_state () in
    let tail = Obs.Live_view.open_tail path in
    let current = ref path in
    let rec loop frame =
      (* a writer that exits cleanly commit-renames .partial over the
         final name; the bytes are identical, so just retarget the tail *)
      if
        (not (Sys.file_exists !current))
        && Sys.file_exists (sibling !current)
      then begin
        current := sibling !current;
        Obs.Live_view.retarget tail !current
      end;
      ignore (Obs.Live_view.poll tail st);
      if not no_clear then print_string "\027[2J\027[H";
      print_string (Obs.Live_view.render st ~source:!current);
      flush stdout;
      let stop =
        Obs.Live_view.finished st
        || (match limit with Some l -> frame + 1 >= l | None -> false)
      in
      if not stop then begin
        Unix.sleepf (Float.max 0.01 (interval /. 1e3));
        loop (frame + 1)
      end
    in
    loop 0;
    `Ok ()
  in
  let info =
    Cmd.info "top"
      ~doc:
        "Tail a --report recording — live, via its .partial — and render \
         a refreshing view of the run: current phase, heartbeat rate and \
         ETA, top counters, span latency quantiles.  Exits when the \
         recording ends with run.summary (or after --frames N)."
  in
  Cmd.v info
    Term.(
      ret (const run $ obs_term $ input $ interval $ frames $ once $ no_clear))

(* --- runs: query and maintain the append-only run ledger --- *)

let runs_ledger_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Ledger file to operate on.  Default: the $(b,BBNG_LEDGER) \
           environment variable, else BBNG_ledger.jsonl in the working \
           directory.")

let the_ledger = function
  | Some f -> f
  | None -> (
      match Obs.Ledger.resolve_file () with
      | Some f -> f
      | None -> Obs.Ledger.default_file)

let load_rows_or_note ledger =
  let rows, skipped = Obs.Ledger.load ~file:ledger () in
  if skipped > 0 then
    Printf.eprintf
      "bbng: %s: skipped %d torn/alien line%s (bbng_cli runs rebuild recovers)\n"
      ledger skipped
      (if skipped = 1 then "" else "s");
  rows

(* RUN selectors: a run id, a unique id prefix, or @N / @-N indices
   into ledger order (@-1 = most recent row). *)
let find_row rows spec =
  let n = List.length rows in
  if String.length spec > 1 && spec.[0] = '@' then
    match int_of_string_opt (String.sub spec 1 (String.length spec - 1)) with
    | Some i ->
        let i = if i < 0 then n + i else i in
        if i >= 0 && i < n then Ok (List.nth rows i)
        else
          Error (Printf.sprintf "index %s out of range (%d rows)" spec n)
    | None -> Error (Printf.sprintf "bad run selector %S" spec)
  else
    let prefixed r =
      let id = r.Obs.Ledger.run_id in
      String.length id >= String.length spec
      && String.sub id 0 (String.length spec) = spec
    in
    match List.filter (fun r -> r.Obs.Ledger.run_id = spec) rows with
    | r :: _ -> Ok r
    | [] -> (
        match List.filter prefixed rows with
        | [ r ] -> Ok r
        | [] -> Error (Printf.sprintf "no run matches %S" spec)
        | _ :: _ -> Error (Printf.sprintf "ambiguous run prefix %S" spec))

let find_row_or_exit rows spec =
  match find_row rows spec with
  | Ok r -> r
  | Error msg ->
      Printf.eprintf "bbng: %s\n" msg;
      die Obs.Exit_code.input_error

let runs_list_cmd =
  let sub =
    Arg.(
      value
      & opt (some string) None
      & info [ "sub" ] ~docv:"NAME" ~doc:"Only runs of this subcommand.")
  in
  let outcome =
    Arg.(
      value
      & opt (some string) None
      & info [ "outcome" ] ~docv:"NAME"
          ~doc:
            "Only runs with this outcome (ok, error, converged, \
             equilibrium, refuted, ...).")
  in
  let since =
    Arg.(
      value
      & opt (some string) None
      & info [ "since" ] ~docv:"TS"
          ~doc:
            "Only runs at or after this UTC timestamp prefix \
             (lexicographic, e.g. 2026-08-08 or 2026-08-08T12).")
  in
  let porcelain =
    Arg.(
      value & flag
      & info [ "porcelain" ]
          ~doc:
            "Tab-separated run_id/ts/subcommand/outcome/exit_code, one \
             row per line, no header or footer (for scripts).")
  in
  let run () ledger sub outcome since porcelain =
    let ledger = the_ledger ledger in
    let rows = load_rows_or_note ledger in
    let keep r =
      (match sub with None -> true | Some s -> r.Obs.Ledger.subcommand = s)
      && (match outcome with
         | None -> true
         | Some s -> r.Obs.Ledger.outcome = s)
      && match since with None -> true | Some s -> r.Obs.Ledger.ts >= s
    in
    let rows = List.filter keep rows in
    if porcelain then
      List.iter
        (fun r ->
          Printf.printf "%s\t%s\t%s\t%s\t%d\n" r.Obs.Ledger.run_id
            r.Obs.Ledger.ts r.Obs.Ledger.subcommand r.Obs.Ledger.outcome
            r.Obs.Ledger.exit_code)
        rows
    else begin
      if rows <> [] then begin
        Printf.printf "%-34s %-20s %-12s %-14s %4s %3s\n" "RUN" "TS"
          "SUBCOMMAND" "OUTCOME" "EXIT" "ART";
        List.iter
          (fun r ->
            Printf.printf "%-34s %-20s %-12s %-14s %4d %3d\n"
              r.Obs.Ledger.run_id r.Obs.Ledger.ts r.Obs.Ledger.subcommand
              r.Obs.Ledger.outcome r.Obs.Ledger.exit_code
              (List.length r.Obs.Ledger.artifacts))
          rows
      end;
      Printf.printf "%d run%s in %s\n" (List.length rows)
        (if List.length rows = 1 then "" else "s")
        ledger
    end;
    `Ok ()
  in
  let info =
    Cmd.info "list"
      ~doc:"List indexed runs, filterable by subcommand/outcome/time."
  in
  Cmd.v info
    Term.(ret (const run $ obs_term $ runs_ledger_term $ sub $ outcome $ since $ porcelain))

let runs_show_cmd =
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN" ~doc:"Run id, unique id prefix, or @N / @-1.")
  in
  let run () ledger spec =
    let ledger = the_ledger ledger in
    let rows = load_rows_or_note ledger in
    let r = find_row_or_exit rows spec in
    let open Obs.Ledger in
    Printf.printf "run:        %s\n" r.run_id;
    Printf.printf "ts:         %s\n" r.ts;
    Printf.printf "tool:       %s %s\n" r.tool r.subcommand;
    if r.argv <> [] then
      Printf.printf "argv:       %s\n" (String.concat " " r.argv);
    Printf.printf "outcome:    %s (exit %s)\n" r.outcome
      (if r.exit_code < 0 then "?" else string_of_int r.exit_code);
    (match (r.report, r.report_digest) with
    | Some p, Some d -> Printf.printf "report:     %s (digest %s)\n" p d
    | Some p, None -> Printf.printf "report:     %s\n" p
    | None, _ -> ());
    if r.metrics <> [] then begin
      Printf.printf "metrics:\n";
      List.iter
        (fun (k, v) -> Printf.printf "  %-32s %s\n" k (Obs.Json.to_string v))
        r.metrics
    end;
    if r.counters <> [] then begin
      Printf.printf "counters:\n";
      List.iter
        (fun (k, v) -> Printf.printf "  %-32s %d\n" k v)
        (List.stable_sort (fun (_, a) (_, b) -> compare b a) r.counters)
    end;
    if r.artifacts <> [] then begin
      Printf.printf "artifacts:\n";
      List.iter
        (fun p ->
          match Unix.stat p with
          | st -> Printf.printf "  %-40s %d bytes\n" p st.Unix.st_size
          | exception Unix.Unix_error _ ->
              Printf.printf "  %-40s MISSING\n" p)
        r.artifacts
    end;
    if r.extra <> [] then
      Printf.printf "extra:      %s\n"
        (Obs.Json.to_string (Obs.Json.Obj r.extra));
    `Ok ()
  in
  let info =
    Cmd.info "show" ~doc:"Show one run's full ledger row and artifact inventory."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ runs_ledger_term $ spec))

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let runs_diff_cmd =
  let a_spec =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"Baseline run (id, prefix, or @N).")
  in
  let b_spec =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Candidate run (id, prefix, or @N).")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Regression threshold in percent (default: \
             $(b,BBNG_BENCH_DIFF_THRESHOLD) or 25, the same knob bench \
             --diff uses).")
  in
  let run () ledger threshold a_spec b_spec =
    let ledger = the_ledger ledger in
    let rows = load_rows_or_note ledger in
    let a = find_row_or_exit rows a_spec in
    let b = find_row_or_exit rows b_spec in
    let pct =
      match threshold with
      | Some t -> t
      | None -> (
          match
            Option.bind
              (Sys.getenv_opt "BBNG_BENCH_DIFF_THRESHOLD")
              float_of_string_opt
          with
          | Some t when t > 0. -> t
          | Some _ | None -> 25.)
    in
    Printf.printf "diff %s (%s %s)\n  -> %s (%s %s)  [threshold %g%%]\n"
      a.Obs.Ledger.run_id a.Obs.Ledger.subcommand a.Obs.Ledger.outcome
      b.Obs.Ledger.run_id b.Obs.Ledger.subcommand b.Obs.Ledger.outcome pct;
    (* the same gate shape as bench --diff/--trend (PR 7): a one-point
       history makes Robust fall back to the percentage term, and the
       ns/words floors silence sub-noise absolute wiggles.  A words
       metric reading exactly 0 on one side is a collapsed minor-words
       OLS fit (the true allocation of a sub-2k-word workload on a
       loaded machine), so zero-sided words deltas get the wider
       fit-collapse floor — the delta is unverifiable below it *)
    let floor_for k va vb =
      if contains_substring k "words" then
        if va = 0. || vb = 0. then 2048. else 64.
      else if contains_substring k "ns" then 100.
      else 0.
    in
    let ma = Obs.Ledger.numeric_metrics a in
    let mb = Obs.Ledger.numeric_metrics b in
    let regressions = ref 0 in
    List.iter
      (fun (k, vb) ->
        match List.assoc_opt k ma with
        | None -> Printf.printf "  new      %-32s %g\n" k vb
        | Some va ->
            let delta_pct =
              if va = 0. then if vb = 0. then 0. else infinity
              else 100. *. (vb -. va) /. va
            in
            let tag =
              match
                Bbng_analysis.Robust.classify ~threshold_pct:pct
                  ~floor:(floor_for k va vb) ~history:[ va ] vb
              with
              | Some Bbng_analysis.Robust.Regressed ->
                  incr regressions;
                  "REGRESSED"
              | Some Bbng_analysis.Robust.Improved -> "improved"
              | Some Bbng_analysis.Robust.Steady | None -> "steady"
            in
            Printf.printf "  %-8s %-32s %g -> %g (%+.1f%%)\n" tag k va vb
              delta_pct)
      mb;
    List.iter
      (fun (k, va) ->
        if not (List.mem_assoc k mb) then
          Printf.printf "  gone     %-32s %g\n" k va)
      ma;
    (* counter deltas are attribution context (what did more work), not
       gated: loud ones only, biggest relative change first *)
    let counter_deltas =
      List.filter_map
        (fun (k, vb) ->
          match List.assoc_opt k a.Obs.Ledger.counters with
          | Some va when va <> vb && va > 0 ->
              let d = 100. *. float_of_int (vb - va) /. float_of_int va in
              if Float.abs d >= pct then Some (k, va, vb, d) else None
          | _ -> None)
        b.Obs.Ledger.counters
    in
    let counter_deltas =
      List.stable_sort
        (fun (_, _, _, x) (_, _, _, y) ->
          compare (Float.abs y) (Float.abs x))
        counter_deltas
    in
    if counter_deltas <> [] then begin
      Printf.printf "counters (|delta| >= %g%%, context only):\n" pct;
      List.iteri
        (fun i (k, va, vb, d) ->
          if i < 12 then
            Printf.printf "  %-41s %d -> %d (%+.1f%%)\n" k va vb d)
        counter_deltas
    end;
    if !regressions > 0 then begin
      Printf.printf "%d metric%s regressed\n" !regressions
        (if !regressions = 1 then "" else "s");
      exit_failed 1
    end
    else begin
      Printf.printf "no metric regressions\n";
      `Ok ()
    end
  in
  let info =
    Cmd.info "diff"
      ~doc:
        "Compare two runs' metrics and counters; exits non-zero when a \
         metric regressed past the Robust threshold."
  in
  Cmd.v info
    Term.(
      ret (const run $ obs_term $ runs_ledger_term $ threshold $ a_spec $ b_spec))

let runs_gc_cmd =
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            "Actually rewrite the ledger with dangling artifact \
             references removed (atomic rewrite; torn lines are dropped \
             too).  Default is a dry run.")
  in
  let run () ledger prune =
    let ledger = the_ledger ledger in
    let rows = load_rows_or_note ledger in
    let dangling = ref 0 in
    let cleaned =
      List.map
        (fun r ->
          let live, dead =
            (* .partial-aware: resumable checkpoint state is never
               pruned as dangling *)
            List.partition Obs.Ledger.artifact_live r.Obs.Ledger.artifacts
          in
          List.iter
            (fun p ->
              incr dangling;
              Printf.printf "dangling: %s (%s)\n" p r.Obs.Ledger.run_id)
            dead;
          { r with Obs.Ledger.artifacts = live })
        rows
    in
    if !dangling = 0 then Printf.printf "no dangling artifacts\n"
    else if prune then begin
      Obs.Atomic_io.write_file ledger (fun oc ->
          List.iter
            (fun r ->
              output_string oc (Obs.Json.to_string (Obs.Ledger.row_to_json r));
              output_char oc '\n')
            cleaned);
      Printf.printf "pruned %d dangling reference%s from %s\n" !dangling
        (if !dangling = 1 then "" else "s")
        ledger
    end
    else
      Printf.printf "%d dangling reference%s (re-run with --prune to drop)\n"
        !dangling
        (if !dangling = 1 then "" else "s");
    `Ok ()
  in
  let info =
    Cmd.info "gc" ~doc:"Find (and with --prune, drop) dangling artifact references."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ runs_ledger_term $ prune))

let runs_rebuild_cmd =
  let dirs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"DIR"
          ~doc:
            "Directories to scan for *.jsonl / *.jsonl.partial recordings \
             (default: the working directory, plus artifacts/ if present).")
  in
  let run () ledger dirs =
    let ledger = the_ledger ledger in
    let dirs =
      if dirs <> [] then dirs
      else
        "."
        ::
        (if Sys.file_exists "artifacts" && Sys.is_directory "artifacts" then
           [ "artifacts" ]
         else [])
    in
    let kept, recovered, dropped =
      Obs.Ledger.rebuild ~file:ledger ~dirs ()
    in
    Printf.printf
      "rebuilt %s: kept %d existing row%s, recovered %d run%s from \
       artifacts, dropped %d torn line%s\n"
      ledger kept
      (if kept = 1 then "" else "s")
      recovered
      (if recovered = 1 then "" else "s")
      dropped
      (if dropped = 1 then "" else "s");
    `Ok ()
  in
  let info =
    Cmd.info "rebuild"
      ~doc:
        "Re-derive the ledger from recorded artifacts: merge parseable \
         rows with runs recovered from *.jsonl recordings, then rewrite \
         atomically.  A lost or torn index is never fatal."
  in
  Cmd.v info Term.(ret (const run $ obs_term $ runs_ledger_term $ dirs))

let runs_cmd =
  let info =
    Cmd.info "runs"
      ~doc:
        "Query and maintain the append-only run ledger (BBNG_ledger.jsonl) \
         every work subcommand and bench run appends to."
  in
  Cmd.group info
    [ runs_list_cmd; runs_show_cmd; runs_diff_cmd; runs_gc_cmd;
      runs_rebuild_cmd ]

let main_cmd =
  let info =
    Cmd.info "bbng" ~version:"1.0.0"
      ~doc:"Bounded budget network creation games (SPAA 2011 reproduction)."
  in
  Cmd.group info
    [ construct_cmd; verify_cmd; certify_cmd; dynamics_cmd; opt_cmd;
      kcenter_cmd; census_cmd; export_cmd; fip_cmd; report_cmd; flame_cmd;
      replay_cmd;
      top_cmd; runs_cmd ]

(* Structured failure: every exception class the engine can legitimately
   raise maps to a documented exit code (Exit_code) with a one-line
   message naming the problem; only genuinely unknown exceptions (bugs)
   get a backtrace, under the internal-error code.  [~catch:false] keeps
   cmdliner from swallowing exceptions before we classify them. *)
(* Subcommands that do work get a ledger row; read-only viewers (runs,
   report, flame, top) are not themselves runs and stay out of the
   index. *)
let indexed_subcommands =
  [ "construct"; "verify"; "certify"; "dynamics"; "opt"; "kcenter";
    "census"; "export"; "fip"; "replay" ]

let () =
  (match Obs.Fault.init_from_env () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "bbng: bad %s spec: %s\n" Obs.Fault.env_var msg;
      exit Obs.Exit_code.cli_error);
  (* registered BEFORE cmdliner evaluation: at_exit runs LIFO, so the
     ledger append fires AFTER obs_term's report-commit hook and can
     digest the committed report bytes *)
  if Array.length Sys.argv > 1 && List.mem Sys.argv.(1) indexed_subcommands
  then begin
    Obs.Ledger.set_context ~tool:"bbng_cli" ~subcommand:Sys.argv.(1);
    at_exit Obs.Ledger.append_current
  end;
  match Cmd.eval ~catch:false main_cmd with
  | 0 -> exit 0
  | code -> die code
  | exception e -> (
      match Obs.Exit_code.of_exn e with
      | Some (code, msg) ->
          Printf.eprintf "bbng: %s\n" msg;
          die code
      | None ->
          Printf.eprintf "bbng: internal error: %s\n%s" (Printexc.to_string e)
            (Printexc.get_backtrace ());
          die Obs.Exit_code.internal_error)
