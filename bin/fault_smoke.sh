#!/bin/sh
# Fault-matrix smoke: out-of-process checks of the crash-safety and
# exit-code contracts that test/test_fault.ml cannot exercise in
# process (SIGKILL runs no cleanup; exit codes are process-level).
#
# Contract under test (see README "Resilience & limits"):
#   - killing a run mid-artifact-write leaves the previous artifact
#     byte-identical and still verifying;
#   - killing a run mid-flight-recording leaves the previous report
#     untouched and a .partial prefix that replays and resumes cleanly;
#   - an injected raise maps to exit 5 (fault), a deadline to a
#     degraded-but-verifying certificate, malformed input to exit 2;
#   - killing a run between heartbeats leaves a parseable OpenMetrics
#     snapshot and a .partial whose last heartbeat is at most one tick
#     old, still replayable and renderable by `bbng_cli top`;
#   - killing a run mid-profile-export leaves no torn .folded at all,
#     and the report .partial still reconstructs folded stacks offline;
#   - killing a run mid-ledger-append leaves at most one torn trailing
#     line that every reader skips, and `runs rebuild` re-derives the
#     lost row from the run's own recording.
set -eu
cd "$(dirname "$0")/.."

dune build bin/bbng_cli.exe bench/main.exe
CLI="$(pwd)/_build/default/bin/bbng_cli.exe"
BENCH="$(pwd)/_build/default/bench/main.exe"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM
cd "$tmp"

fail() {
  echo "fault-smoke: FAIL: $*" >&2
  exit 1
}

# an 8-player MAX equilibrium whose certification needs the real scan
PROFILE="1,7;;3,7;;5,7;;;"
DYNB=2,2,2,2,2,2,2,2,2,2,2,2

echo "== 1. kill mid-certificate-write: previous artifact survives =="
"$CLI" certify "$PROFILE" -c max --cert CERT.json > /dev/null
cp CERT.json CERT.before.json
rc=0
"$CLI" certify "$PROFILE" -c max --cert CERT.json \
  --fault artifact.mid_write@kill > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
cmp -s CERT.before.json CERT.json || fail "previous certificate was torn"
"$CLI" verify CERT.json > /dev/null || fail "previous certificate no longer verifies"

echo "== 2. kill mid-flight-recording: partial prefix replays and resumes =="
"$CLI" dynamics -b "$DYNB" --seed 3 --report RUN.jsonl > /dev/null
cp RUN.jsonl RUN.before.jsonl
rc=0
"$CLI" dynamics -b "$DYNB" --seed 3 --report RUN.jsonl \
  --fault sink.dynamics.step@kill@5 > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
cmp -s RUN.before.jsonl RUN.jsonl || fail "previous report was torn"
[ -s RUN.jsonl.partial ] || fail "no .partial prefix left behind"
"$CLI" replay RUN.jsonl.partial > /dev/null || fail "partial prefix does not replay"
"$CLI" dynamics --resume RUN.jsonl.partial > /dev/null \
  || fail "partial prefix does not resume"

echo "== 3. injected raise maps to the fault exit code =="
rc=0
"$CLI" dynamics -b "$DYNB" --seed 3 --report RUN2.jsonl \
  --fault span.dynamics.select_move@raise@3 > /dev/null 2>&1 || rc=$?
[ "$rc" = 5 ] || fail "expected fault exit 5, got $rc"
# the interrupted recording is still a replayable prefix
[ -s RUN2.jsonl.partial ] || fail "raise left no .partial prefix"
"$CLI" replay RUN2.jsonl.partial > /dev/null || fail "raise-interrupted prefix does not replay"

echo "== 4. deadline degrades the certificate, and it still verifies =="
"$CLI" certify "$PROFILE" -c max --deadline-ms 0.001 --cert DEG.json > out.txt
grep -q degraded out.txt || fail "deadline did not degrade the verdict"
grep -q '"degraded":true' DEG.json || fail "degraded provenance missing from artifact"
"$CLI" verify DEG.json > /dev/null || fail "degraded certificate rejected by verify"

echo "== 5. input taxonomy: malformed inputs exit 2, never a backtrace =="
echo 'this is not json' > bad.json
rc=0
"$CLI" verify bad.json > /dev/null 2> err.txt || rc=$?
[ "$rc" = 2 ] || fail "malformed certificate: expected exit 2, got $rc"
grep -q "Raised at" err.txt && fail "malformed certificate leaked a backtrace"
echo 'not an edge list' > bad.graph
rc=0
"$CLI" kcenter --graph bad.graph -k 2 > /dev/null 2> err.txt || rc=$?
[ "$rc" = 2 ] || fail "malformed graph file: expected exit 2, got $rc"
grep -q "bad.graph" err.txt || fail "graph error does not name the input file"

echo "== 6. env-armed fault specs are validated up front =="
rc=0
BBNG_FAULT="nonsense spec" "$CLI" construct tripod -k 1 > /dev/null 2>&1 || rc=$?
[ "$rc" = 124 ] || fail "bad BBNG_FAULT: expected exit 124, got $rc"

echo "== 7. SIGKILL a bench experiment mid-write: every artifact verifies or replays =="
"$BENCH" artifacts > /dev/null
rc=0
BBNG_FAULT="artifact.mid_write@kill@2" "$BENCH" artifacts > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "bench kill: expected exit 137, got $rc"
for f in artifacts/CERT_*.json; do
  [ -e "$f" ] || fail "bench kill wiped the certificates"
  "$CLI" verify "$f" > /dev/null || fail "$f no longer verifies after bench kill"
done
for f in artifacts/DYN_*.jsonl; do
  [ -e "$f" ] || continue
  "$CLI" replay "$f" > /dev/null || fail "$f no longer replays after bench kill"
done
for f in artifacts/DYN_*.jsonl.partial; do
  [ -e "$f" ] || continue
  "$CLI" replay "$f" > /dev/null || fail "$f is not a replayable prefix"
done

echo "== 8. SIGKILL mid-row-build: rows-engine certify leaves the previous artifact intact =="
"$CLI" certify "$PROFILE" -c max --eval-engine rows --cert ROWS.json > /dev/null
cp ROWS.json ROWS.before.json
rc=0
"$CLI" certify "$PROFILE" -c max --eval-engine rows --cert ROWS.json \
  --fault deveval.row_build@kill@3 > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
cmp -s ROWS.before.json ROWS.json || fail "previous rows certificate was torn"
"$CLI" verify ROWS.json > /dev/null || fail "previous rows certificate no longer verifies"
# and a fresh run re-certifies byte-identically (same argv, so the
# provenance block matches too: run it from a sibling directory)
mkdir rows2 && (cd rows2 && "$CLI" certify "$PROFILE" -c max --eval-engine rows --cert ROWS.json > /dev/null)
cmp -s ROWS.json rows2/ROWS.json || fail "rows certify is not deterministic after the kill"

echo "== 9. SIGKILL between heartbeats: fresh .prom survives, .partial carries the beats =="
# BBNG_HEARTBEAT_MS=0 beats at every step, so the 4th progress.tick
# probe fires after three complete heartbeats reached the report and
# three snapshots reached the .prom (plus the arm-time snapshot)
rc=0
BBNG_HEARTBEAT_MS=0 "$CLI" dynamics -b "$DYNB" --seed 3 --report HB.jsonl \
  --metrics-out HB.prom --fault progress.tick@kill@4 > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
"$BENCH" --validate-metrics HB.prom > /dev/null \
  || fail "killed run left an invalid OpenMetrics snapshot"
[ -s HB.jsonl.partial ] || fail "heartbeat kill left no .partial prefix"
grep -q progress.heartbeat HB.jsonl.partial \
  || fail "no heartbeat reached the .partial before the kill"
"$CLI" replay HB.jsonl.partial > /dev/null \
  || fail "heartbeat-laced prefix does not replay"
"$CLI" top HB.jsonl.partial --once --no-clear | grep -q "heartbeat: dynamics" \
  || fail "top cannot render the killed run's last heartbeat"

echo "== 10. SIGKILL mid-profile-export: no torn .folded, the .partial still flames =="
# control: a profiled, recorded run leaves both folded flavors and a
# recording that reconstructs the same stacks offline
"$CLI" dynamics -b "$DYNB" --seed 3 --report PR.jsonl --profile PR.folded > /dev/null
[ -s PR.folded ] || fail "control run left no folded stacks"
[ -s PR.alloc.folded ] || fail "control run left no allocation folded stacks"
"$CLI" flame PR.jsonl > /dev/null || fail "control recording does not flame"
# killed at the export probe: the folded files must be absent entirely
# (Atomic_io never exposes a partial write), and the report must remain
# as a .partial prefix that still flames
rc=0
"$CLI" dynamics -b "$DYNB" --seed 3 --report PR2.jsonl --profile PR2.folded \
  --fault profile.export@kill > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
[ -e PR2.folded ] && fail "kill mid-export left a torn PR2.folded"
[ -e PR2.alloc.folded ] && fail "kill mid-export left a torn PR2.alloc.folded"
[ -s PR2.jsonl.partial ] || fail "export kill left no .partial report"
"$CLI" flame PR2.jsonl.partial > /dev/null \
  || fail "killed run's .partial does not flame"
# a half-written trailing line (what a SIGKILL mid-emit produces) is
# skipped like `top` does, never fatal
printf '{"event":"span","name":"torn","du' >> PR2.jsonl.partial
"$CLI" flame PR2.jsonl.partial > /dev/null \
  || fail "torn .partial line wedged flame"

echo "== 11. SIGKILL mid-ledger-append: torn line skipped, rebuild recovers every run =="
# two recorded runs index into a dedicated ledger; the second is killed
# exactly as its row is appended, leaving a torn trailing line.  The
# readers must skip it (an old binary tailing a newer ledger must never
# raise either), and `runs rebuild` must re-derive the lost row from
# the run's committed recording.
mkdir ledger11
BBNG_LEDGER=ledger11/LED.jsonl "$CLI" dynamics -b "$DYNB" --seed 3 \
  --report ledger11/LED1.jsonl > /dev/null
rc=0
BBNG_LEDGER=ledger11/LED.jsonl "$CLI" dynamics -b "$DYNB" --seed 4 \
  --report ledger11/LED2.jsonl --fault artifact.mid_append@kill \
  > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
[ "$(wc -l < ledger11/LED.jsonl)" = 1 ] \
  || fail "torn append should leave exactly one complete row"
[ -s ledger11/LED2.jsonl ] || fail "the killed run's report did not commit"
"$CLI" runs list --ledger ledger11/LED.jsonl --porcelain > rows.txt 2> skip.txt \
  || fail "runs list choked on the torn ledger"
[ "$(wc -l < rows.txt)" = 1 ] || fail "torn ledger should yield exactly 1 parseable row"
grep -q "skipped 1 torn" skip.txt || fail "the torn line was not reported as skipped"
"$CLI" runs rebuild --ledger ledger11/LED.jsonl ledger11 > /dev/null \
  || fail "runs rebuild failed on the torn ledger"
"$CLI" runs list --ledger ledger11/LED.jsonl --porcelain > rows.txt 2> skip.txt
[ "$(wc -l < rows.txt)" = 2 ] || fail "rebuild did not recover both runs"
[ -s skip.txt ] && fail "rebuilt ledger still has unparseable lines"
"$CLI" runs show --ledger ledger11/LED.jsonl @-2 > /dev/null \
  || fail "runs show lost the surviving row after rebuild"
"$CLI" runs show --ledger ledger11/LED.jsonl @-1 > /dev/null \
  || fail "runs show cannot render the recovered row"

echo "== 12. SIGKILL mid-census-checkpoint: resume commits the identical artifact =="
# reference: an uninterrupted sharded census
mkdir census12
(cd census12 && "$CLI" census -b 1,1,1,1,1 --shard-size 50 --out CEN.jsonl > /dev/null)
# victim A: killed just before the 4th shard row is appended — at most
# the in-flight shards are lost, the checkpoint keeps whole rows only
mkdir census12a
rc=0
(cd census12a && "$CLI" census -b 1,1,1,1,1 --shard-size 50 --out CEN.jsonl \
  --fault census.checkpoint@kill@4) > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
[ -e census12a/CEN.jsonl ] && fail "killed census committed a final artifact"
[ -s census12a/CEN.jsonl.partial ] || fail "killed census left no checkpoint"
(cd census12a && "$CLI" census --resume CEN.jsonl.partial > /dev/null) \
  || fail "census checkpoint does not resume"
cmp -s census12/CEN.jsonl census12a/CEN.jsonl \
  || fail "kill+resume census is not byte-identical to the uninterrupted run"
# victim B: killed inside the O_APPEND write itself — the torn trailing
# line must be skipped (and counted) on resume, with the same bytes out
mkdir census12b
rc=0
(cd census12b && "$CLI" census -b 1,1,1,1,1 --shard-size 50 --out CEN.jsonl \
  --fault artifact.mid_append@kill@3) > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
[ -s census12b/CEN.jsonl.partial ] || fail "mid-append kill left no checkpoint"
(cd census12b && "$CLI" census --resume CEN.jsonl > out.txt) \
  || fail "torn census checkpoint does not resume"
grep -q "skipped 1 torn" census12b/out.txt \
  || fail "the torn checkpoint line was not reported as skipped"
cmp -s census12/CEN.jsonl census12b/CEN.jsonl \
  || fail "torn-line resume is not byte-identical to the uninterrupted run"
# a killed worker's claim goes stale, and a second worker drains the
# rest of the checkpoint to the same bytes
mkdir census12c
rc=0
(cd census12c && "$CLI" census -b 1,1,1,1,1 --shard-size 50 --worker --out CEN.jsonl \
  --fault census.checkpoint@kill@2) > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || fail "expected SIGKILL exit 137, got $rc"
grep -q '"row":"claim"' census12c/CEN.jsonl.partial \
  || fail "killed worker left no claim rows"
(cd census12c && "$CLI" census --worker --out CEN.jsonl > /dev/null) \
  || fail "second worker could not drain the checkpoint"
cmp -s census12/CEN.jsonl census12c/CEN.jsonl \
  || fail "worker recovery is not byte-identical to the uninterrupted run"

echo "fault-smoke: all green"
