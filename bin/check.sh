#!/bin/sh
# Tier-1-adjacent gate: build, full test suite, then a seconds-long
# bench smoke whose BENCH_smoke.json must stay machine-parseable —
# report-format regressions fail here, not in a nightly perf run —
# and is diffed against the last local baseline (make bench-baseline)
# so hot-path regressions are at least shouted about.  The diff is
# warn-only by default (one-off machine load inflates ns/run); set
# BBNG_BENCH_STRICT=1 to make a past-threshold regression fail the
# gate, and BBNG_BENCH_DIFF_THRESHOLD=<pct> to tune the noise
# threshold.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== audit artifacts (golden set) =="
# every checked-in certificate must independently re-verify, and every
# checked-in flight recording must replay divergence-free — the
# serialization formats and replay semantics are load-bearing
# (regenerate with `make artifacts` after an intentional change)
found_golden=0
for f in test/golden/CERT_*.json; do
  [ -e "$f" ] || continue
  found_golden=1
  dune exec bin/bbng_cli.exe -- verify "$f"
done
for f in test/golden/DYN_*.jsonl; do
  [ -e "$f" ] || continue
  found_golden=1
  dune exec bin/bbng_cli.exe -- replay "$f"
done
if [ "$found_golden" = 0 ]; then
  echo "check: no golden artifacts found (run 'make artifacts')"
  exit 1
fi

echo "== CSR engine vs legacy oracle on golden census graphs =="
# the flat CSR BFS/iFUB-diameter engine must agree with the retained
# adjacency-walking walker on every equilibrium graph named by the
# committed census artifacts — a kernel regression fails here even if
# it slips past the unit suite's random graphs
found_census=0
for f in test/golden/CENSUS_*.jsonl; do
  [ -e "$f" ] || continue
  found_census=1
  dune exec bench/main.exe -- --csr-oracle "$f"
done
if [ "$found_census" = 0 ]; then
  echo "check: no golden census artifacts for the CSR oracle"
  exit 1
fi

echo "== fault-matrix smoke =="
# out-of-process crash-safety: SIGKILL/raise/deadline injections must
# leave only artifacts that verify or replay cleanly, and malformed
# inputs must exit with their taxonomy codes (see bin/fault_smoke.sh)
sh bin/fault_smoke.sh

echo "== live telemetry: heartbeats, OpenMetrics snapshot, top =="
# a dynamics run with a fast ticker must leave a heartbeat-bearing
# report, a parseable OpenMetrics snapshot, and a recording the live
# viewer renders — format regressions in the telemetry layer fail here
mkdir -p _build
BBNG_HEARTBEAT_MS=1 dune exec bin/bbng_cli.exe -- dynamics -b 2,2,2,2,2,2,2,2 \
  --seed 3 --report _build/TELEMETRY.jsonl --metrics-out _build/TELEMETRY.prom \
  > /dev/null
dune exec bench/main.exe -- --validate-metrics _build/TELEMETRY.prom
grep -q progress.heartbeat _build/TELEMETRY.jsonl || {
  echo "check: no progress.heartbeat in the telemetry report"
  exit 1
}
dune exec bin/bbng_cli.exe -- top _build/TELEMETRY.jsonl --once --no-clear \
  > /dev/null

echo "== profiling: live --profile and offline flame agree =="
# a recorded dynamics run must profile identically live (--profile) and
# offline (flame on the report), both carrying the known hot call path,
# and the allocation flavor must ride along
mkdir -p _build
dune exec bin/bbng_cli.exe -- dynamics -b 2,2,2,2,2,2,2,2 --seed 3 \
  --report _build/PROF.jsonl --profile _build/PROF.folded > /dev/null
grep -q "^dynamics.run;dynamics.select_move " _build/PROF.folded || {
  echo "check: live profile lost the dynamics call path"
  exit 1
}
[ -s _build/PROF.alloc.folded ] || {
  echo "check: no allocation-flavor folded stacks"
  exit 1
}
dune exec bin/bbng_cli.exe -- flame _build/PROF.jsonl -o _build/PROF.offline.folded
cmp -s _build/PROF.folded _build/PROF.offline.folded || {
  echo "check: offline flame disagrees with the live profile"
  exit 1
}

echo "== bench trend self-test (synthetic history) =="
# the gate itself is gated: a steady synthetic history must pass and an
# injected 2.5x slowdown must exit non-zero
mkdir -p _build
: > _build/TREND_selftest.jsonl
for ns in 1000 1010 990 1005; do
  printf '%s\n' "{\"ts\":\"t\",\"report\":\"selftest\",\"results\":[{\"name\":\"bbng/x\",\"ns_per_run\":$ns,\"minor_words_per_run\":500,\"major_words_per_run\":0,\"r_square_time\":0.99}],\"counters_digest\":\"d\"}" \
    >> _build/TREND_selftest.jsonl
done
dune exec bench/main.exe -- --trend _build/TREND_selftest.jsonl > /dev/null || {
  echo "check: trend flagged a steady synthetic history"
  exit 1
}
printf '%s\n' "{\"ts\":\"t\",\"report\":\"selftest\",\"results\":[{\"name\":\"bbng/x\",\"ns_per_run\":2500,\"minor_words_per_run\":500,\"major_words_per_run\":0,\"r_square_time\":0.99}],\"counters_digest\":\"d\"}" \
  >> _build/TREND_selftest.jsonl
if dune exec bench/main.exe -- --trend _build/TREND_selftest.jsonl > /dev/null; then
  echo "check: trend missed an injected 2.5x slowdown"
  exit 1
fi

echo "== bench smoke =="
# snapshot the pre-run baseline before --smoke overwrites it; on a
# fresh clone (no local run yet) fall back to the committed reference
# under bench/baselines/ so the diff always compares something real
baseline=""
if [ -f BENCH_smoke.json ]; then
  mkdir -p _build
  cp BENCH_smoke.json _build/BENCH_smoke.baseline.json
  baseline=_build/BENCH_smoke.baseline.json
elif [ -f bench/baselines/BENCH_smoke.json ]; then
  baseline=bench/baselines/BENCH_smoke.json
fi
dune exec bench/main.exe -- --smoke

echo "== validate BENCH_smoke.json =="
dune exec bench/main.exe -- --validate BENCH_smoke.json

if [ -n "$baseline" ]; then
  echo "== bench diff vs baseline =="
  if dune exec bench/main.exe -- --diff "$baseline" BENCH_smoke.json; then
    :
  elif [ "${BBNG_BENCH_STRICT:-0}" = "1" ]; then
    echo "check: bench regression (BBNG_BENCH_STRICT=1)"
    exit 1
  else
    echo "check: bench diff WARNING only (set BBNG_BENCH_STRICT=1 to fail on regressions)"
  fi
fi

echo "== bench trend vs recorded history =="
# the smoke run above appended to BENCH_history.jsonl; gate the latest
# run against the robust median/MAD of the recorded trajectory.  The
# gate is depth-aware (bench/trend.ml): a regression hard-fails once a
# benchmark has >=5 recorded points, and is a warning below that — so
# this stage fails the check outright instead of the old warn-only
# wrapper (BBNG_BENCH_STRICT=1 escalates shallow-history warnings too).
dune exec bench/main.exe -- --trend

echo "== run ledger: index, list, diff, injected regression =="
# two consecutive bench smoke runs on the unchanged tree must index
# into the same ledger and diff green; a synthetic 2.5x metric
# regression must make `runs diff` exit non-zero.  The smokes run in a
# scratch dir so their reports/history don't touch the repo's record.
cli=_build/default/bin/bbng_cli.exe
bench=_build/default/bench/main.exe
ledir=_build/ledger_stage
rm -rf "$ledir"
mkdir -p "$ledir"
root=$(pwd)
( cd "$ledir" && BBNG_LEDGER=CHECK_ledger.jsonl "$root/$bench" --smoke > /dev/null )
( cd "$ledir" && BBNG_LEDGER=CHECK_ledger.jsonl "$root/$bench" --smoke > /dev/null )
[ "$("$cli" runs list --ledger "$ledir/CHECK_ledger.jsonl" --porcelain | wc -l)" = 2 ] || {
  echo "check: expected 2 indexed bench runs in the ledger"
  exit 1
}
# back-to-back same-machine smoke runs: a loose 100% threshold rides
# out the tiny-quota noise while still catching a real blowup
"$cli" runs diff --ledger "$ledir/CHECK_ledger.jsonl" --threshold 100 @-2 @-1 || {
  echo "check: runs diff flagged two identical-tree bench runs"
  exit 1
}
printf '%s\n' '{"schema":1,"run_id":"synthetic-a","ts":"2026-01-01T00:00:00Z","tool":"bench","subcommand":"bench:smoke","argv":[],"outcome":"ok","exit_code":0,"metrics":{"bench.bbng/x.ns_per_run":1000},"counters":{},"artifacts":[]}' > "$ledir/SYNTH_ledger.jsonl"
printf '%s\n' '{"schema":1,"run_id":"synthetic-b","ts":"2026-01-01T00:01:00Z","tool":"bench","subcommand":"bench:smoke","argv":[],"outcome":"ok","exit_code":0,"metrics":{"bench.bbng/x.ns_per_run":2500},"counters":{},"artifacts":[]}' >> "$ledir/SYNTH_ledger.jsonl"
if "$cli" runs diff --ledger "$ledir/SYNTH_ledger.jsonl" synthetic-a synthetic-b > /dev/null; then
  echo "check: runs diff missed an injected 2.5x metric regression"
  exit 1
fi

echo "== census: kill+resume commits byte-identical artifacts =="
# the checkpointed census's core invariant, end to end: a SIGKILLed
# sharded run, resumed, must commit the exact bytes of an uninterrupted
# one; and the committed golden census must still validate read-only
cendir=_build/census_stage
rm -rf "$cendir"
mkdir -p "$cendir/fresh" "$cendir/killed"
root=$(pwd)
( cd "$cendir/fresh" && "$root/$cli" census -b 1,1,1,1,1 --shard-size 64 \
    --out CEN.jsonl > /dev/null )
rc=0
( cd "$cendir/killed" && "$root/$cli" census -b 1,1,1,1,1 --shard-size 64 \
    --out CEN.jsonl --fault census.checkpoint@kill@3 ) > /dev/null 2>&1 || rc=$?
[ "$rc" = 137 ] || {
  echo "check: census kill expected exit 137, got $rc"
  exit 1
}
( cd "$cendir/killed" && "$root/$cli" census --resume CEN.jsonl > /dev/null )
cmp -s "$cendir/fresh/CEN.jsonl" "$cendir/killed/CEN.jsonl" || {
  echo "check: kill+resume census artifact differs from the fresh run"
  exit 1
}
for f in test/golden/CENSUS_*.jsonl; do
  [ -e "$f" ] || continue
  "$cli" census --resume "$f" > /dev/null || {
    echo "check: golden census $f no longer validates"
    exit 1
  }
done

echo "check: all green"
