#!/bin/sh
# Tier-1-adjacent gate: build, full test suite, then a seconds-long
# bench smoke whose BENCH_smoke.json must stay machine-parseable —
# report-format regressions fail here, not in a nightly perf run.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke =="
dune exec bench/main.exe -- --smoke

echo "== validate BENCH_smoke.json =="
dune exec bench/main.exe -- --validate BENCH_smoke.json

echo "check: all green"
