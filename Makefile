.PHONY: build test bench smoke check fmt bench-baseline

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/main.exe -- --validate BENCH_smoke.json

# build + tests + bench smoke + report-format validation + bench diff
check:
	sh bin/check.sh

# regenerate the local BENCH_micro.json / BENCH_smoke.json baselines
# (gitignored: ns/run is machine-specific) that bin/check.sh diffs
# subsequent runs against
bench-baseline:
	dune exec bench/main.exe -- perf
	dune exec bench/main.exe -- --smoke
	dune exec bench/main.exe -- --validate BENCH_micro.json
	dune exec bench/main.exe -- --validate BENCH_smoke.json
	@echo "baselines refreshed: next 'make check' diffs against them"

# no-op unless ocamlformat is configured; kept dune-native so CI can
# opt in with a .ocamlformat file
fmt:
	-dune build @fmt --auto-promote
