.PHONY: build test bench smoke check fmt

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/main.exe -- --validate BENCH_smoke.json

# build + tests + bench smoke + report-format validation
check:
	sh bin/check.sh

# no-op unless ocamlformat is configured; kept dune-native so CI can
# opt in with a .ocamlformat file
fmt:
	-dune build @fmt --auto-promote
