.PHONY: build test bench smoke fault-smoke check fmt bench-baseline artifacts top-demo flame-demo runs-demo census-demo

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/main.exe -- --validate BENCH_smoke.json

# crash-safety matrix: SIGKILL / raise / deadline / malformed-input
# injections against the CLI, asserting artifact and exit-code contracts
fault-smoke:
	sh bin/fault_smoke.sh

# build + tests + bench smoke + report-format validation + bench diff
check:
	sh bin/check.sh

# regenerate the BENCH_micro.json / BENCH_smoke.json baselines and
# promote them to bench/baselines/ (tracked), so bin/check.sh's
# --diff always has a real reference even on a fresh clone; the
# in-tree copies are refreshed too and win when present, since ns/run
# is machine-specific and a local baseline diffs cleaner
bench-baseline:
	dune exec bench/main.exe -- perf
	dune exec bench/main.exe -- --smoke
	dune exec bench/main.exe -- --validate BENCH_micro.json
	dune exec bench/main.exe -- --validate BENCH_smoke.json
	mkdir -p bench/baselines
	cp BENCH_micro.json BENCH_smoke.json bench/baselines/
	@echo "baselines refreshed: next 'make check' diffs against them"

# regenerate the golden audit artifacts (equilibrium certificates +
# dynamics flight recordings) and promote them to test/golden/, where
# bin/check.sh independently re-verifies every one with
# `bbng_cli verify` / `bbng_cli replay`
GOLDEN_ARTIFACTS = CERT_sun8_max.json CERT_sun8_swap.json \
  CERT_tripod2_max.json CERT_refuted_path3_max.json \
  DYN_rr_best_unit8_max.jsonl DYN_rr_first_swap_n12_sum.jsonl
artifacts:
	dune exec bench/main.exe -- artifacts
	mkdir -p test/golden
	cd artifacts && cp $(GOLDEN_ARTIFACTS) ../test/golden/
	@echo "golden set refreshed: 'make check' now gates on it"

# record a short dynamics run with a fast heartbeat ticker, then render
# the recording with the live viewer — a ten-second look at what
# `bbng_cli top` shows against a run in flight
top-demo:
	BBNG_HEARTBEAT_MS=5 dune exec bin/bbng_cli.exe -- dynamics \
	  -b 2,2,2,2,2,2,2,2,2,2 --seed 7 \
	  --report _build/TOPDEMO.jsonl --metrics-out _build/TOPDEMO.prom \
	  > /dev/null
	dune exec bin/bbng_cli.exe -- top _build/TOPDEMO.jsonl --once --no-clear
	@echo "(metrics snapshot: _build/TOPDEMO.prom)"

# record a dynamics run with call-path profiling on, reconstruct the
# same folded stacks offline from the recording, and sanity-grep the
# known hot path in both — the files are ready for flamegraph.pl or
# speedscope (see README "Profiling a run")
flame-demo:
	dune exec bin/bbng_cli.exe -- dynamics \
	  -b 2,2,2,2,2,2,2,2,2,2 --seed 7 \
	  --report _build/FLAMEDEMO.jsonl --profile _build/FLAMEDEMO.folded \
	  > /dev/null
	dune exec bin/bbng_cli.exe -- flame _build/FLAMEDEMO.jsonl \
	  -o _build/FLAMEDEMO.offline.folded
	grep -q "^dynamics.run;dynamics.select_move " _build/FLAMEDEMO.folded
	grep -q "^dynamics.run;dynamics.select_move " _build/FLAMEDEMO.offline.folded
	@echo "folded stacks: _build/FLAMEDEMO.folded (wall ns)," \
	  "_build/FLAMEDEMO.alloc.folded (minor words)," \
	  "_build/FLAMEDEMO.offline.folded (offline, from the recording)"
	@echo "render: flamegraph.pl _build/FLAMEDEMO.folded > flame.svg"

# index two recorded dynamics runs (same seed, so the diff is green)
# into a throwaway ledger, then walk the `runs` query family: list the
# index, diff the pair metric by metric, inspect the latest row — a
# ten-second look at cross-run observability (README "Querying past
# runs")
runs-demo:
	BBNG_LEDGER=_build/RUNSDEMO_ledger.jsonl dune exec bin/bbng_cli.exe -- \
	  dynamics -b 2,2,2,2,2,2,2,2,2,2 --seed 7 \
	  --report _build/RUNSDEMO_a.jsonl > /dev/null
	BBNG_LEDGER=_build/RUNSDEMO_ledger.jsonl dune exec bin/bbng_cli.exe -- \
	  dynamics -b 2,2,2,2,2,2,2,2,2,2 --seed 7 \
	  --report _build/RUNSDEMO_b.jsonl > /dev/null
	dune exec bin/bbng_cli.exe -- runs list --ledger _build/RUNSDEMO_ledger.jsonl
	dune exec bin/bbng_cli.exe -- runs diff --ledger _build/RUNSDEMO_ledger.jsonl @-2 @-1
	dune exec bin/bbng_cli.exe -- runs show --ledger _build/RUNSDEMO_ledger.jsonl @-1

# run a sharded census, SIGKILL it mid-checkpoint, resume it, and show
# the resumed artifact is byte-identical to an uninterrupted run — a
# ten-second look at the crash-recoverable census (README "Running a
# long census")
census-demo: build
	rm -rf _build/CENSUSDEMO && mkdir -p _build/CENSUSDEMO/fresh _build/CENSUSDEMO/killed
	cd _build/CENSUSDEMO/fresh && ../../default/bin/bbng_cli.exe census \
	  -b 1,1,1,1,1,1 --shard-size 400 --out CEN.jsonl
	-cd _build/CENSUSDEMO/killed && ../../default/bin/bbng_cli.exe census \
	  -b 1,1,1,1,1,1 --shard-size 400 --out CEN.jsonl \
	  --fault census.checkpoint@kill@3 2> /dev/null
	@echo "-- killed mid-checkpoint; shards committed so far:"
	@wc -l < _build/CENSUSDEMO/killed/CEN.jsonl.partial
	cd _build/CENSUSDEMO/killed && ../../default/bin/bbng_cli.exe census \
	  --resume CEN.jsonl
	cmp _build/CENSUSDEMO/fresh/CEN.jsonl _build/CENSUSDEMO/killed/CEN.jsonl
	@echo "-- kill+resume artifact is byte-identical to the fresh run"

# no-op unless ocamlformat is configured; kept dune-native so CI can
# opt in with a .ocamlformat file
fmt:
	-dune build @fmt --auto-promote
