(* Shared plumbing for the experiment harness. *)

open Bbng_core
module Table = Bbng_analysis.Table
module Growth = Bbng_analysis.Growth

(* Headers are flushed eagerly: experiment phases can run for minutes,
   and the counter/span stats land on stderr — without the flush the
   two streams interleave mid-line in captured logs. *)
let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar;
  flush stdout

let subsection title =
  Printf.printf "\n--- %s ---\n" title;
  flush stdout

let note fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "  %s\n" s;
      flush stdout)
    fmt

let rng seed = Random.State.make [| 0xBB9; seed |]

(* --- audit-trail artifacts --- *)

(* Certificates and flight recordings land in artifacts/ next to the
   BENCH_*.json reports: one file per certified construction or
   recorded dynamics run, independently re-checkable with
   `bbng_cli verify` / `bbng_cli replay` (bin/check.sh gates a golden
   subset in test/golden/). *)
let artifacts_dir () =
  let dir = "artifacts" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let artifact_path name = Filename.concat (artifacts_dir ()) name

(* Scaled equilibrium certification.  Three tiers, by estimated work:
   1. exact Nash (sum over players of C(n-1, b) BFS runs);
   2. full swap-stability (sum of b*n single-swap evaluations);
   3. sampled swap-stability (a spread of at most [sample] players).
   The returned string names the tier that ran and its verdict.

   [?artifact:"name"] additionally writes the certification's evidence
   to artifacts/CERT_<name>.json when a certificate-producing tier ran
   (the sampled tier checks too little to certify anything). *)
let certify_scaled ?(exact_limit = 400_000_000) ?(swap_limit = 300_000_000)
    ?(sample = 40) ?artifact version profile =
  let budgets = Strategy.budgets profile in
  let n = Strategy.n profile in
  let game = Game.make version budgets in
  let bfs_cost = 4 * n in
  let sat_add a b = if a > max_int - b then max_int else a + b in
  let exact_work =
    Array.fold_left
      (fun acc b ->
        let c = Bbng_graph.Combinatorics.binomial_sat (n - 1) b in
        sat_add acc (if c > max_int / bfs_cost then max_int else c * bfs_cost))
      0 (Budget.to_array budgets)
  in
  let swap_work = Budget.total budgets * n * bfs_cost in
  let emit cert =
    match artifact with
    | None -> ()
    | Some name ->
        let path = artifact_path (Printf.sprintf "CERT_%s.json" name) in
        Equilibrium.write_certificate path cert;
        note "wrote %s" path
  in
  if exact_work <= exact_limit then begin
    let cert = Equilibrium.certify_cert game profile in
    emit cert;
    match Equilibrium.certificate_verdict cert with
    | Equilibrium.Equilibrium -> "NE(exact)"
    | Equilibrium.Refuted _ -> "NOT-NE"
    | Equilibrium.Degraded _ -> "NE(degraded)"
  end
  else if swap_work <= swap_limit then begin
    let cert = Equilibrium.certify_swap_cert game profile in
    emit cert;
    match Equilibrium.certificate_verdict cert with
    | Equilibrium.Equilibrium -> "swap-stable"
    | Equilibrium.Refuted _ -> "NOT-swap-stable"
    | Equilibrium.Degraded _ -> "swap-stable(degraded)"
  end
  else begin
    let step = max 1 (n / sample) in
    let ok = ref true in
    let player = ref 0 in
    while !ok && !player < n do
      if Best_response.first_improving_swap game profile !player <> None then
        ok := false;
      player := !player + step
    done;
    if !ok then "swap-stable(sampled)" else "NOT-swap-stable(sampled)"
  end

(* Run [f] with a JSONL flight recorder capturing every dynamics event
   into artifacts/DYN_<name>.jsonl; the recording replays with
   `bbng_cli replay`.  The stream goes through the crash-safe partial
   protocol: a run killed mid-write leaves any previous recording
   untouched and a DYN_<name>.jsonl.partial holding a replayable
   prefix. *)
let record_dynamics ~name f =
  let path = artifact_path (Printf.sprintf "DYN_%s.jsonl" name) in
  let oc = Bbng_obs.Atomic_io.open_stream path in
  let result =
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Bbng_obs.Sink.scoped (Bbng_obs.Sink.Jsonl oc) f)
  in
  Bbng_obs.Atomic_io.commit_stream path;
  note "wrote %s" path;
  result

let diameter profile = Cost.social_cost (Strategy.underlying profile)

let fit_line label points =
  let fit = Growth.best_fit points in
  Printf.printf "  fit[%s]: %s\n" label (Format.asprintf "%a" Growth.pp_fit fit);
  fit

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let verdict_cell ok = if ok then "ok" else "VIOLATED"

(* --- machine-readable run reports --- *)

module Json = Bbng_obs.Json

(* BENCH_<name>.json in the invocation directory: the given fields
   plus a snapshot of every engine counter, the process GC delta and
   provenance (argv / compiler / word size), so the perf trajectory
   accumulates comparable, self-describing data run over run — and
   bench/main.exe --diff can gate on it. *)
let write_bench_report ~name fields =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let json =
    Json.Obj
      (("report", Json.Str name)
      :: fields
      @ [ ("counters", Bbng_obs.Stats.counters_json ()) ]
      @ [ ("gc", Bbng_obs.Gcstats.to_json (Bbng_obs.Gcstats.since_start ())) ]
      @ Bbng_obs.Stats.provenance_fields ())
  in
  (* temp + atomic rename: a crashed run never leaves a torn BENCH
     report for --diff to choke on *)
  Bbng_obs.Atomic_io.write_file path (fun oc ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  note "wrote %s" path
