(* CSR-vs-legacy answer check over a recorded census artifact.

   Reads a CENSUS_*.jsonl golden, re-realizes every equilibrium class
   representative it names, and compares the flat-engine answers
   (Csr-backed [Bfs.distances], iFUB [Distances.diameter]) against the
   retained adjacency-walking oracle on each graph.  This is the
   out-of-process twin of the qcheck oracle in test_csr.ml: random
   graphs exercise the engine broadly, but the goldens pin it on the
   exact graphs the paper's census artifacts were computed from —
   bin/check.sh runs this stage so a kernel regression cannot ship
   behind passing unit tests.  Exits non-zero on the first artifact
   whose answers diverge. *)

open Bbng_core
module Json = Bbng_obs.Json

let reps_of_file file =
  let ic =
    try open_in file
    with Sys_error e ->
      Printf.eprintf "csr-oracle: %s\n" e;
      exit 1
  in
  let reps = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.of_string line with
         | exception Json.Parse_error e ->
             close_in_noerr ic;
             Printf.eprintf "csr-oracle: %s: parse error: %s\n" file e;
             exit 1
         | json -> (
             match (Json.member "row" json, Json.member "classes" json) with
             | Some (Json.Str "shard"), Some (Json.List classes) ->
                 List.iter
                   (fun cj ->
                     match Json.member "rep" cj with
                     | Some (Json.Str rep) -> reps := rep :: !reps
                     | _ -> ())
                   classes
             | _ -> ())
     done
   with End_of_file -> close_in_noerr ic);
  List.rev !reps

let check_graph ~what g =
  let n = Bbng_graph.Undirected.n g in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "csr-oracle: MISMATCH on %s: %s\n" what msg;
        exit 1)
      fmt
  in
  for u = 0 to n - 1 do
    let csr_row = Bbng_graph.Bfs.distances g u in
    let legacy_row = Bbng_graph.Bfs.legacy_distances g u in
    if csr_row <> legacy_row then bad "BFS rows from %d differ" u
  done;
  let ifub = Bbng_graph.Distances.diameter g in
  let legacy =
    Bbng_graph.Distances.fold_eccentricities g (fun a _ e -> max a e) 0
  in
  if ifub <> legacy then
    bad "diameter: ifub=%s legacy=%s"
      (match ifub with Some d -> string_of_int d | None -> "None")
      (match legacy with Some d -> string_of_int d | None -> "None")

let run file =
  let reps = reps_of_file file in
  if reps = [] then begin
    Printf.eprintf "csr-oracle: %s: no class representatives found\n" file;
    exit 1
  end;
  (* artifacts repeat representatives across shards; each graph only
     needs checking once *)
  let seen = Hashtbl.create 64 in
  let checked = ref 0 in
  List.iter
    (fun rep ->
      if not (Hashtbl.mem seen rep) then begin
        Hashtbl.add seen rep ();
        let s =
          try Strategy.of_string rep
          with Invalid_argument e ->
            Printf.eprintf "csr-oracle: %s: bad rep %S: %s\n" file rep e;
            exit 1
        in
        check_graph ~what:(Printf.sprintf "%s rep %S" file rep)
          (Strategy.underlying s);
        incr checked
      end)
    reps;
  Printf.printf "%s: ok (%d equilibrium graphs, CSR == legacy)\n" file !checked
