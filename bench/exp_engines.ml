(* Engine head-to-head: overlay-BFS vs distance-row exact deviation
   pricing on exhaustive best-response scans.

   Both engines are exact (the qcheck oracle in test_deviation_eval
   pins rows == bfs on random profiles), so the interesting output is
   the wall-clock ratio: the rows engine replaces one BFS per candidate
   strategy with one cached BFS row per candidate *target* plus an
   O(b n) min-combine per candidate, dropping the scan from
   O(C(n-1,b) (n+m)) to O(n (n+m) + C(n-1,b) b n).

   The circulant profiles (i -> {i+1..i+b} mod n) keep the diameter
   well above the Lemma 2.2 threshold, so neither pruning tier fires
   and every cell really prices all C(n-1, b) candidates per player. *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table
module Deviation_eval = Bbng_core.Deviation_eval

let circulant ~n ~b =
  Strategy.make
    (Budget.uniform ~n ~budget:b)
    (Array.init n (fun i ->
         let s = Array.init b (fun k -> (i + k + 1) mod n) in
         Array.sort compare s;
         s))

let scan_all_players ~engine game profile =
  let n = Strategy.n profile in
  Array.init n (fun player ->
      Best_response.best_improvement ~engine game profile player)

let run () =
  section "ENGINES — overlay-BFS vs distance-row exact deviation pricing";
  let t =
    Table.make
      ~headers:
        [ "version"; "n"; "b"; "candidates/player"; "bfs (s)"; "rows (s)";
          "speedup"; "agree" ]
  in
  let module Json = Bbng_obs.Json in
  let headline = ref None in
  let cells =
    List.map
      (fun (version, n, b) ->
        let profile = circulant ~n ~b in
        let game = Game.make version (Strategy.budgets profile) in
        let candidates = Bbng_graph.Combinatorics.binomial (n - 1) b in
        let bfs_moves, bfs_s =
          time_it (fun () ->
              scan_all_players
                ~engine:(Deviation_eval.Fixed Deviation_eval.Bfs_overlay)
                game profile)
        in
        let rows_moves, rows_s =
          time_it (fun () ->
              scan_all_players
                ~engine:(Deviation_eval.Fixed Deviation_eval.Rows)
                game profile)
        in
        (* both engines are exact with the same deterministic scan
           order, so the full per-player move lists must coincide *)
        let agree = bfs_moves = rows_moves in
        let speedup = if rows_s > 0. then Some (bfs_s /. rows_s) else None in
        if version = Cost.Sum && n = 30 && b = 2 then headline := speedup;
        Table.add_row t
          [ Cost.version_name version; string_of_int n; string_of_int b;
            Bbng_graph.Combinatorics.count_to_string candidates;
            Printf.sprintf "%.4f" bfs_s; Printf.sprintf "%.4f" rows_s;
            (match speedup with Some s -> Printf.sprintf "%.1fx" s | None -> "-");
            verdict_cell agree ];
        Json.Obj
          [
            ("version", Json.Str (Cost.version_name version));
            ("n", Json.Int n);
            ("b", Json.Int b);
            ( "candidates_per_player",
              Json.Str (Bbng_graph.Combinatorics.count_to_string candidates) );
            ("bfs_s", Json.Float bfs_s);
            ("rows_s", Json.Float rows_s);
            ( "speedup",
              match speedup with Some s -> Json.Float s | None -> Json.Null );
            ("agree", Json.Bool agree);
          ])
      [
        (Cost.Sum, 20, 1);
        (Cost.Sum, 20, 2);
        (Cost.Sum, 30, 2);
        (Cost.Max, 30, 2);
        (Cost.Sum, 24, 3);
      ]
  in
  Table.print t;
  (match !headline with
  | Some s -> note "headline (SUM, n=30, b=2): rows engine %.1fx faster" s
  | None -> ());
  note
    "b = 1 is the rows engine's worst case (one row per candidate, no reuse across candidates beyond the base row)";
  write_bench_report ~name:"engines"
    [
      ( "headline_speedup_n30_b2",
        match !headline with Some s -> Json.Float s | None -> Json.Null );
      ("results", Json.List cells);
    ]
