(* BENCH_*.json regression differ: compare per-benchmark ns/run and
   minor words between two reports, with a noise threshold, and exit
   non-zero on regression — this is what closes the loop from the perf
   trajectory the harness records to an actual gate in bin/check.sh.

   The threshold is a percentage (default 25), overridable with
   BBNG_BENCH_DIFF_THRESHOLD; tiny absolute figures are ignored so
   sub-100ns benchmarks don't flap. *)

module Json = Bbng_obs.Json

let read_file file =
  let ic =
    try open_in file
    with Sys_error e ->
      Printf.eprintf "bench --diff: %s\n" e;
      exit 2
  in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

type row = { ns : float option; words : float option; r2 : float option }

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let results_of file =
  let json =
    try Json.of_string (read_file file)
    with Json.Parse_error e ->
      Printf.eprintf "bench --diff: %s: parse error: %s\n" file e;
      exit 2
  in
  match Json.member "results" json with
  | Some (Json.List results) ->
      List.filter_map
        (fun r ->
          match Json.member "name" r with
          | Some (Json.Str name) ->
              Some
                ( name,
                  {
                    ns = num (Json.member "ns_per_run" r);
                    words = num (Json.member "minor_words_per_run" r);
                    r2 = num (Json.member "r_square_time" r);
                  } )
          | _ -> None)
        results
  | _ ->
      Printf.eprintf "bench --diff: %s: missing \"results\"\n" file;
      exit 2

let threshold_pct () =
  match Sys.getenv_opt "BBNG_BENCH_DIFF_THRESHOLD" with
  | Some s -> (
      match float_of_string_opt s with
      | Some t when t > 0. -> t
      | _ ->
          Printf.eprintf
            "bench --diff: ignoring bad BBNG_BENCH_DIFF_THRESHOLD %S\n" s;
          25.)
  | None -> 25.

(* ignore regressions below these absolute floors: a 30%% swing on a
   60ns benchmark or a 50-word allocation is measurement noise *)
let ns_floor = 100.
let words_floor = 64.

(* bechamel's minor-words OLS fit can collapse to a degenerate 0 on a
   loaded machine even when the workload's true allocation is a steady
   1-2k words/run, so a comparison where either side reads exactly 0
   is indistinguishable from fit noise below this amplitude — use it
   as the floor for zero-sided words deltas instead of words_floor *)
let words_fit_collapse = 2048.

let words_floor_for old_v new_v =
  match (old_v, new_v) with
  | Some o, Some n when o = 0. || n = 0. -> words_fit_collapse
  | _ -> words_floor

type verdict = Ok_ | Faster | Regressed

let compare_metric ~floor ~threshold old_v new_v =
  match (old_v, new_v) with
  | Some o, Some n when o > floor || n > floor ->
      let pct = if o > 0. then (n -. o) /. o *. 100. else Float.infinity in
      if n > o && pct > threshold && n -. o > floor then (Regressed, pct)
      else if o > n && -.pct > threshold then (Faster, pct)
      else (Ok_, pct)
  | Some o, Some n ->
      ((Ok_), if o > 0. then (n -. o) /. o *. 100. else 0.)
  | _, _ -> (Ok_, 0.)

let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "?"

let pct_cell = function
  | p when Float.is_finite p -> Printf.sprintf "%+.1f%%" p
  | _ -> "?"

let run old_file new_file =
  let threshold = threshold_pct () in
  let old_results = results_of old_file and new_results = results_of new_file in
  let table =
    Bbng_analysis.Table.make
      ~headers:
        [ "benchmark"; "ns old"; "ns new"; "ns d%"; "mw old"; "mw new"; "mw d%"; "verdict" ]
  in
  let regressions = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (name, old_row) ->
      match List.assoc_opt name new_results with
      | None ->
          incr regressions;
          Bbng_analysis.Table.add_row table
            [ name; cell old_row.ns; "-"; "?"; cell old_row.words; "-"; "?";
              "MISSING" ]
      | Some new_row ->
          incr compared;
          let ns_v, ns_pct =
            compare_metric ~floor:ns_floor ~threshold old_row.ns new_row.ns
          in
          let w_v, w_pct =
            compare_metric
              ~floor:(words_floor_for old_row.words new_row.words)
              ~threshold old_row.words new_row.words
          in
          let verdict =
            match (ns_v, w_v) with
            | Regressed, _ | _, Regressed ->
                incr regressions;
                "REGRESSED"
            | Faster, _ | _, Faster -> "faster"
            | _ -> "ok"
          in
          (* a bad OLS fit on either side means the ns figures are not
             trustworthy enough to call a 25% swing real — say so *)
          let bad_fit = function Some r -> r < 0.8 | None -> false in
          let verdict =
            if bad_fit old_row.r2 || bad_fit new_row.r2 then
              verdict ^ " (noisy fit)"
            else verdict
          in
          Bbng_analysis.Table.add_row table
            [
              name; cell old_row.ns; cell new_row.ns; pct_cell ns_pct;
              cell old_row.words; cell new_row.words; pct_cell w_pct; verdict;
            ])
    old_results;
  List.iter
    (fun (name, new_row) ->
      if List.assoc_opt name old_results = None then
        Bbng_analysis.Table.add_row table
          [ name; "-"; cell new_row.ns; "?"; "-"; cell new_row.words; "?"; "new" ])
    new_results;
  Printf.printf "bench diff: %s -> %s (threshold %.0f%%)\n" old_file new_file
    threshold;
  Bbng_analysis.Table.print table;
  if !regressions > 0 then begin
    Printf.printf "%d regression%s past the %.0f%% threshold\n" !regressions
      (if !regressions = 1 then "" else "s")
      threshold;
    exit 1
  end
  else Printf.printf "no regressions (%d benchmarks compared)\n" !compared
