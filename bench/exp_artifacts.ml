(* Audit-trail artifacts: the golden set.

   Emits a small, deterministic collection of equilibrium certificates
   and dynamics flight recordings into artifacts/, then re-checks every
   one in-process exactly the way `bbng_cli verify` / `bbng_cli replay`
   would.  `make artifacts` promotes these files to test/golden/, where
   bin/check.sh gates them on every run — so a change that silently
   breaks certificate serialization, replay semantics, or the recorded
   event schema fails the gate instead of a future audit. *)

open Bbng_core
open Exp_common
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule

let cert_path name = artifact_path (Printf.sprintf "CERT_%s.json" name)

let emit_cert name cert =
  let path = cert_path name in
  Equilibrium.write_certificate path cert;
  (match Equilibrium.read_certificate path with
  | Error msg -> failwith (Printf.sprintf "%s does not read back: %s" path msg)
  | Ok cert' -> (
      match Equilibrium.verify_certificate cert' with
      | Ok () ->
          note "%s: %s — independent re-check OK" path
            (Format.asprintf "%a" Equilibrium.pp_verdict
               (Equilibrium.certificate_verdict cert'))
      | Error msg ->
          failwith (Printf.sprintf "%s fails verification: %s" path msg)))

let certificates () =
  subsection "golden certificates";
  let open Bbng_constructions in
  let sun = Unit_budget.concentrated_sun ~n:8 in
  let sun_game = Game.make Cost.Max (Strategy.budgets sun) in
  emit_cert "sun8_max" (Equilibrium.certify_cert sun_game sun);
  emit_cert "sun8_swap" (Equilibrium.certify_swap_cert sun_game sun);
  let tripod = Tripod.profile ~k:2 in
  emit_cert "tripod2_max"
    (Equilibrium.certify_cert
       (Game.make Cost.Max (Strategy.budgets tripod))
       tripod);
  (* a refuted certificate belongs in the golden set too: verification
     checks the evidence, not the verdict's polarity *)
  let path3 = Strategy.of_string "1,2;0;0" in
  emit_cert "refuted_path3_max"
    (Equilibrium.certify_cert (Game.make Cost.Max (Strategy.budgets path3)) path3)

let replay_file path =
  let ic = open_in path in
  let events, _skipped =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Bbng_obs.Trace_export.read_events ic)
  in
  match Bbng_obs.Replay.runs_of_events events with
  | [] -> failwith (Printf.sprintf "%s: no recorded runs" path)
  | runs ->
      List.iter
        (fun r ->
          match Bbng_dynamics.Replay.check_run r with
          | Ok summary -> note "%s: %s" path summary
          | Error d ->
              failwith
                (Printf.sprintf "%s diverges at step %d: %s" path
                   d.Bbng_dynamics.Replay.at_step d.Bbng_dynamics.Replay.reason))
        runs

let recordings () =
  subsection "golden flight recordings";
  let record name version budgets rule seed =
    let game = Game.make version budgets in
    (* bbng_cli's seeding convention, so a recording here is
       reproducible as `bbng_cli dynamics --seed N` *)
    let start = Strategy.random (Random.State.make [| seed |]) budgets in
    let outcome =
      record_dynamics ~name (fun () ->
          Dynamics.run ~max_steps:2_000
            ~meta:[ ("seed", Bbng_obs.Json.Int seed) ]
            game ~schedule:Schedule.Round_robin ~rule start)
    in
    note "%s: %s after %d steps" name
      (Dynamics.outcome_name outcome)
      (Dynamics.steps outcome);
    replay_file (artifact_path (Printf.sprintf "DYN_%s.jsonl" name))
  in
  record "rr_best_unit8_max" Cost.Max (Budget.unit_budgets 8) Dynamics.Exact_best
    1;
  record "rr_first_swap_n12_sum" Cost.Sum
    (Budget.uniform ~n:12 ~budget:2)
    Dynamics.First_swap 11

let run () =
  section "AUDIT ARTIFACTS — certificates and flight recordings (golden set)";
  certificates ();
  recordings ();
  note "promote with `make artifacts`; bin/check.sh verifies test/golden/"
