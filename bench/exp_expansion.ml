(* Theorem 6.9's expansion argument, watched on real graphs.

   The proof shows SUM equilibria have rapidly growing minimum balls
   (inequality (3)), which caps the diameter at 2^O(sqrt(log n)).  We
   compute the full f(k) = min |B_k(u)| profile for equilibria and for
   non-equilibrium long paths, check the inequality, and report the
   doubling radius (the proof's final quantity). *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table
module Expansion = Bbng_analysis.Expansion

let profiles () =
  subsection "E69a — ball growth profiles f(k) = min |B_k(u)|";
  let show name g =
    let p = Expansion.ball_profile g in
    let f_row =
      String.concat " "
        (List.map
           (fun k -> string_of_int p.Expansion.min_ball.(k))
           (Array.to_list p.Expansion.radii))
    in
    note "%-28s n=%-5d f: %s" name (Bbng_graph.Undirected.n g) f_row
  in
  show "sun n=24 (NE)" (Strategy.underlying (Bbng_constructions.Unit_budget.concentrated_sun ~n:24));
  show "binary depth 5 (SUM NE)" (Strategy.underlying (Bbng_constructions.Binary_tree.profile ~depth:5));
  show "tripod k=10 (MAX NE)" (Strategy.underlying (Bbng_constructions.Tripod.profile ~k:10));
  show "shift(8,3) (MAX NE)" (Bbng_graph.Generators.shift_graph ~t:8 ~k:3);
  show "path n=31 (no NE)" (Bbng_graph.Generators.path_graph 31)

let inequality () =
  subsection "E69b — inequality (3): f(4k) >= min((n+1)/2, k f(k) / (c log n))";
  let t =
    Table.make
      ~headers:[ "graph"; "n"; "diameter"; "holds (c=8)"; "holds (c=1)"; "doubling radius" ]
  in
  let rows =
    [
      ("sun n=48 (SUM NE)",
       Strategy.underlying (Bbng_constructions.Unit_budget.concentrated_sun ~n:48));
      ("binary depth 6 (SUM NE)",
       Strategy.underlying (Bbng_constructions.Binary_tree.profile ~depth:6));
      ("existence uniform(20,2)",
       Strategy.underlying
         (Bbng_constructions.Existence.construct (Budget.uniform ~n:20 ~budget:2)));
      ("tripod k=16 (MAX-only NE)",
       Strategy.underlying (Bbng_constructions.Tripod.profile ~k:16));
      ("path n=200 (not an NE)", Bbng_graph.Generators.path_graph 200);
      ("path n=400 (not an NE)", Bbng_graph.Generators.path_graph 400);
    ]
  in
  List.iter
    (fun (name, g) ->
      let d =
        match Bbng_graph.Distances.diameter g with Some d -> d | None -> -1
      in
      Table.add_row t
        [ name; string_of_int (Bbng_graph.Undirected.n g); string_of_int d;
          verdict_cell (Expansion.inequality_3 ~c:8.0 g);
          verdict_cell (Expansion.inequality_3 ~c:1.0 g);
          string_of_int (Expansion.doubling_radius g) ])
    rows;
  Table.print t;
  note
    "SUM equilibria expand (the inequality holds even at the aggressive c=1); a long path — the shape Thm 6.9 excludes — eventually fails it (n=400 at c=1), and fails ever harder as n grows"

let tree_balls () =
  subsection "E69d — Theorem 6.1: the largest tree-like ball around any vertex";
  let t =
    Table.make
      ~headers:[ "graph"; "n"; "max tree-ball radius"; "Thm 3.3-style O(log n) scale" ]
  in
  List.iter
    (fun (name, g) ->
      Table.add_row t
        [ name; string_of_int (Bbng_graph.Undirected.n g);
          string_of_int (Bbng_analysis.Bounds.max_tree_ball_radius g);
          string_of_int
            (Bbng_analysis.Bounds.tree_sum_diameter_bound
               ~n:(Bbng_graph.Undirected.n g)) ])
    [
      ("sun n=48 (NE)",
       Strategy.underlying (Bbng_constructions.Unit_budget.concentrated_sun ~n:48));
      ("figure-1 NE (n=22)",
       Strategy.underlying (Bbng_constructions.Existence.figure1_profile ()));
      ("binary depth 6 (SUM NE, a tree)",
       Strategy.underlying (Bbng_constructions.Binary_tree.profile ~depth:6));
      ("shift(8,3) (MAX NE)", Bbng_graph.Generators.shift_graph ~t:8 ~k:3);
      ("path n=127 (not an NE)", Bbng_graph.Generators.path_graph 127);
    ];
  Table.print t;
  note
    "non-tree equilibria keep tree-like balls shallow (Thm 6.1's conclusion); the tree equilibria that DO have deep tree balls are exactly the O(log n)-diameter ones; the deep-balled path is no equilibrium at all"

let bound_curve () =
  subsection "E69c — the 2^O(sqrt(log n)) ceiling vs measured equilibrium diameters";
  let t =
    Table.make ~headers:[ "n"; "measured max NE diameter (SUM witnesses)"; "2^sqrt(log2 n)" ]
  in
  List.iter
    (fun depth ->
      let n = Bbng_constructions.Binary_tree.n_of_depth depth in
      Table.add_row t
        [ string_of_int n; string_of_int (2 * depth);
          string_of_int (Bbng_analysis.Bounds.sum_diameter_bound ~c:1.0 n) ])
    [ 2; 4; 6; 8; 10; 12 ];
  Table.print t;
  note
    "the deepest SUM equilibria we can certify are the Theta(log n) trees, comfortably below the theorem's ceiling"

let run () =
  section "THEOREM 6.9 — expansion of SUM equilibria";
  profiles ();
  inequality ();
  tree_balls ();
  bound_curve ()
