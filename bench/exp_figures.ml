(* Figures 1-3: the paper's three illustrations, regenerated and
   machine-checked. *)

open Bbng_core
open Bbng_constructions
open Exp_common
module Table = Bbng_analysis.Table
module Bounds = Bbng_analysis.Bounds
module Digraph = Bbng_graph.Digraph

(* Figure 1: the Case-2 existence construction at n=22, z=16, t=19. *)
let figure1 () =
  subsection "Figure 1 — Theorem 2.3 Case 2 construction (n=22, z=16, t=19)";
  let p = Existence.figure1_profile () in
  let built = Existence.construct_sorted Existence.figure1_budgets in
  note "construct_sorted reproduces the figure's arcs exactly: %s"
    (verdict_cell (Strategy.equal p built));
  note "t parameter: %d (paper: 19)" (Existence.case2_t Existence.figure1_budgets);
  note "diameter: %d (paper: at most 4)" (diameter p);
  note "MAX certification: %s" (certify_scaled Cost.Max p);
  note "SUM certification: %s" (certify_scaled Cost.Sum p);
  (* role breakdown as drawn in the figure *)
  let g = Strategy.realize p in
  let t = Table.make ~headers:[ "vertex (paper)"; "role"; "budget"; "out-arcs to" ] in
  List.iter
    (fun v ->
      let role =
        if v < 16 then "A (zero budget)"
        else if v <= 18 then "B"
        else if v <= 20 then "C"
        else "v_n"
      in
      let outs =
        String.concat ","
          (List.map (fun x -> string_of_int (x + 1))
             (Array.to_list (Digraph.out_neighbors g v)))
      in
      Table.add_row t
        [ Printf.sprintf "v%d" (v + 1); role;
          string_of_int (Digraph.out_degree g v);
          (if outs = "" then "-" else outs) ])
    [ 0; 15; 16; 17; 18; 19; 20; 21 ];
  Table.print t;
  (* sweep: the same construction across a family of (n, z) choices *)
  let t = Table.make ~headers:[ "n"; "z"; "case"; "diameter"; "MAX"; "SUM" ] in
  List.iter
    (fun (n, z, big) ->
      (* z zeros, then a spread of positive budgets topped by [big] *)
      let rest = n - z in
      let budgets =
        Array.init n (fun i ->
            if i < z then 0
            else if i = n - 1 then big
            else 3 + ((i - z) mod 3))
      in
      (* clamp into validity and connectability *)
      let b = Budget.of_array budgets in
      ignore rest;
      let p = Existence.construct b in
      Table.add_row t
        [ string_of_int n; string_of_int z;
          Existence.case_name (Existence.case_of b);
          string_of_int (diameter p);
          certify_scaled Cost.Max p; certify_scaled Cost.Sum p ])
    [ (10, 6, 3); (14, 9, 4); (18, 12, 5); (22, 16, 5); (26, 19, 6) ];
  Table.print t

(* Figure 2: the tripod with its per-vertex best-response certificates. *)
let figure2 () =
  subsection "Figure 2 — Theorem 3.2 tripod (MAX tree equilibrium, diameter Theta(n))";
  let k = 3 in
  let p = Tripod.profile ~k in
  let game = Game.make Cost.Max (Strategy.budgets p) in
  note "k=%d: n=%d, diameter %d = 2k" k (Tripod.n_of_k k) (diameter p);
  let t =
    Table.make ~headers:[ "vertex"; "role"; "budget"; "local diameter"; "best response?" ]
  in
  let role v =
    if v = Tripod.hub ~k then "w (hub)"
    else
      let leg = [| "x"; "y"; "z" |].(v / k) in
      Printf.sprintf "%s_%d" leg ((v mod k) + 1)
  in
  for v = 0 to Tripod.n_of_k k - 1 do
    let cost = Game.player_cost game p v in
    let is_best = Best_response.exact_improvement game p v = None in
    Table.add_row t
      [ string_of_int v; role v;
        string_of_int (Budget.get (Strategy.budgets p) v);
        string_of_int cost; verdict_cell is_best ]
  done;
  Table.print t;
  note "every vertex is playing a best response: the tree is a MAX Nash equilibrium"

(* Figure 3: the longest-path decomposition behind Theorem 3.3. *)
let figure3 () =
  subsection "Figure 3 — Theorem 3.3 proof decomposition on SUM tree equilibria";
  List.iter
    (fun depth ->
      let p = Binary_tree.profile ~depth in
      let r = Bounds.figure3_decomposition p in
      note "binary tree depth %d: longest path %d vertices, diameter %d" depth
        (List.length r.Bounds.path) r.Bounds.diameter;
      note "  attachment sizes a(i): [%s]"
        (String.concat "; " (List.map string_of_int (Array.to_list r.Bounds.attachment)));
      note "  forward arcs at path indices: [%s]"
        (String.concat "; " (List.map string_of_int r.Bounds.forward_arcs));
      note "  inequality (1) a(i_j+1) >= sum_(k>i_j+1) a(k): %s"
        (verdict_cell r.Bounds.inequality_holds))
    [ 2; 3; 4; 5 ];
  (* contrast: the tripod (not a SUM equilibrium) breaks inequality (1) *)
  let r = Bounds.figure3_decomposition (Tripod.profile ~k:4) in
  note "tripod k=4 (MAX-only equilibrium): inequality (1) %s — SUM forces short trees"
    (if r.Bounds.inequality_holds then "holds (unexpected!)" else "fails, as the theory predicts")

let run () =
  section "FIGURES 1-3";
  figure1 ();
  figure2 ();
  figure3 ()
