(* Section 8's open question: does best-response dynamics converge?

   The paper leaves convergence open (Laoutaris et al. exhibit loops in
   the directed variant).  We measure convergence rate, steps to
   converge, and cycle frequency across schedules, move rules, and
   instance classes. *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule

let trials = 12

let run_batch version budgets schedule rule =
  let game = Game.make version budgets in
  let converged = ref 0 and cycles = ref 0 and limited = ref 0 in
  let total_steps = ref 0 and max_steps_seen = ref 0 in
  let final_diameters = ref [] in
  (* batch-level heartbeat (one unit per trial) on top of the per-run
     task Dynamics.run starts itself — a long experiment with a
     --metrics-out / BBNG_METRICS_OUT scrape file shows both levels *)
  Bbng_obs.Progress.with_task ~total:trials "bench.dynamics_trials"
    (fun progress ->
      for seed = 1 to trials do
        let start = Strategy.random (rng (1000 + seed)) budgets in
        (match
           Dynamics.run ~max_steps:2_000 game ~schedule ~rule start
         with
        | Dynamics.Converged { steps; profile } ->
            incr converged;
            total_steps := !total_steps + steps;
            if steps > !max_steps_seen then max_steps_seen := steps;
            final_diameters :=
              Cost.social_cost (Strategy.underlying profile) :: !final_diameters
        | Dynamics.Cycle _ -> incr cycles
        | Dynamics.Step_limit _ | Dynamics.Interrupted _ -> incr limited);
        Bbng_obs.Progress.step progress
      done);
  let avg =
    if !converged = 0 then 0.0
    else float_of_int !total_steps /. float_of_int !converged
  in
  let dmax = List.fold_left max 0 !final_diameters in
  (!converged, !cycles, !limited, avg, !max_steps_seen, dmax)

let convergence_table () =
  subsection "E8a — convergence of exact best-response dynamics (12 random starts each)";
  let t =
    Table.make
      ~headers:
        [ "instance"; "version"; "schedule"; "conv"; "cycle"; "limit";
          "avg steps"; "max steps"; "max NE diam" ]
  in
  let instances =
    [ ("unit n=8", Budget.unit_budgets 8);
      ("unit n=10", Budget.unit_budgets 10);
      ("uniform(8,2)", Budget.uniform ~n:8 ~budget:2);
      ("tree (0,1,1,...)", Budget.of_array (Array.init 8 (fun i -> if i = 0 then 0 else 1)));
    ]
  in
  List.iter
    (fun (name, b) ->
      List.iter
        (fun version ->
          List.iter
            (fun schedule ->
              let c, cy, l, avg, mx, dmax =
                run_batch version b schedule Dynamics.Exact_best
              in
              Table.add_row t
                [ name; Cost.version_name version; Schedule.name schedule;
                  string_of_int c; string_of_int cy; string_of_int l;
                  Printf.sprintf "%.1f" avg; string_of_int mx; string_of_int dmax ])
            [ Schedule.Round_robin; Schedule.Random_order 7 ])
        Cost.all_versions)
    instances;
  Table.print t;
  note "every NE reached is exact (Exact_best converges only at Nash equilibria)"

let rule_comparison () =
  subsection "E8b — move rules compared (SUM, uniform budget 2, n=8)";
  let t =
    Table.make
      ~headers:[ "rule"; "conv"; "cycle"; "limit"; "avg steps"; "note" ]
  in
  let b = Budget.uniform ~n:8 ~budget:2 in
  List.iter
    (fun (rule, what) ->
      let c, cy, l, avg, _, _ = run_batch Cost.Sum b Schedule.Round_robin rule in
      Table.add_row t
        [ Dynamics.rule_name rule; string_of_int c; string_of_int cy;
          string_of_int l; Printf.sprintf "%.1f" avg; what ])
    [
      (Dynamics.Exact_best, "stops only at Nash equilibria");
      (Dynamics.First_improving, "stops only at Nash equilibria");
      (Dynamics.Best_swap, "stops at swap equilibria");
      (Dynamics.First_swap, "stops at swap equilibria");
    ];
  Table.print t

let steps_growth () =
  subsection "E8c — convergence steps vs n (unit budgets, SUM, round-robin)";
  let t = Table.make ~headers:[ "n"; "conv/12"; "avg steps"; "max steps" ] in
  List.iter
    (fun n ->
      let c, _, _, avg, mx, _ =
        run_batch Cost.Sum (Budget.unit_budgets n) Schedule.Round_robin
          Dynamics.Exact_best
      in
      Table.add_row t
        [ string_of_int n; string_of_int c; Printf.sprintf "%.1f" avg;
          string_of_int mx ])
    [ 4; 6; 8; 10; 12; 14 ];
  Table.print t;
  note "steps grow mildly with n; no best-response cycle was observed in this game"

let improvement_graphs () =
  subsection
    "E8d — exact improvement graphs: the finite improvement property on small instances";
  let t =
    Table.make
      ~headers:
        [ "budgets"; "version"; "profiles"; "improving arcs"; "sinks (=NE)";
          "acyclic (FIP)"; "longest improving path" ]
  in
  let module Ig = Bbng_dynamics.Improvement_graph in
  List.iter
    (fun l ->
      List.iter
        (fun version ->
          let b = Budget.of_list l in
          let game = Game.make version b in
          let g = Ig.build game in
          Table.add_row t
            [ String.concat "," (List.map string_of_int l);
              Cost.version_name version;
              string_of_int (Array.length g.Ig.profiles);
              string_of_int (List.length g.Ig.arcs);
              string_of_int (List.length g.Ig.sinks);
              (if g.Ig.has_cycle then "NO — cycle found!" else "yes");
              (if g.Ig.longest_path_lower_bound < 0 then "-"
               else string_of_int g.Ig.longest_path_lower_bound) ])
        Cost.all_versions)
    [
      [ 1; 1; 1 ]; [ 1; 1; 1; 1 ]; [ 0; 1; 1; 1 ]; [ 2; 1; 1; 0 ];
      [ 2; 2; 1; 1 ]; [ 1; 1; 1; 1; 1 ];
    ];
  Table.print t;
  note
    "every small instance checked has an ACYCLIC improvement graph: better-response dynamics converge from every start under every schedule (exact evidence toward the Section 8 question; the directed BBC baseline already cycles at n=6 — see the baselines experiment)"

let large_scale () =
  subsection
    "E8e — swap dynamics at scale (the incremental evaluator's production case)";
  let t =
    Table.make
      ~headers:
        [ "n"; "budget"; "outcome"; "swaps"; "wall (s)"; "final diameter";
          "stability check" ]
  in
  List.iter
    (fun (n, b, seed) ->
      let budgets = Budget.uniform ~n ~budget:b in
      let game = Game.make Cost.Sum budgets in
      let start = Strategy.random (rng seed) budgets in
      let (outcome, steps, final), wall =
        time_it (fun () ->
            (* the smallest instance doubles as a flight recording:
               artifacts/DYN_large_scale_n50.jsonl replays with
               `bbng_cli replay` *)
            let run () =
              Dynamics.run ~max_steps:5_000 game ~schedule:Schedule.Round_robin
                ~rule:Dynamics.First_swap start
            in
            let o =
              if n = 50 then record_dynamics ~name:"large_scale_n50" run
              else run ()
            in
            (Dynamics.outcome_name o, Dynamics.steps o, Dynamics.final_profile o))
      in
      Table.add_row t
        [ string_of_int n; string_of_int b; outcome; string_of_int steps;
          Printf.sprintf "%.2f" wall;
          string_of_int (Game.social_cost game final);
          certify_scaled
            ~artifact:(Printf.sprintf "dyn_final_n%d_b%d_sum" n b)
            Cost.Sum final ])
    [ (50, 2, 1); (100, 2, 2); (100, 3, 3); (200, 2, 4) ];
  Table.print t;
  note
    "hundreds of players converge to diameter-2/3 overlays in seconds; stability of the endpoint is re-checked independently"

let run () =
  section "SECTION 8 — best-response dynamics (open question probed empirically)";
  convergence_table ();
  rule_comparison ();
  steps_growth ();
  improvement_graphs ();
  large_scale ()
