(* Theorem 7.2: SUM equilibria with all budgets >= k are k-connected or
   have diameter < 4.

   Equilibria are produced two ways — the Theorem 2.3 construction and
   best-response dynamics from random starts — and the conclusion is
   checked with the exact max-flow connectivity oracle. *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table
module Bounds = Bbng_analysis.Bounds
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule

let check_profile t name profile =
  let r = Bounds.check_theorem_7_2 profile in
  Table.add_row t
    [ name; string_of_int (Strategy.n profile);
      string_of_int r.Bounds.min_budget; string_of_int r.Bounds.diameter_;
      string_of_int r.Bounds.connectivity; verdict_cell r.Bounds.theorem_7_2_ok ]

let constructed () =
  subsection "E7a — Theorem 7.2 on constructed equilibria (min budget >= k)";
  let t =
    Table.make
      ~headers:[ "instance"; "n"; "min budget"; "diameter"; "connectivity"; "Thm 7.2" ]
  in
  List.iter
    (fun (n, k) ->
      let b = Budget.uniform ~n ~budget:k in
      let p = Bbng_constructions.Existence.construct b in
      check_profile t (Printf.sprintf "uniform(%d,%d)" n k) p)
    [ (6, 2); (8, 2); (8, 3); (10, 3); (12, 4) ];
  (* shift-graph equilibria have positive budgets too *)
  check_profile t "shift(4,2)" (Bbng_constructions.Shift_graph.profile ~t:4 ~k:2);
  Table.print t

let via_dynamics () =
  subsection "E7b — Theorem 7.2 on SUM equilibria found by best-response dynamics";
  let t =
    Table.make
      ~headers:
        [ "start seed"; "n"; "min budget"; "outcome"; "diameter"; "connectivity"; "Thm 7.2" ]
  in
  List.iter
    (fun (n, k, seed) ->
      let b = Budget.uniform ~n ~budget:k in
      let game = Game.make Cost.Sum b in
      let start = Strategy.random (rng seed) b in
      let outcome =
        Dynamics.run ~max_steps:3_000 game ~schedule:Schedule.Round_robin
          ~rule:Dynamics.Exact_best start
      in
      let p = Dynamics.final_profile outcome in
      let r = Bounds.check_theorem_7_2 p in
      (* Thm 7.2 only asserts the conclusion at equilibria *)
      let concl =
        match outcome with
        | Dynamics.Converged _ -> verdict_cell r.Bounds.theorem_7_2_ok
        | Dynamics.Cycle _ | Dynamics.Step_limit _ | Dynamics.Interrupted _ ->
            "(not an equilibrium)"
      in
      Table.add_row t
        [ string_of_int seed; string_of_int n; string_of_int k;
          Dynamics.outcome_name outcome; string_of_int r.Bounds.diameter_;
          string_of_int r.Bounds.connectivity; concl ])
    [ (7, 2, 1); (7, 2, 2); (8, 2, 3); (8, 3, 4); (9, 2, 5); (9, 3, 6) ];
  Table.print t

let lemma_7_1 () =
  subsection "E7d — Lemma 7.1: high-budget vertices next to a minimum cut see everything within 2";
  let t =
    Table.make
      ~headers:[ "instance"; "min cut"; "eligible vertices"; "local diam <= 2" ]
  in
  List.iter
    (fun (name, p) ->
      match Bounds.check_lemma_7_1 p with
      | None -> Table.add_row t [ name; "(no cut: complete)"; "-"; "-" ]
      | Some r ->
          Table.add_row t
            [ name;
              "{" ^ String.concat "," (List.map string_of_int r.Bounds.cut) ^ "}";
              string_of_int (List.length r.Bounds.eligible);
              verdict_cell r.Bounds.all_local_diameter_le_2 ])
    [
      ("uniform(8,2) NE", Bbng_constructions.Existence.construct (Budget.uniform ~n:8 ~budget:2));
      ("uniform(10,3) NE", Bbng_constructions.Existence.construct (Budget.uniform ~n:10 ~budget:3));
      ("uniform(12,4) NE", Bbng_constructions.Existence.construct (Budget.uniform ~n:12 ~budget:4));
      ("binary depth 4 (budget floor 0)", Bbng_constructions.Binary_tree.profile ~depth:4);
      ("engineered: 2-clique on a cut vertex",
       Strategy.of_digraph
         (Bbng_graph.Digraph.of_arcs ~n:4
            [ (1, 0); (1, 2); (2, 0); (2, 1); (3, 0) ]));
    ];
  Table.print t;
  note
    "the hypothesis requires a whole component of high-budget cut-adjacent vertices; where it bites, the conclusion holds on every certified equilibrium, and it is correctly vacuous on the low-budget tree"

let contrast_low_budget () =
  subsection "E7c — contrast: min budget below k gives no such guarantee";
  (* tree equilibria are 1-connected with large diameter: with budgets
     not all >= 2 nothing prevents cut vertices *)
  let p = Bbng_constructions.Binary_tree.profile ~depth:4 in
  let r = Bounds.check_theorem_7_2 p in
  note "binary tree (budgets 0/2): diameter %d, connectivity %d — 1-connected and deep, allowed because min budget = 0"
    r.Bounds.diameter_ r.Bounds.connectivity

let run () =
  section "THEOREM 7.2 — connectivity of SUM equilibria";
  constructed ();
  via_dynamics ();
  lemma_7_1 ();
  contrast_low_budget ()
