(* Section 1.1's comparative claims, measured.

   The paper positions its model against two neighbors:
   - the directed BBC game of Laoutaris et al. (same budgets, but links
     usable only by their owner);
   - the basic network creation game of Alon et al. (no ownership: any
     endpoint may swap any incident edge) — where MAX tree equilibria
     have diameter at most 3, against the Theta(n) tripod here.        *)

open Bbng_core
open Bbng_baselines
open Exp_common
module Table = Bbng_analysis.Table
module Generators = Bbng_graph.Generators

let ownership_matters () =
  subsection "B1 — the tripod survives ownership, dies without it (Alon et al. contrast)";
  let t =
    Table.make
      ~headers:
        [ "k"; "n"; "diameter"; "BBG Nash (ours)"; "basic-NCG swap-stable"; "escaping vertex" ]
  in
  List.iter
    (fun k ->
      let p = Bbng_constructions.Tripod.profile ~k in
      let game = Game.make Cost.Max (Strategy.budgets p) in
      let ours = Equilibrium.is_nash game p in
      let witness =
        Basic_ncg.bbg_nash_implies_basic_instability_witness Cost.Max p
      in
      Table.add_row t
        [ string_of_int k; string_of_int (Bbng_constructions.Tripod.n_of_k k);
          string_of_int (2 * k); verdict_cell ours;
          (match witness with None -> "stable" | Some _ -> "UNSTABLE");
          (match witness with
          | None -> "-"
          | Some (v, drop, add, cost) ->
              Printf.sprintf "v%d swaps %d->%d, cost %d" v drop add cost) ])
    [ 2; 3; 4; 6 ];
  Table.print t;
  note
    "the paper (Sec 1.1): basic-NCG MAX tree equilibria have diameter <= 3, ours reach Theta(n) — ownership is the difference"

let direction_matters () =
  subsection "B2 — the same profiles under directed (BBC) vs undirected semantics";
  let t =
    Table.make
      ~headers:
        [ "profile"; "n"; "undirected Nash"; "BBC Nash"; "undirected diam"; "BBC diam" ]
  in
  let rows =
    [
      ("in-star", Strategy.of_digraph (Generators.in_star 6));
      ("out-star", Strategy.of_digraph (Generators.out_star 6));
      ("directed C6", Strategy.of_digraph (Generators.directed_cycle 6));
      ("sun n=8", Bbng_constructions.Unit_budget.concentrated_sun ~n:8);
      ("binary depth 2", Bbng_constructions.Binary_tree.profile ~depth:2);
    ]
  in
  List.iter
    (fun (name, p) ->
      let game = Game.make Cost.Sum (Strategy.budgets p) in
      Table.add_row t
        [ name; string_of_int (Strategy.n p);
          verdict_cell (Equilibrium.is_nash game p);
          verdict_cell (Bbc.is_nash p);
          string_of_int (Game.social_cost game p);
          string_of_int (Bbc.social_diameter p) ])
    rows;
  Table.print t;
  note
    "zero-budget hubs are fine sinks in the undirected game but dead ends in BBC; direction changes which profiles are stable"

let bbc_dynamics () =
  subsection "B3 — BBC best-response dynamics (Laoutaris et al. report non-convergence is possible)";
  let t = Table.make ~headers:[ "n"; "budget"; "seed"; "outcome"; "steps" ] in
  List.iter
    (fun (n, b, seed) ->
      let budgets = Budget.uniform ~n ~budget:b in
      let start = Strategy.random (rng seed) budgets in
      (* simple round-robin exact-BR loop with profile memory *)
      let seen = Hashtbl.create 64 in
      Hashtbl.replace seen (Strategy.to_string start) 0;
      let rec go profile step =
        if step > 600 then ("step-limit", step)
        else begin
          let moved = ref None in
          let player = ref 0 in
          while !moved = None && !player < n do
            (match Bbc.exact_improvement profile !player with
            | Some m ->
                moved :=
                  Some
                    (Strategy.with_strategy profile ~player:!player
                       ~targets:m.Best_response.targets)
            | None -> ());
            incr player
          done;
          match !moved with
          | None -> ("converged", step)
          | Some profile' ->
              let key = Strategy.to_string profile' in
              if Hashtbl.mem seen key then ("cycle", step + 1)
              else begin
                Hashtbl.replace seen key (step + 1);
                go profile' (step + 1)
              end
        end
      in
      let outcome, steps = go start 0 in
      Table.add_row t
        [ string_of_int n; string_of_int b; string_of_int seed; outcome;
          string_of_int steps ])
    [ (5, 1, 1); (5, 1, 2); (6, 1, 3); (6, 2, 4); (7, 1, 5); (7, 2, 6); (8, 2, 7) ];
  Table.print t

let run () =
  section "SECTION 1.1 BASELINES — ownership and direction";
  ownership_matters ();
  direction_matters ();
  bbc_dynamics ()
