(* Exact extremal diameters at small n.

   Table 1 states asymptotics; at small n we can compute the EXACT
   extremal values by enumerating, per instance class, every budget
   vector (up to permutation — Nash-ness is relabelling-invariant,
   which the test suite verifies), and within each instance every
   equilibrium.  The result is a ground-truth miniature of Table 1:
   the worst equilibrium diameter each class can produce at that n. *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table

(* Nonincreasing budget vectors (partitions with bounded parts) of a
   given total: representatives of instances up to relabelling. *)
let sorted_budget_vectors ~n ~total =
  let acc = ref [] in
  let parts = Array.make n 0 in
  let rec go idx remaining cap =
    if idx = n then begin
      if remaining = 0 then acc := Array.copy parts :: !acc
    end
    else
      (* keep nonincreasing: next part at most [cap]; parts < n *)
      let hi = min cap (min remaining (n - 1)) in
      for v = hi downto 0 do
        parts.(idx) <- v;
        go (idx + 1) (remaining - v) v
      done
  in
  go 0 total (n - 1);
  !acc

let extremal_for_class ~n ~version ~keep =
  (* scan all totals 0..n(n-1); keep instances passing [keep]; track the
     worst equilibrium diameter and its witness *)
  let worst = ref None in
  for total = 0 to n * (n - 1) do
    List.iter
      (fun parts ->
        let b = Budget.of_array parts in
        if keep b then begin
          let game = Game.make version b in
          match Equilibrium.equilibrium_diameter_range game with
          | None -> ()
          | Some (_, hi) -> (
              match !worst with
              | Some (d, _) when d >= hi -> ()
              | Some _ | None -> worst := Some (hi, b))
        end)
      (sorted_budget_vectors ~n ~total)
  done;
  !worst

let run () =
  section "EXTREMAL SEARCH — exact worst equilibrium diameters at small n";
  subsection
    "Exact Table 1 miniature: worst NE diameter over ALL instances of each class";
  let t =
    Table.make
      ~headers:
        [ "class"; "n"; "version"; "worst NE diameter"; "achieved by budgets" ]
  in
  (* per class: which n are exhaustively feasible (sigma-constrained
     classes admit one more n than the all-budget scans) *)
  let classes =
    [
      ("tree (sigma=n-1)", (fun b -> Budget.is_tree_instance b), [ 4; 5; 6 ]);
      ("all-unit", (fun b -> Budget.is_unit b), [ 4; 5; 6 ]);
      ("all-positive", (fun b -> Budget.all_positive b), [ 4; 5 ]);
      ("general (connectable)", (fun b -> Budget.connectable b), [ 4; 5 ]);
    ]
  in
  List.iter
    (fun (name, keep, sizes) ->
      List.iter
        (fun n ->
          List.iter
            (fun version ->
              match extremal_for_class ~n ~version ~keep with
              | Some (d, b) ->
                  Table.add_row t
                    [ name; string_of_int n; Cost.version_name version;
                      string_of_int d;
                      String.concat ","
                        (List.map string_of_int (Array.to_list (Budget.to_array b))) ]
              | None ->
                  Table.add_row t
                    [ name; string_of_int n; Cost.version_name version; "-"; "-" ])
            Cost.all_versions)
        sizes)
    classes;
  Table.print t;
  note
    "reading the miniature against Table 1: the tree class already attains the largest diameters and grows with n; all-unit stays at 2 until n=6, where MAX admits a diameter-3 equilibrium and SUM does not — exactly the Theorem 4.1 (<=4) vs 4.2 (<=7) separation beginning to open";
  note
    "budget vectors are enumerated up to permutation; Nash-ness is relabelling-invariant (a tested property), so no instance is missed"

