(* Append-only bench trajectory: every perf run adds one JSON line to
   BENCH_history.jsonl — provenance, per-bench ns/words/r², and a
   digest of the engine counters — so `bench --trend` has a recorded
   history to gate against instead of a single overwritten report.

   The file is append-only on purpose: runs from different machines or
   branches coexist, and the robust median/MAD in Trend absorbs the
   odd outlier line.  Reading tolerates torn or alien lines (a crash
   mid-append loses at most its own line). *)

module Json = Bbng_obs.Json

let file = "BENCH_history.jsonl"

type bench = {
  name : string;
  ns : float option;
  minor : float option;
  major : float option;
  r2 : float option;
}

type entry = {
  ts : string;
  report : string;
  benches : bench list;
  counters_digest : string;
}

let utc_timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

(* one digest line instead of the full counter snapshot: enough to tell
   "same work executed" apart from "the engines took different paths",
   without bloating every history line *)
let counters_digest () =
  Digest.to_hex
    (Digest.string (Json.to_string (Bbng_obs.Stats.counters_json ())))

let num = function Some v -> Json.Float v | None -> Json.Null

let entry_json ~report benches =
  Json.Obj
    ([
       ("ts", Json.Str (utc_timestamp ()));
       ("report", Json.Str report);
       ( "results",
         Json.List
           (List.map
              (fun b ->
                Json.Obj
                  [
                    ("name", Json.Str b.name);
                    ("ns_per_run", num b.ns);
                    ("minor_words_per_run", num b.minor);
                    ("major_words_per_run", num b.major);
                    ("r_square_time", num b.r2);
                  ])
              benches) );
       ("counters_digest", Json.Str (counters_digest ()));
     ]
    @ Bbng_obs.Stats.provenance_fields ())

let append ?(file = file) ~report benches =
  let line = Json.to_string (entry_json ~report benches) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n')

(* --- reading --- *)

let float_field k j =
  match Json.member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let entry_of_json j =
  match (str_field "report" j, Json.member "results" j) with
  | Some report, Some (Json.List results) ->
      let benches =
        List.filter_map
          (fun r ->
            match str_field "name" r with
            | Some name ->
                Some
                  {
                    name;
                    ns = float_field "ns_per_run" r;
                    minor = float_field "minor_words_per_run" r;
                    major = float_field "major_words_per_run" r;
                    r2 = float_field "r_square_time" r;
                  }
            | None -> None)
          results
      in
      Some
        {
          ts = Option.value ~default:"?" (str_field "ts" j);
          report;
          benches;
          counters_digest =
            Option.value ~default:"" (str_field "counters_digest" j);
        }
  | _ -> None

(* skipped lines are counted, not fatal: a torn tail (crash mid-append)
   or a hand-edited line must never wedge the trend gate *)
let load ?(file = file) () =
  match open_in file with
  | exception Sys_error _ -> ([], 0)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let entries = ref [] and skipped = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then
                 match Json.of_string line with
                 | j -> (
                     match entry_of_json j with
                     | Some e -> entries := e :: !entries
                     | None -> incr skipped)
                 | exception Json.Parse_error _ -> incr skipped
             done
           with End_of_file -> ());
          (List.rev !entries, !skipped))
