(* Section 6 machinery: leaf folding and chain contraction.

   Watch Lemmas 6.2-6.5 act on concrete SUM tree equilibria: fold all
   poor leaves (Cor 6.3), verify the height change is O(log w), check
   the rich-leaf distance invariant (Lem 6.4), and contract degree-2
   chains (Lem 6.5). *)

(* game types come through Bbng_core.Weighted below *)
open Bbng_constructions
open Exp_common
module Table = Bbng_analysis.Table
module Weighted = Bbng_core.Weighted
module Distances = Bbng_graph.Distances

let height w =
  (* height of the alive graph from its smallest alive vertex *)
  match Weighted.alive w with
  | [] -> 0
  | root :: _ -> (
      match Distances.eccentricity (Weighted.underlying w) root with
      | Some e -> e
      | None ->
          (* dead vertices are isolated; measure inside the alive part *)
          let dist = Bbng_graph.Bfs.distances (Weighted.underlying w) root in
          Array.fold_left max 0 dist)

let folding () =
  subsection "E6a — poor-leaf folding on SUM tree equilibria (Cor 6.3)";
  let t =
    Table.make
      ~headers:
        [ "tree"; "n"; "folds"; "alive after"; "weak-eq before"; "weak-eq after";
          "height"; "1+log2(w)" ]
  in
  List.iter
    (fun depth ->
      let p = Binary_tree.profile ~depth in
      let w = Weighted.of_profile p in
      let before = Weighted.is_weak_equilibrium w in
      let folded, count = Weighted.fold_all_poor_leaves w in
      let after = Weighted.is_weak_equilibrium folded in
      let h = height w in
      let bound = 1.0 +. (log (float_of_int (Weighted.total_weight w)) /. log 2.0) in
      Table.add_row t
        [ Printf.sprintf "binary depth %d" depth;
          string_of_int (Weighted.n w); string_of_int count;
          string_of_int (Weighted.alive_count folded);
          verdict_cell before; verdict_cell after;
          string_of_int h; Printf.sprintf "%.1f" bound ])
    [ 2; 3; 4; 5 ];
  Table.print t;
  note "the Lemma 6.2 bound (height <= 1 + log2 w) holds on every row"

let rich_leaves () =
  subsection "E6b — rich leaves of weak equilibria are pairwise within distance 2 (Lem 6.4)";
  (* fold only part of the tree so rich leaves appear, then check *)
  let p = Binary_tree.profile ~depth:3 in
  let w = Weighted.of_profile p in
  note "binary tree depth 3: rich leaves before folding: %d"
    (List.length (Weighted.rich_leaves w));
  let folded, _ = Weighted.fold_all_poor_leaves w in
  note "after full fold: alive=%d, rich-leaf invariant: %s"
    (Weighted.alive_count folded)
    (verdict_cell (Weighted.rich_leaves_within_2 folded));
  (* a counterexample graph that is NOT a weak equilibrium *)
  let bad =
    Weighted.of_digraph
      (Bbng_graph.Digraph.of_arcs ~n:4 [ (0, 1); (1, 0); (2, 0); (3, 1) ])
  in
  note "non-equilibrium witness (two pendants on a brace): weak-eq=%s, invariant=%s"
    (verdict_cell (Weighted.is_weak_equilibrium bad))
    (verdict_cell (Weighted.rich_leaves_within_2 bad))

let contraction () =
  subsection "E6c — degree-2 chain contraction (Lem 6.5)";
  let t =
    Table.make
      ~headers:[ "graph"; "n"; "degree-2 edges"; "contractions"; "final alive" ]
  in
  List.iter
    (fun (name, d) ->
      let w = Weighted.of_digraph d in
      let edges = List.length (Weighted.degree2_edges w) in
      let contracted, count = Weighted.contract_all_degree2 w in
      Table.add_row t
        [ name; string_of_int (Weighted.n w); string_of_int edges;
          string_of_int count; string_of_int (Weighted.alive_count contracted) ])
    [
      ("path 10", Bbng_graph.Generators.directed_path 10);
      ("tripod k=5", Bbng_graph.Generators.tripod 5);
      ("binary depth 4", Bbng_graph.Generators.perfect_binary_tree 4);
      ("cycle 12", Bbng_graph.Generators.directed_cycle 12);
    ];
  Table.print t;
  note "long chains collapse; Lemma 6.5 says an equilibrium path has only O(log w) such edges"

let run () =
  section "SECTION 6 MACHINERY — weighted folding and contraction";
  folding ();
  rich_leaves ();
  contraction ()
