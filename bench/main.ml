(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   recorded output).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table1 figures   # a selection
   Known experiment names: table1 figures hardness existence weighted
   connectivity dynamics baselines expansion census extremal ablation perf. *)

let experiments =
  [
    ("table1", Exp_table1.run);
    ("figures", Exp_figures.run);
    ("hardness", Exp_hardness.run);
    ("existence", Exp_existence.run);
    ("weighted", Exp_weighted.run);
    ("connectivity", Exp_connectivity.run);
    ("dynamics", Exp_dynamics.run);
    ("baselines", Exp_baselines.run);
    ("expansion", Exp_expansion.run);
    ("census", Exp_census.run);
    ("extremal", Exp_extremal.run);
    ("ablation", Exp_ablation.run);
    ("perf", Perf.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "bbng experiment harness — reproduction of \"On a Bounded Budget Network Creation Game\" (SPAA 2011)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 2)
    requested;
  Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)
