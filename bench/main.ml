(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   recorded output).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table1 figures   # a selection
     dune exec bench/main.exe -- --smoke          # seconds-long bench sanity pass
     dune exec bench/main.exe -- --validate BENCH_smoke.json
     dune exec bench/main.exe -- --validate-metrics METRICS.prom
     dune exec bench/main.exe -- --csr-oracle CENSUS.jsonl  # CSR vs legacy answers
     dune exec bench/main.exe -- --diff OLD.json NEW.json   # regression gate
     dune exec bench/main.exe -- --trend [HISTORY.jsonl]    # gate vs recorded history
     dune exec bench/main.exe -- --profile OUT.folded perf  # folded stacks of a run
   Known experiment names: table1 figures hardness existence weighted
   connectivity dynamics baselines expansion census extremal ablation
   engines artifacts perf. *)

let experiments =
  [
    ("table1", Exp_table1.run);
    ("figures", Exp_figures.run);
    ("hardness", Exp_hardness.run);
    ("existence", Exp_existence.run);
    ("weighted", Exp_weighted.run);
    ("connectivity", Exp_connectivity.run);
    ("dynamics", Exp_dynamics.run);
    ("baselines", Exp_baselines.run);
    ("expansion", Exp_expansion.run);
    ("census", Exp_census.run);
    ("extremal", Exp_extremal.run);
    ("ablation", Exp_ablation.run);
    ("engines", Exp_engines.run);
    ("artifacts", Exp_artifacts.run);
    ("perf", Perf.run);
  ]

(* Check that a BENCH_*.json report parses and carries a usable ns/run
   figure for every test — this is what keeps report-format regressions
   inside tier-1-adjacent checks (bin/check.sh). *)
let validate file =
  let read_all ic =
    let n = in_channel_length ic in
    really_input_string ic n
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: INVALID — %s\n" file msg;
        exit 1)
      fmt
  in
  let ic = try open_in file with Sys_error e -> fail "%s" e in
  let text = read_all ic in
  close_in ic;
  let module Json = Bbng_obs.Json in
  let json =
    try Json.of_string text with Json.Parse_error e -> fail "parse error: %s" e
  in
  (match Json.member "report" json with
  | Some (Json.Str _) -> ()
  | _ -> fail "missing \"report\" name");
  (match Json.member "results" json with
  | Some (Json.List (_ :: _ as results)) ->
      List.iter
        (fun r ->
          (match (Json.member "name" r, Json.member "ns_per_run" r) with
          | Some (Json.Str _), Some (Json.Float ns) when ns > 0. -> ()
          | Some (Json.Str _), Some (Json.Int ns) when ns > 0 -> ()
          | Some (Json.Str name), _ -> fail "no ns_per_run for %S" name
          | _ -> fail "result entry without a name");
          (* a bad OLS fit is a warning, not invalidity: the figures
             parse fine, but they are too noisy to trust in a diff or
             to let silently pollute the recorded history *)
          (match (Json.member "name" r, Json.member "r_square_time" r) with
          | Some (Json.Str name), Some (Json.Float r2) when r2 < 0.8 ->
              Printf.printf
                "%s: warning: %s r_square_time %.3f < 0.8 (noisy fit)\n" file
                name r2
          | _ -> ()))
        results
  | _ -> fail "missing or empty \"results\"");
  (match Json.member "counters" json with
  | Some (Json.Obj _) -> ()
  | _ -> fail "missing \"counters\" snapshot");
  Printf.printf "%s: ok\n" file

(* Check that a --metrics-out snapshot is a well-formed OpenMetrics
   exposition: families typed and HELP'd before their samples, counter
   samples suffixed and non-negative, histogram buckets cumulative with
   the +Inf bucket equal to _count, and a closing # EOF.  This is the
   out-of-process validator bin/check.sh and bin/fault_smoke.sh point
   at the files a live (or SIGKILLed) run leaves behind. *)
let validate_metrics file =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: INVALID — %s\n" file msg;
        exit 1)
      fmt
  in
  let text =
    match open_in_bin file with
    | exception Sys_error e -> fail "%s" e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Bbng_obs.Openmetrics.validate text with
  | Error msg -> fail "%s" msg
  | Ok families ->
      let samples =
        List.fold_left
          (fun acc f ->
            acc + List.length f.Bbng_obs.Openmetrics.samples)
          0 families
      in
      Printf.printf "%s: ok (%d metric families, %d samples)\n" file
        (List.length families) samples

let () =
  (* fault probes work in the harness too: BBNG_FAULT can crash any
     experiment at a chosen artifact-write or sink event, which is how
     bin/fault_smoke.sh checks bench crash-safety out of process *)
  (match Bbng_obs.Fault.init_from_env () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "bench: bad %s spec: %s\n" Bbng_obs.Fault.env_var msg;
      exit 124);
  let profile_out, argv =
    let rec strip acc = function
      | "--profile" :: path :: rest -> (Some path, List.rev_append acc rest)
      | "--profile" :: [] ->
          Printf.eprintf "--profile needs a FILE.folded argument\n";
          exit 2
      | x :: rest -> strip (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    strip [] (Array.to_list Sys.argv)
  in
  (* --profile FILE.folded works on any experiment selection: enable
     call-path attribution now, export folded stacks (wall + alloc
     flavors) at exit — the bench twin of the CLI flag *)
  (match profile_out with
  | None -> ()
  | Some path ->
      Bbng_obs.Span.set_enabled true;
      Bbng_obs.Profile.set_enabled true;
      at_exit (fun () -> Bbng_obs.Profile.write_folded path));
  (match argv with
  | _ :: "--smoke" :: _ ->
      (* smoke is a run worth indexing (check.sh diffs consecutive ones
         via `bbng_cli runs diff`); the validators below are read-only
         viewers and stay out of the ledger *)
      Bbng_obs.Ledger.set_context ~tool:"bench" ~subcommand:"bench:smoke";
      at_exit Bbng_obs.Ledger.append_current;
      Perf.smoke ();
      Bbng_obs.Ledger.note_outcome "ok";
      exit 0
  | _ :: "--validate" :: file :: _ ->
      validate file;
      exit 0
  | _ :: "--validate" :: [] ->
      Printf.eprintf "--validate needs a file argument\n";
      exit 2
  | _ :: "--validate-metrics" :: file :: _ ->
      validate_metrics file;
      exit 0
  | _ :: "--validate-metrics" :: [] ->
      Printf.eprintf "--validate-metrics needs a file argument\n";
      exit 2
  | _ :: "--csr-oracle" :: file :: _ ->
      Csr_oracle.run file;
      exit 0
  | _ :: "--csr-oracle" :: [] ->
      Printf.eprintf "--csr-oracle needs a CENSUS_*.jsonl argument\n";
      exit 2
  | _ :: "--diff" :: old_file :: new_file :: _ ->
      Diff.run old_file new_file;
      exit 0
  | _ :: "--diff" :: _ ->
      Printf.eprintf "--diff needs OLD.json and NEW.json arguments\n";
      exit 2
  | _ :: "--trend" :: rest ->
      (* optional positional: an alternate history file *)
      let file =
        match rest with
        | f :: _ when String.length f > 0 && f.[0] <> '-' -> Some f
        | _ -> None
      in
      Trend.run ?file ();
      exit 0
  | _ -> ());
  let requested =
    match argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  Bbng_obs.Ledger.set_context ~tool:"bench"
    ~subcommand:("bench:" ^ String.concat "+" requested);
  at_exit Bbng_obs.Ledger.append_current;
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "bbng experiment harness — reproduction of \"On a Bounded Budget Network Creation Game\" (SPAA 2011)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          Bbng_obs.Ledger.note_exit 2;
          exit 2)
    requested;
  Bbng_obs.Ledger.note_outcome "ok";
  Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)
