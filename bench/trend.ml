(* `bench --trend`: gate the latest recorded run of BENCH_history.jsonl
   against the robust median/MAD of the runs before it.  Direction
   arrows per bench, non-zero exit on a significant regression.

   Robustness over the whole history (Bbng_analysis.Robust): the
   median baseline shrugs off a one-off slow machine in the record,
   and the MAD-derived gate adapts to each bench's own noise; the
   --diff percentage threshold (BBNG_BENCH_DIFF_THRESHOLD) and the
   same absolute floors bound it from below.

   Gating is depth-aware: a regression only fails the run (exit 1)
   once the benchmark has at least [hard_gate_depth] recorded points
   (history + the latest) — below that the MAD is too poorly
   estimated to hard-fail CI on, so shallow-history regressions are
   printed as warnings and the exit stays 0.  BBNG_BENCH_STRICT=1
   escalates warnings to failures regardless of depth. *)

module Robust = Bbng_analysis.Robust

(* minimum recorded points (earlier runs + latest) before a regression
   hard-fails; 5 points = 4-sample MAD, the smallest spread estimate
   worth trusting *)
let hard_gate_depth = 5

let strict () =
  match Sys.getenv_opt "BBNG_BENCH_STRICT" with
  | Some "1" -> true
  | Some _ | None -> false

let arrow = function
  | Some Robust.Regressed -> "↑ REGRESSED"
  | Some Robust.Improved -> "↓ improved"
  | Some Robust.Steady -> "→ steady"
  | None -> "?"

let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "?"

let pct m latest =
  match (m, latest) with
  | Some m, Some l when m > 0. -> Printf.sprintf "%+.1f%%" ((l -. m) /. m *. 100.)
  | _ -> "?"

let z_cell ~history latest =
  match latest with
  | None -> "?"
  | Some l -> (
      match Robust.sigma_score ~history l with
      | Some z -> Printf.sprintf "%+.1f" z
      | None -> "-")

let run ?file () =
  let file = Option.value ~default:History.file file in
  let entries, skipped = History.load ~file () in
  if skipped > 0 then
    Printf.printf "bench --trend: skipped %d unparseable line%s in %s\n" skipped
      (if skipped = 1 then "" else "s")
      file;
  match List.rev entries with
  | [] ->
      Printf.printf
        "bench --trend: no history in %s (run `bench perf` or `bench --smoke` \
         to record one)\n"
        file;
      exit 0
  | latest :: earlier_rev -> (
      (* baseline = every earlier run of the same report flavor, so a
         smoke run never gates against micro-quota figures *)
      let history_entries =
        List.rev
          (List.filter (fun e -> e.History.report = latest.History.report)
             earlier_rev)
      in
      match history_entries with
      | [] ->
          Printf.printf
            "bench --trend: only one %S run recorded in %s — nothing to gate \
             against yet\n"
            latest.History.report file;
          exit 0
      | _ ->
          let threshold = Diff.threshold_pct () in
          Printf.printf
            "bench trend: latest %S run (%s) vs %d earlier run%s in %s \
             (threshold %.0f%%)\n"
            latest.History.report latest.History.ts
            (List.length history_entries)
            (if List.length history_entries = 1 then "" else "s")
            file threshold;
          let table =
            Bbng_analysis.Table.make
              ~headers:
                [
                  "benchmark"; "ns med"; "ns new"; "ns d%"; "ns z";
                  "mw med"; "mw new"; "trend";
                ]
          in
          let hard = ref 0 and soft = ref 0 in
          List.iter
            (fun (b : History.bench) ->
              let series select =
                List.filter_map
                  (fun e ->
                    List.find_map
                      (fun (h : History.bench) ->
                        if h.History.name = b.History.name then
                          select h
                        else None)
                      e.History.benches)
                  history_entries
              in
              let ns_hist = series (fun h -> h.History.ns) in
              let mw_hist = series (fun h -> h.History.minor) in
              let classify ~floor history latest =
                match (history, latest) with
                | [], _ | _, None -> None
                | _, Some l ->
                    Robust.classify ~threshold_pct:threshold ~floor
                      ~history l
              in
              (* same absolute floors as --diff: sub-100ns and sub-64-word
                 figures are measurement noise; a words series touching
                 an exact 0 carries a collapsed OLS fit, so it gets the
                 wider fit-collapse floor *)
              let ns_trend = classify ~floor:Diff.ns_floor ns_hist b.History.ns in
              let mw_floor =
                let zero = function Some 0. -> true | _ -> false in
                if zero b.History.minor || List.mem 0. mw_hist then
                  Diff.words_fit_collapse
                else Diff.words_floor
              in
              let mw_trend = classify ~floor:mw_floor mw_hist b.History.minor in
              let worst =
                match (ns_trend, mw_trend) with
                | Some Robust.Regressed, _ | _, Some Robust.Regressed ->
                    let depth = 1 + List.length ns_hist in
                    if strict () || depth >= hard_gate_depth then incr hard
                    else begin
                      incr soft;
                      Printf.printf
                        "warning: %s regressed with only %d recorded \
                         point%s (< %d) — not gating yet\n"
                        b.History.name depth
                        (if depth = 1 then "" else "s")
                        hard_gate_depth
                    end;
                    Some Robust.Regressed
                | Some Robust.Improved, _ | _, Some Robust.Improved ->
                    Some Robust.Improved
                | Some Robust.Steady, _ -> Some Robust.Steady
                | None, t -> t
              in
              Bbng_analysis.Table.add_row table
                [
                  b.History.name;
                  cell (Robust.median ns_hist);
                  cell b.History.ns;
                  pct (Robust.median ns_hist) b.History.ns;
                  z_cell ~history:ns_hist b.History.ns;
                  cell (Robust.median mw_hist);
                  cell b.History.minor;
                  arrow worst;
                ])
            latest.History.benches;
          Bbng_analysis.Table.print table;
          if !hard > 0 then begin
            Printf.printf
              "%d bench%s regressed past the robust gate (median + max(3*MAD \
               sigma, %.0f%%, floor))\n"
              !hard
              (if !hard = 1 then "" else "es")
              threshold;
            exit 1
          end
          else if !soft > 0 then
            Printf.printf
              "trend: %d shallow-history regression%s (warning only below %d \
               recorded points; BBNG_BENCH_STRICT=1 escalates)\n"
              !soft
              (if !soft = 1 then "" else "s")
              hard_gate_depth
          else Printf.printf "trend: no significant regressions\n")
