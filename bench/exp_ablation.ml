(* Ablations for the design choices DESIGN.md calls out:

   A1. Lemma 2.2 pruning in best-response search: floor short-circuits
       and the Lemma 2.2 equilibrium shortcut vs raw enumeration.
   A2. Case 1's brace-repair loop in the existence construction: how
       often does filling budgets actually create braces, and does the
       repaired profile certify where the unrepaired one fails?
   A3. Swap-stability as a stand-in for exact Nash: on random profiles,
       how often does swap-stability wrongly accept? *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table

let pruning () =
  subsection "A1 — pruning effectiveness in equilibrium certification";
  let t =
    Table.make
      ~headers:[ "profile"; "n"; "raw evals"; "certify (s)"; "raw scan (s)"; "speedup" ]
  in
  List.iter
    (fun (name, p) ->
      let n = Strategy.n p in
      let budgets = Strategy.budgets p in
      let game = Game.make Cost.Sum budgets in
      let raw_evals =
        Array.fold_left
          (fun acc b -> acc + Bbng_graph.Combinatorics.binomial_sat (n - 1) b)
          0 (Budget.to_array budgets)
      in
      let _, pruned_t = time_it (fun () -> Equilibrium.is_nash game p) in
      (* raw scan: every player, every strategy, no shortcuts *)
      let _, raw_t =
        time_it (fun () ->
            for player = 0 to n - 1 do
              let b = Budget.get budgets player in
              Bbng_graph.Combinatorics.iter_combinations ~n:(n - 1) ~k:b (fun c ->
                  let targets =
                    Array.map (fun i -> if i < player then i else i + 1) c
                  in
                  ignore (Game.deviation_cost game p ~player ~targets))
            done)
      in
      Table.add_row t
        [ name; string_of_int n; string_of_int raw_evals;
          Printf.sprintf "%.4f" pruned_t; Printf.sprintf "%.4f" raw_t;
          (if pruned_t > 0.0 then Printf.sprintf "%.1fx" (raw_t /. pruned_t) else "-") ])
    [
      ("sun n=24", Bbng_constructions.Unit_budget.concentrated_sun ~n:24);
      ("sun n=48", Bbng_constructions.Unit_budget.concentrated_sun ~n:48);
      ("binary depth 4", Bbng_constructions.Binary_tree.profile ~depth:4);
      ("existence uniform(16,2)",
       Bbng_constructions.Existence.construct (Budget.uniform ~n:16 ~budget:2));
    ];
  Table.print t;
  note "the Lemma 2.2 shortcut turns certification of low-diameter equilibria into O(n) BFS checks"

let brace_repair () =
  subsection "A2 — Case 1 brace repair in the existence construction";
  (* Count braces right after the fill phase by rebuilding the
     construction's star + greedy fill without repair, then compare. *)
  let t =
    Table.make
      ~headers:[ "budgets"; "braces (construct)"; "NE (both versions)" ]
  in
  List.iter
    (fun l ->
      let b = Budget.of_list l in
      let p = Bbng_constructions.Existence.construct b in
      let braces = List.length (Bbng_graph.Digraph.braces (Strategy.realize p)) in
      let ok =
        List.for_all
          (fun v -> Equilibrium.is_nash (Game.make v b) p)
          Cost.all_versions
      in
      Table.add_row t
        [ String.concat "," (List.map string_of_int l); string_of_int braces;
          verdict_cell ok ])
    [
      [ 1; 1; 1 ] (* n=3 all-unit: braces unavoidable? *);
      [ 2; 2; 2 ] (* dense: braces may remain where diameter 1 *);
      [ 1; 1; 1; 1 ];
      [ 3; 3; 3; 3 ];
      [ 0; 1; 2; 3 ];
      [ 2; 2; 2; 2; 2 ];
    ];
  Table.print t;
  note
    "remaining braces only survive where the vertex is adjacent to everyone (cMAX = 1), exactly the exception Lemma 2.2 allows"

let swap_vs_exact () =
  subsection "A3 — how often swap-stability wrongly accepts a non-Nash profile";
  let t =
    Table.make
      ~headers:[ "budgets"; "samples"; "swap-stable"; "also Nash"; "false accepts" ]
  in
  List.iter
    (fun l ->
      let b = Budget.of_list l in
      let game = Game.make Cost.Sum b in
      let st = rng 1234 in
      let swap_stable = ref 0 and nash = ref 0 in
      let samples = 300 in
      for _ = 1 to samples do
        let p = Strategy.random st b in
        if Equilibrium.is_swap_stable game p then begin
          incr swap_stable;
          if Equilibrium.is_nash game p then incr nash
        end
      done;
      Table.add_row t
        [ String.concat "," (List.map string_of_int l); string_of_int samples;
          string_of_int !swap_stable; string_of_int !nash;
          string_of_int (!swap_stable - !nash) ])
    [ [ 1; 1; 1; 1 ]; [ 2; 1; 1; 1 ]; [ 2; 2; 1; 1; 0 ]; [ 2; 2; 2; 1; 1 ] ];
  Table.print t;
  note
    "with budget 1 a swap IS a full deviation (no gap); gaps can appear only for budgets >= 2, and stay rare on these sizes"

let parallel_certification () =
  subsection "A4 — multicore certification (OCaml 5 domains)";
  let domains = Bbng_core.Parallel.recommended_domains () in
  note "recommended domains on this machine: %d (Domain.recommended_domain_count = %d)"
    domains
    (Domain.recommended_domain_count ());
  let t =
    Table.make
      ~headers:
        [ "profile"; "n"; "sequential (s)"; Printf.sprintf "%d domain(s) (s)" domains;
          "ratio"; "agree" ]
  in
  List.iter
    (fun (name, p) ->
      let game = Game.make Cost.Max (Strategy.budgets p) in
      let r1, t1 = time_it (fun () -> Equilibrium.is_nash game p) in
      let rk, tk =
        time_it (fun () -> Equilibrium.is_nash_parallel ~domains game p)
      in
      Table.add_row t
        [ name; string_of_int (Strategy.n p); Printf.sprintf "%.3f" t1;
          Printf.sprintf "%.3f" tk;
          (if tk > 0.0 then Printf.sprintf "%.1fx" (t1 /. tk) else "-");
          verdict_cell (r1 = rk) ])
    [
      ("tripod k=24", Bbng_constructions.Tripod.profile ~k:24);
      ("tripod k=48", Bbng_constructions.Tripod.profile ~k:48);
      ("spider 8x12", Bbng_constructions.Tripod.spider_profile ~legs:8 ~k:12);
      ("shift(4,2)", Bbng_constructions.Shift_graph.profile ~t:4 ~k:2);
    ];
  Table.print t;
  note
    "per-player checks are embarrassingly parallel (verdicts agree by construction and by test); on a single-core container the fan-out cannot beat sequential — the ratio approaches the core count on real multicore hardware"

let run () =
  section "ABLATIONS — pruning, brace repair, swap-vs-exact, multicore";
  pruning ();
  brace_repair ();
  swap_vs_exact ();
  parallel_certification ()
