(* Theorem 2.1: best response is NP-hard (k-center / k-median).

   Two empirical legs:
   1. the reduction is exact — the new player's best response solves
      k-center (MAX) / k-median (SUM) on random connected graphs,
      cross-validated against the standalone exact solvers;
   2. the exact best-response solver scales exponentially in the budget
      (wall-clock doubling table), while the polynomial heuristics
      (Gonzalez / local search / swap) stay cheap. *)

open Bbng_core
open Bbng_solvers
open Exp_common
module Table = Bbng_analysis.Table
module Generators = Bbng_graph.Generators

let reduction_equivalence () =
  subsection "E2.1a — reduction exactness on random connected graphs";
  let t =
    Table.make
      ~headers:
        [ "n"; "k"; "seed"; "k-center"; "via game"; "agree";
          "k-median"; "via game"; "agree" ]
  in
  List.iter
    (fun (n, k, seed) ->
      let g = Generators.random_connected_gnp (rng seed) ~n ~p:0.3 in
      let kc = (K_center.exact g ~k).K_center.radius in
      let kc_game = (Reduction.solve_center_via_game g ~k).K_center.radius in
      let km = (K_median.exact g ~k).K_median.cost in
      let km_game = (Reduction.solve_median_via_game g ~k).K_median.cost in
      Table.add_row t
        [ string_of_int n; string_of_int k; string_of_int seed;
          string_of_int kc; string_of_int kc_game; verdict_cell (kc = kc_game);
          string_of_int km; string_of_int km_game; verdict_cell (km = km_game) ])
    [ (8, 2, 1); (8, 3, 2); (10, 2, 3); (10, 3, 4); (12, 2, 5); (12, 3, 6); (14, 2, 7) ];
  Table.print t

let exponential_scaling () =
  subsection "E2.1b — exact best response scales exponentially in the budget";
  let t =
    Table.make
      ~headers:
        [ "n"; "budget"; "strategies"; "exhaustive (s)"; "pruned exact (s)";
          "greedy (s)"; "swap (s)" ]
  in
  List.iter
    (fun (n, b) ->
      let g = Generators.random_connected_gnp (rng (100 + n)) ~n ~p:0.15 in
      let inst = Reduction.of_median_instance g ~k:b in
      let count = Bbng_graph.Combinatorics.binomial_sat n b in
      (* the honest exponential: evaluate every one of the C(n, b)
         strategies of the new player (it is the last index, so subsets
         of 0..n-1 are directly valid target sets) *)
      let _, exhaustive_t =
        time_it (fun () ->
            let best = ref max_int in
            Bbng_graph.Combinatorics.iter_combinations ~n ~k:b (fun c ->
                let cost = Reduction.strategy_cost inst c in
                if cost < !best then best := cost);
            !best)
      in
      (* the production solver may stop early at the Lemma 2.2 floor *)
      let _, exact_t = time_it (fun () -> Reduction.best_response inst) in
      let _, greedy_t =
        time_it (fun () ->
            Best_response.greedy inst.Reduction.game inst.Reduction.profile
              inst.Reduction.new_player)
      in
      let _, swap_t =
        time_it (fun () ->
            Best_response.swap_best inst.Reduction.game inst.Reduction.profile
              inst.Reduction.new_player)
      in
      Table.add_row t
        [ string_of_int (n + 1); string_of_int b; string_of_int count;
          Printf.sprintf "%.4f" exhaustive_t; Printf.sprintf "%.4f" exact_t;
          Printf.sprintf "%.4f" greedy_t; Printf.sprintf "%.4f" swap_t ])
    [ (12, 3); (14, 4); (16, 5); (18, 6); (20, 7); (22, 8) ];
  Table.print t;
  note
    "the exhaustive column tracks C(n-1, b); pruning (Lemma 2.2 floor) sometimes escapes it, heuristics stay flat"

let heuristic_quality () =
  subsection "E2.1c — heuristic quality vs exact (connected G(n, p))";
  let t =
    Table.make
      ~headers:[ "n"; "k"; "opt radius"; "gonzalez"; "opt median"; "local search" ]
  in
  List.iter
    (fun (n, k, seed) ->
      let g = Generators.random_connected_gnp (rng seed) ~n ~p:0.25 in
      let kc = (K_center.exact g ~k).K_center.radius in
      let gz = (K_center.gonzalez g ~k).K_center.radius in
      let km = (K_median.exact g ~k).K_median.cost in
      let ls = (K_median.local_search g ~k).K_median.cost in
      Table.add_row t
        [ string_of_int n; string_of_int k; string_of_int kc; string_of_int gz;
          string_of_int km; string_of_int ls ])
    [ (10, 2, 11); (12, 2, 12); (14, 3, 13); (16, 3, 14) ];
  Table.print t

let run () =
  section "THEOREM 2.1 — NP-hardness of best response";
  reduction_equivalence ();
  exponential_scaling ();
  heuristic_quality ()
