(* Table 1: price-of-anarchy growth per instance class.

   Each cell of the paper's table becomes a sweep: build the witness
   family (lower bounds) or exhaust/bound the equilibrium space (upper
   bounds), measure diameters, certify equilibria, and fit the growth
   shape.  The paper reports:

                 MAX          SUM
   Trees         Theta(n)     Theta(log n)
   All-Unit      Theta(1)     Theta(1)
   All-Positive  Omega(sqrt(log n))   2^O(sqrt(log n))
   General       Theta(n)     2^O(sqrt(log n))                     *)

open Bbng_core
open Bbng_constructions
open Exp_common
module Table = Bbng_analysis.Table
module Growth = Bbng_analysis.Growth
module Bounds = Bbng_analysis.Bounds

(* --- Trees, MAX: tripod sweep --- *)

let trees_max () =
  subsection "T1.tree.max — Tree-BG, MAX: tripod equilibria (Thm 3.2, Figure 2)";
  let t = Table.make ~headers:[ "k"; "n"; "diameter"; "2k"; "certificate" ] in
  let points = ref [] in
  List.iter
    (fun k ->
      let p = Tripod.profile ~k in
      let d = diameter p in
      let cert =
        certify_scaled ~artifact:(Printf.sprintf "tripod_k%d_max" k) Cost.Max p
      in
      points := (Tripod.n_of_k k, d) :: !points;
      Table.add_row t
        [ string_of_int k; string_of_int (Tripod.n_of_k k); string_of_int d;
          string_of_int (2 * k); cert ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  let fit = fit_line "tripod diameter vs n" (List.rev !points) in
  note "paper: Theta(n); measured model: %s" (Growth.model_name fit.Growth.model);
  (* extension: the construction generalizes beyond three legs *)
  let t = Table.make ~headers:[ "legs"; "k"; "n"; "diameter"; "certificate" ] in
  List.iter
    (fun (legs, k) ->
      let p = Tripod.spider_profile ~legs ~k in
      Table.add_row t
        [ string_of_int legs; string_of_int k; string_of_int (Strategy.n p);
          string_of_int (diameter p); certify_scaled Cost.Max p ])
    [ (4, 4); (5, 4); (8, 4); (4, 12); (6, 8) ];
  Table.print t;
  note "extension beyond the paper: spiders with any legs >= 3 certify as MAX tree equilibria"

(* --- Trees, SUM: perfect binary trees + Thm 3.3 bound --- *)

let trees_sum () =
  subsection "T1.tree.sum — Tree-BG, SUM: binary-tree equilibria (Thm 3.4) vs the Thm 3.3 bound";
  let t =
    Table.make
      ~headers:[ "depth"; "n"; "diameter"; "Thm3.3 bound"; "within"; "certificate" ]
  in
  let points = ref [] in
  List.iter
    (fun depth ->
      let p = Binary_tree.profile ~depth in
      let n = Binary_tree.n_of_depth depth in
      let d = diameter p in
      let bound = Bounds.tree_sum_diameter_bound ~n in
      let cert = certify_scaled Cost.Sum p in
      points := (n, d) :: !points;
      Table.add_row t
        [ string_of_int depth; string_of_int n; string_of_int d;
          string_of_int bound; verdict_cell (d <= bound); cert ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  Table.print t;
  let fit = fit_line "binary-tree diameter vs n" (List.rev !points) in
  note "paper: Theta(log n); measured model: %s" (Growth.model_name fit.Growth.model)

(* Exhaustive Thm 3.3 upper-bound evidence: every SUM equilibrium of
   every small Tree-BG instance obeys the bound. *)
let trees_sum_exhaustive () =
  subsection "T1.tree.sum (upper bound) — all SUM equilibria of small Tree-BG instances";
  let t =
    Table.make ~headers:[ "budgets"; "#NE"; "max diameter"; "bound"; "within" ]
  in
  let instances =
    [ [ 0; 1; 1; 1 ]; [ 0; 0; 1; 2 ]; [ 0; 0; 0; 3 ]; [ 0; 0; 1; 1; 2 ]; [ 0; 1; 1; 1; 1 ] ]
  in
  List.iter
    (fun l ->
      let b = Budget.of_list l in
      let game = Game.make Cost.Sum b in
      let eqs = Equilibrium.enumerate_equilibria game in
      let dmax = List.fold_left (fun acc p -> max acc (diameter p)) 0 eqs in
      let bound = Bounds.tree_sum_diameter_bound ~n:(Budget.n b) in
      Table.add_row t
        [ String.concat "," (List.map string_of_int l);
          string_of_int (List.length eqs); string_of_int dmax;
          string_of_int bound; verdict_cell (dmax <= bound) ])
    instances;
  Table.print t

(* --- All-unit budgets: Theta(1) in both versions --- *)

let unit_budgets () =
  subsection "T1.unit — (1,...,1)-BG: Theta(1) diameter in both versions (Thms 4.1/4.2)";
  (* witness family sweep *)
  let t = Table.make ~headers:[ "n"; "diameter"; "MAX cert"; "SUM cert" ] in
  let points = ref [] in
  List.iter
    (fun n ->
      let p = Unit_budget.concentrated_sun ~n in
      let d = diameter p in
      let cmax = certify_scaled Cost.Max p in
      let csum = certify_scaled Cost.Sum p in
      points := (n, d) :: !points;
      Table.add_row t [ string_of_int n; string_of_int d; cmax; csum ])
    [ 4; 8; 16; 32; 64; 128 ];
  Table.print t;
  let fit = fit_line "sun diameter vs n" (List.rev !points) in
  note "paper: Theta(1); measured model: %s" (Growth.model_name fit.Growth.model);
  (* exhaustive upper bound at small n: ALL equilibria *)
  let t =
    Table.make
      ~headers:
        [ "n"; "version"; "#NE"; "max diameter"; "structural bound"; "within" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun version ->
          let game = Game.make version (Budget.unit_budgets n) in
          let eqs = Equilibrium.enumerate_equilibria game in
          let dmax = List.fold_left (fun acc p -> max acc (diameter p)) 0 eqs in
          let bound = Unit_budget.diameter_upper_bound version in
          Table.add_row t
            [ string_of_int n; Cost.version_name version;
              string_of_int (List.length eqs); string_of_int dmax;
              string_of_int bound; verdict_cell (dmax <= bound) ])
        Cost.all_versions)
    [ 3; 4; 5; 6 ];
  Table.print t

(* --- All-positive, MAX: the shift-graph paradox --- *)

let positive_max () =
  subsection
    "T1.pos.max — all-positive budgets, MAX: shift-graph equilibria with diameter ~ sqrt(log n) (Thm 5.3)";
  let t =
    Table.make
      ~headers:
        [ "t"; "k"; "n"; "diameter"; "sqrt(log2 n)"; "Lem5.2 cert"; "direct check" ]
  in
  let points = ref [] in
  List.iter
    (fun (t_param, k) ->
      let cert = Shift_graph.certificate ~t:t_param ~k in
      let d =
        match cert.Shift_graph.all_local_diameters_equal with
        | Some d -> d
        | None -> -1
      in
      let n = cert.Shift_graph.n in
      points := (n, d) :: !points;
      let direct =
        if n <= 16 then certify_scaled Cost.Max (Shift_graph.profile ~t:t_param ~k)
        else "(too large; certified via Lemma 5.2)"
      in
      Table.add_row t
        [ string_of_int t_param; string_of_int k; string_of_int n;
          string_of_int d;
          Printf.sprintf "%.2f" (sqrt (log (float_of_int n) /. log 2.0));
          verdict_cell cert.Shift_graph.valid; direct ])
    [ (4, 2); (5, 2); (8, 2); (5, 3); (8, 3); (9, 4) ];
  Table.print t;
  let fit = fit_line "shift diameter vs n" (List.rev !points) in
  let sqrt_fit = Growth.fit_model Growth.Sqrt_log (List.rev !points) in
  note "paper: Omega(sqrt(log n)); best fit: %s; forced sqrt(log n) fit: R2=%.4f (slope %.2f)"
    (Growth.model_name fit.Growth.model) sqrt_fit.Growth.r2 sqrt_fit.Growth.slope;
  note "(over this n-range, log n and sqrt(log n) are within fit noise; the diameter IS k = ceil(sqrt(log_t-ary n)) by construction)";
  (* the contrast that makes it a paradox *)
  let sun = Unit_budget.concentrated_sun ~n:512 in
  let shift = Shift_graph.profile ~t:8 ~k:3 in
  note
    "Braess-like paradox at n=512: unit budgets -> equilibrium diameter %d; strictly larger (all-positive) budgets -> certified equilibrium diameter %d"
    (diameter sun) (diameter shift)

(* --- All-positive / general, SUM: the 2^O(sqrt(log n)) ceiling --- *)

let sum_upper () =
  subsection
    "T1.pos.sum / T1.gen.sum — SUM upper bound 2^O(sqrt(log n)) (Thm 6.9): exhaustive small instances vs bound curve";
  let t =
    Table.make
      ~headers:[ "budgets"; "version"; "#NE"; "max diameter"; "2^sqrt(log n) curve" ]
  in
  List.iter
    (fun l ->
      let b = Budget.of_list l in
      let game = Game.make Cost.Sum b in
      let eqs = Equilibrium.enumerate_equilibria game in
      let dmax = List.fold_left (fun acc p -> max acc (diameter p)) 0 eqs in
      Table.add_row t
        [ String.concat "," (List.map string_of_int l); "SUM";
          string_of_int (List.length eqs); string_of_int dmax;
          string_of_int (Bounds.sum_diameter_bound ~c:1.0 (Budget.n b)) ])
    [ [ 1; 1; 1 ]; [ 1; 1; 1; 1 ]; [ 2; 1; 1; 1 ]; [ 1; 1; 1; 1; 1 ]; [ 2; 2; 1; 1 ] ];
  Table.print t;
  note "bound curve values (c=1): n=2^4:%d  2^9:%d  2^16:%d  2^25:%d"
    (Bounds.sum_diameter_bound ~c:1.0 16)
    (Bounds.sum_diameter_bound ~c:1.0 512)
    (Bounds.sum_diameter_bound ~c:1.0 65536)
    (Bounds.sum_diameter_bound ~c:1.0 33554432)

(* --- General, MAX: Theta(n) --- *)

let general_max () =
  subsection "T1.gen.max — general budgets, MAX: Theta(n) (tripod lower bound, trivial upper)";
  let t = Table.make ~headers:[ "n"; "NE diameter (tripod)"; "OPT <="; "PoA >=" ] in
  List.iter
    (fun k ->
      let b = Tripod.budgets ~k in
      let d = Tripod.diameter ~k in
      let _, hi = Poa.opt_diameter_bounds b in
      let r = Poa.anarchy_lower_bound ~equilibrium_diameter:d b in
      Table.add_row t
        [ string_of_int (Tripod.n_of_k k); string_of_int d; string_of_int hi;
          Printf.sprintf "%.2f" (Poa.ratio_to_float r) ])
    [ 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  note "PoA grows linearly in n; the trivial upper bound is diameter <= n - 1 over OPT >= 1."

let run () =
  section "TABLE 1 — price of anarchy by instance class";
  trees_max ();
  trees_sum ();
  trees_sum_exhaustive ();
  unit_budgets ();
  positive_max ();
  sum_upper ();
  general_max ()
