(* Theorem 2.3: equilibria exist for every budget vector and the price
   of stability is O(1).

   Sweep random budget vectors across all three construction cases,
   certify each constructed profile in both versions, and compare its
   diameter against the OPT bounds (PoS evidence). *)

open Bbng_core
open Bbng_constructions
open Exp_common
module Table = Bbng_analysis.Table

let sweep () =
  subsection "E2.3a — constructed equilibria across random budget vectors";
  let t =
    Table.make
      ~headers:
        [ "n"; "sigma"; "case"; "diameter"; "OPT in"; "PoS <="; "MAX"; "SUM" ]
  in
  let st = rng 11 in
  let cases_seen = Hashtbl.create 3 in
  for trial = 1 to 18 do
    let n = 4 + Random.State.int st 12 in
    (* stratify totals so all three construction cases appear:
       subcritical (case 3), barely-connectable with many zeros
       (case 2 territory), and budget-rich (case 1) *)
    let total =
      match trial mod 3 with
      | 0 -> Random.State.int st (max 1 (n - 1))
      | 1 -> n - 1 + Random.State.int st 3
      | _ -> n + Random.State.int st (n * (n - 1) - n + 1)
    in
    let b = Budget.random_partition st ~n ~total in
    let p = Existence.construct b in
    let d = diameter p in
    let lo, hi = Poa.opt_diameter_bounds b in
    let case = Existence.case_of b in
    Hashtbl.replace cases_seen case ();
    ignore trial;
    Table.add_row t
      [ string_of_int n; string_of_int total; Existence.case_name case;
        string_of_int d; Printf.sprintf "[%d,%d]" lo hi;
        Printf.sprintf "%.2f" (float_of_int d /. float_of_int lo);
        certify_scaled Cost.Max p; certify_scaled Cost.Sum p ]
  done;
  Table.print t;
  note "distinct construction cases exercised: %d of 3" (Hashtbl.length cases_seen)

let per_case () =
  subsection "E2.3b — one representative instance per case";
  let t =
    Table.make ~headers:[ "budgets"; "case"; "diameter"; "MAX"; "SUM" ]
  in
  List.iter
    (fun (tag, l) ->
      let b = Budget.of_list l in
      let p = Existence.construct b in
      Table.add_row t
        [ String.concat "," (List.map string_of_int l);
          Existence.case_name (Existence.case_of b);
          string_of_int (diameter p);
          certify_scaled ~artifact:(Printf.sprintf "existence_%s_max" tag)
            Cost.Max p;
          certify_scaled ~artifact:(Printf.sprintf "existence_%s_sum" tag)
            Cost.Sum p ])
    [
      ("case1", [ 0; 0; 2; 3 ]);
      ("case2", [ 0; 0; 0; 1; 2; 2 ]);
      ("case3", [ 0; 0; 0; 1; 1 ]);
      ( "figure1",
        [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 2; 5; 5; 5; 5; 5 ] )
      (* the Figure 1 instance *);
    ];
  Table.print t

let stability_scaling () =
  subsection "E2.3c — price of stability stays O(1) as n grows";
  let t = Table.make ~headers:[ "n"; "sigma"; "NE diameter"; "OPT lower"; "PoS <=" ] in
  List.iter
    (fun n ->
      (* half zeros, moderate positives: lands in case 2 for larger n *)
      let budgets =
        Array.init n (fun i -> if i < n / 2 then 0 else 1 + (i mod 3))
      in
      let b = Budget.of_array budgets in
      if Budget.connectable b then begin
        let p = Existence.construct b in
        let d = diameter p in
        let lo, _ = Poa.opt_diameter_bounds b in
        Table.add_row t
          [ string_of_int n; string_of_int (Budget.total b); string_of_int d;
            string_of_int lo;
            Printf.sprintf "%.2f" (float_of_int d /. float_of_int lo) ]
      end)
    [ 8; 16; 32; 64; 128; 256 ];
  Table.print t;
  note "the PoS column is bounded by a constant (the paper proves <= 4)"

let powerlaw_workload () =
  subsection "E2.3d — power-law budget workloads (skewed, P2P-like)";
  let t =
    Table.make
      ~headers:
        [ "n"; "exponent"; "sigma"; "zeros"; "case"; "diameter"; "MAX"; "SUM" ]
  in
  List.iter
    (fun (n, exponent, seed) ->
      let b =
        Budget.random_powerlaw (rng seed) ~n ~exponent ~max_budget:(min (n - 1) 6)
      in
      let zeros =
        Array.fold_left (fun acc x -> if x = 0 then acc + 1 else acc) 0
          (Budget.to_array b)
      in
      let p = Bbng_constructions.Existence.construct b in
      Table.add_row t
        [ string_of_int n; Printf.sprintf "%.1f" exponent;
          string_of_int (Budget.total b); string_of_int zeros;
          Bbng_constructions.Existence.case_name
            (Bbng_constructions.Existence.case_of b);
          string_of_int (diameter p);
          certify_scaled Cost.Max p; certify_scaled Cost.Sum p ])
    [ (12, 0.8, 21); (12, 1.5, 21); (12, 2.5, 22); (16, 1.0, 23); (20, 1.2, 24); (20, 3.0, 25) ];
  Table.print t;
  note
    "skewed, realistic budget distributions still land in the three cases and always produce certified O(1)-diameter equilibria (or correctly subcritical ones)"

let run () =
  section "THEOREM 2.3 — existence of equilibria, price of stability O(1)";
  sweep ();
  per_case ();
  stability_scaling ();
  powerlaw_workload ()
