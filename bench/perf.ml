(* Bechamel micro-benchmarks for the substrate hot paths. *)

open Bechamel
open Toolkit
open Bbng_core
module Generators = Bbng_graph.Generators

let rng = Random.State.make [| 0xBE5C |]

let gnp200 = Generators.random_connected_gnp rng ~n:200 ~p:0.05
let grid = Generators.grid_graph ~rows:8 ~cols:8
let sun30 = Bbng_constructions.Unit_budget.concentrated_sun ~n:30
let sun_game = Game.make Cost.Sum (Strategy.budgets sun30)
let tripod8 = Bbng_constructions.Tripod.profile ~k:8
let tripod_game = Game.make Cost.Max (Strategy.budgets tripod8)

(* Engine head-to-head: exhaustive best response on a circulant profile
   (i -> {i+1, i+2} mod n) sized so neither the cost floor nor Lemma 2.2
   prunes — the scan really prices all C(n-1, b) candidate strategies,
   which is what separates the overlay-BFS engine from the
   distance-row engine. *)
let circ30 =
  let n = 30 in
  Strategy.make
    (Budget.uniform ~n ~budget:2)
    (Array.init n (fun i ->
         let s = [| (i + 1) mod n; (i + 2) mod n |] in
         Array.sort compare s;
         s))

let circ_game = Game.make Cost.Sum (Strategy.budgets circ30)

(* Census pipeline: the end-to-end scan of a full unit-budget space,
   and the merge step in isolation (pre-scanned shard results), so the
   recorded trend separates "certifying got slower" from "the sharded
   pipeline's aggregation overhead grew". *)
module Census = Bbng_analysis.Census

let census_game = Game.make Cost.Sum (Budget.unit_budgets 4)
let census_plan = Census.make_plan ~shard_size:9 census_game

let census_shard_results =
  List.filter_map (Census.scan_shard census_game) (Census.shards census_plan)

(* Named thunks shared by the Bechamel tests and the warm-up pass:
   the first executions of a workload pay for lazy caches, branch
   predictors and the allocator reaching steady state, which is what
   made deviation-incremental-sun30's OLS fit collapse (r^2 ~ 0.53 in
   recorded smoke runs) — running each thunk a few times before
   Bechamel samples restores the fit. *)
let deviation_ctx = Deviation_eval.make Cost.Sum sun30 ~player:5

(* Preallocated scratch for the raw CSR kernel bench: with dist/queue
   reused across runs the workload is the zero-allocation sweep alone,
   so its minor-words column pins the "0 words per BFS" claim. *)
let csr200 = Bbng_graph.Csr.snapshot gnp200
let csr_dist = Array.make 200 (-1)
let csr_queue = Array.make 200 0

let workloads =
  [
    ("bfs-gnp200", fun () -> ignore (Bbng_graph.Bfs.distances gnp200 0));
    ( "bfs-csr-gnp200",
      fun () ->
        ignore
          (Bbng_graph.Csr.bfs_into csr200 ~src:0 ~dist:csr_dist ~queue:csr_queue)
    );
    (* diameter ablation: the full n-sweep eccentricity fold this name
       always measured vs the pruned iFUB engine that [diameter] now
       dispatches to — like the rows/bfs pair, history carries the
       old-engine line and the new name gates the new one *)
    ( "diameter-gnp200",
      fun () ->
        ignore
          (Bbng_graph.Distances.fold_eccentricities gnp200
             (fun a _ e -> max a e)
             0) );
    ( "diameter-ifub-gnp200",
      fun () -> ignore (Bbng_graph.Distances.diameter gnp200) );
    ("sum-cost-gnp200", fun () -> ignore (Cost.vertex_cost Cost.Sum gnp200 0));
    ( "connectivity-grid8x8",
      fun () -> ignore (Bbng_graph.Connectivity.vertex_connectivity grid) );
    ("swap-br-sun30", fun () -> ignore (Best_response.swap_best sun_game sun30 5));
    ( "certify-tripod-k8",
      fun () -> ignore (Equilibrium.is_nash tripod_game tripod8) );
    ("realize-sun30", fun () -> ignore (Strategy.underlying sun30));
    (* deviation-evaluation ablation: generic rebuild vs incremental *)
    ( "deviation-generic-sun30",
      fun () ->
        ignore (Game.deviation_cost sun_game sun30 ~player:5 ~targets:[| 7 |]) );
    ( "deviation-incremental-sun30",
      fun () -> ignore (Deviation_eval.cost deviation_ctx [| 7 |]) );
    (* engine head-to-head on the same full C(29,2) = 406 scan — the
       report derives rows_vs_bfs_speedup from this pair *)
    ( "br-exact-bfs-n30b2",
      fun () ->
        ignore
          (Best_response.best_improvement
             ~engine:(Deviation_eval.Fixed Deviation_eval.Bfs_overlay)
             circ_game circ30 0) );
    ( "br-exact-rows-n30b2",
      fun () ->
        ignore
          (Best_response.best_improvement
             ~engine:(Deviation_eval.Fixed Deviation_eval.Rows)
             circ_game circ30 0) );
    ("census-scan-unit4", fun () -> ignore (Census.run census_game));
    ( "census-merge-unit4",
      fun () ->
        ignore (Census.merge census_game census_plan census_shard_results) );
  ]

let tests =
  Test.make_grouped ~name:"bbng" ~fmt:"%s/%s"
    (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) workloads)

let warm_up () = List.iter (fun (_, f) -> for _ = 1 to 10 do f () done) workloads

type result = {
  test : string;
  ns : float option;
  minor : float option;          (* minor words / run *)
  major : float option;          (* major words / run — GC pressure *)
  r2 : float option;
}

let measure ~quota =
  (* quota floor: below ~50ms per bench the cheap workloads get too few
     distinct iteration counts for a stable OLS fit *)
  let quota = Float.max 0.05 quota in
  warm_up ();
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances =
    Instance.[ monotonic_clock; minor_allocated; major_allocated ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let minors = Analyze.all ols Instance.minor_allocated raw in
  let majors = Analyze.all ols Instance.major_allocated raw in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some r -> (
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> Some est
        | Some [] | None -> None)
    | None -> None
  in
  let r_square name =
    match Hashtbl.find_opt times name with
    | Some r -> Analyze.OLS.r_square r
    | None -> None
  in
  let names = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) times []) in
  List.map
    (fun name ->
      {
        test = name;
        ns = estimate times name;
        minor = estimate minors name;
        major = estimate majors name;
        r2 = r_square name;
      })
    names

let print_table results =
  let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "?" in
  let r2_cell = function Some v -> Printf.sprintf "%.4f" v | None -> "?" in
  let table =
    Bbng_analysis.Table.make
      ~headers:
        [ "benchmark"; "ns/run"; "minor words/run"; "major words/run"; "r2(time)" ]
  in
  List.iter
    (fun r ->
      Bbng_analysis.Table.add_row table
        [ r.test; cell r.ns; cell r.minor; cell r.major; r2_cell r.r2 ])
    results;
  Bbng_analysis.Table.print table

(* rows-engine speedup on the exhaustive best-response pair, derived
   from the measured pair rather than re-timed, so the recorded ratio
   matches the ns/run figures in the same report *)
let rows_vs_bfs_speedup results =
  let ns name =
    List.find_map
      (fun r -> if r.test = "bbng/" ^ name then r.ns else None)
      results
  in
  match (ns "br-exact-bfs-n30b2", ns "br-exact-rows-n30b2") with
  | Some bfs, Some rows when rows > 0. -> Some (bfs /. rows)
  | _ -> None

let report ~name results =
  let module Json = Bbng_obs.Json in
  let num = function Some v -> Json.Float v | None -> Json.Null in
  (* the overwritten BENCH_<name>.json is the latest snapshot; the
     history line is the trajectory `bench --trend` gates against *)
  History.append ~report:name
    (List.map
       (fun r ->
         {
           History.name = r.test;
           ns = r.ns;
           minor = r.minor;
           major = r.major;
           r2 = r.r2;
         })
       results);
  (* the run's ledger row carries the headline figures too, so
     `bbng_cli runs diff` can gate two bench runs without re-opening
     their reports (speedup-style ratios are excluded: diff treats
     "up" as bad, which only holds for costs) *)
  List.iter
    (fun r ->
      (match r.ns with
      | Some ns ->
          Bbng_obs.Ledger.add_metric
            ("bench." ^ r.test ^ ".ns_per_run")
            (Json.Float ns)
      | None -> ());
      match r.minor with
      | Some mw ->
          Bbng_obs.Ledger.add_metric
            ("bench." ^ r.test ^ ".minor_words_per_run")
            (Json.Float mw)
      | None -> ())
    results;
  Exp_common.write_bench_report ~name
    [
      ("rows_vs_bfs_speedup", num (rows_vs_bfs_speedup results));
      ( "results",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.Str r.test);
                   ("ns_per_run", num r.ns);
                   ("minor_words_per_run", num r.minor);
                   ("major_words_per_run", num r.major);
                   ("r_square_time", num r.r2);
                 ])
             results) );
    ]

let run_with ~report_name ~quota () =
  Exp_common.section
    "PERF — Bechamel micro-benchmarks (monotonic clock + minor/major allocations)";
  let results = measure ~quota in
  print_table results;
  (match rows_vs_bfs_speedup results with
  | Some s ->
      Exp_common.note
        "rows vs overlay-BFS speedup (exhaustive best response, n=30 b=2): %.1fx" s
  | None -> ());
  report ~name:report_name results

let run () = run_with ~report_name:"micro" ~quota:0.25 ()

(* a few-second sanity pass: same tests, tiny quota, own report file —
   bin/check.sh validates that BENCH_smoke.json stays parseable and
   diffs it against the last committed baseline *)
let smoke () = run_with ~report_name:"smoke" ~quota:0.02 ()
