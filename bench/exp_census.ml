(* Equilibrium census and the Section 8 open problem.

   For small instances we can enumerate EVERY profile, certify every
   equilibrium, group them up to isomorphism, and compute exact prices
   of anarchy and stability.  The sweep over uniform budgets B > 1 is
   data for the question the paper leaves open ("the cases in which all
   players have the same budget B > 1 might be interesting"). *)

open Bbng_core
open Exp_common
module Table = Bbng_analysis.Table
module Census = Bbng_analysis.Census

(* unbudgeted bench runs always complete; the match keeps the types
   honest if that ever changes *)
let census_of game =
  match Census.run game with
  | Census.Complete c -> c
  | Census.Partial { census; _ } -> census

let census_table title instances =
  subsection title;
  let t =
    Table.make
      ~headers:
        [ "budgets"; "version"; "profiles"; "NE"; "iso classes"; "diam range";
          "PoA"; "PoS"; "welfare PoA" ]
  in
  List.iter
    (fun l ->
      List.iter
        (fun version ->
          let b = Budget.of_list l in
          let game = Game.make version b in
          let c = census_of game in
          let range =
            match (c.Census.min_diameter, c.Census.max_diameter) with
            | Some lo, Some hi -> Printf.sprintf "[%d,%d]" lo hi
            | _ -> "-"
          in
          let prices =
            match Poa.exact_prices ~max_profiles:300_000 game with
            | Some p ->
                ( Format.asprintf "%a" Poa.pp_ratio p.Poa.anarchy,
                  Format.asprintf "%a" Poa.pp_ratio p.Poa.stability )
            | None -> ("-", "-")
          in
          let welfare =
            match Poa.exact_welfare_prices ~max_profiles:300_000 game with
            | Some p -> Printf.sprintf "%.3f" (Poa.ratio_to_float p.Poa.anarchy)
            | None -> "-"
          in
          Table.add_row t
            [ String.concat "," (List.map string_of_int l);
              Cost.version_name version;
              string_of_int c.Census.total_profiles;
              string_of_int c.Census.equilibria;
              string_of_int (List.length c.Census.iso_classes);
              range; fst prices; snd prices; welfare ])
        Cost.all_versions)
    instances;
  Table.print t

let small_census () =
  census_table "E-census — exhaustive equilibrium censuses of small instances"
    [ [ 1; 1; 1 ]; [ 1; 1; 1; 1 ]; [ 0; 1; 1; 1 ]; [ 2; 1; 1; 0 ]; [ 1; 1; 1; 1; 1 ] ]

let uniform_budget_open_problem () =
  subsection
    "E-open — Section 8: uniform budgets B > 1 (exhaustive at n=4,5; dynamics-sampled beyond)";
  let t =
    Table.make
      ~headers:[ "n"; "B"; "version"; "method"; "NE found"; "diam range" ]
  in
  (* exhaustive tier *)
  List.iter
    (fun (n, bb) ->
      List.iter
        (fun version ->
          let game = Game.make version (Budget.uniform ~n ~budget:bb) in
          let c = census_of game in
          let range =
            match (c.Census.min_diameter, c.Census.max_diameter) with
            | Some lo, Some hi -> Printf.sprintf "[%d,%d]" lo hi
            | _ -> "-"
          in
          Table.add_row t
            [ string_of_int n; string_of_int bb; Cost.version_name version;
              "exhaustive"; string_of_int c.Census.equilibria; range ])
        Cost.all_versions)
    [ (4, 2); (5, 2) ];
  (* sampled tier: best-response dynamics from random starts *)
  List.iter
    (fun (n, bb) ->
      List.iter
        (fun version ->
          let budgets = Budget.uniform ~n ~budget:bb in
          let game = Game.make version budgets in
          let found = ref 0 and dmin = ref max_int and dmax = ref min_int in
          for seed = 1 to 10 do
            let start = Strategy.random (rng (900 + seed)) budgets in
            match
              Bbng_dynamics.Dynamics.run ~max_steps:2_000 game
                ~schedule:Bbng_dynamics.Schedule.Round_robin
                ~rule:Bbng_dynamics.Dynamics.Exact_best start
            with
            | Bbng_dynamics.Dynamics.Converged { profile; _ } ->
                incr found;
                let d = Game.social_cost game profile in
                if d < !dmin then dmin := d;
                if d > !dmax then dmax := d
            | _ -> ()
          done;
          let range =
            if !found = 0 then "-" else Printf.sprintf "[%d,%d]" !dmin !dmax
          in
          Table.add_row t
            [ string_of_int n; string_of_int bb; Cost.version_name version;
              "dynamics x10"; string_of_int !found; range ])
        Cost.all_versions)
    [ (8, 2); (10, 2); (10, 3); (12, 3) ];
  Table.print t;
  note
    "every uniform-budget equilibrium observed has diameter <= 3 — consistent with (but not proving) a Theta(1) answer to the open question"

let run () =
  section "EQUILIBRIUM CENSUS & THE SECTION 8 OPEN PROBLEM";
  small_census ();
  note
    "welfare PoA (social cost = sum of player costs, Fabrikant-style) stays as tame as the diameter PoA on these instances: Table 1's story is not an artifact of measuring diameter";
  uniform_budget_open_problem ()
