(* Convergence lab — poking at the paper's open question (Section 8).

   "If the game starts from an arbitrary position and the players keep
   on improving their strategies, does the game converge to an
   equilibrium?"  The paper leaves this open and recalls that Laoutaris
   et al. construct a best-response loop in their directed variant.

   This example gathers the three kinds of evidence the library can
   produce:

   1. EXACT, tiny instances: build the full improvement graph (one node
      per strategy profile, one arc per strictly improving unilateral
      move) and test it for cycles.  Acyclic = the finite improvement
      property: convergence from every start under every schedule.
   2. SAMPLED, mid-size instances: run best-response dynamics from many
      random starts with full profile-memory cycle detection.
   3. The DIRECTED CONTRAST: the same experiment in the BBC baseline,
      where cycles do occur.

   Run with:  dune exec examples/convergence_lab.exe *)

open Bbng_core
module Ig = Bbng_dynamics.Improvement_graph
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule
module Table = Bbng_analysis.Table

let exact_tier () =
  Printf.printf "1. Exact improvement graphs (every profile, every improving move)\n\n";
  let t =
    Table.make
      ~headers:[ "instance"; "version"; "profiles"; "arcs"; "FIP"; "worst path" ]
  in
  List.iter
    (fun l ->
      List.iter
        (fun version ->
          let game = Game.make version (Budget.of_list l) in
          let g = Ig.build game in
          Table.add_row t
            [ String.concat "," (List.map string_of_int l);
              Cost.version_name version;
              string_of_int (Array.length g.Ig.profiles);
              string_of_int (List.length g.Ig.arcs);
              (if g.Ig.has_cycle then "NO" else "yes");
              string_of_int g.Ig.longest_path_lower_bound ])
        Cost.all_versions)
    [ [ 1; 1; 1; 1 ]; [ 2; 1; 1; 0 ]; [ 1; 1; 1; 1; 1 ] ];
  Table.print t;
  Printf.printf
    "Acyclic everywhere: on these instances not even adversarial scheduling\n\
     can make better-response dynamics loop.\n\n"

let sampled_tier () =
  Printf.printf "2. Sampled dynamics at mid-size (profile-memory cycle detection)\n\n";
  let runs = 40 in
  List.iter
    (fun (n, b) ->
      let budgets = Budget.uniform ~n ~budget:b in
      let game = Game.make Cost.Sum budgets in
      let converged = ref 0 and cycled = ref 0 in
      for seed = 1 to runs do
        let start = Strategy.random (Random.State.make [| seed |]) budgets in
        match
          Dynamics.run ~max_steps:3_000 game ~schedule:Schedule.Round_robin
            ~rule:Dynamics.Exact_best start
        with
        | Dynamics.Converged _ -> incr converged
        | Dynamics.Cycle _ -> incr cycled
        | Dynamics.Step_limit _ | Dynamics.Interrupted _ -> ()
      done;
      Printf.printf "  uniform(%d,%d): %d/%d converged, %d cycles\n" n b !converged
        runs !cycled)
    [ (8, 1); (10, 2); (12, 2) ];
  Printf.printf "\n"

let directed_contrast () =
  Printf.printf "3. The directed (BBC) contrast\n\n";
  let runs = 20 in
  List.iter
    (fun (n, b) ->
      let budgets = Budget.uniform ~n ~budget:b in
      let cycles = ref 0 and converged = ref 0 in
      for seed = 1 to runs do
        let start = Strategy.random (Random.State.make [| 70 + seed |]) budgets in
        let seen = Hashtbl.create 64 in
        Hashtbl.replace seen (Strategy.to_string start) ();
        let rec go profile steps =
          if steps > 400 then ()
          else begin
            let next = ref None in
            let player = ref 0 in
            while !next = None && !player < n do
              (match Bbng_baselines.Bbc.exact_improvement profile !player with
              | Some m ->
                  next :=
                    Some
                      (Strategy.with_strategy profile ~player:!player
                         ~targets:m.Best_response.targets)
              | None -> ());
              incr player
            done;
            match !next with
            | None -> incr converged
            | Some p ->
                let key = Strategy.to_string p in
                if Hashtbl.mem seen key then incr cycles
                else begin
                  Hashtbl.replace seen key ();
                  go p (steps + 1)
                end
          end
        in
        go start 0
      done;
      Printf.printf "  BBC uniform(%d,%d): %d/%d converged, %d genuine cycles\n" n b
        !converged runs !cycles)
    [ (6, 2); (8, 2) ];
  Printf.printf
    "\nThe undirected game converged in every run we have ever executed, and\n\
     its small-instance improvement graphs are provably acyclic; the\n\
     directed baseline cycles readily.  Whatever resolves the open question\n\
     will have to explain that asymmetry.\n"

let () =
  Printf.printf "Does best-response dynamics converge?  (Section 8, open)\n";
  Printf.printf "========================================================\n\n";
  exact_tier ();
  sampled_tier ();
  directed_contrast ()
