(* Quickstart: define a game, inspect costs, find a best response,
   certify an equilibrium, and run best-response dynamics.

   Run with:  dune exec examples/quickstart.exe *)

open Bbng_core

let () =
  (* A bounded budget network creation game is a cost version (MAX or
     SUM) plus a budget vector: player i must own exactly b_i links. *)
  let budgets = Budget.of_list [ 2; 1; 1; 0; 0 ] in
  let game = Game.make Cost.Sum budgets in
  Format.printf "Game: %a@." Game.pp game;

  (* A strategy profile assigns each player its owned targets. *)
  let profile =
    Strategy.make budgets [| [| 1; 3 |]; [| 2 |]; [| 0 |]; [||]; [||] |]
  in
  Format.printf "Profile: %a@." Strategy.pp profile;
  Format.printf "Realization: %a@." Bbng_graph.Digraph.pp (Strategy.realize profile);

  (* Costs are distances in the underlying undirected graph; vertex 4 is
     unreachable here, so everyone pays Cinf = n^2 = 25 for it. *)
  Array.iteri
    (fun player cost -> Format.printf "  cost(%d) = %d@." player cost)
    (Game.costs game profile);
  Format.printf "Social cost (diameter): %d@." (Game.social_cost game profile);

  (* Player 0's exact best response: it owns 2 arcs and should spend one
     absorbing the isolated vertex 4. *)
  let move = Best_response.exact game profile 0 in
  Format.printf "Best response of player 0: targets {%s}, cost %d@."
    (String.concat ","
       (List.map string_of_int (Array.to_list move.Best_response.targets)))
    move.Best_response.cost;

  (* The certifier returns a profitable deviation as a witness. *)
  (match Equilibrium.certify game profile with
  | Equilibrium.Equilibrium -> Format.printf "Profile is a Nash equilibrium@."
  | v -> Format.printf "Certifier says: %a@." Equilibrium.pp_verdict v);

  (* Iterated best responses converge to an equilibrium here. *)
  let outcome =
    Bbng_dynamics.Dynamics.run game ~schedule:Bbng_dynamics.Schedule.Round_robin
      ~rule:Bbng_dynamics.Dynamics.Exact_best profile
  in
  let final = Bbng_dynamics.Dynamics.final_profile outcome in
  Format.printf "Dynamics: %s after %d steps@."
    (Bbng_dynamics.Dynamics.outcome_name outcome)
    (Bbng_dynamics.Dynamics.steps outcome);
  Format.printf "Final profile: %a@." Strategy.pp final;
  Format.printf "Final diameter: %d; certified Nash: %b@."
    (Game.social_cost game final)
    (Equilibrium.is_nash game final);

  (* Theorem 2.3's constructive existence result, on any budget vector: *)
  let constructed = Bbng_constructions.Existence.construct budgets in
  Format.printf "Existence construction: %a (diameter %d, Nash: %b)@."
    Strategy.pp constructed
    (Game.social_cost game constructed)
    (Equilibrium.is_nash game constructed)
