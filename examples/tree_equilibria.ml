(* Tree equilibria: why the MAX and SUM objectives disagree by an
   exponential factor (Section 3).

   At the connectivity threshold (sum of budgets = n - 1) every
   equilibrium is a tree.  The paper proves the worst tree equilibrium
   has diameter Theta(n) under MAX but only Theta(log n) under SUM;
   this example builds both witnesses, certifies them, and then shows
   the mechanism: the SUM "doubling inequality" (proof of Theorem 3.3,
   Figure 3) holds on the binary tree and fails on the tripod.

   Run with:  dune exec examples/tree_equilibria.exe *)

open Bbng_core
open Bbng_constructions
module Table = Bbng_analysis.Table
module Bounds = Bbng_analysis.Bounds

let () =
  Printf.printf "Tree equilibria: MAX vs SUM\n";
  Printf.printf "===========================\n\n";
  let t =
    Table.make
      ~headers:[ "witness"; "n"; "version"; "diameter"; "Nash?"; "other version?" ]
  in
  List.iter
    (fun k ->
      let p = Tripod.profile ~k in
      let n = Tripod.n_of_k k in
      let max_ok = Equilibrium.is_nash (Game.make Cost.Max (Strategy.budgets p)) p in
      let sum_ok = Equilibrium.is_nash (Game.make Cost.Sum (Strategy.budgets p)) p in
      Table.add_row t
        [ Printf.sprintf "tripod k=%d" k; string_of_int n; "MAX";
          string_of_int (2 * k);
          (if max_ok then "yes" else "NO");
          (if sum_ok then "also SUM-stable" else "not SUM-stable") ])
    [ 2; 4; 6 ];
  List.iter
    (fun depth ->
      let p = Binary_tree.profile ~depth in
      let n = Binary_tree.n_of_depth depth in
      let sum_ok = Equilibrium.is_nash (Game.make Cost.Sum (Strategy.budgets p)) p in
      let max_ok = Equilibrium.is_nash (Game.make Cost.Max (Strategy.budgets p)) p in
      Table.add_row t
        [ Printf.sprintf "binary depth=%d" depth; string_of_int n; "SUM";
          string_of_int (2 * depth);
          (if sum_ok then "yes" else "NO");
          (if max_ok then "also MAX-stable" else "not MAX-stable") ])
    [ 2; 3; 4 ];
  Table.print t;

  Printf.printf "The mechanism (Theorem 3.3's inequality (1)):\n\n";
  let show name profile =
    let r = Bounds.figure3_decomposition profile in
    Printf.printf "  %s: longest path has %d edges, attachments a(i) = [%s]\n"
      name r.Bounds.diameter
      (String.concat ";" (List.map string_of_int (Array.to_list r.Bounds.attachment)));
    Printf.printf "    a(i_j + 1) >= sum of later attachments at every owned forward arc: %b\n"
      r.Bounds.inequality_holds
  in
  show "binary depth 4 (SUM equilibrium)" (Binary_tree.profile ~depth:4);
  show "tripod k=5 (MAX equilibrium only)" (Tripod.profile ~k:5);
  Printf.printf
    "\nUnder SUM, each vertex on the long path could shortcut one step ahead,\n\
     so the subtree hanging at each forward arc must outweigh everything\n\
     beyond it — sizes double along the path and the diameter is O(log n).\n\
     Under MAX only the single farthest vertex matters, shortcutting one\n\
     step buys nothing, and linear-diameter trees survive as equilibria.\n\n";
  Printf.printf "Explicit Theorem 3.3 bound check (SUM Tree-BG):\n";
  List.iter
    (fun depth ->
      let n = Binary_tree.n_of_depth depth in
      Printf.printf "  n = %4d: diameter %2d <= bound %2d\n" n (2 * depth)
        (Bounds.tree_sum_diameter_bound ~n))
    [ 2; 4; 6; 8; 10 ]
