(* The bounded-budget Braess paradox (Section 5).

   Intuition says richer players build better networks.  The paper's
   Theorem 5.3 refutes it for the MAX version: with unit budgets every
   equilibrium has diameter O(1), yet there are instances where every
   player has a strictly positive (often larger) budget and an
   equilibrium has diameter ~ sqrt(log n).

   This example makes the paradox concrete at n = 512:
   - unit budgets: the concentrated sun, a certified equilibrium of
     diameter 2;
   - shift-graph budgets (everyone owns >= 1 arc, many own several):
     a certified equilibrium of diameter 3 — and the gap grows with n.

   Run with:  dune exec examples/braess_paradox.exe *)

open Bbng_core
open Bbng_constructions
module Table = Bbng_analysis.Table

let () =
  Printf.printf "More budget, worse network: the MAX-version paradox\n";
  Printf.printf "===================================================\n\n";
  let t =
    Table.make
      ~headers:
        [ "n"; "instance"; "total budget"; "min budget"; "NE diameter"; "certified by" ]
  in
  List.iter
    (fun (tt, k) ->
      let n = Shift_graph.n_of ~t:tt ~k in
      (* the poor network: everyone gets exactly one link *)
      let sun = Unit_budget.concentrated_sun ~n in
      let sun_game = Game.make Cost.Max (Strategy.budgets sun) in
      let sun_cert =
        if n <= 64 then
          if Equilibrium.is_nash sun_game sun then "exact Nash check" else "FAILED"
        else "same family, certified exactly at n <= 64"
      in
      Table.add_row t
        [ string_of_int n; "unit budgets (sun)"; string_of_int n; "1";
          string_of_int (Game.social_cost sun_game sun); sun_cert ];
      (* the rich network: the shift-graph orientation *)
      let shift = Shift_graph.profile ~t:tt ~k in
      let b = Strategy.budgets shift in
      let cert = Shift_graph.certificate ~t:tt ~k in
      let shift_cert =
        if cert.Shift_graph.valid then "Lemma 5.2 counting certificate"
        else "INVALID"
      in
      Table.add_row t
        [ string_of_int n; Printf.sprintf "shift(t=%d,k=%d)" tt k;
          string_of_int (Budget.total b);
          string_of_int (Budget.min_budget b);
          string_of_int k; shift_cert ])
    [ (4, 2); (8, 3); (9, 4) ];
  Table.print t;
  Printf.printf
    "At every size the all-positive-budget instance spends far more links\n\
     in total, yet its (certified) equilibrium is strictly worse than the\n\
     unit-budget one — and the gap is Omega(sqrt(log n)) by Theorem 5.3.\n\n";
  (* Show the certificate contents once, so the reader can see what the
     Lemma 5.2 argument actually checks. *)
  let c = Shift_graph.certificate ~t:8 ~k:3 in
  Printf.printf "Certificate for shift(8,3), n = %d:\n" c.Shift_graph.n;
  Printf.printf "  every vertex has local diameter exactly %s\n"
    (match c.Shift_graph.all_local_diameters_equal with
    | Some d -> string_of_int d
    | None -> "mixed (invalid)");
  Printf.printf "  max degree %d; counting premise delta^d - 1 < n(delta-1): %b\n"
    c.Shift_graph.max_degree c.Shift_graph.counting_ok;
  Printf.printf "  all budgets positive: %b  =>  certificate valid: %b\n"
    c.Shift_graph.budgets_positive c.Shift_graph.valid;
  Printf.printf
    "\nBy Lemma 5.1 (a Moore counting argument), no single player can lower\n\
     its local diameter below %d no matter where it re-points its links, so\n\
     EVERY orientation of this graph is a MAX Nash equilibrium.\n"
    (match c.Shift_graph.all_local_diameters_equal with Some d -> d | None -> 0)
