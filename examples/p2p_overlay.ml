(* Peer-to-peer overlay formation — the motivating scenario of the
   paper's introduction (and of Laoutaris et al.): each peer can afford
   a fixed number of connections and selfishly rewires to sit close to
   everyone else.

   We simulate a swarm of peers with a uniform connection budget, start
   from a random overlay, and let peers improve greedily (single-link
   swaps — the cheap move a real client would make).  The run reports
   how the overlay's diameter, average distance, and degree profile
   evolve, and what stability notion the final overlay satisfies.

   Run with:  dune exec examples/p2p_overlay.exe *)

open Bbng_core
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule
module Table = Bbng_analysis.Table

let describe profile =
  let g = Strategy.underlying profile in
  let n = Bbng_graph.Undirected.n g in
  let diameter =
    match Bbng_graph.Distances.diameter g with
    | Some d -> string_of_int d
    | None -> "disconnected"
  in
  let avg_dist =
    match Bbng_graph.Distances.wiener_index g with
    | Some w -> Printf.sprintf "%.2f" (2.0 *. float_of_int w /. float_of_int (n * (n - 1)))
    | None -> "-"
  in
  (diameter, avg_dist, Bbng_graph.Undirected.max_degree g)

let run_swarm ~peers ~budget ~seed =
  let budgets = Budget.uniform ~n:peers ~budget in
  let game = Game.make Cost.Sum budgets in
  let start = Strategy.random (Random.State.make [| seed |]) budgets in
  let d0, a0, m0 = describe start in
  Printf.printf "\nSwarm: %d peers, budget %d (seed %d)\n" peers budget seed;
  Printf.printf "  random overlay: diameter %s, avg distance %s, max degree %d\n" d0 a0 m0;
  let improvements = ref 0 in
  let outcome =
    Dynamics.run ~max_steps:10_000 game ~schedule:Schedule.Round_robin
      ~rule:Dynamics.Best_swap
      ~on_step:(fun _ -> incr improvements)
      start
  in
  let final = Dynamics.final_profile outcome in
  let d1, a1, m1 = describe final in
  Printf.printf "  after %d link swaps (%s): diameter %s, avg distance %s, max degree %d\n"
    !improvements
    (Dynamics.outcome_name outcome)
    d1 a1 m1;
  Printf.printf "  stability: swap-stable %b" (Equilibrium.is_swap_stable game final);
  if peers <= 12 then
    Printf.printf ", exact Nash %b" (Equilibrium.is_nash game final);
  print_newline ();
  (* Theorem 7.2's promise: enough budget buys fault tolerance. *)
  let kappa =
    Bbng_graph.Connectivity.vertex_connectivity (Strategy.underlying final)
  in
  Printf.printf "  fault tolerance: overlay is %d-connected (budget promise: %d-connected or diameter < 4)\n"
    kappa budget

let () =
  Printf.printf "P2P overlay formation under bounded connection budgets\n";
  Printf.printf "======================================================\n";
  List.iter
    (fun (peers, budget, seed) -> run_swarm ~peers ~budget ~seed)
    [ (10, 2, 1); (20, 2, 2); (20, 3, 3); (40, 3, 4) ];
  Printf.printf
    "\nNote how selfish rewiring collapses the random overlay to diameter 2-3\n\
     (the Theta(1) regime of Table 1) and how larger budgets yield higher\n\
     vertex connectivity, as Theorem 7.2 predicts.\n"
