open Helpers
open Bbng_core
module Weighted = Bbng_core.Weighted

(* Perfect binary tree of depth 2: 4 poor leaves (3,4,5,6). *)
let btree () = Weighted.of_profile (Bbng_constructions.Binary_tree.profile ~depth:2)

let test_of_digraph_units () =
  let w = btree () in
  check_int "n" 7 (Weighted.n w);
  check_int "alive count" 7 (Weighted.alive_count w);
  check_int "unit weight" 1 (Weighted.weight w 3);
  check_int "total weight" 7 (Weighted.total_weight w)

let test_poor_rich_leaves () =
  let w = btree () in
  (* leaves 3..6 have degree 1 and out-degree 0: poor *)
  check_int_list "poor" [ 3; 4; 5; 6 ] (Weighted.poor_leaves w);
  check_int_list "no rich" [] (Weighted.rich_leaves w);
  (* a directed path: vertex 0 owns an arc and has degree 1: rich leaf *)
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 3) in
  let w = Weighted.of_profile p in
  check_int_list "rich" [ 0 ] (Weighted.rich_leaves w);
  check_int_list "poor" [ 2 ] (Weighted.poor_leaves w)

let test_fold_poor_leaf () =
  let w = btree () in
  let w = Weighted.fold_poor_leaf w 3 in
  check_false "leaf dead" (Weighted.is_alive w 3);
  check_int "weight transferred" 2 (Weighted.weight w 1);
  check_int "total invariant" 7 (Weighted.total_weight w);
  check_int "alive count" 6 (Weighted.alive_count w)

let test_fold_poor_leaf_rejects () =
  let w = btree () in
  Alcotest.check_raises "not a poor leaf"
    (Invalid_argument "Weighted.fold_poor_leaf: 0 is not a poor leaf") (fun () ->
      ignore (Weighted.fold_poor_leaf w 0))

let test_fold_all () =
  let w, folds = Weighted.fold_all_poor_leaves (btree ()) in
  (* folding cascades: the whole tree folds into the root *)
  check_int "everything folds" 6 folds;
  check_int "one survivor" 1 (Weighted.alive_count w);
  check_int "root holds all weight" 7 (Weighted.weight w 0);
  check_int "total invariant" 7 (Weighted.total_weight w)

let test_weighted_cost () =
  let w = btree () in
  (* root: two children at 1, four grandchildren at 2: 2 + 8 = 10 *)
  check_int "root cost" 10 (Weighted.weighted_cost w 0);
  (* after folding leaf 3 into 1, the root sees weight 2 at distance 1,
     weight 1 at distance 1, and three unit weights at distance 2 *)
  let w = Weighted.fold_poor_leaf w 3 in
  check_int "root cost after fold" (2 + 1 + (3 * 2)) (Weighted.weighted_cost w 0)

let test_rich_leaves_within_2 () =
  (* brace between 0,1 plus pendant arcs from 2,3 to 0 and 1:
     2 and 3 are rich leaves at distance 3: violates Lemma 6.4
     (and indeed that profile is not an equilibrium) *)
  let arcs = [ (0, 1); (1, 0); (2, 0); (3, 1) ] in
  let d = Bbng_graph.Digraph.of_arcs ~n:4 arcs in
  let w = Weighted.of_digraph d in
  check_int_list "rich leaves" [ 2; 3 ] (Weighted.rich_leaves w);
  check_false "distance 3 violates" (Weighted.rich_leaves_within_2 w);
  (* both attached to 0: distance 2: fine *)
  let d = Bbng_graph.Digraph.of_arcs ~n:4 [ (0, 1); (1, 0); (2, 0); (3, 0) ] in
  check_true "distance 2 ok" (Weighted.rich_leaves_within_2 (Weighted.of_digraph d))

let test_degree2_edges_and_contraction () =
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 5) in
  let w = Weighted.of_profile p in
  (* interior path edges where both endpoints have degree 2: (1,2) (2,3) *)
  check_true "two interior edges" (List.length (Weighted.degree2_edges w) = 2);
  let w = Weighted.contract_edge w 1 2 in
  check_false "2 merged away" (Weighted.is_alive w 2);
  check_int "weights add" 2 (Weighted.weight w 1);
  check_true "1 now adjacent to 3"
    (Bbng_graph.Undirected.mem_edge (Weighted.underlying w) 1 3)

let test_contract_all () =
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 6) in
  let w, count = Weighted.contract_all_degree2 (Weighted.of_profile p) in
  check_true "contracted repeatedly" (count >= 3);
  check_int "weight preserved" 6 (Weighted.total_weight w);
  (* final shape: no degree-2-degree-2 edge *)
  check_true "fixpoint" (Weighted.degree2_edges w = [])

let test_weak_equilibrium_binary_tree () =
  (* SUM Tree-BG equilibrium is in particular a weak equilibrium *)
  check_true "binary tree" (Weighted.is_weak_equilibrium (btree ()))

let test_weak_equilibrium_violated () =
  (* directed path of 6: the head can swap its arc toward the middle *)
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 6) in
  check_false "path not weakly stable"
    (Weighted.is_weak_equilibrium (Weighted.of_profile p))

let test_folding_preserves_weak_equilibrium () =
  (* the Corollary 6.3 step: folding a poor leaf of a weak equilibrium
     leaves a weak equilibrium *)
  let w = btree () in
  let w = Weighted.fold_poor_leaf w 3 in
  check_true "still weak equilibrium" (Weighted.is_weak_equilibrium w);
  let w, _ = Weighted.fold_all_poor_leaves w in
  check_true "after full fold" (Weighted.is_weak_equilibrium w)

let test_lemma_6_2_height_bound () =
  (* after folding a deep structure, the folded weights bound the height:
     h <= 1 + log2 w(T).  Check on binary trees of several depths. *)
  List.iter
    (fun depth ->
      let p = Bbng_constructions.Binary_tree.profile ~depth in
      let w = Weighted.of_profile p in
      let n = Weighted.total_weight w in
      let height = depth in
      let bound = 1.0 +. (log (float_of_int n) /. log 2.0) in
      check_true
        (Printf.sprintf "depth %d" depth)
        (float_of_int height <= bound))
    [ 1; 2; 3; 4 ]

let suite =
  [
    case "unit weights" test_of_digraph_units;
    case "poor and rich leaves" test_poor_rich_leaves;
    case "fold one poor leaf" test_fold_poor_leaf;
    case "fold rejects non-leaf" test_fold_poor_leaf_rejects;
    case "fold all" test_fold_all;
    case "weighted cost" test_weighted_cost;
    case "lemma 6.4 checker" test_rich_leaves_within_2;
    case "degree-2 contraction" test_degree2_edges_and_contraction;
    case "contract to fixpoint" test_contract_all;
    case "weak equilibrium: binary tree" test_weak_equilibrium_binary_tree;
    case "weak equilibrium: violated" test_weak_equilibrium_violated;
    case "folding preserves weak equilibrium" test_folding_preserves_weak_equilibrium;
    case "lemma 6.2 height bound" test_lemma_6_2_height_bound;
  ]
