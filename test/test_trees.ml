open Helpers
module Trees = Bbng_graph.Trees
module Undirected = Bbng_graph.Undirected
module Generators = Bbng_graph.Generators

let binary7 = Undirected.of_digraph (Generators.perfect_binary_tree 2)

let test_is_tree () =
  check_true "path" (Trees.is_tree path5);
  check_true "star" (Trees.is_tree star7);
  check_false "cycle" (Trees.is_tree cycle6);
  check_false "disconnected" (Trees.is_tree two_triangles);
  check_true "singleton" (Trees.is_tree (Undirected.of_edges ~n:1 []))

let test_is_forest () =
  check_true "tree" (Trees.is_forest path5);
  check_true "two trees" (Trees.is_forest (Undirected.of_edges ~n:4 [ (0, 1); (2, 3) ]));
  check_false "cycle" (Trees.is_forest cycle6);
  check_true "isolated vertices" (Trees.is_forest (Undirected.of_edges ~n:3 []))

let test_root_at () =
  let r = Trees.root_at binary7 0 in
  check_int "root depth" 0 r.Trees.depth.(0);
  check_int "leaf depth" 2 r.Trees.depth.(6);
  check_int "parent of 5" 2 r.Trees.parent.(5);
  check_int "root parent self" 0 r.Trees.parent.(0);
  check_int "height" 2 (Trees.height r)

let test_subtree_sizes () =
  let r = Trees.root_at binary7 0 in
  let s = Trees.subtree_sizes r in
  check_int "whole tree" 7 s.(0);
  check_int "internal" 3 s.(1);
  check_int "leaf" 1 s.(4)

let test_children () =
  let r = Trees.root_at binary7 0 in
  check_int_list "root children" [ 1; 2 ] (Trees.children r 0);
  check_int_list "leaf children" [] (Trees.children r 6)

let test_diameter_path () =
  let p = Trees.tree_diameter_path path5 in
  check_int "path length" 5 (List.length p);
  let p = Trees.tree_diameter_path binary7 in
  check_int "binary tree diameter path" 5 (List.length p)

let test_diameter_path_rejects () =
  Alcotest.check_raises "not a tree"
    (Invalid_argument "Trees.tree_diameter_path: not a tree") (fun () ->
      ignore (Trees.tree_diameter_path cycle6))

let test_attachment_sizes () =
  (* path 0-1-2 with extra leaves 3,4 hanging off vertex 1 *)
  let g = Undirected.of_edges ~n:5 [ (0, 1); (1, 2); (1, 3); (1, 4) ] in
  let a = Trees.path_attachment_sizes g [ 0; 1; 2 ] in
  check_int_array "attachments" [| 1; 3; 1 |] a

let test_attachment_sizes_whole_tree () =
  let p = Trees.tree_diameter_path binary7 in
  let a = Trees.path_attachment_sizes binary7 p in
  check_int "partition sums to n" 7 (Array.fold_left ( + ) 0 a)

let test_attachment_rejects_non_path () =
  let g = path5 in
  Alcotest.check_raises "not a path"
    (Invalid_argument "Trees.path_attachment_sizes: not a path of the graph")
    (fun () -> ignore (Trees.path_attachment_sizes g [ 0; 2 ]))

let test_leaves () =
  check_int_list "path leaves" [ 0; 4 ] (Trees.leaves path5);
  check_int_list "star leaves" [ 1; 2; 3; 4; 5; 6 ] (Trees.leaves star7);
  check_int_list "binary tree leaves" [ 3; 4; 5; 6 ] (Trees.leaves binary7)

let test_centers () =
  check_int_list "odd path" [ 2 ] (Trees.centers path5);
  check_int_list "star" [ 0 ] (Trees.centers star7);
  check_int_list "binary tree" [ 0 ] (Trees.centers binary7);
  let p4 = Generators.path_graph 4 in
  check_int_list "even path: two centers" [ 1; 2 ] (Trees.centers p4);
  check_int_list "singleton" [ 0 ] (Trees.centers (Undirected.of_edges ~n:1 []))

let prop_random_tree_is_tree =
  qcheck "Prüfer decoding yields trees" (gnp_gen ~n_min:1 ~n_max:40)
    (fun (n, seed) -> Trees.is_tree (Generators.random_tree (rng seed) n))

let prop_diameter_path_is_longest =
  qcheck "diameter path length matches diameter" (gnp_gen ~n_min:2 ~n_max:30)
    (fun (n, seed) ->
      let g = Generators.random_tree (rng seed) n in
      let p = Trees.tree_diameter_path g in
      Bbng_graph.Distances.diameter g = Some (List.length p - 1))

let prop_attachment_partitions =
  qcheck "attachment sizes partition the tree" (gnp_gen ~n_min:2 ~n_max:30)
    (fun (n, seed) ->
      let g = Generators.random_tree (rng seed) n in
      let p = Trees.tree_diameter_path g in
      let a = Trees.path_attachment_sizes g p in
      Array.fold_left ( + ) 0 a = n && Array.for_all (fun x -> x >= 1) a)

let prop_subtree_sizes_consistent =
  qcheck "subtree sizes: root has n, leaves have 1" (gnp_gen ~n_min:2 ~n_max:30)
    (fun (n, seed) ->
      let g = Generators.random_tree (rng seed) n in
      let r = Trees.root_at g 0 in
      let s = Trees.subtree_sizes r in
      s.(0) = n
      && List.for_all (fun leaf -> leaf = 0 || s.(leaf) = 1) (Trees.leaves g))

let suite =
  [
    case "is_tree" test_is_tree;
    case "is_forest" test_is_forest;
    case "root_at" test_root_at;
    case "subtree sizes" test_subtree_sizes;
    case "children" test_children;
    case "diameter path" test_diameter_path;
    case "diameter path rejects non-tree" test_diameter_path_rejects;
    case "attachment sizes" test_attachment_sizes;
    case "attachment partition" test_attachment_sizes_whole_tree;
    case "attachment rejects non-path" test_attachment_rejects_non_path;
    case "leaves" test_leaves;
    case "centers" test_centers;
    prop_random_tree_is_tree;
    prop_diameter_path_is_longest;
    prop_attachment_partitions;
    prop_subtree_sizes_consistent;
  ]
