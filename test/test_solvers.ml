open Helpers
open Bbng_solvers
module Undirected = Bbng_graph.Undirected
module Generators = Bbng_graph.Generators

(* --- k-center --- *)

let test_kcenter_evaluate () =
  check_int "single center of path" 4 (K_center.evaluate path5 [| 0 |]);
  check_int "middle center" 2 (K_center.evaluate path5 [| 2 |]);
  check_int "two centers" 1 (K_center.evaluate path5 [| 1; 3 |])

let test_kcenter_evaluate_disconnected () =
  (* unreachable vertices count n *)
  check_int "misses a component" 6 (K_center.evaluate two_triangles [| 0 |])

let test_kcenter_exact () =
  let s = K_center.exact path5 ~k:1 in
  check_int "radius" 2 s.K_center.radius;
  check_int_array "center" [| 2 |] s.K_center.centers;
  let s = K_center.exact path5 ~k:2 in
  check_int "radius k=2" 1 s.K_center.radius

let test_kcenter_exact_star () =
  let s = K_center.exact star7 ~k:1 in
  check_int "hub radius 1" 1 s.K_center.radius;
  check_int_array "hub" [| 0 |] s.K_center.centers

let test_kcenter_gonzalez_2approx () =
  (* farthest-point traversal is within 2x of optimum *)
  List.iter
    (fun (g, k) ->
      let opt = (K_center.exact g ~k).K_center.radius in
      let approx = (K_center.gonzalez g ~k).K_center.radius in
      check_true "2-approximation" (approx <= 2 * max opt 1);
      check_true "not better than opt" (approx >= opt))
    [ (path5, 1); (path5, 2); (cycle6, 2); (star7, 2); (Generators.grid_graph ~rows:3 ~cols:3, 2) ]

let test_kcenter_decision () =
  check_true "radius 2 feasible with 1" (K_center.decision path5 ~k:1 ~radius:2 <> None);
  check_true "radius 1 infeasible with 1" (K_center.decision path5 ~k:1 ~radius:1 = None);
  (match K_center.decision path5 ~k:2 ~radius:1 with
  | Some c -> check_true "witness is honest" (K_center.evaluate path5 c <= 1)
  | None -> Alcotest.fail "expected feasible")

let test_kcenter_validation () =
  Alcotest.check_raises "k = 0" (Invalid_argument "K_center: need 1 <= k <= n")
    (fun () -> ignore (K_center.exact path5 ~k:0))

(* --- k-median --- *)

let test_kmedian_evaluate () =
  check_int "end of path" 10 (K_median.evaluate path5 [| 0 |]);
  check_int "middle" 6 (K_median.evaluate path5 [| 2 |]);
  check_int "pair" 3 (K_median.evaluate path5 [| 1; 3 |])

let test_kmedian_exact () =
  let s = K_median.exact path5 ~k:1 in
  check_int "median cost" 6 s.K_median.cost;
  check_int_array "median is the middle" [| 2 |] s.K_median.centers

let test_kmedian_exact_vs_center_differ () =
  (* a broom: k-center favors the handle middle, k-median the brush *)
  let g = Undirected.of_digraph (Generators.broom ~handle:4 ~bristles:6) in
  let med = K_median.exact g ~k:1 in
  (* the brush vertex (index 3) minimizes total distance *)
  check_int_array "median at brush" [| 3 |] med.K_median.centers

let test_kmedian_local_search_soundness () =
  List.iter
    (fun (g, k) ->
      let opt = (K_median.exact g ~k).K_median.cost in
      let ls = (K_median.local_search g ~k).K_median.cost in
      check_true "local search >= opt" (ls >= opt);
      (* the classical guarantee is 5x; on these tiny instances local
         search actually lands on the optimum *)
      check_true "within 5x" (ls <= 5 * max opt 1))
    [ (path5, 1); (path5, 2); (cycle6, 2); (star7, 1) ]

let test_kmedian_validation () =
  Alcotest.check_raises "k too big" (Invalid_argument "K_median: need 1 <= k <= n")
    (fun () -> ignore (K_median.exact path5 ~k:6))

(* --- Theorem 2.1 reduction --- *)

let test_reduction_builds_valid_position () =
  let inst = Reduction.of_center_instance path5 ~k:2 in
  check_int "new player index" 5 inst.Reduction.new_player;
  check_int "new player budget" 2
    (Bbng_core.Budget.get (Bbng_core.Game.budgets inst.Reduction.game) 5);
  check_true "version MAX"
    (Bbng_core.Game.version inst.Reduction.game = Bbng_core.Cost.Max)

let test_reduction_cost_formula_center () =
  (* c_MAX(new) = 1 + radius(S) for any strategy on connected H *)
  let inst = Reduction.of_center_instance path5 ~k:1 in
  List.iter
    (fun center ->
      check_int
        (Printf.sprintf "formula at center %d" center)
        (1 + K_center.evaluate path5 [| center |])
        (Reduction.strategy_cost inst [| center |]))
    [ 0; 1; 2; 3; 4 ]

let test_reduction_cost_formula_median () =
  let inst = Reduction.of_median_instance path5 ~k:1 in
  List.iter
    (fun center ->
      check_int
        (Printf.sprintf "formula at center %d" center)
        (5 + K_median.evaluate path5 [| center |])
        (Reduction.strategy_cost inst [| center |]))
    [ 0; 2; 4 ]

let test_reduction_solves_kcenter () =
  List.iter
    (fun (g, k) ->
      let direct = K_center.exact g ~k in
      let via_game = Reduction.solve_center_via_game g ~k in
      check_int "radii agree" direct.K_center.radius via_game.K_center.radius;
      check_int "witness radius honest" direct.K_center.radius
        (K_center.evaluate g via_game.K_center.centers))
    [ (path5, 1); (path5, 2); (cycle6, 1); (cycle6, 2); (star7, 2) ]

let test_reduction_solves_kmedian () =
  List.iter
    (fun (g, k) ->
      let direct = K_median.exact g ~k in
      let via_game = Reduction.solve_median_via_game g ~k in
      check_int "costs agree" direct.K_median.cost via_game.K_median.cost;
      check_int "witness cost honest" direct.K_median.cost
        (K_median.evaluate g via_game.K_median.centers))
    [ (path5, 1); (path5, 2); (cycle6, 2); (star7, 1) ]

let prop_reduction_center_random =
  qcheck ~count:30 "k-center via game = exact (random connected graphs)"
    (gnp_gen ~n_min:3 ~n_max:8) (fun input ->
      let g = random_connected_of input in
      let k = 2 in
      (K_center.exact g ~k).K_center.radius
      = (Reduction.solve_center_via_game g ~k).K_center.radius)

let prop_reduction_median_random =
  qcheck ~count:30 "k-median via game = exact (random connected graphs)"
    (gnp_gen ~n_min:3 ~n_max:8) (fun input ->
      let g = random_connected_of input in
      let k = 2 in
      (K_median.exact g ~k).K_median.cost
      = (Reduction.solve_median_via_game g ~k).K_median.cost)

let prop_gonzalez_2approx_random =
  qcheck ~count:30 "Gonzalez within 2x on random connected graphs"
    (gnp_gen ~n_min:3 ~n_max:10) (fun input ->
      let g = random_connected_of input in
      let k = 2 in
      (K_center.gonzalez g ~k).K_center.radius
      <= 2 * max 1 (K_center.exact g ~k).K_center.radius)

let suite =
  [
    case "k-center evaluate" test_kcenter_evaluate;
    case "k-center evaluate disconnected" test_kcenter_evaluate_disconnected;
    case "k-center exact" test_kcenter_exact;
    case "k-center exact star" test_kcenter_exact_star;
    case "Gonzalez 2-approx" test_kcenter_gonzalez_2approx;
    case "k-center decision" test_kcenter_decision;
    case "k-center validation" test_kcenter_validation;
    case "k-median evaluate" test_kmedian_evaluate;
    case "k-median exact" test_kmedian_exact;
    case "k-median vs k-center" test_kmedian_exact_vs_center_differ;
    case "k-median local search" test_kmedian_local_search_soundness;
    case "k-median validation" test_kmedian_validation;
    case "reduction builds valid position" test_reduction_builds_valid_position;
    case "reduction cost formula (MAX/k-center)" test_reduction_cost_formula_center;
    case "reduction cost formula (SUM/k-median)" test_reduction_cost_formula_median;
    case "reduction solves k-center" test_reduction_solves_kcenter;
    case "reduction solves k-median" test_reduction_solves_kmedian;
    prop_reduction_center_random;
    prop_reduction_median_random;
    prop_gonzalez_2approx_random;
  ]
