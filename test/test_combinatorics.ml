open Helpers
module C = Bbng_graph.Combinatorics

let collect ~n ~k =
  let acc = ref [] in
  C.iter_combinations ~n ~k (fun c -> acc := Array.to_list c :: !acc);
  List.rev !acc

let count = Alcotest.testable
    (Fmt.of_to_string C.count_to_string)
    (fun a b -> a = b)

let check_count msg expected got = Alcotest.check count msg expected got

let test_binomial () =
  check_count "5 choose 2" (C.Exact 10) (C.binomial 5 2);
  check_count "n choose 0" (C.Exact 1) (C.binomial 7 0);
  check_count "n choose n" (C.Exact 1) (C.binomial 7 7);
  check_count "k > n" (C.Exact 0) (C.binomial 3 5);
  check_count "k < 0" (C.Exact 0) (C.binomial 3 (-1));
  check_count "symmetry" (C.binomial 20 6) (C.binomial 20 14);
  check_count "big exact" (C.Exact 184756) (C.binomial 20 10)

let test_binomial_saturates () =
  (* the boundary on 63-bit ints: C(64,32) ~ 1.8e18 still fits,
     C(66,33) ~ 7.2e18 does not — the overflow is an explicit marker,
     never a clamped number *)
  check_count "C(64,32) exact" (C.Exact 1832624140942590534) (C.binomial 64 32);
  check_count "C(66,33) saturates" C.Saturated (C.binomial 66 33);
  check_count "way past the boundary" C.Saturated (C.binomial 200 100);
  check_int "binomial_sat clamps for estimates" max_int (C.binomial_sat 200 100);
  check_int "binomial_sat exact when exact" 10 (C.binomial_sat 5 2);
  check_true "saturated is never within a limit"
    (not (C.count_at_most max_int C.Saturated));
  check_true "exact within its own value" (C.count_at_most 10 (C.Exact 10));
  check_false "exact above a limit" (C.count_at_most 9 (C.Exact 10))

let test_iter_enumerates_all () =
  let subsets = collect ~n:4 ~k:2 in
  check_int "count" 6 (List.length subsets);
  check_true "lexicographic"
    (subsets = [ [0;1]; [0;2]; [0;3]; [1;2]; [1;3]; [2;3] ])

let test_iter_k0 () =
  check_true "single empty subset" (collect ~n:5 ~k:0 = [ [] ]);
  check_true "k=0,n=0" (collect ~n:0 ~k:0 = [ [] ])

let test_iter_k_gt_n () =
  check_true "no subsets" (collect ~n:3 ~k:4 = [])

let test_iter_full () =
  check_true "k=n single subset" (collect ~n:3 ~k:3 = [ [0;1;2] ])

let test_exists () =
  check_true "finds" (C.exists_combination ~n:5 ~k:2 (fun c -> c.(0) = 2));
  check_false "exhausts" (C.exists_combination ~n:5 ~k:2 (fun c -> c.(0) = 9))

let test_combinations_of () =
  let acc = ref [] in
  C.iter_combinations_of [| "a"; "b"; "c" |] ~k:2 (fun c -> acc := String.concat "" (Array.to_list c) :: !acc);
  check_true "element subsets" (List.rev !acc = [ "ab"; "ac"; "bc" ])

let test_fold_best () =
  (* minimize the sum of the chosen indices: {0,1} wins *)
  match C.fold_best ~n:5 ~k:2 ~score:(fun c -> c.(0) + c.(1)) () with
  | Some (c, s) ->
      check_int_array "best subset" [| 0; 1 |] c;
      check_int "best score" 1 s
  | None -> Alcotest.fail "expected a best subset"

let test_fold_best_stop_at () =
  (* early exit: with stop_at = 10 the very first subset qualifies *)
  let evaluated = ref 0 in
  (match
     C.fold_best ~n:6 ~k:3
       ~score:(fun _ -> incr evaluated; 5)
       ~stop_at:10 ()
   with
  | Some (_, 5) -> ()
  | _ -> Alcotest.fail "expected score 5");
  check_int "only one evaluation" 1 !evaluated

let test_fold_best_none () =
  check_true "no subsets" (C.fold_best ~n:2 ~k:3 ~score:(fun _ -> 0) () = None)

let prop_count_matches_binomial =
  qcheck "iteration count = binomial"
    (QCheck.make
       ~print:(fun (n, k) -> Printf.sprintf "n=%d k=%d" n k)
       QCheck.Gen.(pair (int_range 0 10) (int_range 0 10)))
    (fun (n, k) -> C.Exact (List.length (collect ~n ~k)) = C.binomial n k)

let prop_subsets_sorted_distinct =
  qcheck "every subset is sorted and duplicate-free"
    (QCheck.make
       ~print:(fun (n, k) -> Printf.sprintf "n=%d k=%d" n k)
       QCheck.Gen.(pair (int_range 1 9) (int_range 1 9)))
    (fun (n, k) ->
      List.for_all
        (fun c ->
          let rec ok = function
            | a :: (b :: _ as rest) -> a < b && ok rest
            | _ -> true
          in
          ok c && List.for_all (fun x -> x >= 0 && x < n) c)
        (collect ~n ~k))

(* --- rank / unrank / successor: the census-shard substrate --- *)

let test_unrank_endpoints_and_guards () =
  check_int_array "rank 0" [| 0; 1; 2 |] (C.unrank_combination ~n:5 ~k:3 0);
  check_int_array "last rank" [| 2; 3; 4 |] (C.unrank_combination ~n:5 ~k:3 9);
  check_int_array "k = 0" [||] (C.unrank_combination ~n:5 ~k:0 0);
  check_true "rank past the space rejected"
    (match C.unrank_combination ~n:5 ~k:3 10 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_true "negative rank rejected"
    (match C.unrank_combination ~n:5 ~k:3 (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_true "saturated space rejected"
    (match C.unrank_combination ~n:200 ~k:100 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_unrank_matches_iteration_order () =
  let all = Array.of_list (collect ~n:6 ~k:3) in
  Array.iteri
    (fun r expect ->
      let c = C.unrank_combination ~n:6 ~k:3 r in
      check_int_list (Printf.sprintf "unrank %d" r) expect (Array.to_list c);
      check_int (Printf.sprintf "rank back %d" r) r (C.rank_combination ~n:6 c))
    all

let test_next_combination_chain () =
  (* start anywhere, step to the end: exactly the enumeration's tail *)
  let all = collect ~n:6 ~k:3 in
  let c = C.unrank_combination ~n:6 ~k:3 0 in
  let seen = ref [ Array.to_list c ] in
  while C.next_combination ~n:6 c do
    seen := Array.to_list c :: !seen
  done;
  check_true "successor chain = lexicographic order" (List.rev !seen = all);
  check_int_list "last subset untouched by the failing step" [ 3; 4; 5 ]
    (Array.to_list c)

let prop_rank_unrank_roundtrip =
  qcheck "rank . unrank = id on every rank"
    (QCheck.make
       ~print:(fun (n, k, r) -> Printf.sprintf "n=%d k=%d r=%d" n k r)
       QCheck.Gen.(
         int_range 1 10 >>= fun n ->
         int_range 0 n >>= fun k ->
         let total =
           match C.binomial n k with C.Exact e -> e | C.Saturated -> 1
         in
         int_range 0 (total - 1) >>= fun r -> return (n, k, r)))
    (fun (n, k, r) ->
      C.rank_combination ~n (C.unrank_combination ~n ~k r) = r)

let suite =
  [
    case "binomial" test_binomial;
    case "binomial saturates" test_binomial_saturates;
    case "iterate all subsets" test_iter_enumerates_all;
    case "k = 0" test_iter_k0;
    case "k > n" test_iter_k_gt_n;
    case "k = n" test_iter_full;
    case "exists_combination" test_exists;
    case "combinations of elements" test_combinations_of;
    case "fold_best" test_fold_best;
    case "fold_best early exit" test_fold_best_stop_at;
    case "fold_best empty" test_fold_best_none;
    prop_count_matches_binomial;
    prop_subsets_sorted_distinct;
    case "unrank endpoints and guards" test_unrank_endpoints_and_guards;
    case "unrank matches iteration order" test_unrank_matches_iteration_order;
    case "successor chain" test_next_combination_chain;
    prop_rank_unrank_roundtrip;
  ]
