open Helpers
open Bbng_analysis
module Generators = Bbng_graph.Generators

let test_ball_profile_path () =
  let p = Expansion.ball_profile path5 in
  (* radius 0: every ball is 1; radius 1: ends have 2, middle 3 *)
  check_int "f(0)" 1 p.Expansion.min_ball.(0);
  check_int "f(1)" 2 p.Expansion.min_ball.(1);
  check_int "max ball radius 1" 3 p.Expansion.max_ball.(1);
  check_int "radii up to diameter" 5 (Array.length p.Expansion.radii);
  check_int "f(diameter) = n" 5 p.Expansion.min_ball.(4)

let test_ball_profile_complete () =
  let p = Expansion.ball_profile k5 in
  check_int "two radii" 2 (Array.length p.Expansion.radii);
  check_int "f(1) = n" 5 p.Expansion.min_ball.(1)

let test_f_clamps () =
  let p = Expansion.ball_profile path5 in
  check_int "beyond diameter" 5 (Expansion.f p 100);
  check_int "at zero" 1 (Expansion.f p 0)

let test_disconnected_saturates () =
  let p = Expansion.ball_profile two_triangles in
  check_int "component size" 3 (Expansion.f p 10)

let test_doubling_radius () =
  check_int "complete" 1 (Expansion.doubling_radius k5);
  (* star: a leaf's radius-1 ball has only 2 vertices, so radius 2 is
     needed before the MINIMUM ball clears n/2 *)
  check_int "star" 2 (Expansion.doubling_radius star7);
  (* path of 9: balls of radius k have >= k+1 vertices; need > 4.5 *)
  check_int "path9" 4 (Expansion.doubling_radius (Generators.path_graph 9));
  check_int "singleton" 0 (Expansion.doubling_radius (Bbng_graph.Undirected.of_edges ~n:1 []))

let test_inequality_3_on_equilibria () =
  (* SUM equilibria expand (the heart of Theorem 6.9) *)
  List.iter
    (fun profile ->
      check_true "equilibrium expands"
        (Expansion.inequality_3 (Bbng_core.Strategy.underlying profile)))
    [
      Bbng_constructions.Unit_budget.concentrated_sun ~n:20;
      Bbng_constructions.Binary_tree.profile ~depth:4;
      Bbng_constructions.Existence.construct (Bbng_core.Budget.uniform ~n:12 ~budget:2);
    ]

let test_inequality_3_small_diameter_vacuous () =
  check_true "diameter < 4 is vacuous" (Expansion.inequality_3 k5)

let test_inequality_3_fails_on_long_path () =
  (* a long path has f(4k) = 4k+1 << k f(k) / (c log n) for suitable k:
     paths are exactly what cannot be equilibria at scale *)
  let g = Generators.path_graph 400 in
  check_false "path does not expand" (Expansion.inequality_3 ~c:1.0 g)

let test_report_shape () =
  let rows = Expansion.report (Bbng_constructions.Binary_tree.profile ~depth:3) in
  check_int "one row per radius" 7 (List.length rows);
  let k0, f0, m0 = List.hd rows in
  check_int "radius zero" 0 k0;
  check_int "f" 1 f0;
  check_int "max" 1 m0

let prop_min_ball_monotone =
  qcheck "f is nondecreasing in the radius" (gnp_gen ~n_min:2 ~n_max:14)
    (fun input ->
      let g = random_connected_of input in
      let p = Expansion.ball_profile g in
      let ok = ref true in
      for k = 1 to Array.length p.Expansion.min_ball - 1 do
        if p.Expansion.min_ball.(k) < p.Expansion.min_ball.(k - 1) then ok := false
      done;
      !ok)

let prop_ball_bounds =
  qcheck "1 <= f(k) <= max_ball(k) <= n" (gnp_gen ~n_min:1 ~n_max:14)
    (fun input ->
      let g = random_gnp_of input in
      let n = Bbng_graph.Undirected.n g in
      let p = Expansion.ball_profile g in
      Array.for_all
        (fun k ->
          let f = p.Expansion.min_ball.(k) and m = p.Expansion.max_ball.(k) in
          1 <= f && f <= m && m <= n)
        p.Expansion.radii)

let suite =
  [
    case "ball profile on a path" test_ball_profile_path;
    case "ball profile on K5" test_ball_profile_complete;
    case "f clamps" test_f_clamps;
    case "disconnected saturates" test_disconnected_saturates;
    case "doubling radius" test_doubling_radius;
    case "inequality (3) holds on equilibria" test_inequality_3_on_equilibria;
    case "inequality (3) vacuous at small diameter" test_inequality_3_small_diameter_vacuous;
    case "inequality (3) fails on long paths" test_inequality_3_fails_on_long_path;
    case "report shape" test_report_shape;
    prop_min_ball_monotone;
    prop_ball_bounds;
  ]
