open Helpers
open Bbng_core
open Bbng_constructions

let budgets l = Budget.of_list l

let test_case_dispatch () =
  let open Existence in
  check_true "case1 no zeros" (case_of (budgets [ 1; 1; 1 ]) = Case1);
  check_true "case1 big hub" (case_of (budgets [ 0; 0; 2; 3 ]) = Case1);
  check_true "case2" (case_of figure1_budgets = Case2);
  check_true "case3" (case_of (budgets [ 0; 0; 0; 1; 1 ]) = Case3);
  check_true "n=1" (case_of (budgets [ 0 ]) = Case1)

let test_case2_t_figure1 () =
  (* the paper's worked example: n=22, z=16, t=19 *)
  check_int "t = 19" 19 (Existence.case2_t Existence.figure1_budgets)

let test_case3_m () =
  (* (0,0,0,1,1): n=5; suffix sums from m: need b_m+...+b_n >= n-m
     (1-based).  m=4: 1+1 >= 1 yes; m=3: 0+1+1 >= 2 yes; m=2: 2 >= 3 no. *)
  check_int "m" 3 (Existence.case3_m (budgets [ 0; 0; 0; 1; 1 ]))

let test_zeros () =
  check_int "sixteen" 16 (Existence.zeros Existence.figure1_budgets);
  check_int "none" 0 (Existence.zeros (budgets [ 1; 1 ]))

let test_figure1_exact_arcs () =
  (* the generic construction reproduces the hand-transcribed figure *)
  let built = Existence.construct_sorted Existence.figure1_budgets in
  check_true "construct = figure" (Strategy.equal built (Existence.figure1_profile ()))

let test_figure1_properties () =
  let p = Existence.figure1_profile () in
  let g = Strategy.underlying p in
  check_true "connected" (Bbng_graph.Components.is_connected g);
  check_true "diameter <= 4" (Cost.social_cost g <= 4);
  check_true "no brace" (Bbng_graph.Digraph.braces (Strategy.realize p) = []);
  assert_equilibrium "figure1 MAX" Cost.Max p;
  assert_equilibrium "figure1 SUM" Cost.Sum p

let test_case1_equilibrium () =
  List.iter
    (fun l ->
      let p = Existence.construct (budgets l) in
      assert_equilibrium "case1 MAX" Cost.Max p;
      assert_equilibrium "case1 SUM" Cost.Sum p)
    [ [ 1; 1; 1 ]; [ 0; 0; 2; 3 ]; [ 2; 2; 2; 2 ]; [ 0; 1; 2; 3 ]; [ 1; 1; 1; 1; 1 ] ]

let test_case2_equilibrium_small () =
  (* a small handmade case 2: z=3, b = (0,0,0,1,2,2): sigma=5=n-1 and
     b_n=2 < z=3 *)
  let b = budgets [ 0; 0; 0; 1; 2; 2 ] in
  check_true "is case2" (Existence.case_of b = Existence.Case2);
  let p = Existence.construct b in
  assert_equilibrium "case2 MAX" Cost.Max p;
  assert_equilibrium "case2 SUM" Cost.Sum p;
  check_true "diameter <= 4" (Cost.social_cost (Strategy.underlying p) <= 4)

let test_case3_structure () =
  let b = budgets [ 0; 0; 0; 1; 1 ] in
  let p = Existence.construct b in
  (* vertices below m-1 (0-based: 0,1) are isolated *)
  let g = Strategy.underlying p in
  check_int "isolated prefix" 0 (Bbng_graph.Undirected.degree g 0);
  check_int "isolated prefix 2" 0 (Bbng_graph.Undirected.degree g 1);
  (* the suffix {2,3,4} is connected among itself *)
  check_true "suffix connected"
    (Bbng_graph.Components.same_component g 2 3
    && Bbng_graph.Components.same_component g 3 4);
  assert_equilibrium "case3 MAX" Cost.Max p;
  assert_equilibrium "case3 SUM" Cost.Sum p

let test_construct_unsorted () =
  (* permutation invariance: unsorted budgets still give an equilibrium
     with each player owning exactly its budget *)
  let b = budgets [ 2; 0; 1; 0; 3 ] in
  let p = Existence.construct b in
  for i = 0 to 4 do
    check_int
      (Printf.sprintf "budget of %d respected" i)
      (Budget.get b i)
      (Array.length (Strategy.strategy p i))
  done;
  assert_equilibrium "unsorted MAX" Cost.Max p;
  assert_equilibrium "unsorted SUM" Cost.Sum p

let test_construct_sorted_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Existence: budgets must be nondecreasing") (fun () ->
      ignore (Existence.construct_sorted (budgets [ 2; 1; 1 ])))

let test_n1 () =
  let p = Existence.construct (budgets [ 0 ]) in
  check_int "n" 1 (Strategy.n p)

let test_n2 () =
  List.iter
    (fun l ->
      let p = Existence.construct (budgets l) in
      assert_equilibrium "n=2 MAX" Cost.Max p;
      assert_equilibrium "n=2 SUM" Cost.Sum p)
    [ [ 0; 1 ]; [ 1; 1 ]; [ 0; 0 ] ]

let test_price_of_stability_evidence () =
  (* Theorem 2.3's second claim: the constructed equilibria have O(1)
     diameter, so PoS = O(1).  Check diameter <= 4 across a sweep. *)
  let st = rng 77 in
  for _ = 1 to 30 do
    let n = 2 + Random.State.int st 10 in
    let total = (n - 1) + Random.State.int st (n * (n - 1) - n + 2) in
    let b = Budget.random_partition st ~n ~total in
    let p = Existence.construct b in
    check_true
      (Printf.sprintf "diameter <= 4 (n=%d total=%d)" n total)
      (Cost.social_cost (Strategy.underlying p) <= 4)
  done

let prop_construct_is_equilibrium =
  qcheck ~count:60 "construct certifies in both versions (random budgets)"
    (random_budget_gen ~n_min:1 ~n_max:8) (fun input ->
      let b = random_budget_of input in
      let p = Existence.construct b in
      List.for_all
        (fun v -> Equilibrium.is_nash (Game.make v b) p)
        Cost.all_versions)

let prop_construct_deterministic =
  qcheck ~count:40 "construct is deterministic"
    (random_budget_gen ~n_min:1 ~n_max:10) (fun input ->
      let b = random_budget_of input in
      Strategy.equal (Existence.construct b) (Existence.construct b))

let prop_case2_zeros_covered_once =
  (* Case 2 structural invariant: after phase 2 every zero-budget vertex
     has exactly one incoming arc; phases 3-4 may add more only from B.
     Weaker checkable form on the final profile: every zero-budget
     vertex has in-degree >= 1 whenever the instance is connectable. *)
  qcheck ~count:40 "connectable: zero-budget vertices are covered"
    (random_budget_gen ~n_min:2 ~n_max:10) (fun input ->
      let b = random_budget_of input in
      (not (Budget.connectable b))
      ||
      let g = Strategy.realize (Existence.construct b) in
      let ok = ref true in
      for v = 0 to Budget.n b - 1 do
        if Budget.get b v = 0 && Bbng_graph.Digraph.in_degree g v = 0 then
          ok := false
      done;
      !ok)

let prop_connectable_gives_connected =
  qcheck "connectable budgets give connected equilibria"
    (random_budget_gen ~n_min:2 ~n_max:10) (fun input ->
      let b = random_budget_of input in
      let p = Existence.construct b in
      (not (Budget.connectable b))
      || Bbng_graph.Components.is_connected (Strategy.underlying p))

let suite =
  [
    case "case dispatch" test_case_dispatch;
    case "case2 t on figure 1" test_case2_t_figure1;
    case "case3 m" test_case3_m;
    case "zeros" test_zeros;
    case "figure 1 arcs reproduced exactly" test_figure1_exact_arcs;
    slow_case "figure 1 is an equilibrium" test_figure1_properties;
    case "case 1 equilibria" test_case1_equilibrium;
    case "case 2 small equilibrium" test_case2_equilibrium_small;
    case "case 3 structure" test_case3_structure;
    case "unsorted budgets" test_construct_unsorted;
    case "construct_sorted rejects unsorted" test_construct_sorted_rejects_unsorted;
    case "n = 1" test_n1;
    case "n = 2" test_n2;
    case "price of stability O(1) evidence" test_price_of_stability_evidence;
    prop_construct_is_equilibrium;
    prop_construct_deterministic;
    prop_case2_zeros_covered_once;
    prop_connectable_gives_connected;
  ]
