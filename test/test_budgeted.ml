(* Cooperative cancellation: token semantics, degraded certification,
   interrupted dynamics (with resume), and budgeted solvers. *)

open Bbng_core
open Helpers
module Budgeted = Bbng_obs.Budgeted
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule
module Replay = Bbng_dynamics.Replay
module K_center = Bbng_solvers.K_center
module K_median = Bbng_solvers.K_median

(* --- token unit semantics --- *)

let test_unlimited_never_expires () =
  let t = Budgeted.unlimited in
  check_true "is_unlimited" (Budgeted.is_unlimited t);
  check_false "not expired" (Budgeted.expired t);
  Budgeted.checkpoint t;
  Budgeted.spend t 1_000_000;
  Budgeted.cancel t;
  check_false "immune to cancel and spend" (Budgeted.expired t)

let test_work_limit_trips () =
  let t = Budgeted.create ~work_limit:10 () in
  check_false "fresh token alive" (Budgeted.expired t);
  Budgeted.spend t 5;
  Budgeted.checkpoint t;
  (match Budgeted.checkpoint ~cost:20 t with
  | () -> Alcotest.fail "checkpoint over the limit must raise"
  | exception Budgeted.Expired -> ());
  check_true "latched" (Budgeted.expired t);
  check_true "cause recorded"
    (Budgeted.why t = Some Budgeted.Work_limit);
  check_int "work accounted" 25 (Budgeted.work_done t)

let test_deadline_trips () =
  let t = Budgeted.create ~deadline_ms:0.5 () in
  Unix.sleepf 0.01;
  check_true "past deadline" (Budgeted.expired t);
  check_true "cause recorded" (Budgeted.why t = Some Budgeted.Deadline)

let test_cancel_trips () =
  let t = Budgeted.create () in
  check_false "no limits, alive" (Budgeted.expired t);
  Budgeted.cancel t;
  Budgeted.cancel t;
  check_true "cancelled" (Budgeted.expired t);
  check_true "cause recorded" (Budgeted.why t = Some Budgeted.Cancelled);
  match Budgeted.checkpoint t with
  | () -> Alcotest.fail "checkpoint on a cancelled token must raise"
  | exception Budgeted.Expired -> ()

let test_guard () =
  check_int_option "guard passes" (Some 42)
    (Budgeted.guard Budgeted.unlimited (fun () -> 42));
  let dead = Budgeted.create ~work_limit:0 () in
  Budgeted.spend dead 1;
  check_int_option "guard on expired" None (Budgeted.guard dead (fun () -> 1));
  let t = Budgeted.create () in
  check_int_option "guard swallows Expired" None
    (Budgeted.guard t (fun () -> raise Budgeted.Expired))

let test_outcome_helpers () =
  Alcotest.(check string) "complete" "complete"
    (Budgeted.outcome_name (Budgeted.Complete 1));
  Alcotest.(check string) "degraded" "degraded"
    (Budgeted.outcome_name (Budgeted.Degraded 1));
  Alcotest.(check string) "exhausted" "exhausted"
    (Budgeted.outcome_name (Budgeted.Exhausted : int Budgeted.outcome));
  check_int_option "value of degraded" (Some 7)
    (Budgeted.outcome_value (Budgeted.Degraded 7));
  check_int_option "value of exhausted" None
    (Budgeted.outcome_value (Budgeted.Exhausted : int Budgeted.outcome))

(* --- degraded certification --- *)

let sun8 = Bbng_constructions.Unit_budget.concentrated_sun ~n:8
let tripod2 = Bbng_constructions.Tripod.profile ~k:2

let cert_of version p =
  Equilibrium.certify_cert (game version (Strategy.budgets p)) p

(* a fixture where certification genuinely needs the exponential scan
   (cheap tiers must not classify every player, or a budget would have
   nothing to interrupt) *)
let scan_heavy_fixture () =
  let needs_scan (version, p) =
    let cert = cert_of version p in
    List.exists
      (fun (_, a) -> a.Best_response.tier = Best_response.Exhaustive)
      cert.Equilibrium.cert_evidence
  in
  match
    List.find_opt needs_scan
      [ (Cost.Max, tripod2); (Cost.Max, sun8); (Cost.Sum, sun8) ]
  with
  | Some fx -> fx
  | None -> Alcotest.fail "no fixture exercises the exhaustive tier"

let test_tight_budget_degrades_and_verifies () =
  let version, p = scan_heavy_fixture () in
  let g = game version (Strategy.budgets p) in
  let budget = Budgeted.create ~work_limit:0 () in
  let cert = Equilibrium.certify_cert ~budget g p in
  (match Equilibrium.certificate_verdict cert with
  | Equilibrium.Degraded unresolved ->
      check_true "some player unresolved" (unresolved <> [])
  | v ->
      Alcotest.failf "expected a degraded verdict, got %a"
        Equilibrium.pp_verdict v);
  check_true "token tripped" (Budgeted.expired budget);
  (* evidence still covers every player: the cheap tiers always run *)
  check_int "evidence per player" (Strategy.n p)
    (List.length cert.Equilibrium.cert_evidence);
  (* the weaker claim must pass the independent verifier *)
  (match Equilibrium.verify_certificate cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "degraded certificate rejected: %s" e);
  (* and survive the artifact round trip with its provenance intact *)
  match
    Equilibrium.certificate_of_artifact
      (Equilibrium.certificate_to_artifact cert)
  with
  | Error e -> Alcotest.failf "artifact round trip failed: %s" e
  | Ok cert' -> (
      match Equilibrium.certificate_verdict cert' with
      | Equilibrium.Degraded _ -> ()
      | v ->
          Alcotest.failf "round trip lost the degraded verdict: %a"
            Equilibrium.pp_verdict v)

let prop_budgeted_certificates_always_verify =
  qcheck ~count:40 "budgeted certificates always verify"
    (random_budget_gen ~n_min:3 ~n_max:6)
    (fun ((_, _, seed) as input) ->
      let p = random_profile_of input in
      let g = game Cost.Sum (Strategy.budgets p) in
      let budget = Budgeted.create ~work_limit:(seed mod 300) () in
      let cert = Equilibrium.certify_cert ~budget g p in
      (match Equilibrium.certificate_verdict cert with
      | Equilibrium.Degraded _ ->
          if not (Budgeted.expired budget) then
            QCheck.Test.fail_report "degraded verdict without expiry"
      | _ -> ());
      match Equilibrium.verify_certificate cert with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* --- interrupted dynamics and resume --- *)

(* record a run through the JSONL sink, as --report does *)
let record ?budget game ~schedule ~rule start =
  let path = Filename.temp_file "bbng_budgeted" ".jsonl" in
  let oc = open_out path in
  let outcome =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Bbng_obs.Sink.scoped (Bbng_obs.Sink.Jsonl oc) (fun () ->
            Dynamics.run ?budget game ~schedule ~rule start))
  in
  let ic = open_in path in
  let events, _skipped =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove path)
      (fun () -> Bbng_obs.Trace_export.read_events ic)
  in
  (outcome, events)

let one_run events =
  match Bbng_obs.Replay.runs_of_events events with
  | [ r ] -> r
  | runs -> Alcotest.failf "expected 1 recorded run, got %d" (List.length runs)

let test_interrupted_run_replays_and_resumes () =
  let b = Budget.unit_budgets 8 in
  let g = game Cost.Sum b in
  let start = Strategy.random (rng 4) b in
  (* measure the run's total work, then grant half of it *)
  let meter = Budgeted.create ~work_limit:max_int () in
  (match
     Dynamics.run ~budget:meter g ~schedule:Schedule.Round_robin
       ~rule:Dynamics.Exact_best start
   with
  | Dynamics.Converged _ -> ()
  | o -> Alcotest.failf "fixture should converge, got %s" (Dynamics.outcome_name o));
  let total_work = Budgeted.work_done meter in
  check_true "fixture does real work" (total_work > 0);
  let budget = Budgeted.create ~work_limit:(total_work / 2) () in
  let outcome, events =
    record ~budget g ~schedule:Schedule.Round_robin ~rule:Dynamics.Exact_best
      start
  in
  (match outcome with
  | Dynamics.Interrupted _ -> ()
  | o ->
      Alcotest.failf "half the work must interrupt, got %s"
        (Dynamics.outcome_name o));
  let run = one_run events in
  (* the recording is a valid prefix: it replays... *)
  (match Replay.check_run run with
  | Ok _ -> ()
  | Error d ->
      Alcotest.failf "interrupted recording diverged at %d: %s" d.Replay.at_step
        d.Replay.reason);
  (* ...and resumes from exactly the last consistent state *)
  match Replay.resume_state run with
  | Error d -> Alcotest.failf "resume refused: %s" d.Replay.reason
  | Ok (g', profile, steps) ->
      check_int "resume step counter" (Dynamics.steps outcome) steps;
      check_true "resume profile is the last consistent one"
        (Strategy.equal (Dynamics.final_profile outcome) profile);
      (* finishing the resumed run reaches a Nash equilibrium *)
      (match
         Dynamics.run g' ~schedule:Schedule.Round_robin
           ~rule:Dynamics.Exact_best profile
       with
      | Dynamics.Converged { profile = final; _ } ->
          check_true "resumed run reaches Nash" (Equilibrium.is_nash g' final)
      | o -> Alcotest.failf "resumed run: %s" (Dynamics.outcome_name o))

(* --- budgeted solvers --- *)

let test_k_center_budgeted () =
  let g = cycle6 in
  let exact = K_center.exact g ~k:2 in
  (match K_center.exact_within g ~k:2 with
  | Budgeted.Complete s -> check_int "unlimited = exact" exact.K_center.radius s.K_center.radius
  | o -> Alcotest.failf "unlimited must complete, got %s" (Budgeted.outcome_name o));
  let budget = Budgeted.create ~work_limit:0 () in
  match K_center.exact_within ~budget g ~k:2 with
  | Budgeted.Degraded s ->
      check_true "degraded radius is an upper bound"
        (s.K_center.radius >= exact.K_center.radius)
  | o ->
      Alcotest.failf "zero work must degrade after one candidate, got %s"
        (Budgeted.outcome_name o)

let test_k_median_budgeted () =
  let g = two_triangles in
  let exact = K_median.exact g ~k:2 in
  (match K_median.exact_within g ~k:2 with
  | Budgeted.Complete s -> check_int "unlimited = exact" exact.K_median.cost s.K_median.cost
  | o -> Alcotest.failf "unlimited must complete, got %s" (Budgeted.outcome_name o));
  let budget = Budgeted.create ~work_limit:0 () in
  match K_median.exact_within ~budget g ~k:2 with
  | Budgeted.Degraded s ->
      check_true "degraded cost is an upper bound"
        (s.K_median.cost >= exact.K_median.cost)
  | o ->
      Alcotest.failf "zero work must degrade after one candidate, got %s"
        (Budgeted.outcome_name o)

let suite =
  [
    case "unlimited never expires" test_unlimited_never_expires;
    case "work limit trips" test_work_limit_trips;
    case "deadline trips" test_deadline_trips;
    case "cancel trips" test_cancel_trips;
    case "guard" test_guard;
    case "outcome helpers" test_outcome_helpers;
    case "tight budget degrades and verifies" test_tight_budget_degrades_and_verifies;
    prop_budgeted_certificates_always_verify;
    slow_case "interrupted run replays and resumes" test_interrupted_run_replays_and_resumes;
    case "k-center budgeted" test_k_center_budgeted;
    case "k-median budgeted" test_k_median_budgeted;
  ]
