open Helpers
module Distances = Bbng_graph.Distances
module Undirected = Bbng_graph.Undirected
module Generators = Bbng_graph.Generators

let test_eccentricity () =
  check_int_option "path end" (Some 4) (Distances.eccentricity path5 0);
  check_int_option "path middle" (Some 2) (Distances.eccentricity path5 2);
  check_int_option "disconnected" None (Distances.eccentricity two_triangles 0)

let test_diameter () =
  check_int_option "path" (Some 4) (Distances.diameter path5);
  check_int_option "cycle" (Some 3) (Distances.diameter cycle6);
  check_int_option "star" (Some 2) (Distances.diameter star7);
  check_int_option "complete" (Some 1) (Distances.diameter k5);
  check_int_option "disconnected" None (Distances.diameter two_triangles);
  check_int_option "singleton" (Some 0)
    (Distances.diameter (Undirected.of_edges ~n:1 []))

let test_radius_center () =
  check_int_option "path radius" (Some 2) (Distances.radius path5);
  check_int_list "path center" [ 2 ] (Distances.center path5);
  check_int_list "star center" [ 0 ] (Distances.center star7);
  check_int_list "no center when disconnected" [] (Distances.center two_triangles)

let test_distance_sum () =
  let r = Distances.distance_sum path5 0 in
  check_int "sum from end" 10 r.Distances.sum;
  check_int "all reachable" 0 r.Distances.unreachable;
  let r = Distances.distance_sum two_triangles 0 in
  check_int "sum in component" 2 r.Distances.sum;
  check_int "unreachable count" 3 r.Distances.unreachable

let test_wiener () =
  check_int_option "path5 wiener" (Some 20) (Distances.wiener_index path5);
  check_int_option "K5 wiener" (Some 10) (Distances.wiener_index k5);
  check_int_option "disconnected" None (Distances.wiener_index two_triangles)

let test_all_pairs () =
  let m = Distances.all_pairs path5 in
  check_int "corner" 4 m.(0).(4);
  check_int "diag" 0 m.(3).(3);
  check_int_option "diameter via matrix" (Some 4) (Distances.diameter_of_matrix m)

let test_farthest () =
  let v, d = Distances.farthest path5 0 in
  check_int "farthest vertex" 4 v;
  check_int "farthest distance" 4 d;
  let v, d = Distances.farthest two_triangles 3 in
  check_true "stays in component" (v = 4 || v = 5);
  check_int "distance" 1 d

let test_grid_diameter () =
  let g = Generators.grid_graph ~rows:3 ~cols:4 in
  check_int_option "grid diameter" (Some 5) (Distances.diameter g)

let prop_diameter_vs_eccentricities =
  qcheck "diameter = max eccentricity" (gnp_gen ~n_min:2 ~n_max:12)
    (fun input ->
      let g = random_connected_of input in
      let n = Undirected.n g in
      let max_ecc = ref 0 in
      for v = 0 to n - 1 do
        match Distances.eccentricity g v with
        | Some e -> max_ecc := max !max_ecc e
        | None -> ()
      done;
      Distances.diameter g = Some !max_ecc)

let prop_double_bfs_diameter_on_trees =
  qcheck "double BFS finds tree diameter" (gnp_gen ~n_min:2 ~n_max:30)
    (fun (n, seed) ->
      let g = Generators.random_tree (rng seed) n in
      let a, _ = Distances.farthest g 0 in
      let _, d = Distances.farthest g a in
      Distances.diameter g = Some d)

let prop_wiener_symmetry =
  qcheck "wiener = half of sum of distance sums" (gnp_gen ~n_min:2 ~n_max:12)
    (fun input ->
      let g = random_connected_of input in
      let n = Undirected.n g in
      let total = ref 0 in
      for v = 0 to n - 1 do
        total := !total + (Distances.distance_sum g v).Distances.sum
      done;
      Distances.wiener_index g = Some (!total / 2))

(* regression: the aggregates used to take no ?budget at all, cutting
   census-scale diameter/wiener sweeps out of cooperative cancellation.
   Same idiom as the Bfs walkers: a work_limit:0 token lets the first
   sweep finish (tripping it) and stops the next at its checkpoint. *)
let test_budget_threads_through_aggregates () =
  let module Budgeted = Bbng_obs.Budgeted in
  let first_runs_second_trips name f =
    let budget = Budgeted.create ~work_limit:0 () in
    f budget;
    Alcotest.check_raises (name ^ ": second call trips") Budgeted.Expired
      (fun () -> f budget)
  in
  (* single-sweep entry points: token survives exactly one call *)
  first_runs_second_trips "eccentricity" (fun budget ->
      ignore (Distances.eccentricity ~budget path5 0));
  first_runs_second_trips "distance_sum" (fun budget ->
      ignore (Distances.distance_sum ~budget path5 0));
  first_runs_second_trips "farthest" (fun budget ->
      ignore (Distances.farthest ~budget path5 0));
  (* multi-sweep aggregates: the first sweep's spend trips the token,
     so the second sweep inside the same call stops at its checkpoint *)
  let trips_mid_call name f =
    let budget = Budgeted.create ~work_limit:0 () in
    Alcotest.check_raises (name ^ ": trips between sweeps") Budgeted.Expired
      (fun () -> f budget)
  in
  trips_mid_call "diameter" (fun budget ->
      ignore (Distances.diameter ~budget path5));
  trips_mid_call "radius" (fun budget -> ignore (Distances.radius ~budget path5));
  trips_mid_call "center" (fun budget -> ignore (Distances.center ~budget path5));
  trips_mid_call "wiener_index" (fun budget ->
      ignore (Distances.wiener_index ~budget path5));
  trips_mid_call "all_pairs" (fun budget ->
      ignore (Distances.all_pairs ~budget path5));
  trips_mid_call "fold_eccentricities" (fun budget ->
      ignore (Distances.fold_eccentricities ~budget path5 (fun a _ e -> max a e) 0))

let suite =
  [
    case "eccentricity" test_eccentricity;
    case "budget threads through aggregates" test_budget_threads_through_aggregates;
    case "diameter" test_diameter;
    case "radius and center" test_radius_center;
    case "distance_sum" test_distance_sum;
    case "wiener index" test_wiener;
    case "all_pairs" test_all_pairs;
    case "farthest" test_farthest;
    case "grid diameter" test_grid_diameter;
    prop_diameter_vs_eccentricities;
    prop_double_bfs_diameter_on_trees;
    prop_wiener_symmetry;
  ]
