(* Shared plumbing for the test suites. *)

open Bbng_core
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true name b = check_bool name true b
let check_false name b = check_bool name false b
let check_int_list = Alcotest.(check (list int))
let check_int_array name a b = Alcotest.(check (array int)) name a b
let check_int_option = Alcotest.(check (option int))

let rng seed = Random.State.make [| seed |]

(* Small-graph fixtures used across suites. *)
let path5 = Bbng_graph.Generators.path_graph 5
let cycle6 = Bbng_graph.Generators.cycle_graph 6
let star7 = Bbng_graph.Generators.star_graph 7
let k5 = Bbng_graph.Generators.complete_graph 5
let two_triangles =
  Undirected.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]

let game version budgets = Game.make version budgets

let certify version profile =
  Equilibrium.certify (game version (Strategy.budgets profile)) profile

let assert_equilibrium name version profile =
  match certify version profile with
  | Equilibrium.Equilibrium -> ()
  | v ->
      Alcotest.failf "%s: expected equilibrium, got %a" name
        Equilibrium.pp_verdict v

let assert_not_equilibrium name version profile =
  match certify version profile with
  | Equilibrium.Refuted _ -> ()
  | v ->
      Alcotest.failf "%s: expected a refutation, got %a" name
        Equilibrium.pp_verdict v

let diameter_exn g =
  match Bbng_graph.Distances.diameter g with
  | Some d -> d
  | None -> Alcotest.fail "diameter of a disconnected graph"

(* QCheck integration: register properties as alcotest cases. *)
let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)

(* Generators for random graph/game inputs. *)
let gnp_gen ~n_min ~n_max =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(
      pair (int_range n_min n_max) (int_range 0 10_000))

let random_gnp_of (n, seed) =
  Bbng_graph.Generators.random_gnp (rng seed) ~n ~p:0.4

let random_connected_of (n, seed) =
  Bbng_graph.Generators.random_connected_gnp (rng seed) ~n ~p:0.3

let random_budget_gen ~n_min ~n_max =
  QCheck.make
    ~print:(fun (n, total, seed) -> Printf.sprintf "n=%d total=%d seed=%d" n total seed)
    QCheck.Gen.(
      int_range n_min n_max >>= fun n ->
      int_range 0 (n * (n - 1)) >>= fun total ->
      int_range 0 10_000 >>= fun seed -> return (n, total, seed))

let random_budget_of (n, total, seed) = Budget.random_partition (rng seed) ~n ~total

let random_profile_of (n, total, seed) =
  let st = rng seed in
  let b = Budget.random_partition st ~n ~total in
  Strategy.random st b
