(* The flight recorder round trip: a recorded dynamics run replays to
   the identical outcome, and any mutation of the recording is caught
   as a divergence at the right step. *)

open Bbng_core
open Helpers
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule
module Replay = Bbng_dynamics.Replay
module Json = Bbng_obs.Json

(* Record a run through the JSONL sink into a temp file, then parse the
   events back — the same pipeline as `--report` + `bbng_cli replay`. *)
let record ?meta ?(max_steps = 2_000) game ~schedule ~rule start =
  let path = Filename.temp_file "bbng_replay" ".jsonl" in
  let oc = open_out path in
  let outcome =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Bbng_obs.Sink.scoped (Bbng_obs.Sink.Jsonl oc) (fun () ->
            Dynamics.run ?meta ~max_steps game ~schedule ~rule start))
  in
  let ic = open_in path in
  let events, _skipped =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove path)
      (fun () -> Bbng_obs.Trace_export.read_events ic)
  in
  (outcome, events)

let one_run events =
  match Bbng_obs.Replay.runs_of_events events with
  | [ r ] -> r
  | runs -> Alcotest.failf "expected 1 recorded run, got %d" (List.length runs)

let expect_ok run =
  match Replay.check_run run with
  | Ok summary -> summary
  | Error d -> Alcotest.failf "diverged at step %d: %s" d.Replay.at_step d.Replay.reason

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_converged_round_trip () =
  let b = Budget.unit_budgets 8 in
  let g = game Cost.Max b in
  let start = Strategy.random (rng 1) b in
  let outcome, events = record g ~schedule:Schedule.Round_robin ~rule:Dynamics.Exact_best start in
  check_true "run converged"
    (match outcome with Dynamics.Converged _ -> true | _ -> false);
  let run = one_run events in
  check_int "all steps recorded" (Dynamics.steps outcome) (List.length run.Bbng_obs.Replay.steps);
  let summary = expect_ok run in
  check_true "summary names the outcome" (contains ~needle:"converged" summary);
  (* the recorded final profile IS the live one (check_run verifies the
     replayed profile against this recorded string) *)
  match run.Bbng_obs.Replay.run_outcome with
  | Some o ->
      Alcotest.(check (option string))
        "final profile recorded"
        (Some (Strategy.to_string (Dynamics.final_profile outcome)))
        o.Bbng_obs.Replay.final_profile
  | None -> Alcotest.fail "outcome not recorded"

let test_meta_and_header_survive () =
  let b = Budget.uniform ~n:6 ~budget:2 in
  let g = game Cost.Sum b in
  let start = Strategy.random (rng 3) b in
  let _, events =
    record
      ~meta:[ ("seed", Json.Int 42) ]
      g ~schedule:Schedule.Round_robin ~rule:Dynamics.First_swap start
  in
  let run = one_run events in
  Alcotest.(check (option string)) "version" (Some "SUM") run.Bbng_obs.Replay.version;
  Alcotest.(check (option string))
    "rule" (Some "first-swap") run.Bbng_obs.Replay.rule;
  Alcotest.(check (option string))
    "schedule" (Some "round-robin") run.Bbng_obs.Replay.schedule;
  check_true "budgets recorded"
    (run.Bbng_obs.Replay.budgets = Some (Budget.to_array b));
  check_true "meta carries the seed"
    (List.assoc_opt "seed" run.Bbng_obs.Replay.meta = Some (Json.Int 42))

let mutate_step i f (run : Bbng_obs.Replay.run) =
  {
    run with
    Bbng_obs.Replay.steps =
      List.map
        (fun (s : Bbng_obs.Replay.step) ->
          if s.Bbng_obs.Replay.index = i then f s else s)
        run.Bbng_obs.Replay.steps;
  }

let a_recorded_run () =
  let b = Budget.uniform ~n:6 ~budget:2 in
  let g = game Cost.Sum b in
  let start = Strategy.random (rng 5) b in
  let outcome, events =
    record g ~schedule:Schedule.Round_robin ~rule:Dynamics.First_swap start
  in
  check_true "run took steps" (Dynamics.steps outcome > 0);
  one_run events

(* Cycle verification.  No genuine best-response cycle is producible at
   test scale: for every instance small enough to enumerate, the full
   improvement graph (a superset of every rule's moves) is acyclic —
   see Improvement_graph / the fip experiment; the paper leaves
   convergence open and our probes match "it converges".  The
   replayer's cycle branch is therefore pinned down through its
   rejection paths: a recording that CLAIMS a cycle must be refuted by
   the independently rebuilt occurrence history. *)

let falsify_outcome f (run : Bbng_obs.Replay.run) =
  {
    run with
    Bbng_obs.Replay.run_outcome = Option.map f run.Bbng_obs.Replay.run_outcome;
  }

let test_false_cycle_claim_rejected () =
  (* a converged run re-labelled as a cycle: the final profile never
     recurred, so the claim cannot survive replay *)
  let run = a_recorded_run () in
  let bad =
    falsify_outcome
      (fun o ->
        { o with Bbng_obs.Replay.outcome = "cycle"; Bbng_obs.Replay.period = Some 2 })
      run
  in
  match Replay.check_run bad with
  | Error d ->
      check_true "reason names the missing recurrence"
        (contains ~needle:"never occurred" d.Replay.reason)
  | Ok s -> Alcotest.failf "false cycle claim accepted: %s" s

let test_cycle_without_period_rejected () =
  let run = a_recorded_run () in
  let bad =
    falsify_outcome
      (fun o ->
        { o with Bbng_obs.Replay.outcome = "cycle"; Bbng_obs.Replay.period = None })
      run
  in
  match Replay.check_run bad with
  | Error d -> check_true "period demanded" (contains ~needle:"period" d.Replay.reason)
  | Ok s -> Alcotest.failf "cycle without period accepted: %s" s

let test_unknown_outcome_rejected () =
  let run = a_recorded_run () in
  let bad =
    falsify_outcome
      (fun o -> { o with Bbng_obs.Replay.outcome = "quantum-flux" })
      run
  in
  match Replay.check_run bad with
  | Error d -> check_true "names the outcome" (contains ~needle:"quantum-flux" d.Replay.reason)
  | Ok s -> Alcotest.failf "unknown outcome accepted: %s" s

let test_false_convergence_rejected () =
  (* chop the tail off a converged recording and keep the (now
     premature) converged outcome at the truncated step count: the
     stability re-check must notice a player still has a move *)
  let run = a_recorded_run () in
  let total = List.length run.Bbng_obs.Replay.steps in
  check_true "need at least two steps" (total >= 2);
  let keep = total - 1 in
  let bad =
    {
      run with
      Bbng_obs.Replay.steps =
        List.filter
          (fun (s : Bbng_obs.Replay.step) -> s.Bbng_obs.Replay.index <= keep)
          run.Bbng_obs.Replay.steps;
      Bbng_obs.Replay.run_outcome =
        Option.map
          (fun o ->
            {
              o with
              Bbng_obs.Replay.total_steps = keep;
              Bbng_obs.Replay.final_profile = None;
              Bbng_obs.Replay.final_social_cost = None;
            })
          run.Bbng_obs.Replay.run_outcome;
    }
  in
  match Replay.check_run bad with
  | Error d ->
      check_true "stability re-check fires"
        (contains ~needle:"improving move" d.Replay.reason)
  | Ok s -> Alcotest.failf "premature convergence accepted: %s" s

let test_mutated_cost_diverges () =
  let run = a_recorded_run () in
  let target = 1 + (List.length run.Bbng_obs.Replay.steps / 2) in
  let bad =
    mutate_step target
      (fun s -> { s with Bbng_obs.Replay.new_cost = s.Bbng_obs.Replay.new_cost - 1 })
      run
  in
  match Replay.check_run bad with
  | Error d -> check_int "divergence at the mutated step" target d.Replay.at_step
  | Ok s -> Alcotest.failf "mutated new_cost accepted: %s" s

let test_mutated_targets_diverge () =
  let run = a_recorded_run () in
  let bad =
    mutate_step 1
      (fun s -> { s with Bbng_obs.Replay.old_targets = Some [||] })
      run
  in
  match Replay.check_run bad with
  | Error d -> check_int "caught at step 1" 1 d.Replay.at_step
  | Ok s -> Alcotest.failf "mutated old_targets accepted: %s" s

let test_interrupted_prefix_replays () =
  let b = Budget.uniform ~n:6 ~budget:2 in
  let g = game Cost.Sum b in
  let start = Strategy.random (rng 7) b in
  let _, events =
    record g ~schedule:Schedule.Round_robin ~rule:Dynamics.First_swap start
  in
  (* simulate a killed process: the outcome event never made it *)
  let truncated =
    List.filter
      (fun e ->
        match Json.member "event" e with
        | Some (Json.Str "dynamics.outcome") -> false
        | _ -> true)
      events
  in
  let run = one_run truncated in
  check_true "no outcome" (run.Bbng_obs.Replay.run_outcome = None);
  let summary = expect_ok run in
  check_true "summary flags the truncation" (contains ~needle:"interrupted" summary)

let test_headerless_recording_fails_cleanly () =
  let b = Budget.uniform ~n:6 ~budget:2 in
  let g = game Cost.Sum b in
  let start = Strategy.random (rng 9) b in
  let _, events =
    record g ~schedule:Schedule.Round_robin ~rule:Dynamics.First_swap start
  in
  let no_header =
    List.filter
      (fun e ->
        match Json.member "event" e with
        | Some (Json.Str "dynamics.start") -> false
        | _ -> true)
      events
  in
  match Bbng_obs.Replay.runs_of_events no_header with
  | [ run ] -> (
      match Replay.check_run run with
      | Error d -> check_int "header-level failure" 0 d.Replay.at_step
      | Ok s -> Alcotest.failf "headerless recording replayed: %s" s)
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

let prop_random_runs_replay =
  qcheck ~count:25 "random recorded runs replay clean"
    (random_budget_gen ~n_min:2 ~n_max:5) (fun input ->
      let p = random_profile_of input in
      let g = game Cost.Sum (Strategy.budgets p) in
      let outcome, events =
        record ~max_steps:500 g ~schedule:Schedule.Round_robin
          ~rule:Dynamics.Exact_best p
      in
      ignore outcome;
      match Bbng_obs.Replay.runs_of_events events with
      | [ run ] -> (
          match Replay.check_run run with
          | Ok _ -> true
          | Error d ->
              QCheck.Test.fail_reportf "diverged at %d: %s" d.Replay.at_step
                d.Replay.reason)
      | runs ->
          QCheck.Test.fail_reportf "expected 1 run, got %d" (List.length runs))

let suite =
  [
    case "converged run round-trips" test_converged_round_trip;
    case "header and meta survive" test_meta_and_header_survive;
    case "false cycle claim rejected" test_false_cycle_claim_rejected;
    case "cycle without period rejected" test_cycle_without_period_rejected;
    case "unknown outcome rejected" test_unknown_outcome_rejected;
    case "premature convergence rejected" test_false_convergence_rejected;
    case "mutated cost diverges" test_mutated_cost_diverges;
    case "mutated targets diverge" test_mutated_targets_diverge;
    case "interrupted prefix replays" test_interrupted_prefix_replays;
    case "headerless recording fails cleanly" test_headerless_recording_fails_cleanly;
    prop_random_runs_replay;
  ]
