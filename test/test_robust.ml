(* Robust trend statistics (Bbng_analysis.Robust): the median/MAD gate
   behind `bench --trend`.  The properties that matter: a steady
   history passes, a 2x slowdown is flagged, improvements are typed as
   such, a MAD-0 history falls back to the percentage threshold
   instead of flagging every 1ns wiggle, and the absolute floor
   silences sub-noise benches. *)

open Helpers
module Robust = Bbng_analysis.Robust

let check_float = Alcotest.(check (float 1e-9))

let check_trend name expected got =
  let pp = function
    | Some Robust.Regressed -> "Regressed"
    | Some Robust.Improved -> "Improved"
    | Some Robust.Steady -> "Steady"
    | None -> "None"
  in
  Alcotest.(check string) name (pp expected) (pp got)

let test_median () =
  Alcotest.(check (option (float 1e-9))) "empty" None (Robust.median []);
  check_float "singleton" 42. (Option.get (Robust.median [ 42. ]));
  check_float "odd" 3. (Option.get (Robust.median [ 5.; 1.; 3. ]));
  check_float "even takes the middle pair's mean" 2.5
    (Option.get (Robust.median [ 4.; 1.; 2.; 3. ]));
  check_float "outlier-insensitive" 3.
    (Option.get (Robust.median [ 1e9; 3.; 2.; 3.; 4. ]))

let test_mad () =
  Alcotest.(check (option (float 1e-9))) "empty" None (Robust.mad []);
  check_float "identical values have zero spread" 0.
    (Option.get (Robust.mad [ 7.; 7.; 7. ]));
  (* median 3, |deviations| = [2;1;0;1;2] -> mad 1 *)
  check_float "symmetric spread" 1.
    (Option.get (Robust.mad [ 1.; 2.; 3.; 4.; 5. ]))

let steady_history = [ 1000.; 1010.; 990.; 1005.; 995. ]

let test_classify_steady () =
  check_trend "unchanged re-run passes" (Some Robust.Steady)
    (Robust.classify ~history:steady_history 1002.)

let test_classify_regression () =
  check_trend "2x slowdown flagged" (Some Robust.Regressed)
    (Robust.classify ~history:steady_history 2000.);
  check_trend "2x speedup typed as improvement" (Some Robust.Improved)
    (Robust.classify ~history:steady_history 500.)

let test_classify_empty_and_singleton () =
  check_trend "empty history cannot classify" None
    (Robust.classify ~history:[] 100.);
  check_trend "singleton history classifies against itself"
    (Some Robust.Steady)
    (Robust.classify ~history:[ 1000. ] 1001.)

let test_mad_zero_fallback () =
  (* identical history: MAD 0 would flag any wiggle without the
     percentage fallback *)
  let flat = [ 1000.; 1000.; 1000. ] in
  check_trend "small wiggle absorbed by the pct threshold"
    (Some Robust.Steady)
    (Robust.classify ~threshold_pct:25. ~history:flat 1100.);
  check_trend "past the pct threshold still flags" (Some Robust.Regressed)
    (Robust.classify ~threshold_pct:25. ~history:flat 1300.)

let test_floor_silences_noise () =
  let tiny = [ 10.; 12.; 9. ] in
  check_trend "sub-floor swing ignored" (Some Robust.Steady)
    (Robust.classify ~threshold_pct:25. ~floor:100. ~history:tiny 60.);
  check_trend "without the floor the same swing flags"
    (Some Robust.Regressed)
    (Robust.classify ~threshold_pct:25. ~history:tiny 60.)

let test_sigma_score () =
  Alcotest.(check (option (float 1e-6)))
    "zero-MAD history has no score" None
    (Robust.sigma_score ~history:[ 5.; 5. ] 6.);
  let z = Option.get (Robust.sigma_score ~history:steady_history 2000.) in
  check_true "a 2x slowdown scores far out" (z > 10.)

let suite =
  [
    case "median" test_median;
    case "mad" test_mad;
    case "steady history passes" test_classify_steady;
    case "2x slowdown flagged, speedup typed" test_classify_regression;
    case "empty and singleton histories" test_classify_empty_and_singleton;
    case "MAD-0 falls back to pct threshold" test_mad_zero_fallback;
    case "absolute floor silences noise benches" test_floor_silences_noise;
    case "sigma score" test_sigma_score;
  ]
