(* Fault injection: the spec grammar, probe-point firing, and the
   crash-safety contract of the artifact writers under injected faults.
   The [Kill] action SIGKILLs the process and is exercised out of
   process by bin/fault_smoke.sh, not here. *)

open Bbng_core
open Helpers
module Fault = Bbng_obs.Fault
module Atomic_io = Bbng_obs.Atomic_io
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule

(* every test arms specs; never leak them into later suites *)
let with_faults specs f =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Ok spec -> Fault.arm spec
      | Error e -> Alcotest.failf "bad spec %S: %s" s e)
    specs;
  Fun.protect ~finally:Fault.disarm f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- spec grammar --- *)

let test_parse_specs () =
  (match Fault.parse "span.certify@raise" with
  | Ok { Fault.point = "span.certify"; action = Fault.Raise; after = 1 } -> ()
  | Ok _ -> Alcotest.fail "wrong parse of span.certify@raise"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "sink.dynamics.step@kill@20" with
  | Ok { Fault.point = "sink.dynamics.step"; action = Fault.Kill; after = 20 } ->
      ()
  | Ok _ -> Alcotest.fail "wrong parse of kill@20"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "artifact.commit@exit:7" with
  | Ok { Fault.action = Fault.Exit_code 7; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong parse of exit:7"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "artifact.open@delay:2.5" with
  | Ok { Fault.action = Fault.Delay_ms ms; _ } ->
      check_true "delay parsed" (ms = 2.5)
  | Ok _ -> Alcotest.fail "wrong parse of delay"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [ ""; "point-only"; "p@boom"; "p@exit:"; "p@exit:x"; "p@kill@0"; "p@kill@x" ]

let test_hit_counting () =
  with_faults [ "probe.x@raise@3" ] (fun () ->
      check_true "armed" (Fault.armed ());
      Fault.hit "probe.x";
      Fault.hit "probe.y";
      (* a different point never consumes probe.x's countdown *)
      Fault.hit "probe.x";
      match Fault.hit "probe.x" with
      | () -> Alcotest.fail "third hit must fire"
      | exception Fault.Injected p ->
          Alcotest.(check string) "carries the point" "probe.x" p);
  check_false "disarmed in teardown" (Fault.armed ())

let test_delay_is_transparent () =
  with_faults [ "probe.slow@delay:1" ] (fun () ->
      (* fires, sleeps ~1ms, and continues — no exception *)
      Fault.hit "probe.slow";
      Fault.hit "probe.slow")

(* --- crash safety of whole-file artifacts --- *)

let test_mid_write_fault_preserves_previous_artifact () =
  let path = Filename.temp_file "bbng_fault" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Atomic_io.write_file path (fun oc -> output_string oc "{\"v\":1}\n");
      let before = read_file path in
      with_faults [ "artifact.mid_write@raise" ] (fun () ->
          match
            Atomic_io.write_file path (fun oc -> output_string oc "{\"v\":2}\n")
          with
          | () -> Alcotest.fail "mid-write fault must propagate"
          | exception Fault.Injected _ -> ());
      Alcotest.(check string) "previous artifact untouched" before
        (read_file path);
      check_false "no temp file leaked" (Sys.file_exists (Atomic_io.tmp_path path)))

let test_open_fault_never_touches_target () =
  let dir = Filename.temp_file "bbng_fault" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "fresh.json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      Sys.rmdir dir)
    (fun () ->
      with_faults [ "artifact.open@raise" ] (fun () ->
          match Atomic_io.write_file path (fun _ -> ()) with
          | () -> Alcotest.fail "open fault must propagate"
          | exception Fault.Injected _ -> ());
      check_false "target never created" (Sys.file_exists path))

(* --- crash safety of JSONL streams --- *)

(* a dynamics run recorded into a stream that a fault interrupts
   mid-flight must leave a replayable prefix in the .partial file *)
let test_faulted_stream_leaves_replayable_partial () =
  let path = Filename.temp_file "bbng_fault" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      Atomic_io.discard_stream path;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let b = Budget.unit_budgets 8 in
      let g = game Cost.Sum b in
      let start = Strategy.random (rng 4) b in
      with_faults [ "sink.dynamics.step@raise@3" ] (fun () ->
          let oc = Atomic_io.open_stream path in
          match
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                Bbng_obs.Sink.scoped (Bbng_obs.Sink.Jsonl oc) (fun () ->
                    Dynamics.run g ~schedule:Schedule.Round_robin
                      ~rule:Dynamics.Exact_best start))
          with
          | _ -> Alcotest.fail "step fault must abort the run"
          | exception Fault.Injected _ -> ());
      check_false "stream was never committed" (Sys.file_exists path);
      let partial = Atomic_io.partial_path path in
      check_true "partial prefix left behind" (Sys.file_exists partial);
      let ic = open_in partial in
      let events, skipped =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Bbng_obs.Trace_export.read_events ic)
      in
      check_int "every line parses" 0 skipped;
      match Bbng_obs.Replay.runs_of_events events with
      | [ run ] -> (
          check_true "prefix has applied steps"
            (run.Bbng_obs.Replay.steps <> []);
          match Bbng_dynamics.Replay.resume_state run with
          | Ok (_, _, steps) ->
              check_int "prefix resumes at its recorded length"
                (List.length run.Bbng_obs.Replay.steps)
                steps
          | Error d ->
              Alcotest.failf "torn prefix refused: %s"
                d.Bbng_dynamics.Replay.reason)
      | runs -> Alcotest.failf "expected 1 recorded run, got %d" (List.length runs))

(* --- the fault matrix ---
   at every raise-capable probe point touched by a certification +
   artifact write, an injected fault must leave either the untouched
   previous artifact or no artifact at all — never a torn file *)
let test_fault_matrix_over_probe_points () =
  let p = Bbng_constructions.Tripod.profile ~k:2 in
  let g = game Cost.Max (Strategy.budgets p) in
  let cert = Equilibrium.certify_cert g p in
  List.iter
    (fun point ->
      let path = Filename.temp_file "bbng_fault" ".json" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          Equilibrium.write_certificate path cert;
          let before = read_file path in
          with_faults
            [ Printf.sprintf "%s@raise" point ]
            (fun () ->
              match Equilibrium.write_certificate path cert with
              | () -> Alcotest.failf "%s: fault did not fire" point
              | exception Fault.Injected _ -> ());
          Alcotest.(check string)
            (point ^ ": previous artifact intact")
            before (read_file path);
          (match Equilibrium.read_certificate path with
          | Ok cert' -> (
              match Equilibrium.verify_certificate cert' with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s: artifact no longer verifies: %s" point e)
          | Error e -> Alcotest.failf "%s: artifact unreadable: %s" point e);
          check_false
            (point ^ ": no temp leaked")
            (Sys.file_exists (Atomic_io.tmp_path path))))
    [ "artifact.open"; "artifact.mid_write" ]

let test_env_init () =
  Unix.putenv Fault.env_var "probe.env@raise";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Fault.env_var "";
      Fault.disarm ())
    (fun () ->
      (match Fault.init_from_env () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "env init failed: %s" e);
      check_true "armed from env" (Fault.armed ());
      (match Fault.hit "probe.env" with
      | () -> Alcotest.fail "env-armed fault must fire"
      | exception Fault.Injected _ -> ());
      Fault.disarm ();
      Unix.putenv Fault.env_var "probe@bogus";
      match Fault.init_from_env () with
      | Ok () -> Alcotest.fail "malformed env spec accepted"
      | Error _ -> ())

(* --- the distance-row engine's build probe --- *)

let test_row_build_fault_leaves_no_torn_row () =
  let b = Budget.of_list [ 2; 1; 1; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [| 2 |]; [| 3 |]; [||] |] in
  let c =
    Deviation_eval.make
      ~engine:(Deviation_eval.Fixed Deviation_eval.Rows)
      Cost.Sum p ~player:0
  in
  with_faults [ "deveval.row_build@raise" ] (fun () ->
      match Deviation_eval.cost c [| 1; 3 |] with
      | _ -> Alcotest.fail "armed row build must raise"
      | exception Fault.Injected point ->
          Alcotest.(check string) "fired at the row probe" "deveval.row_build"
            point);
  (* the interrupted build installed nothing: the same context must
     still price exactly after disarm *)
  let game = Game.make Cost.Sum b in
  List.iter
    (fun targets ->
      check_int "context exact after the fault"
        (Game.deviation_cost game p ~player:0 ~targets)
        (Deviation_eval.cost c targets))
    [ [| 1; 3 |]; [| 2; 3 |]; [| 1; 2 |] ]

let suite =
  [
    case "parse specs" test_parse_specs;
    case "hit counting" test_hit_counting;
    case "delay is transparent" test_delay_is_transparent;
    case "mid-write fault preserves previous artifact"
      test_mid_write_fault_preserves_previous_artifact;
    case "open fault never touches target" test_open_fault_never_touches_target;
    slow_case "faulted stream leaves replayable partial"
      test_faulted_stream_leaves_replayable_partial;
    case "fault matrix over probe points" test_fault_matrix_over_probe_points;
    case "row build fault leaves no torn row" test_row_build_fault_leaves_no_torn_row;
    case "init from env" test_env_init;
  ]
