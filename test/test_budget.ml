open Helpers
open Bbng_core

let test_of_list () =
  let b = Budget.of_list [ 0; 1; 2 ] in
  check_int "n" 3 (Budget.n b);
  check_int "get" 1 (Budget.get b 1);
  check_int "total" 3 (Budget.total b)

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Budget: empty budget vector")
    (fun () -> ignore (Budget.of_list []));
  Alcotest.check_raises "too large"
    (Invalid_argument "Budget: b_1 = 3 out of range [0,3)") (fun () ->
      ignore (Budget.of_list [ 0; 3; 0 ]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Budget: b_0 = -1 out of range [0,2)") (fun () ->
      ignore (Budget.of_list [ -1; 0 ]))

let test_uniform () =
  let b = Budget.uniform ~n:5 ~budget:2 in
  check_int "total" 10 (Budget.total b);
  check_true "unit" (Budget.is_unit (Budget.unit_budgets 4))

let test_min_max () =
  let b = Budget.of_list [ 0; 3; 1; 2 ] in
  check_int "min" 0 (Budget.min_budget b);
  check_int "max" 3 (Budget.max_budget b)

let test_to_array_copies () =
  let b = Budget.of_list [ 1; 1 ] in
  let a = Budget.to_array b in
  a.(0) <- 99;
  check_int "immutable" 1 (Budget.get b 0)

let test_predicates () =
  check_true "tree instance" (Budget.is_tree_instance (Budget.of_list [ 0; 1; 1; 1 ]));
  check_false "not tree" (Budget.is_tree_instance (Budget.unit_budgets 4));
  check_true "positive" (Budget.all_positive (Budget.of_list [ 1; 2; 1 ]));
  check_false "has zero" (Budget.all_positive (Budget.of_list [ 0; 2; 1 ]));
  check_true "connectable" (Budget.connectable (Budget.of_list [ 0; 2; 1 ]));
  check_false "subcritical" (Budget.connectable (Budget.of_list [ 0; 0; 1; 0 ]))

let test_classify () =
  let open Budget in
  check_true "subcritical" (classify (of_list [ 0; 0; 1; 0 ]) = Subcritical);
  check_true "tree" (classify (of_list [ 0; 1; 1; 1 ]) = Tree);
  check_true "unit" (classify (unit_budgets 5) = Unit);
  check_true "positive" (classify (of_list [ 1; 1; 2 ]) = Positive);
  check_true "general" (classify (of_list [ 0; 2; 2 ]) = General);
  (* tree wins over unit: (1,1) on n=2 has sigma = 2 > n-1, so Unit;
     but (1,0) sums to 1 = n-1: Tree *)
  check_true "tree beats general" (classify (of_list [ 1; 0 ]) = Tree)

let test_class_names () =
  check_true "names distinct"
    (List.length
       (List.sort_uniq compare
          (List.map Budget.class_name
             [ Budget.Subcritical; Tree; Unit; Positive; General ]))
    = 5)

let test_random_partition () =
  let b = Budget.random_partition (rng 3) ~n:6 ~total:10 in
  check_int "total preserved" 10 (Budget.total b);
  check_int "n" 6 (Budget.n b);
  Alcotest.check_raises "impossible total"
    (Invalid_argument "Budget.random_partition: total out of range") (fun () ->
      ignore (Budget.random_partition (rng 0) ~n:3 ~total:7))

let test_random_partition_extremes () =
  let b = Budget.random_partition (rng 1) ~n:4 ~total:12 in
  check_true "saturated" (Array.for_all (fun x -> x = 3) (Budget.to_array b));
  let b = Budget.random_partition (rng 1) ~n:4 ~total:0 in
  check_int "empty" 0 (Budget.total b)

let test_of_digraph () =
  let b = Budget.of_digraph (Bbng_graph.Generators.tripod 2) in
  check_int "total = n-1" 6 (Budget.total b);
  check_true "tree instance" (Budget.is_tree_instance b)

let test_random_powerlaw () =
  let b = Budget.random_powerlaw (rng 7) ~n:50 ~exponent:2.0 ~max_budget:5 in
  check_int "n" 50 (Budget.n b);
  check_true "within cap" (Budget.max_budget b <= 5);
  check_true "nonnegative" (Budget.min_budget b >= 0);
  (* skew: with exponent 2 over 0..5, small budgets dominate *)
  let zeros_and_ones =
    Array.fold_left
      (fun acc x -> if x <= 1 then acc + 1 else acc)
      0 (Budget.to_array b)
  in
  check_true "skewed toward small budgets" (zeros_and_ones > 25);
  Alcotest.check_raises "cap too large"
    (Invalid_argument "Budget.random_powerlaw: need 0 <= max_budget < n")
    (fun () -> ignore (Budget.random_powerlaw (rng 0) ~n:4 ~exponent:2.0 ~max_budget:4))

let prop_random_partition_valid =
  qcheck "random partitions are valid budgets" (random_budget_gen ~n_min:1 ~n_max:12)
    (fun (n, total, seed) ->
      let b = random_budget_of (n, total, seed) in
      Budget.total b = total
      && Array.for_all (fun x -> x >= 0 && x < n) (Budget.to_array b))

let suite =
  [
    case "of_list" test_of_list;
    case "validation" test_validation;
    case "uniform" test_uniform;
    case "min/max" test_min_max;
    case "to_array copies" test_to_array_copies;
    case "predicates" test_predicates;
    case "classify" test_classify;
    case "class names" test_class_names;
    case "random partition" test_random_partition;
    case "random partition extremes" test_random_partition_extremes;
    case "of_digraph" test_of_digraph;
    case "random powerlaw" test_random_powerlaw;
    prop_random_partition_valid;
  ]
