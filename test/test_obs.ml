open Helpers
open Bbng_core
module Counter = Bbng_obs.Counter
module Span = Bbng_obs.Span
module Sink = Bbng_obs.Sink
module Json = Bbng_obs.Json

(* --- counters --- *)

let test_counter_basics () =
  let c = Counter.make "test.obs.basics" in
  let base = Counter.get c in
  Counter.bump c;
  Counter.add c 41;
  check_int "bump + add" (base + 42) (Counter.get c);
  let c' = Counter.make "test.obs.basics" in
  check_int "make is idempotent" (Counter.get c) (Counter.get c');
  check_int "find by name" (Counter.get c) (Counter.find "test.obs.basics");
  check_int "unknown name reads 0" 0 (Counter.find "test.obs.no-such-counter")

let test_counter_monotonic_under_parallel () =
  (* n concurrent bumps from Parallel.for_all workers lose nothing *)
  let c = Counter.make "test.obs.parallel-bumps" in
  let base = Counter.get c in
  let n = 10_000 in
  check_true "all workers succeed"
    (Parallel.for_all ~domains:4 ~n (fun _ ->
         Counter.bump c;
         true));
  check_int "every bump counted" (base + n) (Counter.get c)

let test_counter_snapshot_sorted () =
  ignore (Counter.make "test.obs.zzz");
  ignore (Counter.make "test.obs.aaa");
  let names = List.map fst (Counter.snapshot ()) in
  check_true "snapshot sorted" (List.sort compare names = names);
  check_true "registered names present"
    (List.mem "test.obs.zzz" names && List.mem "test.obs.aaa" names)

(* --- spans --- *)

let with_spans f =
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let span_stat name =
  match List.assoc_opt name (Span.snapshot ()) with
  | Some s -> s
  | None -> Alcotest.failf "span %S not recorded" name

let test_span_nesting () =
  with_spans (fun () ->
      Span.reset_all ();
      Span.time "test.outer" (fun () ->
          Span.time "test.inner" (fun () -> Unix.sleepf 0.002));
      let outer = span_stat "test.outer" and inner = span_stat "test.inner" in
      check_int "outer count" 1 outer.Span.count;
      check_int "inner count" 1 inner.Span.count;
      check_true "inner took measurable time" (inner.Span.total_ns > 0);
      check_true "outer encloses inner"
        (outer.Span.total_ns >= inner.Span.total_ns);
      check_true "max <= total for a single span"
        (outer.Span.max_ns <= outer.Span.total_ns))

let test_span_unbalanced_close () =
  with_spans (fun () ->
      Span.reset_all ();
      let h = Span.enter "test.unbalanced" in
      Span.exit h;
      Span.exit h;
      (* double close *)
      let s = span_stat "test.unbalanced" in
      check_int "double close records once" 1 s.Span.count)

let test_span_disabled_is_inert () =
  Span.set_enabled false;
  Span.reset_all ();
  let h = Span.enter "test.disabled" in
  Span.exit h;
  ignore (Span.time "test.disabled" (fun () -> 7));
  check_true "nothing recorded while disabled"
    (List.assoc_opt "test.disabled" (Span.snapshot ()) = None)

let test_span_records_on_raise () =
  with_spans (fun () ->
      Span.reset_all ();
      (try Span.time "test.raising" (fun () -> failwith "boom")
       with Failure _ -> ());
      check_int "span closed despite raise" 1 (span_stat "test.raising").Span.count)

(* --- JSON emitter + parser --- *)

let test_json_escape_roundtrip () =
  let nasty = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\001 end" in
  let rendered = Json.to_string (Json.Str nasty) in
  check_true "single line" (not (String.contains rendered '\n'));
  (match Json.of_string rendered with
  | Json.Str s -> Alcotest.(check string) "string round-trips" nasty s
  | _ -> Alcotest.fail "expected a string");
  let v =
    Json.Obj
      [
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("list", Json.List [ Json.Int 1; Json.Str "a\\b" ]);
      ]
  in
  check_true "object round-trips" (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  rejects "";
  rejects "{";
  rejects "\"unterminated";
  rejects "{\"a\":1,}";
  rejects "[1 2]";
  rejects "123 trailing"

(* --- JSONL sink --- *)

let test_jsonl_one_event_per_line () =
  let file = Filename.temp_file "bbng_obs" ".jsonl" in
  let oc = open_out file in
  Sink.set (Sink.Jsonl oc);
  Fun.protect
    ~finally:(fun () ->
      Sink.set Sink.Null;
      close_out_noerr oc;
      Sys.remove file)
    (fun () ->
      Sink.emit "test.event"
        [ ("text", Json.Str "tricky \"quoted\\path\"\nline2"); ("k", Json.Int 3) ];
      Sink.emit "test.event" [ ("step", Json.Int 2) ];
      Sink.set Sink.Null;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one event per line" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Json.Obj fields ->
              check_true "event field first"
                (match fields with ("event", Json.Str "test.event") :: _ -> true | _ -> false)
          | _ -> Alcotest.fail "line is not an object")
        lines;
      match Json.member "text" (Json.of_string (List.nth lines 0)) with
      | Some (Json.Str s) ->
          Alcotest.(check string) "escaping round-trips through the sink"
            "tricky \"quoted\\path\"\nline2" s
      | _ -> Alcotest.fail "text field missing")

let test_sink_active () =
  check_false "no sink by default here" (Sink.active ());
  Sink.add Sink.Null;
  check_false "Null never counts as active" (Sink.active ())

let suite =
  [
    case "counter basics" test_counter_basics;
    case "counter monotonic under Parallel.for_all"
      test_counter_monotonic_under_parallel;
    case "counter snapshot sorted" test_counter_snapshot_sorted;
    case "span nesting" test_span_nesting;
    case "span unbalanced close" test_span_unbalanced_close;
    case "span disabled is inert" test_span_disabled_is_inert;
    case "span closes on raise" test_span_records_on_raise;
    case "json escape round-trip" test_json_escape_roundtrip;
    case "json rejects garbage" test_json_rejects_garbage;
    case "jsonl sink one event per line" test_jsonl_one_event_per_line;
    case "sink activity" test_sink_active;
  ]
