open Helpers
open Bbng_core
module Counter = Bbng_obs.Counter
module Span = Bbng_obs.Span
module Sink = Bbng_obs.Sink
module Json = Bbng_obs.Json
module Histogram = Bbng_obs.Histogram
module Gcstats = Bbng_obs.Gcstats
module Trace_export = Bbng_obs.Trace_export
module Stats = Bbng_obs.Stats

(* --- counters --- *)

let test_counter_basics () =
  let c = Counter.make "test.obs.basics" in
  let base = Counter.get c in
  Counter.bump c;
  Counter.add c 41;
  check_int "bump + add" (base + 42) (Counter.get c);
  let c' = Counter.make "test.obs.basics" in
  check_int "make is idempotent" (Counter.get c) (Counter.get c');
  check_int "find by name" (Counter.get c) (Counter.find "test.obs.basics");
  check_int "unknown name reads 0" 0 (Counter.find "test.obs.no-such-counter")

let test_counter_monotonic_under_parallel () =
  (* n concurrent bumps from Parallel.for_all workers lose nothing *)
  let c = Counter.make "test.obs.parallel-bumps" in
  let base = Counter.get c in
  let n = 10_000 in
  check_true "all workers succeed"
    (Parallel.for_all ~domains:4 ~n (fun _ ->
         Counter.bump c;
         true));
  check_int "every bump counted" (base + n) (Counter.get c)

let test_counter_snapshot_sorted () =
  ignore (Counter.make "test.obs.zzz");
  ignore (Counter.make "test.obs.aaa");
  let names = List.map fst (Counter.snapshot ()) in
  check_true "snapshot sorted" (List.sort compare names = names);
  check_true "registered names present"
    (List.mem "test.obs.zzz" names && List.mem "test.obs.aaa" names)

(* --- spans --- *)

let with_spans f =
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let span_stat name =
  match List.assoc_opt name (Span.snapshot ()) with
  | Some s -> s
  | None -> Alcotest.failf "span %S not recorded" name

let test_span_nesting () =
  with_spans (fun () ->
      Span.reset_all ();
      Span.time "test.outer" (fun () ->
          Span.time "test.inner" (fun () -> Unix.sleepf 0.002));
      let outer = span_stat "test.outer" and inner = span_stat "test.inner" in
      check_int "outer count" 1 outer.Span.count;
      check_int "inner count" 1 inner.Span.count;
      check_true "inner took measurable time" (inner.Span.total_ns > 0);
      check_true "outer encloses inner"
        (outer.Span.total_ns >= inner.Span.total_ns);
      check_true "max <= total for a single span"
        (outer.Span.max_ns <= outer.Span.total_ns))

let test_span_unbalanced_close () =
  with_spans (fun () ->
      Span.reset_all ();
      let h = Span.enter "test.unbalanced" in
      Span.exit h;
      Span.exit h;
      (* double close *)
      let s = span_stat "test.unbalanced" in
      check_int "double close records once" 1 s.Span.count)

let test_span_disabled_is_inert () =
  Span.set_enabled false;
  Span.reset_all ();
  let h = Span.enter "test.disabled" in
  Span.exit h;
  ignore (Span.time "test.disabled" (fun () -> 7));
  check_true "nothing recorded while disabled"
    (List.assoc_opt "test.disabled" (Span.snapshot ()) = None)

let test_span_records_on_raise () =
  with_spans (fun () ->
      Span.reset_all ();
      (try Span.time "test.raising" (fun () -> failwith "boom")
       with Failure _ -> ());
      check_int "span closed despite raise" 1 (span_stat "test.raising").Span.count)

(* --- JSON emitter + parser --- *)

let test_json_escape_roundtrip () =
  let nasty = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\001 end" in
  let rendered = Json.to_string (Json.Str nasty) in
  check_true "single line" (not (String.contains rendered '\n'));
  (match Json.of_string rendered with
  | Json.Str s -> Alcotest.(check string) "string round-trips" nasty s
  | _ -> Alcotest.fail "expected a string");
  let v =
    Json.Obj
      [
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("list", Json.List [ Json.Int 1; Json.Str "a\\b" ]);
      ]
  in
  check_true "object round-trips" (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  rejects "";
  rejects "{";
  rejects "\"unterminated";
  rejects "{\"a\":1,}";
  rejects "[1 2]";
  rejects "123 trailing"

let test_json_error_paths () =
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  (* truncated input, cut at every structural position *)
  rejects "{\"a\":";
  rejects "{\"a\"";
  rejects "[1,";
  rejects "[";
  rejects "tru";
  rejects "nul";
  rejects "-";
  rejects "1.";
  List.iter
    (fun full ->
      for cut = 1 to String.length full - 1 do
        let prefix = String.sub full 0 cut in
        match Json.of_string prefix with
        | exception Json.Parse_error _ -> ()
        | _ ->
            (* some prefixes are themselves valid ("123" of "1234"),
               but never for this nested-object input *)
            Alcotest.failf "accepted truncated %S" prefix
      done)
    [ "{\"k\":[1,{\"x\":\"y\"}],\"b\":null}" ];
  (* bad escapes *)
  rejects "\"\\q\"";
  rejects "\"\\u12\"";
  rejects "\"\\u12G4\"";
  rejects "\"\\";
  (* trailing garbage *)
  rejects "{} {}";
  rejects "null,";
  rejects "[1]x";
  (* deep nesting fails cleanly with Parse_error, not Stack_overflow *)
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  rejects (deep 100_000);
  (match Json.of_string (deep 100) with
  | _ -> ()
  | exception e ->
      Alcotest.failf "rejected 100-deep nesting: %s" (Printexc.to_string e))

(* --- histograms --- *)

let test_histogram_basics () =
  let h = Histogram.unregistered "test.hist.basics" in
  check_int "empty count" 0 (Histogram.count h);
  check_true "empty quantile is 0" (Histogram.quantile h 0.5 = 0.);
  List.iter (Histogram.record h) [ 0; 1; 2; 3; 100; 7 ];
  check_int "count" 6 (Histogram.count h);
  check_int "total" 113 (Histogram.total h);
  check_int "max exact" 100 (Histogram.max_value h);
  Histogram.record h (-5);
  check_int "negative clamps to 0" 7 (Histogram.count h);
  check_int "clamped total" 113 (Histogram.total h);
  check_true "quantiles monotone in q"
    (Histogram.quantile h 0.5 <= Histogram.quantile h 0.9
    && Histogram.quantile h 0.9 <= Histogram.quantile h 0.99);
  check_true "quantile bounded by max"
    (Histogram.quantile h 0.99 <= float_of_int (Histogram.max_value h));
  let h2 = Histogram.make "test.hist.registry" in
  let h2' = Histogram.make "test.hist.registry" in
  Histogram.record h2 5;
  check_int "make is idempotent" (Histogram.count h2) (Histogram.count h2');
  check_true "find by name" (Histogram.find "test.hist.registry" <> None);
  check_true "snapshot sorted"
    (let names = List.map fst (Histogram.snapshot ()) in
     List.sort compare names = names)

(* Quantile estimates must be within a factor of two of the exact
   sample quantile: estimate and true value share a power-of-two
   bucket. *)
let test_histogram_quantile_vs_brute () =
  List.iter
    (fun seed ->
      let st = rng seed in
      let n = 500 + Random.State.int st 1500 in
      let h = Histogram.unregistered "test.hist.brute" in
      let values =
        Array.init n (fun _ ->
            (* mix scales so many buckets are occupied *)
            match Random.State.int st 3 with
            | 0 -> Random.State.int st 8
            | 1 -> Random.State.int st 1_000
            | _ -> Random.State.int st 1_000_000)
      in
      Array.iter (Histogram.record h) values;
      let sorted = Array.copy values in
      Array.sort compare sorted;
      List.iter
        (fun q ->
          let rank = q *. float_of_int (n - 1) in
          let true_v = float_of_int sorted.(int_of_float rank) in
          let est = Histogram.quantile h q in
          let ok =
            est >= (true_v /. 2.) -. 1. && est <= (2. *. true_v) +. 1.
          in
          if not ok then
            Alcotest.failf
              "seed %d q %.2f: estimate %.1f not within 2x of true %.1f" seed
              q est true_v)
        [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_histogram_parallel_record () =
  let h = Histogram.make "test.hist.parallel" in
  Histogram.reset h;
  let n = 10_000 in
  check_true "all workers succeed"
    (Parallel.for_all ~domains:4 ~n (fun i ->
         Histogram.record h i;
         true));
  check_int "every record counted" n (Histogram.count h);
  check_int "max exact under contention" (n - 1) (Histogram.max_value h);
  check_int "total exact under contention" (n * (n - 1) / 2) (Histogram.total h)

(* --- GC telemetry --- *)

let test_gcstats_delta () =
  let before = Gcstats.capture () in
  let junk = ref [] in
  for i = 0 to 10_000 do
    junk := (i, string_of_int i) :: !junk
  done;
  ignore (Sys.opaque_identity !junk);
  let d = Gcstats.since before in
  check_true "allocation shows up as minor words" (d.Gcstats.minor_words > 0.);
  check_true "collections never go backwards" (d.Gcstats.minor_collections >= 0);
  match Gcstats.to_json d with
  | Json.Obj fields ->
      List.iter
        (fun k ->
          check_true (k ^ " present") (List.mem_assoc k fields))
        [
          "minor_words"; "major_words"; "promoted_words"; "minor_collections";
          "major_collections"; "heap_words";
        ]
  | _ -> Alcotest.fail "gc delta renders as an object"

(* --- JSONL sink --- *)

let test_jsonl_one_event_per_line () =
  let file = Filename.temp_file "bbng_obs" ".jsonl" in
  let oc = open_out file in
  Sink.set (Sink.Jsonl oc);
  Fun.protect
    ~finally:(fun () ->
      Sink.set Sink.Null;
      close_out_noerr oc;
      Sys.remove file)
    (fun () ->
      Sink.emit "test.event"
        [ ("text", Json.Str "tricky \"quoted\\path\"\nline2"); ("k", Json.Int 3) ];
      Sink.emit "test.event" [ ("step", Json.Int 2) ];
      Sink.set Sink.Null;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one event per line" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Json.Obj fields ->
              check_true "event field first"
                (match fields with ("event", Json.Str "test.event") :: _ -> true | _ -> false)
          | _ -> Alcotest.fail "line is not an object")
        lines;
      match Json.member "text" (Json.of_string (List.nth lines 0)) with
      | Some (Json.Str s) ->
          Alcotest.(check string) "escaping round-trips through the sink"
            "tricky \"quoted\\path\"\nline2" s
      | _ -> Alcotest.fail "text field missing")

let read_lines file =
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let test_sink_scoped_restores () =
  let file = Filename.temp_file "bbng_obs" ".jsonl" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      Sys.remove file)
    (fun () ->
      check_false "inactive before" (Sink.active ());
      Sink.scoped (Sink.Jsonl oc) (fun () ->
          check_true "active inside the scope" (Sink.active ());
          Sink.emit "scoped.event" []);
      check_false "restored after" (Sink.active ());
      Sink.emit "after.event" [] (* must go nowhere *);
      (* scoped flushes on exit, so the event is on disk already *)
      check_int "exactly the scoped event" 1 (List.length (read_lines file)));
  (* the scope also restores on raise *)
  let raised =
    match Sink.scoped Sink.Null (fun () -> failwith "boom") with
    | () -> false
    | exception Failure _ -> true
  in
  check_true "exception propagates" raised;
  check_false "restored after raise" (Sink.active ())

let test_jsonl_buffered_until_milestone () =
  let file = Filename.temp_file "bbng_obs" ".jsonl" in
  let oc = open_out file in
  Sink.set (Sink.Jsonl oc);
  Fun.protect
    ~finally:(fun () ->
      Sink.set Sink.Null;
      close_out_noerr oc;
      Sys.remove file)
    (fun () ->
      Sink.emit "dynamics.step" [ ("step", Json.Int 1) ];
      (* ordinary events may sit in the channel buffer... *)
      Sink.flush_all ();
      check_int "flush_all makes the prefix visible" 1
        (List.length (read_lines file));
      Sink.emit "dynamics.step" [ ("step", Json.Int 2) ];
      Sink.emit "dynamics.outcome" [ ("outcome", Json.Str "converged") ];
      (* ...but a milestone event flushes without any explicit call:
         an interrupted --report still ends on a complete run *)
      check_int "dynamics.outcome is a flush milestone" 3
        (List.length (read_lines file)))

let test_certificate_envelope_roundtrip () =
  let module C = Bbng_obs.Certificate in
  let art =
    C.make ~kind:"bbng.test-artifact"
      [ ("payload", Json.Int 42); ("name", Json.Str "x") ]
  in
  check_int "format version recorded" C.format_version art.C.format;
  (match C.of_json (C.to_json art) with
  | Ok art' ->
      Alcotest.(check string) "kind survives" "bbng.test-artifact" art'.C.kind;
      check_true "payload survives" (C.field "payload" art' = Some (Json.Int 42))
  | Error msg -> Alcotest.failf "round trip: %s" msg);
  (match C.of_json (Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object accepted");
  let file = Filename.temp_file "bbng_cert" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      C.write file art;
      match C.read file with
      | Ok art' -> Alcotest.(check string) "file round trip" art.C.kind art'.C.kind
      | Error msg -> Alcotest.failf "read: %s" msg)

let test_replay_parses_runs () =
  let ev name fields = Json.Obj (("event", Json.Str name) :: fields) in
  let events =
    [
      ev "run.meta" [];
      ev "dynamics.start"
        [ ("rule", Json.Str "first-swap"); ("version", Json.Str "SUM");
          ("budgets", Json.List [ Json.Int 1; Json.Int 1 ]);
          ("profile", Json.Str "1;0"); ("seed", Json.Int 9) ];
      ev "dynamics.step"
        [ ("step", Json.Int 1); ("player", Json.Int 0);
          ("old_cost", Json.Int 3); ("new_cost", Json.Int 2);
          ("social_cost", Json.Int 2);
          ("old_targets", Json.List [ Json.Int 1 ]);
          ("new_targets", Json.List [ Json.Int 1 ]) ];
      ev "dynamics.outcome"
        [ ("outcome", Json.Str "converged"); ("steps", Json.Int 1) ];
      ev "dynamics.start" [ ("rule", Json.Str "exact-best") ];
      ev "dynamics.step"
        [ ("step", Json.Int 1); ("player", Json.Int 1);
          ("old_cost", Json.Int 5); ("new_cost", Json.Int 4);
          ("social_cost", Json.Int 4) ];
      (* second run interrupted: no outcome *)
    ]
  in
  match Bbng_obs.Replay.runs_of_events events with
  | [ complete; interrupted ] ->
      Alcotest.(check (option string))
        "rule" (Some "first-swap") complete.Bbng_obs.Replay.rule;
      check_true "meta keeps non-structural fields"
        (List.assoc_opt "seed" complete.Bbng_obs.Replay.meta = Some (Json.Int 9));
      check_int "steps parsed" 1 (List.length complete.Bbng_obs.Replay.steps);
      check_true "outcome closed"
        (complete.Bbng_obs.Replay.run_outcome <> None);
      check_true "trailing run kept open"
        (interrupted.Bbng_obs.Replay.run_outcome = None);
      let s = List.hd interrupted.Bbng_obs.Replay.steps in
      check_true "pre-audit step has no targets"
        (s.Bbng_obs.Replay.old_targets = None
        && s.Bbng_obs.Replay.new_targets = None)
  | runs -> Alcotest.failf "expected 2 runs, got %d" (List.length runs)

let test_summarize_dynamics_section () =
  let ev name fields = Json.Obj (("event", Json.Str name) :: fields) in
  let events =
    List.concat_map
      (fun (rule, outcome, steps) ->
        [
          ev "dynamics.start" [ ("rule", Json.Str rule) ];
          ev "dynamics.outcome"
            [ ("rule", Json.Str rule); ("outcome", Json.Str outcome);
              ("steps", Json.Int steps) ];
        ])
      [ ("exact-best", "converged", 3); ("exact-best", "converged", 12);
        ("first-swap", "cycle", 40) ]
  in
  let file = Filename.temp_file "bbng_obs" ".txt" in
  let oc = open_out file in
  Bbng_obs.Trace_export.summarize events oc;
  close_out oc;
  let text = String.concat "\n" (read_lines file) in
  Sys.remove file;
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "aggregates runs" (contains "3 recorded runs");
  check_true "tallies rule/outcome" (contains "exact-best/converged");
  check_true "steps stats present" (contains "steps:")

let test_sink_active () =
  check_false "no sink by default here" (Sink.active ());
  Sink.add Sink.Null;
  check_false "Null never counts as active" (Sink.active ())

(* --- span histograms + GC attribution --- *)

let test_span_quantiles_and_gc () =
  with_spans (fun () ->
      Span.reset_all ();
      for _ = 1 to 20 do
        Span.with_ "test.span.dist" (fun () ->
            ignore (Sys.opaque_identity (Array.make 1000 0)))
      done;
      let s = span_stat "test.span.dist" in
      check_int "count" 20 s.Span.count;
      check_true "p50 <= p99" (s.Span.p50_ns <= s.Span.p99_ns);
      check_true "p99 <= max"
        (s.Span.p99_ns <= float_of_int s.Span.max_ns +. 1.);
      check_true "quantiles positive" (s.Span.p50_ns > 0.);
      check_true "allocation attributed to span" (s.Span.minor_words > 0.))

let test_span_emits_event_when_sinked () =
  let file = Filename.temp_file "bbng_obs" ".jsonl" in
  let oc = open_out file in
  with_spans (fun () ->
      Span.reset_all ();
      Sink.set (Sink.Jsonl oc);
      Fun.protect
        ~finally:(fun () ->
          Sink.set Sink.Null;
          close_out_noerr oc;
          Sys.remove file)
        (fun () ->
          Span.with_ "test.span.event" (fun () -> Unix.sleepf 0.001);
          Sink.set Sink.Null;
          close_out oc;
          let ic = open_in file in
          let events, skipped =
            Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
                Trace_export.read_events ic)
          in
          check_int "no skipped lines" 0 skipped;
          match
            List.find_opt
              (fun j ->
                Json.member "event" j = Some (Json.Str "span")
                && Json.member "name" j = Some (Json.Str "test.span.event"))
              events
          with
          | None -> Alcotest.fail "span close did not emit an event"
          | Some j -> (
              check_true "event is timestamped"
                (Json.member "ts_us" j <> None);
              match Json.member "dur_us" j with
              | Some (Json.Float d) ->
                  check_true "duration covers the sleep" (d >= 500.)
              | _ -> Alcotest.fail "span event without dur_us")))

(* --- chrome trace export --- *)

let test_trace_export_chrome () =
  let mk name fields =
    Json.Obj (("event", Json.Str name) :: ("ts_us", Json.Float 100.) :: fields)
  in
  let events =
    [
      mk "dynamics.start" [ ("players", Json.Int 4) ];
      mk "span"
        [ ("name", Json.Str "equilibrium.certify_player");
          ("dur_us", Json.Float 40.) ];
      mk "dynamics.step"
        [ ("step", Json.Int 1); ("social_cost", Json.Int 12) ];
      mk "run.summary" [];
    ]
  in
  let trace = Trace_export.to_chrome events in
  (* round-trips through our own parser *)
  let trace = Json.of_string (Json.to_string trace) in
  match Json.member "traceEvents" trace with
  | Some (Json.List records) ->
      check_true "has records" (List.length records >= 5);
      List.iter
        (fun r ->
          check_true "name present"
            (match Json.member "name" r with Some (Json.Str _) -> true | _ -> false);
          check_true "ph present"
            (match Json.member "ph" r with Some (Json.Str _) -> true | _ -> false);
          check_true "ts present" (Json.member "ts" r <> None);
          check_true "dur present" (Json.member "dur" r <> None))
        records;
      let slice =
        List.find_opt
          (fun r -> Json.member "ph" r = Some (Json.Str "X"))
          records
      in
      (* %.12g prints whole floats without a decimal point, so a
         round-tripped 60. comes back as Int 60: compare numerically *)
      let num field r =
        match Json.member field r with
        | Some (Json.Int i) -> Some (float_of_int i)
        | Some (Json.Float f) -> Some f
        | _ -> None
      in
      (match slice with
      | Some r ->
          check_true "slice keeps the span name"
            (Json.member "name" r
            = Some (Json.Str "equilibrium.certify_player"));
          check_true "slice starts dur before its close stamp"
            (num "ts" r = Some 60.);
          check_true "slice duration" (num "dur" r = Some 40.)
      | None -> Alcotest.fail "span event did not become a complete slice");
      check_true "dynamics.step also feeds a counter track"
        (List.exists
           (fun r -> Json.member "ph" r = Some (Json.Str "C"))
           records)
  | _ -> Alcotest.fail "missing traceEvents"

let test_trace_read_events_skips_garbage () =
  let file = Filename.temp_file "bbng_obs" ".jsonl" in
  let oc = open_out file in
  output_string oc "start: 1,2;0;0 (diameter 2)\n";
  output_string oc "{\"event\":\"dynamics.step\",\"ts_us\":1.5,\"step\":1}\n";
  output_string oc "not json at all {\n";
  output_string oc "{\"no_event_field\":true}\n";
  output_string oc "{\"event\":\"run.summary\",\"ts_us\":2.5}\n";
  close_out oc;
  let ic = open_in file in
  let events, skipped =
    Fun.protect ~finally:(fun () -> close_in_noerr ic; Sys.remove file)
      (fun () -> Trace_export.read_events ic)
  in
  check_int "two real events" 2 (List.length events);
  check_int "three skipped lines" 3 skipped

(* --- stats rendering --- *)

let test_stats_print_ordering () =
  (* --stats sorts counters by count and spans by total time, both
     descending, so the hot path is the first line read *)
  let big = Counter.make "test.stats.zz-big" in
  let small = Counter.make "test.stats.aa-small" in
  Counter.add big (1_000_000 - Counter.get big);
  Counter.add small (1 - Counter.get small);
  with_spans (fun () ->
      Span.reset_all ();
      Span.with_ "test.stats.slow" (fun () -> Unix.sleepf 0.005);
      Span.with_ "test.stats.fast" (fun () -> ());
      let file = Filename.temp_file "bbng_obs" ".stats" in
      let oc = open_out file in
      Stats.print oc;
      close_out oc;
      let ic = open_in file in
      let text =
        Fun.protect ~finally:(fun () -> close_in_noerr ic; Sys.remove file)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let index sub =
        let len = String.length sub in
        let rec find i =
          if i + len > String.length text then None
          else if String.sub text i len = sub then Some i
          else find (i + 1)
        in
        find 0
      in
      let pos name =
        match index name with
        | Some i -> i
        | None -> Alcotest.failf "%S missing from --stats output" name
      in
      check_true "bigger counter prints first"
        (pos "test.stats.zz-big" < pos "test.stats.aa-small");
      check_true "slower span prints first"
        (pos "test.stats.slow" < pos "test.stats.fast");
      check_true "p50/p99 column header present"
        (index "p50 ms / p99 ms" <> None);
      check_true "gc delta line present" (index "gc: minor" <> None))

let test_spans_json_name_sorted () =
  with_spans (fun () ->
      Span.reset_all ();
      Span.with_ "test.zz" (fun () -> ());
      Span.with_ "test.aa" (fun () -> Unix.sleepf 0.001);
      match Stats.spans_json () with
      | Json.Obj fields ->
          let names = List.map fst fields in
          check_true "JSON rendering stays name-sorted for stable diffs"
            (List.sort compare names = names);
          List.iter
            (fun (_, sp) ->
              List.iter
                (fun k -> check_true (k ^ " present") (Json.member k sp <> None))
                [ "count"; "total_ms"; "max_ms"; "p50_ms"; "p90_ms"; "p99_ms";
                  "minor_words" ])
            fields
      | _ -> Alcotest.fail "spans_json is an object")

let test_summary_fields_provenance () =
  let fields = Stats.summary_fields () in
  check_true "argv recorded"
    (match List.assoc_opt "argv" fields with
    | Some (Json.List (_ :: _)) -> true
    | _ -> false);
  check_true "ocaml version recorded"
    (List.assoc_opt "ocaml_version" fields
    = Some (Json.Str Sys.ocaml_version));
  check_true "word size recorded"
    (List.assoc_opt "word_size" fields = Some (Json.Int Sys.word_size));
  check_true "gc delta in summary" (List.mem_assoc "gc" fields);
  check_true "histograms in summary" (List.mem_assoc "histograms" fields)

let suite =
  [
    case "counter basics" test_counter_basics;
    case "counter monotonic under Parallel.for_all"
      test_counter_monotonic_under_parallel;
    case "counter snapshot sorted" test_counter_snapshot_sorted;
    case "span nesting" test_span_nesting;
    case "span unbalanced close" test_span_unbalanced_close;
    case "span disabled is inert" test_span_disabled_is_inert;
    case "span closes on raise" test_span_records_on_raise;
    case "json escape round-trip" test_json_escape_roundtrip;
    case "json rejects garbage" test_json_rejects_garbage;
    case "json error paths" test_json_error_paths;
    case "histogram basics" test_histogram_basics;
    case "histogram quantiles vs brute force" test_histogram_quantile_vs_brute;
    case "histogram parallel recording" test_histogram_parallel_record;
    case "gcstats delta" test_gcstats_delta;
    case "jsonl sink one event per line" test_jsonl_one_event_per_line;
    case "sink scoped install/restore" test_sink_scoped_restores;
    case "jsonl buffering and milestones" test_jsonl_buffered_until_milestone;
    case "certificate envelope round trip" test_certificate_envelope_roundtrip;
    case "replay run parsing" test_replay_parses_runs;
    case "summarize aggregates dynamics runs" test_summarize_dynamics_section;
    case "sink activity" test_sink_active;
    case "span quantiles and gc attribution" test_span_quantiles_and_gc;
    case "span emits event when sinked" test_span_emits_event_when_sinked;
    case "chrome trace export" test_trace_export_chrome;
    case "trace reader skips garbage lines" test_trace_read_events_skips_garbage;
    case "stats print ordering" test_stats_print_ordering;
    case "spans json name-sorted" test_spans_json_name_sorted;
    case "run.summary provenance" test_summary_fields_provenance;
  ]
