open Helpers
open Bbng_core

let ctx version p player = Deviation_eval.make version p ~player

let test_accessors () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:5 in
  let c = ctx Cost.Sum p 2 in
  check_int "player" 2 (Deviation_eval.player c);
  check_true "version" (Deviation_eval.version c = Cost.Sum)

let test_current_cost_matches_game () =
  let p = Bbng_constructions.Binary_tree.profile ~depth:2 in
  List.iter
    (fun version ->
      let game = Game.make version (Strategy.budgets p) in
      for player = 0 to Strategy.n p - 1 do
        check_int
          (Printf.sprintf "%s player %d" (Cost.version_name version) player)
          (Game.player_cost game p player)
          (Deviation_eval.current_cost (ctx version p player))
      done)
    Cost.all_versions

let test_cost_matches_deviation_cost () =
  (* hand-picked deviations incl. ones that disconnect the graph *)
  let b = Budget.of_list [ 2; 1; 0; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [| 3 |]; [||]; [||]; [||] |] in
  List.iter
    (fun version ->
      let game = Game.make version b in
      let c = ctx version p 0 in
      List.iter
        (fun targets ->
          check_int
            (Printf.sprintf "%s {%s}" (Cost.version_name version)
               (String.concat ","
                  (List.map string_of_int (Array.to_list targets))))
            (Game.deviation_cost game p ~player:0 ~targets)
            (Deviation_eval.cost c targets))
        [ [| 1; 2 |]; [| 1; 4 |]; [| 3; 4 |]; [| 2; 4 |]; [| 1; 3 |] ])
    Cost.all_versions

let test_kappa_counting () =
  (* everything isolated except the player's arcs: deviating to one
     vertex leaves three components (player+target, and two singletons) *)
  let b = Budget.of_list [ 1; 0; 0; 0 ] in
  let p = Strategy.make b [| [| 1 |]; [||]; [||]; [||] |] in
  let c = ctx Cost.Max p 0 in
  (* kappa = 3: {0,1}, {2}, {3}; cost = 16 + 2*16 *)
  check_int "kappa term" (16 + 2 * 16) (Deviation_eval.cost c [| 1 |]);
  let game = Game.make Cost.Max b in
  check_int "agrees with game" (Game.deviation_cost game p ~player:0 ~targets:[| 1 |])
    (Deviation_eval.cost c [| 1 |])

let test_partial_targets () =
  (* the greedy heuristic evaluates fewer targets than the budget *)
  let b = Budget.of_list [ 2; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [||]; [||] |] in
  let c = ctx Cost.Sum p 0 in
  (* one arc only: reach 1 at distance 1, vertex 2 unreachable (9) *)
  check_int "partial" (1 + 9) (Deviation_eval.cost c [| 1 |]);
  check_int "empty" (9 + 9) (Deviation_eval.cost c [||])

let test_reuse_across_calls () =
  (* scratch reuse must not leak state between evaluations *)
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:8 in
  let c = ctx Cost.Sum p 4 in
  let first = Deviation_eval.cost c [| 0 |] in
  let _ = Deviation_eval.cost c [| 5 |] in
  let _ = Deviation_eval.cost c [| 7 |] in
  check_int "same answer after reuse" first (Deviation_eval.cost c [| 0 |])

let test_validation () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:4 in
  let c = ctx Cost.Sum p 1 in
  Alcotest.check_raises "self"
    (Invalid_argument "Deviation_eval.cost: self target") (fun () ->
      ignore (Deviation_eval.cost c [| 1 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Deviation_eval.cost: target out of range") (fun () ->
      ignore (Deviation_eval.cost c [| 9 |]))

(* --- the distance-row engine --- *)

let fixed e = Deviation_eval.Fixed e
let rows_of ?budget ?row_cache_cap version p player =
  Deviation_eval.make ?budget ?row_cache_cap
    ~engine:(fixed Deviation_eval.Rows) version p ~player
let bfs_of version p player =
  Deviation_eval.make ~engine:(fixed Deviation_eval.Bfs_overlay) version p ~player

let test_engine_names () =
  List.iter
    (fun e ->
      check_true "engine name round trip"
        (Deviation_eval.engine_of_name (Deviation_eval.engine_name e) = Some e))
    [ Deviation_eval.Bfs_overlay; Deviation_eval.Rows ];
  check_true "auto round trip"
    (Deviation_eval.choice_of_name "auto" = Some Deviation_eval.Auto);
  check_true "fixed round trip"
    (Deviation_eval.choice_of_name "rows"
    = Some (fixed Deviation_eval.Rows));
  check_true "unknown rejected" (Deviation_eval.choice_of_name "fast" = None)

let test_engine_resolution () =
  (* Auto picks rows only once a scan can reuse rows across candidates,
     i.e. player budget >= 2; Fixed always wins *)
  let b = Budget.of_list [ 2; 1; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [| 0 |]; [||]; [||] |] in
  let engine_of ?engine player =
    Deviation_eval.engine (Deviation_eval.make ?engine Cost.Sum p ~player)
  in
  check_true "auto at b=2 is rows"
    (engine_of ~engine:Deviation_eval.Auto 0 = Deviation_eval.Rows);
  check_true "auto at b=1 is bfs"
    (engine_of ~engine:Deviation_eval.Auto 1 = Deviation_eval.Bfs_overlay);
  check_true "fixed bfs wins at b=2"
    (engine_of ~engine:(fixed Deviation_eval.Bfs_overlay) 0
    = Deviation_eval.Bfs_overlay);
  check_true "fixed rows wins at b=1"
    (engine_of ~engine:(fixed Deviation_eval.Rows) 1 = Deviation_eval.Rows)

let test_duplicate_target_rejected () =
  (* a duplicate under-spends the budget while pricing as if legal:
     both engines must reject it, not silently deduplicate *)
  let b = Budget.of_list [ 2; 0; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [||]; [||]; [||] |] in
  List.iter
    (fun c ->
      Alcotest.check_raises "duplicate"
        (Invalid_argument "Deviation_eval.cost: duplicate target") (fun () ->
          ignore (Deviation_eval.cost c [| 3; 3 |])))
    [ bfs_of Cost.Sum p 0; rows_of Cost.Sum p 0 ]

let test_rows_eviction_keeps_answers_exact () =
  (* a cap of 1 forces an eviction on nearly every evaluation; answers
     must stay identical to the overlay engine throughout, and the
     eviction counter must actually move *)
  let p = Bbng_constructions.Tripod.profile ~k:3 in
  let player = 0 in
  List.iter
    (fun version ->
      let r = rows_of ~row_cache_cap:1 version p player in
      let b = bfs_of version p player in
      let n = Strategy.n p in
      let evicted0 = Bbng_obs.Counter.find "deveval.rows_evicted" in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u < v && u <> player && v <> player then
            check_int
              (Printf.sprintf "%s {%d,%d}" (Cost.version_name version) u v)
              (Deviation_eval.cost b [| u; v |])
              (Deviation_eval.cost r [| u; v |])
        done
      done;
      check_true "evictions happened under cap 1"
        (Bbng_obs.Counter.find "deveval.rows_evicted" > evicted0))
    Cost.all_versions

let test_rows_budget_charges_work () =
  (* row builds and combines spend work: a work_limit:0 token lets the
     first evaluation finish (checkpoint precedes any spend) and stops
     the second at its checkpoint *)
  let module Budgeted = Bbng_obs.Budgeted in
  let b = Budget.of_list [ 2; 1; 1; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [| 2 |]; [| 3 |]; [||] |] in
  let budget = Budgeted.create ~work_limit:0 () in
  let c = rows_of ~budget Cost.Sum p 0 in
  ignore (Deviation_eval.cost c [| 1; 3 |]);
  Alcotest.check_raises "second eval trips" Budgeted.Expired (fun () ->
      ignore (Deviation_eval.cost c [| 1; 3 |]))

let prop_rows_equals_bfs =
  (* the tentpole exactness oracle: on random (frequently disconnected)
     profiles, the distance-row engine prices every candidate exactly
     like the overlay BFS, for MAX and SUM, full and partial target
     sets, with rows reused across evaluations of one context *)
  qcheck ~count:200 "rows engine == overlay BFS engine"
    (random_budget_gen ~n_min:2 ~n_max:9) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let st = rng (seed + 23) in
      let player = Random.State.int st n in
      let candidates =
        List.init 4 (fun _ ->
            let alt = Strategy.random st (Strategy.budgets p) in
            let targets = Strategy.strategy alt player in
            let keep = Random.State.int st (Array.length targets + 1) in
            Array.sub targets 0 keep)
      in
      List.for_all
        (fun version ->
          let r = rows_of version p player in
          let b = bfs_of version p player in
          List.for_all
            (fun targets ->
              Deviation_eval.cost r targets = Deviation_eval.cost b targets)
            candidates)
        Cost.all_versions)

let prop_equivalent_to_generic =
  qcheck ~count:200 "incremental evaluator == generic deviation cost"
    (random_budget_gen ~n_min:2 ~n_max:9) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let st = rng (seed + 17) in
      let player = Random.State.int st n in
      let alt = Strategy.random st (Strategy.budgets p) in
      let targets = Strategy.strategy alt player in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          Game.deviation_cost game p ~player ~targets
          = Deviation_eval.cost (ctx version p player) targets)
        Cost.all_versions)

let prop_current_cost_equivalent =
  qcheck ~count:100 "current_cost == Game.player_cost"
    (random_budget_gen ~n_min:1 ~n_max:9) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let player = seed mod n in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          Game.player_cost game p player
          = Deviation_eval.current_cost (ctx version p player))
        Cost.all_versions)

let suite =
  [
    case "accessors" test_accessors;
    case "current cost matches game" test_current_cost_matches_game;
    case "cost matches deviation_cost" test_cost_matches_deviation_cost;
    case "kappa counting" test_kappa_counting;
    case "partial target sets" test_partial_targets;
    case "scratch reuse" test_reuse_across_calls;
    case "validation" test_validation;
    case "engine names" test_engine_names;
    case "engine resolution" test_engine_resolution;
    case "duplicate target rejected" test_duplicate_target_rejected;
    case "rows eviction stays exact" test_rows_eviction_keeps_answers_exact;
    case "rows budget charges work" test_rows_budget_charges_work;
    prop_rows_equals_bfs;
    prop_equivalent_to_generic;
    prop_current_cost_equivalent;
  ]
