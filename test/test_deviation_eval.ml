open Helpers
open Bbng_core

let ctx version p player = Deviation_eval.make version p ~player

let test_accessors () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:5 in
  let c = ctx Cost.Sum p 2 in
  check_int "player" 2 (Deviation_eval.player c);
  check_true "version" (Deviation_eval.version c = Cost.Sum)

let test_current_cost_matches_game () =
  let p = Bbng_constructions.Binary_tree.profile ~depth:2 in
  List.iter
    (fun version ->
      let game = Game.make version (Strategy.budgets p) in
      for player = 0 to Strategy.n p - 1 do
        check_int
          (Printf.sprintf "%s player %d" (Cost.version_name version) player)
          (Game.player_cost game p player)
          (Deviation_eval.current_cost (ctx version p player))
      done)
    Cost.all_versions

let test_cost_matches_deviation_cost () =
  (* hand-picked deviations incl. ones that disconnect the graph *)
  let b = Budget.of_list [ 2; 1; 0; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [| 3 |]; [||]; [||]; [||] |] in
  List.iter
    (fun version ->
      let game = Game.make version b in
      let c = ctx version p 0 in
      List.iter
        (fun targets ->
          check_int
            (Printf.sprintf "%s {%s}" (Cost.version_name version)
               (String.concat ","
                  (List.map string_of_int (Array.to_list targets))))
            (Game.deviation_cost game p ~player:0 ~targets)
            (Deviation_eval.cost c targets))
        [ [| 1; 2 |]; [| 1; 4 |]; [| 3; 4 |]; [| 2; 4 |]; [| 1; 3 |] ])
    Cost.all_versions

let test_kappa_counting () =
  (* everything isolated except the player's arcs: deviating to one
     vertex leaves three components (player+target, and two singletons) *)
  let b = Budget.of_list [ 1; 0; 0; 0 ] in
  let p = Strategy.make b [| [| 1 |]; [||]; [||]; [||] |] in
  let c = ctx Cost.Max p 0 in
  (* kappa = 3: {0,1}, {2}, {3}; cost = 16 + 2*16 *)
  check_int "kappa term" (16 + 2 * 16) (Deviation_eval.cost c [| 1 |]);
  let game = Game.make Cost.Max b in
  check_int "agrees with game" (Game.deviation_cost game p ~player:0 ~targets:[| 1 |])
    (Deviation_eval.cost c [| 1 |])

let test_partial_targets () =
  (* the greedy heuristic evaluates fewer targets than the budget *)
  let b = Budget.of_list [ 2; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2 |]; [||]; [||] |] in
  let c = ctx Cost.Sum p 0 in
  (* one arc only: reach 1 at distance 1, vertex 2 unreachable (9) *)
  check_int "partial" (1 + 9) (Deviation_eval.cost c [| 1 |]);
  check_int "empty" (9 + 9) (Deviation_eval.cost c [||])

let test_reuse_across_calls () =
  (* scratch reuse must not leak state between evaluations *)
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:8 in
  let c = ctx Cost.Sum p 4 in
  let first = Deviation_eval.cost c [| 0 |] in
  let _ = Deviation_eval.cost c [| 5 |] in
  let _ = Deviation_eval.cost c [| 7 |] in
  check_int "same answer after reuse" first (Deviation_eval.cost c [| 0 |])

let test_validation () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:4 in
  let c = ctx Cost.Sum p 1 in
  Alcotest.check_raises "self"
    (Invalid_argument "Deviation_eval.cost: self target") (fun () ->
      ignore (Deviation_eval.cost c [| 1 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Deviation_eval.cost: target out of range") (fun () ->
      ignore (Deviation_eval.cost c [| 9 |]))

let prop_equivalent_to_generic =
  qcheck ~count:200 "incremental evaluator == generic deviation cost"
    (random_budget_gen ~n_min:2 ~n_max:9) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let st = rng (seed + 17) in
      let player = Random.State.int st n in
      let alt = Strategy.random st (Strategy.budgets p) in
      let targets = Strategy.strategy alt player in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          Game.deviation_cost game p ~player ~targets
          = Deviation_eval.cost (ctx version p player) targets)
        Cost.all_versions)

let prop_current_cost_equivalent =
  qcheck ~count:100 "current_cost == Game.player_cost"
    (random_budget_gen ~n_min:1 ~n_max:9) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let player = seed mod n in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          Game.player_cost game p player
          = Deviation_eval.current_cost (ctx version p player))
        Cost.all_versions)

let suite =
  [
    case "accessors" test_accessors;
    case "current cost matches game" test_current_cost_matches_game;
    case "cost matches deviation_cost" test_cost_matches_deviation_cost;
    case "kappa counting" test_kappa_counting;
    case "partial target sets" test_partial_targets;
    case "scratch reuse" test_reuse_across_calls;
    case "validation" test_validation;
    prop_equivalent_to_generic;
    prop_current_cost_equivalent;
  ]
