open Helpers
module Digraph = Bbng_graph.Digraph

let triangle () = Digraph.of_arcs ~n:3 [ (0, 1); (1, 2); (2, 0) ]
let braced () = Digraph.of_arcs ~n:4 [ (0, 1); (1, 0); (1, 2); (3, 2) ]

let test_create_empty () =
  let g = Digraph.create ~n:4 in
  check_int "n" 4 (Digraph.n g);
  check_int "arcs" 0 (Digraph.arc_count g);
  check_int "out-degree" 0 (Digraph.out_degree g 2)

let test_of_arcs_basic () =
  let g = triangle () in
  check_int "arc count" 3 (Digraph.arc_count g);
  check_true "0->1" (Digraph.mem_arc g 0 1);
  check_false "1->0" (Digraph.mem_arc g 1 0);
  check_int "out-degree 0" 1 (Digraph.out_degree g 0);
  check_int "in-degree 0" 1 (Digraph.in_degree g 0);
  check_int "degree" 2 (Digraph.degree g 0)

let test_sorted_neighbors () =
  let g = Digraph.of_arcs ~n:5 [ (0, 4); (0, 2); (0, 1) ] in
  check_int_array "out sorted" [| 1; 2; 4 |] (Digraph.out_neighbors g 0)

let test_in_neighbors () =
  let g = Digraph.of_arcs ~n:4 [ (3, 1); (0, 1); (2, 1) ] in
  check_int_array "in sorted" [| 0; 2; 3 |] (Digraph.in_neighbors g 1)

let test_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph: self-loop at 1")
    (fun () -> ignore (Digraph.of_arcs ~n:3 [ (1, 1) ]))

let test_rejects_duplicate () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Digraph: duplicate arc 0->2")
    (fun () -> ignore (Digraph.of_arcs ~n:3 [ (0, 2); (0, 2) ]))

let test_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Digraph: vertex 5 out of range [0,3)") (fun () ->
      ignore (Digraph.of_arcs ~n:3 [ (0, 5) ]))

let test_arcs_listing () =
  let g = triangle () in
  check_true "arc list" (Digraph.arcs g = [ (0, 1); (1, 2); (2, 0) ])

let test_braces () =
  let g = braced () in
  check_true "brace list" (Digraph.braces g = [ (0, 1) ]);
  check_true "is_brace" (Digraph.is_brace g 0 1);
  check_true "is_brace sym" (Digraph.is_brace g 1 0);
  check_false "1-2 not brace" (Digraph.is_brace g 1 2);
  check_true "0 in brace" (Digraph.in_some_brace g 0);
  check_false "3 not in brace" (Digraph.in_some_brace g 3)

let test_brace_degree_counts_twice () =
  let g = Digraph.of_arcs ~n:2 [ (0, 1); (1, 0) ] in
  check_int "degree with brace" 2 (Digraph.degree g 0)

let test_reverse () =
  let g = Digraph.reverse (triangle ()) in
  check_true "reversed arc" (Digraph.mem_arc g 1 0);
  check_false "old arc gone" (Digraph.mem_arc g 0 1);
  check_int "arc count preserved" 3 (Digraph.arc_count g)

let test_reverse_involution () =
  let g = braced () in
  check_true "reverse twice" (Digraph.equal g (Digraph.reverse (Digraph.reverse g)))

let test_replace_out_neighbors () =
  let g = triangle () in
  let g' = Digraph.replace_out_neighbors g 0 [| 2 |] in
  check_true "new arc" (Digraph.mem_arc g' 0 2);
  check_false "old arc" (Digraph.mem_arc g' 0 1);
  check_true "others untouched" (Digraph.mem_arc g' 1 2);
  (* original unchanged *)
  check_true "persistence" (Digraph.mem_arc g 0 1)

let test_equal () =
  check_true "structural equality" (Digraph.equal (triangle ()) (triangle ()));
  check_false "different graphs"
    (Digraph.equal (triangle ()) (Digraph.of_arcs ~n:3 [ (0, 1) ]))

let test_of_out_neighbors () =
  let g = Digraph.of_out_neighbors [| [| 2; 1 |]; [||]; [| 0 |] |] in
  check_int "arc count" 3 (Digraph.arc_count g);
  check_int_array "sorted" [| 1; 2 |] (Digraph.out_neighbors g 0)

let prop_arc_count_consistent =
  qcheck "arc_count = sum of out-degrees" (gnp_gen ~n_min:1 ~n_max:12)
    (fun (n, seed) ->
      let u = random_gnp_of (n, seed) in
      (* orient every edge from the smaller endpoint *)
      let g =
        Digraph.of_arcs ~n (Bbng_graph.Undirected.edges u)
      in
      let total = ref 0 in
      for v = 0 to n - 1 do
        total := !total + Digraph.out_degree g v
      done;
      !total = Digraph.arc_count g)

let prop_in_out_duality =
  qcheck "reverse swaps in/out degrees" (gnp_gen ~n_min:1 ~n_max:12)
    (fun (n, seed) ->
      let u = random_gnp_of (n, seed) in
      let g = Digraph.of_arcs ~n (Bbng_graph.Undirected.edges u) in
      let r = Digraph.reverse g in
      let ok = ref true in
      for v = 0 to n - 1 do
        if Digraph.out_degree g v <> Digraph.in_degree r v then ok := false;
        if Digraph.in_degree g v <> Digraph.out_degree r v then ok := false
      done;
      !ok)

let suite =
  [
    case "create empty" test_create_empty;
    case "of_arcs basics" test_of_arcs_basic;
    case "neighbors sorted" test_sorted_neighbors;
    case "in-neighbors" test_in_neighbors;
    case "rejects self-loop" test_rejects_self_loop;
    case "rejects duplicate arc" test_rejects_duplicate;
    case "rejects out-of-range" test_rejects_out_of_range;
    case "arcs listing" test_arcs_listing;
    case "braces" test_braces;
    case "brace degree multiplicity" test_brace_degree_counts_twice;
    case "reverse" test_reverse;
    case "reverse involution" test_reverse_involution;
    case "replace_out_neighbors" test_replace_out_neighbors;
    case "equality" test_equal;
    case "of_out_neighbors" test_of_out_neighbors;
    prop_arc_count_consistent;
    prop_in_out_duality;
  ]
