open Helpers
open Bbng_core

let test_canonical_realization_diameter () =
  List.iter
    (fun budgets ->
      let b = Budget.of_list budgets in
      let p = Poa.canonical_low_diameter_realization b in
      let d = Cost.social_cost (Strategy.underlying p) in
      check_true
        (Printf.sprintf "diameter <= 4 for %s"
           (String.concat "," (List.map string_of_int budgets)))
        (d <= 4))
    [
      [ 1; 1; 1 ];
      [ 0; 1; 1; 1 ];
      [ 0; 0; 0; 3 ];
      [ 0; 0; 1; 2 ];
      [ 2; 2; 2; 2 ];
      [ 0; 0; 0; 0; 3; 2 ];
      [ 1; 1; 1; 1; 1; 1; 1 ];
    ]

let test_canonical_realization_star_case () =
  (* a single max-budget player covering everyone: diameter <= 2 *)
  let b = Budget.of_list [ 0; 0; 0; 3 ] in
  let p = Poa.canonical_low_diameter_realization b in
  check_true "diameter <= 2" (Cost.social_cost (Strategy.underlying p) <= 2)

let test_canonical_subcritical () =
  let b = Budget.of_list [ 0; 0; 1; 0 ] in
  let p = Poa.canonical_low_diameter_realization b in
  check_int "disconnected" (Cost.cinf ~n:4) (Cost.social_cost (Strategy.underlying p))

let test_opt_exact_tiny () =
  (* unit budgets n=3: triangle realizable, diameter 1 *)
  check_true "triangle" (Poa.opt_diameter_exact (Budget.unit_budgets 3) = Some 1);
  (* (1,1,1,1): 4 vertices 4 edges, best diameter is 2 *)
  check_true "n=4 unit" (Poa.opt_diameter_exact (Budget.unit_budgets 4) = Some 2);
  (* tree instance (0,1,1,1): 3 edges on 4 vertices: best is a star, 2 *)
  check_true "tree" (Poa.opt_diameter_exact (Budget.of_list [ 0; 1; 1; 1 ]) = Some 2)

let test_opt_exact_refuses_large () =
  check_true "refuses"
    (Poa.opt_diameter_exact ~max_profiles:10 (Budget.uniform ~n:8 ~budget:3) = None)

let test_opt_bounds () =
  let lo, hi = Poa.opt_diameter_bounds (Budget.of_list [ 0; 1; 1; 1 ]) in
  check_true "lo" (lo = 2);
  check_true "hi sane" (hi >= 2 && hi <= 4);
  let lo, hi = Poa.opt_diameter_bounds (Budget.of_list [ 2; 2; 2 ]) in
  check_int "complete possible: lo 1" 1 lo;
  check_true "hi small" (hi <= 2);
  let lo, hi = Poa.opt_diameter_bounds (Budget.of_list [ 0; 0; 1; 0 ]) in
  check_int "subcritical lo" 16 lo;
  check_int "subcritical hi" 16 hi

let test_opt_bounds_bracket_exact () =
  List.iter
    (fun budgets ->
      let b = Budget.of_list budgets in
      match Poa.opt_diameter_exact b with
      | None -> ()
      | Some opt ->
          let lo, hi = Poa.opt_diameter_bounds b in
          check_true
            (Printf.sprintf "bracket for %s"
               (String.concat "," (List.map string_of_int budgets)))
            (lo <= opt && opt <= hi))
    [ [ 1; 1; 1 ]; [ 0; 1; 1; 1 ]; [ 1; 1; 1; 1 ]; [ 0; 0; 2; 1 ]; [ 2; 2; 2 ] ]

let test_ratio () =
  let r = { Poa.num = 6; den = 2 } in
  check_true "float" (Poa.ratio_to_float r = 3.0)

let test_exact_prices_unit4 () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  match Poa.exact_prices game with
  | Some { Poa.anarchy; stability } ->
      check_true "stability <= anarchy"
        (Poa.ratio_to_float stability <= Poa.ratio_to_float anarchy);
      check_int "opt denominators agree" anarchy.Poa.den stability.Poa.den;
      (* OPT = 2 here; equilibria have diameter between 2 and 4 (Thm 4.1) *)
      check_int "den" 2 anarchy.Poa.den;
      check_true "anarchy diameter bounded" (anarchy.Poa.num <= 4)
  | None -> Alcotest.fail "small instance should be solvable"

let test_exact_prices_too_large () =
  let game = Game.make Cost.Sum (Budget.uniform ~n:9 ~budget:3) in
  check_true "refuses" (Poa.exact_prices ~max_profiles:100 game = None)

let test_anarchy_lower_bound () =
  (* tripod k=3: n=10, equilibrium diameter 6, OPT upper <= 4 *)
  let b = Bbng_constructions.Tripod.budgets ~k:3 in
  let r = Poa.anarchy_lower_bound ~equilibrium_diameter:6 b in
  check_int "numerator" 6 r.Poa.num;
  check_true "meaningful bound" (Poa.ratio_to_float r >= 1.5)

let test_welfare_prices () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  match Poa.exact_welfare_prices game with
  | Some { Poa.anarchy; stability } ->
      check_true "stability <= anarchy"
        (Poa.ratio_to_float stability <= Poa.ratio_to_float anarchy);
      check_true "anarchy >= 1" (Poa.ratio_to_float anarchy >= 1.0);
      (* on (1,1,1,1) every equilibrium has diameter 2 and the same
         welfare structure; the welfare PoA stays close to 1 *)
      check_true "welfare PoA small" (Poa.ratio_to_float anarchy <= 1.5)
  | None -> Alcotest.fail "small instance should be solvable"

let test_welfare_refuses_large () =
  let game = Game.make Cost.Sum (Budget.uniform ~n:9 ~budget:3) in
  check_true "refuses" (Poa.exact_welfare_prices ~max_profiles:100 game = None)

let prop_canonical_realization_valid =
  qcheck "canonical realization is always a valid profile"
    (random_budget_gen ~n_min:1 ~n_max:10) (fun input ->
      let b = random_budget_of input in
      let p = Poa.canonical_low_diameter_realization b in
      Strategy.n p = Budget.n b)

let prop_canonical_connectable_diameter4 =
  qcheck "canonical realization has diameter <= 4 when connectable"
    (random_budget_gen ~n_min:2 ~n_max:12) (fun input ->
      let b = random_budget_of input in
      let p = Poa.canonical_low_diameter_realization b in
      (not (Budget.connectable b))
      || Cost.social_cost (Strategy.underlying p) <= 4)

let suite =
  [
    case "canonical realization diameter" test_canonical_realization_diameter;
    case "canonical star case" test_canonical_realization_star_case;
    case "canonical subcritical" test_canonical_subcritical;
    case "opt exact on tiny instances" test_opt_exact_tiny;
    case "opt exact refuses large" test_opt_exact_refuses_large;
    case "opt bounds" test_opt_bounds;
    case "bounds bracket exact" test_opt_bounds_bracket_exact;
    case "ratio" test_ratio;
    slow_case "exact prices on (1,1,1,1)" test_exact_prices_unit4;
    case "exact prices refuses large" test_exact_prices_too_large;
    case "anarchy lower bound" test_anarchy_lower_bound;
    slow_case "welfare prices" test_welfare_prices;
    case "welfare refuses large" test_welfare_refuses_large;
    prop_canonical_realization_valid;
    prop_canonical_connectable_diameter4;
  ]
