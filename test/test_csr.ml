(* The flat CSR engine against the retained legacy walker: structure
   of the snapshot itself, the per-domain memo, and qcheck oracles
   pinning CSR BFS and the iFUB diameter to the adjacency-walking
   implementations over random gnp / tree / disconnected inputs. *)

open Helpers
module Bfs = Bbng_graph.Bfs
module Csr = Bbng_graph.Csr
module Distances = Bbng_graph.Distances
module Generators = Bbng_graph.Generators

let test_structure () =
  let c = Csr.of_undirected path5 in
  check_int "n" 5 (Csr.n c);
  check_int "arcs = 2m" 8 (Csr.arc_count c);
  check_int "end degree" 1 (Csr.degree c 0);
  check_int "middle degree" 2 (Csr.degree c 2);
  let empty = Csr.of_undirected (Undirected.of_edges ~n:3 []) in
  check_int "edgeless arcs" 0 (Csr.arc_count empty);
  check_int "edgeless degree" 0 (Csr.degree empty 1)

let test_snapshot_memo () =
  let c1 = Csr.snapshot path5 in
  let c2 = Csr.snapshot path5 in
  check_true "same graph hits the memo" (c1 == c2);
  check_int "version stamp" (Undirected.id path5) (Csr.graph_id c1);
  let c3 = Csr.snapshot cycle6 in
  check_false "other graph rebuilds" (Obj.repr c1 == Obj.repr c3);
  check_true "and re-snapshotting it hits again" (Csr.snapshot cycle6 == c3)

let test_bfs_into () =
  let c = Csr.snapshot path5 in
  let dist = Array.make 5 9 and queue = Array.make 5 0 in
  check_int "popped" 5 (Csr.bfs_into c ~src:2 ~dist ~queue);
  check_int_array "distances" [| 2; 1; 0; 1; 2 |] dist;
  let c2 = Csr.snapshot two_triangles in
  let dist = Array.make 6 9 and queue = Array.make 6 0 in
  check_int "popped stops at the component" 3 (Csr.bfs_into c2 ~src:0 ~dist ~queue);
  check_int "unreachable sentinel" (-1) dist.(4)

let test_bfs_into_validation () =
  let c = Csr.snapshot path5 in
  let dist = Array.make 5 0 and queue = Array.make 5 0 in
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Csr.bfs_into: source 5 out of range [0,5)") (fun () ->
      ignore (Csr.bfs_into c ~src:5 ~dist ~queue));
  Alcotest.check_raises "short scratch"
    (Invalid_argument "Csr.bfs_into: scratch arrays shorter than n") (fun () ->
      ignore (Csr.bfs_into c ~src:0 ~dist:(Array.make 3 0) ~queue));
  Alcotest.check_raises "empty sources"
    (Invalid_argument "Csr.bfs_set_into: empty source set") (fun () ->
      ignore (Csr.bfs_set_into c ~sources:[] ~dist ~queue))

let test_budget_expiry () =
  let module Budgeted = Bbng_obs.Budgeted in
  let c = Csr.snapshot path5 in
  let dist = Array.make 5 0 and queue = Array.make 5 0 in
  let budget = Budgeted.create ~work_limit:0 () in
  check_int "first sweep finishes" 5 (Csr.bfs_into ~budget c ~src:0 ~dist ~queue);
  Alcotest.check_raises "second trips at the checkpoint" Budgeted.Expired
    (fun () -> ignore (Csr.bfs_into ~budget c ~src:0 ~dist ~queue))

(* The oracles: same graphs through both engines.  random_gnp_of gives
   disconnected inputs often at these sizes, random_connected_of the
   dense small-world shape (where the sweep goes bottom-up), and
   random_tree the deep-levels shape (where it stays top-down). *)

let graphs_agree g =
  let n = Undirected.n g in
  let rows_ok = ref true in
  for u = 0 to n - 1 do
    if Bfs.distances g u <> Bfs.legacy_distances g u then rows_ok := false
  done;
  let legacy_diam =
    Distances.fold_eccentricities g (fun a _ e -> max a e) 0
  in
  !rows_ok && Distances.diameter g = legacy_diam

let prop_csr_matches_legacy_gnp =
  qcheck "CSR == legacy on gnp (disconnected allowed)"
    (gnp_gen ~n_min:1 ~n_max:30) (fun input ->
      graphs_agree (random_gnp_of input))

let prop_csr_matches_legacy_connected =
  qcheck "CSR == legacy on connected gnp" (gnp_gen ~n_min:2 ~n_max:30)
    (fun input -> graphs_agree (random_connected_of input))

let prop_csr_matches_legacy_trees =
  qcheck "CSR == legacy on random trees" (gnp_gen ~n_min:1 ~n_max:40)
    (fun (n, seed) -> graphs_agree (Generators.random_tree (rng seed) n))

let prop_multi_source_matches_legacy =
  qcheck "CSR multi-source == per-source minimum"
    (gnp_gen ~n_min:2 ~n_max:20) (fun input ->
      let g = random_gnp_of input in
      let n = Undirected.n g in
      let sources = [ 0; n / 2; n - 1 ] in
      let multi = Bfs.distances_from_set g sources in
      let singles = List.map (Bfs.legacy_distances g) sources in
      let ok = ref true in
      for v = 0 to n - 1 do
        let best =
          List.fold_left
            (fun acc d ->
              if d.(v) = Bfs.unreachable then acc
              else
                match acc with
                | None -> Some d.(v)
                | Some b -> Some (min b d.(v)))
            None singles
        in
        let expected = match best with None -> Bfs.unreachable | Some b -> b in
        if multi.(v) <> expected then ok := false
      done;
      !ok)

let suite =
  [
    case "snapshot structure" test_structure;
    case "snapshot memo" test_snapshot_memo;
    case "bfs_into" test_bfs_into;
    case "bfs_into validation" test_bfs_into_validation;
    case "budget expiry" test_budget_expiry;
    prop_csr_matches_legacy_gnp;
    prop_csr_matches_legacy_connected;
    prop_csr_matches_legacy_trees;
    prop_multi_source_matches_legacy;
  ]
