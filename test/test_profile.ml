(* Call-path attribution (Bbng_obs.Profile) and the sharded Span table.

   The load-bearing properties, straight from the ISSUE's acceptance
   criteria: folded per-name totals equal the flat Span totals exactly
   (integer telescoping, not approximation); out-of-order and double
   closes never corrupt a domain's path stack; offline reconstruction
   from recorded span events matches the live profile; multi-domain
   span totals equal single-domain totals now that the table is
   sharded; and torn .partial recordings still flame. *)

open Helpers
open Bbng_core
module Span = Bbng_obs.Span
module Profile = Bbng_obs.Profile
module Sink = Bbng_obs.Sink
module Json = Bbng_obs.Json
module Histogram = Bbng_obs.Histogram
module Trace_export = Bbng_obs.Trace_export

(* Every test drives the process-global span/profile state: snapshot
   the enabled flags, start from empty tables, and restore on the way
   out so the rest of the suite is unaffected. *)
let scoped f =
  let span_was = Span.enabled () and prof_was = Profile.enabled () in
  Span.set_enabled true;
  Profile.set_enabled true;
  Span.reset_all ();
  Profile.reset_all ();
  Fun.protect
    ~finally:(fun () ->
      Span.reset_all ();
      Profile.reset_all ();
      Span.set_enabled span_was;
      Profile.set_enabled prof_was)
    f

(* busy-wait long enough that consecutive span starts land on distinct
   microsecond ticks — what the offline start/duration containment
   reconstruction needs to tell siblings from children *)
let tick () =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < 50e-6 do
    ignore (Sys.opaque_identity (Array.make 16 0))
  done

(* --- exact folded == flat equality --- *)

let span_totals () = Span.snapshot ()

let check_name_totals_match_flat ~eps_minor () =
  let flat = span_totals () in
  let rolled = Profile.name_totals (Profile.snapshot ()) in
  check_int "one rollup entry per span family" (List.length flat)
    (List.length rolled);
  List.iter
    (fun (name, (s : Span.stat)) ->
      match List.assoc_opt name rolled with
      | None -> Alcotest.failf "span %S missing from the path rollup" name
      | Some (p : Profile.stat) ->
          check_int (name ^ ": counts agree") s.Span.count p.Profile.count;
          check_int (name ^ ": self-ns telescopes to the flat total")
            s.Span.total_ns p.Profile.self_ns;
          if
            Float.abs (s.Span.minor_words -. p.Profile.self_minor_words)
            > eps_minor *. (1. +. Float.abs s.Span.minor_words)
          then
            Alcotest.failf "%s: minor words diverge: flat %f vs rolled %f" name
              s.Span.minor_words p.Profile.self_minor_words)
    flat

let test_nested_attribution () =
  scoped (fun () ->
      Span.with_ "pa" (fun () ->
          tick ();
          Span.with_ "pb" (fun () -> tick ());
          Span.with_ "pb" (fun () ->
              tick ();
              Span.with_ "pc" (fun () -> tick ())));
      Span.with_ "pc" (fun () -> tick ());
      let snap = Profile.snapshot () in
      let paths = List.map fst snap in
      List.iter
        (fun expected ->
          check_true ("path recorded: " ^ expected)
            (List.mem expected paths))
        [ "pa"; "pa;pb"; "pa;pb;pc"; "pc" ];
      check_int "no other paths" 4 (List.length snap);
      let stat path = List.assoc path snap in
      check_int "pb closed twice at its path" 2 (stat "pa;pb").Profile.count;
      check_name_totals_match_flat ~eps_minor:1e-9 ())

(* random well-nested trees, with recursion in the name alphabet so the
   per-name rollup's multiplicity weighting is exercised (a path like
   ta;tb;ta counts its self values once per occurrence of ta) *)
type tree = T of string * tree list

let tree_gen =
  let open QCheck.Gen in
  let name = map (fun i -> [| "ta"; "tb"; "tc" |].(i)) (int_range 0 2) in
  sized_size (int_range 1 12)
  @@ fix (fun self n ->
         if n <= 1 then map (fun nm -> T (nm, [])) name
         else
           map2 (fun nm kids -> T (nm, kids)) name
             (list_size (int_range 0 3) (self (n / 4))))

let rec run_tree (T (name, kids)) =
  Span.with_ name (fun () ->
      ignore (Sys.opaque_identity (Array.make 32 0));
      List.iter run_tree kids)

let test_random_trees_exact =
  qcheck ~count:60 "folded per-name totals == flat Span totals"
    (QCheck.make tree_gen)
    (fun tree ->
      scoped (fun () ->
          run_tree tree;
          check_name_totals_match_flat ~eps_minor:1e-6 ();
          true))

(* --- out-of-order / double-close robustness --- *)

(* Random interleavings straight on the Span API: enter a few spans,
   close them (and re-close some) in arbitrary order.  Nothing may
   raise, the stack must drain to depth 0 once every handle is closed,
   and a subsequent span must open at a clean depth-0 path. *)
let test_out_of_order =
  qcheck ~count:100 "random close orders never corrupt the stack"
    QCheck.(pair (int_range 1 8) (int_range 0 1_000_000))
    (fun (n, seed) ->
      scoped (fun () ->
          let st = Random.State.make [| 0xF01D; seed |] in
          let handles =
            Array.init n (fun i -> Span.enter (Printf.sprintf "oo%d" i))
          in
          (* close in a random permutation, with some double closes *)
          let order = Array.init n (fun i -> i) in
          for i = n - 1 downto 1 do
            let j = Random.State.int st (i + 1) in
            let t = order.(i) in
            order.(i) <- order.(j);
            order.(j) <- t
          done;
          Array.iter
            (fun i ->
              Span.exit handles.(i);
              if Random.State.bool st then Span.exit handles.(i))
            order;
          check_int "stack drained" 0 (Profile.stack_depth ());
          Span.with_ "oo_fresh" (fun () -> ());
          let snap = Profile.snapshot () in
          check_true "fresh span gets a clean depth-0 path"
            (List.mem_assoc "oo_fresh" snap);
          (* every span recorded exactly once despite double closes *)
          let flat = span_totals () in
          List.for_all
            (fun (_, (s : Span.stat)) -> s.Span.count = 1)
            flat))

let test_double_close_records_once () =
  scoped (fun () ->
      let h = Span.enter "dc" in
      Span.exit h;
      Span.exit h;
      Span.exit h;
      check_int "one close, one count" 1
        (List.assoc "dc" (span_totals ())).Span.count;
      check_int "one profile record" 1
        (List.assoc "dc" (Profile.snapshot ())).Profile.count)

(* --- offline reconstruction (bbng_cli flame) --- *)

let record_to_events f =
  let file = Filename.temp_file "bbng_profile" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Sink.scoped (Sink.Jsonl oc) f);
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Trace_export.read_events ic))

let test_offline_matches_live () =
  scoped (fun () ->
      let events, skipped =
        record_to_events (fun () ->
            Span.with_ "fa" (fun () ->
                tick ();
                Span.with_ "fb" (fun () -> tick ());
                Span.with_ "fb" (fun () -> tick ()));
            Span.with_ "fc" (fun () -> tick ()))
      in
      check_int "clean recording" 0 skipped;
      let live = Profile.snapshot () in
      let offline = Profile.of_events events in
      check_int "same path set" (List.length live) (List.length offline);
      List.iter
        (fun (path, (l : Profile.stat)) ->
          match List.assoc_opt path offline with
          | None -> Alcotest.failf "path %S lost offline" path
          | Some (o : Profile.stat) ->
              check_int (path ^ ": count") l.Profile.count o.Profile.count;
              check_int (path ^ ": self-ns round-trips exactly")
                l.Profile.self_ns o.Profile.self_ns;
              if
                Float.abs (l.Profile.self_minor_words -. o.Profile.self_minor_words)
                > 1e-6 *. (1. +. Float.abs l.Profile.self_minor_words)
              then Alcotest.failf "%s: minor words diverge offline" path)
        live;
      (* and the folded renderings agree line for line *)
      Alcotest.(check (list string))
        "folded lines identical"
        (Profile.folded_lines Profile.Wall_ns live)
        (Profile.folded_lines Profile.Wall_ns offline))

let test_torn_partial_skips () =
  scoped (fun () ->
      let events, _ =
        record_to_events (fun () ->
            Span.with_ "torn_a" (fun () ->
                tick ();
                Span.with_ "torn_b" (fun () -> tick ())))
      in
      (* re-serialize, then truncate the last line mid-byte the way a
         SIGKILL mid-write would *)
      let file = Filename.temp_file "bbng_torn" ".jsonl.partial" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
        (fun () ->
          let oc = open_out file in
          List.iter
            (fun j ->
              output_string oc (Json.to_string j);
              output_char oc '\n')
            events;
          output_string oc "{\"event\":\"span\",\"name\":\"torn_c\",\"du";
          close_out oc;
          let ic = open_in file in
          let read, skipped =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> Trace_export.read_events ic)
          in
          check_int "torn line skipped" 1 skipped;
          let offline = Profile.of_events read in
          check_true "complete paths survive"
            (List.mem_assoc "torn_a" offline
            && List.mem_assoc "torn_a;torn_b" offline);
          check_false "torn span does not appear"
            (List.exists
               (fun (p, _) ->
                 String.length p >= 6 && String.sub p 0 6 = "torn_c")
               offline)))

(* --- sharding and parallel root propagation --- *)

let par_work ~domains n =
  Span.with_ "par_outer" (fun () ->
      ignore
        (Parallel.map ~domains ~n (fun i ->
             Span.with_ "par_inner" (fun () -> i * i))))

let test_multi_domain_totals =
  qcheck ~count:15 "multi-domain span totals == single-domain totals"
    QCheck.(int_range 8 200)
    (fun n ->
      let counts domains =
        scoped (fun () ->
            par_work ~domains n;
            ( List.map
                (fun (k, (s : Span.stat)) -> (k, s.Span.count))
                (span_totals ()),
              List.map
                (fun (k, (p : Profile.stat)) -> (k, p.Profile.count))
                (Profile.name_totals (Profile.snapshot ())) ))
      in
      let flat1, rolled1 = counts 1 in
      let flat4, rolled4 = counts 4 in
      flat1 = flat4 && rolled1 = rolled4
      && List.assoc "par_inner" flat1 = n)

let test_worker_paths_rooted () =
  scoped (fun () ->
      par_work ~domains:4 64;
      let snap = Profile.snapshot () in
      check_true "inner spans fold under the caller's path"
        (List.mem_assoc "par_outer;par_inner" snap);
      check_int "no orphaned inner path" 0
        (List.length (List.filter (fun (p, _) -> p = "par_inner") snap));
      check_int "every worker's closes attributed" 64
        (List.assoc "par_outer;par_inner" snap).Profile.count)

let test_concurrent_recording () =
  scoped (fun () ->
      let per_domain = 500 in
      check_true "all workers ran"
        (Parallel.for_all ~domains:4 ~n:(4 * per_domain) (fun _ ->
             Span.with_ "conc" (fun () -> ());
             true));
      check_int "sharded table lost nothing" (4 * per_domain)
        (List.assoc "conc" (span_totals ())).Span.count)

(* the merged-shard quantile path: aggregating a histogram's own bucket
   counts must reproduce its direct quantile estimates *)
let test_quantile_of_counts () =
  let h = Histogram.unregistered "q" in
  List.iter (Histogram.record h) [ 1; 2; 3; 10; 100; 1000; 5000 ];
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f" q)
        (Histogram.quantile h q)
        (Histogram.quantile_of_counts ~max_value:(Histogram.max_value h)
           (Histogram.bucket_counts h) q))
    [ 0.; 0.5; 0.9; 0.99; 1. ]

let suite =
  [
    case "nested attribution records full paths" test_nested_attribution;
    test_random_trees_exact;
    test_out_of_order;
    case "double close records once" test_double_close_records_once;
    case "offline reconstruction matches live profile" test_offline_matches_live;
    case "torn .partial still flames" test_torn_partial_skips;
    test_multi_domain_totals;
    case "parallel workers root under caller path" test_worker_paths_rooted;
    case "concurrent recording is lossless" test_concurrent_recording;
    case "quantile_of_counts matches direct quantile" test_quantile_of_counts;
  ]
