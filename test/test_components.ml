open Helpers
module Components = Bbng_graph.Components
module Undirected = Bbng_graph.Undirected

let test_connected () =
  check_true "path" (Components.is_connected path5);
  check_true "cycle" (Components.is_connected cycle6);
  check_false "two triangles" (Components.is_connected two_triangles)

let test_count () =
  check_int "one" 1 (Components.count path5);
  check_int "two" 2 (Components.count two_triangles);
  check_int "isolated vertices" 4 (Components.count (Undirected.of_edges ~n:4 []))

let test_labels () =
  let l = Components.components two_triangles in
  check_int "count" 2 l.Components.count;
  check_int "same label" l.Components.label.(0) l.Components.label.(2);
  check_true "different labels" (l.Components.label.(0) <> l.Components.label.(3));
  check_int "ids by smallest member" 0 l.Components.label.(0);
  check_int "second component id" 1 l.Components.label.(3)

let test_members_and_sizes () =
  let l = Components.components two_triangles in
  check_int_list "component 0" [ 0; 1; 2 ] (Components.component_members l 0);
  check_int_list "component 1" [ 3; 4; 5 ] (Components.component_members l 1);
  check_int_array "sizes" [| 3; 3 |] (Components.sizes l)

let test_same_component () =
  check_true "together" (Components.same_component two_triangles 3 5);
  check_false "apart" (Components.same_component two_triangles 0 3)

let test_empty_graph () =
  let g = Undirected.of_edges ~n:0 [] in
  check_int "zero components" 0 (Components.count g);
  check_true "empty is connected" (Components.is_connected g)

let test_is_connected_except () =
  (* star: removing the hub shatters it *)
  check_false "hub is a cut vertex" (Components.is_connected_except star7 [ 0 ]);
  check_true "leaf is not" (Components.is_connected_except star7 [ 3 ]);
  (* cycle: any single vertex leaves a path *)
  check_true "cycle minus one" (Components.is_connected_except cycle6 [ 0 ]);
  check_false "cycle minus opposite pair" (Components.is_connected_except cycle6 [ 0; 3 ]);
  check_true "cycle minus adjacent pair" (Components.is_connected_except cycle6 [ 0; 1 ]);
  (* removing everything is vacuously connected *)
  check_true "vacuous" (Components.is_connected_except path5 [ 0; 1; 2; 3; 4 ])

let prop_labels_partition =
  qcheck "labels partition the vertex set" (gnp_gen ~n_min:1 ~n_max:15)
    (fun input ->
      let g = random_gnp_of input in
      let l = Components.components g in
      let sizes = Components.sizes l in
      Array.fold_left ( + ) 0 sizes = Undirected.n g)

let prop_edges_within_components =
  qcheck "no edge crosses components" (gnp_gen ~n_min:1 ~n_max:15)
    (fun input ->
      let g = random_gnp_of input in
      let l = Components.components g in
      let ok = ref true in
      Undirected.iter_edges
        (fun u v ->
          if l.Components.label.(u) <> l.Components.label.(v) then ok := false)
        g;
      !ok)

let suite =
  [
    case "is_connected" test_connected;
    case "count" test_count;
    case "labels" test_labels;
    case "members and sizes" test_members_and_sizes;
    case "same_component" test_same_component;
    case "empty graph" test_empty_graph;
    case "is_connected_except" test_is_connected_except;
    prop_labels_partition;
    prop_edges_within_components;
  ]
