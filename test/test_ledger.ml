(* The run ledger (Bbng_obs.Ledger): row round-tripping with forward
   compatibility (alien/extra fields survive an old binary's rewrite),
   torn-line tolerance on load, the append/load cycle, and row
   recovery from a recorded event stream — the invariants `bbng_cli
   runs` and its rebuild path depend on. *)

open Helpers
module Json = Bbng_obs.Json
module Ledger = Bbng_obs.Ledger

let check_str = Alcotest.(check string)

let sample_row =
  {
    Ledger.run_id = "20260101T000000Z-1234-abcdef";
    ts = "2026-01-01T00:00:00Z";
    tool = "bbng_cli";
    subcommand = "dynamics";
    argv = [ "bbng_cli"; "dynamics"; "--seed"; "7" ];
    outcome = "converged";
    exit_code = 0;
    metrics =
      [
        ("dynamics.final_social_cost", Json.Int 2);
        ("dynamics.steps", Json.Int 6);
        ("dynamics.diagnosis", Json.Str "converging");
        ("bench.x.ns_per_run", Json.Float 812.5);
      ];
    counters = [ ("bfs.runs", 168); ("dynamics.steps_applied", 6) ];
    artifacts = [ "RUN.jsonl"; "CERT.json" ];
    report = Some "RUN.jsonl";
    report_digest = Some "aea6335a2194e35b9188339b661f5773";
    extra = [];
  }

let test_row_roundtrip () =
  match Ledger.row_of_json (Ledger.row_to_json sample_row) with
  | None -> Alcotest.fail "round trip lost the row"
  | Some r ->
      check_str "run_id" sample_row.Ledger.run_id r.Ledger.run_id;
      check_str "ts" sample_row.Ledger.ts r.Ledger.ts;
      check_str "tool" sample_row.Ledger.tool r.Ledger.tool;
      check_str "subcommand" sample_row.Ledger.subcommand r.Ledger.subcommand;
      Alcotest.(check (list string)) "argv" sample_row.Ledger.argv r.Ledger.argv;
      check_str "outcome" sample_row.Ledger.outcome r.Ledger.outcome;
      check_int "exit_code" sample_row.Ledger.exit_code r.Ledger.exit_code;
      check_int "metrics arity"
        (List.length sample_row.Ledger.metrics)
        (List.length r.Ledger.metrics);
      Alcotest.(check (list (pair string int)))
        "counters" sample_row.Ledger.counters r.Ledger.counters;
      Alcotest.(check (list string))
        "artifacts" sample_row.Ledger.artifacts r.Ledger.artifacts;
      Alcotest.(check (option string))
        "report_digest" sample_row.Ledger.report_digest r.Ledger.report_digest;
      check_true "no extra conjured" (r.Ledger.extra = [])

(* A "newer schema" row: unknown top-level keys, plus a known key with
   an unexpected shape.  An old binary must parse it (never raise),
   park both in [extra], and re-serialize them verbatim — that is what
   lets ledgers travel forward and backward across versions. *)
let test_alien_fields_preserved () =
  let alien =
    Json.Obj
      [
        ("schema", Json.Int 99);
        ("run_id", Json.Str "r-future");
        ("ts", Json.Str "2030-01-01T00:00:00Z");
        (* known key, wrong shape: exit_code as a string *)
        ("exit_code", Json.Str "not-an-int");
        (* fields this binary has never heard of *)
        ("gpu_ms", Json.Float 12.5);
        ("annotations", Json.List [ Json.Str "a"; Json.Str "b" ]);
      ]
  in
  match Ledger.row_of_json alien with
  | None -> Alcotest.fail "newer-schema row rejected"
  | Some r ->
      check_str "run_id" "r-future" r.Ledger.run_id;
      check_int "unknown exit_code reads as unknown (-1)" (-1)
        r.Ledger.exit_code;
      check_true "misfit exit_code preserved in extra"
        (List.mem_assoc "exit_code" r.Ledger.extra);
      check_true "gpu_ms preserved" (List.mem_assoc "gpu_ms" r.Ledger.extra);
      check_true "annotations preserved"
        (List.mem_assoc "annotations" r.Ledger.extra);
      (* rewrite survives: the serialized row still carries the alien
         fields for the newer binary to find *)
      let rewritten = Json.to_string (Ledger.row_to_json r) in
      check_true "rewrite keeps gpu_ms"
        (Json.member "gpu_ms" (Json.of_string rewritten) = Some (Json.Float 12.5));
      check_true "rewrite keeps annotations"
        (Json.member "annotations" (Json.of_string rewritten) <> None)

let test_row_of_json_garbage () =
  check_true "non-object" (Ledger.row_of_json (Json.Int 3) = None);
  check_true "array" (Ledger.row_of_json (Json.List []) = None);
  check_true "object without run_id"
    (Ledger.row_of_json (Json.Obj [ ("ts", Json.Str "t") ]) = None);
  check_true "non-string run_id"
    (Ledger.row_of_json (Json.Obj [ ("run_id", Json.Int 7) ]) = None)

let test_load_skips_torn_and_alien_lines () =
  let file = Filename.temp_file "bbng_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (Json.to_string (Ledger.row_to_json sample_row));
      output_char oc '\n';
      (* an alien-but-parseable line (no run_id): skipped, not fatal *)
      output_string oc "{\"event\":\"not.a.row\"}\n";
      output_string oc
        (Json.to_string
           (Ledger.row_to_json { sample_row with Ledger.run_id = "r2" }));
      output_char oc '\n';
      (* a SIGKILL-torn trailing line: no newline, half a JSON object *)
      output_string oc "{\"schema\":1,\"run_id\":\"r3\",\"ts";
      close_out oc;
      let rows, skipped = Ledger.load ~file () in
      check_int "two parseable rows" 2 (List.length rows);
      check_int "torn + alien lines counted" 2 skipped;
      check_str "order preserved" "r2"
        (List.nth rows 1).Ledger.run_id)

let test_append_then_load () =
  let file = Filename.temp_file "bbng_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Ledger.append_row ~file sample_row;
      Ledger.append_row ~file { sample_row with Ledger.run_id = "r2" };
      let rows, skipped = Ledger.load ~file () in
      check_int "both rows back" 2 (List.length rows);
      check_int "nothing skipped" 0 skipped;
      check_str "first" sample_row.Ledger.run_id
        (List.nth rows 0).Ledger.run_id;
      check_str "second" "r2" (List.nth rows 1).Ledger.run_id)

let test_load_missing_file_is_empty () =
  let rows, skipped = Ledger.load ~file:"/nonexistent/ledger.jsonl" () in
  check_int "no rows" 0 (List.length rows);
  check_int "no skips" 0 skipped

let test_numeric_metrics () =
  let nums = Ledger.numeric_metrics sample_row in
  check_int "ints and floats only" 3 (List.length nums)

(* Recovery: a recorded event stream re-derives its row — run id from
   run.summary, outcome and game metrics from dynamics.outcome. *)
let test_of_report_events () =
  let file = Filename.temp_file "bbng_ledger_rec" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "{\"event\":\"dynamics.start\"}\n";
      close_out oc;
      let events =
        [
          Json.Obj [ ("event", Json.Str "dynamics.start") ];
          Json.Obj
            [
              ("event", Json.Str "dynamics.outcome");
              ("outcome", Json.Str "converged");
              ("steps", Json.Int 6);
              ("social_cost", Json.Int 2);
              ("max_regret", Json.Int 0);
              ("diagnosis", Json.Str "converging");
            ];
          Json.Obj
            [
              ("event", Json.Str "run.summary");
              ("run_id", Json.Str "r-original");
              ( "argv",
                Json.List [ Json.Str "bbng_cli"; Json.Str "dynamics" ] );
              ("counters", Json.Obj [ ("bfs.runs", Json.Int 5) ]);
            ];
        ]
      in
      let r = Ledger.of_report_events ~path:file events in
      check_str "run id joins back to the recording" "r-original"
        r.Ledger.run_id;
      check_str "outcome from dynamics.outcome" "converged" r.Ledger.outcome;
      check_true "social cost recovered"
        (List.assoc_opt "dynamics.final_social_cost" r.Ledger.metrics
        = Some (Json.Int 2));
      check_true "diagnosis recovered"
        (List.assoc_opt "dynamics.diagnosis" r.Ledger.metrics
        = Some (Json.Str "converging"));
      Alcotest.(check (list string)) "argv recovered"
        [ "bbng_cli"; "dynamics" ]
        r.Ledger.argv;
      check_true "report path recorded" (r.Ledger.report = Some file);
      (* a pre-ledger recording (no run_id in its summary) still gets a
         stable digest-derived id *)
      let r2 =
        Ledger.of_report_events ~path:file
          [ Json.Obj [ ("event", Json.Str "run.summary") ] ]
      in
      check_true "derived id is stable and prefixed"
        (String.length r2.Ledger.run_id > 10
        && String.sub r2.Ledger.run_id 0 10 = "recovered-"))

let test_artifact_live_sees_partials () =
  let file = Filename.temp_file "bbng_ledger_art" ".jsonl" in
  let partial = Bbng_obs.Atomic_io.partial_path file in
  check_true "committed artifact is live" (Ledger.artifact_live file);
  Sys.remove file;
  check_false "gone artifact is dead" (Ledger.artifact_live file);
  (* only the resumable checkpoint exists: still live — `runs gc` must
     not prune a reference whose census can still be resumed *)
  let oc = open_out partial in
  output_string oc "{}\n";
  close_out oc;
  check_true "a .partial keeps the reference live" (Ledger.artifact_live file);
  Sys.remove partial;
  check_false "dead once both are gone" (Ledger.artifact_live file)

let suite =
  [
    case "row round-trips through JSON" test_row_roundtrip;
    case "newer-schema fields survive an old binary" test_alien_fields_preserved;
    case "garbage is None, never an exception" test_row_of_json_garbage;
    case "load skips torn and alien lines" test_load_skips_torn_and_alien_lines;
    case "append then load round-trips" test_append_then_load;
    case "missing ledger is empty, not an error" test_load_missing_file_is_empty;
    case "numeric metrics filter" test_numeric_metrics;
    case "row recovery from a recorded stream" test_of_report_events;
    case "artifact_live sees resumable partials" test_artifact_live_sees_partials;
  ]
