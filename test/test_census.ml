open Helpers
open Bbng_core
open Bbng_analysis

let test_unit3 () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
  let c = Census.run game in
  check_int "profiles" 8 c.Census.total_profiles;
  check_int "equilibria" 2 c.Census.equilibria;
  (* both equilibria are directed triangles: one isomorphism class *)
  check_int "iso classes" 1 (List.length c.Census.iso_classes);
  check_true "histogram" (c.Census.diameter_histogram = [ (1, 2) ]);
  check_true "min" (c.Census.min_diameter = Some 1);
  check_true "max" (c.Census.max_diameter = Some 1)

let test_unit4 () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let c = Census.run game in
  check_int "profiles" 81 c.Census.total_profiles;
  check_int "equilibria" 30 c.Census.equilibria;
  check_true "every class diameter <= 4"
    (List.for_all (fun (d, _) -> d <= 4) c.Census.diameter_histogram);
  (* histogram counts add up *)
  check_int "histogram total" 30
    (List.fold_left (fun acc (_, c) -> acc + c) 0 c.Census.diameter_histogram);
  check_true "far fewer classes than equilibria"
    (List.length c.Census.iso_classes < 30)

let test_representatives_are_nash () =
  let game = Game.make Cost.Max (Budget.unit_budgets 4) in
  let c = Census.run game in
  List.iter
    (fun p -> check_true "representative certified" (Equilibrium.is_nash game p))
    c.Census.iso_classes

let test_poa () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let c = Census.run game in
  match Census.price_of_anarchy c with
  | Some r ->
      check_int "den = opt" 2 r.Poa.den;
      check_true "ratio >= 1" (Poa.ratio_to_float r >= 1.0)
  | None -> Alcotest.fail "expected a PoA"

let test_empty_census () =
  (* subcritical instance: equilibria exist (disconnected ones) *)
  let game = Game.make Cost.Sum (Budget.of_list [ 0; 0; 1; 0 ]) in
  let c = Census.run game in
  check_true "has equilibria" (c.Census.equilibria > 0);
  check_true "diameter is n^2" (c.Census.min_diameter = Some 16)

let test_limit () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 5) in
  let c = Census.run ~limit:3 game in
  check_int "limited" 3 c.Census.equilibria

let test_summary_prints () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
  let s = Format.asprintf "%a" Census.pp_summary (Census.run game) in
  check_true "non-empty" (String.length s > 10)

let suite =
  [
    case "unit n=3" test_unit3;
    slow_case "unit n=4" test_unit4;
    slow_case "representatives are Nash" test_representatives_are_nash;
    slow_case "PoA from census" test_poa;
    case "subcritical census" test_empty_census;
    case "limit respected" test_limit;
    case "summary prints" test_summary_prints;
  ]
