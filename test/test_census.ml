open Helpers
open Bbng_core
open Bbng_analysis
module Atomic_io = Bbng_obs.Atomic_io
module Budgeted = Bbng_obs.Budgeted
module Json = Bbng_obs.Json

let complete_exn = function
  | Census.Complete c -> c
  | Census.Partial _ -> Alcotest.fail "unexpected partial census"

let run_c ?limit game = complete_exn (Census.run ?limit game)

(* a fresh path whose file does not exist yet (census commits it) *)
let fresh_path () =
  let file = Filename.temp_file "bbng_census" ".jsonl" in
  Sys.remove file;
  file

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines path =
  String.split_on_char '\n' (read_bytes path)
  |> List.filter (fun l -> String.trim l <> "")

let write_lines path lines =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let cleanup path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; Atomic_io.partial_path path ]

(* --- the aggregate itself --- *)

let test_unit3 () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
  let c = run_c game in
  check_int "profiles" 8 c.Census.total_profiles;
  check_int "scanned" 8 c.Census.scanned_profiles;
  check_int "equilibria" 2 c.Census.equilibria;
  (* both equilibria are directed triangles: one isomorphism class *)
  check_int "iso classes" 1 (List.length c.Census.iso_classes);
  check_true "class counts" (List.map snd c.Census.iso_class_counts = [ 2 ]);
  check_true "histogram" (c.Census.diameter_histogram = [ (1, 2) ]);
  check_true "min" (c.Census.min_diameter = Some 1);
  check_true "max" (c.Census.max_diameter = Some 1)

let test_unit4 () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let c = run_c game in
  check_int "profiles" 81 c.Census.total_profiles;
  check_int "equilibria" 30 c.Census.equilibria;
  check_true "every class diameter <= 4"
    (List.for_all (fun (d, _) -> d <= 4) c.Census.diameter_histogram);
  (* histogram counts add up *)
  check_int "histogram total" 30
    (List.fold_left (fun acc (_, c) -> acc + c) 0 c.Census.diameter_histogram);
  check_true "far fewer classes than equilibria"
    (List.length c.Census.iso_classes < 30);
  check_int "class counts total" 30
    (List.fold_left (fun acc (_, c) -> acc + c) 0 c.Census.iso_class_counts)

let test_representatives_are_nash () =
  let game = Game.make Cost.Max (Budget.unit_budgets 4) in
  let c = run_c game in
  List.iter
    (fun p -> check_true "representative certified" (Equilibrium.is_nash game p))
    c.Census.iso_classes

let test_poa () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let c = run_c game in
  match Census.price_of_anarchy c with
  | Some r ->
      check_int "den = opt" 2 r.Poa.den;
      check_true "ratio >= 1" (Poa.ratio_to_float r >= 1.0)
  | None -> Alcotest.fail "expected a PoA"

let test_empty_census () =
  (* subcritical instance: equilibria exist (disconnected ones) *)
  let game = Game.make Cost.Sum (Budget.of_list [ 0; 0; 1; 0 ]) in
  let c = run_c game in
  check_true "has equilibria" (c.Census.equilibria > 0);
  check_true "diameter is n^2" (c.Census.min_diameter = Some 16)

let test_limit () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 5) in
  let c = run_c ~limit:3 game in
  check_int "limited" 3 c.Census.equilibria

let test_summary_prints () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
  let s = Format.asprintf "%a" Census.pp_outcome (Census.run game) in
  check_true "non-empty" (String.length s > 10)

(* --- sharded pipeline vs the sequential scan --- *)

let censuses_agree name a b =
  check_int (name ^ ": total") a.Census.total_profiles b.Census.total_profiles;
  check_int (name ^ ": scanned") a.Census.scanned_profiles
    b.Census.scanned_profiles;
  check_int (name ^ ": equilibria") a.Census.equilibria b.Census.equilibria;
  Alcotest.(check (list string))
    (name ^ ": iso classes")
    (List.map Strategy.to_string a.Census.iso_classes)
    (List.map Strategy.to_string b.Census.iso_classes);
  check_true (name ^ ": class counts")
    (List.map snd a.Census.iso_class_counts
    = List.map snd b.Census.iso_class_counts);
  check_true (name ^ ": histogram")
    (a.Census.diameter_histogram = b.Census.diameter_histogram)

let test_sharded_matches_run () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let seq = run_c game in
  List.iter
    (fun shard_size ->
      let sh =
        complete_exn (Census.run_sharded ~domains:2 ~shard_size game)
      in
      censuses_agree (Printf.sprintf "shard_size=%d" shard_size) seq sh)
    [ 1; 7; 81; 1000 ]

let prop_sharded_matches_run =
  qcheck ~count:20 "run_sharded == run on random small instances"
    (QCheck.make
       ~print:(fun (n, total, seed, size) ->
         Printf.sprintf "n=%d total=%d seed=%d shard_size=%d" n total seed size)
       QCheck.Gen.(
         int_range 2 4 >>= fun n ->
         int_range 0 (min (n + 1) (n * (n - 1))) >>= fun total ->
         int_range 0 10_000 >>= fun seed ->
         int_range 1 17 >>= fun size -> return (n, total, seed, size)))
    (fun (n, total, seed, size) ->
      let b = Budget.random_partition (rng seed) ~n ~total in
      let game = Game.make Cost.Sum b in
      let a = run_c game in
      let b' = complete_exn (Census.run_sharded ~shard_size:size game) in
      a.Census.equilibria = b'.Census.equilibria
      && List.map Strategy.to_string a.Census.iso_classes
         = List.map Strategy.to_string b'.Census.iso_classes
      && a.Census.diameter_histogram = b'.Census.diameter_histogram)

let test_plan_shards_partition () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let plan = Census.make_plan ~shard_size:7 game in
  check_int "total" 81 plan.Census.total;
  check_int "num_shards" 12 plan.Census.num_shards;
  let shards = Census.shards plan in
  check_int "shard count" 12 (List.length shards);
  (* contiguous cover of [0, total) *)
  let _ =
    List.fold_left
      (fun expect s ->
        check_int "contiguous lo" expect s.Census.lo;
        check_true "ordered" (s.Census.lo < s.Census.hi);
        s.Census.hi)
      0 shards
  in
  check_int "covers total" 81 (List.rev shards |> List.hd).Census.hi

let test_make_plan_guards () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
  check_true "shard_size 0 rejected"
    (match Census.make_plan ~shard_size:0 game with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a saturated profile space cannot be sharded *)
  let huge = Game.make Cost.Sum (Budget.uniform ~n:40 ~budget:18) in
  check_true "saturated space rejected"
    (match Census.make_plan huge with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- budget expiry degrades to a typed Partial --- *)

let test_budget_partial_run () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let budget = Budgeted.create ~work_limit:40 () in
  match Census.run ~budget game with
  | Census.Complete _ -> Alcotest.fail "expected partial"
  | Census.Partial { census; unscanned; why } ->
      check_true "work-limit" (why = Budgeted.Work_limit);
      check_true "scanned a strict prefix"
        (census.Census.scanned_profiles > 0
        && census.Census.scanned_profiles < census.Census.total_profiles);
      let missing =
        List.fold_left (fun a (lo, hi) -> a + (hi - lo)) 0 unscanned
      in
      check_int "scanned + unscanned = total" census.Census.total_profiles
        (census.Census.scanned_profiles + missing)

let test_budget_partial_sharded () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let budget = Budgeted.create ~work_limit:60 () in
  match Census.run_sharded ~shard_size:9 ~budget game with
  | Census.Complete _ -> Alcotest.fail "expected partial"
  | Census.Partial { census; unscanned; _ } ->
      check_true "some ranges unscanned" (unscanned <> []);
      (* only whole shards aggregate: scanned is a multiple of the size *)
      check_int "whole shards only" 0 (census.Census.scanned_profiles mod 9);
      let missing =
        List.fold_left (fun a (lo, hi) -> a + (hi - lo)) 0 unscanned
      in
      check_int "partition" 81 (census.Census.scanned_profiles + missing)

(* --- checkpoint / resume --- *)

let test_checkpoint_roundtrip () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let fresh =
        complete_exn (Census.run_sharded ~shard_size:7 ~checkpoint:path game)
      in
      check_true "final committed" (Sys.file_exists path);
      check_false "partial subsumed"
        (Sys.file_exists (Atomic_io.partial_path path));
      (* resuming a committed artifact validates it read-only *)
      match Census.resume path with
      | Ok (Census.Complete again, skipped) ->
          check_int "clean read" 0 skipped;
          censuses_agree "reloaded" fresh again
      | Ok (Census.Partial _, _) -> Alcotest.fail "read-only resume degraded"
      | Error e -> Alcotest.fail e)

let test_budgeted_checkpoint_then_resume () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let reference = fresh_path () and path = fresh_path () in
  Fun.protect
    ~finally:(fun () ->
      cleanup reference;
      cleanup path)
    (fun () ->
      ignore
        (complete_exn
           (Census.run_sharded ~shard_size:7 ~checkpoint:reference game));
      (* expire mid-census: whole shards land in the checkpoint *)
      let budget = Budgeted.create ~work_limit:60 () in
      (match Census.run_sharded ~shard_size:7 ~budget ~checkpoint:path game with
      | Census.Partial _ -> ()
      | Census.Complete _ -> Alcotest.fail "expected partial");
      check_true "partial checkpoint left behind"
        (Sys.file_exists (Atomic_io.partial_path path));
      check_false "no final yet" (Sys.file_exists path);
      match Census.resume path with
      | Ok (Census.Complete _, _) ->
          Alcotest.(check string)
            "resumed artifact byte-identical to uninterrupted run"
            (read_bytes reference) (read_bytes path);
          check_false "partial removed"
            (Sys.file_exists (Atomic_io.partial_path path))
      | Ok (Census.Partial _, _) -> Alcotest.fail "unlimited resume degraded"
      | Error e -> Alcotest.fail e)

(* A committed artifact's line-prefix is itself a valid checkpoint (the
   plan row leads, summary rows are ignored), so truncation at every
   depth models a crash after any number of completed shards. *)
let test_resume_truncation_oracle () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let reference = fresh_path () in
  Fun.protect
    ~finally:(fun () -> cleanup reference)
    (fun () ->
      ignore
        (complete_exn
           (Census.run_sharded ~shard_size:11 ~checkpoint:reference game));
      let want = read_bytes reference in
      let lines = read_lines reference in
      check_true "several rows" (List.length lines > 3);
      List.iteri
        (fun i _ ->
          let k = i + 1 in
          let path = fresh_path () in
          Fun.protect
            ~finally:(fun () -> cleanup path)
            (fun () ->
              write_lines (Atomic_io.partial_path path)
                (List.filteri (fun j _ -> j < k) lines);
              match Census.resume path with
              | Ok (Census.Complete _, skipped) ->
                  check_int (Printf.sprintf "prefix %d: clean" k) 0 skipped;
                  Alcotest.(check string)
                    (Printf.sprintf "prefix %d: byte-identical" k)
                    want (read_bytes path)
              | Ok (Census.Partial _, _) ->
                  Alcotest.failf "prefix %d: resume degraded" k
              | Error e -> Alcotest.failf "prefix %d: %s" k e))
        lines;
      (* zero lines: no plan row to adopt *)
      let path = fresh_path () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          write_lines (Atomic_io.partial_path path) [];
          check_true "plan-less checkpoint rejected"
            (match Census.resume path with Error _ -> true | Ok _ -> false)))

let prop_resume_survives_torn_tail =
  (* crash mid-append: the checkpoint ends in a torn prefix of a valid
     row plus junk — resume must skip it and still commit the exact
     reference artifact *)
  qcheck ~count:30 "resume after torn/garbage tail is byte-identical"
    (QCheck.make
       ~print:(fun (k, cut, junk) ->
         Printf.sprintf "keep=%d cut=%d junk=%d" k cut junk)
       QCheck.Gen.(
         int_range 1 6 >>= fun k ->
         int_range 1 40 >>= fun cut ->
         int_range 0 2 >>= fun junk -> return (k, cut, junk)))
    (fun (k, cut, junk) ->
      let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
      let reference = fresh_path () and path = fresh_path () in
      Fun.protect
        ~finally:(fun () ->
          cleanup reference;
          cleanup path)
        (fun () ->
          ignore
            (complete_exn
               (Census.run_sharded ~shard_size:2 ~checkpoint:reference game));
          let lines = read_lines reference in
          let keep = min k (List.length lines - 1) in
          let prefix = List.filteri (fun j _ -> j < keep) lines in
          let victim = List.nth lines keep in
          let torn = String.sub victim 0 (min cut (String.length victim)) in
          let junk_lines =
            List.init junk (fun i -> Printf.sprintf "junk line %d {" i)
          in
          write_lines (Atomic_io.partial_path path)
            (prefix @ junk_lines @ [ torn ]);
          match Census.resume path with
          | Ok (Census.Complete _, skipped) ->
              skipped >= 1 && read_bytes path = read_bytes reference
          | Ok (Census.Partial _, _) | Error _ -> false))

let test_resume_dedups_duplicate_shards () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let reference = fresh_path () and path = fresh_path () in
  Fun.protect
    ~finally:(fun () ->
      cleanup reference;
      cleanup path)
    (fun () ->
      ignore
        (complete_exn
           (Census.run_sharded ~shard_size:11 ~checkpoint:reference game));
      let lines = read_lines reference in
      (* two workers raced: a shard row appears twice *)
      let doubled = lines @ [ List.nth lines 1; List.nth lines 2 ] in
      write_lines (Atomic_io.partial_path path) doubled;
      match Census.resume path with
      | Ok (Census.Complete _, skipped) ->
          check_int "duplicates are not damage" 0 skipped;
          Alcotest.(check string)
            "first-wins dedup" (read_bytes reference) (read_bytes path)
      | Ok (Census.Partial _, _) -> Alcotest.fail "resume degraded"
      | Error e -> Alcotest.fail e)

let test_resume_skips_alien_instance () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let alien = Game.make Cost.Max (Budget.unit_budgets 4) in
  let reference = fresh_path () and path = fresh_path () in
  Fun.protect
    ~finally:(fun () ->
      cleanup reference;
      cleanup path)
    (fun () ->
      ignore
        (complete_exn
           (Census.run_sharded ~shard_size:11 ~checkpoint:reference game));
      let alien_plan = Census.make_plan ~shard_size:11 alien in
      check_true "keys differ"
        (Census.plan_key (Census.make_plan ~shard_size:11 game)
        <> Census.plan_key alien_plan);
      let lines = read_lines reference in
      write_lines (Atomic_io.partial_path path)
        (lines @ [ Json.to_string (Census.plan_row alien_plan) ]);
      match Census.resume path with
      | Ok (Census.Complete _, skipped) ->
          check_int "alien plan row skipped" 1 skipped;
          Alcotest.(check string)
            "aggregate unpolluted" (read_bytes reference) (read_bytes path)
      | Ok (Census.Partial _, _) -> Alcotest.fail "resume degraded"
      | Error e -> Alcotest.fail e)

let test_resume_missing () =
  let path = fresh_path () in
  check_true "missing file is a typed error"
    (match Census.resume path with Error _ -> true | Ok _ -> false)

(* --- cooperative worker mode --- *)

let test_work_single_process () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let reference = fresh_path () and path = fresh_path () in
  Fun.protect
    ~finally:(fun () ->
      cleanup reference;
      cleanup path)
    (fun () ->
      ignore
        (complete_exn
           (Census.run_sharded ~shard_size:11 ~checkpoint:reference game));
      match Census.work ~owner:"t" ~shard_size:11 ~seed:game path with
      | Ok (Census.Complete c) ->
          check_int "all equilibria" 30 c.Census.equilibria;
          Alcotest.(check string)
            "worker commit matches the sharded run" (read_bytes reference)
            (read_bytes path)
      | Ok (Census.Partial _) -> Alcotest.fail "unlimited worker degraded"
      | Error e -> Alcotest.fail e)

let test_work_needs_a_plan () =
  let path = fresh_path () in
  check_true "no checkpoint and no seed is an error"
    (match Census.work path with Error _ -> true | Ok _ -> false)

let dead_pid () =
  (* a reaped child: guaranteed-dead pid that was recently real.
     (create_process, not fork — fork is unavailable once earlier
     suites have spawned domains) *)
  let pid =
    Unix.create_process "/bin/true" [| "true" |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  ignore (Unix.waitpid [] pid);
  pid

let test_work_supersedes_stale_claim () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let plan = Census.make_plan ~shard_size:11 game in
      let key = Census.plan_key plan in
      let partial = Atomic_io.partial_path path in
      (* a worker claimed shards 0 and 3 and then was SIGKILLed *)
      write_lines partial
        [
          Json.to_string (Census.plan_row plan);
          Json.to_string (Census.claim_row ~key ~owner:"ghost" ~pid:(dead_pid ()) 0);
          Json.to_string (Census.claim_row ~key ~owner:"ghost" ~pid:(dead_pid ()) 3);
        ];
      let stale_before =
        Bbng_obs.Metrics.counter_value (Bbng_obs.Metrics.counter "census.claims_stale")
      in
      match Census.work ~owner:"t" path with
      | Ok (Census.Complete c) ->
          check_int "census completed over the stale claims" 30
            c.Census.equilibria;
          check_true "stale claims detected"
            (Bbng_obs.Metrics.counter_value
               (Bbng_obs.Metrics.counter "census.claims_stale")
            >= stale_before + 2);
          check_true "final committed" (Sys.file_exists path)
      | Ok (Census.Partial _) -> Alcotest.fail "worker degraded"
      | Error e -> Alcotest.fail e)

let test_work_own_claim_is_claimable () =
  (* a claim by this very process (e.g. a prior expired pass) must not
     deadlock the worker against itself *)
  let game = Game.make Cost.Sum (Budget.unit_budgets 3) in
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let plan = Census.make_plan ~shard_size:3 game in
      let key = Census.plan_key plan in
      write_lines
        (Atomic_io.partial_path path)
        [
          Json.to_string (Census.plan_row plan);
          Json.to_string
            (Census.claim_row ~key ~owner:"self" ~pid:(Unix.getpid ()) 0);
        ];
      match Census.work ~owner:"self" path with
      | Ok (Census.Complete c) -> check_int "completed" 2 c.Census.equilibria
      | Ok (Census.Partial _) -> Alcotest.fail "worker degraded"
      | Error e -> Alcotest.fail e)

let test_work_budget_expiry_is_partial () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let budget = Budgeted.create ~work_limit:60 () in
      match Census.work ~budget ~owner:"t" ~shard_size:9 ~seed:game path with
      | Ok (Census.Partial { census; unscanned; _ }) ->
          check_true "progress checkpointed"
            (Sys.file_exists (Atomic_io.partial_path path));
          let missing =
            List.fold_left (fun a (lo, hi) -> a + (hi - lo)) 0 unscanned
          in
          check_int "partition" census.Census.total_profiles
            (census.Census.scanned_profiles + missing)
      | Ok (Census.Complete _) -> Alcotest.fail "expected partial"
      | Error e -> Alcotest.fail e)

let suite =
  [
    case "unit n=3" test_unit3;
    slow_case "unit n=4" test_unit4;
    slow_case "representatives are Nash" test_representatives_are_nash;
    slow_case "PoA from census" test_poa;
    case "subcritical census" test_empty_census;
    case "limit respected" test_limit;
    case "summary prints" test_summary_prints;
    slow_case "sharded matches sequential" test_sharded_matches_run;
    prop_sharded_matches_run;
    case "plan shards partition the space" test_plan_shards_partition;
    case "make_plan guards" test_make_plan_guards;
    case "budget expiry: sequential partial" test_budget_partial_run;
    case "budget expiry: sharded partial" test_budget_partial_sharded;
    slow_case "checkpoint roundtrip" test_checkpoint_roundtrip;
    slow_case "budgeted checkpoint then resume" test_budgeted_checkpoint_then_resume;
    slow_case "truncation oracle: every prefix resumes identically"
      test_resume_truncation_oracle;
    prop_resume_survives_torn_tail;
    slow_case "duplicate shard rows dedup" test_resume_dedups_duplicate_shards;
    slow_case "alien instance rows skipped" test_resume_skips_alien_instance;
    case "resume missing file" test_resume_missing;
    slow_case "worker drains a checkpoint" test_work_single_process;
    case "worker needs a plan" test_work_needs_a_plan;
    slow_case "stale claims superseded" test_work_supersedes_stale_claim;
    case "own claim is claimable" test_work_own_claim_is_claimable;
    case "worker budget expiry" test_work_budget_expiry_is_partial;
  ]
