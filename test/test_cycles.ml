open Helpers
module Cycles = Bbng_graph.Cycles
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Generators = Bbng_graph.Generators

let ring n = Generators.directed_cycle n

let sun_digraph () =
  (* 3-cycle 0->1->2->0 with fringe 3->0, 4->1 *)
  Digraph.of_arcs ~n:5 [ (0, 1); (1, 2); (2, 0); (3, 0); (4, 1) ]

let test_functional_cycle_ring () =
  check_int_list "whole ring" [ 0; 1; 2; 3 ] (Cycles.functional_cycle (ring 4) 0);
  check_int_list "start elsewhere" [ 0; 1; 2; 3 ] (Cycles.functional_cycle (ring 4) 2)

let test_functional_cycle_with_tail () =
  check_int_list "tail leads into cycle" [ 0; 1; 2 ]
    (Cycles.functional_cycle (sun_digraph ()) 3)

let test_functional_cycle_brace () =
  let g = Digraph.of_arcs ~n:3 [ (0, 1); (1, 0); (2, 0) ] in
  check_int_list "brace is a 2-cycle" [ 0; 1 ] (Cycles.functional_cycle g 2)

let test_functional_cycle_rejects () =
  Alcotest.check_raises "outdegree 2"
    (Invalid_argument "Cycles: vertex 0 has out-degree 2, expected 1")
    (fun () ->
      ignore (Cycles.functional_cycle (Digraph.of_arcs ~n:3 [ (0, 1); (0, 2); (1, 0); (2, 1) ]) 0))

let test_functional_cycles_multi () =
  let g = Digraph.of_arcs ~n:6 [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (5, 2) ] in
  check_true "two cycles"
    (Cycles.functional_cycles g = [ [ 0; 1 ]; [ 2; 3; 4 ] ])

let test_functional_cycles_single () =
  check_true "one cycle" (Cycles.functional_cycles (sun_digraph ()) = [ [ 0; 1; 2 ] ])

let test_distance_to_set () =
  let u = Undirected.of_digraph (sun_digraph ()) in
  let d = Cycles.distance_to_set u [ 0; 1; 2 ] in
  check_int_array "cycle distance" [| 0; 0; 0; 1; 1 |] d

let test_is_unicyclic () =
  check_true "sun" (Cycles.is_unicyclic (Undirected.of_digraph (sun_digraph ())));
  check_false "tree" (Cycles.is_unicyclic path5);
  check_false "disconnected" (Cycles.is_unicyclic two_triangles);
  check_true "plain cycle" (Cycles.is_unicyclic cycle6)

let test_girth () =
  check_int_option "cycle6" (Some 6) (Cycles.girth cycle6);
  check_int_option "K5" (Some 3) (Cycles.girth k5);
  check_int_option "tree" None (Cycles.girth path5);
  check_int_option "two triangles" (Some 3) (Cycles.girth two_triangles)

let test_girth_theta_graph () =
  (* two vertices joined by paths of lengths 2, 2: girth 4 *)
  let g = Undirected.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  check_int_option "4-cycle" (Some 4) (Cycles.girth g)

let prop_unit_profile_has_cycle_per_component =
  qcheck "functional digraph: one cycle per weak component"
    (gnp_gen ~n_min:2 ~n_max:20) (fun (n, seed) ->
      let st = rng seed in
      let p =
        Bbng_core.Strategy.random st (Bbng_core.Budget.unit_budgets n)
      in
      let g = Bbng_core.Strategy.realize p in
      let u = Bbng_core.Strategy.underlying p in
      let comps = (Bbng_graph.Components.components u).Bbng_graph.Components.count in
      List.length (Cycles.functional_cycles g) = comps)

let prop_cycle_is_closed_walk =
  qcheck "reported cycle is a closed arc walk" (gnp_gen ~n_min:2 ~n_max:20)
    (fun (n, seed) ->
      let st = rng seed in
      let p = Bbng_core.Strategy.random st (Bbng_core.Budget.unit_budgets n) in
      let g = Bbng_core.Strategy.realize p in
      List.for_all
        (fun cycle ->
          let arr = Array.of_list cycle in
          let len = Array.length arr in
          let ok = ref (len >= 2) in
          for i = 0 to len - 1 do
            if not (Digraph.mem_arc g arr.(i) arr.((i + 1) mod len)) then ok := false
          done;
          !ok)
        (Cycles.functional_cycles g))

let suite =
  [
    case "functional cycle: ring" test_functional_cycle_ring;
    case "functional cycle: tail" test_functional_cycle_with_tail;
    case "functional cycle: brace" test_functional_cycle_brace;
    case "functional cycle: rejects" test_functional_cycle_rejects;
    case "functional cycles: multiple components" test_functional_cycles_multi;
    case "functional cycles: single" test_functional_cycles_single;
    case "distance to cycle" test_distance_to_set;
    case "is_unicyclic" test_is_unicyclic;
    case "girth" test_girth;
    case "girth of 4-cycle" test_girth_theta_graph;
    prop_unit_profile_has_cycle_per_component;
    prop_cycle_is_closed_walk;
  ]
