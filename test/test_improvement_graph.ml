open Helpers
open Bbng_core
module Ig = Bbng_dynamics.Improvement_graph

let unit_game n version = Game.make version (Budget.unit_budgets n)

let test_node_count () =
  let g = unit_game 3 Cost.Sum in
  let t = Ig.build g in
  check_int "profiles" 8 (Array.length t.Ig.profiles)

let test_sinks_are_nash () =
  List.iter
    (fun version ->
      let g = unit_game 3 version in
      let t = Ig.build g in
      check_true "sinks <-> Nash" (Ig.sinks_are_nash g t);
      check_int "two equilibria" 2 (List.length t.Ig.sinks))
    Cost.all_versions

let test_fip_small_unit () =
  (* no better-response cycle on tiny unit instances, in either version *)
  List.iter
    (fun version ->
      check_true
        (Printf.sprintf "FIP unit n=3 %s" (Cost.version_name version))
        (Ig.fip_holds (unit_game 3 version));
      check_true
        (Printf.sprintf "FIP unit n=4 %s" (Cost.version_name version))
        (Ig.fip_holds (unit_game 4 version)))
    Cost.all_versions

let test_best_only_subset () =
  let g = unit_game 4 Cost.Sum in
  let all = Ig.build ~kind:Ig.Any_improvement g in
  let best = Ig.build ~kind:Ig.Best_only g in
  check_true "best-only arcs are a subset"
    (List.length best.Ig.arcs <= List.length all.Ig.arcs);
  check_int "same sinks" (List.length all.Ig.sinks) (List.length best.Ig.sinks)

let test_longest_path_bounds_convergence () =
  let g = unit_game 4 Cost.Sum in
  let t = Ig.build g in
  check_false "acyclic" t.Ig.has_cycle;
  check_true "positive worst case" (t.Ig.longest_path_lower_bound >= 1);
  (* dynamics from any start can never exceed the longest improving path *)
  let st = rng 3 in
  for _ = 1 to 10 do
    let start = Strategy.random st (Game.budgets g) in
    match
      Bbng_dynamics.Dynamics.run g ~schedule:Bbng_dynamics.Schedule.Round_robin
        ~rule:Bbng_dynamics.Dynamics.First_improving start
    with
    | Bbng_dynamics.Dynamics.Converged { steps; _ } ->
        check_true "steps within longest path"
          (steps <= t.Ig.longest_path_lower_bound)
    | _ -> Alcotest.fail "tiny instance must converge (graph is acyclic)"
  done

let test_cycle_witness_replays () =
  (* we do not know a cyclic instance of this game; verify the witness
     machinery on a case WITH a cycle by checking the field contract on
     acyclic graphs instead, and exercising witness replay if one ever
     appears. *)
  let g = Game.make Cost.Sum (Budget.of_list [ 1; 1; 0; 1 ]) in
  let t = Ig.build g in
  match t.Ig.cycle_witness with
  | None -> check_false "consistent flags" t.Ig.has_cycle
  | Some cycle ->
      check_true "flagged" t.Ig.has_cycle;
      check_true "witness length >= 2" (List.length cycle >= 2)

let test_tree_instance_graph () =
  let g = Game.make Cost.Sum (Budget.of_list [ 0; 1; 1; 1 ]) in
  let t = Ig.build g in
  check_int "profiles" 27 (Array.length t.Ig.profiles);
  check_true "sinks are the 4 equilibria" (List.length t.Ig.sinks = 4);
  check_true "sinks certified" (Ig.sinks_are_nash g t)

let test_potential_is_ordinal () =
  (* every improving arc strictly decreases the extracted potential *)
  let g = unit_game 4 Cost.Sum in
  let t = Ig.build g in
  match Ig.potential t with
  | None -> Alcotest.fail "acyclic graph must have a potential"
  | Some phi ->
      List.iter
        (fun (a, b) ->
          check_true "arc decreases potential" (phi.(a) > phi.(b)))
        t.Ig.arcs;
      (* sinks sit at potential 0 *)
      List.iter (fun i -> check_int "sink potential" 0 phi.(i)) t.Ig.sinks

let test_potential_none_when_cyclic () =
  (* fabricate a cyclic improvement graph record to check the contract *)
  let g = unit_game 3 Cost.Sum in
  let t = Ig.build g in
  let fake = { t with Ig.has_cycle = true } in
  check_true "no potential on cyclic" (Ig.potential fake = None)

let test_to_dot () =
  let g = unit_game 3 Cost.Sum in
  let t = Ig.build g in
  let dot = Ig.to_dot t in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "digraph header" (contains dot "digraph improvement");
  check_true "sink shape" (contains dot "doublecircle");
  check_true "an arc" (contains dot "->")

let suite =
  [
    case "node count" test_node_count;
    case "sinks are exactly the Nash equilibria" test_sinks_are_nash;
    slow_case "FIP on small unit instances" test_fip_small_unit;
    slow_case "best-only is a subgraph" test_best_only_subset;
    slow_case "longest path bounds convergence" test_longest_path_bounds_convergence;
    case "cycle witness contract" test_cycle_witness_replays;
    case "tree instance graph" test_tree_instance_graph;
    slow_case "extracted potential is ordinal" test_potential_is_ordinal;
    case "potential absent when cyclic" test_potential_none_when_cyclic;
    case "dot export" test_to_dot;
  ]
