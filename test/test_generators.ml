open Helpers
module Generators = Bbng_graph.Generators
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Distances = Bbng_graph.Distances
module Trees = Bbng_graph.Trees
module Components = Bbng_graph.Components

let test_directed_path () =
  let g = Generators.directed_path 4 in
  check_int "arcs" 3 (Digraph.arc_count g);
  check_true "0->1" (Digraph.mem_arc g 0 1);
  check_int "last owns nothing" 0 (Digraph.out_degree g 3)

let test_directed_cycle () =
  let g = Generators.directed_cycle 5 in
  check_int "arcs" 5 (Digraph.arc_count g);
  check_true "wraps" (Digraph.mem_arc g 4 0);
  check_true "n=2 is brace" (Digraph.is_brace (Generators.directed_cycle 2) 0 1)

let test_stars () =
  let g = Generators.out_star 5 in
  check_int "center owns all" 4 (Digraph.out_degree g 0);
  let g = Generators.in_star 5 in
  check_int "center owns none" 0 (Digraph.out_degree g 0);
  check_int "leaves own one" 1 (Digraph.out_degree g 3)

let test_tripod_shape () =
  let k = 4 in
  let g = Generators.tripod k in
  let u = Undirected.of_digraph g in
  check_int "n = 3k+1" (3 * k + 1) (Digraph.n g);
  check_true "tree" (Trees.is_tree u);
  check_int_option "diameter 2k" (Some (2 * k)) (Distances.diameter u);
  (* budgets: leg heads own 2 (path arc + hub arc), tips own 0, hub owns 0 *)
  check_int "leg head" 2 (Digraph.out_degree g 0);
  check_int "leg tip" 0 (Digraph.out_degree g (k - 1));
  check_int "hub" 0 (Digraph.out_degree g (3 * k))

let test_tripod_k1 () =
  let g = Generators.tripod 1 in
  check_int "n" 4 (Digraph.n g);
  check_int "head owns only hub arc" 1 (Digraph.out_degree g 0)

let test_perfect_binary_tree () =
  let g = Generators.perfect_binary_tree 3 in
  let u = Undirected.of_digraph g in
  check_int "n = 2^4 - 1" 15 (Digraph.n g);
  check_true "tree" (Trees.is_tree u);
  check_int_option "diameter" (Some 6) (Distances.diameter u);
  check_int "internal owns 2" 2 (Digraph.out_degree g 2);
  check_int "leaf owns 0" 0 (Digraph.out_degree g 14)

let test_broom () =
  let g = Generators.broom ~handle:3 ~bristles:4 in
  let u = Undirected.of_digraph g in
  check_int "n" 7 (Digraph.n g);
  check_true "tree" (Trees.is_tree u);
  check_int "brush vertex degree" 5 (Undirected.degree u 2)

let test_complete_digraph () =
  let g = Generators.complete_digraph 4 in
  check_int "arcs" 6 (Digraph.arc_count g);
  check_int_option "diameter 1" (Some 1)
    (Distances.diameter (Undirected.of_digraph g))

let test_grid () =
  let g = Generators.grid_graph ~rows:2 ~cols:3 in
  check_int "edges" 7 (Undirected.edge_count g);
  check_true "connected" (Components.is_connected g)

(* --- shift graph (Lemma 5.2) --- *)

let test_shift_graph_size () =
  let g = Generators.shift_graph ~t:3 ~k:2 in
  check_int "t^k vertices" 9 (Undirected.n g)

let test_shift_graph_degree_bounds () =
  let g = Generators.shift_graph ~t:4 ~k:3 in
  check_true "min degree >= t-1" (Undirected.min_degree g >= 3);
  check_true "max degree <= 2t" (Undirected.max_degree g <= 8)

let test_shift_graph_diameter_k () =
  List.iter
    (fun (t, k) ->
      let g = Generators.shift_graph ~t ~k in
      check_int_option
        (Printf.sprintf "diameter of shift(%d,%d)" t k)
        (Some k) (Distances.diameter g))
    [ (3, 2); (4, 2); (4, 3); (6, 2) ]

let test_shift_graph_adjacency_rule () =
  (* t=10, k=2 makes digit reasoning transparent: x = 10*x1 + x2 *)
  let g = Generators.shift_graph ~t:10 ~k:2 in
  (* 12 ~ 23: suffix "2" of 12 = prefix "2" of 23 *)
  check_true "12-23" (Undirected.mem_edge g 12 23);
  check_true "12-21" (Undirected.mem_edge g 12 21);
  check_false "12-34 not adjacent" (Undirected.mem_edge g 12 34);
  check_false "no self loop" (Undirected.mem_edge g 11 11)

let test_shift_graph_orientation () =
  let d = Generators.shift_graph_orientation ~t:4 ~k:2 in
  let g = Generators.shift_graph ~t:4 ~k:2 in
  check_true "underlying matches"
    (Undirected.equal (Undirected.of_digraph d) g);
  let ok = ref true in
  for v = 0 to Digraph.n d - 1 do
    if Digraph.out_degree d v < 1 then ok := false
  done;
  check_true "all out-degrees positive" !ok

let test_shift_graph_rejects () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Generators.shift_graph: t^k too large") (fun () ->
      ignore (Generators.shift_graph ~t:100 ~k:4))

(* --- random families --- *)

let test_gnp_extremes () =
  let g = Generators.random_gnp (rng 1) ~n:8 ~p:0.0 in
  check_int "p=0 no edges" 0 (Undirected.edge_count g);
  let g = Generators.random_gnp (rng 1) ~n:8 ~p:1.0 in
  check_int "p=1 complete" 28 (Undirected.edge_count g)

let test_gnp_deterministic_by_seed () =
  let g1 = Generators.random_gnp (rng 7) ~n:10 ~p:0.5 in
  let g2 = Generators.random_gnp (rng 7) ~n:10 ~p:0.5 in
  check_true "same seed same graph" (Undirected.equal g1 g2)

let prop_connected_gnp_connected =
  qcheck "random_connected_gnp is connected" (gnp_gen ~n_min:1 ~n_max:25)
    (fun (n, seed) ->
      Components.is_connected
        (Generators.random_connected_gnp (rng seed) ~n ~p:0.1))

let prop_regularish_degrees =
  qcheck "regularish min degree >= d" (gnp_gen ~n_min:5 ~n_max:20)
    (fun (n, seed) ->
      let d = 3 in
      let g = Generators.random_regularish (rng seed) ~n ~degree:d in
      Undirected.min_degree g >= d)

let suite =
  [
    case "directed path" test_directed_path;
    case "directed cycle" test_directed_cycle;
    case "stars" test_stars;
    case "tripod shape" test_tripod_shape;
    case "tripod k=1" test_tripod_k1;
    case "perfect binary tree" test_perfect_binary_tree;
    case "broom" test_broom;
    case "complete digraph" test_complete_digraph;
    case "grid" test_grid;
    case "shift graph size" test_shift_graph_size;
    case "shift graph degree bounds" test_shift_graph_degree_bounds;
    case "shift graph diameter = k" test_shift_graph_diameter_k;
    case "shift graph adjacency" test_shift_graph_adjacency_rule;
    case "shift graph orientation" test_shift_graph_orientation;
    case "shift graph size guard" test_shift_graph_rejects;
    case "gnp extremes" test_gnp_extremes;
    case "gnp deterministic" test_gnp_deterministic_by_seed;
    prop_connected_gnp_connected;
    prop_regularish_degrees;
  ]
