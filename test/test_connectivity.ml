open Helpers
module Connectivity = Bbng_graph.Connectivity
module Components = Bbng_graph.Components
module Flow = Bbng_graph.Flow
module Undirected = Bbng_graph.Undirected
module Generators = Bbng_graph.Generators

(* --- Flow --- *)

let test_flow_simple () =
  let net = Flow.create 4 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:3;
  Flow.add_edge net ~src:0 ~dst:2 ~capacity:2;
  Flow.add_edge net ~src:1 ~dst:3 ~capacity:2;
  Flow.add_edge net ~src:2 ~dst:3 ~capacity:3;
  check_int "max flow" 4 (Flow.max_flow net ~source:0 ~sink:3)

let test_flow_bottleneck () =
  let net = Flow.create 3 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:10;
  Flow.add_edge net ~src:1 ~dst:2 ~capacity:1;
  check_int "bottleneck" 1 (Flow.max_flow net ~source:0 ~sink:2)

let test_flow_disconnected () =
  let net = Flow.create 2 in
  check_int "no path" 0 (Flow.max_flow net ~source:0 ~sink:1)

let test_flow_min_cut_side () =
  let net = Flow.create 3 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:1;
  Flow.add_edge net ~src:1 ~dst:2 ~capacity:5;
  ignore (Flow.max_flow net ~source:0 ~sink:2);
  let side = Flow.min_cut_side net ~source:0 in
  check_int_array "source side" [| 1; 0; 0 |] side

let test_flow_rejects () =
  Alcotest.check_raises "source=sink"
    (Invalid_argument "Flow.max_flow: source = sink") (fun () ->
      ignore (Flow.max_flow (Flow.create 2) ~source:1 ~sink:1))

(* --- Vertex connectivity --- *)

let test_local_connectivity () =
  check_int "cycle pair" 2 (Connectivity.local_connectivity cycle6 0 3);
  check_int "path pair" 1 (Connectivity.local_connectivity path5 0 4);
  check_int "star leaves" 1 (Connectivity.local_connectivity star7 1 2)

let test_local_rejects_adjacent () =
  Alcotest.check_raises "adjacent"
    (Invalid_argument "Connectivity.local_connectivity: adjacent vertices")
    (fun () -> ignore (Connectivity.local_connectivity path5 0 1))

let test_global_values () =
  check_int "path" 1 (Connectivity.vertex_connectivity path5);
  check_int "cycle" 2 (Connectivity.vertex_connectivity cycle6);
  check_int "star" 1 (Connectivity.vertex_connectivity star7);
  check_int "complete" 4 (Connectivity.vertex_connectivity k5);
  check_int "disconnected" 0 (Connectivity.vertex_connectivity two_triangles);
  check_int "single vertex" 0
    (Connectivity.vertex_connectivity (Undirected.of_edges ~n:1 []))

let test_grid_connectivity () =
  let g = Generators.grid_graph ~rows:3 ~cols:3 in
  check_int "grid corner degree" 2 (Connectivity.vertex_connectivity g)

let test_complete_bipartite () =
  (* K_{2,3}: connectivity 2 *)
  let g =
    Undirected.of_edges ~n:5
      [ (0, 2); (0, 3); (0, 4); (1, 2); (1, 3); (1, 4) ]
  in
  check_int "K23" 2 (Connectivity.vertex_connectivity g)

let test_is_k_connected () =
  check_true "cycle 2-connected" (Connectivity.is_k_connected cycle6 2);
  check_false "cycle not 3-connected" (Connectivity.is_k_connected cycle6 3);
  check_true "0-connected always" (Connectivity.is_k_connected two_triangles 0);
  check_false "k >= n fails" (Connectivity.is_k_connected k5 5);
  check_true "K5 is 4-connected" (Connectivity.is_k_connected k5 4)

let test_min_cut_star () =
  match Connectivity.min_vertex_cut star7 with
  | Some [ 0 ] -> ()
  | Some other ->
      Alcotest.failf "expected hub cut, got [%s]"
        (String.concat ";" (List.map string_of_int other))
  | None -> Alcotest.fail "expected a cut"

let test_min_cut_complete () =
  check_true "complete has no cut" (Connectivity.min_vertex_cut k5 = None)

let test_min_cut_disconnected () =
  check_true "empty cut" (Connectivity.min_vertex_cut two_triangles = Some [])

let test_min_cut_is_separator () =
  let g = Generators.grid_graph ~rows:2 ~cols:4 in
  match Connectivity.min_vertex_cut g with
  | Some cut ->
      check_int "cut size = connectivity"
        (Connectivity.vertex_connectivity g)
        (List.length cut);
      check_false "cut separates" (Components.is_connected_except g cut)
  | None -> Alcotest.fail "expected a cut"

let prop_connectivity_at_most_min_degree =
  qcheck "kappa <= min degree" (gnp_gen ~n_min:2 ~n_max:10)
    (fun input ->
      let g = random_connected_of input in
      Connectivity.vertex_connectivity g <= Undirected.min_degree g)

let prop_cut_separates =
  qcheck "min cut disconnects" (gnp_gen ~n_min:3 ~n_max:10)
    (fun input ->
      let g = random_connected_of input in
      match Connectivity.min_vertex_cut g with
      | None -> true (* complete *)
      | Some cut ->
          List.length cut = Connectivity.vertex_connectivity g
          && not (Components.is_connected_except g cut))

let prop_menger_consistency =
  qcheck "local >= global for non-adjacent pairs" (gnp_gen ~n_min:4 ~n_max:9)
    (fun input ->
      let g = random_connected_of input in
      let n = Undirected.n g in
      let kappa = Connectivity.vertex_connectivity g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if not (Undirected.mem_edge g u v) then
            if Connectivity.local_connectivity g u v < kappa then ok := false
        done
      done;
      !ok)

let suite =
  [
    case "flow: simple network" test_flow_simple;
    case "flow: bottleneck" test_flow_bottleneck;
    case "flow: disconnected" test_flow_disconnected;
    case "flow: min cut side" test_flow_min_cut_side;
    case "flow: rejects source=sink" test_flow_rejects;
    case "local connectivity" test_local_connectivity;
    case "local rejects adjacent" test_local_rejects_adjacent;
    case "global values" test_global_values;
    case "grid" test_grid_connectivity;
    case "K_{2,3}" test_complete_bipartite;
    case "is_k_connected" test_is_k_connected;
    case "min cut of star" test_min_cut_star;
    case "min cut of complete" test_min_cut_complete;
    case "min cut disconnected" test_min_cut_disconnected;
    case "min cut separates grid" test_min_cut_is_separator;
    prop_connectivity_at_most_min_degree;
    prop_cut_separates;
    prop_menger_consistency;
  ]
