open Helpers
module Iso = Bbng_graph.Isomorphism
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Generators = Bbng_graph.Generators

(* relabel an undirected graph through a permutation *)
let relabel_undirected g perm =
  Undirected.of_edges ~n:(Undirected.n g)
    (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Undirected.edges g))

let relabel_digraph g perm =
  Digraph.of_arcs ~n:(Digraph.n g)
    (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Digraph.arcs g))

let random_perm st n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let test_identical () =
  check_true "self" (Iso.undirected_isomorphic path5 path5);
  check_true "self digraph"
    (Iso.digraph_isomorphic (Generators.tripod 2) (Generators.tripod 2))

let test_relabelled_path () =
  let g = relabel_undirected path5 [| 4; 2; 0; 1; 3 |] in
  check_true "path relabelled" (Iso.undirected_isomorphic path5 g)

let test_non_isomorphic_same_degrees () =
  (* C6 vs two triangles: both 2-regular on 6 vertices *)
  check_false "C6 vs 2xC3" (Iso.undirected_isomorphic cycle6 two_triangles)

let test_different_sizes () =
  check_false "sizes" (Iso.undirected_isomorphic path5 cycle6);
  check_false "edge counts"
    (Iso.undirected_isomorphic path5 (Generators.star_graph 5))

let test_direction_matters () =
  (* out-star vs in-star: same underlying graph, opposite ownership *)
  let o = Generators.out_star 4 and i = Generators.in_star 4 in
  check_true "underlying isomorphic"
    (Iso.undirected_isomorphic (Undirected.of_digraph o) (Undirected.of_digraph i));
  check_false "digraphs differ" (Iso.digraph_isomorphic o i)

let test_witness_is_correct () =
  let st = rng 4 in
  let g = Generators.random_tree st 8 in
  let perm = random_perm st 8 in
  let h = relabel_undirected g perm in
  match Iso.find_undirected_isomorphism g h with
  | None -> Alcotest.fail "expected an isomorphism"
  | Some pi ->
      let ok = ref true in
      Undirected.iter_edges
        (fun u v -> if not (Undirected.mem_edge h pi.(u) pi.(v)) then ok := false)
        g;
      check_true "witness maps edges to edges" !ok

let test_canonical_key () =
  let st = rng 9 in
  let g = Generators.random_tree st 7 in
  let h = relabel_undirected g (random_perm st 7) in
  check_true "same key for isomorphic graphs"
    (Iso.canonical_key_undirected g = Iso.canonical_key_undirected h);
  check_false "different key for different graphs"
    (Iso.canonical_key_undirected cycle6 = Iso.canonical_key_undirected two_triangles)

let test_canonical_key_trivial () =
  check_true "empty graph" (Iso.canonical_key_undirected (Undirected.of_edges ~n:0 []) = "0:")

let test_dedup () =
  let a = Generators.directed_cycle 4 in
  let b = relabel_digraph a [| 2; 0; 3; 1 |] in
  let c = Generators.directed_path 4 in
  let d = Iso.dedup_digraphs [ a; b; c; a ] in
  check_int "two classes" 2 (List.length d);
  check_true "first representative kept" (Digraph.equal (List.hd d) a)

let prop_relabel_preserves_iso_digraph =
  qcheck "random relabellings are isomorphic (digraph)"
    (gnp_gen ~n_min:2 ~n_max:9) (fun (n, seed) ->
      let st = rng seed in
      let u = Generators.random_connected_gnp st ~n ~p:0.4 in
      let g = Digraph.of_arcs ~n (Undirected.edges u) in
      let h = relabel_digraph g (random_perm st n) in
      Iso.digraph_isomorphic g h)

let prop_edge_count_separates =
  qcheck "graphs with different edge counts never isomorphic"
    (gnp_gen ~n_min:3 ~n_max:9) (fun (n, seed) ->
      let st = rng seed in
      let g = Generators.random_gnp st ~n ~p:0.4 in
      let extra =
        (* add one missing edge if any exists *)
        let missing = ref None in
        (try
           for u = 0 to n - 1 do
             for v = u + 1 to n - 1 do
               if not (Undirected.mem_edge g u v) then begin
                 missing := Some (u, v);
                 raise Exit
               end
             done
           done
         with Exit -> ());
        !missing
      in
      match extra with
      | None -> true (* complete graph: skip *)
      | Some e ->
          let h = Undirected.of_edges ~n (e :: Undirected.edges g) in
          not (Iso.undirected_isomorphic g h))

let prop_canonical_key_invariant =
  qcheck "canonical key is relabelling-invariant" (gnp_gen ~n_min:1 ~n_max:8)
    (fun (n, seed) ->
      let st = rng seed in
      let g = Generators.random_tree st n in
      let h = relabel_undirected g (random_perm st n) in
      Iso.canonical_key_undirected g = Iso.canonical_key_undirected h)

let suite =
  [
    case "identical graphs" test_identical;
    case "relabelled path" test_relabelled_path;
    case "same degrees, not isomorphic" test_non_isomorphic_same_degrees;
    case "different sizes" test_different_sizes;
    case "arc direction matters" test_direction_matters;
    case "witness correctness" test_witness_is_correct;
    case "canonical key" test_canonical_key;
    case "canonical key trivial" test_canonical_key_trivial;
    case "dedup" test_dedup;
    prop_relabel_preserves_iso_digraph;
    prop_edge_count_separates;
    prop_canonical_key_invariant;
  ]
