open Helpers
open Bbng_core
open Bbng_dynamics

let run ?(max_steps = 5_000) game schedule rule start =
  Dynamics.run ~max_steps game ~schedule ~rule start

let test_already_stable () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:6 in
  let game = Game.make Cost.Sum (Strategy.budgets p) in
  match run game Schedule.Round_robin Dynamics.Exact_best p with
  | Dynamics.Converged { steps; profile } ->
      check_int "zero steps" 0 steps;
      check_true "unchanged" (Strategy.equal p profile)
  | o -> Alcotest.failf "expected convergence, got %s" (Dynamics.outcome_name o)

let test_convergence_reaches_nash () =
  (* from random starts, Exact_best convergence implies Nash *)
  let st = rng 5 in
  List.iter
    (fun version ->
      for _ = 1 to 5 do
        let b = Budget.unit_budgets 6 in
        let start = Strategy.random st b in
        let game = Game.make version b in
        match run game Schedule.Round_robin Dynamics.Exact_best start with
        | Dynamics.Converged { profile; _ } ->
            check_true "converged to Nash" (Equilibrium.is_nash game profile)
        | Dynamics.Cycle _ -> () (* a genuine BR cycle is a valid outcome *)
        | Dynamics.Step_limit _ | Dynamics.Interrupted _ ->
            Alcotest.fail "step limit on a tiny game"
      done)
    Cost.all_versions

let test_swap_rule_reaches_swap_stability () =
  let st = rng 9 in
  let b = Budget.of_list [ 2; 1; 1; 1; 0 ] in
  let start = Strategy.random st b in
  let game = Game.make Cost.Sum b in
  match run game Schedule.Round_robin Dynamics.Best_swap start with
  | Dynamics.Converged { profile; _ } ->
      check_true "swap stable" (Equilibrium.is_swap_stable game profile);
      check_true "post-condition stable"
        (Dynamics.stable game Dynamics.Best_swap profile)
  | o -> Alcotest.failf "unexpected outcome %s" (Dynamics.outcome_name o)

let test_each_step_strictly_improves () =
  let st = rng 21 in
  let b = Budget.unit_budgets 7 in
  let start = Strategy.random st b in
  let game = Game.make Cost.Sum b in
  let ok = ref true in
  let on_step e =
    if e.Dynamics.new_cost >= e.Dynamics.old_cost then ok := false
  in
  ignore (Dynamics.run game ~schedule:Schedule.Round_robin ~rule:Dynamics.Exact_best ~on_step start);
  check_true "all steps strict improvements" !ok

let test_step_limit () =
  let st = rng 2 in
  let b = Budget.unit_budgets 8 in
  let start = Strategy.random st b in
  let game = Game.make Cost.Sum b in
  match Dynamics.run ~max_steps:0 game ~schedule:Schedule.Round_robin ~rule:Dynamics.Exact_best start with
  | Dynamics.Step_limit { steps; _ } -> check_int "no steps" 0 steps
  | Dynamics.Converged _ -> () (* start may happen to be stable *)
  | o -> Alcotest.failf "unexpected %s" (Dynamics.outcome_name o)

let test_schedules_agree_on_stability () =
  (* all schedules terminate on the same tiny game *)
  let st = rng 33 in
  let b = Budget.unit_budgets 5 in
  let start = Strategy.random st b in
  let game = Game.make Cost.Max b in
  List.iter
    (fun schedule ->
      match run game schedule Dynamics.Exact_best start with
      | Dynamics.Converged { profile; _ } ->
          check_true
            (Printf.sprintf "nash under %s" (Schedule.name schedule))
            (Equilibrium.is_nash game profile)
      | Dynamics.Cycle _ -> ()
      | Dynamics.Step_limit _ | Dynamics.Interrupted _ ->
          Alcotest.fail "step limit")
    [ Schedule.Round_robin; Schedule.Random_order 4; Schedule.Max_gain ]

let test_max_gain_picks_largest () =
  (* On the directed path 0->1->2->3 (budgets 1,1,1,0) only player 0 has
     an improving move (re-point to the middle, SUM gain 1); Max_gain
     must therefore activate player 0 first. *)
  let start = Strategy.of_digraph (Bbng_graph.Generators.directed_path 4) in
  let game = Game.make Cost.Sum (Strategy.budgets start) in
  let gain p =
    match Best_response.best_improvement game start p with
    | None -> 0
    | Some m -> Game.player_cost game start p - m.Best_response.cost
  in
  let best_gain = List.fold_left (fun acc p -> max acc (gain p)) 0 [ 0; 1; 2; 3 ] in
  check_true "fixture has an improving move" (best_gain > 0);
  let first_mover = ref (-1) in
  let on_step e = if !first_mover = -1 then first_mover := e.Dynamics.player in
  ignore
    (Dynamics.run ~max_steps:1 game ~schedule:Schedule.Max_gain
       ~rule:Dynamics.Exact_best ~on_step start);
  check_true "a step was taken" (!first_mover >= 0);
  check_int "first mover has max gain" best_gain (gain !first_mover)

let test_cycle_detection_no_false_positives () =
  (* strict-improvement single-mover dynamics cannot revisit a profile
     with the same ... actually they can in principle; here we just check
     reported cycles replay honestly on a batch of runs *)
  let st = rng 50 in
  for _ = 1 to 10 do
    let b = Budget.unit_budgets 6 in
    let start = Strategy.random st b in
    let game = Game.make Cost.Max b in
    match run game Schedule.Round_robin Dynamics.First_swap start with
    | Dynamics.Cycle { period; _ } -> check_true "positive period" (period > 0)
    | Dynamics.Converged { profile; _ } ->
        check_true "swap stable" (Equilibrium.is_swap_stable game profile)
    | Dynamics.Step_limit _ | Dynamics.Interrupted _ ->
        Alcotest.fail "unexpected step limit"
  done

let test_outcome_accessors () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:5 in
  let game = Game.make Cost.Sum (Strategy.budgets p) in
  let o = run game Schedule.Round_robin Dynamics.Exact_best p in
  check_int "steps accessor" 0 (Dynamics.steps o);
  check_true "profile accessor" (Strategy.equal p (Dynamics.final_profile o))

let test_rule_names_distinct () =
  let names =
    List.map Dynamics.rule_name
      [ Dynamics.Exact_best; First_improving; Best_swap; First_swap ]
  in
  check_int "distinct" 4 (List.length (List.sort_uniq compare names))

let prop_convergence_on_small_tree_instances =
  qcheck ~count:20 "dynamics terminates on small instances"
    (random_budget_gen ~n_min:2 ~n_max:6) (fun ((n, total, seed) as input) ->
      ignore n;
      ignore total;
      ignore seed;
      let p = random_profile_of input in
      let game = Game.make Cost.Sum (Strategy.budgets p) in
      match run ~max_steps:2_000 game Schedule.Round_robin Dynamics.Exact_best p with
      | Dynamics.Converged { profile; _ } -> Equilibrium.is_nash game profile
      | Dynamics.Cycle _ -> true
      | Dynamics.Step_limit _ | Dynamics.Interrupted _ -> false)

(* Convergence diagnostics: a recorded converging run must carry
   dynamics.diagnosis events whose final verdict aligns with the typed
   outcome, and the outcome event must expose max_regret = 0 (every
   player was probed and none improved — an exact 0, not a sample). *)
let test_diagnosis_events_recorded () =
  let module Json = Bbng_obs.Json in
  let file = Filename.temp_file "bbng_dyn_diag" ".jsonl" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      Sys.remove file)
    (fun () ->
      let st = rng 11 in
      let budgets = Budget.uniform ~n:8 ~budget:2 in
      let game = Game.make Cost.Sum budgets in
      let start = Strategy.random st budgets in
      (match
         Bbng_obs.Sink.scoped (Bbng_obs.Sink.Jsonl oc) (fun () ->
             run game Schedule.Round_robin Dynamics.Exact_best start)
       with
      | Dynamics.Converged _ -> ()
      | o -> Alcotest.failf "expected convergence, got %s" (Dynamics.outcome_name o));
      let ic = open_in file in
      let events = ref [] in
      (try
         while true do
           events := Json.of_string (input_line ic) :: !events
         done
       with End_of_file -> close_in ic);
      let events = List.rev !events in
      let named n =
        List.filter (fun j -> Json.member "event" j = Some (Json.Str n)) events
      in
      let diags = named "dynamics.diagnosis" in
      check_true "at least a final diagnosis" (List.length diags >= 1);
      let final = List.nth diags (List.length diags - 1) in
      check_true "final diagnosis marked final"
        (Json.member "final" final = Some (Json.Bool true));
      check_true "converged run diagnosed as converging"
        (Json.member "state" final = Some (Json.Str "converging"));
      match named "dynamics.outcome" with
      | [ outcome ] ->
          check_true "outcome carries diagnosis"
            (Json.member "diagnosis" outcome = Some (Json.Str "converging"));
          check_true "max regret is exactly 0 at convergence"
            (Json.member "max_regret" outcome = Some (Json.Int 0))
      | l -> Alcotest.failf "expected 1 outcome event, got %d" (List.length l))

let suite =
  [
    case "already stable" test_already_stable;
    case "convergence reaches Nash" test_convergence_reaches_nash;
    case "swap rule reaches swap stability" test_swap_rule_reaches_swap_stability;
    case "steps strictly improve" test_each_step_strictly_improves;
    case "step limit" test_step_limit;
    case "all schedules work" test_schedules_agree_on_stability;
    case "max-gain picks the largest gain" test_max_gain_picks_largest;
    case "cycle reports are honest" test_cycle_detection_no_false_positives;
    case "outcome accessors" test_outcome_accessors;
    case "rule names" test_rule_names_distinct;
    case "diagnosis events recorded" test_diagnosis_events_recorded;
    prop_convergence_on_small_tree_instances;
  ]
