open Helpers
module Moore = Bbng_graph.Moore
module Generators = Bbng_graph.Generators

let test_geometric_bound () =
  check_int "delta=2,d=3" (1 + 2 + 4 + 8) (Moore.geometric_bound ~delta:2 ~diameter:3);
  check_int "delta=3,d=2" 13 (Moore.geometric_bound ~delta:3 ~diameter:2);
  check_int "d=0" 1 (Moore.geometric_bound ~delta:5 ~diameter:0);
  check_int "delta=0" 1 (Moore.geometric_bound ~delta:0 ~diameter:4)

let test_geometric_saturates () =
  check_int "saturation" max_int (Moore.geometric_bound ~delta:10 ~diameter:100)

let test_ball_bound () =
  check_int "radius 0" 1 (Moore.ball_bound ~delta:7 ~radius:0);
  check_int "delta 0" 1 (Moore.ball_bound ~delta:0 ~radius:3);
  check_int "delta 1" 2 (Moore.ball_bound ~delta:1 ~radius:3);
  check_int "delta 2 (path both ways)" 7 (Moore.ball_bound ~delta:2 ~radius:3);
  (* delta=3, r=2: 1 + 3 + 3*2 = 10 (the Petersen graph attains it) *)
  check_int "delta 3 radius 2" 10 (Moore.ball_bound ~delta:3 ~radius:2)

let test_min_diameter () =
  check_int "trivial" 0 (Moore.min_diameter ~n:1 ~delta:3);
  (* 10 vertices of degree 3 need diameter >= 2 (Petersen tight) *)
  check_int "petersen" 2 (Moore.min_diameter ~n:10 ~delta:3);
  check_int "11 vertices need 3" 3 (Moore.min_diameter ~n:11 ~delta:3);
  (* star: n vertices, delta = n-1, diameter 1 possible *)
  check_int "star regime" 1 (Moore.min_diameter ~n:8 ~delta:7)

let test_min_diameter_is_sound () =
  (* Every concrete graph obeys the bound. *)
  let check_graph name g =
    match Bbng_graph.Distances.diameter g with
    | Some d ->
        let bound =
          Moore.min_diameter ~n:(Bbng_graph.Undirected.n g)
            ~delta:(Bbng_graph.Undirected.max_degree g)
        in
        check_true name (d >= bound)
    | None -> ()
  in
  check_graph "cycle" cycle6;
  check_graph "path" path5;
  check_graph "grid" (Generators.grid_graph ~rows:4 ~cols:4);
  check_graph "shift" (Generators.shift_graph ~t:4 ~k:2)

let test_lemma_5_1_condition () =
  (* The condition simplifies to 2^k < 2t; the paper picks t = 2^k. *)
  check_true "k=4,t=2^4" (Moore.lemma_5_1_condition ~t:16 ~k:4);
  check_true "k=5,t=2^5" (Moore.lemma_5_1_condition ~t:32 ~k:5);
  check_true "k=3,t=5 (just above 2^(k-1))" (Moore.lemma_5_1_condition ~t:5 ~k:3);
  check_false "k=4,t=2k too small" (Moore.lemma_5_1_condition ~t:8 ~k:4);
  check_false "t=2,k=3" (Moore.lemma_5_1_condition ~t:2 ~k:3)

let test_lemma_5_1_holds_on_graphs () =
  check_true "shift(4,2)" (Moore.lemma_5_1_holds (Generators.shift_graph ~t:4 ~k:2));
  (* a long path: delta=2, d=n-1, 2^d huge vs n: fails *)
  check_false "path" (Moore.lemma_5_1_holds (Generators.path_graph 12));
  check_false "disconnected" (Moore.lemma_5_1_holds two_triangles)

let prop_ball_bound_monotone =
  qcheck "ball bound grows with radius"
    (QCheck.make
       ~print:(fun (d, r) -> Printf.sprintf "delta=%d r=%d" d r)
       QCheck.Gen.(pair (int_range 0 8) (int_range 0 10)))
    (fun (delta, radius) ->
      Moore.ball_bound ~delta ~radius <= Moore.ball_bound ~delta ~radius:(radius + 1))

let prop_ball_at_most_geometric =
  qcheck "ball bound <= geometric bound"
    (QCheck.make
       ~print:(fun (d, r) -> Printf.sprintf "delta=%d r=%d" d r)
       QCheck.Gen.(pair (int_range 1 6) (int_range 0 8)))
    (fun (delta, radius) ->
      Moore.ball_bound ~delta ~radius <= Moore.geometric_bound ~delta ~diameter:radius)

let suite =
  [
    case "geometric bound" test_geometric_bound;
    case "geometric saturates" test_geometric_saturates;
    case "ball bound" test_ball_bound;
    case "min diameter" test_min_diameter;
    case "min diameter sound on graphs" test_min_diameter_is_sound;
    case "lemma 5.1 condition" test_lemma_5_1_condition;
    case "lemma 5.1 on graphs" test_lemma_5_1_holds_on_graphs;
    prop_ball_bound_monotone;
    prop_ball_at_most_geometric;
  ]
