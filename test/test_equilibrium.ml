open Helpers
open Bbng_core

let test_certify_equilibrium () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:7 in
  List.iter
    (fun version ->
      match certify version p with
      | Equilibrium.Equilibrium -> ()
      | v -> Alcotest.failf "sun: %a" Equilibrium.pp_verdict v)
    Cost.all_versions

let test_certify_refutation_witness () =
  (* a directed path is not an equilibrium: the head can do better *)
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 6) in
  let game = Game.make Cost.Max (Strategy.budgets p) in
  match Equilibrium.certify game p with
  | Equilibrium.Equilibrium -> Alcotest.fail "path should not be stable"
  | Equilibrium.Refuted r ->
      check_true "witness improves"
        (r.Equilibrium.better.Best_response.cost < r.Equilibrium.current_cost);
      (* replay the witness to confirm it is real *)
      let replay =
        Game.deviation_cost game p ~player:r.Equilibrium.player
          ~targets:r.Equilibrium.better.Best_response.targets
      in
      check_int "witness cost is honest" r.Equilibrium.better.Best_response.cost replay
  | Equilibrium.Degraded _ -> Alcotest.fail "unbudgeted certify cannot degrade"

let test_swap_stability_weaker () =
  (* every Nash equilibrium is swap stable *)
  let p = Bbng_constructions.Tripod.profile ~k:2 in
  let game = Game.make Cost.Max (Strategy.budgets p) in
  check_true "nash" (Equilibrium.is_nash game p);
  check_true "swap stable" (Equilibrium.is_swap_stable game p)

let test_digraph_is_nash () =
  check_true "tripod via digraph"
    (Equilibrium.digraph_is_nash Cost.Max (Bbng_graph.Generators.tripod 2));
  check_false "path via digraph"
    (Equilibrium.digraph_is_nash Cost.Max (Bbng_graph.Generators.directed_path 6))

let test_iter_profiles_count () =
  (* (1,1,1): each player picks 1 of 2 others: 8 profiles *)
  let b = Budget.unit_budgets 3 in
  let count = ref 0 in
  Equilibrium.iter_profiles b (fun _ -> incr count);
  check_int "8 profiles" 8 !count;
  check_int "count_profiles agrees" 8 (Equilibrium.count_profiles b)

let test_count_profiles_formula () =
  let b = Budget.of_list [ 2; 1; 0; 1 ] in
  (* C(3,2) * C(3,1) * C(3,0) * C(3,1) = 3*3*1*3 = 27 *)
  check_int "product of binomials" 27 (Equilibrium.count_profiles b)

let test_enumerate_equilibria_n2 () =
  (* n=2, budgets (1,1): the brace is the unique profile and is an NE *)
  let game = Game.make Cost.Sum (Budget.unit_budgets 2) in
  let eqs = Equilibrium.enumerate_equilibria game in
  check_int "unique equilibrium" 1 (List.length eqs)

let test_enumerate_equilibria_exist_n4 () =
  (* Theorem 2.3: equilibria exist for every instance; check small ones
     exhaustively in both versions. *)
  List.iter
    (fun version ->
      List.iter
        (fun budgets ->
          let b = Budget.of_list budgets in
          let game = Game.make version b in
          let eqs = Equilibrium.enumerate_equilibria ~limit:1 game in
          check_true
            (Printf.sprintf "NE exists for %s %s" (Cost.version_name version)
               (String.concat "," (List.map string_of_int budgets)))
            (eqs <> []))
        [ [ 1; 1; 1 ]; [ 0; 1; 1; 1 ]; [ 2; 1; 1 ]; [ 0; 0; 2; 1 ]; [ 1; 1; 1; 1 ] ])
    Cost.all_versions

let test_limit_respected () =
  let game = Game.make Cost.Max (Budget.unit_budgets 4) in
  let eqs = Equilibrium.enumerate_equilibria ~limit:2 game in
  check_true "at most 2" (List.length eqs <= 2)

let test_equilibrium_diameter_range () =
  let game = Game.make Cost.Sum (Budget.unit_budgets 4) in
  match Equilibrium.equilibrium_diameter_range game with
  | Some (lo, hi) ->
      check_true "ordered" (lo <= hi);
      (* Theorem 4.1 -> diameter at most 4 for unit SUM equilibria *)
      check_true "structural bound" (hi <= 4)
  | None -> Alcotest.fail "unit-budget games have equilibria"

let test_all_enumerated_are_nash () =
  let game = Game.make Cost.Max (Budget.of_list [ 1; 1; 0; 1 ]) in
  let eqs = Equilibrium.enumerate_equilibria game in
  check_true "non-empty" (eqs <> []);
  List.iter (fun p -> check_true "verified" (Equilibrium.is_nash game p)) eqs

(* Lemma 3.1: when sigma >= n-1, every equilibrium is connected. *)
let prop_lemma_3_1_connected_equilibria =
  qcheck ~count:25 "Lemma 3.1: equilibria of connectable instances are connected"
    (random_budget_gen ~n_min:2 ~n_max:4) (fun input ->
      let b = random_budget_of input in
      List.for_all
        (fun version ->
          let game = Game.make version b in
          List.for_all
            (fun p ->
              (not (Budget.connectable b))
              || Bbng_graph.Components.is_connected (Strategy.underlying p))
            (Equilibrium.enumerate_equilibria game))
        Cost.all_versions)

(* Section 3: when sigma = n-1, every equilibrium is a tree. *)
let test_tree_instances_have_tree_equilibria () =
  List.iter
    (fun budgets ->
      let b = Budget.of_list budgets in
      List.iter
        (fun version ->
          let game = Game.make version b in
          List.iter
            (fun p ->
              check_true
                (Printf.sprintf "tree NE for %s %s"
                   (String.concat "," (List.map string_of_int budgets))
                   (Cost.version_name version))
                (Bbng_graph.Trees.is_tree (Strategy.underlying p)))
            (Equilibrium.enumerate_equilibria game))
        Cost.all_versions)
    [ [ 0; 1; 1; 1 ]; [ 0; 0; 1; 2 ]; [ 0; 0; 0; 3 ]; [ 1; 1; 1; 0; 1 ] ]

let prop_existence_construction_certifies =
  qcheck ~count:40 "Existence.construct certifies as NE in both versions"
    (random_budget_gen ~n_min:2 ~n_max:7) (fun input ->
      let b = random_budget_of input in
      let p = Bbng_constructions.Existence.construct b in
      List.for_all
        (fun version -> Equilibrium.is_nash (Game.make version b) p)
        Cost.all_versions)

(* --- ranged enumeration (census shards) --- *)

let profiles_in_range b ~lo ~hi =
  let acc = ref [] in
  Equilibrium.iter_profiles_range b ~lo ~hi (fun p ->
      acc := Strategy.to_string p :: !acc);
  List.rev !acc

let test_iter_profiles_range_replays () =
  let b = Budget.of_list [ 2; 1; 1; 0 ] in
  let total = Equilibrium.count_profiles b in
  let all = ref [] in
  Equilibrium.iter_profiles b (fun p -> all := Strategy.to_string p :: !all);
  let all = List.rev !all in
  check_int "space size" total (List.length all);
  check_true "full range = iter_profiles"
    (profiles_in_range b ~lo:0 ~hi:total = all);
  (* every split point partitions the enumeration *)
  List.iter
    (fun mid ->
      check_true
        (Printf.sprintf "split at %d" mid)
        (profiles_in_range b ~lo:0 ~hi:mid @ profiles_in_range b ~lo:mid ~hi:total
        = all))
    [ 0; 1; total / 2; total - 1; total ]

let test_iter_profiles_range_guards () =
  let b = Budget.unit_budgets 3 in
  check_true "lo < 0 rejected"
    (match Equilibrium.iter_profiles_range b ~lo:(-1) ~hi:1 (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  check_true "hi past the space rejected"
    (match Equilibrium.iter_profiles_range b ~lo:0 ~hi:9 (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* empty slice: no calls, no error *)
  Equilibrium.iter_profiles_range b ~lo:4 ~hi:4 (fun _ ->
      Alcotest.fail "empty range produced a profile")

let prop_range_partition_agrees =
  qcheck ~count:50 "ranged enumeration partitions iter_profiles"
    (random_budget_gen ~n_min:2 ~n_max:5) (fun (n, total, seed) ->
      let b = Budget.random_partition (rng seed) ~n ~total in
      let space = Equilibrium.count_profiles b in
      space > 100_000
      ||
      let all = ref [] in
      Equilibrium.iter_profiles b (fun p ->
          all := Strategy.to_string p :: !all);
      let mid = space * (seed mod 100) / 100 in
      profiles_in_range b ~lo:0 ~hi:mid @ profiles_in_range b ~lo:mid ~hi:space
      = List.rev !all)

let suite =
  [
    case "certify equilibrium" test_certify_equilibrium;
    case "refutation witness is honest" test_certify_refutation_witness;
    case "swap stability is implied" test_swap_stability_weaker;
    case "digraph_is_nash" test_digraph_is_nash;
    case "iter_profiles count" test_iter_profiles_count;
    case "count_profiles formula" test_count_profiles_formula;
    case "n=2 unique equilibrium" test_enumerate_equilibria_n2;
    slow_case "equilibria exist (exhaustive small)" test_enumerate_equilibria_exist_n4;
    case "enumeration limit" test_limit_respected;
    case "equilibrium diameter range" test_equilibrium_diameter_range;
    case "enumerated profiles are Nash" test_all_enumerated_are_nash;
    prop_existence_construction_certifies;
    prop_lemma_3_1_connected_equilibria;
    slow_case "tree instances have tree equilibria (Sec 3)"
      test_tree_instances_have_tree_equilibria;
    case "iter_profiles_range replays" test_iter_profiles_range_replays;
    case "iter_profiles_range guards" test_iter_profiles_range_guards;
    prop_range_partition_agrees;
  ]
