(* Live telemetry: the per-domain sharded metrics registry, the
   OpenMetrics exposition round trip, progress heartbeats, and the
   viewer behind `bbng_cli top`.

   The load-bearing properties: sharded aggregation is exact (a
   multi-domain total equals the single-domain total for the same
   work), the renderer and parser agree byte-for-byte (escaping,
   cumulative buckets), heartbeats land in the report stream without
   confusing the replay checker, and the tail parser survives any
   truncation a SIGKILL can produce. *)

open Helpers
open Bbng_core
module Metrics = Bbng_obs.Metrics
module Openmetrics = Bbng_obs.Openmetrics
module Progress = Bbng_obs.Progress
module Live_view = Bbng_obs.Live_view
module Sink = Bbng_obs.Sink
module Json = Bbng_obs.Json
module Dynamics = Bbng_dynamics.Dynamics
module Schedule = Bbng_dynamics.Schedule

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- sharded registry --- *)

let test_counter_find_or_create () =
  let c = Metrics.counter "test.metrics.basics" in
  let base = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 41;
  check_int "incr + add" (base + 42) (Metrics.counter_value c);
  let c' = Metrics.counter "test.metrics.basics" in
  check_int "same name, same cells" (base + 42) (Metrics.counter_value c');
  Metrics.incr c';
  check_int "bump through the alias counts" (base + 43) (Metrics.counter_value c)

let test_shard_values_sum () =
  let c = Metrics.counter "test.metrics.shardsum" in
  Metrics.add c 7;
  let shards = Metrics.counter_shard_values c in
  check_int "one cell per shard" Metrics.shards (Array.length shards);
  check_int "shards sum to the aggregate"
    (Metrics.counter_value c)
    (Array.fold_left ( + ) 0 shards)

(* the ISSUE's acceptance property: totals recorded from many domains
   aggregate to exactly what one domain records for the same work *)
let test_sharded_equals_unsharded =
  qcheck ~count:20 "multi-domain total == single-domain total"
    QCheck.(int_range 1 2_000)
    (fun n ->
      let seq = Metrics.counter "test.metrics.seq"
      and par = Metrics.counter "test.metrics.par" in
      let seq0 = Metrics.counter_value seq
      and par0 = Metrics.counter_value par in
      for _ = 1 to n do
        Metrics.incr seq
      done;
      assert (Parallel.for_all ~domains:4 ~n (fun _ ->
                  Metrics.incr par;
                  true));
      Metrics.counter_value seq - seq0 = n
      && Metrics.counter_value par - par0 = n)

let test_histogram_multi_domain_aggregation () =
  let h = Metrics.histogram "test.metrics.hist_par" in
  let before = Metrics.histogram_snapshot h in
  let n = 500 in
  check_true "all observers succeed"
    (Parallel.for_all ~domains:4 ~n (fun i ->
         Metrics.observe h (i + 1);
         true));
  let after = Metrics.histogram_snapshot h in
  check_int "every observation counted" n
    (after.Metrics.hs_count - before.Metrics.hs_count);
  check_int "sum aggregates exactly" (n * (n + 1) / 2)
    (after.Metrics.hs_sum - before.Metrics.hs_sum);
  check_int "bucket counts cover the count"
    after.Metrics.hs_count
    (Array.fold_left ( + ) 0 after.Metrics.hs_buckets)

let test_gauge_labels () =
  let g = Metrics.gauge ~labels:[ ("task", "a") ] "test.metrics.g" in
  let g' = Metrics.gauge ~labels:[ ("task", "b") ] "test.metrics.g" in
  Metrics.set g 1.5;
  Metrics.set_int g' 3;
  check_true "labelled gauges are distinct cells"
    (Metrics.gauge_value g = 1.5 && Metrics.gauge_value g' = 3.0);
  let g'' = Metrics.gauge ~labels:[ ("task", "a") ] "test.metrics.g" in
  Metrics.set g'' 2.0;
  check_true "same (name, labels) is the same cell" (Metrics.gauge_value g = 2.0)

(* --- OpenMetrics exposition --- *)

let test_escape_roundtrip =
  qcheck ~count:200 "unescape ∘ escape_label_value = id" QCheck.string
    (fun s -> Openmetrics.unescape (Openmetrics.escape_label_value s) = s)

let test_help_escape_roundtrip =
  qcheck ~count:200 "unescape ∘ escape_help = id" QCheck.string
    (fun s -> Openmetrics.unescape (Openmetrics.escape_help s) = s)

let find_family families name =
  match List.find_opt (fun f -> f.Openmetrics.fam_name = name) families with
  | Some f -> f
  | None -> Alcotest.failf "family %S missing from exposition" name

let test_render_validate_roundtrip () =
  let c = Metrics.counter ~help:"help with \\ and \nnewline" "test.metrics.rt" in
  Metrics.add c 5;
  let g =
    Metrics.gauge
      ~labels:[ ("task", "quote\" slash\\ nl\n") ]
      "test.metrics.rt_gauge"
  in
  Metrics.set g 2.5;
  let h = Metrics.histogram "test.metrics.rt_hist" in
  List.iter (Metrics.observe h) [ 1; 10; 100; 1_000; 1_000_000 ];
  let text = Openmetrics.render () in
  check_true "ends with the EOF terminator" (contains ~needle:"# EOF" text);
  let families =
    match Openmetrics.validate text with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "rendered exposition invalid: %s" e
  in
  let cf = find_family families "bbng_test_metrics_rt" in
  check_true "counter value survives"
    (List.exists
       (fun s ->
         s.Openmetrics.value >= 5.0
         && contains ~needle:"_total" s.Openmetrics.sample_name)
       cf.Openmetrics.samples);
  let gf = find_family families "bbng_test_metrics_rt_gauge" in
  check_true "nasty label value round-trips unescaped"
    (List.exists
       (fun s ->
         List.mem_assoc "task" s.Openmetrics.labels
         && List.assoc "task" s.Openmetrics.labels = "quote\" slash\\ nl\n")
       gf.Openmetrics.samples)

let test_histogram_buckets_cumulative =
  qcheck ~count:20 "rendered histogram buckets validate as cumulative"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 1_000_000))
    (fun values ->
      let h = Metrics.histogram "test.metrics.cumul" in
      List.iter (Metrics.observe h) values;
      (* validate enforces: non-decreasing in le order, +Inf == _count,
         _sum/_count present — any violation fails the property *)
      match Openmetrics.validate (Openmetrics.render ()) with
      | Ok _ -> true
      | Error _ -> false)

(* --- heartbeats --- *)

(* run [f] with a zero heartbeat interval and a JSONL sink on a temp
   file; return the recorded events *)
let with_recording f =
  let path = Filename.temp_file "bbng_metrics" ".jsonl" in
  let old = Progress.interval_ms () in
  Progress.set_interval_ms 0.;
  let result =
    Fun.protect
      ~finally:(fun () -> Progress.set_interval_ms old)
      (fun () ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Sink.scoped (Sink.Jsonl oc) f))
  in
  let ic = open_in path in
  let events, _skipped =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove path)
      (fun () -> Bbng_obs.Trace_export.read_events ic)
  in
  (result, events)

let heartbeats_of events =
  List.filter
    (fun e -> Json.member "event" e = Some (Json.Str "progress.heartbeat"))
    events

let test_heartbeat_fields () =
  let (), events =
    with_recording (fun () ->
        Progress.with_task ~total:5 "test.hb" (fun t ->
            for _ = 1 to 5 do
              Progress.step t
            done))
  in
  let beats =
    List.filter
      (fun e -> Json.member "task" e = Some (Json.Str "test.hb"))
      (heartbeats_of events)
  in
  check_true "at least one heartbeat per task" (beats <> []);
  let last = List.nth beats (List.length beats - 1) in
  check_true "final beat reports all work done"
    (Json.member "done" last = Some (Json.Int 5));
  check_true "declared total present"
    (Json.member "total" last = Some (Json.Int 5));
  check_true "rate present"
    (match Json.member "rate_per_s" last with
    | Some (Json.Float _) | Some (Json.Int _) -> true
    | _ -> false);
  check_true "embedded counter snapshot is an object"
    (match Json.member "counters" last with
    | Some (Json.Obj _) -> true
    | _ -> false)

let test_heartbeat_saturated_total () =
  (* a saturated Combinatorics estimate maps to "unknown": no
     total/pct/eta in the beats *)
  let (), events =
    with_recording (fun () ->
        Progress.with_task ~total:max_int "test.hb_sat" (fun t ->
            for _ = 1 to 3 do
              Progress.step t
            done))
  in
  let beats =
    List.filter
      (fun e -> Json.member "task" e = Some (Json.Str "test.hb_sat"))
      (heartbeats_of events)
  in
  check_true "beats still emitted" (beats <> []);
  List.iter
    (fun b ->
      check_true "no total for saturated estimates"
        (Json.member "total" b = None && Json.member "eta_s" b = None))
    beats

let test_replay_ignores_heartbeats () =
  (* a flight recording laced with telemetry must replay untouched:
     Dynamics.run heartbeats at every step with a zero interval *)
  let b = Budget.unit_budgets 6 in
  let g = game Cost.Max b in
  let start = Strategy.random (rng 2) b in
  let outcome, events =
    with_recording (fun () ->
        Dynamics.run ~max_steps:500 g ~schedule:Schedule.Round_robin
          ~rule:Dynamics.Exact_best start)
  in
  check_true "heartbeats interleave the recording" (heartbeats_of events <> []);
  match Bbng_obs.Replay.runs_of_events events with
  | [ run ] -> (
      check_int "every applied step recorded" (Dynamics.steps outcome)
        (List.length run.Bbng_obs.Replay.steps);
      match Bbng_dynamics.Replay.check_run run with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "telemetry broke replay at step %d: %s"
            d.Bbng_dynamics.Replay.at_step d.Bbng_dynamics.Replay.reason)
  | runs -> Alcotest.failf "expected 1 recorded run, got %d" (List.length runs)

(* --- the top viewer --- *)

let test_feed_line_truncation_tolerant () =
  let st = Live_view.create_state () in
  (* every way a SIGKILL can tear the last line of a .partial *)
  List.iter (Live_view.feed_line st)
    [
      "";
      "   ";
      "{\"event\":\"dynamics.step\",\"ts_us\":1.0,\"step\":3";
      "not json at all";
      "{\"no_event_field\":true}";
      "{\"event\":";
      "\255\254 binary junk \000";
    ];
  check_int "nothing parsed as an event" 0 (Live_view.events st);
  (* blank lines are ignored, the five torn/garbage lines count *)
  check_int "every torn line counted" 5 (Live_view.skipped st);
  let frame = Live_view.render st ~source:"torn.jsonl.partial" in
  check_true "renderer survives an all-skip state"
    (contains ~needle:"torn.jsonl.partial" frame)

let test_tail_consumes_only_complete_lines () =
  let path = Filename.temp_file "bbng_tail" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let st = Live_view.create_state () in
      let tail = Live_view.open_tail path in
      let append s =
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o644 path
        in
        output_string oc s;
        close_out oc
      in
      append "{\"event\":\"progress.heartbeat\",\"ts_us\":1.0,\"task\":\"t\",\"done\":1}\n";
      append "{\"event\":\"progress.he";
      check_int "only the complete line is fed" 1 (Live_view.poll tail st);
      check_int "one event so far" 1 (Live_view.events st);
      check_int "half-written line stays buffered" 0 (Live_view.skipped st);
      append "artbeat\",\"ts_us\":2.0,\"task\":\"t\",\"done\":2}\n";
      check_int "finishing the line releases it" 1 (Live_view.poll tail st);
      check_int "both heartbeats folded in" 2 (Live_view.heartbeats st);
      check_false "no summary yet" (Live_view.finished st);
      append "{\"event\":\"run.summary\",\"ts_us\":3.0}\n";
      ignore (Live_view.poll tail st);
      check_true "run.summary finishes the view" (Live_view.finished st))

let test_tail_retarget_keeps_offset () =
  (* the .partial → final commit rename: same bytes, new name *)
  let partial = Filename.temp_file "bbng_retarget" ".jsonl.partial" in
  let final = Filename.chop_suffix partial ".partial" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists partial then Sys.remove partial;
      if Sys.file_exists final then Sys.remove final)
    (fun () ->
      let oc = open_out partial in
      output_string oc "{\"event\":\"dynamics.start\",\"ts_us\":1.0}\n";
      close_out oc;
      let st = Live_view.create_state () in
      let tail = Live_view.open_tail partial in
      check_int "first poll reads the prefix" 1 (Live_view.poll tail st);
      Sys.rename partial final;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 final in
      output_string oc "{\"event\":\"run.summary\",\"ts_us\":2.0}\n";
      close_out oc;
      Live_view.retarget tail final;
      check_int "retarget resumes at the old offset, not 0" 1
        (Live_view.poll tail st);
      check_int "no event replayed twice" 2 (Live_view.events st))

let suite =
  [
    case "counter find-or-create" test_counter_find_or_create;
    case "shard values sum to the aggregate" test_shard_values_sum;
    test_sharded_equals_unsharded;
    case "histogram aggregates across domains" test_histogram_multi_domain_aggregation;
    case "labelled gauges" test_gauge_labels;
    test_escape_roundtrip;
    test_help_escape_roundtrip;
    case "render → validate round trip" test_render_validate_roundtrip;
    test_histogram_buckets_cumulative;
    case "heartbeat fields" test_heartbeat_fields;
    case "saturated totals suppress total/eta" test_heartbeat_saturated_total;
    case "replay ignores heartbeats" test_replay_ignores_heartbeats;
    case "feed_line tolerates torn lines" test_feed_line_truncation_tolerant;
    case "tail consumes only complete lines" test_tail_consumes_only_complete_lines;
    case "retarget keeps the read offset" test_tail_retarget_keeps_offset;
  ]
