(* The two comparison models of Section 1.1: the directed BBC game
   (Laoutaris et al.) and the basic network creation game (Alon et
   al.). *)

open Helpers
open Bbng_core
open Bbng_baselines
module Generators = Bbng_graph.Generators
module Digraph = Bbng_graph.Digraph

(* --- BBC (directed) --- *)

let test_directed_distances () =
  let g = Generators.directed_path 4 in
  check_int_array "forward" [| 0; 1; 2; 3 |] (Bbc.directed_distances g 0);
  (* backwards there is no directed path *)
  let d = Bbc.directed_distances g 3 in
  check_int "self" 0 d.(3);
  check_int "unreachable backwards" Bbng_graph.Bfs.unreachable d.(0)

let test_bbc_cost_asymmetry () =
  (* on the directed path the head reaches everyone, the tail no one:
     ownership matters in BBC but not in the paper's model *)
  let p = Strategy.of_digraph (Generators.directed_path 4) in
  check_int "head" 6 (Bbc.player_cost p 0);
  check_int "tail pays Cinf each" (3 * 16) (Bbc.player_cost p 3);
  (* the undirected game charges both ends the same *)
  let game = Game.make Cost.Sum (Strategy.budgets p) in
  check_int "undirected symmetric" (Game.player_cost game p 0)
    (Game.player_cost game p 3)

let test_bbc_costs_batch () =
  let p = Strategy.of_digraph (Generators.directed_cycle 4) in
  check_int_array "cycle costs" [| 6; 6; 6; 6 |] (Bbc.costs p)

let test_bbc_deviation () =
  let p = Strategy.of_digraph (Generators.directed_path 3) in
  (* player 0 repoints from 1 to 2: reaches 2 at 1, but 1 unreachable *)
  check_int "deviation" (1 + 9) (Bbc.deviation_cost p ~player:0 ~targets:[| 2 |]);
  Alcotest.check_raises "budget enforced"
    (Invalid_argument "Bbc.deviation_cost: budget violation") (fun () ->
      ignore (Bbc.deviation_cost p ~player:0 ~targets:[| 1; 2 |]))

let test_bbc_best_response () =
  (* directed out-star center already reaches all at distance 1 *)
  let p = Strategy.of_digraph (Generators.out_star 5) in
  let m = Bbc.best_response p 0 in
  check_int "optimal cost" 4 m.Best_response.cost;
  check_true "already best" (Bbc.exact_improvement p 0 = None)

let test_bbc_directed_cycle_nash () =
  (* the directed n-cycle: each player's single arc; re-pointing the arc
     to a farther vertex shortens some distances but disconnects none
     (others' arcs still there).  For n = 3 it is a Nash equilibrium. *)
  let p = Strategy.of_digraph (Generators.directed_cycle 3) in
  check_true "C3 directed Nash" (Bbc.is_nash p)

let test_bbc_vs_undirected_stability_differ () =
  (* The in-star: every leaf owns one arc to the hub.  In the paper's
     undirected game this is a Nash equilibrium (Lemma 2.2: local
     diameter 2, no braces).  In the directed BBC game a leaf pointing
     at the budget-0 hub reaches nothing beyond it, while re-pointing at
     another leaf reaches that leaf AND the hub through it — so the same
     profile is unstable.  Link direction is exactly the model gap
     Section 1.1 describes. *)
  let p = Strategy.of_digraph (Generators.in_star 4) in
  let game = Game.make Cost.Sum (Strategy.budgets p) in
  check_true "undirected Nash" (Equilibrium.is_nash game p);
  check_false "BBC unstable" (Bbc.is_nash p);
  (match Bbc.exact_improvement p 1 with
  | Some m ->
      check_true "leaf strictly improves in BBC"
        (m.Best_response.cost < Bbc.player_cost p 1)
  | None -> Alcotest.fail "expected a BBC improvement for a leaf")

let test_bbc_social_diameter () =
  check_int "directed cycle" 3 (Bbc.social_diameter (Strategy.of_digraph (Generators.directed_cycle 4)));
  check_int "path has unreachable pairs" 16
    (Bbc.social_diameter (Strategy.of_digraph (Generators.directed_path 4)))

(* --- Basic NCG (Alon et al.) --- *)

let test_swap_moves () =
  let g = path5 in
  (* vertex 0 has one incident edge and three non-neighbors *)
  check_int "moves of a leaf" 3 (List.length (Basic_ncg.swap_moves g 0));
  (* vertex 1: two incident edges x two non-neighbors *)
  check_int "moves of inner" 4 (List.length (Basic_ncg.swap_moves g 1))

let test_apply_swap () =
  let g = Basic_ncg.apply_swap path5 0 ~drop:1 ~add:4 in
  check_false "dropped" (Bbng_graph.Undirected.mem_edge g 0 1);
  check_true "added" (Bbng_graph.Undirected.mem_edge g 0 4);
  Alcotest.check_raises "absent edge"
    (Invalid_argument "Basic_ncg.apply_swap: edge to drop is absent") (fun () ->
      ignore (Basic_ncg.apply_swap path5 0 ~drop:3 ~add:4))

let test_star_is_basic_equilibrium () =
  (* the star is a swap equilibrium in both versions *)
  List.iter
    (fun v ->
      check_true
        (Cost.version_name v ^ " star")
        (Basic_ncg.is_swap_equilibrium v star7))
    Cost.all_versions

let test_long_path_not_basic_equilibrium () =
  let g = Bbng_graph.Generators.path_graph 7 in
  check_false "path unstable in MAX" (Basic_ncg.is_swap_equilibrium Cost.Max g)

let test_certify_witness_honest () =
  let g = Bbng_graph.Generators.path_graph 7 in
  match Basic_ncg.certify Cost.Max g with
  | None -> Alcotest.fail "expected instability"
  | Some (v, drop, add, new_cost) ->
      let g' = Basic_ncg.apply_swap g v ~drop ~add in
      check_int "witness cost replays" new_cost (Cost.vertex_cost Cost.Max g' v);
      check_true "strictly better" (new_cost < Cost.vertex_cost Cost.Max g v)

(* The Section 1.1 headline: the tripod is a MAX Nash equilibrium under
   ownership but NOT a swap equilibrium in the basic game (where any
   endpoint may swap any incident edge, tree equilibria have diameter
   <= 3). *)
let test_tripod_ownership_is_essential () =
  let p = Bbng_constructions.Tripod.profile ~k:4 in
  let game = Game.make Cost.Max (Strategy.budgets p) in
  check_true "bounded-budget Nash" (Equilibrium.is_nash game p);
  match Basic_ncg.bbg_nash_implies_basic_instability_witness Cost.Max p with
  | Some (v, _, _, new_cost) ->
      check_true "a vertex escapes once ownership is erased"
        (new_cost < Cost.vertex_cost Cost.Max (Strategy.underlying p) v)
  | None -> Alcotest.fail "tripod should be unstable in the basic game"

let prop_basic_witness_replays =
  qcheck ~count:40 "basic-NCG witnesses replay honestly" (gnp_gen ~n_min:3 ~n_max:9)
    (fun input ->
      let g = random_connected_of input in
      match Basic_ncg.certify Cost.Sum g with
      | None -> true
      | Some (v, drop, add, new_cost) ->
          let g' = Basic_ncg.apply_swap g v ~drop ~add in
          Cost.vertex_cost Cost.Sum g' v = new_cost
          && new_cost < Cost.vertex_cost Cost.Sum g v)

let prop_bbc_br_at_most_current =
  qcheck ~count:40 "BBC best response never worse than current"
    (random_budget_gen ~n_min:2 ~n_max:7) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let player = seed mod n in
      (Bbc.best_response p player).Best_response.cost <= Bbc.player_cost p player)

let suite =
  [
    case "directed distances" test_directed_distances;
    case "BBC cost asymmetry" test_bbc_cost_asymmetry;
    case "BBC costs batch" test_bbc_costs_batch;
    case "BBC deviation" test_bbc_deviation;
    case "BBC best response" test_bbc_best_response;
    case "BBC directed C3 Nash" test_bbc_directed_cycle_nash;
    case "BBC vs undirected stability" test_bbc_vs_undirected_stability_differ;
    case "BBC social diameter" test_bbc_social_diameter;
    case "basic: swap moves" test_swap_moves;
    case "basic: apply swap" test_apply_swap;
    case "basic: star is equilibrium" test_star_is_basic_equilibrium;
    case "basic: long path unstable" test_long_path_not_basic_equilibrium;
    case "basic: witness honest" test_certify_witness_honest;
    case "tripod: ownership is essential (Sec 1.1)" test_tripod_ownership_is_essential;
    prop_basic_witness_replays;
    prop_bbc_br_at_most_current;
  ]
