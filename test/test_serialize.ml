open Helpers
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module S = Bbng_graph.Serialize

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_digraph_roundtrip () =
  let g = Bbng_graph.Generators.tripod 3 in
  let g' = S.Digraph_io.of_text (S.Digraph_io.to_text g) in
  check_true "roundtrip" (Digraph.equal g g')

let test_digraph_empty () =
  let g = Digraph.create ~n:4 in
  let g' = S.Digraph_io.of_text (S.Digraph_io.to_text g) in
  check_true "empty roundtrip" (Digraph.equal g g');
  check_int "n preserved" 4 (Digraph.n g')

let test_digraph_text_shape () =
  let g = Digraph.of_arcs ~n:3 [ (0, 1); (2, 0) ] in
  let text = S.Digraph_io.to_text g in
  check_true "header" (contains text "digraph 3");
  check_true "arc line" (contains text "0 1")

let test_of_text_comments_and_blanks () =
  let g = S.Digraph_io.of_text "digraph 3\n# a comment\n\n0 1\n  2 0 \n" in
  check_true "arcs parsed" (Digraph.mem_arc g 0 1 && Digraph.mem_arc g 2 0);
  check_int "arc count" 2 (Digraph.arc_count g)

let test_of_text_rejects () =
  Alcotest.check_raises "wrong kind"
    (Invalid_argument "Serialize: expected header \"digraph\" <n>, got \"graph 3\"")
    (fun () -> ignore (S.Digraph_io.of_text "graph 3\n0 1\n"));
  Alcotest.check_raises "bad line" (Invalid_argument "Serialize: bad line \"0 1 2\"")
    (fun () -> ignore (S.Digraph_io.of_text "digraph 3\n0 1 2\n"))

let test_undirected_roundtrip () =
  let g = cycle6 in
  let g' = S.Undirected_io.of_text (S.Undirected_io.to_text g) in
  check_true "roundtrip" (Undirected.equal g g')

let test_dot_output () =
  let dot = S.Digraph_io.to_dot ~name:"trip" (Bbng_graph.Generators.tripod 1) in
  check_true "digraph keyword" (contains dot "digraph trip {");
  check_true "arrow" (contains dot "->");
  let dot = S.Undirected_io.to_dot path5 in
  check_true "graph keyword" (contains dot "graph g {");
  check_true "edge" (contains dot "0 -- 1")

let test_brace_two_arcs_in_dot () =
  let g = Digraph.of_arcs ~n:2 [ (0, 1); (1, 0) ] in
  let dot = S.Digraph_io.to_dot g in
  check_true "both arcs" (contains dot "0 -> 1" && contains dot "1 -> 0")

let prop_digraph_roundtrip =
  qcheck "digraph text roundtrip (random orientations)" (gnp_gen ~n_min:1 ~n_max:12)
    (fun (n, seed) ->
      let u = random_gnp_of (n, seed) in
      let g = Digraph.of_arcs ~n (Undirected.edges u) in
      Digraph.equal g (S.Digraph_io.of_text (S.Digraph_io.to_text g)))

let prop_undirected_roundtrip =
  qcheck "undirected text roundtrip" (gnp_gen ~n_min:1 ~n_max:12)
    (fun input ->
      let g = random_gnp_of input in
      Undirected.equal g (S.Undirected_io.of_text (S.Undirected_io.to_text g)))

let suite =
  [
    case "digraph roundtrip" test_digraph_roundtrip;
    case "empty digraph" test_digraph_empty;
    case "text shape" test_digraph_text_shape;
    case "comments and blanks" test_of_text_comments_and_blanks;
    case "rejects malformed" test_of_text_rejects;
    case "undirected roundtrip" test_undirected_roundtrip;
    case "dot output" test_dot_output;
    case "brace renders two arcs" test_brace_two_arcs_in_dot;
    prop_digraph_roundtrip;
    prop_undirected_roundtrip;
  ]
