open Helpers
open Bbng_core

(* A small asymmetric fixture: 0 owns two arcs, on a path-ish start. *)
let fixture () =
  let b = Budget.of_list [ 2; 1; 0; 0; 0 ] in
  (* 0 -> {1, 2}, 1 -> 3; vertex 4 isolated *)
  let p = Strategy.make b [| [| 1; 2 |]; [| 3 |]; [||]; [||]; [||] |] in
  (b, p)

let test_exact_connects () =
  (* With the player's arcs removed the rest is {1,3}, {2}, {4}; budget 2
     joins the big component plus one singleton, leaving exactly one
     vertex at Cinf = 25.  All such choices cost 1 + 1 + 2 + 25 = 29 and
     the lexicographically smallest is {1, 2}. *)
  let _, p = fixture () in
  let game = Game.make Cost.Sum (Strategy.budgets p) in
  let m = Best_response.exact game p 0 in
  check_int "cost" 29 m.Best_response.cost;
  check_int_array "tie-break" [| 1; 2 |] m.Best_response.targets

let test_exact_is_minimum () =
  (* brute-force double check on a tiny game *)
  let _, p = fixture () in
  List.iter
    (fun version ->
      let game = Game.make version (Strategy.budgets p) in
      let m = Best_response.exact game p 0 in
      (* every alternative strategy costs at least m.cost *)
      let n = 5 in
      Bbng_graph.Combinatorics.iter_combinations ~n:(n - 1) ~k:2 (fun c ->
          (* unshift around player 0: indices 0..3 map to 1..4 *)
          let targets = Array.map (fun i -> i + 1) c in
          let cost = Game.deviation_cost game p ~player:0 ~targets in
          check_true "minimum" (m.Best_response.cost <= cost)))
    Cost.all_versions

let test_exact_zero_budget () =
  let _, p = fixture () in
  let game = Game.make Cost.Max (Strategy.budgets p) in
  let m = Best_response.exact game p 2 in
  check_int_array "empty strategy" [||] m.Best_response.targets

let test_lemma_2_2 () =
  (* hub of an out-star has local diameter 1 *)
  let p = Strategy.of_digraph (Bbng_graph.Generators.out_star 5) in
  check_true "hub" (Best_response.satisfies_lemma_2_2 p 0);
  check_true "leaf at distance 2, no brace" (Best_response.satisfies_lemma_2_2 p 1);
  (* braced pair with a third vertex: the lemma does not apply to a
     braced vertex with local diameter 2 (vertex 1 here; vertex 0 has
     local diameter 1, so it still qualifies) *)
  let b = Budget.of_list [ 1; 1; 1 ] in
  let braced = Strategy.make b [| [| 1 |]; [| 0 |]; [| 0 |] |] in
  check_true "braced but adjacent to all" (Best_response.satisfies_lemma_2_2 braced 0);
  check_false "braced at distance 2" (Best_response.satisfies_lemma_2_2 braced 1)

let test_exact_improvement_none_at_equilibrium () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:6 in
  List.iter
    (fun version ->
      let game = Game.make version (Strategy.budgets p) in
      for player = 0 to 5 do
        check_true
          (Printf.sprintf "%s player %d" (Cost.version_name version) player)
          (Best_response.exact_improvement game p player = None)
      done)
    Cost.all_versions

let test_exact_improvement_found () =
  (* directed path: the first vertex would rather link to the middle in MAX *)
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 7) in
  let game = Game.make Cost.Max (Strategy.budgets p) in
  match Best_response.exact_improvement game p 0 with
  | Some m ->
      check_true "strictly better"
        (m.Best_response.cost < Game.player_cost game p 0)
  | None -> Alcotest.fail "expected an improvement"

let test_swap_equals_exact_for_unit_budget () =
  (* with budget 1, a swap IS a full strategy change *)
  let st = rng 11 in
  for _ = 1 to 20 do
    let p = Strategy.random st (Budget.unit_budgets 6) in
    let game = Game.make Cost.Sum (Budget.unit_budgets 6) in
    for player = 0 to 5 do
      let swap = Best_response.swap_best game p player in
      let full = Best_response.best_improvement game p player in
      match (swap, full) with
      | None, None -> ()
      | Some a, Some b ->
          check_int "same cost" b.Best_response.cost a.Best_response.cost
      | Some _, None -> Alcotest.fail "swap found, exact missed"
      | None, Some _ -> Alcotest.fail "exact found, swap missed"
    done
  done

let test_first_improving_swap_improves () =
  let p = Strategy.of_digraph (Bbng_graph.Generators.directed_path 8) in
  let game = Game.make Cost.Sum (Strategy.budgets p) in
  match Best_response.first_improving_swap game p 0 with
  | Some m -> check_true "improves" (m.Best_response.cost < Game.player_cost game p 0)
  | None -> Alcotest.fail "expected a swap improvement"

let test_greedy_respects_budget () =
  let b = Budget.of_list [ 3; 0; 0; 0; 0; 0 ] in
  let p = Strategy.make b [| [| 1; 2; 3 |]; [||]; [||]; [||]; [||]; [||] |] in
  let game = Game.make Cost.Sum b in
  let m = Best_response.greedy game p 0 in
  check_int "budget respected" 3 (Array.length m.Best_response.targets);
  (* greedy on SUM from a star-owner: must reach everyone, its result is optimal here *)
  let exact = Best_response.exact game p 0 in
  check_int "greedy optimal on star" exact.Best_response.cost m.Best_response.cost

let test_engines_agree_and_are_recorded () =
  (* both pricing engines are exact, so every finder must return the
     identical move under either; the audits must record which engine
     priced them and the size of the scanned candidate space *)
  let bfs = Deviation_eval.Fixed Deviation_eval.Bfs_overlay in
  let rows = Deviation_eval.Fixed Deviation_eval.Rows in
  let _, p = fixture () in
  List.iter
    (fun version ->
      let game = Game.make version (Strategy.budgets p) in
      check_true "exact agrees"
        (Best_response.exact ~engine:bfs game p 0
        = Best_response.exact ~engine:rows game p 0);
      check_true "best_improvement agrees"
        (Best_response.best_improvement ~engine:bfs game p 0
        = Best_response.best_improvement ~engine:rows game p 0);
      check_true "swap_best agrees"
        (Best_response.swap_best ~engine:bfs game p 0
        = Best_response.swap_best ~engine:rows game p 0);
      let ab = Best_response.audit_exact ~engine:bfs game p 0 in
      let ar = Best_response.audit_exact ~engine:rows game p 0 in
      check_true "bfs engine recorded"
        (ab.Best_response.engine = Deviation_eval.Bfs_overlay);
      check_true "rows engine recorded"
        (ar.Best_response.engine = Deviation_eval.Rows);
      check_true "audits agree up to the engine field"
        (ab.Best_response.tier = ar.Best_response.tier
        && ab.Best_response.scanned = ar.Best_response.scanned
        && ab.Best_response.candidates = ar.Best_response.candidates
        && ab.Best_response.best = ar.Best_response.best);
      (* fixture: n = 5, b = 2, no pruning fires for player 0 *)
      check_true "exhaustive candidate count"
        (ab.Best_response.candidates = Bbng_graph.Combinatorics.Exact 6);
      let sw = Best_response.audit_swap ~engine:rows game p 0 in
      check_true "swap candidate count"
        (sw.Best_response.candidates = Bbng_graph.Combinatorics.Exact 4))
    Cost.all_versions

let prop_engines_agree_on_random_profiles =
  qcheck ~count:100 "best_improvement engine-independent"
    (random_budget_gen ~n_min:2 ~n_max:7) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let player = seed mod n in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          Best_response.best_improvement
            ~engine:(Deviation_eval.Fixed Deviation_eval.Bfs_overlay) game p
            player
          = Best_response.best_improvement
              ~engine:(Deviation_eval.Fixed Deviation_eval.Rows) game p player)
        Cost.all_versions)

let prop_swap_never_beats_exact =
  qcheck "exact best <= best swap" (random_budget_gen ~n_min:2 ~n_max:6)
    (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let game = Game.make Cost.Max (Strategy.budgets p) in
      let player = seed mod n in
      let exact = Best_response.exact game p player in
      match Best_response.swap_best game p player with
      | None -> exact.Best_response.cost <= Game.player_cost game p player
      | Some swap -> exact.Best_response.cost <= swap.Best_response.cost)

let prop_exact_at_most_current =
  qcheck "exact best response never worse than current"
    (random_budget_gen ~n_min:2 ~n_max:6) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          let player = seed mod n in
          (Best_response.exact game p player).Best_response.cost
          <= Game.player_cost game p player)
        Cost.all_versions)

let prop_greedy_never_beats_exact =
  qcheck "greedy >= exact" (random_budget_gen ~n_min:2 ~n_max:6)
    (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let game = Game.make Cost.Sum (Strategy.budgets p) in
      let player = seed mod n in
      (Best_response.greedy game p player).Best_response.cost
      >= (Best_response.exact game p player).Best_response.cost)

let suite =
  [
    case "exact absorbs isolated vertices" test_exact_connects;
    case "exact is the minimum" test_exact_is_minimum;
    case "exact with zero budget" test_exact_zero_budget;
    case "lemma 2.2 shortcut" test_lemma_2_2;
    case "no improvement at equilibrium" test_exact_improvement_none_at_equilibrium;
    case "improvement found off equilibrium" test_exact_improvement_found;
    case "swap = exact for unit budgets" test_swap_equals_exact_for_unit_budget;
    case "first improving swap" test_first_improving_swap_improves;
    case "greedy respects budget" test_greedy_respects_budget;
    case "engines agree and are recorded" test_engines_agree_and_are_recorded;
    prop_engines_agree_on_random_profiles;
    prop_swap_never_beats_exact;
    prop_exact_at_most_current;
    prop_greedy_never_beats_exact;
  ]
