open Helpers
open Bbng_core

let b4 = Budget.of_list [ 1; 1; 1; 0 ]
let star_profile () =
  (* 0,1,2 all point at 3 *)
  Strategy.make b4 [| [| 3 |]; [| 3 |]; [| 3 |]; [||] |]

let test_accessors () =
  let g = Game.make Cost.Max b4 in
  check_int "n" 4 (Game.n g);
  check_true "version" (Game.version g = Cost.Max);
  check_int "budgets" 1 (Budget.get (Game.budgets g) 0)

let test_player_cost () =
  let g = Game.make Cost.Sum b4 in
  let p = star_profile () in
  (* leaf: 1 (hub) + 2 + 2 = 5; hub: 3 *)
  check_int "leaf" 5 (Game.player_cost g p 0);
  check_int "hub" 3 (Game.player_cost g p 3)

let test_costs_batch () =
  let g = Game.make Cost.Sum b4 in
  check_int_array "all" [| 5; 5; 5; 3 |] (Game.costs g (star_profile ()))

let test_deviation_cost () =
  let g = Game.make Cost.Sum b4 in
  let p = star_profile () in
  (* 0 deviates to point at 1: 0-1, 1-3, 2-3: dist 1,2,3 = 6 *)
  check_int "deviation" 6 (Game.deviation_cost g p ~player:0 ~targets:[| 1 |]);
  (* deviation does not mutate the profile *)
  check_int "profile intact" 5 (Game.player_cost g p 0)

let test_deviation_budget_enforced () =
  let g = Game.make Cost.Sum b4 in
  Alcotest.check_raises "too many targets"
    (Invalid_argument "Game.deviation_cost: deviation violates the player's budget")
    (fun () ->
      ignore (Game.deviation_cost g (star_profile ()) ~player:0 ~targets:[| 1; 2 |]))

let test_social_cost () =
  let g = Game.make Cost.Max b4 in
  check_int "star diameter" 2 (Game.social_cost g (star_profile ()));
  (* disconnected profile: 0,1,2 in a triangle, 3 isolated *)
  let p = Strategy.make b4 [| [| 1 |]; [| 2 |]; [| 0 |]; [||] |] in
  check_int "disconnected" 16 (Game.social_cost g p)

let test_social_welfare () =
  let g = Game.make Cost.Sum b4 in
  check_int "welfare" (5 + 5 + 5 + 3) (Game.social_welfare g (star_profile ()))

let test_profile_size_mismatch () =
  let g = Game.make Cost.Sum (Budget.of_list [ 0; 0 ]) in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Game: profile size mismatch") (fun () ->
      ignore (Game.player_cost g (star_profile ()) 0))

let prop_deviation_matches_with_strategy =
  qcheck "deviation_cost = cost after with_strategy"
    (random_budget_gen ~n_min:2 ~n_max:8) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let game = Game.make Cost.Sum (Strategy.budgets p) in
      let st = rng (seed + 1) in
      let player = Random.State.int st n in
      let b = Budget.get (Strategy.budgets p) player in
      (* random alternative strategy *)
      let alt = Strategy.random st (Strategy.budgets p) in
      let targets = Strategy.strategy alt player in
      ignore b;
      let direct = Game.deviation_cost game p ~player ~targets in
      let via_profile =
        Game.player_cost game (Strategy.with_strategy p ~player ~targets) player
      in
      direct = via_profile)

let suite =
  [
    case "accessors" test_accessors;
    case "player cost" test_player_cost;
    case "costs batch" test_costs_batch;
    case "deviation cost" test_deviation_cost;
    case "deviation budget enforced" test_deviation_budget_enforced;
    case "social cost" test_social_cost;
    case "social welfare" test_social_welfare;
    case "profile size mismatch" test_profile_size_mismatch;
    prop_deviation_matches_with_strategy;
  ]
