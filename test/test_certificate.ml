(* Equilibrium certificates: production, (de)serialization, and the
   independent verifier — including its duty to reject corrupted
   evidence. *)

open Bbng_core
open Helpers
module Json = Bbng_obs.Json

let cert_json cert =
  Json.to_string (Bbng_obs.Certificate.to_json (Equilibrium.certificate_to_artifact cert))

(* provenance fields (ts, argv) differ between processes, so structural
   equality of certificates compares the body fields that matter *)
let same_cert a b =
  Equilibrium.mode_name a.Equilibrium.cert_mode
  = Equilibrium.mode_name b.Equilibrium.cert_mode
  && a.Equilibrium.cert_version = b.Equilibrium.cert_version
  && Strategy.equal a.Equilibrium.cert_profile b.Equilibrium.cert_profile
  && List.length a.Equilibrium.cert_evidence
     = List.length b.Equilibrium.cert_evidence
  && List.for_all2
       (fun (p1, (a1 : Best_response.audit)) (p2, (a2 : Best_response.audit)) ->
         p1 = p2 && a1.Best_response.tier = a2.Best_response.tier
         && a1.Best_response.engine = a2.Best_response.engine
         && a1.Best_response.scanned = a2.Best_response.scanned
         && a1.Best_response.candidates = a2.Best_response.candidates
         && a1.Best_response.current = a2.Best_response.current
         && a1.Best_response.best = a2.Best_response.best
         && a1.Best_response.improving = a2.Best_response.improving)
       a.Equilibrium.cert_evidence b.Equilibrium.cert_evidence

let sun8 = Bbng_constructions.Unit_budget.concentrated_sun ~n:8
let tripod2 = Bbng_constructions.Tripod.profile ~k:2
let path3 = Strategy.of_string "1,2;0;0" (* refuted under MAX *)

let cert_of version profile =
  Equilibrium.certify_cert (game version (Strategy.budgets profile)) profile

let test_verdict_agrees_with_certify () =
  List.iter
    (fun (version, p) ->
      let plain = certify version p in
      let cert = cert_of version p in
      let agree =
        match (plain, Equilibrium.certificate_verdict cert) with
        | Equilibrium.Equilibrium, Equilibrium.Equilibrium -> true
        | Equilibrium.Refuted r1, Equilibrium.Refuted r2 ->
            r1.Equilibrium.player = r2.Equilibrium.player
            && r1.Equilibrium.better = r2.Equilibrium.better
            && r1.Equilibrium.current_cost = r2.Equilibrium.current_cost
        | _ -> false
      in
      check_true "certify_cert verdict = certify verdict" agree)
    [ (Cost.Max, sun8); (Cost.Max, tripod2); (Cost.Max, path3);
      (Cost.Sum, sun8); (Cost.Sum, path3) ]

let test_artifact_round_trip () =
  List.iter
    (fun (version, p) ->
      let cert = cert_of version p in
      match
        Equilibrium.certificate_of_artifact
          (Equilibrium.certificate_to_artifact cert)
      with
      | Error msg -> Alcotest.failf "round trip: %s" msg
      | Ok cert' ->
          check_true "round trip preserves the certificate" (same_cert cert cert'))
    [ (Cost.Max, sun8); (Cost.Max, tripod2); (Cost.Max, path3) ]

let test_file_round_trip () =
  let path = Filename.temp_file "bbng_cert" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let cert = cert_of Cost.Max tripod2 in
      Equilibrium.write_certificate path cert;
      match Equilibrium.read_certificate path with
      | Error msg -> Alcotest.failf "read back: %s" msg
      | Ok cert' ->
          check_true "file round trip" (same_cert cert cert');
          check_true "single line"
            (let ic = open_in path in
             let lines = ref 0 in
             (try
                while true do
                  ignore (input_line ic);
                  incr lines
                done
              with End_of_file -> ());
             close_in ic;
             !lines = 1))

let test_truncated_file_rejected () =
  let path = Filename.temp_file "bbng_cert" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Equilibrium.write_certificate path (cert_of Cost.Max sun8);
      let text = In_channel.with_open_text path In_channel.input_all in
      let oc = open_out path in
      output_string oc (String.sub text 0 (String.length text / 2));
      close_out oc;
      match Equilibrium.read_certificate path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated certificate read back as Ok")

let test_wrong_kind_rejected () =
  let art = Bbng_obs.Certificate.make ~kind:"bbng.some-other-artifact" [] in
  match Equilibrium.certificate_of_artifact art with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign artifact accepted as a certificate"

let test_parallel_equals_sequential () =
  List.iter
    (fun (version, p) ->
      let seq = cert_of version p in
      let par =
        Equilibrium.certify_parallel_cert ~domains:4
          (game version (Strategy.budgets p))
          p
      in
      check_true "parallel certificate = sequential certificate"
        (same_cert seq par))
    [ (Cost.Max, sun8); (Cost.Max, tripod2); (Cost.Max, path3);
      (Cost.Sum, path3) ]

let test_verify_accepts_honest_certs () =
  List.iter
    (fun cert ->
      match Equilibrium.verify_certificate cert with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "honest certificate rejected: %s" msg)
    [
      cert_of Cost.Max sun8;
      cert_of Cost.Max tripod2;
      cert_of Cost.Max path3;
      Equilibrium.certify_swap_cert (game Cost.Max (Strategy.budgets sun8)) sun8;
      Equilibrium.certify_swap_cert
        (game Cost.Sum (Strategy.budgets tripod2))
        tripod2;
    ]

let test_cross_engine_round_trip () =
  (* a certificate produced by either engine records it, survives the
     artifact round trip, and passes the verifier — which re-prices
     every recorded move through the *other* engine *)
  List.iter
    (fun engine ->
      List.iter
        (fun (version, p) ->
          let cert =
            Equilibrium.certify_cert
              ~engine:(Deviation_eval.Fixed engine)
              (game version (Strategy.budgets p))
              p
          in
          List.iter
            (fun (_, a) ->
              check_true "engine recorded" (a.Best_response.engine = engine))
            cert.Equilibrium.cert_evidence;
          (match
             Equilibrium.certificate_of_artifact
               (Equilibrium.certificate_to_artifact cert)
           with
          | Ok cert' ->
              check_true "round trip keeps engine and candidates"
                (same_cert cert cert')
          | Error msg -> Alcotest.failf "round trip: %s" msg);
          match Equilibrium.verify_certificate cert with
          | Ok () -> ()
          | Error msg ->
              Alcotest.failf "%s cert rejected: %s"
                (Deviation_eval.engine_name engine)
                msg)
        [ (Cost.Max, tripod2); (Cost.Sum, sun8); (Cost.Max, path3) ])
    [ Deviation_eval.Bfs_overlay; Deviation_eval.Rows ]

(* every recorded number is load-bearing: corrupting any of them must
   flip the verifier to Error *)
let mutate_evidence cert f =
  {
    cert with
    Equilibrium.cert_evidence =
      List.map (fun (p, a) -> (p, f (a : Best_response.audit))) cert.Equilibrium.cert_evidence;
  }

let expect_rejected what cert =
  match Equilibrium.verify_certificate cert with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "corrupted certificate accepted (%s)" what

let test_verify_rejects_corrupted_current () =
  let cert = cert_of Cost.Max tripod2 in
  expect_rejected "current+1"
    (mutate_evidence cert (fun a ->
         { a with Best_response.current = a.Best_response.current + 1 }))

let test_verify_rejects_corrupted_best () =
  let cert = cert_of Cost.Max tripod2 in
  (* tripod2 has exhaustively scanned players whose best move is
     recorded; under-reporting its cost must be caught by re-pricing *)
  expect_rejected "best cost - 1"
    (mutate_evidence cert (fun a ->
         match a.Best_response.best with
         | Some m ->
             {
               a with
               Best_response.best =
                 Some { m with Best_response.cost = m.Best_response.cost - 1 };
             }
         | None -> a))

let test_verify_rejects_corrupted_scan_count () =
  let cert = cert_of Cost.Max tripod2 in
  expect_rejected "scanned/2"
    (mutate_evidence cert (fun a ->
         if a.Best_response.scanned > 0 then
           { a with Best_response.scanned = a.Best_response.scanned / 2 }
         else a))

let test_verify_rejects_corrupted_candidates () =
  (* the recorded candidate-space size is checked against an
     independent re-count on every tier *)
  let cert = cert_of Cost.Max tripod2 in
  expect_rejected "candidates + 1"
    (mutate_evidence cert (fun a ->
         {
           a with
           Best_response.candidates =
             (match a.Best_response.candidates with
             | Bbng_graph.Combinatorics.Exact c ->
                 Bbng_graph.Combinatorics.Exact (c + 1)
             | Bbng_graph.Combinatorics.Saturated ->
                 Bbng_graph.Combinatorics.Exact 1);
         }));
  expect_rejected "candidates saturated"
    (mutate_evidence cert (fun a ->
         { a with Best_response.candidates = Bbng_graph.Combinatorics.Saturated }))

let test_verify_rejects_corrupted_refutation () =
  let cert = cert_of Cost.Max path3 in
  expect_rejected "improving cost + 1"
    (mutate_evidence cert (fun a ->
         match a.Best_response.improving with
         | Some m ->
             {
               a with
               Best_response.improving =
                 Some { m with Best_response.cost = m.Best_response.cost + 1 };
             }
         | None -> a))

let test_swap_cert_agrees_with_certify_swap () =
  List.iter
    (fun (version, p) ->
      let g = game version (Strategy.budgets p) in
      let plain_stable = Equilibrium.is_swap_stable g p in
      let cert = Equilibrium.certify_swap_cert g p in
      let cert_stable =
        match Equilibrium.certificate_verdict cert with
        | Equilibrium.Equilibrium -> true
        | Equilibrium.Refuted _ -> false
        | Equilibrium.Degraded _ ->
            Alcotest.fail "unbudgeted certification cannot degrade"
      in
      check_bool "swap cert verdict" plain_stable cert_stable)
    [ (Cost.Max, sun8); (Cost.Max, path3); (Cost.Sum, tripod2) ]

let test_evidence_structure () =
  (* equilibrium: every player has evidence, in order, none improving *)
  let cert = cert_of Cost.Max tripod2 in
  check_int "evidence per player" (Strategy.n tripod2)
    (List.length cert.Equilibrium.cert_evidence);
  List.iteri
    (fun i (p, a) ->
      check_int "players in order" i p;
      check_true "no improvement at equilibrium"
        (a.Best_response.improving = None))
    cert.Equilibrium.cert_evidence;
  (* refutation: evidence stops at the refuted player *)
  let cert = cert_of Cost.Max path3 in
  match List.rev cert.Equilibrium.cert_evidence with
  | (p, last) :: _ ->
      check_true "last evidence is the refutation"
        (last.Best_response.improving <> None);
      check_int "path3 refuted at player 1" 1 p
  | [] -> Alcotest.fail "refuted certificate with empty evidence"

let prop_random_certs_verify =
  qcheck ~count:40 "random certificates verify independently"
    (random_budget_gen ~n_min:2 ~n_max:6) (fun input ->
      let p = random_profile_of input in
      let g = game Cost.Sum (Strategy.budgets p) in
      let cert = Equilibrium.certify_cert g p in
      (match Equilibrium.verify_certificate cert with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "verify: %s" msg);
      (match
         Equilibrium.certificate_of_artifact
           (Equilibrium.certificate_to_artifact cert)
       with
      | Ok cert' when same_cert cert cert' -> ()
      | Ok _ -> QCheck.Test.fail_report "round trip changed the certificate"
      | Error msg -> QCheck.Test.fail_reportf "round trip: %s" msg);
      ignore (cert_json cert);
      true)

let suite =
  [
    case "verdict agrees with certify" test_verdict_agrees_with_certify;
    case "artifact round trip" test_artifact_round_trip;
    case "file round trip" test_file_round_trip;
    case "truncated file rejected" test_truncated_file_rejected;
    case "wrong kind rejected" test_wrong_kind_rejected;
    case "parallel = sequential" test_parallel_equals_sequential;
    case "verify accepts honest certificates" test_verify_accepts_honest_certs;
    case "cross-engine round trip" test_cross_engine_round_trip;
    case "verify rejects corrupted current" test_verify_rejects_corrupted_current;
    case "verify rejects corrupted candidates" test_verify_rejects_corrupted_candidates;
    case "verify rejects corrupted best" test_verify_rejects_corrupted_best;
    case "verify rejects corrupted scan count" test_verify_rejects_corrupted_scan_count;
    case "verify rejects corrupted refutation" test_verify_rejects_corrupted_refutation;
    case "swap certificates" test_swap_cert_agrees_with_certify_swap;
    case "evidence structure" test_evidence_structure;
    prop_random_certs_verify;
  ]
