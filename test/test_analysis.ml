(* Structure validators, bounds, growth fitting, table rendering. *)

open Helpers
open Bbng_core
open Bbng_analysis

(* --- Structure (Theorems 4.1 / 4.2) --- *)

let test_anatomy_of_sun () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:8 in
  let a = Structure.analyze p in
  check_true "connected" a.Structure.connected;
  check_int "one cycle" 1 (List.length a.Structure.cycles);
  check_int "triangle" 3 a.Structure.cycle_len;
  check_false "no brace" a.Structure.has_brace;
  check_int "fringe depth" 1 a.Structure.max_dist_to_cycle;
  check_int "diameter" 2 a.Structure.diameter

let test_anatomy_rejects_non_unit () =
  Alcotest.check_raises "non-unit"
    (Invalid_argument "Structure.analyze: budgets are not all 1") (fun () ->
      ignore (Structure.analyze (Bbng_constructions.Tripod.profile ~k:2)))

let test_check_sum_structure () =
  let p = Bbng_constructions.Unit_budget.concentrated_sun ~n:8 in
  check_true "sun passes" (Structure.check_sum_structure p = None);
  (* a long directed cycle violates the <= 5 clause *)
  let ring = Strategy.of_digraph (Bbng_graph.Generators.directed_cycle 9) in
  (match Structure.check_sum_structure ring with
  | Some v -> check_true "cycle clause" (v.Structure.clause = "cycle length <= 5")
  | None -> Alcotest.fail "expected violation");
  (* brace on n=2 is fine *)
  check_true "n=2 brace ok"
    (Structure.check_sum_structure (Bbng_constructions.Unit_budget.brace_pair ()) = None)

let test_check_max_structure () =
  let ring7 = Strategy.of_digraph (Bbng_graph.Generators.directed_cycle 7) in
  check_true "7-cycle ok in MAX" (Structure.check_max_structure ring7 = None);
  let ring9 = Strategy.of_digraph (Bbng_graph.Generators.directed_cycle 9) in
  (match Structure.check_max_structure ring9 with
  | Some v -> check_true "cycle clause" (v.Structure.clause = "cycle length <= 7")
  | None -> Alcotest.fail "expected violation")

let test_disconnected_unit_profile () =
  (* two braces: disconnected *)
  let d = Bbng_graph.Digraph.of_arcs ~n:4 [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  let p = Strategy.of_digraph d in
  match Structure.check_max_structure p with
  | Some v -> check_true "connected clause" (v.Structure.clause = "connected")
  | None -> Alcotest.fail "expected violation"

(* --- Bounds --- *)

let test_tree_sum_bound_values () =
  (* 2 * (log2(n+1) + 1) *)
  check_int "n=7" 8 (Bounds.tree_sum_diameter_bound ~n:7);
  check_int "n=1" 4 (Bounds.tree_sum_diameter_bound ~n:1);
  check_true "monotone"
    (Bounds.tree_sum_diameter_bound ~n:100 <= Bounds.tree_sum_diameter_bound ~n:1000)

let test_sum_diameter_bound () =
  check_true "grows slowly"
    (Bounds.sum_diameter_bound 1024 < Bounds.sum_diameter_bound (1024 * 1024));
  check_int "n=1" 1 (Bounds.sum_diameter_bound 1)

let test_sqrt_log_lower_bound () =
  check_int "n=16" 2 (Bounds.sqrt_log_lower_bound ~n:16);
  check_int "n=512" 3 (Bounds.sqrt_log_lower_bound ~n:512);
  check_int "n=1" 0 (Bounds.sqrt_log_lower_bound ~n:1)

let test_figure3_on_binary_tree () =
  let p = Bbng_constructions.Binary_tree.profile ~depth:3 in
  let r = Bounds.figure3_decomposition p in
  check_int "diameter" 6 r.Bounds.diameter;
  check_int "attachment partitions n" 15
    (Array.fold_left ( + ) 0 r.Bounds.attachment);
  (* the tree is a SUM equilibrium, so inequality (1) must hold *)
  check_true "doubling inequality" r.Bounds.inequality_holds;
  check_true "some forward arcs" (r.Bounds.forward_arcs <> [])

let test_figure3_on_tripod () =
  (* the tripod is only a MAX equilibrium; the SUM doubling inequality
     fails on its long path, which is exactly why SUM trees are short *)
  let p = Bbng_constructions.Tripod.profile ~k:4 in
  let r = Bounds.figure3_decomposition p in
  check_int "diameter" 8 r.Bounds.diameter;
  check_false "inequality fails for tripod" r.Bounds.inequality_holds

let test_figure3_rejects_non_tree () =
  Alcotest.check_raises "not a tree"
    (Invalid_argument "Bounds.figure3_decomposition: realization is not a tree")
    (fun () ->
      ignore
        (Bounds.figure3_decomposition
           (Bbng_constructions.Unit_budget.concentrated_sun ~n:5)))

let test_tree_ball_radius () =
  (* whole graph a tree: radius = eccentricity *)
  check_int "path end" 4 (Bounds.tree_ball_radius path5 0);
  check_int "path middle" 2 (Bounds.tree_ball_radius path5 2);
  (* cycle of 6: from any vertex, radius-2 ball has 5 vertices 4 edges
     (tree); radius 3 closes the cycle *)
  check_int "cycle6" 2 (Bounds.tree_ball_radius cycle6 0);
  (* complete graph: radius-1 ball is everything and full of cycles *)
  check_int "K5" 0 (Bounds.tree_ball_radius k5 0);
  check_int "max over vertices" 4 (Bounds.max_tree_ball_radius path5)

let test_tree_ball_on_equilibria () =
  (* Theorem 6.1: SUM equilibria have O(log n) tree-ball radii.  The
     binary tree IS a tree, so its radius equals the eccentricity —
     which Thm 3.3 already forces to be O(log n).  The sun (unicyclic)
     has tiny radius. *)
  let sun = Bbng_core.Strategy.underlying (Bbng_constructions.Unit_budget.concentrated_sun ~n:30) in
  check_true "sun radius tiny" (Bounds.max_tree_ball_radius sun <= 2);
  let fig1 = Bbng_core.Strategy.underlying (Bbng_constructions.Existence.figure1_profile ()) in
  check_true "figure-1 radius small"
    (Bounds.max_tree_ball_radius fig1 <= Bounds.tree_sum_diameter_bound ~n:22)

let test_theorem_7_2_report () =
  (* complete digraph: min budget 0 but fully connected *)
  let p = Strategy.of_digraph (Bbng_graph.Generators.complete_digraph 5) in
  let r = Bounds.check_theorem_7_2 p in
  check_int "diameter" 1 r.Bounds.diameter_;
  check_true "holds" r.Bounds.theorem_7_2_ok;
  (* an Existence equilibrium with min budget 2: either small diameter or 2-connected *)
  let b = Budget.uniform ~n:6 ~budget:2 in
  let p = Bbng_constructions.Existence.construct b in
  check_true "Thm 7.2 on constructed equilibrium"
    (Bounds.check_theorem_7_2 p).Bounds.theorem_7_2_ok

let test_lemma_7_1 () =
  (* uniform budget-2 equilibrium: cut size 2, eligible vertices have
     budget 2 = |cut|, so the hypothesis filters them out (vacuous) or
     they satisfy local diameter <= 2; either way the check passes *)
  let p = Bbng_constructions.Existence.construct (Budget.uniform ~n:8 ~budget:2) in
  (match Bounds.check_lemma_7_1 p with
  | Some r -> check_true "holds on equilibrium" r.Bounds.all_local_diameter_le_2
  | None -> () (* complete realization: no cut to examine *));
  (* budget-3 equilibrium with a size-<3 cut would make vertices
     eligible; on the constructed diameter-2 profile the conclusion
     holds trivially *)
  let p3 = Bbng_constructions.Existence.construct (Budget.uniform ~n:9 ~budget:3) in
  (match Bounds.check_lemma_7_1 p3 with
  | Some r -> check_true "holds with budget 3" r.Bounds.all_local_diameter_le_2
  | None -> ());
  (* complete digraph: no vertex cut at all *)
  let k = Bbng_core.Strategy.of_digraph (Bbng_graph.Generators.complete_digraph 5) in
  check_true "complete has no cut" (Bounds.check_lemma_7_1 k = None);
  (* engineered biting case: cut {0}; component {1,2} all adjacent to 0
     with budgets 2 > 1; component {3} has budget 1 and is filtered *)
  let biting =
    Bbng_core.Strategy.of_digraph
      (Bbng_graph.Digraph.of_arcs ~n:4 [ (1, 0); (1, 2); (2, 0); (2, 1); (3, 0) ])
  in
  match Bounds.check_lemma_7_1 biting with
  | Some r ->
      check_int_list "cut is the hub" [ 0 ] r.Bounds.cut;
      check_int_list "eligible component" [ 1; 2 ] r.Bounds.eligible;
      check_true "conclusion holds" r.Bounds.all_local_diameter_le_2
  | None -> Alcotest.fail "expected a cut"

(* --- Growth fitting --- *)

let series f = List.map (fun n -> (n, f n)) [ 16; 32; 64; 128; 256; 512; 1024; 4096; 16384 ]

let test_fit_constant () =
  let fit = Growth.best_fit (series (fun _ -> 7)) in
  check_true "constant" (fit.Growth.model = Growth.Constant)

let test_fit_linear () =
  let fit = Growth.best_fit (series (fun n -> (2 * n / 3) + 5)) in
  check_true "linear" (fit.Growth.model = Growth.Linear)

let test_fit_log () =
  let log2i n = int_of_float (log (float_of_int n) /. log 2.0) in
  let fit = Growth.best_fit (series (fun n -> 2 * log2i n)) in
  check_true "log" (fit.Growth.model = Growth.Logarithmic)

let test_fit_sqrt_log () =
  (* rounding (not truncating) and a wide n-range keep the sqrt-log
     signal distinguishable from a plain logarithm *)
  let f n = int_of_float (Float.round (3.0 *. sqrt (log (float_of_int n) /. log 2.0))) in
  let pts =
    List.map (fun n -> (n, f n))
      [ 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536; 1048576 ]
  in
  let fit = Growth.best_fit pts in
  check_true "sqrt log" (fit.Growth.model = Growth.Sqrt_log)

let test_fit_requires_points () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Growth.fit_model: need at least 2 points") (fun () ->
      ignore (Growth.fit_model Growth.Linear [ (1, 1) ]))

let test_fit_r2_perfect () =
  let fit = Growth.fit_model Growth.Linear [ (1, 2); (2, 4); (3, 6) ] in
  check_true "r2 = 1" (fit.Growth.r2 > 0.999);
  check_true "slope 2" (abs_float (fit.Growth.slope -. 2.0) < 1e-9)

let test_model_names () =
  check_int "six models" 6 (List.length Growth.all_models);
  check_int "distinct names" 6
    (List.length (List.sort_uniq compare (List.map Growth.model_name Growth.all_models)))

(* --- Table --- *)

let test_table_render () =
  let t = Table.make ~headers:[ "name"; "n"; "d" ] in
  Table.add_row t [ "tripod"; "10"; "6" ];
  Table.add_int_row t "binary" [ 15; 6 ];
  let s = Table.to_string t in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "header present" (contains s "name");
  check_true "contains first row" (contains s "tripod");
  check_true "contains int row" (contains s "binary")

let test_table_width_mismatch () =
  let t = Table.make ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "row width"
    (Invalid_argument "Table.add_row: 3 cells, expected 2") (fun () ->
      Table.add_row t [ "1"; "2"; "3" ])

let test_table_cells () =
  check_true "int" (Table.cell_int 42 = "42");
  check_true "float" (Table.cell_float ~decimals:1 3.14 = "3.1");
  check_true "bool" (Table.cell_bool true = "yes" && Table.cell_bool false = "no")

let test_table_alignment () =
  let t = Table.make ~headers:[ "x" ] in
  Table.add_row t [ "longer-cell" ];
  let lines = String.split_on_char '\n' (Table.to_string t) in
  match lines with
  | header :: rule :: _ ->
      check_int "rule width matches" (String.length header) (String.length rule)
  | _ -> Alcotest.fail "expected header and rule"

(* --- Iso_acc: mergeable isomorphism-class accumulator --- *)

let unit4_equilibria version =
  let b = Budget.unit_budgets 4 in
  let game = Game.make version b in
  let acc = ref [] in
  Equilibrium.iter_profiles b (fun p ->
      if Equilibrium.is_nash game p then acc := p :: !acc);
  List.rev !acc

let class_strings acc =
  List.map
    (fun (rep, count) -> (Strategy.to_string rep, count))
    (Structure.Iso_acc.classes acc)

let test_iso_acc_counts () =
  let eqs = unit4_equilibria Cost.Sum in
  let acc =
    List.fold_left Structure.Iso_acc.add Structure.Iso_acc.empty eqs
  in
  check_int "total" (List.length eqs) (Structure.Iso_acc.total acc);
  check_int "classes consistent"
    (Structure.Iso_acc.class_count acc)
    (List.length (Structure.Iso_acc.classes acc));
  check_int "counts add up" (List.length eqs)
    (List.fold_left (fun a (_, c) -> a + c) 0 (Structure.Iso_acc.classes acc))

let test_iso_acc_merge_order_independent () =
  let eqs = unit4_equilibria Cost.Sum in
  let add_all l =
    List.fold_left Structure.Iso_acc.add Structure.Iso_acc.empty l
  in
  let whole = class_strings (add_all eqs) in
  let rec split = function
    | [] -> ([], [])
    | [ x ] -> ([ x ], [])
    | x :: y :: rest ->
        let a, b = split rest in
        (x :: a, y :: b)
  in
  let a, b = split eqs in
  check_true "a+b = whole"
    (class_strings (Structure.Iso_acc.merge (add_all a) (add_all b)) = whole);
  check_true "b+a = whole"
    (class_strings (Structure.Iso_acc.merge (add_all b) (add_all a)) = whole);
  (* re-injecting serialized classes (the checkpoint path) agrees too *)
  let reinjected =
    List.fold_left
      (fun acc (rep, count) ->
        Structure.Iso_acc.add_class acc ~rep:(Strategy.of_string rep) ~count)
      Structure.Iso_acc.empty whole
  in
  check_true "add_class round-trip" (class_strings reinjected = whole)

let test_iso_acc_groups_relabellings () =
  (* the directed triangle under two labelings: one class, count 2 *)
  let b = Budget.unit_budgets 3 in
  let p1 = Strategy.make b [| [| 1 |]; [| 2 |]; [| 0 |] |] in
  let p2 = Strategy.make b [| [| 2 |]; [| 0 |]; [| 1 |] |] in
  check_true "fingerprints agree"
    (Structure.Iso_acc.fingerprint p1 = Structure.Iso_acc.fingerprint p2);
  let acc =
    Structure.Iso_acc.add (Structure.Iso_acc.add Structure.Iso_acc.empty p1) p2
  in
  match Structure.Iso_acc.classes acc with
  | [ (rep, 2) ] ->
      (* canonical representative: the lexicographically least serialization *)
      check_true "minimal rep"
        (Strategy.to_string rep
        = min (Strategy.to_string p1) (Strategy.to_string p2))
  | l -> Alcotest.failf "expected one class of 2, got %d" (List.length l)

let suite =
  [
    case "anatomy of sun" test_anatomy_of_sun;
    case "anatomy rejects non-unit" test_anatomy_rejects_non_unit;
    case "check SUM structure" test_check_sum_structure;
    case "check MAX structure" test_check_max_structure;
    case "disconnected profile violates" test_disconnected_unit_profile;
    case "tree SUM bound values" test_tree_sum_bound_values;
    case "SUM diameter bound" test_sum_diameter_bound;
    case "sqrt-log lower bound" test_sqrt_log_lower_bound;
    case "figure 3 on the binary tree" test_figure3_on_binary_tree;
    case "figure 3 on the tripod" test_figure3_on_tripod;
    case "figure 3 rejects non-trees" test_figure3_rejects_non_tree;
    case "tree-ball radius (Thm 6.1)" test_tree_ball_radius;
    case "tree-ball radius on equilibria" test_tree_ball_on_equilibria;
    case "theorem 7.2 report" test_theorem_7_2_report;
    case "lemma 7.1 checker" test_lemma_7_1;
    case "fit constant" test_fit_constant;
    case "fit linear" test_fit_linear;
    case "fit log" test_fit_log;
    case "fit sqrt-log" test_fit_sqrt_log;
    case "fit input validation" test_fit_requires_points;
    case "fit r2" test_fit_r2_perfect;
    case "model names" test_model_names;
    case "table render" test_table_render;
    case "table width mismatch" test_table_width_mismatch;
    case "table cells" test_table_cells;
    case "table alignment" test_table_alignment;
    slow_case "iso accumulator counts" test_iso_acc_counts;
    slow_case "iso accumulator merge order" test_iso_acc_merge_order_independent;
    case "iso accumulator groups relabellings" test_iso_acc_groups_relabellings;
  ]
