open Helpers
open Bbng_core

let test_for_all_true () =
  check_true "all pass" (Parallel.for_all ~domains:3 ~n:100 (fun i -> i >= 0))

let test_for_all_false () =
  check_false "one fails" (Parallel.for_all ~domains:3 ~n:100 (fun i -> i <> 57))

let test_for_all_sequential_fallback () =
  check_true "domains=1" (Parallel.for_all ~domains:1 ~n:10 (fun i -> i < 10));
  check_false "domains=1 failing" (Parallel.for_all ~domains:1 ~n:10 (fun i -> i < 5));
  check_true "n=0 vacuous" (Parallel.for_all ~domains:4 ~n:0 (fun _ -> false))

let test_for_all_covers_every_index () =
  (* each index must be evaluated exactly once when nothing fails *)
  let hits = Array.init 64 (fun _ -> Atomic.make 0) in
  check_true "runs"
    (Parallel.for_all ~domains:4 ~n:64 (fun i ->
         Atomic.incr hits.(i);
         true));
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "index %d hit once" i) 1 (Atomic.get c))
    hits

let test_find_map () =
  check_true "found"
    (Parallel.find_map ~domains:3 ~n:50 (fun i -> if i = 31 then Some i else None)
    = Some 31);
  check_true "not found"
    (Parallel.find_map ~domains:3 ~n:50 (fun _ -> None) = None);
  check_true "n=0" (Parallel.find_map ~domains:3 ~n:0 (fun i -> Some i) = None)

let test_recommended_positive () =
  check_true "at least one" (Parallel.recommended_domains () >= 1)

(* The docs promise find_map is "first-ish" because early exit abandons
   remaining work — the chunks-abandoned counter makes that checkable.
   With the hit at index 0, the worker owning index 0 always finds it
   on its first probe and then abandons the rest of its own block, so
   the counter must move regardless of scheduling. *)
let test_find_map_abandons_work () =
  let abandoned = Bbng_obs.Counter.make "parallel.chunks_abandoned" in
  let spawned = Bbng_obs.Counter.make "parallel.domains_spawned" in
  let before = Bbng_obs.Counter.get abandoned in
  let spawned_before = Bbng_obs.Counter.get spawned in
  let hit =
    Parallel.find_map ~domains:4 ~n:10_000 (fun i ->
        if i = 0 then Some i else None)
  in
  check_int_option "early hit found" (Some 0) hit;
  check_int "domains were spawned" (spawned_before + 3) (Bbng_obs.Counter.get spawned);
  check_true "early exit abandoned work"
    (Bbng_obs.Counter.get abandoned > before)

let test_for_all_abandons_work () =
  let abandoned = Bbng_obs.Counter.make "parallel.chunks_abandoned" in
  let before = Bbng_obs.Counter.get abandoned in
  check_false "early failure"
    (Parallel.for_all ~domains:4 ~n:10_000 (fun i -> i <> 0));
  check_true "early exit abandoned work"
    (Bbng_obs.Counter.get abandoned > before)

let test_no_abandonment_without_early_exit () =
  let abandoned = Bbng_obs.Counter.make "parallel.chunks_abandoned" in
  let before = Bbng_obs.Counter.get abandoned in
  check_true "full scan" (Parallel.for_all ~domains:4 ~n:1_000 (fun _ -> true));
  check_int "nothing abandoned" before (Bbng_obs.Counter.get abandoned)

let test_parallel_certification_agrees () =
  (* parallel and sequential certification agree on equilibria and on
     refuted profiles *)
  let eq = Bbng_constructions.Tripod.profile ~k:4 in
  let eq_game = Game.make Cost.Max (Strategy.budgets eq) in
  check_true "equilibrium, parallel" (Equilibrium.is_nash_parallel ~domains:4 eq_game eq);
  check_true "matches sequential" (Equilibrium.is_nash eq_game eq);
  let bad = Strategy.of_digraph (Bbng_graph.Generators.directed_path 8) in
  let bad_game = Game.make Cost.Max (Strategy.budgets bad) in
  check_false "refuted, parallel" (Equilibrium.is_nash_parallel ~domains:4 bad_game bad);
  match Equilibrium.certify_parallel ~domains:4 bad_game bad with
  | Equilibrium.Equilibrium -> Alcotest.fail "expected refutation"
  | Equilibrium.Refuted r ->
      (* the witness must replay, whichever player it names *)
      let replay =
        Game.deviation_cost bad_game bad ~player:r.Equilibrium.player
          ~targets:r.Equilibrium.better.Best_response.targets
      in
      check_int "parallel witness honest" r.Equilibrium.better.Best_response.cost replay;
      check_true "strictly better" (replay < r.Equilibrium.current_cost)
  | Equilibrium.Degraded _ -> Alcotest.fail "unbudgeted certify cannot degrade"

let prop_parallel_matches_sequential =
  qcheck ~count:40 "parallel is_nash == sequential is_nash"
    (random_budget_gen ~n_min:2 ~n_max:7) (fun input ->
      let p = random_profile_of input in
      List.for_all
        (fun version ->
          let game = Game.make version (Strategy.budgets p) in
          Equilibrium.is_nash game p = Equilibrium.is_nash_parallel ~domains:3 game p)
        Cost.all_versions)

(* --- dynamic-scheduling map (census shards) --- *)

let test_map_dynamic_matches_sequential () =
  let f i = (i * 17) mod 5 in
  let seq = Array.init 40 f in
  List.iter
    (fun domains ->
      check_int_array
        (Printf.sprintf "domains=%d" domains)
        seq
        (Parallel.map_dynamic ~domains ~n:40 f))
    [ 1; 2; 4 ]

let test_map_dynamic_each_index_once () =
  (* dynamic claiming still evaluates every index exactly once, and each
     lands in its own slot (per-cell writes are single-owner) *)
  let hits = Array.make 60 0 in
  let got =
    Parallel.map_dynamic ~domains:3 ~n:60 (fun i ->
        hits.(i) <- hits.(i) + 1;
        i)
  in
  check_true "every index exactly once" (Array.for_all (fun c -> c = 1) hits);
  check_int_array "identity in order" (Array.init 60 Fun.id) got

let test_map_dynamic_empty () =
  check_int "n=0" 0 (Array.length (Parallel.map_dynamic ~n:0 (fun i -> i)))

let suite =
  [
    case "for_all true" test_for_all_true;
    case "for_all false" test_for_all_false;
    case "sequential fallback" test_for_all_sequential_fallback;
    case "covers every index once" test_for_all_covers_every_index;
    case "find_map" test_find_map;
    case "recommended domains" test_recommended_positive;
    case "find_map abandons work on early hit" test_find_map_abandons_work;
    case "for_all abandons work on early failure" test_for_all_abandons_work;
    case "no abandonment without early exit" test_no_abandonment_without_early_exit;
    slow_case "parallel certification agrees" test_parallel_certification_agrees;
    prop_parallel_matches_sequential;
    case "map_dynamic matches sequential" test_map_dynamic_matches_sequential;
    case "map_dynamic covers every index once" test_map_dynamic_each_index_once;
    case "map_dynamic empty" test_map_dynamic_empty;
  ]
