open Helpers
open Bbng_core
module Digraph = Bbng_graph.Digraph

let b3 = Budget.of_list [ 1; 1; 1 ]
let triangle () = Strategy.make b3 [| [| 1 |]; [| 2 |]; [| 0 |] |]

let test_make_and_access () =
  let p = triangle () in
  check_int "n" 3 (Strategy.n p);
  check_int_array "strategy" [| 2 |] (Strategy.strategy p 1)

let test_sorting () =
  let b = Budget.of_list [ 2; 0; 0 ] in
  let p = Strategy.make b [| [| 2; 1 |]; [||]; [||] |] in
  check_int_array "sorted targets" [| 1; 2 |] (Strategy.strategy p 0)

let test_validation () =
  Alcotest.check_raises "budget mismatch"
    (Invalid_argument "Strategy: player 0 plays 2 targets, budget is 1")
    (fun () -> ignore (Strategy.make b3 [| [| 1; 2 |]; [| 2 |]; [| 0 |] |]));
  Alcotest.check_raises "self target"
    (Invalid_argument "Strategy: player 1 targets itself") (fun () ->
      ignore (Strategy.make b3 [| [| 1 |]; [| 1 |]; [| 0 |] |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Strategy: player 0 targets 2 twice") (fun () ->
      ignore
        (Strategy.make (Budget.of_list [ 2; 0; 0 ]) [| [| 2; 2 |]; [||]; [||] |]))

let test_realize () =
  let g = Strategy.realize (triangle ()) in
  check_true "arc 0->1" (Digraph.mem_arc g 0 1);
  check_true "arc 2->0" (Digraph.mem_arc g 2 0);
  check_int "arcs" 3 (Digraph.arc_count g)

let test_underlying () =
  let u = Strategy.underlying (triangle ()) in
  check_int "edges" 3 (Bbng_graph.Undirected.edge_count u)

let test_with_strategy () =
  let p = triangle () in
  let p' = Strategy.with_strategy p ~player:0 ~targets:[| 2 |] in
  check_int_array "changed" [| 2 |] (Strategy.strategy p' 0);
  check_int_array "original intact" [| 1 |] (Strategy.strategy p 0);
  check_int_array "others intact" [| 2 |] (Strategy.strategy p' 1)

let test_with_strategy_validates () =
  Alcotest.check_raises "budget enforced"
    (Invalid_argument "Strategy: player 0 plays 2 targets, budget is 1")
    (fun () ->
      ignore (Strategy.with_strategy (triangle ()) ~player:0 ~targets:[| 1; 2 |]))

let test_of_digraph_roundtrip () =
  let p = triangle () in
  let p' = Strategy.of_digraph (Strategy.realize p) in
  check_true "roundtrip" (Strategy.equal p p')

let test_string_roundtrip () =
  let p = triangle () in
  check_true "roundtrip" (Strategy.equal p (Strategy.of_string (Strategy.to_string p)));
  (* zero-budget players serialize as empty fields *)
  let b = Budget.of_list [ 0; 1 ] in
  let p = Strategy.make b [| [||]; [| 0 |] |] in
  check_true "empty strategies" (Strategy.equal p (Strategy.of_string (Strategy.to_string p)))

let test_of_string_rejects () =
  Alcotest.check_raises "garbage"
    (Invalid_argument "Strategy.of_string: bad token x") (fun () ->
      ignore (Strategy.of_string "x;0"))

let test_equal_hash () =
  let p1 = triangle () in
  let p2 = Strategy.make b3 [| [| 1 |]; [| 2 |]; [| 0 |] |] in
  check_true "equal" (Strategy.equal p1 p2);
  check_int "hash consistent" (Strategy.hash p1) (Strategy.hash p2);
  let p3 = Strategy.with_strategy p1 ~player:0 ~targets:[| 2 |] in
  check_false "different" (Strategy.equal p1 p3)

let test_relabel () =
  let p = triangle () in
  let q = Strategy.relabel p [| 1; 2; 0 |] in
  (* 0->1 becomes 1->2, etc. *)
  check_int_array "relabelled strategy of 1" [| 2 |] (Strategy.strategy q 1);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Strategy.relabel: not a permutation") (fun () ->
      ignore (Strategy.relabel p [| 0; 0; 1 |]));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Strategy.relabel: wrong length") (fun () ->
      ignore (Strategy.relabel p [| 0; 1 |]))

let prop_relabel_preserves_equilibrium =
  qcheck ~count:50 "Nash property is relabelling-invariant"
    (random_budget_gen ~n_min:2 ~n_max:6) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let st = rng (seed + 99) in
      let pi = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = pi.(i) in
        pi.(i) <- pi.(j);
        pi.(j) <- tmp
      done;
      let q = Strategy.relabel p pi in
      List.for_all
        (fun version ->
          let gp = Game.make version (Strategy.budgets p) in
          let gq = Game.make version (Strategy.budgets q) in
          Equilibrium.is_nash gp p = Equilibrium.is_nash gq q
          && Game.social_cost gp p = Game.social_cost gq q)
        Cost.all_versions)

let prop_relabel_realization_isomorphic =
  qcheck ~count:50 "relabelled realizations are digraph-isomorphic"
    (random_budget_gen ~n_min:2 ~n_max:8) (fun ((n, _, seed) as input) ->
      let p = random_profile_of input in
      let st = rng (seed + 5) in
      let pi = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = pi.(i) in
        pi.(i) <- pi.(j);
        pi.(j) <- tmp
      done;
      Bbng_graph.Isomorphism.digraph_isomorphic (Strategy.realize p)
        (Strategy.realize (Strategy.relabel p pi)))

let prop_random_valid =
  qcheck "random profiles respect budgets" (random_budget_gen ~n_min:1 ~n_max:10)
    (fun input ->
      let p = random_profile_of input in
      let b = Strategy.budgets p in
      let ok = ref true in
      for i = 0 to Strategy.n p - 1 do
        let s = Strategy.strategy p i in
        if Array.length s <> Budget.get b i then ok := false;
        Array.iter (fun v -> if v = i || v < 0 || v >= Strategy.n p then ok := false) s
      done;
      !ok)

let prop_string_roundtrip =
  qcheck "serialization roundtrips" (random_budget_gen ~n_min:1 ~n_max:10)
    (fun input ->
      let p = random_profile_of input in
      Strategy.equal p (Strategy.of_string (Strategy.to_string p)))

let prop_realize_arc_count =
  qcheck "realization arc count = total budget" (random_budget_gen ~n_min:1 ~n_max:10)
    (fun input ->
      let p = random_profile_of input in
      Digraph.arc_count (Strategy.realize p) = Budget.total (Strategy.budgets p))

let suite =
  [
    case "make and access" test_make_and_access;
    case "targets sorted" test_sorting;
    case "validation" test_validation;
    case "realize" test_realize;
    case "underlying" test_underlying;
    case "with_strategy" test_with_strategy;
    case "with_strategy validates" test_with_strategy_validates;
    case "of_digraph roundtrip" test_of_digraph_roundtrip;
    case "string roundtrip" test_string_roundtrip;
    case "of_string rejects" test_of_string_rejects;
    case "equality and hash" test_equal_hash;
    case "relabel" test_relabel;
    prop_relabel_preserves_equilibrium;
    prop_relabel_realization_isomorphic;
    prop_random_valid;
    prop_string_roundtrip;
    prop_realize_arc_count;
  ]
