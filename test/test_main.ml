let () =
  Alcotest.run "bbng"
    [
      ("digraph", Test_digraph.suite);
      ("undirected", Test_undirected.suite);
      ("bfs", Test_bfs.suite);
      ("components", Test_components.suite);
      ("distances", Test_distances.suite);
      ("connectivity", Test_connectivity.suite);
      ("cycles", Test_cycles.suite);
      ("trees", Test_trees.suite);
      ("generators", Test_generators.suite);
      ("moore", Test_moore.suite);
      ("combinatorics", Test_combinatorics.suite);
      ("budget", Test_budget.suite);
      ("strategy", Test_strategy.suite);
      ("cost", Test_cost.suite);
      ("game", Test_game.suite);
      ("deviation_eval", Test_deviation_eval.suite);
      ("best_response", Test_best_response.suite);
      ("equilibrium", Test_equilibrium.suite);
      ("poa", Test_poa.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("weighted", Test_weighted.suite);
      ("existence", Test_existence.suite);
      ("constructions", Test_constructions.suite);
      ("solvers", Test_solvers.suite);
      ("dynamics", Test_dynamics.suite);
      ("improvement_graph", Test_improvement_graph.suite);
      ("analysis", Test_analysis.suite);
      ("serialize", Test_serialize.suite);
      ("isomorphism", Test_isomorphism.suite);
      ("baselines", Test_baselines.suite);
      ("expansion", Test_expansion.suite);
      ("census", Test_census.suite);
      ("edge_cases", Test_edge_cases.suite);
    ]
