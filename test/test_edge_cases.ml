(* Cross-cutting edge cases that do not fit a single module suite. *)

open Helpers
open Bbng_core
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected

(* --- dynamics plumbing --- *)

let test_trace_social_cost_consistent () =
  let b = Budget.unit_budgets 6 in
  let game = Game.make Cost.Sum b in
  let start = Strategy.random (rng 8) b in
  let entries = ref [] in
  let outcome =
    Bbng_dynamics.Dynamics.run game ~schedule:Bbng_dynamics.Schedule.Round_robin
      ~rule:Bbng_dynamics.Dynamics.Exact_best
      ~on_step:(fun e -> entries := e :: !entries)
      start
  in
  (* the last trace entry's social cost equals the final profile's *)
  match !entries with
  | [] -> check_int "stable start" 0 (Bbng_dynamics.Dynamics.steps outcome)
  | last :: _ ->
      check_int "final social cost matches trace"
        (Game.social_cost game (Bbng_dynamics.Dynamics.final_profile outcome))
        last.Bbng_dynamics.Dynamics.social_cost

let test_random_order_deterministic () =
  let run seed =
    let b = Budget.unit_budgets 7 in
    let game = Game.make Cost.Sum b in
    let start = Strategy.random (rng 3) b in
    let o =
      Bbng_dynamics.Dynamics.run game
        ~schedule:(Bbng_dynamics.Schedule.Random_order seed)
        ~rule:Bbng_dynamics.Dynamics.Exact_best start
    in
    Strategy.to_string (Bbng_dynamics.Dynamics.final_profile o)
  in
  check_true "same seed, same trajectory" (run 42 = run 42)

(* --- flow reuse semantics --- *)

let test_flow_repeated_calls () =
  let net = Bbng_graph.Flow.create 3 in
  Bbng_graph.Flow.add_edge net ~src:0 ~dst:1 ~capacity:2;
  Bbng_graph.Flow.add_edge net ~src:1 ~dst:2 ~capacity:2;
  check_int "first" 2 (Bbng_graph.Flow.max_flow net ~source:0 ~sink:2);
  (* capacities are consumed: a second call pushes nothing more *)
  check_int "saturated" 0 (Bbng_graph.Flow.max_flow net ~source:0 ~sink:2)

let test_flow_zero_capacity () =
  let net = Bbng_graph.Flow.create 2 in
  Bbng_graph.Flow.add_edge net ~src:0 ~dst:1 ~capacity:0;
  check_int "zero capacity" 0 (Bbng_graph.Flow.max_flow net ~source:0 ~sink:1)

(* --- weighted Cinf --- *)

let test_weighted_cost_unreachable () =
  (* two components: the far vertex costs n^2 per unit weight *)
  let d = Digraph.of_arcs ~n:3 [ (0, 1) ] in
  let w = Weighted.of_digraph d in
  check_int "cinf charged" (1 + 9) (Weighted.weighted_cost w 0)

(* --- poa details --- *)

let test_pp_ratio_integer () =
  check_true "den 1 prints bare"
    (Format.asprintf "%a" Poa.pp_ratio { Poa.num = 3; den = 1 } = "3")

let test_canonical_n1 () =
  let p = Poa.canonical_low_diameter_realization (Budget.of_list [ 0 ]) in
  check_int "n" 1 (Strategy.n p)

(* --- growth: remaining models --- *)

let test_fit_exp_sqrt_log () =
  let f n =
    int_of_float (Float.round (2.0 ** sqrt (log (float_of_int n) /. log 2.0)))
  in
  let pts = List.map (fun n -> (n, f n)) [ 16; 64; 256; 1024; 4096; 65536; 1048576 ] in
  let fit = Bbng_analysis.Growth.best_fit pts in
  check_true "exp-sqrt-log recovered"
    (fit.Bbng_analysis.Growth.model = Bbng_analysis.Growth.Exp_sqrt_log)

let test_fit_sqrt () =
  let f n = int_of_float (Float.round (3.0 *. sqrt (float_of_int n))) in
  let pts = List.map (fun n -> (n, f n)) [ 4; 16; 64; 256; 1024; 4096 ] in
  let fit = Bbng_analysis.Growth.best_fit pts in
  check_true "sqrt recovered"
    (fit.Bbng_analysis.Growth.model = Bbng_analysis.Growth.Sqrt)

(* --- figure 3 with reversed ownership --- *)

let test_figure3_reversed_tree () =
  (* reverse all arcs of the binary tree: leaves own arcs toward the
     root; the decomposition must re-orient the path by arc majority and
     still partition the tree *)
  let d = Digraph.reverse (Bbng_graph.Generators.perfect_binary_tree 3) in
  let p = Strategy.of_digraph d in
  let r = Bbng_analysis.Bounds.figure3_decomposition p in
  check_int "partition" 15 (Array.fold_left ( + ) 0 r.Bbng_analysis.Bounds.attachment);
  check_int "diameter" 6 r.Bbng_analysis.Bounds.diameter

(* --- existence guards --- *)

let test_case_accessor_guards () =
  let open Bbng_constructions in
  Alcotest.check_raises "case2_t on case 1"
    (Invalid_argument "Existence.case2_t: not Case 2") (fun () ->
      ignore (Existence.case2_t (Budget.of_list [ 1; 1; 1 ])));
  Alcotest.check_raises "case3_m on case 1"
    (Invalid_argument "Existence.case3_m: not Case 3") (fun () ->
      ignore (Existence.case3_m (Budget.of_list [ 1; 1; 1 ])))

let test_figure1_class () =
  (* zeros present with sigma > n-1: the General row of Table 1 *)
  check_true "general class"
    (Budget.classify Bbng_constructions.Existence.figure1_budgets = Budget.General)

(* --- moore guard --- *)

let test_moore_guard () =
  Alcotest.check_raises "delta 0 with n > 1"
    (Invalid_argument "Moore.min_diameter: delta <= 0 with n > 1") (fun () ->
      ignore (Bbng_graph.Moore.min_diameter ~n:5 ~delta:0))

(* --- serialize undirected empty --- *)

let test_serialize_empty_graph () =
  let g = Undirected.of_edges ~n:3 [] in
  let g' =
    Bbng_graph.Serialize.Undirected_io.of_text
      (Bbng_graph.Serialize.Undirected_io.to_text g)
  in
  check_true "isolated vertices survive" (Undirected.equal g g')

(* --- census pretty-print of PoA --- *)

let test_census_poa_subcritical () =
  (* subcritical: OPT = n^2, every NE diameter = n^2: PoA = 1 *)
  let game = Game.make Cost.Sum (Budget.of_list [ 0; 0; 1; 0 ]) in
  let c =
    match Bbng_analysis.Census.run game with
    | Bbng_analysis.Census.Complete c -> c
    | Bbng_analysis.Census.Partial _ -> Alcotest.fail "unexpected partial census"
  in
  match Bbng_analysis.Census.price_of_anarchy c with
  | Some r -> check_true "PoA 1" (Poa.ratio_to_float r = 1.0)
  | None -> Alcotest.fail "expected a PoA"

(* --- deviation eval under braces --- *)

let test_deviation_eval_brace () =
  (* brace in the static part: multiplicity must not corrupt distances *)
  let b = Budget.of_list [ 1; 1; 1 ] in
  let p = Strategy.make b [| [| 1 |]; [| 0 |]; [| 0 |] |] in
  let game = Game.make Cost.Sum b in
  let ctx = Deviation_eval.make Cost.Sum p ~player:2 in
  check_int "matches generic" (Game.deviation_cost game p ~player:2 ~targets:[| 1 |])
    (Deviation_eval.cost ctx [| 1 |])

let suite =
  [
    case "trace social cost consistent" test_trace_social_cost_consistent;
    case "random-order schedule deterministic" test_random_order_deterministic;
    case "flow residual reuse" test_flow_repeated_calls;
    case "flow zero capacity" test_flow_zero_capacity;
    case "weighted Cinf" test_weighted_cost_unreachable;
    case "pp_ratio integer" test_pp_ratio_integer;
    case "canonical realization n=1" test_canonical_n1;
    case "fit 2^sqrt(log n)" test_fit_exp_sqrt_log;
    case "fit sqrt(n)" test_fit_sqrt;
    case "figure 3 on reversed ownership" test_figure3_reversed_tree;
    case "existence accessor guards" test_case_accessor_guards;
    case "figure 1 budget class" test_figure1_class;
    case "moore guard" test_moore_guard;
    case "serialize empty graph" test_serialize_empty_graph;
    case "census PoA on subcritical" test_census_poa_subcritical;
    case "deviation eval with braces" test_deviation_eval_brace;
  ]
