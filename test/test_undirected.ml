open Helpers
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected

let test_of_edges () =
  let g = Undirected.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check_int "n" 4 (Undirected.n g);
  check_int "edges" 3 (Undirected.edge_count g);
  check_true "0-1" (Undirected.mem_edge g 0 1);
  check_true "symmetric" (Undirected.mem_edge g 1 0);
  check_false "0-3" (Undirected.mem_edge g 0 3)

let test_duplicate_edges_merge () =
  let g = Undirected.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1) ] in
  check_int "edge count deduped" 1 (Undirected.edge_count g);
  check_int_array "neighbors deduped" [| 1 |] (Undirected.neighbors g 0)

let test_of_digraph_brace_collapses () =
  let d = Digraph.of_arcs ~n:2 [ (0, 1); (1, 0) ] in
  let g = Undirected.of_digraph d in
  check_int "brace is one edge" 1 (Undirected.edge_count g)

let test_of_digraph_directions_dropped () =
  let d = Digraph.of_arcs ~n:3 [ (2, 0); (1, 2) ] in
  let g = Undirected.of_digraph d in
  check_true "0-2" (Undirected.mem_edge g 0 2);
  check_true "1-2" (Undirected.mem_edge g 1 2);
  check_false "0-1" (Undirected.mem_edge g 0 1)

let test_degrees () =
  check_int "star center" 6 (Undirected.degree star7 0);
  check_int "star leaf" 1 (Undirected.degree star7 3);
  check_int "max degree" 6 (Undirected.max_degree star7);
  check_int "min degree" 1 (Undirected.min_degree star7);
  check_int "path min" 1 (Undirected.min_degree path5);
  check_int "cycle uniform" 2 (Undirected.max_degree cycle6)

let test_edges_ordering () =
  let g = Undirected.of_edges ~n:4 [ (3, 2); (1, 0) ] in
  check_true "lexicographic edges" (Undirected.edges g = [ (0, 1); (2, 3) ])

let test_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Undirected: self-loop at 2")
    (fun () -> ignore (Undirected.of_edges ~n:3 [ (2, 2) ]))

let test_remove_vertices () =
  let g = Undirected.remove_vertices k5 [ 0 ] in
  check_int "edges after removal" 6 (Undirected.edge_count g);
  check_int "removed vertex isolated" 0 (Undirected.degree g 0);
  check_int "same n" 5 (Undirected.n g)

let test_complement () =
  let c = Undirected.complement path5 in
  check_int "complement edges" (5 * 4 / 2 - 4) (Undirected.edge_count c);
  check_false "adjacent pair dropped" (Undirected.mem_edge c 0 1);
  check_true "far pair added" (Undirected.mem_edge c 0 4)

let test_complement_of_complete_is_empty () =
  check_int "empty" 0 (Undirected.edge_count (Undirected.complement k5))

let prop_degree_sum =
  qcheck "handshake: sum of degrees = 2m" (gnp_gen ~n_min:1 ~n_max:15)
    (fun input ->
      let g = random_gnp_of input in
      let sum = ref 0 in
      for v = 0 to Undirected.n g - 1 do
        sum := !sum + Undirected.degree g v
      done;
      !sum = 2 * Undirected.edge_count g)

let prop_complement_involution =
  qcheck "complement twice is identity" (gnp_gen ~n_min:1 ~n_max:12)
    (fun input ->
      let g = random_gnp_of input in
      Undirected.equal g (Undirected.complement (Undirected.complement g)))

let prop_neighbors_symmetric =
  qcheck "adjacency is symmetric" (gnp_gen ~n_min:1 ~n_max:12)
    (fun input ->
      let g = random_gnp_of input in
      let ok = ref true in
      Undirected.iter_edges
        (fun u v ->
          if not (Undirected.mem_edge g v u) then ok := false)
        g;
      !ok)

let suite =
  [
    case "of_edges" test_of_edges;
    case "duplicate edges merge" test_duplicate_edges_merge;
    case "brace collapses to one edge" test_of_digraph_brace_collapses;
    case "directions dropped" test_of_digraph_directions_dropped;
    case "degrees" test_degrees;
    case "edges lexicographic" test_edges_ordering;
    case "rejects self-loop" test_rejects_self_loop;
    case "remove_vertices keeps indices" test_remove_vertices;
    case "complement" test_complement;
    case "complement of K5" test_complement_of_complete_is_empty;
    prop_degree_sum;
    prop_complement_involution;
    prop_neighbors_symmetric;
  ]
