open Helpers
module Bfs = Bbng_graph.Bfs
module Undirected = Bbng_graph.Undirected

let test_path_distances () =
  check_int_array "from end" [| 0; 1; 2; 3; 4 |] (Bfs.distances path5 0);
  check_int_array "from middle" [| 2; 1; 0; 1; 2 |] (Bfs.distances path5 2)

let test_unreachable () =
  let d = Bfs.distances two_triangles 0 in
  check_int "own component" 1 d.(1);
  check_int "other component" Bfs.unreachable d.(3)

let test_distance_pairs () =
  check_int_option "path ends" (Some 4) (Bfs.distance path5 0 4);
  check_int_option "self" (Some 0) (Bfs.distance path5 3 3);
  check_int_option "disconnected" None (Bfs.distance two_triangles 0 5)

(* regression: the u = v early answer used to skip range validation,
   so distance g 99 99 on a small graph returned Some 0 *)
let test_distance_validates_before_fast_path () =
  Alcotest.check_raises "self out of range"
    (Invalid_argument "Bfs.distance: vertex 99 out of range [0,5)") (fun () ->
      ignore (Bfs.distance path5 99 99));
  Alcotest.check_raises "target out of range"
    (Invalid_argument "Bfs.distance: vertex 5 out of range [0,5)") (fun () ->
      ignore (Bfs.distance path5 0 5));
  Alcotest.check_raises "negative source"
    (Invalid_argument "Bfs.distance: vertex -1 out of range [0,5)") (fun () ->
      ignore (Bfs.distance path5 (-1) 3))

let test_cycle_distances () =
  check_int_array "cycle from 0" [| 0; 1; 2; 3; 2; 1 |] (Bfs.distances cycle6 0)

let test_multi_source () =
  let d = Bfs.distances_from_set path5 [ 0; 4 ] in
  check_int_array "two sources" [| 0; 1; 2; 1; 0 |] d

let test_multi_source_empty () =
  Alcotest.check_raises "empty sources"
    (Invalid_argument "Bfs.distances_from_set: empty source set") (fun () ->
      ignore (Bfs.distances_from_set path5 []))

let test_parents () =
  let p = Bfs.parents path5 2 in
  check_int "root parent is self" 2 p.(2);
  check_int "left chain" 2 p.(1);
  check_int "right chain" 3 p.(4)

let test_parents_unreachable () =
  let p = Bfs.parents two_triangles 0 in
  check_int "unreachable parent" (-1) p.(4)

let test_shortest_path () =
  (match Bfs.shortest_path path5 0 3 with
  | Some p -> check_int_list "path vertices" [ 0; 1; 2; 3 ] p
  | None -> Alcotest.fail "expected a path");
  check_true "self path" (Bfs.shortest_path path5 1 1 = Some [ 1 ]);
  check_true "no path" (Bfs.shortest_path two_triangles 0 3 = None)

let test_shortest_path_is_shortest () =
  match Bfs.shortest_path cycle6 0 3 with
  | Some p -> check_int "length" 4 (List.length p)
  | None -> Alcotest.fail "expected a path"

let test_level_sets () =
  let levels = Bfs.level_sets star7 0 in
  check_int "two levels" 2 (Array.length levels);
  check_int_list "level 0" [ 0 ] levels.(0);
  check_int_list "level 1" [ 1; 2; 3; 4; 5; 6 ] levels.(1)

let test_level_sets_skip_unreachable () =
  let levels = Bfs.level_sets two_triangles 0 in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 levels in
  check_int "only own component listed" 3 total

let prop_distances_triangle_inequality =
  qcheck "edge endpoints differ by at most 1" (gnp_gen ~n_min:2 ~n_max:15)
    (fun input ->
      let g = random_gnp_of input in
      let ok = ref true in
      let d = Bfs.distances g 0 in
      Undirected.iter_edges
        (fun u v ->
          match (d.(u), d.(v)) with
          | -1, -1 -> ()
          | -1, _ | _, -1 -> ok := false
          | du, dv -> if abs (du - dv) > 1 then ok := false)
        g;
      !ok)

let prop_bfs_matches_path_length =
  qcheck "shortest_path length = distance" (gnp_gen ~n_min:2 ~n_max:12)
    (fun input ->
      let g = random_connected_of input in
      let n = Undirected.n g in
      let u = 0 and v = n - 1 in
      match (Bfs.distance g u v, Bfs.shortest_path g u v) with
      | Some d, Some p -> List.length p = d + 1
      | None, None -> true
      | _ -> false)

let prop_multi_source_is_min =
  qcheck "multi-source = min of single-source" (gnp_gen ~n_min:3 ~n_max:10)
    (fun input ->
      let g = random_gnp_of input in
      let n = Undirected.n g in
      let sources = [ 0; n - 1 ] in
      let multi = Bfs.distances_from_set g sources in
      let singles = List.map (Bfs.distances g) sources in
      let ok = ref true in
      for v = 0 to n - 1 do
        let best =
          List.fold_left
            (fun acc d ->
              if d.(v) = Bfs.unreachable then acc
              else match acc with None -> Some d.(v) | Some b -> Some (min b d.(v)))
            None singles
        in
        let expected = match best with None -> Bfs.unreachable | Some b -> b in
        if multi.(v) <> expected then ok := false
      done;
      !ok)

(* ?budget threads through every one-shot walker: the token's
   checkpoint precedes the traversal and the popped count is spent
   after it, so a work_limit:0 token lets the first traversal finish
   (tripping the token) and stops the second at its checkpoint. *)
let test_budget_threads_through_walkers () =
  let module Budgeted = Bbng_obs.Budgeted in
  let first_runs_second_trips name f =
    let budget = Budgeted.create ~work_limit:0 () in
    f budget;
    Alcotest.check_raises (name ^ ": second call trips") Budgeted.Expired
      (fun () -> f budget)
  in
  first_runs_second_trips "distance" (fun budget ->
      ignore (Bfs.distance ~budget path5 0 4));
  first_runs_second_trips "parents" (fun budget ->
      ignore (Bfs.parents ~budget path5 0));
  first_runs_second_trips "shortest_path" (fun budget ->
      ignore (Bfs.shortest_path ~budget path5 0 3));
  first_runs_second_trips "level_sets" (fun budget ->
      ignore (Bfs.level_sets ~budget path5 0));
  (* the u = v early answer never touches the token *)
  let budget = Budgeted.create ~work_limit:0 () in
  check_int_option "self distance" (Some 0) (Bfs.distance ~budget path5 3 3);
  check_int_option "token still fresh" (Some 4) (Bfs.distance ~budget path5 0 4);
  Alcotest.check_raises "then trips" Budgeted.Expired (fun () ->
      ignore (Bfs.distance ~budget path5 0 4))

let suite =
  [
    case "path distances" test_path_distances;
    case "unreachable sentinel" test_unreachable;
    case "pairwise distance" test_distance_pairs;
    case "pairwise distance validates range" test_distance_validates_before_fast_path;
    case "cycle distances" test_cycle_distances;
    case "multi-source" test_multi_source;
    case "multi-source empty raises" test_multi_source_empty;
    case "parents" test_parents;
    case "parents unreachable" test_parents_unreachable;
    case "shortest path" test_shortest_path;
    case "shortest path minimal" test_shortest_path_is_shortest;
    case "level sets" test_level_sets;
    case "level sets skip unreachable" test_level_sets_skip_unreachable;
    case "budget threads through walkers" test_budget_threads_through_walkers;
    prop_distances_triangle_inequality;
    prop_bfs_matches_path_length;
    prop_multi_source_is_min;
  ]
