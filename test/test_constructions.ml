(* Tripod (Thm 3.2), binary tree (Thm 3.4), shift graph (Lem 5.2 /
   Thm 5.3), and unit-budget suns (Section 4). *)

open Helpers
open Bbng_core
open Bbng_constructions
module Trees = Bbng_graph.Trees
module Distances = Bbng_graph.Distances

(* --- Tripod --- *)

let test_tripod_shape () =
  let p = Tripod.profile ~k:3 in
  check_int "n = 3k+1" 10 (Strategy.n p);
  check_true "tree" (Trees.is_tree (Strategy.underlying p));
  check_true "tree instance" (Budget.is_tree_instance (Tripod.budgets ~k:3));
  check_int "diameter 2k" 6 (Cost.social_cost (Strategy.underlying p));
  check_int "hub index" 9 (Tripod.hub ~k:3);
  check_int "n_of_k" 10 (Tripod.n_of_k 3)

let test_tripod_max_equilibrium () =
  (* the Theta(n) MAX lower bound (Theorem 3.2), certified exactly *)
  List.iter
    (fun k -> assert_equilibrium (Printf.sprintf "tripod k=%d" k) Cost.Max (Tripod.profile ~k))
    [ 1; 2; 3; 4 ]

let test_tripod_not_sum_equilibrium () =
  (* in the SUM version long legs are unstable: x1 prefers to move its
     leg arc closer to the middle of the far path *)
  assert_not_equilibrium "tripod k=4 SUM" Cost.Sum (Tripod.profile ~k:4)

let test_tripod_poa_linear () =
  (* equilibrium diameter 2k vs OPT <= 4: the Theta(n) PoA row *)
  let k = 5 in
  let r =
    Poa.anarchy_lower_bound ~equilibrium_diameter:(Tripod.diameter ~k)
      (Tripod.budgets ~k)
  in
  check_true "PoA grows" (Poa.ratio_to_float r >= 2.5)

let test_spider_generalization () =
  (* Theorem 3.2 generalizes beyond three legs: certified exactly *)
  List.iter
    (fun (legs, k) ->
      assert_equilibrium
        (Printf.sprintf "spider legs=%d k=%d" legs k)
        Cost.Max
        (Tripod.spider_profile ~legs ~k))
    [ (4, 2); (5, 2); (4, 3); (6, 2) ];
  (* two legs = a path: the head re-centers, NOT an equilibrium *)
  assert_not_equilibrium "2-leg spider" Cost.Max (Tripod.spider_profile ~legs:2 ~k:3)

let test_spider_tree_instance () =
  let b = Tripod.spider_budgets ~legs:5 ~k:3 in
  check_true "tree instance" (Budget.is_tree_instance b);
  check_int "n" 16 (Budget.n b)

(* --- Binary tree --- *)

let test_binary_tree_shape () =
  let p = Binary_tree.profile ~depth:3 in
  check_int "n" 15 (Strategy.n p);
  check_true "tree" (Trees.is_tree (Strategy.underlying p));
  check_true "tree instance" (Budget.is_tree_instance (Binary_tree.budgets ~depth:3));
  check_int "diameter" 6 (Cost.social_cost (Strategy.underlying p));
  check_int "n_of_depth" 15 (Binary_tree.n_of_depth 3)

let test_binary_tree_sum_equilibrium () =
  List.iter
    (fun depth ->
      assert_equilibrium
        (Printf.sprintf "binary depth=%d" depth)
        Cost.Sum
        (Binary_tree.profile ~depth))
    [ 0; 1; 2; 3 ]

let test_binary_tree_diameter_log () =
  (* Theorem 3.3's explicit bound holds on the witnesses *)
  List.iter
    (fun depth ->
      let n = Binary_tree.n_of_depth depth in
      check_true
        (Printf.sprintf "depth %d within Thm 3.3 bound" depth)
        (Binary_tree.diameter ~depth <= Bbng_analysis.Bounds.tree_sum_diameter_bound ~n))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- Shift graph --- *)

let test_shift_certificate_paper_params () =
  (* k=2 with the paper's t = 2^k = 4: exactly sqrt(log n) diameter *)
  let c = Shift_graph.certificate ~t:4 ~k:2 in
  check_true "valid" c.Shift_graph.valid;
  check_int "n = 16" 16 c.Shift_graph.n;
  check_true "local diameters all 2"
    (c.Shift_graph.all_local_diameters_equal = Some 2);
  check_int "paper_t" 4 (Shift_graph.paper_t ~k:2);
  check_int "paper_t k=4" 16 (Shift_graph.paper_t ~k:4)

let test_shift_certificate_downsized () =
  (* t just above 2^(k-1) keeps the certificate valid at smaller n *)
  let c = Shift_graph.certificate ~t:5 ~k:3 in
  check_true "valid at t=5,k=3" c.Shift_graph.valid

let test_shift_certificate_invalid_params () =
  let c = Shift_graph.certificate ~t:3 ~k:3 in
  (* 2^3 = 8 >= 2*3: counting fails *)
  check_false "counting fails" c.Shift_graph.valid

let test_shift_direct_certification () =
  (* ground truth: the orientation is an exact MAX equilibrium at n=16
     (every budget positive, diameter 2 = sqrt(log 16)) *)
  let p = Shift_graph.profile ~t:4 ~k:2 in
  check_true "all budgets positive" (Budget.all_positive (Shift_graph.budgets ~t:4 ~k:2));
  check_int "diameter sqrt(log n)" 2 (Cost.social_cost (Strategy.underlying p));
  assert_equilibrium "shift(4,2) MAX" Cost.Max p

let test_shift_n_of () =
  check_int "4^2" 16 (Shift_graph.n_of ~t:4 ~k:2);
  check_int "5^3" 125 (Shift_graph.n_of ~t:5 ~k:3)

(* --- Unit budget suns --- *)

let test_concentrated_sun_equilibrium_both () =
  List.iter
    (fun n ->
      let p = Unit_budget.concentrated_sun ~n in
      assert_equilibrium (Printf.sprintf "sun n=%d MAX" n) Cost.Max p;
      assert_equilibrium (Printf.sprintf "sun n=%d SUM" n) Cost.Sum p)
    [ 3; 4; 5; 8; 11 ]

let test_concentrated_sun_diameter () =
  check_int "n=3 triangle" 1
    (Cost.social_cost (Strategy.underlying (Unit_budget.concentrated_sun ~n:3)));
  check_int "n=10" 2
    (Cost.social_cost (Strategy.underlying (Unit_budget.concentrated_sun ~n:10)))

let test_balanced_sun_max_only () =
  let p = Unit_budget.balanced_sun ~cycle_len:3 ~n:9 in
  assert_equilibrium "balanced MAX" Cost.Max p;
  (* fringe players strictly prefer heavier cycle vertices in SUM *)
  assert_not_equilibrium "balanced SUM" Cost.Sum p

let test_brace_pair () =
  let p = Unit_budget.brace_pair () in
  check_int "n" 2 (Strategy.n p);
  assert_equilibrium "brace MAX" Cost.Max p;
  assert_equilibrium "brace SUM" Cost.Sum p

let test_diameter_upper_bounds () =
  check_int "SUM" 4 (Unit_budget.diameter_upper_bound Cost.Sum);
  check_int "MAX" 7 (Unit_budget.diameter_upper_bound Cost.Max)

let test_sun_validation () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Unit_budget.concentrated_sun: n < 3") (fun () ->
      ignore (Unit_budget.concentrated_sun ~n:2))

(* Exhaustive Section 4 check: ALL unit-budget equilibria at small n
   satisfy the structure theorems and the diameter bounds. *)
let test_exhaustive_unit_structure () =
  List.iter
    (fun n ->
      List.iter
        (fun version ->
          let game = Game.make version (Budget.unit_budgets n) in
          let eqs = Equilibrium.enumerate_equilibria game in
          check_true (Printf.sprintf "n=%d has equilibria" n) (eqs <> []);
          List.iter
            (fun p ->
              let d = Cost.social_cost (Strategy.underlying p) in
              check_true
                (Printf.sprintf "diameter bound n=%d %s" n (Cost.version_name version))
                (d <= Unit_budget.diameter_upper_bound version);
              let violation =
                match version with
                | Cost.Sum -> Bbng_analysis.Structure.check_sum_structure p
                | Cost.Max -> Bbng_analysis.Structure.check_max_structure p
              in
              match violation with
              | None -> ()
              | Some v ->
                  Alcotest.failf "n=%d %s violates: %s" n
                    (Cost.version_name version) v.Bbng_analysis.Structure.clause)
            eqs)
        Cost.all_versions)
    [ 2; 3; 4; 5 ]

let suite =
  [
    case "tripod shape" test_tripod_shape;
    slow_case "tripod MAX equilibrium (Thm 3.2)" test_tripod_max_equilibrium;
    case "tripod not a SUM equilibrium" test_tripod_not_sum_equilibrium;
    case "tripod PoA linear" test_tripod_poa_linear;
    slow_case "spider generalization (Thm 3.2, legs > 3)" test_spider_generalization;
    case "spider budgets" test_spider_tree_instance;
    case "binary tree shape" test_binary_tree_shape;
    slow_case "binary tree SUM equilibrium (Thm 3.4)" test_binary_tree_sum_equilibrium;
    case "binary tree diameter log bound" test_binary_tree_diameter_log;
    case "shift certificate (paper parameters)" test_shift_certificate_paper_params;
    case "shift certificate downsized" test_shift_certificate_downsized;
    case "shift certificate rejects bad parameters" test_shift_certificate_invalid_params;
    slow_case "shift direct MAX certification" test_shift_direct_certification;
    case "shift n_of" test_shift_n_of;
    case "concentrated sun both versions" test_concentrated_sun_equilibrium_both;
    case "concentrated sun diameter" test_concentrated_sun_diameter;
    case "balanced sun MAX-only" test_balanced_sun_max_only;
    case "brace pair" test_brace_pair;
    case "unit diameter bounds" test_diameter_upper_bounds;
    case "sun validation" test_sun_validation;
    slow_case "exhaustive unit-budget structure (Thms 4.1/4.2)"
      test_exhaustive_unit_structure;
  ]
