open Helpers
open Bbng_core
module Undirected = Bbng_graph.Undirected

let test_cinf () = check_int "n^2" 49 (Cost.cinf ~n:7)

let test_sum_on_path () =
  (* path5: from an end 0+1+2+3+4 = 10, from the middle 2+1+0+1+2 = 6 *)
  check_int "end" 10 (Cost.vertex_cost Cost.Sum path5 0);
  check_int "middle" 6 (Cost.vertex_cost Cost.Sum path5 2)

let test_max_on_path () =
  check_int "end" 4 (Cost.vertex_cost Cost.Max path5 0);
  check_int "middle" 2 (Cost.vertex_cost Cost.Max path5 2)

let test_sum_disconnected () =
  (* two triangles, n=6, Cinf=36: own component 1+1, three at 36 *)
  check_int "sum with Cinf" (2 + 3 * 36) (Cost.vertex_cost Cost.Sum two_triangles 0)

let test_max_disconnected () =
  (* kappa = 2: local diameter n^2 plus (kappa-1) n^2 *)
  check_int "max with kappa" (36 + 36) (Cost.vertex_cost Cost.Max two_triangles 0);
  (* {0,1}, {2,3} and two isolated vertices: kappa = 4 *)
  let g = Undirected.of_edges ~n:6 [ (0, 1); (2, 3) ] in
  check_int "four components" (36 + 3 * 36) (Cost.vertex_cost Cost.Max g 0)

let test_profile_costs () =
  let costs = Cost.profile_costs Cost.Sum path5 in
  check_int_array "all vertices" [| 10; 7; 6; 7; 10 |] costs;
  let costs = Cost.profile_costs Cost.Max star7 in
  check_int "center" 1 costs.(0);
  check_int "leaf" 2 costs.(1)

let test_social_cost () =
  check_int "path diameter" 4 (Cost.social_cost path5);
  check_int "disconnected n^2" 36 (Cost.social_cost two_triangles);
  check_int "singleton" 0 (Cost.social_cost (Undirected.of_edges ~n:1 []))

let test_cost_floor_max () =
  check_int "n=1" 0 (Cost.cost_floor Cost.Max ~n:1 ~budget:0 ~in_degree:0);
  check_int "adjacent to all" 1 (Cost.cost_floor Cost.Max ~n:5 ~budget:4 ~in_degree:0);
  check_int "adjacent via in-arcs" 1 (Cost.cost_floor Cost.Max ~n:5 ~budget:2 ~in_degree:2);
  check_int "not enough" 2 (Cost.cost_floor Cost.Max ~n:5 ~budget:1 ~in_degree:1)

let test_cost_floor_sum () =
  (* p neighbors at distance 1, rest at >= 2 *)
  check_int "lonely" (2 * 4) (Cost.cost_floor Cost.Sum ~n:5 ~budget:0 ~in_degree:0);
  check_int "one arc" (1 + 2 * 3) (Cost.cost_floor Cost.Sum ~n:5 ~budget:1 ~in_degree:0);
  check_int "saturated" 4 (Cost.cost_floor Cost.Sum ~n:5 ~budget:4 ~in_degree:3)

let test_floor_is_sound () =
  (* brute-force: the floor never exceeds the true best-response cost *)
  let b = Budget.of_list [ 1; 1; 2; 0 ] in
  let game = Game.make Cost.Sum b in
  let p =
    Strategy.make b [| [| 1 |]; [| 2 |]; [| 0; 3 |]; [||] |]
  in
  let g = Strategy.realize p in
  for player = 0 to 3 do
    let floor =
      Cost.cost_floor Cost.Sum ~n:4
        ~budget:(Budget.get b player)
        ~in_degree:(Bbng_graph.Digraph.in_degree g player)
    in
    let best = Best_response.exact game p player in
    check_true
      (Printf.sprintf "floor sound for %d" player)
      (floor <= best.Best_response.cost)
  done

let test_version_names () =
  check_true "names" (Cost.version_name Cost.Max = "MAX" && Cost.version_name Cost.Sum = "SUM");
  check_int "two versions" 2 (List.length Cost.all_versions)

let prop_sum_cost_equals_distance_sum =
  qcheck "SUM cost on connected graphs = Wiener row" (gnp_gen ~n_min:2 ~n_max:12)
    (fun input ->
      let g = random_connected_of input in
      let r = Bbng_graph.Distances.distance_sum g 0 in
      Cost.vertex_cost Cost.Sum g 0 = r.Bbng_graph.Distances.sum)

let prop_max_cost_equals_eccentricity =
  qcheck "MAX cost on connected graphs = eccentricity" (gnp_gen ~n_min:2 ~n_max:12)
    (fun input ->
      let g = random_connected_of input in
      Bbng_graph.Distances.eccentricity g 0 = Some (Cost.vertex_cost Cost.Max g 0))

let prop_profile_costs_match_vertex_cost =
  qcheck "profile_costs agrees with vertex_cost" (gnp_gen ~n_min:1 ~n_max:10)
    (fun input ->
      let g = random_gnp_of input in
      List.for_all
        (fun version ->
          let batch = Cost.profile_costs version g in
          let ok = ref true in
          for v = 0 to Undirected.n g - 1 do
            if batch.(v) <> Cost.vertex_cost version g v then ok := false
          done;
          !ok)
        Cost.all_versions)

let suite =
  [
    case "cinf" test_cinf;
    case "SUM on path" test_sum_on_path;
    case "MAX on path" test_max_on_path;
    case "SUM disconnected" test_sum_disconnected;
    case "MAX disconnected (kappa term)" test_max_disconnected;
    case "profile costs" test_profile_costs;
    case "social cost" test_social_cost;
    case "cost floor MAX" test_cost_floor_max;
    case "cost floor SUM" test_cost_floor_sum;
    case "floor soundness vs brute force" test_floor_is_sound;
    case "version names" test_version_names;
    prop_sum_cost_equals_distance_sum;
    prop_max_cost_equals_eccentricity;
    prop_profile_costs_match_vertex_cost;
  ]
