open Bbng_core
module Isomorphism = Bbng_graph.Isomorphism

type t = {
  game : Game.t;
  total_profiles : int;
  equilibria : int;
  iso_classes : Strategy.t list;
  diameter_histogram : (int * int) list;
  min_diameter : int option;
  max_diameter : int option;
}

let run ?limit game =
  let eqs = Equilibrium.enumerate_equilibria ?limit game in
  let histogram = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let d = Game.social_cost game p in
      Hashtbl.replace histogram d
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram d)))
    eqs;
  let diameter_histogram =
    List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) histogram [])
  in
  (* group by realization isomorphism; keep one profile per class.
     The pairwise isomorphism checks dominate on equilibrium-rich
     games, so this is its own heartbeat task (enumerate_equilibria
     already beat through the profile sweep above). *)
  let iso_classes =
    Bbng_obs.Progress.with_task ~total:(List.length eqs) "census.iso"
      (fun progress ->
        let rec go kept = function
          | [] -> List.rev kept
          | p :: rest ->
              Bbng_obs.Progress.step progress;
              let g = Strategy.realize p in
              if
                List.exists
                  (fun q ->
                    Isomorphism.digraph_isomorphic (Strategy.realize q) g)
                  kept
              then go kept rest
              else go (p :: kept) rest
        in
        go [] eqs)
  in
  {
    game;
    total_profiles = Equilibrium.count_profiles (Game.budgets game);
    equilibria = List.length eqs;
    iso_classes;
    diameter_histogram;
    min_diameter = (match diameter_histogram with [] -> None | (d, _) :: _ -> Some d);
    max_diameter =
      (match List.rev diameter_histogram with [] -> None | (d, _) :: _ -> Some d);
  }

let price_of_anarchy census =
  match census.max_diameter with
  | None -> None
  | Some worst -> (
      match Poa.opt_diameter_exact (Game.budgets census.game) with
      | Some opt when opt > 0 -> Some { Poa.num = worst; den = opt }
      | Some _ -> Some { Poa.num = 1; den = 1 }
      | None -> None)

let pp_summary ppf c =
  Format.fprintf ppf
    "@[<v>%a: %d profiles, %d equilibria in %d isomorphism classes@,diameters:"
    Game.pp c.game c.total_profiles c.equilibria
    (List.length c.iso_classes);
  List.iter
    (fun (d, count) -> Format.fprintf ppf " %d(x%d)" d count)
    c.diameter_histogram;
  Format.fprintf ppf "@]"
