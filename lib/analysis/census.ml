open Bbng_core
module Obs = Bbng_obs
module Json = Bbng_obs.Json

(* The census is the repo's long-running workload: exhaustively certify
   every profile of an instance and aggregate the equilibria.  It is
   built crash-first — the profile space is partitioned into pure
   (lo, hi) index shards, each completed shard lands as one digest-
   stamped O_APPEND line in CHECKPOINT.partial, and the final artifact
   is a canonical re-serialization committed atomically — so a SIGKILL
   at any instant loses at most the in-flight shards, and a resumed run
   produces a byte-identical final artifact (fault_smoke stage 12 pins
   this with a cmp). *)

type t = {
  game : Game.t;
  total_profiles : int;
  scanned_profiles : int;
  equilibria : int;
  iso_classes : Strategy.t list;
  iso_class_counts : (Strategy.t * int) list;
  diameter_histogram : (int * int) list;
  min_diameter : int option;
  max_diameter : int option;
}

type outcome =
  | Complete of t
  | Partial of {
      census : t;
      unscanned : (int * int) list;
      why : Obs.Budgeted.why;
    }

type plan = {
  version : Cost.version;
  budgets : Budget.t;
  shard_size : int;
  num_shards : int;
  total : int;
}

type shard = { sid : int; lo : int; hi : int }

type shard_result = {
  shard : shard;
  found : int;
  classes : (Strategy.t * int) list;
  diameters : (int * int) list;
}

(* --- observability --- *)

let m_scanned = Obs.Metrics.counter "census.profiles_scanned"
let m_equilibria = Obs.Metrics.counter "census.equilibria_found"
let m_shards = Obs.Metrics.counter "census.shards_completed"
let m_resumed = Obs.Metrics.counter "census.shards_resumed"
let m_claims_won = Obs.Metrics.counter "census.claims_won"
let m_claims_lost = Obs.Metrics.counter "census.claims_lost"
let m_claims_stale = Obs.Metrics.counter "census.claims_stale"

(* --- planning --- *)

(* ~64 shards by default, capped so one shard stays an interactive unit
   of progress; the size is recorded in the plan row, so a resumed run
   reuses the original partitioning no matter what the flag says. *)
let default_shard_size total = max 1 (min 4096 ((total + 63) / 64))

let make_plan ?shard_size game =
  let budgets = Game.budgets game in
  let total = Equilibrium.count_profiles budgets in
  if total = max_int then
    invalid_arg "Census.make_plan: profile space saturated (too many profiles)";
  let shard_size =
    match shard_size with
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Census.make_plan: shard size must be >= 1"
    | None -> default_shard_size total
  in
  {
    version = Game.version game;
    budgets;
    shard_size;
    num_shards = (if total = 0 then 0 else (total + shard_size - 1) / shard_size);
    total;
  }

let shards plan =
  List.init plan.num_shards (fun sid ->
      {
        sid;
        lo = sid * plan.shard_size;
        hi = min plan.total ((sid + 1) * plan.shard_size);
      })

let shard_of_plan plan sid =
  if sid < 0 || sid >= plan.num_shards then None
  else
    Some
      {
        sid;
        lo = sid * plan.shard_size;
        hi = min plan.total ((sid + 1) * plan.shard_size);
      }

(* --- checkpoint codec --- *)

(* Every row is digest-stamped like the run ledger's: the digest covers
   the row minus its own digest field, so a torn tail, a truncated
   line, or a hand-edited row all read as "skipped", never as data. *)
let stamp fields =
  let payload = Json.to_string (Json.Obj fields) in
  Json.Obj
    (fields @ [ ("digest", Json.Str (Digest.to_hex (Digest.string payload))) ])

let verify_stamp = function
  | Json.Obj fields -> (
      match List.assoc_opt "digest" fields with
      | Some (Json.Str d) ->
          let bare = List.filter (fun (k, _) -> k <> "digest") fields in
          if Digest.to_hex (Digest.string (Json.to_string (Json.Obj bare))) = d
          then Some bare
          else None
      | _ -> None)
  | _ -> None

let plan_row plan =
  stamp
    [
      ("row", Json.Str "plan");
      ("schema", Json.Int 1);
      ("version", Json.Str (Cost.version_name plan.version));
      ( "budgets",
        Json.List
          (List.map
             (fun b -> Json.Int b)
             (Array.to_list (Budget.to_array plan.budgets))) );
      ("shard_size", Json.Int plan.shard_size);
      ("shards", Json.Int plan.num_shards);
      ("profiles", Json.Int plan.total);
    ]

(* instance key tying shard/claim rows to their plan: rows from another
   instance (or another shard size) in the same file are alien, not
   silently merged *)
let plan_key plan =
  String.sub (Digest.to_hex (Digest.string (Json.to_string (plan_row plan)))) 0 12

let int_field k j =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let plan_of_fields fields =
  let j = Json.Obj fields in
  match
    ( str_field "version" j,
      Json.member "budgets" j,
      int_field "shard_size" j,
      int_field "profiles" j )
  with
  | Some v, Some (Json.List bs), Some shard_size, Some profiles -> (
      let version =
        match v with "SUM" -> Some Cost.Sum | "MAX" -> Some Cost.Max | _ -> None
      in
      let budgets =
        try
          Some
            (Budget.of_list
               (List.map (function Json.Int i -> i | _ -> raise Exit) bs))
        with _ -> None
      in
      match (version, budgets) with
      | Some version, Some budgets -> (
          (* recompute the derived fields instead of trusting the file;
             a row whose recorded totals disagree is rejected *)
          match make_plan ~shard_size (Game.make version budgets) with
          | exception Invalid_argument _ -> None
          | p -> if p.total = profiles then Some p else None)
      | _ -> None)
  | _ -> None

let engine_provenance () =
  Deviation_eval.choice_name (Deviation_eval.default_choice ())

let shard_row ~key ~provenance r =
  let base =
    [
      ("row", Json.Str "shard");
      ("key", Json.Str key);
      ("sid", Json.Int r.shard.sid);
      ("lo", Json.Int r.shard.lo);
      ("hi", Json.Int r.shard.hi);
      ("found", Json.Int r.found);
      ( "classes",
        Json.List
          (List.map
             (fun (rep, count) ->
               Json.Obj
                 [
                   ("rep", Json.Str (Strategy.to_string rep));
                   ("count", Json.Int count);
                 ])
             r.classes) );
      ( "diams",
        Json.List
          (List.map
             (fun (d, c) -> Json.List [ Json.Int d; Json.Int c ])
             r.diameters) );
    ]
  in
  (* checkpoint rows carry who/how for forensics; the canonical rows of
     the final artifact drop them, so fresh and resumed runs commit the
     same bytes *)
  let prov =
    if provenance then
      [
        ("pid", Json.Int (Unix.getpid ()));
        ("engine", Json.Str (engine_provenance ()));
      ]
    else []
  in
  stamp (base @ prov)

let shard_of_fields plan fields =
  let j = Json.Obj fields in
  let key = plan_key plan in
  match
    ( str_field "key" j,
      int_field "sid" j,
      int_field "lo" j,
      int_field "hi" j,
      int_field "found" j )
  with
  | Some k, Some sid, Some lo, Some hi, Some found when k = key -> (
      match shard_of_plan plan sid with
      | Some shard when shard.lo = lo && shard.hi = hi && found >= 0 -> (
          let classes =
            match Json.member "classes" j with
            | Some (Json.List l) -> (
                try
                  Some
                    (List.map
                       (fun cj ->
                         match (str_field "rep" cj, int_field "count" cj) with
                         | Some rep, Some count when count > 0 ->
                             (Strategy.of_string rep, count)
                         | _ -> raise Exit)
                       l)
                with _ -> None)
            | _ -> None
          in
          let diameters =
            match Json.member "diams" j with
            | Some (Json.List l) -> (
                try
                  Some
                    (List.map
                       (function
                         | Json.List [ Json.Int d; Json.Int c ] when c > 0 ->
                             (d, c)
                         | _ -> raise Exit)
                       l)
                with Exit -> None)
            | _ -> None
          in
          match (classes, diameters) with
          | Some classes, Some diameters
            when List.fold_left (fun a (_, c) -> a + c) 0 classes = found
                 && List.fold_left (fun a (_, c) -> a + c) 0 diameters = found
                 && List.for_all
                      (fun (rep, _) ->
                        Budget.to_array (Strategy.budgets rep)
                        = Budget.to_array plan.budgets)
                      classes ->
              Some { shard; found; classes; diameters }
          | _ -> None)
      | _ -> None)
  | _ -> None

type claim = { claim_sid : int; claim_pid : int }

let claim_row ~key ~owner ~pid sid =
  stamp
    [
      ("row", Json.Str "claim");
      ("key", Json.Str key);
      ("sid", Json.Int sid);
      ("pid", Json.Int pid);
      ("owner", Json.Str owner);
    ]

let claim_of_fields plan fields =
  let j = Json.Obj fields in
  match (str_field "key" j, int_field "sid" j, int_field "pid" j) with
  | Some k, Some sid, Some pid when k = plan_key plan ->
      Some { claim_sid = sid; claim_pid = pid }
  | _ -> None

let summary_row plan census =
  let game = Game.make plan.version plan.budgets in
  stamp
    [
      ("row", Json.Str "summary");
      ("key", Json.Str (plan_key plan));
      ("profiles", Json.Int census.total_profiles);
      ("equilibria", Json.Int census.equilibria);
      ("iso_classes", Json.Int (List.length census.iso_classes));
      ( "diams",
        Json.List
          (List.map
             (fun (d, c) -> Json.List [ Json.Int d; Json.Int c ])
             census.diameter_histogram) );
      ( "classes",
        Json.List
          (List.map
             (fun (rep, count) ->
               Json.Obj
                 [
                   ("rep", Json.Str (Strategy.to_string rep));
                   ("count", Json.Int count);
                   ("diameter", Json.Int (Game.social_cost game rep));
                 ])
             census.iso_class_counts) );
    ]

(* Tolerant, Ledger-style load: every line either verifies its digest
   and parses under the expected plan, or is counted skipped — torn
   tails, alien instances and hand-damage all land in the same bucket
   and are simply recomputed.  Duplicate shard rows (racing workers)
   dedup first-wins; [summary] rows are recognized silently so a
   committed final artifact reads back as a complete checkpoint. *)
let read_checkpoint ?expect path =
  let lines = ref [] in
  (if Sys.file_exists path then
     let ic = open_in path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ()));
  let lines = List.rev !lines in
  let plan = ref expect in
  let had_plan = ref false in
  let results : (int, shard_result) Hashtbl.t = Hashtbl.create 64 in
  let claims = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Json.of_string line with
        | exception Json.Parse_error _ -> incr skipped
        | j -> (
            match verify_stamp j with
            | None -> incr skipped
            | Some fields -> (
                let fj = Json.Obj fields in
                match str_field "row" fj with
                | Some "plan" -> (
                    match plan_of_fields fields with
                    | Some p -> (
                        match !plan with
                        | None ->
                            plan := Some p;
                            had_plan := true
                        | Some q ->
                            if plan_key p = plan_key q then had_plan := true
                            else incr skipped)
                    | None -> incr skipped)
                | Some "shard" -> (
                    match !plan with
                    | None -> incr skipped
                    | Some p -> (
                        match shard_of_fields p fields with
                        | Some r ->
                            if not (Hashtbl.mem results r.shard.sid) then
                              Hashtbl.add results r.shard.sid r
                        | None -> incr skipped))
                | Some "claim" -> (
                    match !plan with
                    | None -> incr skipped
                    | Some p -> (
                        match claim_of_fields p fields with
                        | Some c -> claims := c :: !claims
                        | None -> incr skipped))
                | Some "summary" -> ()
                | Some _ | None -> incr skipped)))
    lines;
  let sorted =
    Hashtbl.fold (fun _ r acc -> r :: acc) results []
    |> List.sort (fun a b -> compare a.shard.sid b.shard.sid)
  in
  (!plan, !had_plan, sorted, List.rev !claims, !skipped)

(* --- scanning and merging --- *)

let histogram_of tbl =
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])

let bump tbl d by =
  Hashtbl.replace tbl d (by + Option.value ~default:0 (Hashtbl.find_opt tbl d))

let scan_shard ?(budget = Obs.Budgeted.unlimited) ?progress game shard =
  let n = Game.n game in
  let acc = ref Structure.Iso_acc.empty in
  let diams = Hashtbl.create 8 in
  let found = ref 0 in
  Obs.Budgeted.guard budget (fun () ->
      Equilibrium.iter_profiles_range (Game.budgets game) ~lo:shard.lo
        ~hi:shard.hi (fun profile ->
          Obs.Budgeted.checkpoint ~cost:n budget;
          Obs.Metrics.incr m_scanned;
          (match progress with Some p -> Obs.Progress.step p | None -> ());
          if Equilibrium.is_nash game profile then begin
            incr found;
            Obs.Metrics.incr m_equilibria;
            acc := Structure.Iso_acc.add !acc profile;
            bump diams (Game.social_cost game profile) 1
          end);
      {
        shard;
        found = !found;
        classes = Structure.Iso_acc.classes !acc;
        diameters = histogram_of diams;
      })

let merge game plan results =
  let acc, diams, found, scanned =
    List.fold_left
      (fun (acc, diams, found, scanned) r ->
        let acc =
          List.fold_left
            (fun acc (rep, count) -> Structure.Iso_acc.add_class acc ~rep ~count)
            acc r.classes
        in
        List.iter (fun (d, c) -> bump diams d c) r.diameters;
        (acc, diams, found + r.found, scanned + (r.shard.hi - r.shard.lo)))
      (Structure.Iso_acc.empty, Hashtbl.create 8, 0, 0)
      results
  in
  let diameter_histogram = histogram_of diams in
  let iso_class_counts = Structure.Iso_acc.classes acc in
  {
    game;
    total_profiles = plan.total;
    scanned_profiles = scanned;
    equilibria = found;
    iso_classes = List.map fst iso_class_counts;
    iso_class_counts;
    diameter_histogram;
    min_diameter =
      (match diameter_histogram with [] -> None | (d, _) :: _ -> Some d);
    max_diameter =
      (match List.rev diameter_histogram with
      | [] -> None
      | (d, _) :: _ -> Some d);
  }

let unscanned_ranges plan results =
  let present = Array.make (max 1 plan.num_shards) false in
  List.iter
    (fun r ->
      if r.shard.sid >= 0 && r.shard.sid < plan.num_shards then
        present.(r.shard.sid) <- true)
    results;
  let ranges = ref [] in
  let i = ref 0 in
  while !i < plan.num_shards do
    if present.(!i) then incr i
    else begin
      let start = !i in
      while !i < plan.num_shards && not present.(!i) do
        incr i
      done;
      ranges :=
        (start * plan.shard_size, min plan.total (!i * plan.shard_size))
        :: !ranges
    end
  done;
  List.rev !ranges

(* --- committing --- *)

(* Canonical final artifact: plan row, shard rows sorted by id with
   provenance stripped, summary row — a pure function of the census
   data, so fresh, killed+resumed and multi-worker runs all commit the
   same bytes.  The atomic rename announces the artifact to the Ledger
   commit hook; the now-subsumed .partial checkpoint is removed. *)
let commit_final path plan results census =
  let key = plan_key plan in
  let sorted =
    List.sort (fun a b -> compare a.shard.sid b.shard.sid) results
  in
  Obs.Atomic_io.write_file path (fun oc ->
      let line j =
        output_string oc (Json.to_string j);
        output_char oc '\n'
      in
      line (plan_row plan);
      List.iter (fun r -> line (shard_row ~key ~provenance:false r)) sorted;
      line (summary_row plan census));
  (try Sys.remove (Obs.Atomic_io.partial_path path) with Sys_error _ -> ())

let partial_why budget =
  Option.value ~default:Obs.Budgeted.Cancelled (Obs.Budgeted.why budget)

let finish ?checkpoint ~budget game plan results =
  let census = merge game plan results in
  match unscanned_ranges plan results with
  | [] ->
      (match checkpoint with
      | Some path -> commit_final path plan results census
      | None -> ());
      Complete census
  | unscanned -> Partial { census; unscanned; why = partial_why budget }

(* --- the sequential, budget-threaded scan (small instances) --- *)

exception Limit_hit

let run ?limit ?(budget = Obs.Budgeted.unlimited) game =
  let budgets = Game.budgets game in
  let total = Equilibrium.count_profiles budgets in
  let n = Game.n game in
  let scanned = ref 0 in
  let found = ref 0 in
  let acc = ref Structure.Iso_acc.empty in
  let diams = Hashtbl.create 8 in
  let expired = ref None in
  Obs.Progress.with_task ~total ~budget "census" (fun progress ->
      try
        Equilibrium.iter_profiles budgets (fun profile ->
            Obs.Budgeted.checkpoint ~cost:n budget;
            incr scanned;
            Obs.Metrics.incr m_scanned;
            Obs.Progress.step progress;
            if Equilibrium.is_nash game profile then begin
              incr found;
              Obs.Metrics.incr m_equilibria;
              acc := Structure.Iso_acc.add !acc profile;
              bump diams (Game.social_cost game profile) 1;
              match limit with
              | Some l when !found >= l -> raise Limit_hit
              | Some _ | None -> ()
            end)
      with
      | Limit_hit -> ()
      | Obs.Budgeted.Expired -> expired := Some (partial_why budget));
  let diameter_histogram = histogram_of diams in
  let iso_class_counts = Structure.Iso_acc.classes !acc in
  let census =
    {
      game;
      total_profiles = total;
      scanned_profiles = !scanned;
      equilibria = !found;
      iso_classes = List.map fst iso_class_counts;
      iso_class_counts;
      diameter_histogram;
      min_diameter =
        (match diameter_histogram with [] -> None | (d, _) :: _ -> Some d);
      max_diameter =
        (match List.rev diameter_histogram with
        | [] -> None
        | (d, _) :: _ -> Some d);
    }
  in
  match !expired with
  | None -> Complete census
  | Some why -> Partial { census; unscanned = [ (!scanned, total) ]; why }

(* --- the sharded, checkpointed pipeline --- *)

(* Scan the pending shards of [plan] over domains, appending a
   checkpoint row per completed shard; [prior] shards (reloaded from a
   checkpoint) are counted as done without rescanning. *)
let continue_plan ?domains ~budget ?checkpoint game plan ~prior ~ensure_plan_row
    =
  let key = plan_key plan in
  let partial = Option.map Obs.Atomic_io.partial_path checkpoint in
  (match partial with
  | Some p ->
      if ensure_plan_row then
        Obs.Atomic_io.append_line p (Json.to_string (plan_row plan));
      (* resumable state is a first-class artifact: register it so a
         ledger row references it and `runs gc` never calls it dangling *)
      Obs.Ledger.note_artifact p
  | None -> ());
  Obs.Metrics.add m_resumed (List.length prior);
  let done_sids = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace done_sids r.shard.sid ()) prior;
  let pending =
    shards plan
    |> List.filter (fun s -> not (Hashtbl.mem done_sids s.sid))
    |> Array.of_list
  in
  let fresh =
    Obs.Progress.with_task ~total:plan.total ~budget "census"
      (fun progress ->
        List.iter
          (fun r -> Obs.Progress.step ~n:(r.shard.hi - r.shard.lo) progress)
          prior;
        Parallel.map_dynamic ?domains ~n:(Array.length pending) (fun i ->
            match scan_shard ~budget ~progress game pending.(i) with
            | None -> None
            | Some r ->
                (match partial with
                | Some p ->
                    (* the injectable instant: SIGKILL here loses the
                       in-flight shard but nothing committed *)
                    Obs.Fault.hit "census.checkpoint";
                    Obs.Atomic_io.append_line p
                      (Json.to_string (shard_row ~key ~provenance:true r))
                | None -> ());
                Obs.Metrics.incr m_shards;
                Some r))
  in
  let results =
    prior @ (Array.to_list fresh |> List.filter_map (fun r -> r))
  in
  finish ?checkpoint ~budget game plan results

let run_sharded ?domains ?shard_size ?(budget = Obs.Budgeted.unlimited)
    ?checkpoint game =
  let plan = make_plan ?shard_size game in
  let prior, ensure_plan_row =
    match checkpoint with
    | None -> ([], false)
    | Some path ->
        let partial = Obs.Atomic_io.partial_path path in
        if Sys.file_exists partial then
          let _, had_plan, results, _, _ =
            read_checkpoint ~expect:plan partial
          in
          (results, not had_plan)
        else ([], true)
  in
  continue_plan ?domains ~budget ?checkpoint game plan ~prior ~ensure_plan_row

let normalize_path path =
  if Filename.check_suffix path ".partial" then
    Filename.chop_suffix path ".partial"
  else path

let resume ?domains ?(budget = Obs.Budgeted.unlimited) path =
  let final = normalize_path path in
  let partial = Obs.Atomic_io.partial_path final in
  if Sys.file_exists partial then
    match read_checkpoint partial with
    | Some plan, _, results, _, skipped ->
        let game = Game.make plan.version plan.budgets in
        Ok
          ( continue_plan ?domains ~budget ~checkpoint:final game plan
              ~prior:results ~ensure_plan_row:false,
            skipped )
    | None, _, _, _, skipped ->
        Error
          (Printf.sprintf "%s: no readable census plan row (%d line%s skipped)"
             partial skipped
             (if skipped = 1 then "" else "s"))
  else if Sys.file_exists final then
    match read_checkpoint final with
    | Some plan, _, results, _, skipped -> (
        let game = Game.make plan.version plan.budgets in
        match unscanned_ranges plan results with
        | [] ->
            (* complete artifact, nothing pending: read-only validation,
               no rewrite *)
            Ok (Complete (merge game plan results), skipped)
        | _ ->
            Ok
              ( continue_plan ?domains ~budget ~checkpoint:final game plan
                  ~prior:results ~ensure_plan_row:true,
                skipped ))
    | None, _, _, _, _ ->
        Error (Printf.sprintf "%s: not a census artifact" final)
  else Error (Printf.sprintf "%s: no census checkpoint or artifact" path)

(* --- multi-process worker mode --- *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, someone else's *)

(* First live claim in file order wins a shard: O_APPEND gives every
   claim a total order, so two racing workers that both append resolve
   the race identically by re-reading.  A claim whose process died is
   stale and is simply superseded by the next claimant. *)
let effective_claimant claims sid =
  List.find_map
    (fun c ->
      if c.claim_sid = sid && pid_alive c.claim_pid then Some c.claim_pid
      else None)
    claims

let work ?(budget = Obs.Budgeted.unlimited) ?owner ?shard_size ?seed
    ?(backoff_ms = 50.) path =
  let final = normalize_path path in
  let partial = Obs.Atomic_io.partial_path final in
  let owner =
    match owner with
    | Some o -> o
    | None -> Printf.sprintf "pid-%d" (Unix.getpid ())
  in
  let self = Unix.getpid () in
  (* establish the plan: adopt the checkpoint's, or seed a fresh one.
     Two workers racing to seed both append the same canonical plan row
     (it is a pure function of the instance), so first-wins dedup makes
     the race harmless. *)
  let plan =
    let from_file =
      if Sys.file_exists partial then
        match read_checkpoint partial with p, _, _, _, _ -> p
      else if Sys.file_exists final then
        match read_checkpoint final with p, _, _, _, _ -> p
      else None
    in
    match (from_file, seed) with
    | Some p, _ -> Ok p
    | None, Some game -> (
        match make_plan ?shard_size game with
        | p ->
            Obs.Atomic_io.append_line partial (Json.to_string (plan_row p));
            Ok p
        | exception Invalid_argument msg -> Error msg)
    | None, None ->
        Error
          (Printf.sprintf
             "%s: no census plan to work on (seed one with --budgets)" path)
  in
  match plan with
  | Error _ as e -> e
  | Ok plan ->
      let key = plan_key plan in
      let game = Game.make plan.version plan.budgets in
      Obs.Ledger.note_artifact partial;
      let backoff attempts =
        (* exponential, capped: waiting on a live peer's in-flight shard *)
        let ms = min (backoff_ms *. (2. ** float_of_int attempts)) 2000. in
        Unix.sleepf (ms /. 1000.)
      in
      let result =
        Obs.Progress.with_task ~total:plan.total ~budget "census"
          (fun progress ->
            let rec loop attempts =
              if Obs.Budgeted.expired budget then
                let _, _, results, _, _ = read_checkpoint ~expect:plan partial in
                finish ~budget game plan results
              else
                let _, _, results, claims, _ =
                  read_checkpoint ~expect:plan partial
                in
                let done_sids = Hashtbl.create 64 in
                List.iter
                  (fun r -> Hashtbl.replace done_sids r.shard.sid ())
                  results;
                let pending =
                  shards plan
                  |> List.filter (fun s -> not (Hashtbl.mem done_sids s.sid))
                in
                if pending = [] then finish ~checkpoint:final ~budget game plan results
                else
                  let claimable =
                    List.find_opt
                      (fun s ->
                        match effective_claimant claims s.sid with
                        | None -> true
                        | Some pid -> pid = self)
                      pending
                  in
                  match claimable with
                  | None ->
                      (* every pending shard is in flight on a live peer:
                         back off and re-read — a peer that dies turns its
                         claim stale and reopens the shard *)
                      backoff attempts;
                      loop (min 6 (attempts + 1))
                  | Some s -> (
                      (if
                         List.exists
                           (fun c ->
                             c.claim_sid = s.sid && not (pid_alive c.claim_pid))
                           claims
                       then Obs.Metrics.incr m_claims_stale);
                      Obs.Fault.hit "census.claim";
                      Obs.Atomic_io.append_line partial
                        (Json.to_string (claim_row ~key ~owner ~pid:self s.sid));
                      let _, _, _, claims, _ =
                        read_checkpoint ~expect:plan partial
                      in
                      match effective_claimant claims s.sid with
                      | Some pid when pid <> self ->
                          (* lost the race; the winner is alive and
                             scanning — move to another shard *)
                          Obs.Metrics.incr m_claims_lost;
                          loop 0
                      | _ -> (
                          Obs.Metrics.incr m_claims_won;
                          match scan_shard ~budget ~progress game s with
                          | None ->
                              let _, _, results, _, _ =
                                read_checkpoint ~expect:plan partial
                              in
                              finish ~budget game plan results
                          | Some r ->
                              Obs.Fault.hit "census.checkpoint";
                              Obs.Atomic_io.append_line partial
                                (Json.to_string
                                   (shard_row ~key ~provenance:true r));
                              Obs.Metrics.incr m_shards;
                              loop 0))
            in
            loop 0)
      in
      Ok result

(* --- derived statistics and printing --- *)

let price_of_anarchy census =
  match census.max_diameter with
  | None -> None
  | Some worst -> (
      match Poa.opt_diameter_exact (Game.budgets census.game) with
      | Some opt when opt > 0 -> Some { Poa.num = worst; den = opt }
      | Some _ -> Some { Poa.num = 1; den = 1 }
      | None -> None)

let pp_summary ppf c =
  Format.fprintf ppf "@[<v>%a: %d profiles" Game.pp c.game c.total_profiles;
  if c.scanned_profiles < c.total_profiles then
    Format.fprintf ppf " (%d scanned)" c.scanned_profiles;
  Format.fprintf ppf ", %d equilibria in %d isomorphism classes@,diameters:"
    c.equilibria
    (List.length c.iso_classes);
  List.iter
    (fun (d, count) -> Format.fprintf ppf " %d(x%d)" d count)
    c.diameter_histogram;
  Format.fprintf ppf "@]"

let pp_outcome ppf = function
  | Complete c -> pp_summary ppf c
  | Partial { census; unscanned; why } ->
      Format.fprintf ppf "%a@,partial (%s): %d unscanned range%s:" pp_summary
        census
        (Obs.Budgeted.why_name why)
        (List.length unscanned)
        (if List.length unscanned = 1 then "" else "s");
      List.iter
        (fun (lo, hi) -> Format.fprintf ppf " [%d,%d)" lo hi)
        unscanned
