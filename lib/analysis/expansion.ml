open Bbng_core
module Undirected = Bbng_graph.Undirected
module Bfs = Bbng_graph.Bfs

type profile = {
  radii : int array;
  min_ball : int array;
  max_ball : int array;
}

let ball_profile g =
  let n = Undirected.n g in
  if n = 0 then { radii = [||]; min_ball = [||]; max_ball = [||] }
  else begin
    (* ecc_max = diameter when connected; for disconnected graphs balls
       saturate at component size, still well defined. *)
    let rows = Array.init n (Bfs.distances g) in
    let ecc_max =
      Array.fold_left
        (fun acc row -> Array.fold_left (fun a d -> max a d) acc row)
        0 rows
    in
    let radii = Array.init (ecc_max + 1) Fun.id in
    let min_ball = Array.make (ecc_max + 1) max_int in
    let max_ball = Array.make (ecc_max + 1) 0 in
    Array.iter
      (fun row ->
        (* cumulative ball sizes for this center *)
        let counts = Array.make (ecc_max + 1) 0 in
        Array.iter
          (fun d -> if d <> Bfs.unreachable then counts.(d) <- counts.(d) + 1)
          row;
        let ball = ref 0 in
        for k = 0 to ecc_max do
          ball := !ball + counts.(k);
          if !ball < min_ball.(k) then min_ball.(k) <- !ball;
          if !ball > max_ball.(k) then max_ball.(k) <- !ball
        done)
      rows;
    { radii; min_ball; max_ball }
  end

let f p k =
  let len = Array.length p.min_ball in
  if len = 0 then 0
  else if k >= len then p.min_ball.(len - 1)
  else p.min_ball.(max k 0)

let inequality_3 ?(c = 8.0) g =
  let n = Undirected.n g in
  if n < 2 then true
  else begin
    let p = ball_profile g in
    let diameter = Array.length p.radii - 1 in
    let log_n = log (float_of_int n) /. log 2.0 in
    let ok = ref true in
    let k = ref 1 in
    while !ok && 4 * !k <= diameter do
      let lhs = float_of_int (f p (4 * !k)) in
      let growth = float_of_int !k *. float_of_int (f p !k) /. (c *. log_n) in
      let rhs = Float.min (float_of_int (n + 1) /. 2.0) growth in
      if lhs < rhs then ok := false;
      incr k
    done;
    !ok
  end

let doubling_radius g =
  let n = Undirected.n g in
  if n <= 1 then 0
  else begin
    let p = ball_profile g in
    let rec search k =
      if k >= Array.length p.min_ball then Array.length p.min_ball - 1
      else if 2 * f p k > n then k
      else search (k + 1)
    in
    search 0
  end

let report profile_strat =
  let g = Strategy.underlying profile_strat in
  let p = ball_profile g in
  Array.to_list (Array.map (fun k -> (k, p.min_ball.(k), p.max_ball.(k))) p.radii)
