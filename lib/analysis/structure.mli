open Bbng_core
(** Structural validators for unit-budget equilibria (Section 4).

    Theorem 4.1: every SUM equilibrium of [(1,...,1)]-BG is connected,
    brace-free, has a unique cycle of length at most 5, and every vertex
    is on the cycle or adjacent to it.
    Theorem 4.2: every MAX equilibrium is connected, has a unique
    directed cycle (possibly a brace) of length at most 7, and every
    vertex is within distance 2 of it.

    [analyze] extracts the cycle/fringe anatomy of any out-degree-1
    realization; [check_*] test the corresponding theorem's conclusion
    and return the first violated clause. *)

type anatomy = {
  connected : bool;
  cycles : int list list;   (** directed cycles, one per weak component *)
  cycle_len : int;          (** length of the unique cycle (0 if none or
                                several) *)
  has_brace : bool;
  max_dist_to_cycle : int;  (** over all vertices, [-1] if no unique cycle *)
  diameter : int;           (** [n^2] when disconnected *)
}

val analyze : Strategy.t -> anatomy
(** @raise Invalid_argument if some player's budget is not 1. *)

type violation = {
  clause : string;   (** human-readable clause that failed *)
}

val check_sum_structure : Strategy.t -> violation option
(** [None] iff the profile satisfies Theorem 4.1's conclusion. *)

val check_max_structure : Strategy.t -> violation option
(** [None] iff the profile satisfies Theorem 4.2's conclusion. *)

val pp_anatomy : Format.formatter -> anatomy -> unit

(** Mergeable isomorphism-class accumulator (census substrate).

    Classifies profiles by realization isomorphism incrementally: each
    [add] buckets the profile under a cheap label-invariant fingerprint
    (degree sequences, brace count, underlying diameter), so the exact
    — exponential worst-case — digraph-isomorphism test only runs
    against representatives sharing the invariant (orbit pruning).
    Accumulators built over disjoint slices of the profile space
    [merge] into the same classes the sequential scan finds, and each
    class keeps its lexicographically smallest member as
    representative, so the final class list is independent of shard
    partitioning and merge order — the property the census's
    byte-identical crash/resume contract rests on. *)
module Iso_acc : sig
  type t

  val empty : t

  val add : t -> Strategy.t -> t
  (** Classify one profile (weight 1). *)

  val add_class : t -> rep:Strategy.t -> count:int -> t
  (** Re-inject a class deserialized from a checkpoint row: classified
      like [add] but carrying [count] members. *)

  val merge : t -> t -> t
  (** Union of two accumulators; counts add, representatives minimize. *)

  val classes : t -> (Strategy.t * int) list
  (** [(representative, member count)] per class, sorted by the
      representative's serialization — a canonical order. *)

  val class_count : t -> int
  val total : t -> int

  val fingerprint : Strategy.t -> string
  (** The bucketing invariant (exposed for tests: isomorphic profiles
      must agree on it). *)
end
