open Bbng_core
(** Structural validators for unit-budget equilibria (Section 4).

    Theorem 4.1: every SUM equilibrium of [(1,...,1)]-BG is connected,
    brace-free, has a unique cycle of length at most 5, and every vertex
    is on the cycle or adjacent to it.
    Theorem 4.2: every MAX equilibrium is connected, has a unique
    directed cycle (possibly a brace) of length at most 7, and every
    vertex is within distance 2 of it.

    [analyze] extracts the cycle/fringe anatomy of any out-degree-1
    realization; [check_*] test the corresponding theorem's conclusion
    and return the first violated clause. *)

type anatomy = {
  connected : bool;
  cycles : int list list;   (** directed cycles, one per weak component *)
  cycle_len : int;          (** length of the unique cycle (0 if none or
                                several) *)
  has_brace : bool;
  max_dist_to_cycle : int;  (** over all vertices, [-1] if no unique cycle *)
  diameter : int;           (** [n^2] when disconnected *)
}

val analyze : Strategy.t -> anatomy
(** @raise Invalid_argument if some player's budget is not 1. *)

type violation = {
  clause : string;   (** human-readable clause that failed *)
}

val check_sum_structure : Strategy.t -> violation option
(** [None] iff the profile satisfies Theorem 4.1's conclusion. *)

val check_max_structure : Strategy.t -> violation option
(** [None] iff the profile satisfies Theorem 4.2's conclusion. *)

val pp_anatomy : Format.formatter -> anatomy -> unit
