open Bbng_core
(** Equilibrium census for small instances.

    Exhaustively enumerates the Nash equilibria of an instance and
    aggregates them: how many, how many up to (arc-preserving)
    isomorphism, the diameter histogram, and representative profiles.
    This is the data behind the "all equilibria of small instances obey
    the theorem" rows in the experiment tables, in a form that also
    answers "what do the equilibria look like?". *)

type t = {
  game : Game.t;
  total_profiles : int;       (** [prod C(n-1, b_i)] (saturating) *)
  equilibria : int;           (** number of Nash profiles *)
  iso_classes : Strategy.t list;
      (** one representative per realization-isomorphism class *)
  diameter_histogram : (int * int) list;
      (** (diameter, #equilibria) sorted by diameter *)
  min_diameter : int option;
  max_diameter : int option;
}

val run : ?limit:int -> Game.t -> t
(** Enumerates every profile (bounded by [limit] {e equilibria} if
    given); intended for instances with at most a few hundred thousand
    profiles. *)

val price_of_anarchy : t -> Poa.ratio option
(** Worst equilibrium diameter over the instance's exact OPT (computed
    by enumeration as well); [None] if no equilibrium was found. *)

val pp_summary : Format.formatter -> t -> unit
