open Bbng_core
(** Checkpointed, shardable, crash-recoverable equilibrium census.

    Exhaustively certifies every profile of an instance and aggregates
    the equilibria: how many, how many up to realization isomorphism,
    the diameter histogram, representative profiles.  This is the data
    behind the "all equilibria of small instances obey the theorem"
    rows (Theorems 4.1/4.2), in a form that also answers "what do the
    equilibria look like?".

    The profile space is partitioned into lexicographic index shards —
    a shard is a pure [(lo, hi)] pair needing no state to restart
    (see {!Equilibrium.iter_profiles_range}).  Shards run across
    {!Parallel} domains; each completed shard appends one digest-
    stamped row to [FILE.partial] through {!Bbng_obs.Atomic_io}'s
    [O_APPEND] protocol, so a SIGKILL at any instant loses at most the
    in-flight shards plus a torn trailing line that every reader skips
    by contract.  {!resume} reloads a checkpoint tolerantly, recomputes
    only the missing shards, and commits the final artifact atomically;
    the final bytes are a canonical function of the census data, so a
    killed-and-resumed run commits an artifact byte-identical to an
    uninterrupted one (fault_smoke stage 12 pins this).  {!work} lets
    several OS processes drain one checkpoint cooperatively through
    appended claim rows.

    Fault probes: [census.checkpoint] fires before each shard row is
    appended, [census.claim] before each claim row. *)

type t = {
  game : Game.t;
  total_profiles : int;  (** [prod C(n-1, b_i)] *)
  scanned_profiles : int;
      (** profiles actually certified; [< total_profiles] in a partial
          census *)
  equilibria : int;  (** Nash profiles among the scanned *)
  iso_classes : Strategy.t list;
      (** one representative per realization-isomorphism class, in the
          canonical (serialization) order *)
  iso_class_counts : (Strategy.t * int) list;
      (** the same representatives with their class sizes *)
  diameter_histogram : (int * int) list;
      (** (diameter, #equilibria) sorted by diameter *)
  min_diameter : int option;
  max_diameter : int option;
}

type outcome =
  | Complete of t
  | Partial of {
      census : t;  (** verified aggregate over the scanned shards *)
      unscanned : (int * int) list;
          (** coalesced profile-index ranges not yet certified *)
      why : Bbng_obs.Budgeted.why;
    }
      (** Deadline/work-budget expiry degrades to a typed partial
          census instead of raising — the checkpoint stays resumable. *)

(** {1 Sharding} *)

type plan = {
  version : Cost.version;
  budgets : Budget.t;
  shard_size : int;
  num_shards : int;
  total : int;
}
(** The recorded partitioning: budgets, shard size and derived counts.
    The plan row leads every checkpoint, so [--resume] needs no flags —
    and ties shard rows to their instance through a digest key. *)

type shard = { sid : int; lo : int; hi : int }

type shard_result = {
  shard : shard;
  found : int;
  classes : (Strategy.t * int) list;
  diameters : (int * int) list;
}

val make_plan : ?shard_size:int -> Game.t -> plan
(** @raise Invalid_argument on a saturated profile space (the sharded
    pipeline needs exact index arithmetic) or [shard_size < 1]. *)

val shards : plan -> shard list

val scan_shard :
  ?budget:Bbng_obs.Budgeted.t ->
  ?progress:Bbng_obs.Progress.t ->
  Game.t ->
  shard ->
  shard_result option
(** Certify one shard's profiles; [None] if the budget expired before
    the shard completed (partial shard work is dropped — only whole
    shards checkpoint, which is what makes resume deterministic). *)

val merge : Game.t -> plan -> shard_result list -> t
(** Aggregate shard results (any order, any subset) into one census;
    iso classes merge through {!Structure.Iso_acc}, so the result is
    independent of partitioning and merge order. *)

val unscanned_ranges : plan -> shard_result list -> (int * int) list
(** Coalesced profile-index ranges of the shards missing from the
    result set; [[]] iff the census is complete. *)

(** {1 Running} *)

val run : ?limit:int -> ?budget:Bbng_obs.Budgeted.t -> Game.t -> outcome
(** Sequential in-memory scan (no checkpoint): enumerates every
    profile, stopping after [limit] equilibria if given.  The budget
    token is checkpointed once per profile; expiry returns [Partial]
    with the unscanned suffix. *)

val run_sharded :
  ?domains:int ->
  ?shard_size:int ->
  ?budget:Bbng_obs.Budgeted.t ->
  ?checkpoint:string ->
  Game.t ->
  outcome
(** Sharded scan across domains.  With [~checkpoint:FILE], completed
    shards append to [FILE.partial] as they finish, shards already
    recorded there are not rescanned, and a complete census commits
    [FILE] atomically (removing the subsumed partial). *)

val resume :
  ?domains:int ->
  ?budget:Bbng_obs.Budgeted.t ->
  string ->
  (outcome * int, string) result
(** [resume FILE] (or [FILE.partial]) reloads the checkpoint with the
    tolerant codec — torn and alien lines are skipped and returned as
    the [int] — recomputes only missing shards, and commits the final
    artifact.  Resuming an already-committed artifact validates and
    summarizes it read-only.  All instance parameters come from the
    recorded plan row. *)

val work :
  ?budget:Bbng_obs.Budgeted.t ->
  ?owner:string ->
  ?shard_size:int ->
  ?seed:Game.t ->
  ?backoff_ms:float ->
  string ->
  (outcome, string) result
(** Cooperative multi-process mode: claim pending shards from [FILE]'s
    checkpoint one at a time (O_APPEND claim rows; first live claimant
    in file order wins; claims of dead processes are stale and are
    superseded), scan them, and checkpoint the results.  When every
    pending shard is claimed by a live peer, backs off exponentially
    (from [backoff_ms], capped) and re-reads.  Any worker observing the
    census complete commits the final artifact — commits are atomic and
    canonical, so concurrent committers are idempotent.  [seed] plants
    the plan row when the checkpoint does not exist yet. *)

(** {1 Checkpoint codec}

    Enough of the row codec to let tests and external tooling fabricate
    checkpoint lines (a plan-only file, a stale claim from a dead pid)
    without replicating the digest-stamp format. *)

val plan_row : plan -> Bbng_obs.Json.t
(** The digest-stamped plan row that leads every checkpoint — a pure
    function of the instance, so racing seeders append identical
    bytes. *)

val plan_key : plan -> string
(** 12-hex instance key stamped into every shard and claim row; rows
    keyed to a different plan are alien and are skipped. *)

val claim_row : key:string -> owner:string -> pid:int -> int -> Bbng_obs.Json.t
(** A digest-stamped claim on shard [sid] by [pid]. *)

(** {1 Derived statistics} *)

val price_of_anarchy : t -> Poa.ratio option
(** Worst equilibrium diameter over the instance's exact OPT (computed
    by enumeration as well); [None] if no equilibrium was found. *)

val pp_summary : Format.formatter -> t -> unit
val pp_outcome : Format.formatter -> outcome -> unit
