(** Aligned ASCII tables for the experiment harness.

    Kept deliberately dumb: rows of strings, automatic column widths,
    printed to a formatter.  All benches and examples render through
    this so the output of [bench/main.exe] lines up and can be diffed
    against EXPERIMENTS.md. *)

type t

val make : headers:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_int_row : t -> string -> int list -> unit
(** Label in the first column, integers after. *)

val print : ?out:Format.formatter -> t -> unit
(** Render with a separator under the header.  Defaults to stdout. *)

val to_string : t -> string

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)
