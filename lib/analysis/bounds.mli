open Bbng_core
(** The paper's bounds, with explicit constants, as executable checks.

    Asymptotic statements are reproduced as concrete inequalities whose
    constants come from the proofs themselves, so the experiments can
    assert "measured <= paper bound" rather than eyeball growth:

    - Theorem 3.3: a SUM Tree-BG equilibrium on [n] vertices has
      diameter [d <= 2 (log2 (n + 1) + 1)] (from [2^(t-1) - 1 <= n] and
      [d <= 2t]).
    - Theorem 6.9: SUM equilibria have diameter
      [<= 2^(c * sqrt(log2 n))]; the proof's constant is not tracked
      explicitly, so [sum_diameter_bound] exposes [c] as a parameter
      with a practical default.
    - Theorem 7.2: budget [>= k] implies k-connected or diameter [< 4].
    - Inequality (1) of Theorem 3.3's proof, checkable on any tree
      equilibrium via the Figure 3 decomposition. *)

val tree_sum_diameter_bound : n:int -> int
(** [floor(2 * (log2 (n + 1) + 1))], the explicit Theorem 3.3 bound. *)

val sum_diameter_bound : ?c:float -> int -> int
(** [2^(c * sqrt(log2 n))] rounded up; default [c = 4.0]. *)

val sqrt_log_lower_bound : n:int -> int
(** [floor(sqrt(log2 n))]: the Theorem 5.3 lower-bound curve. *)

(** {1 Theorem 3.3 / Figure 3: the doubling inequality} *)

type fig3_report = {
  path : int list;            (** the longest path [v_0 ... v_d] *)
  attachment : int array;     (** [a.(i) = |A_i|] *)
  forward_arcs : int list;    (** indices [i] with the arc [v_i -> v_(i+1)]
                                  owned forward along the majority direction *)
  inequality_holds : bool;    (** inequality (1) of the proof at every [j] *)
  diameter : int;
}

val figure3_decomposition : Strategy.t -> fig3_report
(** Runs the Theorem 3.3 proof apparatus on a tree profile: extract a
    longest path, compute the [A_i] decomposition, locate the majority
    arc direction, and check inequality (1):
    [a(i_j + 1) >= sum_{l > j} a(i_l + 1)] for each forward arc index.
    @raise Invalid_argument if the realization is not a tree. *)

(** {1 Theorem 6.1: tree-like balls are shallow} *)

val tree_ball_radius : Bbng_graph.Undirected.t -> int -> int
(** [tree_ball_radius g u]: the largest [r] such that the subgraph
    induced by [B_r(u)] is a tree (the ball is always connected, so
    acyclicity is the test).  Theorem 6.1 proves that in a SUM
    equilibrium this radius is O(log n): an equilibrium cannot look
    like a deep tree around any vertex.  [0] when already the radius-1
    ball contains a cycle; the vertex's eccentricity when its whole
    component is a tree. *)

val max_tree_ball_radius : Bbng_graph.Undirected.t -> int
(** Maximum of {!tree_ball_radius} over all vertices. *)

(** {1 Theorem 7.2} *)

type connectivity_report = {
  min_budget : int;
  diameter_ : int;
  connectivity : int;
  theorem_7_2_ok : bool;  (** diameter < 4, or connectivity >= min budget *)
}

val check_theorem_7_2 : Strategy.t -> connectivity_report
(** Checks the conclusion on any profile (the theorem asserts it for
    SUM equilibria). *)

type lemma_7_1_report = {
  cut : int list;                  (** the minimum vertex cut examined *)
  eligible : int list;             (** members of components of [G - cut]
                                       whose vertices ALL sit at distance
                                       1 from the cut with budget >
                                       |cut| (the lemma's hypothesis) *)
  all_local_diameter_le_2 : bool;  (** Lemma 7.1's conclusion on them *)
}

val check_lemma_7_1 : Strategy.t -> lemma_7_1_report option
(** Runs the Lemma 7.1 hypothesis/conclusion check against a minimum
    vertex cut [C] of the profile's realization: for every component
    [A] of [G - C] whose members are {e all} at distance 1 from [C]
    with budgets exceeding [|C|], every member must have local diameter
    at most 2 (the paper proves this for SUM equilibria).  [None] when
    the graph has no vertex cut (complete or too small). *)
