type model = Constant | Sqrt_log | Logarithmic | Exp_sqrt_log | Sqrt | Linear

let model_name = function
  | Constant -> "Theta(1)"
  | Sqrt_log -> "sqrt(log n)"
  | Logarithmic -> "log n"
  | Exp_sqrt_log -> "2^sqrt(log n)"
  | Sqrt -> "sqrt(n)"
  | Linear -> "n"

let all_models = [ Constant; Sqrt_log; Logarithmic; Exp_sqrt_log; Sqrt; Linear ]

let log2 x = log x /. log 2.0

let transform model nf =
  match model with
  | Constant -> 0.0
  | Sqrt_log -> sqrt (log2 (max nf 2.0))
  | Logarithmic -> log2 (max nf 1.0)
  | Exp_sqrt_log -> 2.0 ** sqrt (log2 (max nf 2.0))
  | Sqrt -> sqrt nf
  | Linear -> nf

type fit = {
  model : model;
  slope : float;
  intercept : float;
  rss : float;
  r2 : float;
}

let fit_model model points =
  let m = List.length points in
  if m < 2 then invalid_arg "Growth.fit_model: need at least 2 points";
  let xs = List.map (fun (n, _) -> transform model (float_of_int n)) points in
  let ys = List.map (fun (_, d) -> float_of_int d) points in
  let mf = float_of_int m in
  let sum = List.fold_left ( +. ) 0.0 in
  let sx = sum xs and sy = sum ys in
  let sxx = sum (List.map (fun x -> x *. x) xs) in
  let sxy = sum (List.map2 ( *. ) xs ys) in
  let denom = (mf *. sxx) -. (sx *. sx) in
  let slope, intercept =
    if abs_float denom < 1e-12 then (0.0, sy /. mf)
    else
      let a = ((mf *. sxy) -. (sx *. sy)) /. denom in
      (a, (sy -. (a *. sx)) /. mf)
  in
  let rss =
    sum
      (List.map2
         (fun x y ->
           let e = y -. ((slope *. x) +. intercept) in
           e *. e)
         xs ys)
  in
  let mean_y = sy /. mf in
  let tss = sum (List.map (fun y -> (y -. mean_y) ** 2.0) ys) in
  let r2 = if tss < 1e-12 then 1.0 else 1.0 -. (rss /. tss) in
  { model; slope; intercept; rss; r2 }

let best_fit points =
  let fits = List.map (fun m -> fit_model m points) all_models in
  (* Smallest RSS wins; a slower-growing model within 2% (relative,
     with an absolute epsilon for near-perfect fits) takes precedence
     because all_models is ordered slowest first. *)
  let best_rss =
    List.fold_left (fun acc f -> min acc f.rss) infinity fits
  in
  let tolerance = (best_rss *. 1.02) +. 1e-9 in
  List.find (fun f -> f.rss <= tolerance) fits

let pp_fit ppf f =
  Format.fprintf ppf "%s (slope=%.3f, intercept=%.3f, R2=%.4f)"
    (model_name f.model) f.slope f.intercept f.r2
