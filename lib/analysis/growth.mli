(** Growth-shape fitting.

    Table 1 states growth classes — [Theta(1)], [Theta(log n)],
    [Omega(sqrt(log n))], [Theta(n)], [2^O(sqrt(log n))] — so the
    benches need a way to say which shape a measured series follows.
    Each candidate model [d ~ a * f(n) + b] is fitted by least squares
    on the transformed axis [f(n)]; the winner is the model with the
    smallest residual sum of squares, with a tie-break toward the
    slower-growing model when fits are indistinguishable (within 2%),
    so constants aren't misclassified as logarithms on noisy data. *)

type model =
  | Constant        (** d ~ b *)
  | Sqrt_log        (** d ~ a sqrt(log2 n) + b *)
  | Logarithmic     (** d ~ a log2 n + b *)
  | Exp_sqrt_log    (** d ~ a 2^(sqrt(log2 n)) + b *)
  | Sqrt            (** d ~ a sqrt n + b *)
  | Linear          (** d ~ a n + b *)

val model_name : model -> string
val all_models : model list
(** In slowest-to-fastest growth order (the tie-break order). *)

type fit = {
  model : model;
  slope : float;
  intercept : float;
  rss : float;       (** residual sum of squares *)
  r2 : float;        (** coefficient of determination (1 = perfect) *)
}

val fit_model : model -> (int * int) list -> fit
(** Least-squares fit of one model to [(n, d)] points.
    @raise Invalid_argument with fewer than 2 points. *)

val best_fit : (int * int) list -> fit
(** The winning model over {!all_models}. *)

val pp_fit : Format.formatter -> fit -> unit
