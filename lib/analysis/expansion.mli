open Bbng_core
(** The expansion machinery behind Theorem 6.9.

    The proof of the [2^O(sqrt(log n))] SUM bound studies
    [f(k) = min_u |B_k(u)|], the size of the smallest ball of radius
    [k], and derives inequality (3):

      [f(4k) >= min ((n+1)/2, k * f(k) / (4 (p+q+1) log n))]

    for SUM equilibria, from which balls grow so fast that the diameter
    collapses to [2^O(sqrt(log n))].  This module computes the full
    ball-growth profile of any graph and checks a parameterized form of
    the inequality, so the experiments can watch the expansion argument
    hold on actual equilibria (and fail on non-equilibrium long paths,
    which is the whole point of the proof). *)

type profile = {
  radii : int array;       (** 0, 1, ..., ecc_max *)
  min_ball : int array;    (** [f(k)] = min over u of |B_k(u)| *)
  max_ball : int array;    (** max over u of |B_k(u)| — for context *)
}

val ball_profile : Bbng_graph.Undirected.t -> profile
(** [O(n (n + m))]: one BFS per vertex. *)

val f : profile -> int -> int
(** [f p k]: [min_ball] clamped to [n] beyond the last radius. *)

val inequality_3 : ?c:float -> Bbng_graph.Undirected.t -> bool
(** Checks [f(4k) >= min ((n+1)/2, k * f(k) / (c * log2 n))] for every
    [k >= 1] with [4k] at most the diameter.  [c] packages the proof's
    [4 (p + q + 1)] constant; default [8.0].  Vacuously true for graphs
    of diameter < 4. *)

val doubling_radius : Bbng_graph.Undirected.t -> int
(** Smallest [k] with [f(k) > n/2] (so any two balls of radius [k]
    intersect and the diameter is at most [2k]) — the quantity the
    last step of Theorem 6.9 bounds by [2^O(sqrt(log n))]. *)

val report : Strategy.t -> (int * int * int) list
(** [(k, f(k), max ball)] rows for the experiment tables. *)
