(* Robust location/scale statistics for noisy benchmark trajectories:
   the median ignores outlier runs entirely, and the MAD-derived sigma
   (1.4826 * MAD, consistent for a normal distribution) gives a spread
   estimate that one slow CI machine cannot inflate. *)

let median values =
  match values with
  | [] -> None
  | _ ->
      let a = Array.of_list values in
      Array.sort compare a;
      let n = Array.length a in
      Some
        (if n mod 2 = 1 then a.(n / 2)
         else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.)

let mad values =
  match median values with
  | None -> None
  | Some m -> median (List.map (fun v -> Float.abs (v -. m)) values)

type trend = Regressed | Improved | Steady

(* Significance gate: latest vs history median, flagged only past
   max(3 * 1.4826 * MAD, threshold_pct% of the median, floor).  The
   MAD term adapts to each bench's own run-to-run noise; the
   percentage term takes over when the history happens to be eerily
   stable (MAD 0 on identical entries), and the absolute floor keeps
   sub-100ns benches from flapping — same role as in bench --diff. *)
let classify ?(threshold_pct = 25.) ?(floor = 0.) ~history latest =
  match (median history, mad history) with
  | Some m, Some d ->
      let sigma = 1.4826 *. d in
      let gate =
        Float.max (3. *. sigma) (Float.max (threshold_pct *. Float.abs m /. 100.) floor)
      in
      let delta = latest -. m in
      if delta > gate then Some Regressed
      else if -.delta > gate then Some Improved
      else Some Steady
  | _ -> None

let sigma_score ~history latest =
  match (median history, mad history) with
  | Some m, Some d when d > 0. -> Some ((latest -. m) /. (1.4826 *. d))
  | _ -> None
