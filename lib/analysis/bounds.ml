open Bbng_core
module Digraph = Bbng_graph.Digraph
module Trees = Bbng_graph.Trees
module Connectivity = Bbng_graph.Connectivity
module Distances = Bbng_graph.Distances

let log2 x = log x /. log 2.0

let tree_sum_diameter_bound ~n =
  if n < 1 then invalid_arg "Bounds.tree_sum_diameter_bound: n < 1";
  int_of_float (floor (2.0 *. (log2 (float_of_int (n + 1)) +. 1.0)))

let sum_diameter_bound ?(c = 4.0) n =
  if n < 2 then 1
  else
    int_of_float (ceil (2.0 ** (c *. sqrt (log2 (float_of_int n)))))

let sqrt_log_lower_bound ~n =
  if n < 2 then 0 else int_of_float (floor (sqrt (log2 (float_of_int n))))

type fig3_report = {
  path : int list;
  attachment : int array;
  forward_arcs : int list;
  inequality_holds : bool;
  diameter : int;
}

let figure3_decomposition profile =
  let g = Strategy.underlying profile in
  let d = Strategy.realize profile in
  if not (Trees.is_tree g) then
    invalid_arg "Bounds.figure3_decomposition: realization is not a tree";
  let path = Trees.tree_diameter_path g in
  let arr = Array.of_list path in
  let len = Array.length arr in
  let count_dir forward =
    let c = ref 0 in
    for i = 0 to len - 2 do
      let u, v = if forward then (arr.(i), arr.(i + 1)) else (arr.(i + 1), arr.(i)) in
      if Digraph.mem_arc d u v then incr c
    done;
    !c
  in
  (* Orient the path so the majority of owned arcs points forward. *)
  let path =
    if count_dir true >= count_dir false then path else List.rev path
  in
  let arr = Array.of_list path in
  let attachment = Trees.path_attachment_sizes g path in
  let forward_arcs = ref [] in
  for i = len - 2 downto 0 do
    if Digraph.mem_arc d arr.(i) arr.(i + 1) then forward_arcs := i :: !forward_arcs
  done;
  let forward_arcs = !forward_arcs in
  (* Inequality (1): a(i+1) >= sum_{k >= i+2} a(k) for each forward arc
     v_i -> v_(i+1) whose swap target v_(i+2) exists. *)
  let suffix = Array.make (len + 1) 0 in
  for i = len - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) + attachment.(i)
  done;
  let inequality_holds =
    List.for_all
      (fun i -> i + 2 > len - 1 || attachment.(i + 1) >= suffix.(i + 2))
      forward_arcs
  in
  {
    path;
    attachment;
    forward_arcs;
    inequality_holds;
    diameter = len - 1;
  }

let tree_ball_radius g u =
  let n = Bbng_graph.Undirected.n g in
  let dist = Bbng_graph.Bfs.distances g u in
  let ecc =
    Array.fold_left (fun acc d -> if d >= 0 then max acc d else acc) 0 dist
  in
  (* the induced ball of radius r is acyclic iff (edges within) <
     (vertices within); count both incrementally *)
  let verts = Array.make (ecc + 1) 0 in
  Array.iter (fun d -> if d >= 0 then verts.(d) <- verts.(d) + 1) dist;
  let edges = Array.make (ecc + 1) 0 in
  Bbng_graph.Undirected.iter_edges
    (fun a b ->
      if dist.(a) >= 0 && dist.(b) >= 0 then begin
        let r = max dist.(a) dist.(b) in
        if r <= ecc then edges.(r) <- edges.(r) + 1
      end)
    g;
  let rec scan r vcum ecum =
    if r > ecc then ecc
    else begin
      let vcum = vcum + verts.(r) and ecum = ecum + edges.(r) in
      if ecum >= vcum then max 0 (r - 1) else scan (r + 1) vcum ecum
    end
  in
  ignore n;
  scan 0 0 0

let max_tree_ball_radius g =
  let best = ref 0 in
  for u = 0 to Bbng_graph.Undirected.n g - 1 do
    best := max !best (tree_ball_radius g u)
  done;
  !best

type connectivity_report = {
  min_budget : int;
  diameter_ : int;
  connectivity : int;
  theorem_7_2_ok : bool;
}

let check_theorem_7_2 profile =
  let g = Strategy.underlying profile in
  let min_budget = Budget.min_budget (Strategy.budgets profile) in
  let diameter_ =
    match Distances.diameter g with
    | Some d -> d
    | None -> Cost.cinf ~n:(Strategy.n profile)
  in
  let connectivity = Connectivity.vertex_connectivity g in
  {
    min_budget;
    diameter_;
    connectivity;
    theorem_7_2_ok = diameter_ < 4 || connectivity >= min_budget;
  }

type lemma_7_1_report = {
  cut : int list;
  eligible : int list;
  all_local_diameter_le_2 : bool;
}

let check_lemma_7_1 profile =
  let g = Strategy.underlying profile in
  match Connectivity.min_vertex_cut g with
  | None -> None
  | Some [] -> Some { cut = []; eligible = []; all_local_diameter_le_2 = true }
  | Some cut ->
      (* The lemma's hypothesis quantifies over a whole component A of
         G - C: EVERY vertex of A must be at distance 1 from C and have
         budget > |C|.  Only then does it conclude local diameter <= 2
         for all of A. *)
      let budgets = Strategy.budgets profile in
      let dist = Bbng_graph.Bfs.distances_from_set g cut in
      let without_cut = Bbng_graph.Undirected.remove_vertices g cut in
      let labelling = Bbng_graph.Components.components without_cut in
      let in_cut v = List.mem v cut in
      let csize = List.length cut in
      (* qualifying component ids: all members adjacent to C with
         budget > |C| (cut vertices are isolated in [without_cut] and
         form their own components; exclude them) *)
      let qualifies = Array.make labelling.Bbng_graph.Components.count true in
      Array.iteri
        (fun v id ->
          if id >= 0 then
            if in_cut v then qualifies.(id) <- false
            else if dist.(v) <> 1 || Budget.get budgets v <= csize then
              qualifies.(id) <- false)
        labelling.Bbng_graph.Components.label;
      let eligible = ref [] in
      for v = Strategy.n profile - 1 downto 0 do
        let id = labelling.Bbng_graph.Components.label.(v) in
        if (not (in_cut v)) && id >= 0 && qualifies.(id) then
          eligible := v :: !eligible
      done;
      let ok =
        List.for_all
          (fun v ->
            match Distances.eccentricity g v with
            | Some e -> e <= 2
            | None -> false)
          !eligible
      in
      Some { cut; eligible = !eligible; all_local_diameter_le_2 = ok }
