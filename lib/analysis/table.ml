type t = {
  headers : string list;
  width : int;
  mutable rows : string list list;  (* reversed *)
}

let make ~headers = { headers; width = List.length headers; rows = [] }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells, expected %d" (List.length row)
         t.width);
  t.rows <- row :: t.rows

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_bool b = if b then "yes" else "no"

let add_int_row t label ints = add_row t (label :: List.map cell_int ints)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths = Array.make t.width 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line cells = String.concat "  " (List.mapi pad cells) in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((line t.headers :: rule :: List.map line rows) @ [ "" ])

let to_string = render

let print ?out t =
  let ppf = match out with Some f -> f | None -> Format.std_formatter in
  Format.fprintf ppf "%s@." (render t)
