open Bbng_core
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Components = Bbng_graph.Components
module Cycles = Bbng_graph.Cycles
module Bfs = Bbng_graph.Bfs
module Isomorphism = Bbng_graph.Isomorphism

type anatomy = {
  connected : bool;
  cycles : int list list;
  cycle_len : int;
  has_brace : bool;
  max_dist_to_cycle : int;
  diameter : int;
}

let analyze profile =
  if not (Budget.is_unit (Strategy.budgets profile)) then
    invalid_arg "Structure.analyze: budgets are not all 1";
  let g = Strategy.realize profile in
  let u = Strategy.underlying profile in
  let connected = Components.is_connected u in
  let cycles = Cycles.functional_cycles g in
  let cycle_len, max_dist_to_cycle =
    match cycles with
    | [ c ] ->
        let dist = Cycles.distance_to_set u c in
        let far =
          Array.fold_left
            (fun acc d -> if d = Bfs.unreachable then acc else max acc d)
            0 dist
        in
        (List.length c, far)
    | _ -> (0, -1)
  in
  {
    connected;
    cycles;
    cycle_len;
    has_brace = Digraph.braces g <> [];
    max_dist_to_cycle;
    diameter = Cost.social_cost u;
  }

type violation = { clause : string }

let fail clause = Some { clause }

let check_sum_structure profile =
  let a = analyze profile in
  let n = Strategy.n profile in
  if n = 2 then None (* the brace is the unique (and stable) realization *)
  else if not a.connected then fail "connected"
  else if a.has_brace then fail "no brace"
  else if List.length a.cycles <> 1 then fail "unique cycle"
  else if a.cycle_len > 5 then fail "cycle length <= 5"
  else if a.max_dist_to_cycle > 1 then fail "every vertex within distance 1 of the cycle"
  else None

let check_max_structure profile =
  let a = analyze profile in
  if not a.connected then fail "connected"
  else if List.length a.cycles <> 1 then fail "unique cycle"
  else if a.cycle_len > 7 then fail "cycle length <= 7"
  else if a.max_dist_to_cycle > 2 then fail "every vertex within distance 2 of the cycle"
  else None

(* --- mergeable isomorphism-class accumulator --- *)

module Iso_acc = struct
  module Smap = Map.Make (String)

  type cls = { rep : Strategy.t; rep_key : string; count : int }

  type t = { buckets : cls list Smap.t; classes : int; total : int }

  let c_iso_tests = Bbng_obs.Counter.make "census.iso_tests"
  let c_iso_pruned = Bbng_obs.Counter.make "census.iso_pruned"

  let empty = { buckets = Smap.empty; classes = 0; total = 0 }

  (* Cheap label-invariant fingerprint: profiles in different buckets
     cannot be isomorphic, so the exact (exponential worst-case)
     digraph test only ever runs within a bucket — orbit pruning for
     the accumulator.  In/out-degree sequences, brace count and the
     underlying diameter are all preserved by relabeling. *)
  let fingerprint profile =
    let g = Strategy.realize profile in
    let n = Strategy.n profile in
    let indeg = Array.make n 0 in
    let outdeg = Array.make n 0 in
    for i = 0 to n - 1 do
      let s = Strategy.strategy profile i in
      outdeg.(i) <- Array.length s;
      Array.iter (fun j -> indeg.(j) <- indeg.(j) + 1) s
    done;
    Array.sort compare indeg;
    Array.sort compare outdeg;
    let b = Buffer.create 64 in
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b '|';
    Array.iter
      (fun d ->
        Buffer.add_string b (string_of_int d);
        Buffer.add_char b ',')
      indeg;
    Buffer.add_char b '|';
    Array.iter
      (fun d ->
        Buffer.add_string b (string_of_int d);
        Buffer.add_char b ',')
      outdeg;
    Buffer.add_char b '|';
    Buffer.add_string b (string_of_int (List.length (Digraph.braces g)));
    Buffer.add_char b '|';
    Buffer.add_string b (string_of_int (Cost.social_cost (Strategy.underlying profile)));
    Buffer.contents b

  (* Deterministic representative: the class keeps its lexicographically
     smallest member seen (by serialization), so the final class list is
     independent of scan partitioning and merge order — the property the
     census's byte-identical-resume contract rests on. *)
  let min_rep a b = if a.rep_key <= b.rep_key then a else b

  let add_weighted acc profile weight =
    let fp = fingerprint profile in
    let bucket = Option.value ~default:[] (Smap.find_opt fp acc.buckets) in
    if bucket = [] then Bbng_obs.Counter.bump c_iso_pruned;
    let g = Strategy.realize profile in
    let rec place seen = function
      | [] ->
          let cls =
            { rep = profile; rep_key = Strategy.to_string profile; count = weight }
          in
          (List.rev (cls :: seen), true)
      | c :: rest ->
          Bbng_obs.Counter.bump c_iso_tests;
          if Isomorphism.digraph_isomorphic (Strategy.realize c.rep) g then
            let merged =
              {
                (min_rep c
                   {
                     rep = profile;
                     rep_key = Strategy.to_string profile;
                     count = 0;
                   })
                with
                count = c.count + weight;
              }
            in
            (List.rev_append seen (merged :: rest), false)
          else place (c :: seen) rest
    in
    let bucket, fresh = place [] bucket in
    {
      buckets = Smap.add fp bucket acc.buckets;
      classes = (acc.classes + if fresh then 1 else 0);
      total = acc.total + weight;
    }

  let add acc profile = add_weighted acc profile 1

  let add_class acc ~rep ~count = add_weighted acc rep count

  let merge a b =
    Smap.fold
      (fun _ bucket acc ->
        List.fold_left
          (fun acc c -> add_weighted acc c.rep c.count)
          acc bucket)
      b.buckets a

  let classes acc =
    Smap.fold (fun _ bucket l -> List.rev_append bucket l) acc.buckets []
    |> List.sort (fun a b -> compare a.rep_key b.rep_key)
    |> List.map (fun c -> (c.rep, c.count))

  let class_count acc = acc.classes
  let total acc = acc.total
end

let pp_anatomy ppf a =
  Format.fprintf ppf
    "@[connected=%b cycles=%d cycle_len=%d brace=%b fringe_depth=%d diameter=%d@]"
    a.connected (List.length a.cycles) a.cycle_len a.has_brace
    a.max_dist_to_cycle a.diameter
