open Bbng_core
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Components = Bbng_graph.Components
module Cycles = Bbng_graph.Cycles
module Bfs = Bbng_graph.Bfs

type anatomy = {
  connected : bool;
  cycles : int list list;
  cycle_len : int;
  has_brace : bool;
  max_dist_to_cycle : int;
  diameter : int;
}

let analyze profile =
  if not (Budget.is_unit (Strategy.budgets profile)) then
    invalid_arg "Structure.analyze: budgets are not all 1";
  let g = Strategy.realize profile in
  let u = Strategy.underlying profile in
  let connected = Components.is_connected u in
  let cycles = Cycles.functional_cycles g in
  let cycle_len, max_dist_to_cycle =
    match cycles with
    | [ c ] ->
        let dist = Cycles.distance_to_set u c in
        let far =
          Array.fold_left
            (fun acc d -> if d = Bfs.unreachable then acc else max acc d)
            0 dist
        in
        (List.length c, far)
    | _ -> (0, -1)
  in
  {
    connected;
    cycles;
    cycle_len;
    has_brace = Digraph.braces g <> [];
    max_dist_to_cycle;
    diameter = Cost.social_cost u;
  }

type violation = { clause : string }

let fail clause = Some { clause }

let check_sum_structure profile =
  let a = analyze profile in
  let n = Strategy.n profile in
  if n = 2 then None (* the brace is the unique (and stable) realization *)
  else if not a.connected then fail "connected"
  else if a.has_brace then fail "no brace"
  else if List.length a.cycles <> 1 then fail "unique cycle"
  else if a.cycle_len > 5 then fail "cycle length <= 5"
  else if a.max_dist_to_cycle > 1 then fail "every vertex within distance 1 of the cycle"
  else None

let check_max_structure profile =
  let a = analyze profile in
  if not a.connected then fail "connected"
  else if List.length a.cycles <> 1 then fail "unique cycle"
  else if a.cycle_len > 7 then fail "cycle length <= 7"
  else if a.max_dist_to_cycle > 2 then fail "every vertex within distance 2 of the cycle"
  else None

let pp_anatomy ppf a =
  Format.fprintf ppf
    "@[connected=%b cycles=%d cycle_len=%d brace=%b fringe_depth=%d diameter=%d@]"
    a.connected (List.length a.cycles) a.cycle_len a.has_brace
    a.max_dist_to_cycle a.diameter
