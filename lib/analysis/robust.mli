(** Robust statistics for trend gating over recorded bench runs.

    [bench --trend] compares the latest run of each benchmark against
    the median of its recorded history, with a spread estimated by the
    median absolute deviation (MAD): both are insensitive to the odd
    outlier run that a mean/stddev gate would either absorb into the
    baseline or false-positive on. *)

val median : float list -> float option
(** Sample median ([None] on an empty list; mean of the middle pair on
    even lengths). *)

val mad : float list -> float option
(** Median absolute deviation from the median.  [1.4826 *. mad] is a
    robust stand-in for the standard deviation. *)

type trend = Regressed | Improved | Steady

val classify :
  ?threshold_pct:float -> ?floor:float -> history:float list -> float -> trend option
(** [classify ~history latest] flags [latest] against the history's
    median when it falls outside
    [max (3 * 1.4826 * mad) (threshold_pct%% of median) floor] —
    the MAD term adapts to per-bench noise, the percentage (default
    25, matching [bench --diff]) covers MAD-0 histories, and the
    absolute [floor] (default 0) silences sub-noise benches.  [None]
    when the history is empty. *)

val sigma_score : history:float list -> float -> float option
(** [(latest - median) / (1.4826 * mad)] — how many robust standard
    deviations the latest run sits from its history ([None] when the
    MAD is zero or the history empty). *)
