(** Artifact envelope for on-disk audit evidence.

    An {e artifact} is a single-line JSON object with a self-describing
    header — [kind] (a reverse-dotted name such as
    ["bbng.equilibrium-certificate"]) and [format] (an integer schema
    version) — followed by producer-specific body fields plus the
    standard provenance stamp ([argv], [ocaml_version], [word_size])
    from {!Stats.provenance_fields}.

    The envelope is deliberately dumb: it knows how to frame, persist
    and re-read artifacts, and how to refuse ones written by a newer
    format, but the semantic payload (what an equilibrium certificate
    {e means}) lives with its producer, which also owns the independent
    re-checking logic.  This mirrors the proof-search / proof-checking
    split: the expensive computation writes evidence once, any later
    process can re-validate it cheaply. *)

type t = {
  kind : string;
  format : int;
  body : (string * Json.t) list;  (** payload + provenance, order kept *)
}

val format_version : int

val make : kind:string -> (string * Json.t) list -> t
(** Frame a body, appending the provenance stamp of the producing
    process. *)

val field : string -> t -> Json.t option

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Rejects non-objects, missing headers, and artifacts written by a
    {e newer} format than this binary understands.  Older formats are
    accepted (the reader is responsible for defaulting absent
    fields). *)

val write : string -> t -> unit
(** One line of JSON plus a trailing newline, written crash-safely
    through {!Atomic_io.write_file}: an interrupted write never
    corrupts an existing artifact at the same path. *)

val read : string -> (t, string) result
(** Read and parse a file written by {!write}; all failure modes
    (unreadable file, malformed JSON, bad header) come back as
    [Error]. *)
