(** Append-only run index ("the ledger"): one digest-stamped JSONL row
    per run, so campaigns of many runs stay queryable after the fact
    ([bbng_cli runs list/show/diff/gc/rebuild]).

    Producing side — a process-global pending row.  A front end (the
    CLI, the bench harness) calls {!set_context} once; instrumented
    layers then fill the row in as the run unfolds ({!add_metric},
    {!note_outcome}, and every {!Atomic_io} commit auto-registers its
    artifact path), and a single {!append_current} at exit writes the
    row through {!Atomic_io.append_line}.  The append is the {e last}
    at-exit action, after the report stream commits, so the row can
    carry the committed report's digest.

    Durability contract: appends are single [O_APPEND] lines, so a
    crash tears at most the trailing line; readers ({!load}) skip torn
    or alien lines, and {!rebuild} re-derives lost rows from the report
    artifacts themselves — a lost or torn index is never fatal.

    The ledger lives at [BBNG_ledger.jsonl] in the working directory;
    the [BBNG_LEDGER] environment variable overrides the path, and the
    values ["off"], ["none"], ["0"] or the empty string disable it. *)

val env_var : string
val default_file : string

val resolve_file : unit -> string option
(** Ledger path per the [BBNG_LEDGER] contract above; [None] when
    disabled. *)

(** {1 Rows} *)

type row = {
  run_id : string;
  ts : string;  (** UTC, [YYYY-MM-DDThh:mm:ssZ] — sorts lexicographically *)
  tool : string;  (** ["bbng_cli"], ["bench"], ["recovered"] *)
  subcommand : string;
  argv : string list;
  outcome : string;
      (** "ok" / "error" / a domain verdict ("converged", "equilibrium", …) *)
  exit_code : int;  (** [-1] = unknown (recovered from a dead run) *)
  metrics : (string * Json.t) list;
      (** game/bench figures; numeric ones are what [runs diff] gates *)
  counters : (string * int) list;  (** nonzero observability counters *)
  artifacts : string list;  (** every Atomic_io-committed path *)
  report : string option;  (** the [--report] stream, as found on disk *)
  report_digest : string option;  (** MD5 hex of [report]'s bytes *)
  extra : (string * Json.t) list;
      (** fields this binary does not know — preserved verbatim on
          rewrite, so newer schemas survive older binaries *)
}

val row_to_json : row -> Json.t
(** Single-line object, [extra] fields appended verbatim. *)

val row_of_json : Json.t -> row option
(** Tolerant inverse: anything that is an object with a string
    [run_id] is a row; known keys of unexpected shape and unknown keys
    land in [extra].  [None] (never an exception) otherwise. *)

val numeric_metrics : row -> (string * float) list
(** The [Int]/[Float] metrics, for threshold comparison. *)

val artifact_live : string -> bool
(** Whether an artifact reference still points at something on disk:
    the committed [path] {e or} its resumable [path.partial] sibling
    (a census checkpoint, an interrupted recording).  [runs gc] prunes
    a reference only when both are gone. *)

val load : ?file:string -> unit -> row list * int
(** Rows in file order plus the count of skipped (torn/alien) lines.
    A missing file is an empty ledger, not an error. *)

val append_row : ?file:string -> row -> unit
(** Append one row via {!Atomic_io.append_line}.  IO errors are
    swallowed: the ledger is telemetry, it must never fail the run. *)

(** {1 The current run's pending row} *)

val run_id : unit -> string
(** This process's run id (generated once, on first use); also stamped
    into [run.summary] by {!Stats.summary_fields} so a report stream
    joins back to its ledger row. *)

val set_context : tool:string -> subcommand:string -> unit
(** Enable the pending row and install the {!Atomic_io.set_commit_hook}
    that inventories committed artifacts.  Front ends that should not
    index themselves (read-only viewers) simply never call this. *)

val note_report : string -> unit
(** Record the run's [--report] path (["-"] is ignored); at append
    time the row digests whichever of [path] / [path.partial] exists. *)

val note_artifact : string -> unit
(** Add a committed artifact path (deduplicated, order-preserving);
    normally called via the {!Atomic_io} commit hook. *)

val note_outcome : string -> unit
(** Set the domain outcome (last call wins).  Unset rows default to
    ["ok"] / ["error"] by exit code. *)

val note_exit : int -> unit
val add_metric : string -> Json.t -> unit

val disable : unit -> unit
(** Drop the pending row (used when a viewer subcommand is detected
    after {!set_context}). *)

val append_current : unit -> unit
(** Append the pending row (at most once; no-op when disabled or when
    {!resolve_file} says off).  Registered with [at_exit] by front
    ends, {e before} cmdliner evaluation so LIFO ordering runs it after
    the report stream commits. *)

(** {1 Rebuild from artifacts} *)

val of_report_events : path:string -> Json.t list -> row
(** Re-derive a row from a recorded event stream: run id from
    [run.summary] (digest-derived for pre-ledger recordings), outcome
    and game metrics from the last [dynamics.outcome], timestamp from
    the file's mtime. *)

val rebuild : ?file:string -> dirs:string list -> unit -> int * int * int
(** [rebuild ~dirs ()] scans [dirs] (non-recursive) for [*.jsonl] /
    [*.jsonl.partial] event streams, merges recovered rows with the
    parseable rows already in the ledger (existing [run_id]s win),
    sorts by timestamp and atomically rewrites the ledger.  Returns
    [(kept_existing, recovered, dropped_torn_lines)]. *)
