(** Cooperative cancellation: wall-clock deadlines, work budgets and
    explicit cancel, threaded through the engine's unbounded searches.

    Best response in a [(b1,...,bn)-BG] is NP-hard (Theorem 2.1), so
    the exact paths in [Best_response], [Equilibrium.certify*] and the
    [lib/solvers] enumerations have no a-priori runtime bound.  A
    {e token} gives them one: hot loops call {!checkpoint} at candidate
    granularity; when the token expires the checkpoint raises
    {!Expired}, and the search boundary catches it and returns a typed
    degraded outcome instead of hanging or crashing (see
    [Best_response.Degraded_scan], [Dynamics.Interrupted],
    {!type:outcome}).

    Tokens are safe to share across {!Bbng_core.Parallel} domains: all
    state is atomic, and the first expiry observation latches so every
    domain sees the same verdict.  Work is counted in {e vertex-visit}
    units (one BFS pops roughly [n] of them), so limits are comparable
    across the evaluators.  The shared {!unlimited} token makes all
    budget parameters optional at zero cost: its checkpoints reduce to
    one boolean load. *)

exception Expired
(** Raised by {!checkpoint} on an expired token.  Internal control
    flow: public search APIs catch it at the search boundary and
    return typed [Degraded]/[Exhausted]/[Interrupted] results — it
    should only escape through code that opted into a token and is
    documented to let it through. *)

type why = Deadline | Work_limit | Cancelled

val why_name : why -> string
(** ["deadline"] / ["work-limit"] / ["cancelled"]. *)

type t

val unlimited : t
(** The shared never-expiring token (the default everywhere). *)

val create : ?deadline_ms:float -> ?work_limit:int -> unit -> t
(** A fresh token expiring [deadline_ms] from now and/or after
    [work_limit] units of {!spend}; omitting both yields a token that
    only {!cancel} can expire. *)

val cancel : t -> unit
(** Explicit cancellation; idempotent, takes effect at the next
    {!expired}/{!checkpoint}.  Cancelling {!unlimited} is a no-op. *)

val expired : t -> bool
(** Whether the token has expired (cancelled, over its work limit, or
    past its deadline).  The first [true] latches: later calls are one
    atomic load, and {!why} reports the recorded cause. *)

val why : t -> why option
(** Cause of expiry, once {!expired} has observed it. *)

val spend : t -> int -> unit
(** Charge work units (no expiry check; free on {!unlimited}). *)

val checkpoint : ?cost:int -> t -> unit
(** [checkpoint ~cost t] charges [cost] (default 0) and raises
    {!Expired} if the token has expired.  This is the one call hot
    loops make. *)

val guard : t -> (unit -> 'a) -> 'a option
(** [guard t f] is [Some (f ())], or [None] if the token was already
    expired or [f] raised {!Expired}. *)

val is_unlimited : t -> bool
val work_done : t -> int

val deadline_ms_remaining : t -> float option
(** Milliseconds of wall clock left before the deadline trips (clamped
    at 0); [None] when the token has no deadline.  Telemetry only — an
    un-expired token may still trip between this read and the next
    checkpoint. *)

val work_remaining : t -> int option
(** Work units left under the work limit (clamped at 0); [None] when
    the token has no work limit. *)

(** {1 Typed budgeted-search outcomes} *)

type 'a outcome =
  | Complete of 'a   (** the search finished *)
  | Degraded of 'a   (** expired mid-search: best answer found so far *)
  | Exhausted        (** expired before evaluating anything *)

val outcome_name : 'a outcome -> string
(** ["complete"] / ["degraded"] / ["exhausted"]. *)

val outcome_value : 'a outcome -> 'a option
