(* Live metrics registry: named counters / gauges / histograms that are
   snapshotable at any instant, with per-domain shards so Parallel
   workers record without bouncing one cache line between domains.

   A sharded counter is [shards] independent atomic cells; a writer
   touches only the cell indexed by its domain id, and a snapshot sums
   the cells.  The sum is exact once writers have quiesced (domains
   joined) and momentarily racy while they run — the standard
   Prometheus-style contract: every recorded increment lands in some
   scrape, no increment is ever lost. *)

let shards = 8 (* power of two: shard index is a mask of the domain id *)

let shard_index () = (Domain.self () :> int) land (shards - 1)

type counter = { c_name : string; c_help : string; c_cells : int Atomic.t array }

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  g_cell : float Atomic.t;
}

type histogram = { h_name : string; h_help : string; h_shards : Histogram.t array }

type registry = {
  mutable counters : counter list;
  mutable gauges : gauge list;
  mutable histograms : histogram list;
}

let registry = { counters = []; gauges = []; histograms = [] }
let registry_mutex = Mutex.create ()

(* make-functions are find-or-create by name (and, for gauges, by label
   set), like Counter.make — so library modules can declare their
   metrics at top level without coordinating *)

let counter ?(help = "") name =
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt (fun c -> c.c_name = name) registry.counters with
      | Some c -> c
      | None ->
          let c =
            {
              c_name = name;
              c_help = help;
              c_cells = Array.init shards (fun _ -> Atomic.make 0);
            }
          in
          registry.counters <- c :: registry.counters;
          c)

let incr c = ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) 1)
let add c k = ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) k)

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let counter_shard_values c = Array.map Atomic.get c.c_cells

let gauge ?(help = "") ?(labels = []) name =
  Mutex.protect registry_mutex (fun () ->
      match
        List.find_opt
          (fun g -> g.g_name = name && g.g_labels = labels)
          registry.gauges
      with
      | Some g -> g
      | None ->
          let g =
            { g_name = name; g_help = help; g_labels = labels;
              g_cell = Atomic.make 0. }
          in
          registry.gauges <- g :: registry.gauges;
          g)

let set g v = Atomic.set g.g_cell v
let set_int g v = Atomic.set g.g_cell (float_of_int v)
let gauge_value g = Atomic.get g.g_cell

let histogram ?(help = "") name =
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt (fun h -> h.h_name = name) registry.histograms with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_help = help;
              (* unregistered shards: the legacy Histogram registry
                 (run.summary's [histograms] object) must not list each
                 shard as a separate distribution *)
              h_shards =
                Array.init shards (fun i ->
                    Histogram.unregistered (Printf.sprintf "%s.shard%d" name i));
            }
          in
          registry.histograms <- h :: registry.histograms;
          h)

let observe h v = Histogram.record h.h_shards.(shard_index ()) v

(* --- aggregated snapshots --- *)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : int array; (* per-bucket counts, Histogram.bucket_bounds order *)
}

let histogram_snapshot h =
  let shards = Array.to_list h.h_shards in
  {
    hs_count = List.fold_left (fun acc s -> acc + Histogram.count s) 0 shards;
    hs_sum = List.fold_left (fun acc s -> acc + Histogram.total s) 0 shards;
    hs_buckets = Histogram.merge_counts shards;
  }

type snapshot = {
  counters : (string * string * int) list;
  gauges : (string * string * (string * string) list * float) list;
  histograms : (string * string * histogram_snapshot) list;
}

let snapshot () =
  let counters, gauges, histograms =
    Mutex.protect registry_mutex (fun () ->
        (registry.counters, registry.gauges, registry.histograms))
  in
  {
    counters =
      List.sort compare
        (List.map (fun c -> (c.c_name, c.c_help, counter_value c)) counters);
    gauges =
      List.sort compare
        (List.map (fun g -> (g.g_name, g.g_help, g.g_labels, gauge_value g))
           gauges);
    histograms =
      List.sort
        (fun (a, _, _) (b, _, _) -> compare a b)
        (List.map (fun h -> (h.h_name, h.h_help, histogram_snapshot h))
           histograms);
  }

let to_json () =
  let s = snapshot () in
  Json.Obj
    (List.map (fun (name, _, v) -> (name, Json.Int v)) s.counters
    @ List.map
        (fun (name, _, labels, v) ->
          let name =
            match labels with
            | [] -> name
            | l ->
                name ^ "{"
                ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
                ^ "}"
          in
          (name, Json.Float v))
        s.gauges
    @ List.map
        (fun (name, _, hs) ->
          ( name,
            Json.Obj
              [ ("count", Json.Int hs.hs_count); ("sum", Json.Int hs.hs_sum) ]
          ))
        s.histograms)

let reset_for_tests () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells)
        registry.counters;
      List.iter (fun g -> Atomic.set g.g_cell 0.) registry.gauges;
      List.iter
        (fun h -> Array.iter Histogram.reset h.h_shards)
        registry.histograms)
