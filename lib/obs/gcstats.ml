type snapshot = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

let capture () =
  let s = Gc.quick_stat () in
  {
    (* quick_stat's minor_words excludes the current domain's
       not-yet-sampled allocation on OCaml 5; Gc.minor_words () is the
       precise counter and costs a single runtime read *)
    minor_words = Gc.minor_words ();
    major_words = s.Gc.major_words;
    promoted_words = s.Gc.promoted_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    heap_words = s.Gc.heap_words;
  }

(* process baseline, captured when the library is initialized *)
let start = capture ()

type delta = snapshot

let diff a b =
  {
    minor_words = b.minor_words -. a.minor_words;
    major_words = b.major_words -. a.major_words;
    promoted_words = b.promoted_words -. a.promoted_words;
    minor_collections = b.minor_collections - a.minor_collections;
    major_collections = b.major_collections - a.major_collections;
    (* heap_words is a level, not a counter: report the current level *)
    heap_words = b.heap_words;
  }

let since before = diff before (capture ())
let since_start () = since start

let to_fields d =
  [
    ("minor_words", Json.Float d.minor_words);
    ("major_words", Json.Float d.major_words);
    ("promoted_words", Json.Float d.promoted_words);
    ("minor_collections", Json.Int d.minor_collections);
    ("major_collections", Json.Int d.major_collections);
    ("heap_words", Json.Int d.heap_words);
  ]

let to_json d = Json.Obj (to_fields d)

(* 1234567. -> "1.2M" — the --stats line is for eyeballs, the JSON
   carries the exact figures *)
let human w =
  let aw = Float.abs w in
  if aw >= 1e9 then Printf.sprintf "%.1fG" (w /. 1e9)
  else if aw >= 1e6 then Printf.sprintf "%.1fM" (w /. 1e6)
  else if aw >= 1e3 then Printf.sprintf "%.1fk" (w /. 1e3)
  else Printf.sprintf "%.0f" w

let pp_line oc d =
  Printf.fprintf oc
    "gc: minor %s words (%d collections), major %s words (%d), promoted %s, heap %s words\n"
    (human d.minor_words) d.minor_collections (human d.major_words)
    d.major_collections (human d.promoted_words)
    (human (float_of_int d.heap_words))
