let ok = 0
let failure = 1
let input_error = 2
let exhausted = 3
let io_error = 4
let fault = 5
let cli_error = 124
let internal_error = 125

let describe = function
  | 0 -> "success"
  | 1 -> "domain failure (refuted certificate, failed re-check, divergent replay)"
  | 2 -> "malformed input (graph file, profile, JSON artifact)"
  | 3 -> "deadline or work budget exhausted before a usable result"
  | 4 -> "filesystem error"
  | 5 -> "injected fault fired"
  | 124 -> "command-line usage error"
  | 125 -> "internal error"
  | 137 -> "killed (SIGKILL; e.g. an injected kill fault)"
  | c -> Printf.sprintf "unknown exit code %d" c

let all_documented = [ 0; 1; 2; 3; 4; 5; 124; 125; 137 ]

let of_exn = function
  | Invalid_argument msg -> Some (input_error, msg)
  | Json.Parse_error msg ->
      Some (input_error, Printf.sprintf "malformed JSON: %s" msg)
  | Sys_error msg -> Some (io_error, msg)
  | Budgeted.Expired ->
      Some (exhausted, "deadline or work budget exhausted")
  | Fault.Injected point ->
      Some (fault, Printf.sprintf "injected fault fired at %s" point)
  | _ -> None
