(* The parsing/rendering half of `bbng_cli top`: tail a (possibly still
   growing, possibly mid-write) --report JSONL stream and fold it into
   a small live state a terminal frame renders from.

   The reader is deliberately prefix-tolerant: it only consumes
   complete lines (a trailing half-written line stays buffered until
   its newline arrives), and any line that does not parse as an event
   object is counted, not fatal — tailing a file that a crashed writer
   tore mid-byte must never crash the viewer too. *)

type state = {
  tally : (string, int) Hashtbl.t;
  mutable events : int;
  mutable skipped : int;
  mutable first_ts_us : float option;
  mutable last_ts_us : float option;
  mutable last_event : string option;
  mutable last_heartbeat : Json.t option;
  mutable heartbeats : int;
  mutable last_step : Json.t option;
  mutable dynamics_start : Json.t option;
  mutable last_diagnosis : Json.t option;
  mutable last_outcome : Json.t option;
  mutable summary : Json.t option;
  (* live latency distributions rebuilt from the span events we tail —
     quantiles without waiting for the final run.summary *)
  spans : (string, Histogram.t) Hashtbl.t;
}

let create_state () =
  {
    tally = Hashtbl.create 16;
    events = 0;
    skipped = 0;
    first_ts_us = None;
    last_ts_us = None;
    last_event = None;
    last_heartbeat = None;
    heartbeats = 0;
    last_step = None;
    dynamics_start = None;
    last_diagnosis = None;
    last_outcome = None;
    summary = None;
    spans = Hashtbl.create 16;
  }

let num_field k j =
  match Json.member k j with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let feed_event st j =
  let name =
    match Json.member "event" j with Some (Json.Str s) -> s | _ -> "?"
  in
  st.events <- st.events + 1;
  st.last_event <- Some name;
  Hashtbl.replace st.tally name
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.tally name));
  (match num_field "ts_us" j with
  | Some ts ->
      if st.first_ts_us = None then st.first_ts_us <- Some ts;
      st.last_ts_us <- Some ts
  | None -> ());
  match name with
  | "progress.heartbeat" ->
      st.last_heartbeat <- Some j;
      st.heartbeats <- st.heartbeats + 1
  | "dynamics.step" -> st.last_step <- Some j
  | "dynamics.start" ->
      st.dynamics_start <- Some j;
      (* a new run opens: the previous outcome is history *)
      st.last_outcome <- None;
      st.last_diagnosis <- None
  | "dynamics.diagnosis" -> st.last_diagnosis <- Some j
  | "dynamics.outcome" -> st.last_outcome <- Some j
  | "run.summary" -> st.summary <- Some j
  | "span" -> (
      match (str_field "name" j, num_field "dur_us" j) with
      | Some span_name, Some dur ->
          let h =
            match Hashtbl.find_opt st.spans span_name with
            | Some h -> h
            | None ->
                let h = Histogram.unregistered span_name in
                Hashtbl.add st.spans span_name h;
                h
          in
          Histogram.record h (int_of_float dur)
      | _ -> ())
  | _ -> ()

(* one complete line; never raises *)
let feed_line st line =
  if String.trim line <> "" then
    match Json.of_string line with
    | Json.Obj _ as j when Json.member "event" j <> None -> feed_event st j
    | _ -> st.skipped <- st.skipped + 1
    | exception Json.Parse_error _ -> st.skipped <- st.skipped + 1

let events st = st.events
let skipped st = st.skipped
let heartbeats st = st.heartbeats
let finished st = st.summary <> None

(* --- incremental tail over a growing file --- *)

type tail = {
  mutable path : string;
  mutable offset : int;
  pending : Buffer.t;
}

let open_tail path = { path; offset = 0; pending = Buffer.create 256 }

let retarget tail path =
  (* Atomic_io's commit renames FILE.partial over FILE: the bytes are
     identical, so the read offset survives the switch *)
  tail.path <- path

let poll tail st =
  match open_in_bin tail.path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          if size < tail.offset then begin
            (* the file shrank: a fresh run replaced it; start over *)
            tail.offset <- 0;
            Buffer.clear tail.pending
          end;
          seek_in ic tail.offset;
          let chunk = really_input_string ic (size - tail.offset) in
          tail.offset <- size;
          Buffer.add_string tail.pending chunk;
          let data = Buffer.contents tail.pending in
          Buffer.clear tail.pending;
          (* consume complete lines; keep the half-written remainder *)
          let fed = ref 0 in
          let start = ref 0 in
          String.iteri
            (fun i c ->
              if c = '\n' then begin
                feed_line st (String.sub data !start (i - !start));
                incr fed;
                start := i + 1
              end)
            data;
          Buffer.add_substring tail.pending data !start
            (String.length data - !start);
          !fed)

(* --- frame rendering --- *)

let fmt_rate r =
  if r >= 100. then Printf.sprintf "%.0f/s" r
  else if r >= 1. then Printf.sprintf "%.1f/s" r
  else Printf.sprintf "%.3f/s" r

let fmt_eta s =
  if s >= 3600. then Printf.sprintf "%.1fh" (s /. 3600.)
  else if s >= 60. then Printf.sprintf "%.1fm" (s /. 60.)
  else Printf.sprintf "%.1fs" s

let heartbeat_line j =
  let b = Buffer.create 80 in
  Buffer.add_string b
    (Printf.sprintf "heartbeat: %s %s"
       (Option.value ~default:"?" (str_field "task" j))
       (match num_field "done" j with
       | Some d -> Printf.sprintf "%.0f" d
       | None -> "?"));
  (match (num_field "total" j, num_field "pct" j) with
  | Some t, Some pct -> Buffer.add_string b (Printf.sprintf "/%.0f (%.1f%%)" t pct)
  | _ -> ());
  (match num_field "rate_per_s" j with
  | Some r -> Buffer.add_string b (" · " ^ fmt_rate r)
  | None -> ());
  (match num_field "eta_s" j with
  | Some s -> Buffer.add_string b (" · eta " ^ fmt_eta s)
  | None -> ());
  (match num_field "deadline_ms_left" j with
  | Some ms -> Buffer.add_string b (Printf.sprintf " · deadline %s left" (fmt_eta (ms /. 1e3)))
  | None -> ());
  (match num_field "work_left" j with
  | Some w -> Buffer.add_string b (Printf.sprintf " · work %.0f left" w)
  | None -> ());
  Buffer.contents b

let top_counters ?(limit = 8) st =
  let from_obj = function
    | Some j -> (
        match Json.member "counters" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (function
                | k, Json.Int v when v <> 0 -> Some (k, v) | _ -> None)
              fields
        | _ -> [])
    | None -> []
  in
  let counters =
    match from_obj st.last_heartbeat with
    | [] -> from_obj st.summary
    | l -> l
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) counters in
  List.filteri (fun i _ -> i < limit) sorted

let render ?(width = 72) st ~source =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let finished = st.summary <> None in
  line "bbng top — %s%s" source (if finished then " (complete)" else " (live)");
  let recorded =
    match (st.first_ts_us, st.last_ts_us) with
    | Some lo, Some hi when hi >= lo -> Printf.sprintf " · recorded %.1fs" ((hi -. lo) /. 1e6)
    | _ -> ""
  in
  line "events %d%s%s · last: %s" st.events
    (if st.skipped > 0 then Printf.sprintf " (%d unparsed)" st.skipped else "")
    recorded
    (Option.value ~default:"-" st.last_event);
  (match st.dynamics_start with
  | Some j ->
      line "run: dynamics rule=%s schedule=%s players=%s"
        (Option.value ~default:"?" (str_field "rule" j))
        (Option.value ~default:"?" (str_field "schedule" j))
        (match num_field "players" j with
        | Some n -> Printf.sprintf "%.0f" n
        | None -> "?")
  | None -> ());
  (match st.last_step with
  | Some j ->
      line "step: #%s player %s social_cost %s"
        (match num_field "step" j with Some s -> Printf.sprintf "%.0f" s | None -> "?")
        (match num_field "player" j with Some p -> Printf.sprintf "%.0f" p | None -> "?")
        (match num_field "social_cost" j with Some c -> Printf.sprintf "%.0f" c | None -> "?")
  | None -> ());
  (* the convergence detector's verdict: the latest dynamics.diagnosis
     event, else the heartbeat annotation that carries it between
     windows *)
  (match st.last_diagnosis with
  | Some j ->
      line "diagnosis: %s%s%s%s"
        (Option.value ~default:"?" (str_field "state" j))
        (match num_field "step" j with
        | Some s -> Printf.sprintf " at step %.0f" s
        | None -> "")
        (match num_field "net_social_cost" j with
        | Some d -> Printf.sprintf " · net social cost %+.0f" d
        | None -> "")
        (match num_field "decay_pct" j with
        | Some p -> Printf.sprintf " · improvement at %.0f%% of first window" p
        | None -> "")
  | None -> (
      match Option.bind st.last_heartbeat (str_field "diagnosis") with
      | Some s -> line "diagnosis: %s" s
      | None -> ()));
  (match st.last_heartbeat with
  | Some j -> line "%s" (heartbeat_line j)
  | None -> line "heartbeat: (none yet)");
  (match st.last_outcome with
  | Some j ->
      line "outcome: %s after %s steps"
        (Option.value ~default:"?" (str_field "outcome" j))
        (match num_field "steps" j with Some s -> Printf.sprintf "%.0f" s | None -> "?")
  | None -> ());
  (match top_counters st with
  | [] -> ()
  | counters ->
      line "counters:";
      let w =
        List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 counters
      in
      List.iter
        (fun (k, v) -> line "  %-*s %d" (min w (width - 16)) k v)
        counters);
  let spans =
    List.sort
      (fun (_, a) (_, b) -> compare (Histogram.total b) (Histogram.total a))
      (Hashtbl.fold (fun k h acc -> (k, h) :: acc) st.spans [])
  in
  (match spans with
  | [] -> ()
  | spans ->
      line "spans (count / p50 ms / p99 ms):";
      let w =
        List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 spans
      in
      List.iteri
        (fun i (k, h) ->
          if i < 6 then
            line "  %-*s %d / %.3f / %.3f" (min w (width - 16)) k
              (Histogram.count h)
              (Histogram.quantile h 0.5 /. 1e3)
              (Histogram.quantile h 0.99 /. 1e3))
        spans);
  if finished then line "(run.summary seen — recording is complete)";
  Buffer.contents b
