(** GC telemetry as [Gc.quick_stat] deltas.

    [Gc.quick_stat] reads the runtime's accumulators without forcing a
    collection, so a capture costs a record allocation and nothing else.
    {!Span} captures a snapshot around every enabled span, and the final
    [run.summary] event carries {!since_start} — the run's total
    allocation pressure — under the ["gc"] key. *)

type snapshot = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

val capture : unit -> snapshot

val start : snapshot
(** Snapshot taken when the library initialized (process baseline). *)

type delta = snapshot

val diff : snapshot -> snapshot -> delta
(** [diff before after]: counter fields subtract; [heap_words] is a
    level, not a counter, so the delta reports [after]'s level. *)

val since : snapshot -> delta
val since_start : unit -> delta

val to_fields : delta -> (string * Json.t) list
val to_json : delta -> Json.t

val pp_line : out_channel -> delta -> unit
(** One human-readable ["gc: ..."] line (the [--stats] rendering). *)
