(** Pluggable event sinks.

    An {e event} is a name plus flat JSON fields.  Instrumented code
    emits events at coarse milestones (a dynamics step, a run summary);
    the installed sinks decide where they go:

    - [Null]: nothing installed — {!emit} is one atomic load and an
      immediate return, so instrumentation stays compiled-in for free;
    - [Stderr_pretty]: one human-readable line per event on stderr
      (this is what [--trace] routes through);
    - [Jsonl oc]: one JSON object per line on [oc], flushed per event
      so a crashed run still leaves a parseable prefix.

    Several sinks can be active at once ([--trace --report f.jsonl]
    installs both), and they all see the same events — that is what
    keeps the human trace and the machine report in agreement. *)

type t =
  | Null
  | Stderr_pretty
  | Jsonl of out_channel

val set : t -> unit
(** Replace all installed sinks ([set Null] uninstalls everything). *)

val add : t -> unit
(** Install an additional sink ([add Null] is a no-op). *)

val installed : unit -> t list

val active : unit -> bool
(** [true] iff at least one non-[Null] sink is installed.  Call sites
    use this to skip building field lists. *)

val now_us : unit -> float
(** Microseconds since the observability layer initialized — the clock
    origin every emitted [ts_us] field shares, so a report's timestamps
    are mutually comparable (and convertible to Chrome trace time). *)

val emit : string -> (string * Json.t) list -> unit
(** [emit name fields] stamps the event with [ts_us] ({!now_us} at call
    time) and delivers it to every installed sink.  The JSONL rendering
    is [{"event": name, "ts_us": _, ...fields}]; the pretty sink renders
    the timestamp as a [+12.345ms] prefix instead of a field.  Output is
    mutex-serialized: concurrent emitters never interleave bytes
    within one line. *)
