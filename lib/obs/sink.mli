(** Pluggable event sinks.

    An {e event} is a name plus flat JSON fields.  Instrumented code
    emits events at coarse milestones (a dynamics step, a run summary);
    the installed sinks decide where they go:

    - [Null]: nothing installed — {!emit} is one atomic load and an
      immediate return, so instrumentation stays compiled-in for free;
    - [Stderr_pretty]: one human-readable line per event on stderr
      (this is what [--trace] routes through);
    - [Jsonl oc]: one JSON object per line on [oc].  Output is
      buffered for throughput, except that milestone events — every
      [dynamics.*] event, [progress.heartbeat] and [run.summary] — are
      flushed as they are written (each dynamics step is one applied best-response move,
      so the flush is noise next to the search that produced it).  The
      channel is also flushed whenever the sink is uninstalled ({!set},
      {!scoped} exit), on {!flush_all}, and in an [at_exit] hook — so
      an interrupted or even SIGKILLed [--report] run leaves a
      parseable prefix holding every applied step.

    Several sinks can be active at once ([--trace --report f.jsonl]
    installs both), and they all see the same events — that is what
    keeps the human trace and the machine report in agreement. *)

type t =
  | Null
  | Stderr_pretty
  | Jsonl of out_channel

val set : t -> unit
(** Replace all installed sinks ([set Null] uninstalls everything).
    Previously installed JSONL sinks are flushed before being
    dropped. *)

val add : t -> unit
(** Install an additional sink ([add Null] is a no-op). *)

val scoped : t -> (unit -> 'a) -> 'a
(** [scoped s f] installs [s] alongside the current sinks for the
    duration of [f] and restores the previous sink list afterwards
    (flushing [s] on the way out, even on raise).  This is how the
    experiment harness records one dynamics run into one artifact file
    without disturbing a surrounding [--report] stream. *)

val flush_all : unit -> unit
(** Flush every installed JSONL sink.  Also installed as an [at_exit]
    hook, so buffered report lines survive normal process exit; a sink
    whose channel was already closed is skipped silently. *)

val installed : unit -> t list

val active : unit -> bool
(** [true] iff at least one non-[Null] sink is installed.  Call sites
    use this to skip building field lists. *)

val now_us : unit -> float
(** Microseconds since the observability layer initialized — the clock
    origin every emitted [ts_us] field shares, so a report's timestamps
    are mutually comparable (and convertible to Chrome trace time). *)

val to_us : float -> float
(** Convert a [Unix.gettimeofday] reading onto the {!now_us} clock —
    how {!Span} stamps a span's exact start ([t0_us]) on the same
    origin as the close event's [ts_us]. *)

val emit : string -> (string * Json.t) list -> unit
(** [emit name fields] stamps the event with [ts_us] ({!now_us} at call
    time) and delivers it to every installed sink.  The JSONL rendering
    is [{"event": name, "ts_us": _, ...fields}]; the pretty sink renders
    the timestamp as a [+12.345ms] prefix instead of a field.  Output is
    mutex-serialized: concurrent emitters never interleave bytes
    within one line. *)
