type t = { name : string; cell : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; cell = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c)

let name c = c.name
let bump c = Atomic.incr c.cell
let add c k = ignore (Atomic.fetch_and_add c.cell k)
let get c = Atomic.get c.cell

let find name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> Atomic.get c.cell
      | None -> 0)

let snapshot () =
  let all =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry [])
  in
  List.sort compare all

let reset_all () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry)
