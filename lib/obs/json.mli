(** Hand-rolled JSON: just enough for JSONL event streams and bench
    reports, with zero dependencies.

    The emitter always produces valid JSON on a single line (no raw
    newlines escape a string literal), so one event per line is a
    structural guarantee, not a convention.  The parser accepts the
    emitter's output plus standard whitespace — it exists so tests and
    [bench/main.exe --validate] can check reports without pulling in an
    opam JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes): escapes
    double quotes, backslashes and all control characters below
    [0x20]. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Single-line rendering.  Non-finite floats become [null] (JSON has
    no [nan]/[inf]). *)

exception Parse_error of string

val of_string : string -> t
(** Strict recursive-descent parse of one JSON value; raises
    {!Parse_error} on malformed input, trailing garbage, or containment
    nesting deeper than 512 levels (deep input fails cleanly instead of
    overflowing the stack).  Numbers without [.], [e] or [E] parse as
    [Int], others as [Float]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or
    non-object. *)
