let read_events ic =
  let events = ref [] and skipped = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.of_string line with
         | Json.Obj _ as j when Json.member "event" j <> None ->
             events := j :: !events
         | _ -> incr skipped
         | exception Json.Parse_error _ -> incr skipped
     done
   with End_of_file -> ());
  (List.rev !events, !skipped)

let event_name j =
  match Json.member "event" j with Some (Json.Str s) -> s | _ -> "?"

let num_field k j =
  match Json.member k j with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let ts_us j = num_field "ts_us" j

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

(* --- Chrome trace-event conversion --- *)

let common ?(tid = 1) ~name ~ph ~ts ~dur rest =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str ph);
       ("ts", Json.Float ts);
       ("dur", Json.Float dur);
       ("pid", Json.Int 1);
       ("tid", Json.Int tid);
     ]
    @ rest)

let args_of j =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.filter
           (fun (k, _) -> k <> "event" && k <> "ts_us" && k <> "dur_us")
           fields)
  | _ -> Json.Obj []

let convert_event j =
  let ts = Option.value (ts_us j) ~default:0. in
  match event_name j with
  | "span" ->
      (* the event is stamped at close; the exact start stamp t0_us is
         preferred (ts - dur only approximates it by the emit lag), and
         the recording domain becomes the Chrome thread lane *)
      let dur = Option.value (num_field "dur_us" j) ~default:0. in
      let name =
        match Json.member "name" j with Some (Json.Str s) -> s | _ -> "span"
      in
      let start =
        match num_field "t0_us" j with
        | Some t0 -> t0
        | None -> Float.max 0. (ts -. dur)
      in
      let tid =
        match Json.member "dom" j with Some (Json.Int d) -> d + 1 | _ -> 1
      in
      [ common ~tid ~name ~ph:"X" ~ts:start ~dur [ ("args", args_of j) ] ]
  | name ->
      let instant =
        common ~name ~ph:"i" ~ts ~dur:0.
          [ ("s", Json.Str "g"); ("args", args_of j) ]
      in
      (* dynamics steps additionally feed a Chrome counter track, so the
         social-cost trajectory draws itself in the trace viewer; and
         heartbeats feed a per-task work-done track, so a long run's
         progress curve sits next to its spans *)
      let extra =
        match (name, Json.member "social_cost" j, Json.member "done" j) with
        | "dynamics.step", Some v, _ ->
            [
              common ~name:"social_cost" ~ph:"C" ~ts ~dur:0.
                [ ("args", Json.Obj [ ("social_cost", v) ]) ];
            ]
        | "progress.heartbeat", _, Some v ->
            let track =
              match str_field "task" j with
              | Some task -> "work_done:" ^ task
              | None -> "work_done"
            in
            [
              common ~name:track ~ph:"C" ~ts ~dur:0.
                [ ("args", Json.Obj [ ("done", v) ]) ];
            ]
        | _ -> []
      in
      instant :: extra

let to_chrome events =
  let meta =
    common ~name:"process_name" ~ph:"M" ~ts:0. ~dur:0.
      [ ("args", Json.Obj [ ("name", Json.Str "bbng") ]) ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta :: List.concat_map convert_event events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* --- offline pretty summary of a recorded run --- *)

let summarize events oc =
  let n = List.length events in
  Printf.fprintf oc "== bbng report summary ==\n";
  Printf.fprintf oc "events: %d\n" n;
  (match
     List.filter_map ts_us events |> function
     | [] -> None
     | l -> Some (List.fold_left Float.min infinity l,
                  List.fold_left Float.max neg_infinity l)
   with
  | Some (lo, hi) when hi >= lo ->
      Printf.fprintf oc "time range: +%.3fms .. +%.3fms (%.3fms recorded)\n"
        (lo /. 1e3) (hi /. 1e3) ((hi -. lo) /. 1e3)
  | _ -> ());
  (* event counts, most frequent first *)
  let tally = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let k = event_name j in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    events;
  let counts =
    List.sort
      (fun (ka, a) (kb, b) -> compare (b, ka) (a, kb))
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
  in
  List.iter (fun (k, v) -> Printf.fprintf oc "  %-24s %d\n" k v) counts;
  (* dynamics outcomes are the run's headline *)
  let outcomes = List.filter (fun j -> event_name j = "dynamics.outcome") events in
  if List.length outcomes <= 5 then
    List.iter
      (fun j ->
        Printf.fprintf oc "outcome: %s (rule %s) after %s steps, social cost %s\n"
          (Option.value ~default:"?" (str_field "outcome" j))
          (Option.value ~default:"?" (str_field "rule" j))
          (match Json.member "steps" j with
          | Some (Json.Int i) -> string_of_int i
          | _ -> "?")
          (match Json.member "social_cost" j with
          | Some (Json.Int i) -> string_of_int i
          | _ -> "?"))
      outcomes;
  if outcomes <> [] then begin
    (* aggregated dynamics section: outcome tally by rule, steps shape *)
    Printf.fprintf oc "dynamics (%d recorded run%s):\n" (List.length outcomes)
      (if List.length outcomes = 1 then "" else "s");
    let tally = Hashtbl.create 8 in
    List.iter
      (fun j ->
        let key =
          ( Option.value ~default:"?" (str_field "rule" j),
            Option.value ~default:"?" (str_field "outcome" j) )
        in
        Hashtbl.replace tally key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
      outcomes;
    let rows =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
    in
    List.iter
      (fun ((rule, outcome), count) ->
        Printf.fprintf oc "  %-28s %d\n" (rule ^ "/" ^ outcome) count)
      rows;
    let steps =
      List.filter_map
        (fun j ->
          match Json.member "steps" j with
          | Some (Json.Int i) -> Some i
          | _ -> None)
        outcomes
    in
    (match steps with
    | [] -> ()
    | _ :: _ ->
        let n_runs = List.length steps in
        let total = List.fold_left ( + ) 0 steps in
        Printf.fprintf oc "  steps: min %d / mean %.1f / max %d (total %d)\n"
          (List.fold_left min max_int steps)
          (float_of_int total /. float_of_int n_runs)
          (List.fold_left max 0 steps)
          total;
        (* power-of-two step buckets: a coarse shape is all that is
           needed to tell "everything converged instantly" from "the
           step limit was doing the work" *)
        let bucket s =
          if s <= 0 then 0
          else
            let rec go b lo = if s < 2 * lo then b else go (b + 1) (2 * lo) in
            go 1 1
        in
        let nbuckets = 1 + List.fold_left (fun a s -> max a (bucket s)) 0 steps in
        let hist = Array.make nbuckets 0 in
        List.iter (fun s -> hist.(bucket s) <- hist.(bucket s) + 1) steps;
        Printf.fprintf oc "  steps histogram:";
        Array.iteri
          (fun b c ->
            if c > 0 then
              if b = 0 then Printf.fprintf oc "  0:%d" c
              else
                Printf.fprintf oc "  [%d,%d):%d" (1 lsl (b - 1)) (1 lsl b) c)
          hist;
        Printf.fprintf oc "\n")
  end;
  (* convergence diagnostics: the windowed detector's verdict history
     and its final word (see Dynamics.run) *)
  let diags =
    List.filter (fun j -> event_name j = "dynamics.diagnosis") events
  in
  if diags <> [] then begin
    let tally = Hashtbl.create 4 in
    List.iter
      (fun j ->
        let s = Option.value ~default:"?" (str_field "state" j) in
        Hashtbl.replace tally s
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally s)))
      diags;
    let counts =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
    in
    Printf.fprintf oc "diagnosis (%d window%s): %s\n" (List.length diags)
      (if List.length diags = 1 then "" else "s")
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s x%d" k v) counts));
    let last = List.nth diags (List.length diags - 1) in
    Printf.fprintf oc "  last: %s at step %s"
      (Option.value ~default:"?" (str_field "state" last))
      (match Json.member "step" last with
      | Some (Json.Int i) -> string_of_int i
      | _ -> "?");
    (match Json.member "decay_pct" last with
    | Some (Json.Int i) ->
        Printf.fprintf oc ", improvement at %d%% of first window" i
    | Some (Json.Float f) ->
        Printf.fprintf oc ", improvement at %.0f%% of first window" f
    | _ -> ());
    (match Json.member "net_social_cost" last with
    | Some (Json.Int i) -> Printf.fprintf oc ", net social cost %+d" i
    | _ -> ());
    Printf.fprintf oc "\n"
  end;
  (* telemetry: the last heartbeat per task, with the achieved overall
     rate — on a truncated .partial this line dates the death *)
  let beats =
    List.filter (fun j -> event_name j = "progress.heartbeat") events
  in
  if beats <> [] then begin
    let last = Hashtbl.create 4 in
    let order = ref [] in
    List.iter
      (fun j ->
        let task = Option.value ~default:"?" (str_field "task" j) in
        if not (Hashtbl.mem last task) then order := task :: !order;
        Hashtbl.replace last task j)
      beats;
    Printf.fprintf oc "heartbeats (%d recorded; last per task):\n"
      (List.length beats);
    List.iter
      (fun task ->
        let j = Hashtbl.find last task in
        let done_ = Option.value ~default:0. (num_field "done" j) in
        let progress =
          match num_field "total" j with
          | Some total -> Printf.sprintf "%.0f/%.0f" done_ total
          | None -> Printf.sprintf "%.0f" done_
        in
        let achieved =
          (* overall rate over the task's lifetime, not the last
             window: done / elapsed *)
          match num_field "elapsed_ms" j with
          | Some ms when ms > 0. -> done_ /. ms *. 1e3
          | _ -> Option.value ~default:0. (num_field "rate_per_s" j)
        in
        Printf.fprintf oc "  %-24s %s done · %.1f/s achieved · last beat +%.3fms\n"
          task progress achieved
          (Option.value ~default:0. (ts_us j) /. 1e3))
      (List.rev !order)
  end;
  (* call-path attribution reconstructed from the recorded span events
     — the same folded stacks `bbng_cli flame` emits, top-10 by
     self-time so the hot path is visible without leaving the pager *)
  let hot = Profile.top (Profile.of_events events) in
  if hot <> [] then begin
    Printf.fprintf oc "self-time top %d (count / self ms / self minor words):\n"
      (List.length hot);
    List.iter
      (fun (path, (p : Profile.stat)) ->
        Printf.fprintf oc "  %-40s %d / %.3f / %.0f\n" path p.Profile.count
          (float_of_int p.Profile.self_ns /. 1e6)
          p.Profile.self_minor_words)
      hot
  end;
  (* the final run.summary, re-rendered *)
  (match List.find_opt (fun j -> event_name j = "run.summary") events with
  | None -> Printf.fprintf oc "(no run.summary event — truncated run?)\n"
  | Some s ->
      (match str_field "run_id" s with
      | Some id -> Printf.fprintf oc "ledger id: %s\n" id
      | None -> ());
      (match (str_field "ocaml_version" s, Json.member "word_size" s) with
      | Some v, Some (Json.Int w) ->
          Printf.fprintf oc "recorded by: ocaml %s, %d-bit\n" v w
      | _ -> ());
      (match Json.member "argv" s with
      | Some (Json.List argv) ->
          Printf.fprintf oc "argv: %s\n"
            (String.concat " "
               (List.map (function Json.Str a -> a | _ -> "?") argv))
      | _ -> ());
      (match Json.member "counters" s with
      | Some (Json.Obj fields) ->
          let nonzero =
            List.filter (function _, Json.Int 0 -> false | _ -> true) fields
          in
          let nonzero =
            List.sort
              (fun (_, a) (_, b) -> compare b a)
              (List.filter_map
                 (function k, Json.Int v -> Some (k, v) | _ -> None)
                 nonzero)
          in
          if nonzero <> [] then begin
            Printf.fprintf oc "counters:\n";
            List.iter
              (fun (k, v) -> Printf.fprintf oc "  %-32s %d\n" k v)
              nonzero
          end
      | _ -> ());
      (match Json.member "spans" s with
      | Some (Json.Obj fields) when fields <> [] ->
          Printf.fprintf oc "spans (count / total ms / p50 ms / p99 ms / max ms):\n";
          let numf k j = Option.value ~default:0. (num_field k j) in
          let by_total =
            List.sort
              (fun (_, a) (_, b) ->
                compare (numf "total_ms" b) (numf "total_ms" a))
              fields
          in
          List.iter
            (fun (k, sp) ->
              Printf.fprintf oc "  %-32s %.0f / %.3f / %.3f / %.3f / %.3f\n" k
                (numf "count" sp) (numf "total_ms" sp) (numf "p50_ms" sp)
                (numf "p99_ms" sp) (numf "max_ms" sp))
            by_total
      | _ -> ());
      (match Json.member "gc" s with
      | Some gc ->
          let numf k = Option.value ~default:0. (num_field k gc) in
          Printf.fprintf oc
            "gc: minor %.0f words (%.0f collections), major %.0f words (%.0f), heap %.0f words\n"
            (numf "minor_words") (numf "minor_collections") (numf "major_words")
            (numf "major_collections") (numf "heap_words")
      | None -> ()));
  flush oc
