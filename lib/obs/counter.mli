(** Named monotonic counters.

    Each counter is one [int Atomic.t]: a bump is a single atomic
    fetch-and-add, safe to call from {!Bbng_core.Parallel} workers and
    cheap enough for hot paths (nanoseconds; instrumented call sites
    amortize further by adding batch totals, e.g. one [add] per BFS
    rather than one [bump] per vertex).

    Counters are process-global and registered by name at module
    initialization; {!make} is idempotent, so a test can re-[make] a
    production counter to read or diff it. *)

type t

val make : string -> t
(** Register (or look up) the counter named [name].  The same name
    always yields the same counter. *)

val name : t -> string
val bump : t -> unit
val add : t -> int -> unit
val get : t -> int

val find : string -> int
(** Current value of the counter named [name]; [0] if it was never
    registered. *)

val snapshot : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered counter (the registry itself is kept).  For
    per-run deltas in benches and tests. *)
