(** Tail-and-render engine behind [bbng_cli top].

    Folds a [--report] JSONL stream — finished, or still being written
    by a live run — into a {!state} and renders a compact terminal
    frame from it: current phase (last dynamics step / event), latest
    [progress.heartbeat] (rate, ETA, budget headroom), top counters
    from the heartbeat's embedded snapshot, and span latency quantiles
    rebuilt from the tailed [span] events.

    Robustness contract: the tail consumes only complete
    newline-terminated lines (a half-written trailing line stays
    buffered until the writer finishes it), and {!feed_line} treats
    unparseable input as a counted skip, never an exception — so
    watching a [.partial] mid-write, or after a SIGKILL tore the last
    line, cannot crash the viewer. *)

type state
(** Accumulated view of everything tailed so far. *)

val create_state : unit -> state

val feed_line : state -> string -> unit
(** Fold one complete line into the state.  Blank lines are ignored;
    non-JSON, truncated JSON and objects without an ["event"] field
    are counted as skipped; nothing raises. *)

val events : state -> int
(** Events successfully folded in. *)

val skipped : state -> int
(** Lines that did not parse as events. *)

val heartbeats : state -> int
(** [progress.heartbeat] events seen. *)

val finished : state -> bool
(** Whether a [run.summary] event has been seen — the recording is
    complete and a [top] loop may stop polling. *)

(** {1 Incremental file tailing} *)

type tail

val open_tail : string -> tail
(** Start tailing [path] from offset 0.  The file need not exist yet —
    {!poll} just reports no progress until it does. *)

val retarget : tail -> string -> unit
(** Switch the tail to a sibling path, keeping the read offset — for
    following an [Atomic_io] stream across its [.partial] → final
    commit rename (the bytes are identical, only the name changes). *)

val poll : tail -> state -> int
(** Read whatever the file grew since the last poll, feed every
    complete line into [state], and return how many lines were fed.
    A missing file yields 0; a file that shrank (a fresh run replaced
    it) restarts the tail from offset 0. *)

(** {1 Rendering} *)

val render : ?width:int -> state -> source:string -> string
(** One terminal frame (plain text, trailing newline per line).
    [source] is the path label shown in the header. *)
