type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.12g round-trips every measurement we record and never
           prints a raw newline or locale separator *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  to_buffer buf v;
  Buffer.contents buf

exception Parse_error of string

(* --- minimal strict parser --- *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        true
    | _ -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.src
    && String.sub cur.src cur.pos (String.length word) = word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else fail cur (Printf.sprintf "expected %S" word)

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek cur with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail cur "bad \\u escape"
    in
    v := (!v * 16) + d;
    advance cur
  done;
  !v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> Buffer.add_char buf '"'; advance cur; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance cur; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance cur; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance cur; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance cur; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance cur; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance cur; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance cur; go ()
        | Some 'u' ->
            advance cur;
            let code = parse_hex4 cur in
            (* we only emit \u for control bytes; decode the BMP range
               as UTF-8 so foreign input still round-trips *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail cur "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let consume () = advance cur in
  (match peek cur with Some '-' -> consume () | _ -> ());
  let rec digits n =
    match peek cur with
    | Some '0' .. '9' ->
        consume ();
        digits (n + 1)
    | _ -> n
  in
  ignore (digits 0);
  (match peek cur with
  | Some '.' ->
      is_float := true;
      consume ();
      if digits 0 = 0 then fail cur "digit expected after '.'"
  | _ -> ());
  (match peek cur with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek cur with Some ('+' | '-') -> consume () | _ -> ());
      if digits 0 = 0 then fail cur "digit expected in exponent"
  | _ -> ());
  let text = String.sub cur.src start (cur.pos - start) in
  if text = "" || text = "-" then fail cur "bad number";
  if !is_float then Float (float_of_string text)
  else match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

(* the parser is recursive-descent, so containment depth is stack
   depth; cap it so adversarially deep input fails with Parse_error
   instead of Stack_overflow *)
let max_depth = 512

let rec parse_value depth cur =
  if depth > max_depth then fail cur "nesting too deep";
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin advance cur; List [] end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) cur in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; items (v :: acc)
          | Some ']' -> advance cur; List (List.rev (v :: acc))
          | _ -> fail cur "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin advance cur; Obj [] end
      else begin
        let rec fields acc =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value (depth + 1) cur in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; fields ((k, v) :: acc)
          | Some '}' -> advance cur; Obj (List.rev ((k, v) :: acc))
          | _ -> fail cur "expected ',' or '}'"
        in
        fields []
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value 0 cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
