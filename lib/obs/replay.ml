type step = {
  index : int;
  player : int;
  old_cost : int;
  new_cost : int;
  social_cost : int;
  old_targets : int array option;
  new_targets : int array option;
}

type outcome = {
  outcome : string;
  total_steps : int;
  period : int option;
  final_social_cost : int option;
  final_profile : string option;
}

type run = {
  version : string option;
  budgets : int array option;
  start_profile : string option;
  rule : string option;
  schedule : string option;
  max_steps : int option;
  meta : (string * Json.t) list;
  steps : step list;
  run_outcome : outcome option;
}

let int_field k j =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let int_array_field k j =
  match Json.member k j with
  | Some (Json.List l) ->
      let ok = List.for_all (function Json.Int _ -> true | _ -> false) l in
      if ok then
        Some
          (Array.of_list
             (List.map (function Json.Int i -> i | _ -> 0) l))
      else None
  | _ -> None

let event_name j =
  match Json.member "event" j with Some (Json.Str s) -> s | _ -> "?"

(* Fields the parser consumes by name; anything else in a
   dynamics.start event is preserved as run metadata (the recorder's
   ?meta fields — seed and friends — travel there). *)
let structural_start_fields =
  [ "event"; "ts_us"; "rule"; "schedule"; "version"; "budgets"; "profile";
    "players"; "max_steps"; "social_cost" ]

let parse_step j =
  match
    ( int_field "step" j,
      int_field "player" j,
      int_field "old_cost" j,
      int_field "new_cost" j,
      int_field "social_cost" j )
  with
  | Some index, Some player, Some old_cost, Some new_cost, Some social_cost ->
      Some
        {
          index;
          player;
          old_cost;
          new_cost;
          social_cost;
          old_targets = int_array_field "old_targets" j;
          new_targets = int_array_field "new_targets" j;
        }
  | _ -> None

let parse_outcome j =
  match (str_field "outcome" j, int_field "steps" j) with
  | Some outcome, Some total_steps ->
      Some
        {
          outcome;
          total_steps;
          period = int_field "period" j;
          final_social_cost = int_field "social_cost" j;
          final_profile = str_field "profile" j;
        }
  | _ -> None

let empty_run =
  {
    version = None;
    budgets = None;
    start_profile = None;
    rule = None;
    schedule = None;
    max_steps = None;
    meta = [];
    steps = [];
    run_outcome = None;
  }

let start_run j =
  {
    empty_run with
    version = str_field "version" j;
    budgets = int_array_field "budgets" j;
    start_profile = str_field "profile" j;
    rule = str_field "rule" j;
    schedule = str_field "schedule" j;
    max_steps = int_field "max_steps" j;
    meta =
      (match j with
      | Json.Obj fields ->
          List.filter
            (fun (k, _) -> not (List.mem k structural_start_fields))
            fields
      | _ -> []);
  }

let runs_of_events events =
  (* a report may hold several recorded runs back to back; each
     dynamics.start opens one, its steps accumulate until the matching
     dynamics.outcome closes it (an unclosed run — interrupted process —
     is kept with run_outcome = None) *)
  let finished = ref [] in
  let current = ref None in
  let close () =
    match !current with
    | Some r -> (
        finished := { r with steps = List.rev r.steps } :: !finished;
        current := None)
    | None -> ()
  in
  List.iter
    (fun j ->
      match event_name j with
      | "dynamics.start" ->
          close ();
          current := Some (start_run j)
      | "dynamics.step" -> (
          match (parse_step j, !current) with
          | Some s, Some r -> current := Some { r with steps = s :: r.steps }
          | Some s, None ->
              (* steps without a recorded header still form a run; replay
                 will fail cleanly for lack of a reconstruction base *)
              current := Some { empty_run with steps = [ s ] }
          | None, _ -> ())
      | "dynamics.outcome" -> (
          match parse_outcome j with
          | Some o ->
              let r = Option.value !current ~default:empty_run in
              let r =
                {
                  r with
                  rule = (match r.rule with None -> str_field "rule" j | s -> s);
                  schedule =
                    (match r.schedule with
                    | None -> str_field "schedule" j
                    | s -> s);
                  run_outcome = Some o;
                }
              in
              current := Some r;
              close ()
          | None -> ())
      | _ -> ())
    events;
  close ();
  List.rev !finished
