(* Prometheus/OpenMetrics text exposition of the live registries.

   One snapshot = the sharded Metrics registry aggregated across
   domains, plus the legacy Counter and Histogram registries, rendered
   as the standard line protocol:

     # HELP bbng_dynamics_steps_applied ...
     # TYPE bbng_dynamics_steps_applied counter
     bbng_dynamics_steps_applied_total 42
     # TYPE bbng_bfs_popped_per_run histogram
     bbng_bfs_popped_per_run_bucket{le="7"} 3
     bbng_bfs_popped_per_run_bucket{le="+Inf"} 9
     ...
     # EOF

   The same format is both the --metrics-out file refreshed on every
   progress heartbeat and the payload a future `bbng serve` scrape
   endpoint would return.  [parse]/[validate] exist so tests and
   `bench/main.exe --validate-metrics` can check a snapshot without an
   external Prometheus. *)

(* --- naming and escaping --- *)

let metric_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* "dynamics.steps_applied" -> "bbng_dynamics_steps_applied" *)
let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri (fun i c -> if not (metric_char c) then Bytes.set b i '_') b;
  "bbng_" ^ Bytes.to_string b

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

(* --- rendering --- *)

type mtype = Counter_t | Gauge_t | Histogram_t | Untyped

let mtype_name = function
  | Counter_t -> "counter"
  | Gauge_t -> "gauge"
  | Histogram_t -> "histogram"
  | Untyped -> "untyped"

let add_header buf name help mtype =
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s %s\n" name (mtype_name mtype))

let add_sample buf name labels v =
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value value);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_value v);
  Buffer.add_char buf '\n'

let add_counter buf name help v =
  let name = sanitize name in
  add_header buf name help Counter_t;
  add_sample buf (name ^ "_total") [] (float_of_int v)

(* labelled cells of one gauge (e.g. progress.done{task="..."} for
   every live task) share a single family: one header, then all the
   samples — the parser rejects duplicate families.  Relies on the
   snapshot being name-sorted so same-name cells are adjacent. *)
let add_gauges buf gauges =
  let last = ref "" in
  List.iter
    (fun (name, help, labels, v) ->
      let name = sanitize name in
      if name <> !last then begin
        add_header buf name help Gauge_t;
        last := name
      end;
      add_sample buf name labels v)
    gauges

(* cumulative le-buckets over the occupied power-of-two buckets; le is
   each bucket's inclusive upper bound, and the +Inf bucket equals
   _count by construction *)
let add_histogram_buckets buf name ~bucket_counts ~count ~sum =
  let cum = ref 0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        cum := !cum + c;
        let _, hi = Histogram.bucket_bounds i in
        add_sample buf (name ^ "_bucket")
          [ ("le", string_of_int hi) ]
          (float_of_int !cum)
      end)
    bucket_counts;
  add_sample buf (name ^ "_bucket") [ ("le", "+Inf") ] (float_of_int count);
  add_sample buf (name ^ "_sum") [] (float_of_int sum);
  add_sample buf (name ^ "_count") [] (float_of_int count)

let add_histogram buf name help ~bucket_counts ~count ~sum =
  let name = sanitize name in
  add_header buf name help Histogram_t;
  add_histogram_buckets buf name ~bucket_counts ~count ~sum

let render () =
  let buf = Buffer.create 4096 in
  let m = Metrics.snapshot () in
  List.iter (fun (name, help, v) -> add_counter buf name help v) m.Metrics.counters;
  add_gauges buf m.Metrics.gauges;
  List.iter
    (fun (name, help, hs) ->
      add_histogram buf name help ~bucket_counts:hs.Metrics.hs_buckets
        ~count:hs.Metrics.hs_count ~sum:hs.Metrics.hs_sum)
    m.Metrics.histograms;
  (* legacy registries: the post-hoc counters and domain-value
     histograms become scrapeable too *)
  List.iter
    (fun (name, v) -> add_counter buf name "" v)
    (Counter.snapshot ());
  List.iter
    (fun (name, h) ->
      if Histogram.count h > 0 then
        add_histogram buf name "" ~bucket_counts:(Histogram.bucket_counts h)
          ~count:(Histogram.count h) ~sum:(Histogram.total h))
    (Histogram.snapshot ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write path =
  (* fault probe: lets the smoke matrix kill the process exactly as a
     scrape snapshot is being refreshed, and then assert the previous
     .prom file survived intact (Atomic_io's temp + rename) *)
  if Fault.armed () then Fault.hit "metrics.scrape";
  let text = render () in
  Atomic_io.write_file path (fun oc -> output_string oc text)

(* --- parsing (for validation and tests) --- *)

type sample = {
  sample_name : string;
  labels : (string * string) list;
  value : float;
}

type family = {
  fam_name : string;
  fam_type : mtype;
  fam_help : string;
  samples : sample list;
}

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let mtype_of_name = function
  | "counter" -> Counter_t
  | "gauge" -> Gauge_t
  | "histogram" -> Histogram_t
  | "untyped" -> Untyped
  | s -> failf "unknown metric type %S" s

let split2 what line =
  match String.index_opt line ' ' with
  | Some i ->
      (String.sub line 0 i,
       String.sub line (i + 1) (String.length line - i - 1))
  | None -> failf "%s line without a value: %S" what line

(* name{k="v",...} — the value was already split off *)
let parse_labels s =
  let n = String.length s in
  let labels = ref [] in
  let i = ref 0 in
  let expect c =
    if !i >= n || s.[!i] <> c then failf "bad label syntax in %S" s;
    incr i
  in
  expect '{';
  while !i < n && s.[!i] <> '}' do
    let start = !i in
    while !i < n && s.[!i] <> '=' do incr i done;
    let key = String.sub s start (!i - start) in
    expect '=';
    expect '"';
    let vbuf = Buffer.create 16 in
    let rec value () =
      if !i >= n then failf "unterminated label value in %S" s
      else if s.[!i] = '\\' && !i + 1 < n then begin
        Buffer.add_char vbuf s.[!i];
        Buffer.add_char vbuf s.[!i + 1];
        i := !i + 2;
        value ()
      end
      else if s.[!i] = '"' then incr i
      else begin
        Buffer.add_char vbuf s.[!i];
        incr i;
        value ()
      end
    in
    value ();
    labels := (key, unescape (Buffer.contents vbuf)) :: !labels;
    if !i < n && s.[!i] = ',' then incr i
  done;
  expect '}';
  if !i <> n then failf "trailing garbage after labels in %S" s;
  List.rev !labels

let parse_sample line =
  match String.index_opt line '{' with
  | Some b ->
      let sample_name = String.sub line 0 b in
      let rest = String.sub line b (String.length line - b) in
      (* the value follows the closing brace *)
      let close =
        match String.rindex_opt rest '}' with
        | Some c -> c
        | None -> failf "sample without closing brace: %S" line
      in
      let labels = parse_labels (String.sub rest 0 (close + 1)) in
      let v = String.trim (String.sub rest (close + 1) (String.length rest - close - 1)) in
      (match parse_value v with
      | Some value -> { sample_name; labels; value }
      | None -> failf "bad sample value %S" v)
  | None ->
      let sample_name, v = split2 "sample" line in
      (match parse_value (String.trim v) with
      | Some value -> { sample_name; labels = []; value }
      | None -> failf "bad sample value %S in %S" v line)

let parse text =
  let lines = String.split_on_char '\n' text in
  let families = ref [] in
  (* help arrives before type; samples attach to the family whose name
     prefixes theirs *)
  let pending_help : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let current = ref None in
  let saw_eof = ref false in
  let close () =
    match !current with
    | Some f ->
        families := { f with samples = List.rev f.samples } :: !families;
        current := None
    | None -> ()
  in
  (try
     List.iter
       (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if !saw_eof then failf "content after # EOF: %S" line
         else if line = "# EOF" then begin
           close ();
           saw_eof := true
         end
         else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
           let name, help = split2 "# HELP" (String.sub line 7 (String.length line - 7)) in
           Hashtbl.replace pending_help name (unescape help)
         end
         else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
           close ();
           let name, ty = split2 "# TYPE" (String.sub line 7 (String.length line - 7)) in
           if List.exists (fun f -> f.fam_name = name) !families then
             failf "duplicate family %S" name;
           current :=
             Some
               {
                 fam_name = name;
                 fam_type = mtype_of_name (String.trim ty);
                 fam_help =
                   Option.value ~default:"" (Hashtbl.find_opt pending_help name);
                 samples = [];
               }
         end
         else if line.[0] = '#' then () (* other comments are legal *)
         else
           let s = parse_sample line in
           match !current with
           | Some f when
               String.length s.sample_name >= String.length f.fam_name
               && String.sub s.sample_name 0 (String.length f.fam_name)
                  = f.fam_name ->
               current := Some { f with samples = s :: f.samples }
           | _ -> failf "sample %S outside its family" s.sample_name)
       lines;
     close ();
     if not !saw_eof then failf "missing # EOF terminator";
     Ok (List.rev !families)
   with Bad msg -> Error msg)

(* --- semantic validation on top of the syntax --- *)

let suffix_of fam s =
  let n = String.length fam.fam_name in
  String.sub s.sample_name n (String.length s.sample_name - n)

let validate_family f =
  match f.fam_type with
  | Counter_t ->
      List.iter
        (fun s ->
          (match suffix_of f s with
          | "" | "_total" -> ()
          | suf -> failf "counter %s has bad suffix %S" f.fam_name suf);
          if Float.is_nan s.value || s.value < 0. then
            failf "counter %s has non-monotonic value %s" f.fam_name
              (fmt_value s.value))
        f.samples
  | Gauge_t | Untyped -> ()
  | Histogram_t ->
      let buckets =
        List.filter (fun s -> suffix_of f s = "_bucket") f.samples
      in
      let le s =
        match List.assoc_opt "le" s.labels with
        | Some le -> (
            match parse_value le with
            | Some v -> v
            | None -> failf "histogram %s: bad le %S" f.fam_name le)
        | None -> failf "histogram %s: bucket without le" f.fam_name
      in
      let find suffix =
        match List.find_opt (fun s -> suffix_of f s = suffix) f.samples with
        | Some s -> s.value
        | None -> failf "histogram %s: missing %s" f.fam_name suffix
      in
      let count = find "_count" in
      ignore (find "_sum");
      (match buckets with
      | [] -> failf "histogram %s has no buckets" f.fam_name
      | _ -> ());
      (* cumulativity: counts non-decreasing in le order, +Inf == count *)
      let sorted =
        List.sort (fun a b -> Float.compare (le a) (le b)) buckets
      in
      ignore
        (List.fold_left
           (fun prev s ->
             if s.value < prev then
               failf "histogram %s: bucket le=%s drops below predecessor"
                 f.fam_name (fmt_value (le s));
             s.value)
           0. sorted);
      (match List.rev sorted with
      | last :: _ ->
          if le last <> Float.infinity then
            failf "histogram %s: no +Inf bucket" f.fam_name;
          if last.value <> count then
            failf "histogram %s: +Inf bucket %s <> count %s" f.fam_name
              (fmt_value last.value) (fmt_value count)
      | [] -> ())

let validate text =
  match parse text with
  | Error _ as e -> e
  | Ok families -> (
      try
        List.iter validate_family families;
        Ok families
      with Bad msg -> Error msg)
