exception Injected of string

type action = Raise | Delay_ms of float | Exit_code of int | Kill

let action_name = function
  | Raise -> "raise"
  | Delay_ms ms -> Printf.sprintf "delay:%g" ms
  | Exit_code c -> Printf.sprintf "exit:%d" c
  | Kill -> "kill"

type spec = { point : string; action : action; after : int }

type armed_spec = { spec : spec; remaining : int Atomic.t }

let c_fired = Counter.make "fault.injections_fired"

(* the armed list is read on every probe hit, so the empty/non-empty
   distinction is a single atomic load (probes cost nothing unarmed) *)
let armed_specs : armed_spec list Atomic.t = Atomic.make []

let armed () = Atomic.get armed_specs <> []
let disarm () = Atomic.set armed_specs []

let arm spec =
  Atomic.set armed_specs
    ({ spec; remaining = Atomic.make (max 1 spec.after) }
    :: Atomic.get armed_specs)

let parse_action s =
  match String.split_on_char ':' s with
  | [ "raise" ] -> Ok Raise
  | [ "kill" ] -> Ok Kill
  | [ "exit"; c ] -> (
      match int_of_string_opt c with
      | Some c when c >= 0 && c <= 255 -> Ok (Exit_code c)
      | _ -> Error (Printf.sprintf "bad exit code %S" c))
  | [ "delay"; ms ] -> (
      match float_of_string_opt ms with
      | Some ms when ms >= 0. -> Ok (Delay_ms ms)
      | _ -> Error (Printf.sprintf "bad delay %S" ms))
  | _ -> Error (Printf.sprintf "unknown action %S (raise|kill|exit:N|delay:MS)" s)

let parse s =
  match String.split_on_char '@' (String.trim s) with
  | [ point; action ] | [ point; action; "" ] -> (
      if point = "" then Error "fault spec has an empty probe point"
      else
        match parse_action action with
        | Ok action -> Ok { point; action; after = 1 }
        | Error _ as e -> e)
  | [ point; action; n ] -> (
      if point = "" then Error "fault spec has an empty probe point"
      else
        match (parse_action action, int_of_string_opt n) with
        | Ok action, Some n when n >= 1 -> Ok { point; action; after = n }
        | Ok _, _ -> Error (Printf.sprintf "bad hit count %S" n)
        | (Error _ as e), _ -> e)
  | _ ->
      Error
        (Printf.sprintf "bad fault spec %S (expected POINT@ACTION[@NTH-HIT])" s)

let env_var = "BBNG_FAULT"

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some v ->
      List.fold_left
        (fun acc s ->
          if String.trim s = "" then acc
          else
            match (acc, parse s) with
            | Ok (), Ok spec ->
                arm spec;
                Ok ()
            | Ok (), Error e -> Error (Printf.sprintf "%s: %s" env_var e)
            | (Error _ as e), _ -> e)
        (Ok ())
        (String.split_on_char ',' v)

let fire point = function
  | Raise ->
      Counter.bump c_fired;
      raise (Injected point)
  | Delay_ms ms ->
      Counter.bump c_fired;
      Unix.sleepf (ms /. 1e3)
  | Exit_code c ->
      Counter.bump c_fired;
      Stdlib.exit c
  | Kill ->
      Counter.bump c_fired;
      (* the point of Kill is that NOTHING runs after it — no at_exit,
         no buffered flush — so crash-safety claims are tested against
         a real dirty death, not a polite shutdown *)
      Unix.kill (Unix.getpid ()) Sys.sigkill

let hit point =
  match Atomic.get armed_specs with
  | [] -> ()
  | specs ->
      List.iter
        (fun a ->
          if a.spec.point = point && Atomic.fetch_and_add a.remaining (-1) = 1
          then fire point a.spec.action)
        specs
