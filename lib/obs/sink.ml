type t =
  | Null
  | Stderr_pretty
  | Jsonl of out_channel

let sinks : t list Atomic.t = Atomic.make []
let out_mutex = Mutex.create ()

let normalize = List.filter (fun s -> s <> Null)
let set s = Atomic.set sinks (normalize [ s ])
let add s = Atomic.set sinks (normalize (s :: Atomic.get sinks))
let installed () = Atomic.get sinks
let active () = Atomic.get sinks <> []

(* event timestamps are microseconds since this module initialized, so
   every sink (and every span event) shares one clock origin *)
let t0 = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. t0) *. 1e6

let pretty_field buf (k, v) =
  Buffer.add_char buf ' ';
  Buffer.add_string buf k;
  Buffer.add_char buf '=';
  match v with
  | Json.Str s -> Buffer.add_string buf s
  | v -> Json.to_buffer buf v

let deliver sink name fields =
  match sink with
  | Null -> ()
  | Stderr_pretty ->
      let buf = Buffer.create 64 in
      (* render the timestamp as a compact prefix, not a field *)
      (match List.assoc_opt "ts_us" fields with
      | Some (Json.Float ts) ->
          Buffer.add_string buf (Printf.sprintf "[bbng +%.3fms] " (ts /. 1e3))
      | _ -> Buffer.add_string buf "[bbng] ");
      Buffer.add_string buf name;
      List.iter
        (fun (k, v) -> if k <> "ts_us" then pretty_field buf (k, v))
        fields;
      Buffer.add_char buf '\n';
      output_string stderr (Buffer.contents buf);
      flush stderr
  | Jsonl oc ->
      let line = Json.to_string (Json.Obj (("event", Json.Str name) :: fields)) in
      output_string oc line;
      output_char oc '\n';
      flush oc

let emit name fields =
  match Atomic.get sinks with
  | [] -> ()
  | installed ->
      let fields = ("ts_us", Json.Float (now_us ())) :: fields in
      Mutex.protect out_mutex (fun () ->
          List.iter (fun s -> deliver s name fields) installed)
