type t =
  | Null
  | Stderr_pretty
  | Jsonl of out_channel

let sinks : t list Atomic.t = Atomic.make []
let out_mutex = Mutex.create ()

let normalize = List.filter (fun s -> s <> Null)
let set s = Atomic.set sinks (normalize [ s ])
let add s = Atomic.set sinks (normalize (s :: Atomic.get sinks))
let installed () = Atomic.get sinks
let active () = Atomic.get sinks <> []

let pretty_field buf (k, v) =
  Buffer.add_char buf ' ';
  Buffer.add_string buf k;
  Buffer.add_char buf '=';
  match v with
  | Json.Str s -> Buffer.add_string buf s
  | v -> Json.to_buffer buf v

let deliver sink name fields =
  match sink with
  | Null -> ()
  | Stderr_pretty ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf "[bbng] ";
      Buffer.add_string buf name;
      List.iter (pretty_field buf) fields;
      Buffer.add_char buf '\n';
      output_string stderr (Buffer.contents buf);
      flush stderr
  | Jsonl oc ->
      let line = Json.to_string (Json.Obj (("event", Json.Str name) :: fields)) in
      output_string oc line;
      output_char oc '\n';
      flush oc

let emit name fields =
  match Atomic.get sinks with
  | [] -> ()
  | installed ->
      Mutex.protect out_mutex (fun () ->
          List.iter (fun s -> deliver s name fields) installed)
