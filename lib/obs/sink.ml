type t =
  | Null
  | Stderr_pretty
  | Jsonl of out_channel

let sinks : t list Atomic.t = Atomic.make []
let out_mutex = Mutex.create ()

let normalize = List.filter (fun s -> s <> Null)

(* A closed report channel (the CLI closes it in its own at_exit) must
   not make the process-exit flush raise. *)
let flush_sink = function
  | Null | Stderr_pretty -> ()
  | Jsonl oc -> ( try flush oc with Sys_error _ -> ())

let flush_all () =
  Mutex.protect out_mutex (fun () -> List.iter flush_sink (Atomic.get sinks))

(* Uninstalling a JSONL sink flushes it first, so the channel holds a
   complete line-delimited prefix the moment it leaves the sink list. *)
let set s =
  flush_all ();
  Atomic.set sinks (normalize [ s ])

let add s = Atomic.set sinks (normalize (s :: Atomic.get sinks))
let installed () = Atomic.get sinks
let active () = Atomic.get sinks <> []

let scoped s f =
  let previous = Atomic.get sinks in
  Atomic.set sinks (normalize (s :: previous));
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect out_mutex (fun () -> flush_sink s);
      Atomic.set sinks previous)
    f

(* Interrupted runs: whatever already reached the channel buffers is
   drained at process exit, so a crashed --report run still leaves a
   valid JSONL prefix. *)
let () = at_exit flush_all

(* event timestamps are microseconds since this module initialized, so
   every sink (and every span event) shares one clock origin *)
let t0 = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. t0) *. 1e6
let to_us t = (t -. t0) *. 1e6

let pretty_field buf (k, v) =
  Buffer.add_char buf ' ';
  Buffer.add_string buf k;
  Buffer.add_char buf '=';
  match v with
  | Json.Str s -> Buffer.add_string buf s
  | v -> Json.to_buffer buf v

(* Milestone events are forced (with everything buffered before them)
   to disk.  All dynamics.* events are milestones: each step line is
   one applied best-response move, whose search dwarfs a flush, and
   durability per step is what makes a SIGKILLed --report run leave
   every applied move in the .partial prefix (the crash-safety
   contract bin/fault_smoke.sh checks).  High-rate non-dynamics events
   stay buffered for throughput. *)
let is_milestone name =
  name = "run.summary"
  || name = "progress.heartbeat"
     (* heartbeats exist to be tailed live (bbng_cli top) and to date a
        SIGKILLed run's .partial: both need the line on disk the moment
        it is emitted, and the ticker already rate-limits them *)
  || String.length name >= 9 && String.sub name 0 9 = "dynamics."

let deliver sink name fields =
  match sink with
  | Null -> ()
  | Stderr_pretty ->
      let buf = Buffer.create 64 in
      (* render the timestamp as a compact prefix, not a field *)
      (match List.assoc_opt "ts_us" fields with
      | Some (Json.Float ts) ->
          Buffer.add_string buf (Printf.sprintf "[bbng +%.3fms] " (ts /. 1e3))
      | _ -> Buffer.add_string buf "[bbng] ");
      Buffer.add_string buf name;
      List.iter
        (fun (k, v) -> if k <> "ts_us" then pretty_field buf (k, v))
        fields;
      Buffer.add_char buf '\n';
      output_string stderr (Buffer.contents buf);
      flush stderr
  | Jsonl oc ->
      let line = Json.to_string (Json.Obj (("event", Json.Str name) :: fields)) in
      output_string oc line;
      output_char oc '\n';
      if is_milestone name then flush oc

let emit name fields =
  match Atomic.get sinks with
  | [] -> ()
  | installed ->
      (* fault probe ("sink.<event>"): lets tests and the smoke matrix
         crash a run at a chosen event — e.g. mid-flight-recording —
         and then assert the artifact is still a valid prefix *)
      if Fault.armed () then Fault.hit ("sink." ^ name);
      let fields = ("ts_us", Json.Float (now_us ())) :: fields in
      Mutex.protect out_mutex (fun () ->
          List.iter (fun s -> deliver s name fields) installed)
