(** Flight-recorder parsing: typed views of recorded dynamics runs.

    A [--report] JSONL stream doubles as a flight recording: every
    applied move is a [dynamics.step] event carrying the full move
    (player, old arcs, new arcs, costs), bracketed by a
    [dynamics.start] event (game reconstruction data: version, budgets,
    start profile, rule, schedule) and a [dynamics.outcome] event (final
    profile and verdict).  This module extracts those events back into
    plain records — ints, strings and arrays only, no game types — so
    the replay checker in [Bbng_dynamics.Replay] (which owns the game
    semantics) can re-apply and re-verify them.

    Parsing is deliberately lenient where recording may have been cut
    short: a run whose [dynamics.outcome] never arrived is returned
    with [run_outcome = None] (a valid prefix is still replayable), and
    unknown events are ignored. *)

type step = {
  index : int;           (** 1-based step counter *)
  player : int;
  old_cost : int;
  new_cost : int;
  social_cost : int;     (** diameter after the move *)
  old_targets : int array option;  (** arcs before (absent in pre-audit recordings) *)
  new_targets : int array option;  (** arcs applied *)
}

type outcome = {
  outcome : string;              (** {!Bbng_dynamics.Dynamics.outcome_name} *)
  total_steps : int;
  period : int option;           (** cycles only *)
  final_social_cost : int option;
  final_profile : string option; (** serialized final profile *)
}

type run = {
  version : string option;       (** ["MAX"] / ["SUM"] *)
  budgets : int array option;
  start_profile : string option;
  rule : string option;
  schedule : string option;
  max_steps : int option;
  meta : (string * Json.t) list; (** recorder-supplied provenance, e.g. seed *)
  steps : step list;             (** in application order *)
  run_outcome : outcome option;  (** [None] = recording was interrupted *)
}

val runs_of_events : Json.t list -> run list
(** Split an event stream (as returned by {!Trace_export.read_events})
    into its recorded dynamics runs, in order.  Non-dynamics events are
    skipped; a trailing run without an outcome is kept. *)
