(** Prometheus/OpenMetrics text snapshots of the live registries.

    {!render} aggregates the sharded {!Metrics} registry (across
    domains) plus the legacy {!Counter} and {!Histogram} registries
    into one text exposition; {!write} refreshes a [.prom] file
    crash-safely (temp + atomic rename, so a SIGKILL mid-scrape leaves
    the previous snapshot intact).  [--metrics-out] points the
    {!Progress} heartbeat at {!write}, and a future [bbng serve]
    scrape endpoint returns the same bytes.

    {!parse} and {!validate} are the self-check half: they accept
    exactly what {!render} emits (plus standard whitespace/comments),
    so tests and [bench/main.exe --validate-metrics] can round-trip a
    snapshot without an external Prometheus. *)

val sanitize : string -> string
(** Metric-name mangling: ["dynamics.steps_applied"] becomes
    ["bbng_dynamics_steps_applied"] (characters outside
    [[a-zA-Z0-9_:]] map to ['_'], everything gains the [bbng_]
    namespace prefix). *)

val escape_help : string -> string
(** Escape a [# HELP] text: backslashes and newlines. *)

val escape_label_value : string -> string
(** Escape a label value: backslashes, double quotes, newlines. *)

val unescape : string -> string
(** Inverse of the escapes above (used by the parser). *)

val render : unit -> string
(** One full exposition, ending with the [# EOF] terminator. *)

val write : string -> unit
(** [write path] renders and atomically replaces [path].  Fault probe
    [metrics.scrape] fires on entry when the harness is armed.
    @raise Sys_error as [open_out]/[Sys.rename] do. *)

(** {1 Parsing and validation} *)

type mtype = Counter_t | Gauge_t | Histogram_t | Untyped

type sample = {
  sample_name : string;
  labels : (string * string) list;
  value : float;
}

type family = {
  fam_name : string;
  fam_type : mtype;
  fam_help : string;
  samples : sample list;
}

val parse : string -> (family list, string) result
(** Syntax: families in [# TYPE] order with their samples; label
    values unescaped.  Rejects duplicate families, samples outside a
    family, and a missing [# EOF]. *)

val validate : string -> (family list, string) result
(** {!parse} plus semantic checks: counter samples are non-negative
    with a [_total]-or-bare name, histogram buckets are cumulative
    (non-decreasing in [le] order), the [+Inf] bucket equals [_count],
    and [_sum]/[_count] are present. *)
