(** The CLI's structured error taxonomy: every failure mode of every
    subcommand maps to one documented exit code (see the README's
    "Resilience & limits" table), so scripts and the fault-matrix smoke
    stage can assert on outcomes instead of scraping stderr.

    [124]/[125] are cmdliner's own usage/internal codes, documented
    here for completeness; [137] is the shell's rendering of SIGKILL
    (128 + 9), what an injected [kill] fault produces. *)

(** - [ok] ([0]);
    - [failure] ([1]): domain failure — refuted verification, failed
      certificate re-check, divergent replay;
    - [input_error] ([2]): malformed graph file, profile or JSON
      artifact (the message names the input);
    - [exhausted] ([3]): deadline/work budget expired with no usable
      degraded result;
    - [io_error] ([4]): filesystem error;
    - [fault] ([5]): an injected [raise] fault escaped;
    - [cli_error] ([124]) / [internal_error] ([125]): cmdliner's own. *)

val ok : int
val failure : int
val input_error : int
val exhausted : int
val io_error : int
val fault : int
val cli_error : int
val internal_error : int

val describe : int -> string

val all_documented : int list

val of_exn : exn -> (int * string) option
(** Map a known exception class to [(code, message)]:
    [Invalid_argument] and {!Json.Parse_error} to {!input_error},
    [Sys_error] to {!io_error}, {!Budgeted.Expired} to {!exhausted},
    {!Fault.Injected} to {!fault}; [None] for anything else (a real
    bug should still crash loudly). *)
