let counters_json () =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.snapshot ()))

let ms ns = float_of_int ns /. 1e6
let msf ns = ns /. 1e6

let spans_json () =
  (* name-sorted (Span.snapshot order) for stable report diffs *)
  Json.Obj
    (List.map
       (fun (k, (s : Span.stat)) ->
         ( k,
           Json.Obj
             [
               ("count", Json.Int s.Span.count);
               ("total_ms", Json.Float (ms s.Span.total_ns));
               ("max_ms", Json.Float (ms s.Span.max_ns));
               ("p50_ms", Json.Float (msf s.Span.p50_ns));
               ("p90_ms", Json.Float (msf s.Span.p90_ns));
               ("p99_ms", Json.Float (msf s.Span.p99_ns));
               ("minor_words", Json.Float s.Span.minor_words);
               ("major_words", Json.Float s.Span.major_words);
             ] ))
       (Span.snapshot ()))

let histograms_json () =
  Json.Obj
    (List.filter_map
       (fun (k, h) ->
         if Histogram.count h = 0 then None else Some (k, Histogram.to_json h))
       (Histogram.snapshot ()))

let provenance_fields () =
  [
    ("argv", Json.List (List.map (fun a -> Json.Str a) (Array.to_list Sys.argv)));
    ("ocaml_version", Json.Str Sys.ocaml_version);
    ("word_size", Json.Int Sys.word_size);
  ]

let summary_fields () =
  (* run_id joins the summary (and so any --report stream) back to the
     run's ledger row; deliberately NOT in provenance_fields, which is
     folded into certificates whose bytes must be run-independent *)
  (("run_id", Json.Str (Ledger.run_id ())) :: provenance_fields ())
  @ [
      ("counters", counters_json ());
      ("spans", spans_json ());
      ("histograms", histograms_json ());
      ("metrics", Metrics.to_json ());
      ("gc", Gcstats.to_json (Gcstats.since_start ()));
    ]

let print oc =
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  let spans = Span.snapshot () in
  let hists =
    List.filter (fun (_, h) -> Histogram.count h > 0) (Histogram.snapshot ())
  in
  (* eyeball order: the hottest line first — counters by count, spans by
     total time, histograms by sample count, all descending (the JSON
     renderings stay name-sorted for stable diffs) *)
  let counters =
    List.stable_sort (fun (_, a) (_, b) -> compare b a) counters
  in
  let spans =
    List.stable_sort
      (fun (_, (a : Span.stat)) (_, (b : Span.stat)) ->
        compare b.Span.total_ns a.Span.total_ns)
      spans
  in
  let hists =
    List.stable_sort
      (fun (_, a) (_, b) -> compare (Histogram.count b) (Histogram.count a))
      hists
  in
  Printf.fprintf oc "== bbng stats ==\n";
  if counters = [] && spans = [] && hists = [] then
    Printf.fprintf oc "  (no counters bumped, no spans recorded)\n"
  else begin
    let width =
      List.fold_left
        (fun acc (k, _) -> max acc (String.length k))
        0
        (counters
        @ List.map (fun (k, _) -> (k, 0)) spans
        @ List.map (fun (k, _) -> (k, 0)) hists)
    in
    if counters <> [] then begin
      Printf.fprintf oc "counters:\n";
      List.iter
        (fun (k, v) -> Printf.fprintf oc "  %-*s %d\n" width k v)
        counters
    end;
    if spans <> [] then begin
      Printf.fprintf oc
        "spans (count / total ms / p50 ms / p99 ms / max ms / minor words):\n";
      List.iter
        (fun (k, (s : Span.stat)) ->
          Printf.fprintf oc "  %-*s %d / %.3f / %.3f / %.3f / %.3f / %.0f\n"
            width k s.Span.count (ms s.Span.total_ns) (msf s.Span.p50_ns)
            (msf s.Span.p99_ns) (ms s.Span.max_ns) s.Span.minor_words)
        spans
    end;
    let hot = Profile.top (Profile.snapshot ()) in
    if hot <> [] then begin
      Printf.fprintf oc "self-time top %d (count / self ms / self minor words):\n"
        (List.length hot);
      List.iter
        (fun (path, (p : Profile.stat)) ->
          Printf.fprintf oc "  %-*s %d / %.3f / %.0f\n" width path
            p.Profile.count
            (ms p.Profile.self_ns)
            p.Profile.self_minor_words)
        hot
    end;
    if hists <> [] then begin
      Printf.fprintf oc "histograms (count / p50 / p90 / p99 / max):\n";
      List.iter
        (fun (k, h) ->
          Printf.fprintf oc "  %-*s %d / %.0f / %.0f / %.0f / %d\n" width k
            (Histogram.count h) (Histogram.quantile h 0.5)
            (Histogram.quantile h 0.9) (Histogram.quantile h 0.99)
            (Histogram.max_value h))
        hists
    end
  end;
  Gcstats.pp_line oc (Gcstats.since_start ());
  flush oc
