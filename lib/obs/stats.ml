let counters_json () =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.snapshot ()))

let ms ns = float_of_int ns /. 1e6

let spans_json () =
  Json.Obj
    (List.map
       (fun (k, (s : Span.stat)) ->
         ( k,
           Json.Obj
             [
               ("count", Json.Int s.Span.count);
               ("total_ms", Json.Float (ms s.Span.total_ns));
               ("max_ms", Json.Float (ms s.Span.max_ns));
             ] ))
       (Span.snapshot ()))

let summary_fields () =
  [ ("counters", counters_json ()); ("spans", spans_json ()) ]

let print oc =
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  let spans = Span.snapshot () in
  Printf.fprintf oc "== bbng stats ==\n";
  if counters = [] && spans = [] then
    Printf.fprintf oc "  (no counters bumped, no spans recorded)\n"
  else begin
    let width =
      List.fold_left
        (fun acc (k, _) -> max acc (String.length k))
        0
        (counters @ List.map (fun (k, _) -> (k, 0)) spans)
    in
    if counters <> [] then begin
      Printf.fprintf oc "counters:\n";
      List.iter
        (fun (k, v) -> Printf.fprintf oc "  %-*s %d\n" width k v)
        counters
    end;
    if spans <> [] then begin
      Printf.fprintf oc "spans (count / total ms / max ms):\n";
      List.iter
        (fun (k, (s : Span.stat)) ->
          Printf.fprintf oc "  %-*s %d / %.3f / %.3f\n" width k s.Span.count
            (ms s.Span.total_ns) (ms s.Span.max_ns))
        spans
    end
  end;
  flush oc
