(** Nestable wall-clock timing spans.

    Spans aggregate into a process-global table keyed by span name:
    count, total and maximum duration.  Nesting is free-form — an inner
    span's time is also counted inside every enclosing span (the table
    records durations, not an exclusive-time tree).

    Spans are {e disabled by default} and then cost one atomic load per
    {!time} call (no clock read, no allocation beyond the caller's
    closure).  [--stats] / [--report] style entry points call
    {!set_enabled}[ true]; timed sections must not change behavior
    either way.

    The aggregate table is mutex-protected, so spans may close
    concurrently from {!Bbng_core.Parallel} domains; keep spans coarse
    (per player / per phase, not per vertex). *)

type handle
(** An open span.  Handles are affine: closing twice is a no-op, and a
    handle opened while spans were disabled closes for free. *)

type stat = { count : int; total_ns : int; max_ns : int }

val enabled : unit -> bool
val set_enabled : bool -> unit

val enter : string -> handle
val exit : handle -> unit
(** Close the span and record its duration.  Unbalanced use is safe:
    closing a handle twice records it once, and a never-closed handle
    simply records nothing. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] inside a span named [name]; the span closes
    even if [f] raises. *)

val snapshot : unit -> (string * stat) list
(** All recorded spans, sorted by name. *)

val reset_all : unit -> unit
