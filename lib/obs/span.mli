(** Nestable wall-clock timing spans.

    Spans aggregate into a process-global table keyed by span name:
    count, total and maximum duration, a log-bucketed latency
    {!Histogram} (so [--stats] can report p50/p90/p99 per span family),
    and the {!Gcstats} minor/major-word allocation attributed to the
    span's scope.  Nesting is free-form — an inner span's time (and
    allocation) is also counted inside every enclosing span (the table
    records durations, not an exclusive-time tree).

    Spans are {e disabled by default} and then cost one atomic load per
    {!with_} call (no clock read, no GC capture, no histogram, no
    allocation beyond the caller's closure).  [--stats] / [--report]
    style entry points call {!set_enabled}[ true]; timed sections must
    not change behavior either way.

    While a sink is active, every span close also {!Sink.emit}s a
    ["span"] event carrying [name], [dur_us], the exact start stamp
    [t0_us] (on the same {!Sink.now_us} clock as [ts_us]), the closing
    domain [dom] and the minor-word delta [minor_w] — what
    {!Trace_export} turns into Chrome trace complete slices and
    {!Profile.of_events} re-nests into offline folded stacks.

    Every enter/exit pair also feeds {!Profile}: the profiler keeps a
    per-domain stack of open spans and attributes self-time and
    self-allocation to the full call path (see {!Profile}).

    The aggregate table is sharded per domain (the {!Metrics} pattern),
    so spans close concurrently from {!Bbng_core.Parallel} domains
    without contending; keep spans coarse (per player / per phase, not
    per vertex). *)

type handle
(** An open span.  Handles are affine: closing twice is a no-op, and a
    handle opened while spans were disabled closes for free. *)

type stat = {
  count : int;
  total_ns : int;
  max_ns : int;
  minor_words : float;  (** GC minor words allocated inside the span *)
  major_words : float;
  p50_ns : float;  (** histogram estimates, within 2x of exact *)
  p90_ns : float;
  p99_ns : float;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val enter : string -> handle
val exit : handle -> unit
(** Close the span and record its duration.  Unbalanced use is safe:
    closing a handle twice records it once, and a never-closed handle
    simply records nothing. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span named [name]; the span closes
    (recording duration, latency-histogram sample and GC delta) even if
    [f] raises. *)

val time : string -> (unit -> 'a) -> 'a
(** Alias of {!with_} (the original name; kept for instrumented call
    sites). *)

val snapshot : unit -> (string * stat) list
(** All recorded spans, sorted by name. *)

val reset_all : unit -> unit
