(** Run summaries over the counter and span tables. *)

val counters_json : unit -> Json.t
(** [Obj] of every registered counter, sorted by name. *)

val spans_json : unit -> Json.t
(** [Obj] mapping each span name to
    [{"count": _, "total_ms": _, "max_ms": _}]. *)

val summary_fields : unit -> (string * Json.t) list
(** [("counters", ...); ("spans", ...)] — the payload of a final
    [run.summary] event or a bench report. *)

val print : out_channel -> unit
(** Human-readable counter/span summary (the [--stats] output).
    Counters at zero are omitted; spans print count, total and max in
    milliseconds. *)
