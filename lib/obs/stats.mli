(** Run summaries over the counter, span, histogram and GC tables. *)

val counters_json : unit -> Json.t
(** [Obj] of every registered counter, sorted by name. *)

val spans_json : unit -> Json.t
(** [Obj] mapping each span name to
    [{"count": _, "total_ms": _, "max_ms": _, "p50_ms": _, "p90_ms": _,
      "p99_ms": _, "minor_words": _, "major_words": _}].  Name-sorted
    for stable report diffs. *)

val histograms_json : unit -> Json.t
(** [Obj] of every registered domain-value histogram with at least one
    sample ({!Histogram.to_json} per entry), sorted by name. *)

val provenance_fields : unit -> (string * Json.t) list
(** [argv], [ocaml_version] and [word_size] — stamped into
    [run.summary] so archived reports are self-describing. *)

val summary_fields : unit -> (string * Json.t) list
(** Provenance plus [("counters", ...); ("spans", ...);
    ("histograms", ...); ("metrics", ...); ("gc", ...)] — the payload
    of a final [run.summary] event or a bench report.  The [metrics]
    object is {!Metrics.to_json}: the sharded registry aggregated
    across domains. *)

val print : out_channel -> unit
(** Human-readable summary (the [--stats] output).  Counters at zero
    are omitted; counters sort by count and spans by total time, both
    descending, so the hot path is the first line read.  Spans print
    count, total, p50, p99, max and attributed minor words; a final
    [gc:] line reports the run's {!Gcstats.since_start} delta. *)
