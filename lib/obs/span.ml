type stat = {
  count : int;
  total_ns : int;
  max_ns : int;
  minor_words : float;
  major_words : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
}

type open_span = {
  name : string;
  t0 : float;
  gc0 : Gcstats.snapshot;
  ptok : Profile.token;
  mutable closed : bool;
}

type handle = Disabled | Open of open_span

type cell = {
  mutable count : int;
  mutable total_ns : int;
  mutable max_ns : int;
  mutable minor_words : float;
  mutable major_words : float;
  (* per-family latency distribution; unregistered so the domain-value
     histogram listing stays free of span duplicates *)
  hist : Histogram.t;
}

(* The aggregate table is sharded per domain (same Domain.self-indexed
   pattern as Metrics), so Parallel workers closing spans concurrently
   never contend on one global mutex.  Snapshots merge the shards:
   counts and totals sum, max takes the max, and quantiles come from
   the element-wise summed histogram buckets — the multi-domain totals
   must equal the single-domain totals (pinned by test). *)
type shard = { tbl : (string, cell) Hashtbl.t; mu : Mutex.t }

let shards = 8
let shard_index () = (Domain.self () :> int) land (shards - 1)

let table =
  Array.init shards (fun _ -> { tbl = Hashtbl.create 32; mu = Mutex.create () })

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let record name ns ~gc =
  let sh = table.(shard_index ()) in
  Mutex.protect sh.mu (fun () ->
      let cell =
        match Hashtbl.find_opt sh.tbl name with
        | Some c -> c
        | None ->
            let c =
              {
                count = 0;
                total_ns = 0;
                max_ns = 0;
                minor_words = 0.;
                major_words = 0.;
                hist = Histogram.unregistered name;
              }
            in
            Hashtbl.add sh.tbl name c;
            c
      in
      cell.count <- cell.count + 1;
      cell.total_ns <- cell.total_ns + ns;
      if ns > cell.max_ns then cell.max_ns <- ns;
      (match (gc : Gcstats.delta option) with
      | Some d ->
          cell.minor_words <- cell.minor_words +. d.Gcstats.minor_words;
          cell.major_words <- cell.major_words +. d.Gcstats.major_words
      | None -> ());
      Histogram.record cell.hist ns)

(* span entry doubles as a fault probe point ("span.<name>"): one
   atomic load when nothing is armed *)
let enter name =
  if Fault.armed () then Fault.hit ("span." ^ name);
  if not (Atomic.get enabled_flag) then Disabled
  else
    Open
      {
        name;
        t0 = Unix.gettimeofday ();
        gc0 = Gcstats.capture ();
        ptok = Profile.enter name;
        closed = false;
      }

let exit = function
  | Disabled -> ()
  | Open span ->
      if not span.closed then begin
        span.closed <- true;
        let ns = int_of_float ((Unix.gettimeofday () -. span.t0) *. 1e9) in
        let ns = max 0 ns in
        let d = Gcstats.since span.gc0 in
        record span.name ns ~gc:(Some d);
        (* the profiler sees the same integers the flat table recorded,
           which is what makes folded-total == flat-total exact *)
        Profile.close span.ptok ~wall_ns:ns ~minor_words:d.Gcstats.minor_words;
        (* a sinked run also sees each span close as an event, which is
           what Trace_export turns into Chrome complete slices.  t0_us
           is the span's exact start on the shared event clock (ts_us
           lags the close by the emit path, so ts - dur cannot recover
           it); dom and minor_w let `bbng_cli flame` re-nest per-domain
           stacks and attribute allocation offline. *)
        if Sink.active () then
          Sink.emit "span"
            [
              ("name", Json.Str span.name);
              ("dur_us", Json.Float (float_of_int ns /. 1e3));
              ("t0_us", Json.Float (Sink.to_us span.t0));
              ("dom", Json.Int (Domain.self () :> int));
              ("minor_w", Json.Float d.Gcstats.minor_words);
            ]
      end

let with_ name f =
  if not (Atomic.get enabled_flag) then begin
    if Fault.armed () then Fault.hit ("span." ^ name);
    f ()
  end
  else begin
    let h = enter name in
    Fun.protect ~finally:(fun () -> exit h) f
  end

let time = with_

let snapshot () =
  (* merge per-shard cells by name without stopping writers *)
  let merged : (string, cell list ref) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun sh ->
      Mutex.protect sh.mu (fun () ->
          Hashtbl.iter
            (fun name c ->
              match Hashtbl.find_opt merged name with
              | Some l -> l := c :: !l
              | None -> Hashtbl.add merged name (ref [ c ]))
            sh.tbl))
    table;
  let all =
    Hashtbl.fold
      (fun name cells acc ->
        let count = List.fold_left (fun a c -> a + c.count) 0 !cells in
        let total_ns = List.fold_left (fun a c -> a + c.total_ns) 0 !cells in
        let max_ns = List.fold_left (fun a c -> max a c.max_ns) 0 !cells in
        let minor_words =
          List.fold_left (fun a c -> a +. c.minor_words) 0. !cells
        in
        let major_words =
          List.fold_left (fun a c -> a +. c.major_words) 0. !cells
        in
        let counts = Histogram.merge_counts (List.map (fun c -> c.hist) !cells) in
        let q = Histogram.quantile_of_counts ~max_value:max_ns counts in
        let s : stat =
          {
            count;
            total_ns;
            max_ns;
            minor_words;
            major_words;
            p50_ns = q 0.5;
            p90_ns = q 0.9;
            p99_ns = q 0.99;
          }
        in
        (name, s) :: acc)
      merged []
  in
  List.sort compare all

let reset_all () =
  Array.iter (fun sh -> Mutex.protect sh.mu (fun () -> Hashtbl.reset sh.tbl)) table
