type stat = { count : int; total_ns : int; max_ns : int }

type open_span = { name : string; t0 : float; mutable closed : bool }
type handle = Disabled | Open of open_span

type cell = { mutable count : int; mutable total_ns : int; mutable max_ns : int }

let table : (string, cell) Hashtbl.t = Hashtbl.create 32
let table_mutex = Mutex.create ()
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let record name ns =
  Mutex.protect table_mutex (fun () ->
      let cell =
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
            let c = { count = 0; total_ns = 0; max_ns = 0 } in
            Hashtbl.add table name c;
            c
      in
      cell.count <- cell.count + 1;
      cell.total_ns <- cell.total_ns + ns;
      if ns > cell.max_ns then cell.max_ns <- ns)

let enter name =
  if not (Atomic.get enabled_flag) then Disabled
  else Open { name; t0 = Unix.gettimeofday (); closed = false }

let exit = function
  | Disabled -> ()
  | Open span ->
      if not span.closed then begin
        span.closed <- true;
        let ns = int_of_float ((Unix.gettimeofday () -. span.t0) *. 1e9) in
        record span.name (max 0 ns)
      end

let time name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let h = enter name in
    Fun.protect ~finally:(fun () -> exit h) f
  end

let snapshot () =
  let all =
    Mutex.protect table_mutex (fun () ->
        Hashtbl.fold
          (fun name c acc ->
            let s : stat =
              { count = c.count; total_ns = c.total_ns; max_ns = c.max_ns }
            in
            (name, s) :: acc)
          table [])
  in
  List.sort compare all

let reset_all () =
  Mutex.protect table_mutex (fun () -> Hashtbl.reset table)
