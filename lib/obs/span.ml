type stat = {
  count : int;
  total_ns : int;
  max_ns : int;
  minor_words : float;
  major_words : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
}

type open_span = {
  name : string;
  t0 : float;
  gc0 : Gcstats.snapshot;
  mutable closed : bool;
}

type handle = Disabled | Open of open_span

type cell = {
  mutable count : int;
  mutable total_ns : int;
  mutable max_ns : int;
  mutable minor_words : float;
  mutable major_words : float;
  (* per-family latency distribution; unregistered so the domain-value
     histogram listing stays free of span duplicates *)
  hist : Histogram.t;
}

let table : (string, cell) Hashtbl.t = Hashtbl.create 32
let table_mutex = Mutex.create ()
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let record name ns ~gc =
  Mutex.protect table_mutex (fun () ->
      let cell =
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
            let c =
              {
                count = 0;
                total_ns = 0;
                max_ns = 0;
                minor_words = 0.;
                major_words = 0.;
                hist = Histogram.unregistered name;
              }
            in
            Hashtbl.add table name c;
            c
      in
      cell.count <- cell.count + 1;
      cell.total_ns <- cell.total_ns + ns;
      if ns > cell.max_ns then cell.max_ns <- ns;
      (match (gc : Gcstats.delta option) with
      | Some d ->
          cell.minor_words <- cell.minor_words +. d.Gcstats.minor_words;
          cell.major_words <- cell.major_words +. d.Gcstats.major_words
      | None -> ());
      Histogram.record cell.hist ns)

(* span entry doubles as a fault probe point ("span.<name>"): one
   atomic load when nothing is armed *)
let enter name =
  if Fault.armed () then Fault.hit ("span." ^ name);
  if not (Atomic.get enabled_flag) then Disabled
  else
    Open
      { name; t0 = Unix.gettimeofday (); gc0 = Gcstats.capture (); closed = false }

let exit = function
  | Disabled -> ()
  | Open span ->
      if not span.closed then begin
        span.closed <- true;
        let ns = int_of_float ((Unix.gettimeofday () -. span.t0) *. 1e9) in
        let ns = max 0 ns in
        record span.name ns ~gc:(Some (Gcstats.since span.gc0));
        (* a sinked run also sees each span close as an event, which is
           what Trace_export turns into Chrome complete slices *)
        if Sink.active () then
          Sink.emit "span"
            [
              ("name", Json.Str span.name);
              ("dur_us", Json.Float (float_of_int ns /. 1e3));
            ]
      end

let with_ name f =
  if not (Atomic.get enabled_flag) then begin
    if Fault.armed () then Fault.hit ("span." ^ name);
    f ()
  end
  else begin
    let h = enter name in
    Fun.protect ~finally:(fun () -> exit h) f
  end

let time = with_

let snapshot () =
  let all =
    Mutex.protect table_mutex (fun () ->
        Hashtbl.fold
          (fun name c acc ->
            let s : stat =
              {
                count = c.count;
                total_ns = c.total_ns;
                max_ns = c.max_ns;
                minor_words = c.minor_words;
                major_words = c.major_words;
                p50_ns = Histogram.quantile c.hist 0.5;
                p90_ns = Histogram.quantile c.hist 0.9;
                p99_ns = Histogram.quantile c.hist 0.99;
              }
            in
            (name, s) :: acc)
          table [])
  in
  List.sort compare all

let reset_all () =
  Mutex.protect table_mutex (fun () -> Hashtbl.reset table)
