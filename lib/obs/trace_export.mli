(** Offline consumers of recorded JSONL event streams.

    A [--report] file is one JSON object per line, each stamped with
    [ts_us] by {!Sink.emit}.  This module re-reads such a stream and
    either converts it to the Chrome trace-event format (openable in
    Perfetto / [chrome://tracing]) or pretty-prints the run without
    re-running it — the [bbng_cli report] subcommand is a thin wrapper
    over these two functions. *)

val read_events : in_channel -> Json.t list * int
(** Read a JSONL stream to end-of-file.  Returns the event objects (in
    order) and the count of skipped lines — lines that are not JSON or
    carry no ["event"] field are skipped, not fatal, so a report piped
    through stdout alongside normal CLI output still loads. *)

val to_chrome : Json.t list -> Json.t
(** Chrome trace-event JSON:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Every record
    carries [name]/[ph]/[ts]/[dur] (plus [pid]/[tid]/[args]): ["span"]
    events become [ph:"X"] complete slices positioned by their close
    timestamp minus duration, every other event becomes a [ph:"i"]
    instant, [dynamics.step] events additionally feed a [ph:"C"]
    [social_cost] counter track, and [progress.heartbeat] events feed
    a per-task [work_done:<task>] counter track — the run's progress
    curve next to its spans. *)

val summarize : Json.t list -> out_channel -> unit
(** Pretty-print a recorded run: event tally, time range, dynamics
    outcomes (individually when at most five, and always as an
    aggregated section — outcome counts by rule, step statistics and a
    power-of-two steps histogram), the last [progress.heartbeat] per
    task with its achieved overall rate (on a crash-truncated
    [.partial] this dates the death to within one tick), and the final
    [run.summary] re-rendered (provenance, counters by count, spans by
    total time, GC delta). *)
