(* Call-path profiling on top of Span: each domain keeps its stack of
   open spans, and closing a span attributes SELF time (wall minus the
   wall of its direct children) and SELF allocation (minor words minus
   the children's minor words) to the full call path "a;b;c".

   Attribution telescopes exactly: a parent accumulates each child's
   recorded integer wall/minor into [child_ns]/[child_minor], so the
   sum of self values over a well-nested subtree equals the root's
   recorded wall to the nanosecond.  That is what lets tests pin
   "folded per-name totals == flat Span totals" as an equality, not an
   approximation.

   The accumulation table is sharded per domain (same Domain.self
   pattern as Metrics) so Parallel workers record without contending;
   the open-span stacks live in domain-local storage and never need a
   lock at all. *)

type stat = { count : int; self_ns : int; self_minor_words : float }

(* --- per-domain open-span stacks --- *)

type frame = {
  f_path : string;
  f_dom : int;
  mutable child_ns : int;
  mutable child_minor : float;
  (* cleared when the frame leaves its stack — a later (out-of-order or
     cross-domain) close then only records, never touches a stack *)
  mutable on_stack : bool;
}

type token = frame option

type dstate = {
  mutable stack : frame list;
  (* path prefix for frames opened at depth 0: Parallel workers set it
     to the spawning domain's current path, so a fan-out's spans stay
     attributed under the caller's call path *)
  mutable base : string;
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; base = "" })

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- sharded path table --- *)

type cell = {
  mutable c_count : int;
  mutable c_self_ns : int;
  mutable c_self_minor : float;
}

let shards = 8
let shard_index () = (Domain.self () :> int) land (shards - 1)

type shard = { tbl : (string, cell) Hashtbl.t; mu : Mutex.t }

let table = Array.init shards (fun _ -> { tbl = Hashtbl.create 32; mu = Mutex.create () })

let record path ~self_ns ~self_minor =
  let sh = table.(shard_index ()) in
  Mutex.protect sh.mu (fun () ->
      let c =
        match Hashtbl.find_opt sh.tbl path with
        | Some c -> c
        | None ->
            let c = { c_count = 0; c_self_ns = 0; c_self_minor = 0. } in
            Hashtbl.add sh.tbl path c;
            c
      in
      c.c_count <- c.c_count + 1;
      c.c_self_ns <- c.c_self_ns + self_ns;
      c.c_self_minor <- c.c_self_minor +. self_minor)

(* --- enter / close (driven by Span) --- *)

let enter name =
  if not (Atomic.get enabled_flag) then None
  else begin
    let st = Domain.DLS.get dls in
    let parent =
      match st.stack with f :: _ -> f.f_path | [] -> st.base
    in
    let path = if parent = "" then name else parent ^ ";" ^ name in
    let f =
      {
        f_path = path;
        f_dom = (Domain.self () :> int);
        child_ns = 0;
        child_minor = 0.;
        on_stack = true;
      }
    in
    st.stack <- f :: st.stack;
    Some f
  end

let close tok ~wall_ns ~minor_words =
  match tok with
  | None -> ()
  | Some f ->
      record f.f_path ~self_ns:(wall_ns - f.child_ns)
        ~self_minor:(minor_words -. f.child_minor);
      if f.on_stack && f.f_dom = (Domain.self () :> int) then begin
        let st = Domain.DLS.get dls in
        if List.memq f st.stack then begin
          (* pop down to [f]; anything above it was opened later but is
             being closed out of order — detach those frames so their
             own close records to their (already fixed) path without
             touching the stack.  The stack itself stays consistent. *)
          let rec pop = function
            | g :: rest ->
                g.on_stack <- false;
                if g == f then rest else pop rest
            | [] -> []
          in
          st.stack <- pop st.stack;
          match st.stack with
          | p :: _ ->
              p.child_ns <- p.child_ns + wall_ns;
              p.child_minor <- p.child_minor +. minor_words
          | [] -> ()
        end
        else f.on_stack <- false
      end

let current_path () =
  let st = Domain.DLS.get dls in
  match st.stack with f :: _ -> f.f_path | [] -> st.base

let stack_depth () = List.length (Domain.DLS.get dls).stack

let with_root base f =
  let st = Domain.DLS.get dls in
  let saved_stack = st.stack and saved_base = st.base in
  st.stack <- [];
  st.base <- base;
  Fun.protect
    ~finally:(fun () ->
      (* frames the scope leaked stay attributable but leave the stack *)
      List.iter (fun g -> g.on_stack <- false) st.stack;
      st.stack <- saved_stack;
      st.base <- saved_base)
    f

(* --- snapshots and folded rendering --- *)

let snapshot () =
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun sh ->
      Mutex.protect sh.mu (fun () ->
          Hashtbl.iter
            (fun path c ->
              match Hashtbl.find_opt merged path with
              | Some m ->
                  m.c_count <- m.c_count + c.c_count;
                  m.c_self_ns <- m.c_self_ns + c.c_self_ns;
                  m.c_self_minor <- m.c_self_minor +. c.c_self_minor
              | None ->
                  Hashtbl.add merged path
                    {
                      c_count = c.c_count;
                      c_self_ns = c.c_self_ns;
                      c_self_minor = c.c_self_minor;
                    })
            sh.tbl))
    table;
  List.sort compare
    (Hashtbl.fold
       (fun path c acc ->
         ( path,
           {
             count = c.c_count;
             self_ns = c.c_self_ns;
             self_minor_words = c.c_self_minor;
           } )
         :: acc)
       merged [])

let reset_all () =
  Array.iter (fun sh -> Mutex.protect sh.mu (fun () -> Hashtbl.reset sh.tbl)) table

(* Per-name rollup of a path snapshot: a name's inclusive total is the
   sum of self values over every path it appears on, counted once per
   occurrence (so recursive spans — "a;b;a" — roll up exactly like the
   flat table, which records every close).  Count is closes, i.e. paths
   that END in the name. *)
let name_totals snap =
  let tbl : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
        let c = { c_count = 0; c_self_ns = 0; c_self_minor = 0. } in
        Hashtbl.add tbl name c;
        c
  in
  List.iter
    (fun (path, (s : stat)) ->
      let segs = String.split_on_char ';' path in
      (match List.rev segs with
      | last :: _ -> (get last).c_count <- (get last).c_count + s.count
      | [] -> ());
      List.iter
        (fun name ->
          let c = get name in
          c.c_self_ns <- c.c_self_ns + s.self_ns;
          c.c_self_minor <- c.c_self_minor +. s.self_minor_words)
        segs)
    snap;
  List.sort compare
    (Hashtbl.fold
       (fun name c acc ->
         ( name,
           {
             count = c.c_count;
             self_ns = c.c_self_ns;
             self_minor_words = c.c_self_minor;
           } )
         :: acc)
       tbl [])

type flavor = Wall_ns | Minor_words

let folded_lines flavor snap =
  List.map
    (fun (path, (s : stat)) ->
      match flavor with
      | Wall_ns -> Printf.sprintf "%s %d" path s.self_ns
      | Minor_words -> Printf.sprintf "%s %.0f" path s.self_minor_words)
    snap

let alloc_path path =
  if Filename.check_suffix path ".folded" then
    Filename.chop_suffix path ".folded" ^ ".alloc.folded"
  else path ^ ".alloc"

(* [profile.export] is the fault probe the smoke matrix kills at: a
   SIGKILL here must leave no .folded at all (the writes below go
   through Atomic_io, so a kill mid-write leaves only a temp file) *)
let write_folded path =
  if Fault.armed () then Fault.hit "profile.export";
  let snap = snapshot () in
  let dump flavor path =
    Atomic_io.write_file path (fun oc ->
        List.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n')
          (folded_lines flavor snap))
  in
  dump Wall_ns path;
  dump Minor_words (alloc_path path)

(* --- offline reconstruction from recorded span events --- *)

let num_field k j =
  match Json.member k j with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

type node = {
  n_name : string;
  n_start : float;
  n_ns : int;
  n_minor : float;
  mutable n_children : node list;
}

(* Rebuild the span tree of one domain from its close events (already
   in close order: a parent's event always follows its children's).
   Classic folded-stack reconstruction: when a close arrives, every
   pending subtree that STARTED after it is one of its children. *)
let tree_of_closes closes =
  let pending = ref [] in
  let roots = ref [] in
  List.iter
    (fun (name, start, ns, minor) ->
      let node =
        { n_name = name; n_start = start; n_ns = ns; n_minor = minor; n_children = [] }
      in
      let rec claim = function
        | top :: rest when top.n_start >= start ->
            node.n_children <- top :: node.n_children;
            claim rest
        | rest -> rest
      in
      pending := node :: claim !pending)
    closes;
  (* anything still pending is a top-level span *)
  roots := List.rev !pending;
  !roots

let of_events events =
  let by_dom : (int, (string * float * int * float) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let dom_order = ref [] in
  List.iter
    (fun j ->
      match Json.member "event" j with
      | Some (Json.Str "span") -> (
          match (Json.member "name" j, num_field "dur_us" j) with
          | Some (Json.Str name), Some dur_us ->
              let ts = Option.value ~default:0. (num_field "ts_us" j) in
              (* recordings made by this library carry the span's own
                 start stamp; older ones fall back to close - duration *)
              let start =
                Option.value ~default:(ts -. dur_us) (num_field "t0_us" j)
              in
              let ns = int_of_float (Float.round (dur_us *. 1e3)) in
              let minor = Option.value ~default:0. (num_field "minor_w" j) in
              let dom =
                match Json.member "dom" j with
                | Some (Json.Int d) -> d
                | _ -> 0
              in
              let bucket =
                match Hashtbl.find_opt by_dom dom with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.add by_dom dom l;
                    dom_order := dom :: !dom_order;
                    l
              in
              bucket := (name, start, ns, minor) :: !bucket
          | _ -> ())
      | _ -> ())
    events;
  let acc : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  let add path ~self_ns ~self_minor =
    let c =
      match Hashtbl.find_opt acc path with
      | Some c -> c
      | None ->
          let c = { c_count = 0; c_self_ns = 0; c_self_minor = 0. } in
          Hashtbl.add acc path c;
          c
    in
    c.c_count <- c.c_count + 1;
    c.c_self_ns <- c.c_self_ns + self_ns;
    c.c_self_minor <- c.c_self_minor +. self_minor
  in
  let rec walk prefix node =
    let path = if prefix = "" then node.n_name else prefix ^ ";" ^ node.n_name in
    let child_ns = List.fold_left (fun a c -> a + c.n_ns) 0 node.n_children in
    let child_minor =
      List.fold_left (fun a c -> a +. c.n_minor) 0. node.n_children
    in
    add path ~self_ns:(node.n_ns - child_ns)
      ~self_minor:(node.n_minor -. child_minor);
    List.iter (walk path) node.n_children
  in
  List.iter
    (fun dom ->
      let closes = List.rev !(Hashtbl.find by_dom dom) in
      List.iter (walk "") (tree_of_closes closes))
    (List.rev !dom_order);
  List.sort compare
    (Hashtbl.fold
       (fun path c acc ->
         ( path,
           {
             count = c.c_count;
             self_ns = c.c_self_ns;
             self_minor_words = c.c_self_minor;
           } )
         :: acc)
       acc [])

(* top self-time paths, for Stats.print and report --summarize *)
let top ?(limit = 10) snap =
  let sorted =
    List.stable_sort
      (fun (_, a) (_, b) -> compare b.self_ns a.self_ns)
      snap
  in
  List.filteri (fun i _ -> i < limit) sorted
