(* Append-only run index: one JSONL line per run, written once at exit
   through Atomic_io.append_line.  The producing side is a process-global
   pending row (context, outcome, exit code, metrics, artifact paths)
   that instrumented layers fill in as the run unfolds; the consuming
   side is a tolerant parser that skips — never raises on — torn lines
   and rows written by newer binaries. *)

let env_var = "BBNG_LEDGER"
let default_file = "BBNG_ledger.jsonl"
let schema_version = 1

let resolve_file () =
  match Sys.getenv_opt env_var with
  | Some "" | Some "off" | Some "none" | Some "0" -> None
  | Some p -> Some p
  | None -> Some default_file

let c_appends = Counter.make "ledger.appends"
let c_skipped = Counter.make "ledger.rows_skipped"

(* --- rows --- *)

type row = {
  run_id : string;
  ts : string;
  tool : string;
  subcommand : string;
  argv : string list;
  outcome : string;
  exit_code : int;
  metrics : (string * Json.t) list;
  counters : (string * int) list;
  artifacts : string list;
  report : string option;
  report_digest : string option;
  extra : (string * Json.t) list;
}

let known_keys =
  [
    "schema"; "run_id"; "ts"; "tool"; "subcommand"; "argv"; "outcome";
    "exit_code"; "metrics"; "counters"; "artifacts"; "report";
    "report_digest";
  ]

let row_to_json r =
  let opt k = function None -> [] | Some v -> [ (k, Json.Str v) ] in
  Json.Obj
    ([
       ("schema", Json.Int schema_version);
       ("run_id", Json.Str r.run_id);
       ("ts", Json.Str r.ts);
       ("tool", Json.Str r.tool);
       ("subcommand", Json.Str r.subcommand);
       ("argv", Json.List (List.map (fun a -> Json.Str a) r.argv));
       ("outcome", Json.Str r.outcome);
       ("exit_code", Json.Int r.exit_code);
       ("metrics", Json.Obj r.metrics);
       ("counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
       ("artifacts", Json.List (List.map (fun a -> Json.Str a) r.artifacts));
     ]
    @ opt "report" r.report
    @ opt "report_digest" r.report_digest
    @ r.extra)

(* Forward-compat contract: a row is anything with a string run_id.
   Known fields of the wrong shape (a newer schema repurposing a key)
   are preserved verbatim in [extra] rather than dropped, so a
   load-and-rewrite by an old binary never loses a newer binary's
   data.  Unknown fields ride along in [extra] the same way. *)
let row_of_json j =
  match j with
  | Json.Obj fields -> (
      match List.assoc_opt "run_id" fields with
      | Some (Json.Str run_id) ->
          let misfit = ref [] in
          let str k d =
            match List.assoc_opt k fields with
            | Some (Json.Str s) -> s
            | Some v ->
                misfit := (k, v) :: !misfit;
                d
            | None -> d
          in
          let int k d =
            match List.assoc_opt k fields with
            | Some (Json.Int i) -> i
            | Some v ->
                misfit := (k, v) :: !misfit;
                d
            | None -> d
          in
          let str_opt k =
            match List.assoc_opt k fields with
            | Some (Json.Str s) -> Some s
            | Some v ->
                misfit := (k, v) :: !misfit;
                None
            | None -> None
          in
          let str_list k =
            match List.assoc_opt k fields with
            | Some (Json.List l) ->
                List.filter_map
                  (function Json.Str s -> Some s | _ -> None)
                  l
            | Some v ->
                misfit := (k, v) :: !misfit;
                []
            | None -> []
          in
          let obj k =
            match List.assoc_opt k fields with
            | Some (Json.Obj o) -> o
            | Some v ->
                misfit := (k, v) :: !misfit;
                []
            | None -> []
          in
          let metrics = obj "metrics" in
          let counters =
            List.filter_map
              (function k, Json.Int v -> Some (k, v) | _ -> None)
              (obj "counters")
          in
          let unknown =
            List.filter (fun (k, _) -> not (List.mem k known_keys)) fields
          in
          (* bound before the record so every misfit is collected first
             (record field evaluation order is unspecified) *)
          let ts = str "ts" "" in
          let tool = str "tool" "?" in
          let subcommand = str "subcommand" "?" in
          let argv = str_list "argv" in
          let outcome = str "outcome" "?" in
          (* -1 = unknown, matching recovered rows: an absent or
             repurposed exit_code must not read as success *)
          let exit_code = int "exit_code" (-1) in
          let artifacts = str_list "artifacts" in
          let report = str_opt "report" in
          let report_digest = str_opt "report_digest" in
          Some
            {
              run_id;
              ts;
              tool;
              subcommand;
              argv;
              outcome;
              exit_code;
              metrics;
              counters;
              artifacts;
              report;
              report_digest;
              extra = unknown @ List.rev !misfit;
            }
      | _ -> None)
  | _ -> None

let numeric_metrics r =
  List.filter_map
    (fun (k, v) ->
      match v with
      | Json.Int i -> Some (k, float_of_int i)
      | Json.Float f -> Some (k, f)
      | _ -> None)
    r.metrics

(* --- reading --- *)

(* A referenced artifact is alive if its committed file exists OR its
   .partial sibling does: a checkpoint mid-campaign (census shards, an
   interrupted recording) is resumable state, not garbage — `runs gc`
   must never prune the row that points at it. *)
let artifact_live path =
  Sys.file_exists path || Sys.file_exists (Atomic_io.partial_path path)

let load ?file () =
  let file =
    match file with Some f -> f | None -> Option.value (resolve_file ()) ~default:default_file
  in
  match open_in file with
  | exception Sys_error _ -> ([], 0)
  | ic ->
      let rows = ref [] and skipped = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match row_of_json (Json.of_string line) with
             | Some r -> rows := r :: !rows
             | None ->
                 Counter.bump c_skipped;
                 incr skipped
             | exception Json.Parse_error _ ->
                 Counter.bump c_skipped;
                 incr skipped
         done
       with End_of_file -> ());
      close_in_noerr ic;
      (List.rev !rows, !skipped)

(* --- the pending row of the current process --- *)

let utc_timestamp () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let the_run_id =
  lazy
    (let seed =
       Printf.sprintf "%s|%d|%f"
         (String.concat "\x00" (Array.to_list Sys.argv))
         (Unix.getpid ()) (Unix.gettimeofday ())
     in
     let tag = String.sub (Digest.to_hex (Digest.string seed)) 0 6 in
     let t = Unix.gmtime (Unix.time ()) in
     Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ-%d-%s" (t.Unix.tm_year + 1900)
       (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
       t.Unix.tm_sec (Unix.getpid ()) tag)

let run_id () = Lazy.force the_run_id

let enabled = ref false
let state_tool = ref "bbng"
let state_sub = ref ""
let state_outcome : string option ref = ref None
let state_exit = ref 0
let state_metrics : (string * Json.t) list ref = ref []
let state_artifacts : string list ref = ref []
let state_report : string option ref = ref None
let appended = ref false

let note_artifact path =
  if !enabled && not (List.mem path !state_artifacts) then
    state_artifacts := !state_artifacts @ [ path ]

let set_context ~tool ~subcommand =
  state_tool := tool;
  state_sub := subcommand;
  enabled := true;
  (* from here on, every Atomic_io commit lands in the artifact
     inventory of this run's row *)
  Atomic_io.set_commit_hook note_artifact

let note_report path = if path <> "-" then state_report := Some path
let note_outcome s = state_outcome := Some s
let note_exit c = state_exit := c
let disable () = enabled := false

let add_metric k v =
  state_metrics := List.remove_assoc k !state_metrics @ [ (k, v) ]

let append_row ?file row =
  match
    match file with Some f -> Some f | None -> resolve_file ()
  with
  | None -> ()
  | Some path -> (
      match Atomic_io.append_line path (Json.to_string (row_to_json row)) with
      | () -> Counter.bump c_appends
      | exception (Sys_error _ | Unix.Unix_error _) -> ())

let current_row () =
  let report, digest =
    match !state_report with
    | None -> (None, None)
    | Some p ->
        (* a dirty exit leaves the stream as .partial; the row records
           whichever of the two actually exists, with its digest, so the
           index entry joins to the bytes on disk *)
        let actual =
          if Sys.file_exists p then Some p
          else
            let pp = Atomic_io.partial_path p in
            if Sys.file_exists pp then Some pp else None
        in
        (match actual with
        | None -> (Some p, None)
        | Some f ->
            ( Some f,
              (try Some (Digest.to_hex (Digest.file f)) with Sys_error _ -> None)
            ))
  in
  let artifacts =
    match report with
    | Some f when not (List.mem f !state_artifacts) -> !state_artifacts @ [ f ]
    | _ -> !state_artifacts
  in
  {
    run_id = run_id ();
    ts = utc_timestamp ();
    tool = !state_tool;
    subcommand = !state_sub;
    argv = Array.to_list Sys.argv;
    outcome =
      (match !state_outcome with
      | Some s -> s
      | None -> if !state_exit = 0 then "ok" else "error");
    exit_code = !state_exit;
    metrics = !state_metrics;
    counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ());
    artifacts;
    report;
    report_digest = digest;
    extra = [];
  }

let append_current () =
  if !enabled && not !appended then begin
    appended := true;
    append_row (current_row ())
  end

(* --- rebuild from artifacts --- *)

let last_event name events =
  List.fold_left
    (fun acc j ->
      match Json.member "event" j with
      | Some (Json.Str n) when n = name -> Some j
      | _ -> acc)
    None events

let of_report_events ~path events =
  let summary = last_event "run.summary" events in
  let outcome_ev = last_event "dynamics.outcome" events in
  let str_field k j =
    match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
  in
  let run_id =
    match Option.bind summary (str_field "run_id") with
    | Some id -> id
    | None ->
        (* pre-ledger recordings carry no id; a digest-derived one is
           stable across rebuilds of the same bytes *)
        let d =
          try Digest.to_hex (Digest.file path)
          with Sys_error _ -> Digest.to_hex (Digest.string path)
        in
        "recovered-" ^ String.sub d 0 12
  in
  let argv =
    match Option.bind summary (Json.member "argv") with
    | Some (Json.List l) ->
        List.filter_map (function Json.Str s -> Some s | _ -> None) l
    | _ -> []
  in
  let subcommand =
    match argv with
    | _exe :: a :: _ when a <> "" && a.[0] <> '-' -> a
    | _ -> "?"
  in
  let counters =
    match Option.bind summary (Json.member "counters") with
    | Some (Json.Obj o) ->
        List.filter_map
          (function k, Json.Int v when v <> 0 -> Some (k, v) | _ -> None)
          o
    | _ -> []
  in
  let metric k j =
    match Json.member k j with
    | Some (Json.Int _ as v) | Some (Json.Float _ as v) -> Some v
    | _ -> None
  in
  let metrics =
    match outcome_ev with
    | None -> []
    | Some j ->
        List.filter_map
          (fun (name, key) ->
            Option.map (fun v -> (name, v)) (metric key j))
          [
            ("dynamics.final_social_cost", "social_cost");
            ("dynamics.steps", "steps");
            ("dynamics.max_regret", "max_regret");
          ]
        @
        (match str_field "diagnosis" j with
        | Some d -> [ ("dynamics.diagnosis", Json.Str d) ]
        | None -> [])
  in
  let ts =
    match Unix.stat path with
    | st ->
        let t = Unix.gmtime st.Unix.st_mtime in
        Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
          (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
          t.Unix.tm_sec
    | exception Unix.Unix_error _ -> ""
  in
  let outcome =
    match outcome_ev with
    | Some j -> Option.value (str_field "outcome" j) ~default:"ok"
    | None -> if summary <> None then "ok" else "interrupted"
  in
  {
    run_id;
    ts;
    tool = "recovered";
    subcommand;
    argv;
    outcome;
    exit_code = (if summary <> None then 0 else -1);
    metrics;
    counters;
    artifacts = [ path ];
    report = Some path;
    report_digest =
      (try Some (Digest.to_hex (Digest.file path)) with Sys_error _ -> None);
    extra = [];
  }

let scan_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let events, _skipped =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Trace_export.read_events ic)
      in
      if events = [] then None else Some (of_report_events ~path events)

let rebuild ?file ~dirs () =
  let file =
    match file with
    | Some f -> f
    | None -> Option.value (resolve_file ()) ~default:default_file
  in
  let ledger_base = Filename.basename file in
  let candidates =
    List.concat_map
      (fun dir ->
        match Sys.readdir dir with
        | exception Sys_error _ -> []
        | names ->
            let names = Array.to_list names in
            (* finals before partials, so when both exist for one run
               the committed bytes win the run_id slot *)
            let keep suffix =
              List.filter_map
                (fun n ->
                  if
                    Filename.check_suffix n suffix
                    && n <> ledger_base
                    && n <> ledger_base ^ ".partial"
                    && n <> "BENCH_history.jsonl"
                  then Some (Filename.concat dir n)
                  else None)
                (List.sort compare names)
            in
            keep ".jsonl" @ keep ".jsonl.partial")
      dirs
  in
  let existing, dropped = load ~file () in
  let seen = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace seen r.run_id ()) existing;
  let recovered =
    List.filter_map
      (fun p ->
        match scan_file p with
        | Some r when not (Hashtbl.mem seen r.run_id) ->
            Hashtbl.replace seen r.run_id ();
            Some r
        | _ -> None)
      candidates
  in
  let merged =
    List.stable_sort (fun a b -> compare a.ts b.ts) (existing @ recovered)
  in
  Atomic_io.write_file file (fun oc ->
      List.iter
        (fun r ->
          output_string oc (Json.to_string (row_to_json r));
          output_char oc '\n')
        merged);
  (List.length existing, List.length recovered, dropped)
