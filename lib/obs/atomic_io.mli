(** Crash-safe artifact IO: temp file + atomic rename.

    Two commit protocols, matching the two artifact shapes:

    - {!write_file}: whole-file artifacts (certificates, BENCH_*.json
      reports).  The payload lands in [path ^ ".tmp.<pid>"] and is
      renamed over [path] only once fully written, so a crash — or an
      injected {!Fault} kill — at any moment leaves the previous
      artifact byte-identical.  A raising producer removes its temp
      file and never touches [path].

    - {!open_stream} / {!commit_stream}: append-style JSONL streams
      (--report files, dynamics flight recordings).  The stream is
      written to [path ^ ".partial"] and renamed to [path] on clean
      completion.  A killed run therefore leaves the previous [path]
      untouched {e and} a [.partial] file holding a valid line-delimited
      prefix — replayable with [bbng_cli replay], resumable with
      [bbng_cli dynamics --resume].

    - {!append_line}: append-only index files (the run ledger).  One
      self-contained line per call through an [O_APPEND] descriptor; a
      crash can only tear the trailing line, which every reader of such
      files skips by contract.

    Fault probes: [artifact.open] (temp file created),
    [artifact.mid_write] (payload written, nothing committed),
    [artifact.commit] (rename done), [artifact.mid_append] (first byte
    of an appended line written, rest pending — [kill] here leaves a
    deterministically torn trailing line). *)

val write_file : string -> (out_channel -> unit) -> unit
(** [write_file path f] runs [f] on a temp channel in [path]'s
    directory, then atomically renames it to [path]. *)

val tmp_path : string -> string
(** The temp name {!write_file} uses ([path.tmp.<pid>]). *)

val partial_path : string -> string
(** [path ^ ".partial"]. *)

val open_stream : string -> out_channel
(** Open {!partial_path} for writing (truncating any stale partial). *)

val commit_stream : string -> unit
(** Atomically promote {!partial_path}[ path] to [path].  Call after
    closing the channel. *)

val discard_stream : string -> unit
(** Remove a leftover partial, ignoring a missing file. *)

val append_line : string -> string -> unit
(** [append_line path line] appends [line ^ "\n"] to [path] (created
    [0o644] if absent) through an [O_APPEND] descriptor, so concurrent
    appenders never interleave within a line and a crash tears at most
    the trailing line.  (When a {!Fault} is armed the line lands in two
    writes around the [artifact.mid_append] probe, trading that
    no-interleave guarantee for an injectable tear point.) *)

val set_commit_hook : (string -> unit) -> unit
(** Install the (single) observer called with the final path of every
    committed artifact — {!write_file} renames, {!commit_stream}
    promotions, but not {!append_line}s.  Exceptions from the hook are
    swallowed; artifact IO must never fail because an observer did. *)
