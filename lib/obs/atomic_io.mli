(** Crash-safe artifact IO: temp file + atomic rename.

    Two commit protocols, matching the two artifact shapes:

    - {!write_file}: whole-file artifacts (certificates, BENCH_*.json
      reports).  The payload lands in [path ^ ".tmp.<pid>"] and is
      renamed over [path] only once fully written, so a crash — or an
      injected {!Fault} kill — at any moment leaves the previous
      artifact byte-identical.  A raising producer removes its temp
      file and never touches [path].

    - {!open_stream} / {!commit_stream}: append-style JSONL streams
      (--report files, dynamics flight recordings).  The stream is
      written to [path ^ ".partial"] and renamed to [path] on clean
      completion.  A killed run therefore leaves the previous [path]
      untouched {e and} a [.partial] file holding a valid line-delimited
      prefix — replayable with [bbng_cli replay], resumable with
      [bbng_cli dynamics --resume].

    Fault probes: [artifact.open] (temp file created),
    [artifact.mid_write] (payload written, nothing committed),
    [artifact.commit] (rename done). *)

val write_file : string -> (out_channel -> unit) -> unit
(** [write_file path f] runs [f] on a temp channel in [path]'s
    directory, then atomically renames it to [path]. *)

val tmp_path : string -> string
(** The temp name {!write_file} uses ([path.tmp.<pid>]). *)

val partial_path : string -> string
(** [path ^ ".partial"]. *)

val open_stream : string -> out_channel
(** Open {!partial_path} for writing (truncating any stale partial). *)

val commit_stream : string -> unit
(** Atomically promote {!partial_path}[ path] to [path].  Call after
    closing the channel. *)

val discard_stream : string -> unit
(** Remove a leftover partial, ignoring a missing file. *)
