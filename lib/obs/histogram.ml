type t = {
  name : string;
  buckets : int Atomic.t array; (* bucket 0: value 0; bucket i: [2^(i-1), 2^i) *)
  count : int Atomic.t;
  total : int Atomic.t;
  max_v : int Atomic.t;
}

let n_buckets = 64

let create name =
  {
    name;
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    total = Atomic.make 0;
    max_v = Atomic.make 0;
  }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h = create name in
          Hashtbl.add registry name h;
          h)

let unregistered name = create name

let name t = t.name

let bucket_of v =
  (* number of significant bits of v, i.e. v \in [2^(i-1), 2^i) lands in
     bucket i and 0 lands in bucket 0 *)
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let bucket_bounds i = if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let record t v =
  let v = if v < 0 then 0 else v in
  Atomic.incr t.buckets.(bucket_of v);
  Atomic.incr t.count;
  ignore (Atomic.fetch_and_add t.total v);
  let rec bump_max () =
    let m = Atomic.get t.max_v in
    if v > m && not (Atomic.compare_and_set t.max_v m v) then bump_max ()
  in
  bump_max ()

let count t = Atomic.get t.count
let total t = Atomic.get t.total
let max_value t = Atomic.get t.max_v

let bucket_count () = n_buckets

let bucket_counts t = Array.init n_buckets (fun i -> Atomic.get t.buckets.(i))

let merge_counts histograms =
  let acc = Array.make n_buckets 0 in
  List.iter
    (fun t ->
      for i = 0 to n_buckets - 1 do
        acc.(i) <- acc.(i) + Atomic.get t.buckets.(i)
      done)
    histograms;
  acc

let quantile_of_counts ?max_value counts q =
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    (* fractional rank into the sorted sequence of recorded values *)
    let rank = q *. float_of_int (n - 1) in
    let maxv = Option.value ~default:max_int max_value in
    let result = ref (float_of_int (min maxv (1 lsl (n_buckets - 1)))) in
    let cum = ref 0. in
    (try
       for i = 0 to min (n_buckets - 1) (Array.length counts - 1) do
         let c = counts.(i) in
         if c > 0 then begin
           let cum' = !cum +. float_of_int c in
           if rank < cum' then begin
             (* ranks [cum, cum + c - 1] map linearly onto [lo, hi];
                the true rank-th value lies in the same bucket, so the
                estimate is always within a factor of two of it *)
             let lo, hi = bucket_bounds i in
             let hi = min hi maxv in
             let frac =
               Float.min 1. ((rank -. !cum) /. float_of_int (max 1 (c - 1)))
             in
             result := float_of_int lo +. (frac *. float_of_int (hi - lo));
             raise Stdlib.Exit
           end;
           cum := cum'
         end
       done
     with Stdlib.Exit -> ());
    !result
  end

let quantile t q =
  if Atomic.get t.count = 0 then 0.
  else quantile_of_counts ~max_value:(Atomic.get t.max_v) (bucket_counts t) q

let to_json t =
  let occupied = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Atomic.get t.buckets.(i) in
    if c > 0 then begin
      let lo, hi = bucket_bounds i in
      occupied :=
        Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int c) ]
        :: !occupied
    end
  done;
  Json.Obj
    [
      ("count", Json.Int (count t));
      ("total", Json.Int (total t));
      ("max", Json.Int (max_value t));
      ("p50", Json.Float (quantile t 0.5));
      ("p90", Json.Float (quantile t 0.9));
      ("p99", Json.Float (quantile t 0.99));
      ("buckets", Json.List !occupied);
    ]

let find name =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)

let snapshot () =
  let all =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.fold (fun name h acc -> (name, h) :: acc) registry [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) all

let reset t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.count 0;
  Atomic.set t.total 0;
  Atomic.set t.max_v 0

let reset_all () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter (fun _ h -> reset h) registry)
