(** Lock-light log-bucketed value histograms.

    A histogram is 64 power-of-two buckets of atomic counts: value [0]
    lands in bucket 0 and a value in [[2^(i-1), 2^i)] lands in bucket
    [i].  Recording is a handful of atomic operations — no lock, no
    allocation — so {!module-Bbng_core.Parallel} domains share a
    histogram safely and hot paths can record per-call values (BFS
    frontier sizes, deviation-candidate counts, span latencies) when
    observability is switched on.

    Quantile estimates interpolate linearly inside the bucket holding
    the requested rank.  Because the true rank-th value lies in the same
    power-of-two bucket, every estimate is within a factor of two of the
    exact sample quantile (and [max] is exact). *)

type t

val make : string -> t
(** Find-or-create in the process-global registry (idempotent, like
    {!Counter.make}).  Registered histograms appear in {!snapshot} and
    in the [run.summary] [histograms] object. *)

val unregistered : string -> t
(** A private histogram outside the registry — {!Span} keeps one per
    span family without polluting the domain-value listing. *)

val name : t -> string

val record : t -> int -> unit
(** [record t v] adds one observation.  Negative values clamp to 0. *)

val count : t -> int
val total : t -> int

val max_value : t -> int
(** Exact maximum recorded value (0 when empty). *)

val bucket_count : unit -> int
(** Number of buckets every histogram has (64). *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] inclusive value range of bucket [i]: [(0, 0)] for bucket
    0, [(2^(i-1), 2^i - 1)] otherwise. *)

val bucket_counts : t -> int array
(** Per-bucket observation counts, index-aligned with
    {!bucket_bounds}.  A fresh array; reading is atomic per bucket but
    not across buckets (concurrent writers may land between reads). *)

val merge_counts : t list -> int array
(** Element-wise sum of {!bucket_counts} over several histograms — how
    per-domain shards aggregate into one distribution. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: estimated [q]-quantile of the
    recorded values, within a factor of two of the exact sample
    quantile.  0 when empty; clamped to [[0, max_value]]. *)

val quantile_of_counts : ?max_value:int -> int array -> float -> float
(** {!quantile} over a raw bucket-count array (as produced by
    {!bucket_counts} or {!merge_counts}) — how the sharded {!Span}
    table estimates quantiles across per-domain histograms.
    [max_value], when known, clamps the top occupied bucket's range
    exactly as the per-histogram path does. *)

val to_json : t -> Json.t
(** [{"count": _, "total": _, "max": _, "p50": _, "p90": _, "p99": _,
     "buckets": [{"lo": _, "hi": _, "count": _}, ...]}] with only the
    occupied buckets listed. *)

val find : string -> t option
(** Registry lookup by name. *)

val snapshot : unit -> (string * t) list
(** All registered histograms, sorted by name. *)

val reset : t -> unit
val reset_all : unit -> unit
(** Zero every registered histogram (the registry keeps its entries). *)
