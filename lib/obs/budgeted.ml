exception Expired

type why = Deadline | Work_limit | Cancelled

let why_name = function
  | Deadline -> "deadline"
  | Work_limit -> "work-limit"
  | Cancelled -> "cancelled"

type t = {
  deadline : float;            (* absolute Unix time; infinity = none *)
  work_limit : int;            (* max_int = none *)
  work : int Atomic.t;
  cancelled : bool Atomic.t;
  (* latched on first observation so every caller sees one stable
     verdict (and post-expiry probes never touch the clock again) *)
  tripped : why option Atomic.t;
  limited : bool;              (* false for the shared unlimited token *)
}

let c_tokens = Counter.make "budgeted.tokens"
let c_expirations = Counter.make "budgeted.expirations"

let unlimited =
  {
    deadline = infinity;
    work_limit = max_int;
    work = Atomic.make 0;
    cancelled = Atomic.make false;
    tripped = Atomic.make None;
    limited = false;
  }

let create ?deadline_ms ?work_limit () =
  Counter.bump c_tokens;
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> Unix.gettimeofday () +. (ms /. 1e3)
  in
  {
    deadline;
    work_limit = (match work_limit with None -> max_int | Some w -> max 0 w);
    work = Atomic.make 0;
    cancelled = Atomic.make false;
    tripped = Atomic.make None;
    limited = deadline < infinity || work_limit <> None;
  }

let is_unlimited t = not t.limited
let work_done t = Atomic.get t.work
let cancel t = if t.limited || t != unlimited then Atomic.set t.cancelled true

let trip t why =
  if Atomic.compare_and_set t.tripped None (Some why) then
    Counter.bump c_expirations

let expired t =
  match Atomic.get t.tripped with
  | Some _ -> true
  | None ->
      if Atomic.get t.cancelled then begin
        trip t Cancelled;
        true
      end
      else if not t.limited then false
      else if Atomic.get t.work > t.work_limit then begin
        trip t Work_limit;
        true
      end
      else if t.deadline < infinity && Unix.gettimeofday () > t.deadline then begin
        trip t Deadline;
        true
      end
      else false

let why t = Atomic.get t.tripped

(* Remaining headroom, for telemetry (progress heartbeats): [None]
   means the corresponding limit was never set. *)
let deadline_ms_remaining t =
  if t.deadline = infinity then None
  else Some (Float.max 0. ((t.deadline -. Unix.gettimeofday ()) *. 1e3))

let work_remaining t =
  if t.work_limit = max_int then None
  else Some (max 0 (t.work_limit - Atomic.get t.work))

let spend t cost = if t.limited then ignore (Atomic.fetch_and_add t.work cost)

let checkpoint ?(cost = 0) t =
  if t.limited || Atomic.get t.cancelled then begin
    if cost > 0 then spend t cost;
    if expired t then raise Expired
  end

let guard t f = if expired t then None else try Some (f ()) with Expired -> None

(* Typed search results for budget-aware solvers: [Complete] finished
   the whole search, [Degraded] carries the best answer found before
   the token expired, [Exhausted] means the token expired before any
   candidate was evaluated. *)
type 'a outcome = Complete of 'a | Degraded of 'a | Exhausted

let outcome_name = function
  | Complete _ -> "complete"
  | Degraded _ -> "degraded"
  | Exhausted -> "exhausted"

let outcome_value = function
  | Complete v | Degraded v -> Some v
  | Exhausted -> None
