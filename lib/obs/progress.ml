(* Progress heartbeats: long loops declare work-done / work-total and a
   cooperative ticker turns that into periodic [progress.heartbeat]
   events (rate, ETA, budget headroom, GC deltas) plus a refreshed
   OpenMetrics snapshot when [--metrics-out] is set.

   The ticker is cooperative, not a thread: [step]/[tick] compare the
   monotonic sink clock against the last beat and emit when the
   interval elapsed.  That makes it signal-safe by construction (beats
   happen at loop checkpoints, never mid-write from an async context),
   and free when nothing observes the run — [maybe_beat] is two atomic
   loads when no sink is installed and no metrics file is configured.

   Tasks are domain-safe: [done] is an atomic cell any Parallel worker
   may bump, and a CAS guard elects exactly one emitter per beat, so a
   sharded certification fan-out heartbeats exactly like a sequential
   loop. *)

let c_heartbeats = Counter.make "progress.heartbeats"

(* unknown totals (saturated estimates) are represented as no total:
   the heartbeat then carries done/rate but no ETA *)
let known_total = function
  | Some t when t > 0 && t < max_int -> t
  | Some _ | None -> -1

type t = {
  name : string;
  total : int Atomic.t; (* -1 = unknown *)
  done_ : int Atomic.t;
  t0_us : float;
  budget : Budgeted.t;
  beat_lock : bool Atomic.t;
  last_beat_us : float Atomic.t;
  last_beat_done : int Atomic.t;
  (* only the beat-lock holder touches this *)
  gc_prev : Gcstats.snapshot ref;
  finished : bool Atomic.t;
  (* free-form task state riding along in every heartbeat (e.g. the
     dynamics diagnosis verdict); replaced wholesale by [annotate] *)
  annotations : (string * Json.t) list Atomic.t;
}

(* --- global ticker configuration --- *)

let interval = Atomic.make 1000.
let interval_ms () = Atomic.get interval
let set_interval_ms ms = Atomic.set interval (Float.max 0. ms)

let metrics_out : string option Atomic.t = Atomic.make None
let metrics_out_path () = Atomic.get metrics_out
let set_metrics_out p = Atomic.set metrics_out p

let observed () = Sink.active () || Atomic.get metrics_out <> None

(* live tasks, so process exit can emit one final heartbeat per open
   task (through the same at_exit chain that flushes the sinks) *)
let live : t list ref = ref []
let live_mutex = Mutex.create ()

let heartbeat_event = "progress.heartbeat"

(* one final scrape so the .prom file reflects the very last beat; a
   failing write must never break process exit *)
let refresh_metrics_file () =
  match Atomic.get metrics_out with
  | None -> ()
  | Some path -> ( try Openmetrics.write path with Sys_error _ -> ())

let g_done name = Metrics.gauge ~labels:[ ("task", name) ] "progress.done"
let g_total name = Metrics.gauge ~labels:[ ("task", name) ] "progress.total"
let g_rate name = Metrics.gauge ~labels:[ ("task", name) ] "progress.rate_per_s"

let emit_beat t ~now_us =
  if Fault.armed () then Fault.hit "progress.tick";
  let done_now = Atomic.get t.done_ in
  let total = Atomic.get t.total in
  let last_us = Atomic.get t.last_beat_us in
  let last_done = Atomic.get t.last_beat_done in
  let elapsed_us = now_us -. t.t0_us in
  let window_us = now_us -. last_us in
  let overall_rate =
    if elapsed_us > 0. then float_of_int done_now /. elapsed_us *. 1e6 else 0.
  in
  let rate =
    if window_us > 0. && done_now > last_done then
      float_of_int (done_now - last_done) /. window_us *. 1e6
    else overall_rate
  in
  let gc_now = Gcstats.capture () in
  let gc_delta = Gcstats.diff !(t.gc_prev) gc_now in
  t.gc_prev := gc_now;
  Atomic.set t.last_beat_us now_us;
  Atomic.set t.last_beat_done done_now;
  Counter.bump c_heartbeats;
  Metrics.set_int (g_done t.name) done_now;
  if total >= 0 then Metrics.set_int (g_total t.name) total;
  Metrics.set (g_rate t.name) rate;
  if Sink.active () then begin
    let nonzero_counters =
      List.filter_map
        (fun (k, v) -> if v = 0 then None else Some (k, Json.Int v))
        (Counter.snapshot ())
    in
    Sink.emit heartbeat_event
      ([
         ("task", Json.Str t.name);
         ("done", Json.Int done_now);
       ]
      @ (if total >= 0 then
           [
             ("total", Json.Int total);
             ( "pct",
               Json.Float
                 (100. *. float_of_int done_now /. float_of_int (max 1 total))
             );
           ]
         else [])
      @ [
          ("rate_per_s", Json.Float rate);
          ("elapsed_ms", Json.Float (elapsed_us /. 1e3));
        ]
      @ (if total >= 0 && rate > 0. then
           [
             ( "eta_s",
               Json.Float (float_of_int (max 0 (total - done_now)) /. rate) );
           ]
         else [])
      @ (match Budgeted.deadline_ms_remaining t.budget with
        | Some ms -> [ ("deadline_ms_left", Json.Float ms) ]
        | None -> [])
      @ (match Budgeted.work_remaining t.budget with
        | Some w -> [ ("work_left", Json.Int w) ]
        | None -> [])
      @ Atomic.get t.annotations
      @ [
          ("gc_minor_words", Json.Float gc_delta.Gcstats.minor_words);
          ("gc_major_words", Json.Float gc_delta.Gcstats.major_words);
          ("counters", Json.Obj nonzero_counters);
        ])
  end;
  refresh_metrics_file ()

(* the CAS elects one emitter; [force] still takes the lock so two
   forced beats (finish + at_exit) cannot interleave their writes *)
let try_beat ?(force = false) t =
  if observed () && not (Atomic.get t.finished && not force) then begin
    let now_us = Sink.now_us () in
    let due () =
      now_us -. Atomic.get t.last_beat_us >= Atomic.get interval *. 1e3
    in
    if (force || due ()) && Atomic.compare_and_set t.beat_lock false true then
      Fun.protect
        ~finally:(fun () -> Atomic.set t.beat_lock false)
        (fun () ->
          (* re-check under the lock: a racing domain may have beaten
             between the first test and the CAS *)
          if force || due () then emit_beat t ~now_us)
  end

let start ?total ?(budget = Budgeted.unlimited) name =
  let now = Sink.now_us () in
  let t =
    {
      name;
      total = Atomic.make (known_total total);
      done_ = Atomic.make 0;
      t0_us = now;
      budget;
      beat_lock = Atomic.make false;
      last_beat_us = Atomic.make now;
      last_beat_done = Atomic.make 0;
      gc_prev = ref (Gcstats.capture ());
      finished = Atomic.make false;
      annotations = Atomic.make [];
    }
  in
  Mutex.protect live_mutex (fun () -> live := t :: !live);
  t

let set_total t total = Atomic.set t.total (known_total (Some total))
let annotate t fields = Atomic.set t.annotations fields
let done_count t = Atomic.get t.done_

let total_count t =
  match Atomic.get t.total with -1 -> None | total -> Some total

let tick t = try_beat t

let step ?(n = 1) t =
  ignore (Atomic.fetch_and_add t.done_ n);
  try_beat t

(* beat only when there is unreported progress: [finish], an explicit
   [finalize] and the at_exit hook may all run on the same task without
   duplicating its closing heartbeat *)
let closing_beat t =
  if observed () && Atomic.get t.done_ > Atomic.get t.last_beat_done then
    (* the report channel may already be closed on an abnormal-exit
       path; losing the very last beat is fine, raising here is not *)
    try try_beat ~force:true t with Sys_error _ -> ()

let finish t =
  if not (Atomic.get t.finished) then begin
    closing_beat t;
    Atomic.set t.finished true;
    Mutex.protect live_mutex (fun () ->
        live := List.filter (fun t' -> t' != t) !live)
  end

let with_task ?total ?budget name f =
  let t = start ?total ?budget name in
  Fun.protect ~finally:(fun () -> finish t) (fun () -> f t)

(* Exit safety: beat every open task one last time — heartbeats are
   sink milestones, so each line is flushed whole — and refresh the
   .prom snapshot.  The CLI calls this from its own at_exit hook just
   before it emits run.summary and closes the report channel; the
   at_exit registration below is the backstop for paths that skip it.
   Registered after Sink's own at_exit hook (this module initializes
   later), so in LIFO order it runs before the final channel flush. *)
let finalize () =
  let open_tasks = Mutex.protect live_mutex (fun () -> !live) in
  List.iter closing_beat open_tasks;
  refresh_metrics_file ()

let () = at_exit finalize

(* env-tunable without plumbing: BBNG_HEARTBEAT_MS overrides the
   1000ms default tick, BBNG_METRICS_OUT arms the scrape file for
   processes (the bench harness) that have no --metrics-out flag *)
let () =
  (match Sys.getenv_opt "BBNG_HEARTBEAT_MS" with
  | Some s -> (
      match float_of_string_opt s with
      | Some ms when ms >= 0. -> set_interval_ms ms
      | Some _ | None -> ())
  | None -> ());
  match Sys.getenv_opt "BBNG_METRICS_OUT" with
  | Some path when path <> "" -> set_metrics_out (Some path)
  | Some _ | None -> ()
