(** Fault injection: named probe points that can raise, delay, exit or
    SIGKILL the process on the Nth hit.

    Probes are compiled into the hot seams of the engine — span
    boundaries ([span.<name>], see {!Span}), event emission
    ([sink.<event>], see {!Sink}), the artifact writer's
    commit protocol ([artifact.open] / [artifact.mid_write] /
    [artifact.commit], see {!Atomic_io}) and the profile exporter
    ([profile.export], see {!Profile}) — and cost one atomic load
    when nothing is armed.  Arming happens explicitly ({!arm}) in
    tests, or from the [BBNG_FAULT] environment variable / the CLI's
    [--fault] flag, so any run of any binary can be crashed at a chosen
    point to check the crash-safety contract: an interrupted run must
    leave either a valid replayable JSONL prefix or the untouched
    previous artifact. *)

exception Injected of string
(** Raised by the [raise] action; carries the probe point.  The CLI
    maps an escaped [Injected] to {!Exit_code.fault}. *)

type action =
  | Raise              (** raise {!Injected} at the probe *)
  | Delay_ms of float  (** sleep, then continue (latency injection) *)
  | Exit_code of int   (** [Stdlib.exit] (at_exit hooks run) *)
  | Kill               (** SIGKILL self: no cleanup of any kind runs *)

val action_name : action -> string

type spec = {
  point : string;  (** probe point name, matched exactly *)
  action : action;
  after : int;     (** fire on the Nth hit of the point (1 = first) *)
}

val parse : string -> (spec, string) result
(** Grammar: [POINT@ACTION[@NTH-HIT]] with [ACTION] one of [raise],
    [kill], [exit:N], [delay:MS] — e.g.
    ["sink.dynamics.step@kill@20"] kills the process as the 20th
    dynamics step is emitted. *)

val arm : spec -> unit
(** Arm a spec (several may be armed at once). *)

val disarm : unit -> unit
(** Drop every armed spec (tests call this in teardown). *)

val armed : unit -> bool

val env_var : string
(** ["BBNG_FAULT"]: comma-separated {!parse} specs. *)

val init_from_env : unit -> (unit, string) result
(** Arm every spec in [$BBNG_FAULT]; [Error] names the malformed
    spec. *)

val hit : string -> unit
(** Probe point: no-op unless an armed spec matches [point] and its
    hit countdown reaches zero, in which case the action fires. *)
