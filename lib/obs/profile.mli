(** Call-path performance attribution on top of {!Span}.

    Every domain keeps a stack of its open spans.  {!Span.enter} pushes
    a frame whose path is the parent's path plus the span name
    ([";"]-joined, flamegraph folded-stack style); {!Span.exit} closes
    it, attributing {e self}-time (wall minus the wall of its direct
    children) and {e self}-allocation (minor words minus the children's)
    to the full path.  Because a parent accumulates each child's exact
    recorded integers, self values telescope: summing self-time over a
    well-nested tree reproduces the root's recorded wall to the
    nanosecond — which is why the folded per-name totals can be pinned
    {e equal} to the flat {!Span} totals, not merely close.

    Accumulation is sharded per domain ({!Metrics}-style 8-way
    [Domain.self] indexing) and the stacks live in domain-local
    storage, so {!Bbng_core.Parallel} workers profile without
    contending.  Out-of-order or double closes never corrupt a stack:
    frames popped over are detached and still record to their (already
    fixed) path when their own close arrives.

    Disabled by default; [--profile] / [--stats] entry points enable it
    together with {!Span}. *)

type stat = { count : int; self_ns : int; self_minor_words : float }
(** [count]: closes recorded at this exact path; [self_ns] /
    [self_minor_words]: wall time and minor allocation attributed to
    the path itself, excluding direct children. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

type token
(** One open frame (or nothing, when profiling is disabled).  Produced
    by {!enter}, consumed by {!close}; {!Span} threads it through its
    handles. *)

val enter : string -> token
(** Push a frame for [name] on the calling domain's stack.  The frame's
    path is [<parent path>;name] ([name] alone at depth 0, or
    [<base>;name] under {!with_root}). *)

val close : token -> wall_ns:int -> minor_words:float -> unit
(** Record the frame's self values ([wall_ns] minus accumulated child
    wall; likewise minor words) at its path, pop it, and charge
    [wall_ns] / [minor_words] to the new top as child totals.  Closing
    out of order detaches the frames opened above (their own close
    still records, without touching the stack); closing from a
    different domain, or a frame already popped over, only records. *)

val current_path : unit -> string
(** The calling domain's current open path ([""] when the stack is
    empty and no root is installed).  {!Bbng_core.Parallel} captures
    this before spawning workers. *)

val with_root : string -> (unit -> 'a) -> 'a
(** [with_root base f] runs [f] with an empty stack whose depth-0
    frames are rooted under [base] — how a spawned worker's spans stay
    attributed beneath the caller's call path.  The previous stack is
    restored afterwards; frames [f] leaked are detached. *)

val stack_depth : unit -> int
(** Open frames on the calling domain's stack (0 when balanced). *)

val snapshot : unit -> (string * stat) list
(** All recorded paths merged across shards, sorted by path. *)

val name_totals : (string * stat) list -> (string * stat) list
(** Per-name rollup of a {!snapshot}: a name's [self_ns] /
    [self_minor_words] sum over every path occurrence (so recursion
    counts once per occurrence, matching the flat table), and its
    [count] is the closes — paths ending in the name.  For well-nested
    runs this equals the flat {!Span} totals exactly. *)

type flavor = Wall_ns | Minor_words

val folded_lines : flavor -> (string * stat) list -> string list
(** flamegraph.pl / speedscope folded-stack lines: ["a;b;c VALUE"],
    where VALUE is self nanoseconds or self minor words. *)

val alloc_path : string -> string
(** ["x.folded"] → ["x.alloc.folded"] — where {!write_folded} puts the
    allocation flavor. *)

val write_folded : string -> unit
(** Write the current snapshot as folded stacks: wall-ns flavor to the
    given path and minor-words flavor to {!alloc_path} of it, both
    through {!Atomic_io} (a crash mid-write leaves no torn [.folded]).
    Fault probe: [profile.export]. *)

val of_events : Json.t list -> (string * stat) list
(** Offline reconstruction from recorded ["span"] events (a
    [--report] file read by {!Trace_export.read_events}): close events
    are grouped per domain and re-nested by start/duration containment
    — events from this library carry an exact [t0_us] stamp; older
    recordings fall back to [ts_us - dur_us].  Returns the same shape
    as {!snapshot}, so a recorded run flames identically to a live
    [--profile] one. *)

val top : ?limit:int -> (string * stat) list -> (string * stat) list
(** The [limit] (default 10) hottest paths by self-time, descending. *)

val reset_all : unit -> unit
