let c_writes = Counter.make "atomic_io.commits"

let tmp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let write_file path f =
  let tmp = tmp_path path in
  let oc = open_out tmp in
  (* anything that raises before the rename — the producer, an injected
     fault, the rename itself — must not leave a stray temp file, and
     must never have touched [path].  Only a hard kill (which runs no
     cleanup by design) can leave the temp behind. *)
  (match
     Fault.hit "artifact.open";
     f oc;
     Fault.hit "artifact.mid_write";
     close_out oc;
     Sys.rename tmp path
   with
  | () -> ()
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Counter.bump c_writes;
  Fault.hit "artifact.commit"

let partial_path path = path ^ ".partial"

let open_stream path = open_out (partial_path path)

let commit_stream path =
  Sys.rename (partial_path path) path;
  Counter.bump c_writes;
  Fault.hit "artifact.commit"

let discard_stream path =
  try Sys.remove (partial_path path) with Sys_error _ -> ()
