let c_writes = Counter.make "atomic_io.commits"
let c_appends = Counter.make "atomic_io.appends"

(* every committed artifact path is announced here, so a cross-cutting
   consumer (the run ledger) can inventory a run's outputs without each
   producer knowing about it.  At most one hook; never raises through. *)
let commit_hook : (string -> unit) option ref = ref None
let set_commit_hook f = commit_hook := Some f

let announce path =
  match !commit_hook with
  | None -> ()
  | Some f -> ( try f path with _ -> ())

let tmp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let write_file path f =
  let tmp = tmp_path path in
  let oc = open_out tmp in
  (* anything that raises before the rename — the producer, an injected
     fault, the rename itself — must not leave a stray temp file, and
     must never have touched [path].  Only a hard kill (which runs no
     cleanup by design) can leave the temp behind. *)
  (match
     Fault.hit "artifact.open";
     f oc;
     Fault.hit "artifact.mid_write";
     close_out oc;
     Sys.rename tmp path
   with
  | () -> ()
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Counter.bump c_writes;
  announce path;
  Fault.hit "artifact.commit"

let partial_path path = path ^ ".partial"

let open_stream path = open_out (partial_path path)

let commit_stream path =
  Sys.rename (partial_path path) path;
  Counter.bump c_writes;
  announce path;
  Fault.hit "artifact.commit"

let discard_stream path =
  try Sys.remove (partial_path path) with Sys_error _ -> ()

(* Append protocol for index files (one self-contained line per call).
   No temp file: O_APPEND keeps concurrent appenders from interleaving
   within a line on POSIX, and a crash can only tear the line being
   written — which every reader of such files must already skip (the
   same contract as a SIGKILLed .partial stream).  The tear point is
   made injectable: the first byte is flushed before the
   [artifact.mid_append] probe, so [kill] there deterministically
   leaves a torn trailing line for the recovery path to chew on. *)
let append_line path line =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let payload = line ^ "\n" in
      let n = String.length payload in
      let torn = if Fault.armed () then min 1 (n - 1) else 0 in
      if torn > 0 then begin
        let w = Unix.write_substring fd payload 0 torn in
        ignore w;
        Fault.hit "artifact.mid_append"
      end;
      let rec put off =
        if off < n then
          put (off + Unix.write_substring fd payload off (n - off))
      in
      put torn);
  Counter.bump c_appends
