(** Per-domain sharded live-metrics registry.

    {!Counter} and {!Histogram} are process-global cells: every domain
    that bumps [parallel.chunks_abandoned] hits the same cache line.
    That is fine for post-hoc stats, but a live scrape path wants hot
    recording to stay contention-free.  A {e sharded} metric is
    {!shards} independent cells; each writer touches only the cell
    indexed by its domain id ([Domain.self () land (shards - 1)]), and
    reads aggregate across cells.

    Aggregation is exact once writers have quiesced (after
    [Parallel]'s domains join) and momentarily racy while they run —
    the usual scrape contract: an in-flight increment lands in this
    snapshot or the next one, never nowhere.  Snapshots never stop
    writers.

    All three metric kinds are find-or-create by name, so modules
    declare their metrics at top level.  {!Openmetrics} renders the
    whole registry (plus the legacy {!Counter}/{!Histogram}
    registries) as a Prometheus/OpenMetrics text exposition. *)

val shards : int
(** Number of shards per metric (a power of two). *)

val shard_index : unit -> int
(** The calling domain's shard: [Domain.self () land (shards - 1)]. *)

(** {1 Counters} *)

type counter

val counter : ?help:string -> string -> counter
(** Find-or-create (the first caller's [help] wins). *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Sum over all shards. *)

val counter_shard_values : counter -> int array
(** Per-shard values, for tests and shard-balance introspection. *)

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Find-or-create by [(name, labels)].  Gauges are set-to-value, so
    they are a single cell, not sharded; label values are escaped by
    the OpenMetrics renderer, not here. *)

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : ?help:string -> string -> histogram
(** Find-or-create.  Each shard is a private log-bucketed
    {!Histogram.t}; shards are kept out of the legacy registry so
    [run.summary] never lists them individually. *)

val observe : histogram -> int -> unit

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : int array;
      (** merged per-bucket counts, index-aligned with
          {!Histogram.bucket_bounds} *)
}

val histogram_snapshot : histogram -> histogram_snapshot

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * string * int) list;  (** name, help, value *)
  gauges : (string * string * (string * string) list * float) list;
      (** name, help, labels, value *)
  histograms : (string * string * histogram_snapshot) list;
}

val snapshot : unit -> snapshot
(** Name-sorted aggregated view of the whole registry, taken without
    stopping writers. *)

val to_json : unit -> Json.t
(** Flat rendering for [run.summary]'s [metrics] field: counters and
    gauges as numbers, histograms as [{"count": _, "sum": _}]. *)

val reset_for_tests : unit -> unit
(** Zero every registered metric (the registry keeps its entries). *)
