(** Progress heartbeats for long-running loops.

    A {e task} declares work-done / work-total; {!step} and {!tick}
    drive a cooperative ticker that emits a [progress.heartbeat] event
    (rate, ETA, {!Budgeted} headroom, GC deltas, a nonzero-counter
    snapshot) through the installed {!Sink}s whenever {!interval_ms}
    has elapsed, and refreshes the [--metrics-out] OpenMetrics file via
    {!Openmetrics.write}.  Heartbeats are sink flush milestones, so a
    SIGKILLed run's [.partial] report always ends within one tick of
    the death — that is what [bbng_cli top] tails.

    Cooperative means signal- and exit-safe by construction: beats
    happen at loop checkpoints, never from an async context, and the
    [at_exit] backstop (plus {!finalize}, which the CLI calls before
    closing its report channel) emits one final beat per open task.

    Cost discipline: when no sink is installed and no metrics file is
    configured, {!step} is one atomic add plus two atomic loads —
    instrumented loops pay nothing unobserved.  Tasks are domain-safe:
    Parallel workers may {!step} a shared task concurrently, and a CAS
    elects exactly one emitter per beat.

    Environment knobs (read at startup): [BBNG_HEARTBEAT_MS] overrides
    the 1000 ms default interval; [BBNG_METRICS_OUT] configures the
    scrape file for processes without a [--metrics-out] flag. *)

type t

val start : ?total:int -> ?budget:Budgeted.t -> string -> t
(** [start name] registers a live task.  [total] is the declared work
    size in {!step} units; omit it — or pass a saturated estimate
    ([max_int], or anything [<= 0]) — for "unknown", which suppresses
    [total]/[pct]/[eta_s] in the heartbeats.  [budget] (default
    {!Budgeted.unlimited}) contributes deadline/work headroom
    fields. *)

val step : ?n:int -> t -> unit
(** Record [n] (default 1) units of work done, then beat if the
    interval has elapsed. *)

val tick : t -> unit
(** Beat if the interval has elapsed, without recording work — for
    loops whose unit of progress is recorded elsewhere. *)

val set_total : t -> int -> unit
(** Revise the declared total (same saturation convention as
    {!start}). *)

val annotate : t -> (string * Json.t) list -> unit
(** Attach free-form fields to every subsequent heartbeat of this task
    (replaces any previous annotation wholesale).  How the dynamics
    diagnosis verdict reaches [bbng_cli top] between [dynamics.diagnosis]
    events. *)

val finish : t -> unit
(** Emit a closing beat if any progress is unreported, then
    unregister.  Idempotent. *)

val with_task : ?total:int -> ?budget:Budgeted.t -> string -> (t -> 'a) -> 'a
(** [start] / [finish] bracket (finishes on raise too). *)

val done_count : t -> int
val total_count : t -> int option

(** {1 Ticker configuration} *)

val interval_ms : unit -> float
val set_interval_ms : float -> unit
(** Heartbeat interval (default 1000 ms; 0 beats at every
    opportunity).  Clamped at 0. *)

val metrics_out_path : unit -> string option
val set_metrics_out : string option -> unit
(** The OpenMetrics snapshot file refreshed on every beat
    ([--metrics-out]); [None] disables. *)

val observed : unit -> bool
(** Whether beats currently go anywhere (a sink is active or a metrics
    file is configured). *)

val finalize : unit -> unit
(** Closing beat for every still-open task plus a final metrics-file
    refresh.  Also installed as an [at_exit] backstop; call it
    explicitly before tearing down a report channel so the last
    heartbeat lands inside the report. *)
