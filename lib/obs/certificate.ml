let format_version = 1

type t = {
  kind : string;
  format : int;
  body : (string * Json.t) list;
}

let make ~kind body =
  { kind; format = format_version; body = body @ Stats.provenance_fields () }

let field k t = List.assoc_opt k t.body

let to_json t =
  Json.Obj
    (("kind", Json.Str t.kind) :: ("format", Json.Int t.format) :: t.body)

let of_json = function
  | Json.Obj fields -> (
      match
        (List.assoc_opt "kind" fields, List.assoc_opt "format" fields)
      with
      | Some (Json.Str kind), Some (Json.Int format) ->
          if format > format_version then
            Error
              (Printf.sprintf
                 "artifact format %d is newer than this binary understands (%d)"
                 format format_version)
          else
            Ok
              {
                kind;
                format;
                body =
                  List.filter
                    (fun (k, _) -> k <> "kind" && k <> "format")
                    fields;
              }
      | _ -> Error "artifact lacks a \"kind\"/\"format\" header")
  | _ -> Error "artifact is not a JSON object"

(* temp + atomic rename (Atomic_io): a crash or injected kill at any
   point leaves the previous artifact at [path] byte-identical *)
let write path t =
  Atomic_io.write_file path (fun oc ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Json.of_string (String.trim text) with
      | exception Json.Parse_error e ->
          Error (Printf.sprintf "%s: %s" path e)
      | json -> of_json json)
