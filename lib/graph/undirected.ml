type t = {
  id : int;
  n : int;
  adj : int array array;
  edge_count : int;
}

(* Every built graph gets a process-unique stamp.  Graphs are immutable,
   so the stamp doubles as a version: snapshot caches (Csr) key on it
   and never go stale. *)
let next_id = Atomic.make 0

let check_vertex n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Undirected: vertex %d out of range [0,%d)" u n)

(* Sorts and deduplicates a neighbor list given as an int list.  The
   sort is monomorphic: this runs on every graph build, including the
   census inner loop, and polymorphic [compare] costs a C call per
   comparison where [Int.compare] inlines to a branch. *)
let finalize_adj lists =
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort Int.compare a;
      let m = Array.length a in
      if m = 0 then a
      else begin
        let out = ref [ a.(0) ] and count = ref 1 in
        for i = 1 to m - 1 do
          if a.(i) <> a.(i - 1) then begin
            out := a.(i) :: !out;
            incr count
          end
        done;
        let dedup = Array.make !count 0 in
        List.iteri (fun i v -> dedup.(!count - 1 - i) <- v) !out;
        dedup
      end)
    lists

let build n add_all =
  let lists = Array.make n [] in
  add_all (fun u v ->
      check_vertex n u;
      check_vertex n v;
      if u = v then invalid_arg (Printf.sprintf "Undirected: self-loop at %d" u);
      lists.(u) <- v :: lists.(u);
      lists.(v) <- u :: lists.(v));
  let adj = finalize_adj lists in
  let deg_sum = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj in
  { id = Atomic.fetch_and_add next_id 1; n; adj; edge_count = deg_sum / 2 }

let of_digraph g =
  build (Digraph.n g) (fun add -> Digraph.iter_arcs (fun u v -> if u < v || not (Digraph.mem_arc g v u) then add u v) g)

let of_edges ~n edges =
  if n < 0 then invalid_arg "Undirected.of_edges: negative n";
  build n (fun add -> List.iter (fun (u, v) -> add u v) edges)

let id g = g.id
let n g = g.n
let edge_count g = g.edge_count
let neighbors g u = check_vertex g.n u; g.adj.(u)
let degree g u = Array.length (neighbors g u)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let min_degree g =
  if g.n = 0 then 0
  else Array.fold_left (fun acc a -> min acc (Array.length a)) max_int g.adj

let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let mem_edge g u v =
  check_vertex g.n u;
  check_vertex g.n v;
  mem_sorted g.adj.(u) v

let iter_edges f g =
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then f u v) nbrs)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let remove_vertices g vs =
  let dead = Array.make g.n false in
  List.iter (fun v -> check_vertex g.n v; dead.(v) <- true) vs;
  build g.n (fun add ->
      iter_edges (fun u v -> if not dead.(u) && not dead.(v) then add u v) g)

let complement g =
  build g.n (fun add ->
      for u = 0 to g.n - 1 do
        for v = u + 1 to g.n - 1 do
          if not (mem_sorted g.adj.(u) v) then add u v
        done
      done)

let equal g1 g2 = g1.n = g2.n && g1.adj = g2.adj

let pp ppf g =
  Format.fprintf ppf "n=%d;" g.n;
  iter_edges (fun u v -> Format.fprintf ppf " %d-%d" u v) g

let to_string g = Format.asprintf "%a" pp g
