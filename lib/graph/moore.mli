(** Moore-type counting bounds.

    Lemma 5.1 of the paper is exactly the Moore counting argument: a
    graph with maximum degree [delta] and diameter [d] has at most
    [1 + delta + delta^2 + ... + delta^d] vertices.  These bounds feed
    the shift-graph equilibrium certificate and the OPT-diameter lower
    bounds used by the price-of-anarchy machinery. *)

val ball_bound : delta:int -> radius:int -> int
(** Maximum number of vertices within distance [radius] of a fixed
    vertex in a graph of maximum degree [delta]:
    [1 + delta * ((delta-1)^radius - 1) / (delta - 2)] for [delta >= 3],
    with the obvious special cases for [delta <= 2].  Saturates at
    [max_int] instead of overflowing. *)

val geometric_bound : delta:int -> diameter:int -> int
(** The cruder sum [1 + delta + ... + delta^diameter] used verbatim in
    Lemma 5.1's proof; saturates at [max_int]. *)

val min_diameter : n:int -> delta:int -> int
(** Smallest [d] with [ball_bound ~delta ~radius:d >= n]: every graph on
    [n] vertices with maximum degree [delta] has diameter at least this.
    [0] when [n <= 1].
    @raise Invalid_argument if [delta <= 0] and [n > 1]. *)

val lemma_5_1_condition : t:int -> k:int -> bool
(** The hypothesis [(2t)^k - 1 < t^k * (2t - 1)] under which Lemma 5.2
    certifies the shift graph as a MAX equilibrium (computed with
    saturating arithmetic). *)

val lemma_5_1_holds : Undirected.t -> bool
(** [lemma_5_1_holds g] checks [delta^d - 1 < n * (delta - 1)] on an
    actual graph [g] (with [d] its diameter), i.e. the premise of
    Lemma 5.1.  [false] for disconnected graphs. *)
