(* Color refinement (1-dimensional Weisfeiler-Leman) + backtracking. *)

(* Refine an initial coloring until stable.  [signature colors v] must
   return a label-invariant description of v's neighborhood under the
   current coloring (e.g. the sorted list of neighbor colors). *)
let refine ~n ~initial ~signature =
  (* Color ids must be label-invariant so they are comparable across two
     different graphs: each round renumbers the distinct (old color,
     signature) keys in their natural sorted order.  By induction the
     keys are built from invariant values (initial colors are invariant
     quantities like degrees), so the sorted order — and hence the new
     ids — cannot depend on vertex labels. *)
  let colors = ref (Array.copy initial) in
  let changed = ref true in
  while !changed do
    let keys = Array.init n (fun v -> ((!colors).(v), signature !colors v)) in
    let distinct = List.sort_uniq compare (Array.to_list keys) in
    let table = Hashtbl.create 16 in
    List.iteri (fun i key -> Hashtbl.replace table key i) distinct;
    let next = Array.map (fun key -> Hashtbl.find table key) keys in
    changed := next <> !colors;
    colors := next
  done;
  !colors

let undirected_colors g =
  let n = Undirected.n g in
  refine ~n
    ~initial:(Array.init n (Undirected.degree g))
    ~signature:(fun colors v ->
      let nbrs = Array.map (fun u -> colors.(u)) (Undirected.neighbors g v) in
      Array.sort compare nbrs;
      Array.to_list nbrs)

let digraph_colors g =
  let n = Digraph.n g in
  refine ~n
    ~initial:(Array.init n (fun v -> (100_003 * Digraph.out_degree g v) + Digraph.in_degree g v))
    ~signature:(fun colors v ->
      let out = Array.map (fun u -> colors.(u)) (Digraph.out_neighbors g v) in
      let inn = Array.map (fun u -> colors.(u)) (Digraph.in_neighbors g v) in
      Array.sort compare out;
      Array.sort compare inn;
      (Array.to_list out, Array.to_list inn))

(* Multiset equality of color arrays: a cheap necessary condition. *)
let same_color_profile c1 c2 =
  let s1 = Array.copy c1 and s2 = Array.copy c2 in
  Array.sort compare s1;
  Array.sort compare s2;
  s1 = s2

(* Generic backtracking: map vertices of graph 1 (ordered rarest-color
   first) onto same-colored unused vertices of graph 2, checking
   [compatible u v mapping] against the partial map. *)
let backtrack ~n ~colors1 ~colors2 ~compatible =
  if not (same_color_profile colors1 colors2) then None
  else begin
    (* order: rarest colors first to fail fast *)
    let count = Hashtbl.create 16 in
    Array.iter
      (fun c ->
        Hashtbl.replace count c (1 + Option.value ~default:0 (Hashtbl.find_opt count c)))
      colors1;
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        compare
          (Hashtbl.find count colors1.(a), colors1.(a), a)
          (Hashtbl.find count colors1.(b), colors1.(b), b))
      order;
    let mapping = Array.make n (-1) in
    let used = Array.make n false in
    let rec go idx =
      if idx = n then true
      else begin
        let u = order.(idx) in
        let rec try_v v =
          if v >= n then false
          else if (not used.(v)) && colors2.(v) = colors1.(u) && compatible u v mapping
          then begin
            mapping.(u) <- v;
            used.(v) <- true;
            if go (idx + 1) then true
            else begin
              mapping.(u) <- -1;
              used.(v) <- false;
              try_v (v + 1)
            end
          end
          else try_v (v + 1)
        in
        try_v 0
      end
    in
    if go 0 then Some mapping else None
  end

let find_undirected_isomorphism g1 g2 =
  let n = Undirected.n g1 in
  if n <> Undirected.n g2 || Undirected.edge_count g1 <> Undirected.edge_count g2
  then None
  else
    backtrack ~n ~colors1:(undirected_colors g1) ~colors2:(undirected_colors g2)
      ~compatible:(fun u v mapping ->
        (* consistency with every already-mapped vertex *)
        let ok = ref true in
        for w = 0 to n - 1 do
          if mapping.(w) >= 0 then
            if Undirected.mem_edge g1 u w <> Undirected.mem_edge g2 v mapping.(w)
            then ok := false
        done;
        !ok)

let find_digraph_isomorphism g1 g2 =
  let n = Digraph.n g1 in
  if n <> Digraph.n g2 || Digraph.arc_count g1 <> Digraph.arc_count g2 then None
  else
    backtrack ~n ~colors1:(digraph_colors g1) ~colors2:(digraph_colors g2)
      ~compatible:(fun u v mapping ->
        let ok = ref true in
        for w = 0 to n - 1 do
          if mapping.(w) >= 0 then begin
            if Digraph.mem_arc g1 u w <> Digraph.mem_arc g2 v mapping.(w) then
              ok := false;
            if Digraph.mem_arc g1 w u <> Digraph.mem_arc g2 mapping.(w) v then
              ok := false
          end
        done;
        !ok)

let undirected_isomorphic g1 g2 = find_undirected_isomorphism g1 g2 <> None
let digraph_isomorphic g1 g2 = find_digraph_isomorphism g1 g2 <> None

(* Canonical key: the lexicographically smallest row-major adjacency
   encoding over color-class-respecting relabellings, found by
   backtracking with prefix pruning. *)
let canonical_key_undirected g =
  let n = Undirected.n g in
  if n = 0 then "0:"
  else begin
    let colors = undirected_colors g in
    (* candidate orderings must list color classes in a canonical order:
       sort classes by (size, color id); inside a class, branch. *)
    let best = ref None in
    let perm = Array.make n (-1) in (* perm.(new_pos) = old vertex *)
    let used = Array.make n false in
    (* candidates for each position: vertices sorted by color *)
    let by_color = Array.init n Fun.id in
    Array.sort (fun a b -> compare (colors.(a), a) (colors.(b), b)) by_color;
    let position_color = Array.map (fun v -> colors.(v)) by_color in
    (* encode the row prefix of vertex at position p against positions < p *)
    let rec go pos (encoding : char list) =
      if pos = n then begin
        let s = String.init (List.length encoding) (List.nth (List.rev encoding)) in
        match !best with
        | Some b when b <= s -> ()
        | Some _ | None -> best := Some s
      end
      else
        Array.iter
          (fun v ->
            if (not used.(v)) && colors.(v) = position_color.(pos) then begin
              (* bits of adjacency between v and already-placed vertices *)
              let bits = ref [] in
              for q = pos - 1 downto 0 do
                bits := (if Undirected.mem_edge g v perm.(q) then '1' else '0') :: !bits
              done;
              let encoding' = List.rev_append !bits encoding in
              (* prefix pruning against the current best *)
              let viable =
                match !best with
                | None -> true
                | Some b ->
                    let len = List.length encoding' in
                    let prefix =
                      String.init len (List.nth (List.rev encoding'))
                    in
                    String.length b >= len && String.sub b 0 len >= prefix
              in
              if viable then begin
                used.(v) <- true;
                perm.(pos) <- v;
                go (pos + 1) encoding';
                used.(v) <- false;
                perm.(pos) <- -1
              end
            end)
          by_color
    in
    go 0 [];
    match !best with
    | Some s -> Printf.sprintf "%d:%s" n s
    | None -> assert false
  end

let dedup_digraphs graphs =
  let rec go kept = function
    | [] -> List.rev kept
    | g :: rest ->
        if List.exists (fun k -> digraph_isomorphic k g) kept then go kept rest
        else go (g :: kept) rest
  in
  go [] graphs
