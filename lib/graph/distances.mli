(** Distance aggregates: eccentricities, diameter, distance sums.

    These are the raw graph-theoretic quantities; the paper's cost
    functions (with their [Cinf]/[kappa] disconnection penalties) are
    layered on top in [Bbng_core.Cost].  Here a disconnected input
    surfaces as [None] / explicit unreachable counts, never as a
    made-up large number.

    All aggregates run over the flat {!Csr.t} snapshot with one shared
    scratch row per call, and every entry point takes [?budget]: each
    BFS sweep checkpoints the token and charges its popped count, so a
    census-scale aggregate is interruptible at sweep granularity — on
    expiry the call raises {!Bbng_obs.Budgeted.Expired} (catch at the
    search boundary, e.g. with {!Bbng_obs.Budgeted.guard}), exactly
    like {!Bfs.distances}.  {!diameter} additionally prunes with the
    iFUB bound and usually finishes after a handful of sweeps. *)

val eccentricity : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int option
(** Local diameter of a vertex: its maximum distance to any vertex.
    [None] if some vertex is unreachable. *)

val fold_eccentricities :
  ?budget:Bbng_obs.Budgeted.t ->
  Undirected.t ->
  ('a -> int -> int -> 'a) ->
  'a ->
  'a option
(** [fold_eccentricities g f init] folds [f acc u ecc_u] over all
    vertices in index order ([Some init] for the empty graph); [None]
    as soon as any vertex cannot reach the whole graph.  One BFS per
    vertex over shared scratch — the legacy full-sweep diameter is
    [fold_eccentricities g (fun a _ e -> max a e) 0], which the qcheck
    oracle pins the pruned {!diameter} against. *)

val diameter : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int option
(** Maximum distance over all pairs; [None] if disconnected; [Some 0]
    for graphs with at most one vertex.

    Computed by iFUB: a BFS from a max-degree root levels the graph, a
    double sweep seeds the lower bound, then fringe vertices are swept
    deepest-level-first until [lb >= 2 * level] certifies every
    remaining pair through the root.  Worst case the old n-sweep scan,
    typically far fewer ([distances.ifub_pruned] counts the vertices
    whose sweep was skipped). *)

val radius : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int option
(** Minimum eccentricity; [None] if disconnected. *)

val center : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int list
(** Vertices of minimum eccentricity (empty iff disconnected and n>0). *)

type sum_result = {
  sum : int;          (** sum of finite distances from the source *)
  unreachable : int;  (** number of vertices with no path from it *)
}

val distance_sum : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> sum_result
(** Ingredients of the SUM cost of a vertex. *)

val wiener_index : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int option
(** Sum of distances over unordered pairs; [None] if disconnected. *)

val all_pairs : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int array array
(** [all_pairs g] is the full distance matrix ([Bfs.unreachable] where no
    path); row [u] is the BFS distance array from [u].  O(n(n+m)). *)

val diameter_of_matrix : int array array -> int option
(** Diameter from a precomputed {!all_pairs} matrix. *)

val eccentricity_of_row : int array -> int option
(** Eccentricity from a precomputed distance row. *)

val farthest : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int * int
(** [farthest g u] is [(v, d)] where [v] is a reachable vertex maximizing
    the distance [d] from [u] (smallest index among ties).  [(u, 0)] when
    [u] is isolated.  Building block for the double-BFS tree diameter. *)
