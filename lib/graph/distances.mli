(** Distance aggregates: eccentricities, diameter, distance sums.

    These are the raw graph-theoretic quantities; the paper's cost
    functions (with their [Cinf]/[kappa] disconnection penalties) are
    layered on top in [Bbng_core.Cost].  Here a disconnected input
    surfaces as [None] / explicit unreachable counts, never as a
    made-up large number. *)

val eccentricity : Undirected.t -> int -> int option
(** Local diameter of a vertex: its maximum distance to any vertex.
    [None] if some vertex is unreachable. *)

val diameter : Undirected.t -> int option
(** Maximum distance over all pairs; [None] if disconnected; [Some 0]
    for graphs with at most one vertex. *)

val radius : Undirected.t -> int option
(** Minimum eccentricity; [None] if disconnected. *)

val center : Undirected.t -> int list
(** Vertices of minimum eccentricity (empty iff disconnected and n>0). *)

type sum_result = {
  sum : int;          (** sum of finite distances from the source *)
  unreachable : int;  (** number of vertices with no path from it *)
}

val distance_sum : Undirected.t -> int -> sum_result
(** Ingredients of the SUM cost of a vertex. *)

val wiener_index : Undirected.t -> int option
(** Sum of distances over unordered pairs; [None] if disconnected. *)

val all_pairs : Undirected.t -> int array array
(** [all_pairs g] is the full distance matrix ([Bfs.unreachable] where no
    path); row [u] is the BFS distance array from [u].  O(n(n+m)). *)

val diameter_of_matrix : int array array -> int option
(** Diameter from a precomputed {!all_pairs} matrix. *)

val eccentricity_of_row : int array -> int option
(** Eccentricity from a precomputed distance row. *)

val farthest : Undirected.t -> int -> int * int
(** [farthest g u] is [(v, d)] where [v] is a reachable vertex maximizing
    the distance [d] from [u] (smallest index among ties).  [(u, 0)] when
    [u] is isolated.  Building block for the double-BFS tree diameter. *)
