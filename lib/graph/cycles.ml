let sole_out_neighbor g u =
  match Digraph.out_neighbors g u with
  | [| w |] -> w
  | a ->
      invalid_arg
        (Printf.sprintf "Cycles: vertex %d has out-degree %d, expected 1" u
           (Array.length a))

(* Rotates a cycle (given in arc order) so it starts at its smallest
   vertex, preserving arc order. *)
let canonical_rotation cycle =
  let smallest = List.fold_left min max_int cycle in
  let rec split before = function
    | [] -> assert false
    | x :: rest ->
        if x = smallest then (x :: rest) @ List.rev before
        else split (x :: before) rest
  in
  split [] cycle

let functional_cycle g v =
  let n = Digraph.n g in
  let on_path = Array.make n false in
  (* [path] holds visited vertices most-recent-first. *)
  let rec walk path u =
    if on_path.(u) then begin
      (* Vertices visited after [u] (the heads of [path] up to [u]) form
         the cycle, in reverse arc order. *)
      let rec collect acc = function
        | [] -> assert false
        | x :: rest -> if x = u then u :: acc else collect (x :: acc) rest
      in
      canonical_rotation (collect [] path)
    end
    else begin
      on_path.(u) <- true;
      walk (u :: path) (sole_out_neighbor g u)
    end
  in
  walk [] v

let functional_cycles g =
  let n = Digraph.n g in
  (* 0 = unvisited, 1 = on current walk, 2 = finished. *)
  let state = Array.make n 0 in
  let cycles = ref [] in
  for start = 0 to n - 1 do
    if state.(start) = 0 then begin
      let rec walk path u =
        match state.(u) with
        | 2 -> ()
        | 1 ->
            let rec collect acc = function
              | [] -> assert false
              | x :: rest -> if x = u then u :: acc else collect (x :: acc) rest
            in
            cycles := canonical_rotation (collect [] path) :: !cycles
        | _ ->
            state.(u) <- 1;
            walk (u :: path) (sole_out_neighbor g u)
      in
      walk [] start;
      (* Close out the walk: everything reachable from [start] is done. *)
      let rec finish u =
        if state.(u) = 1 then begin
          state.(u) <- 2;
          finish (sole_out_neighbor g u)
        end
      in
      finish start
    end
  done;
  List.sort compare !cycles

let distance_to_set g vs = Bfs.distances_from_set g vs

let is_unicyclic g =
  Undirected.n g >= 1
  && Components.is_connected g
  && Undirected.edge_count g = Undirected.n g

(* Shortest cycle through edge (u, v) = 1 + shortest u-v path avoiding
   that edge; the girth is the minimum over all edges. *)
let bfs_avoiding g ~skip_u ~skip_v ~src ~dst =
  let n = Undirected.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        let skipped = (u = skip_u && v = skip_v) || (u = skip_v && v = skip_u) in
        if (not skipped) && dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          if v = dst then found := Some dist.(v) else Queue.add v queue
        end)
      (Undirected.neighbors g u)
  done;
  !found

let girth g =
  let best = ref None in
  Undirected.iter_edges
    (fun u v ->
      match bfs_avoiding g ~skip_u:u ~skip_v:v ~src:u ~dst:v with
      | None -> ()
      | Some d ->
          let len = d + 1 in
          if (match !best with None -> true | Some b -> len < b) then
            best := Some len)
    g;
  !best
