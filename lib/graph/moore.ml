(* Saturating multiplication / addition keep the counting bounds safe for
   any parameters a test might throw at them. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let sat_add a b = if a > max_int - b then max_int else a + b

(* Subtracting 1 from a possibly-saturated count: saturation absorbs. *)
let sat_pred a = if a = max_int then max_int else a - 1

let sat_pow base e =
  let rec go acc i = if i = 0 then acc else go (sat_mul acc base) (i - 1) in
  go 1 e

let geometric_bound ~delta ~diameter =
  if delta < 0 || diameter < 0 then invalid_arg "Moore.geometric_bound: negative argument";
  let rec go acc term i =
    if i > diameter then acc
    else go (sat_add acc term) (sat_mul term delta) (i + 1)
  in
  go 0 1 0

let ball_bound ~delta ~radius =
  if delta < 0 || radius < 0 then invalid_arg "Moore.ball_bound: negative argument";
  if radius = 0 then 1
  else
    match delta with
    | 0 -> 1
    | 1 -> 2
    | 2 -> sat_add 1 (sat_mul 2 radius)
    | _ ->
        (* 1 + delta * sum_{i=0}^{radius-1} (delta-1)^i *)
        let rec layers acc term i =
          if i >= radius then acc
          else layers (sat_add acc term) (sat_mul term (delta - 1)) (i + 1)
        in
        sat_add 1 (sat_mul delta (layers 0 1 0))

let min_diameter ~n ~delta =
  if n <= 1 then 0
  else if delta <= 0 then invalid_arg "Moore.min_diameter: delta <= 0 with n > 1"
  else begin
    let rec search d =
      if ball_bound ~delta ~radius:d >= n then d else search (d + 1)
    in
    search 1
  end

let lemma_5_1_condition ~t ~k =
  if t < 1 || k < 1 then invalid_arg "Moore.lemma_5_1_condition: bad arguments";
  (* (2t)^k - 1 < t^k * (2t - 1) *)
  let lhs = sat_pred (sat_pow (2 * t) k) in
  let rhs = sat_mul (sat_pow t k) ((2 * t) - 1) in
  lhs < rhs

let lemma_5_1_holds g =
  match Distances.diameter g with
  | None -> false
  | Some d ->
      let n = Undirected.n g in
      let delta = Undirected.max_degree g in
      if delta <= 1 then n <= 2
      else sat_pred (sat_pow delta d) < sat_mul n (delta - 1)
