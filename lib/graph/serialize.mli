(** Graph serialization: a plain-text edge-list format and Graphviz DOT
    export.

    The text format is line-oriented and self-describing enough for the
    CLI and for dumping experiment artifacts:

    {v
    digraph 5        (or: graph 5)
    0 1
    0 3
    2 4
    v}

    The first line gives the kind and the vertex count; each following
    non-empty line is one arc (tail head) or edge.  Lines starting with
    [#] are comments.  Round-trips exactly through {!Digraph.to_text} /
    {!Digraph.of_text} (and the undirected pair). *)

module Digraph_io : sig
  val to_text : Digraph.t -> string
  val of_text : string -> Digraph.t
  (** @raise Invalid_argument on malformed input. *)

  val to_dot : ?name:string -> Digraph.t -> string
  (** Graphviz digraph; braces render as two arcs. *)
end

module Undirected_io : sig
  val to_text : Undirected.t -> string
  val of_text : string -> Undirected.t
  (** @raise Invalid_argument on malformed input. *)

  val to_dot : ?name:string -> Undirected.t -> string
end
