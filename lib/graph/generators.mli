(** Graph and realization generators.

    Every instance family the paper reasons about, as concrete
    constructors.  Functions returning {!Digraph.t} fix the arc ownership
    exactly as the corresponding proof does (ownership matters: it
    determines the players' budgets); functions returning
    {!Undirected.t} are plain graph families used as solver inputs and
    random workloads. *)

(** {1 Deterministic digraph families (with the paper's ownership)} *)

val directed_path : int -> Digraph.t
(** [v_0 -> v_1 -> ... -> v_{n-1}]; every non-final vertex owns one arc. *)

val directed_cycle : int -> Digraph.t
(** [v_i -> v_{i+1 mod n}]; each vertex owns one arc.  [n >= 2]; [n = 2]
    is a brace. *)

val out_star : int -> Digraph.t
(** Center 0 owns arcs to everyone else ([n >= 1]). *)

val in_star : int -> Digraph.t
(** Every non-center vertex owns one arc to center 0. *)

val tripod : int -> Digraph.t
(** The Theorem 3.2 / Figure 2 tree on [n = 3k + 1] vertices ([k >= 1]):
    three legs [X], [Y], [Z] of length [k] joined at a budget-0 hub [w].
    Vertex layout: [x_i = i - 1], [y_i = k + i - 1], [z_i = 2k + i - 1]
    (for [1 <= i <= k]), [w = 3k].  Arcs: [x_i -> x_(i+1)] (same for y,
    z) and [x_1 -> w], [y_1 -> w], [z_1 -> w].  Diameter [2k]. *)

val perfect_binary_tree : int -> Digraph.t
(** The Theorem 3.4 tree on [n = 2^(k+1) - 1] vertices for depth
    [k >= 0], vertices numbered 1-based in the paper but 0-based here:
    vertex [i] owns arcs to [2i + 1] and [2i + 2] when they exist.
    Diameter [2k]. *)

val broom : handle:int -> bristles:int -> Digraph.t
(** A path of [handle] vertices whose far end owns arcs to [bristles]
    extra leaves.  Handy adversarial tree workload. *)

val spider : legs:int -> leg_len:int -> Digraph.t
(** Generalized tripod: [legs] paths of [leg_len] vertices joined at a
    hub (vertex [legs * leg_len]); first vertex of each leg owns the arc
    to the hub, interior arcs point outward as in {!tripod}. *)

val complete_digraph : int -> Digraph.t
(** Vertex [u] owns arcs to all [v > u]: realizes diameter 1 with
    budgets [n-1, n-2, ..., 0]. *)

(** {1 The Lemma 5.2 shift graph} *)

val shift_graph : t:int -> k:int -> Undirected.t
(** Vertex set [{0..t-1}^k] encoded as base-[t] integers (most
    significant digit first); [x] and [y] adjacent iff [x]'s digit
    suffix of length [k-1] equals [y]'s prefix or vice versa (de
    Bruijn-style shifts), excluding self-loops, merging parallel edges.
    Has [t^k] vertices, min degree >= [t - 1], max degree <= [2t], and
    diameter exactly [k] when [t > 2].
    @raise Invalid_argument if [t < 2] or [k < 1], or if [t^k] would
    overflow a reasonable size (> 2^22 vertices). *)

val shift_graph_orientation : t:int -> k:int -> Digraph.t
(** An orientation of {!shift_graph} with every out-degree >= 1 (exists
    since min degree >= 2 for [t >= 3]; Theorem 5.3 needs all budgets
    positive).  Each vertex owns its arc to its left-rotation (or
    smallest neighbor if the rotation is itself), remaining edges owned
    by their smaller endpoint. *)

(** {1 Undirected families} *)

val path_graph : int -> Undirected.t
val cycle_graph : int -> Undirected.t
val star_graph : int -> Undirected.t
val complete_graph : int -> Undirected.t
val grid_graph : rows:int -> cols:int -> Undirected.t

(** {1 Random workloads} *)

val random_gnp : Random.State.t -> n:int -> p:float -> Undirected.t
(** Erdos-Renyi G(n, p). *)

val random_connected_gnp : Random.State.t -> n:int -> p:float -> Undirected.t
(** G(n, p) with a uniform random spanning-tree-ish patch-up: after
    sampling, any disconnection is repaired by joining consecutive
    components with random edges, so the result is always connected. *)

val random_tree : Random.State.t -> int -> Undirected.t
(** Uniform random labelled tree (random Prüfer sequence), [n >= 1]. *)

val random_regularish : Random.State.t -> n:int -> degree:int -> Undirected.t
(** Random graph where each vertex picks [degree] distinct out-choices;
    the underlying simple graph has minimum degree >= [degree] (in-choices
    can push individual degrees higher).  Workload for uniform-budget
    experiments. *)
