(* Adjacency is a growable edge list per node; each edge stores its
   reverse twin's index so residual updates are O(1).  Classic Dinic:
   BFS level graph + DFS blocking flow. *)

type edge = { dst : int; mutable cap : int; rev : int }

type t = {
  n : int;
  adj : edge array ref array;  (* poor man's growable arrays *)
  len : int array;
}

let create n =
  if n < 0 then invalid_arg "Flow.create: negative n";
  { n; adj = Array.init n (fun _ -> ref [||]); len = Array.make n 0 }

let node_count t = t.n

let push t u e =
  let a = !(t.adj.(u)) in
  let l = t.len.(u) in
  if l = Array.length a then begin
    let bigger = Array.make (max 4 (2 * l)) e in
    Array.blit a 0 bigger 0 l;
    t.adj.(u) := bigger
  end;
  !(t.adj.(u)).(l) <- e;
  t.len.(u) <- l + 1

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Flow.add_edge: node out of range";
  if capacity < 0 then invalid_arg "Flow.add_edge: negative capacity";
  push t src { dst; cap = capacity; rev = t.len.(dst) };
  push t dst { dst = src; cap = 0; rev = t.len.(src) - 1 }

let bfs_levels t source =
  let level = Array.make t.n (-1) in
  let queue = Queue.create () in
  level.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let edges = !(t.adj.(u)) in
    for i = 0 to t.len.(u) - 1 do
      let e = edges.(i) in
      if e.cap > 0 && level.(e.dst) = -1 then begin
        level.(e.dst) <- level.(u) + 1;
        Queue.add e.dst queue
      end
    done
  done;
  level

let rec dfs_push t level iter u sink pushed =
  if u = sink then pushed
  else begin
    let result = ref 0 in
    while !result = 0 && iter.(u) < t.len.(u) do
      let e = !(t.adj.(u)).(iter.(u)) in
      if e.cap > 0 && level.(e.dst) = level.(u) + 1 then begin
        let got = dfs_push t level iter e.dst sink (min pushed e.cap) in
        if got > 0 then begin
          e.cap <- e.cap - got;
          let back = !(t.adj.(e.dst)).(e.rev) in
          back.cap <- back.cap + got;
          result := got
        end
        else iter.(u) <- iter.(u) + 1
      end
      else iter.(u) <- iter.(u) + 1
    done;
    !result
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Flow.max_flow: source = sink";
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let level = bfs_levels t source in
    if level.(sink) = -1 then continue := false
    else begin
      let iter = Array.make t.n 0 in
      let rec drain () =
        let got = dfs_push t level iter source sink max_int in
        if got > 0 then begin
          total := !total + got;
          drain ()
        end
      in
      drain ()
    end
  done;
  !total

let min_cut_side t ~source =
  let level = bfs_levels t source in
  Array.map (fun l -> if l >= 0 then 1 else 0) level
