(** Flat CSR (compressed sparse row) snapshot of an undirected graph.

    The arc-owned {!Digraph} / {!Undirected} adjacency is an array of
    per-vertex arrays — fine for construction and queries, but the BFS
    hot loops (every distance, diameter, usage cost and Table-1 check
    in the reproduction runs on repeated BFS sweeps) pay a pointer
    chase, a bounds check and an [Array.iter] closure per vertex.  A
    snapshot packs the whole adjacency into two [Bigarray] [int32]
    vectors — [offs] of length [n+1] and [targets] of length [2m], row
    [u] being [targets.[offs.[u] .. offs.[u+1])] — so a sweep is two
    sequential int32 streams with no per-vertex allocation at all.

    {b Invariant}: {!Undirected.t} is immutable, so a snapshot never
    goes stale — {!Undirected.id} is the version stamp.  {!snapshot}
    memoizes the last snapshot per domain keyed on physical identity;
    "mutation" in this codebase always builds a new graph, which simply
    misses the cache and rebuilds.  [int32] halves the memory traffic
    of the target stream vs boxed-free [int] arrays and is ample: the
    substrate tops out far below [2^31] vertices/arcs.

    The BFS kernels write into caller-provided scratch ([dist]/[queue]
    int arrays), so a steady-state caller allocates {e zero} words per
    traversal — the bench's [bfs-csr-gnp200] pins that.  Budget
    accounting matches {!Bfs}: one checkpoint before the sweep, popped
    count spent after. *)

type t

val of_undirected : Undirected.t -> t
(** Build a fresh snapshot; O(n + m). *)

val snapshot : Undirected.t -> t
(** Memoized {!of_undirected}: each domain caches the snapshot of the
    graph it saw last (keyed on physical identity, so immutability
    makes staleness impossible).  Loops that alternate between many
    graphs fall back to rebuild-per-call, which is the same O(n + m)
    as the sweep itself. *)

val graph_id : t -> int
(** {!Undirected.id} of the graph this snapshot was built from. *)

val n : t -> int
val arc_count : t -> int
(** Directed arc slots, i.e. [2 * edge_count]. *)

val degree : t -> int -> int

val bfs_into :
  ?budget:Bbng_obs.Budgeted.t ->
  t ->
  src:int ->
  dist:int array ->
  queue:int array ->
  int
(** Single-source BFS over the flat arrays.  Fills [dist] with hop
    distances ([-1] = {!Bfs.unreachable} where no path) and uses
    [queue] as the frontier ring; both must have length [>= n].
    Returns the number of vertices popped (= reached).  Allocates
    nothing.  [?budget] as in {!Bfs.distances}: checkpoint before,
    popped count spent after.
    @raise Invalid_argument on a bad [src] or short scratch arrays. *)

val bfs_set_into :
  ?budget:Bbng_obs.Budgeted.t ->
  t ->
  sources:int list ->
  dist:int array ->
  queue:int array ->
  int
(** Multi-source variant: every source gets distance 0 (duplicates
    merged).  @raise Invalid_argument on an empty or out-of-range
    source list or short scratch arrays. *)

val max_dist : t -> int array -> int
(** Largest finite entry of a [dist] row filled by a kernel above
    (0 for an all-unreachable row); a popped count of [n] makes it the
    eccentricity of the source. *)
