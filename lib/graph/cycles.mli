(** Cycle structure, specialized for the unicyclic graphs of Section 4.

    In a [(1,...,1)]-BG realization every vertex owns exactly one arc, so
    the functional digraph has exactly one directed cycle per (weakly)
    connected component, and Theorems 4.1/4.2 bound the cycle length and
    the depth of the trees hanging off it.  A brace ([u <-> v]) counts as
    a directed 2-cycle, exactly as in the paper. *)

val functional_cycle : Digraph.t -> int -> int list
(** [functional_cycle g v] follows the unique out-arc from [v] until a
    vertex repeats and returns that directed cycle (in arc order,
    starting from its smallest vertex).  Requires every vertex reachable
    by out-arcs from [v] to have out-degree exactly 1.
    @raise Invalid_argument if an out-degree other than 1 is met. *)

val functional_cycles : Digraph.t -> int list list
(** All distinct directed cycles of a functional digraph (out-degree 1
    everywhere), one per weak component, each starting at its smallest
    vertex.  Sorted by that smallest vertex. *)

val distance_to_set : Undirected.t -> int list -> int array
(** [distance_to_set g vs] is the hop distance of each vertex to the set
    [vs] in the underlying graph ([Bfs.unreachable] if none reachable).
    Used for the "every vertex within distance 2 of the cycle" claims. *)

val is_unicyclic : Undirected.t -> bool
(** [true] iff connected with exactly [n] edges (n >= 1): one cycle with
    trees attached.  Note: a brace collapses to a single undirected edge
    in {!Undirected.t}, so a braced [(1,...,1)]-BG realization is {e not}
    unicyclic in this sense — query the digraph-level functions above for
    that case. *)

val girth : Undirected.t -> int option
(** Length of a shortest cycle in the simple graph, [None] for forests.
    O(n (n + m)) BFS-based. *)
