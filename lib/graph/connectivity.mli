(** Vertex connectivity via Menger's theorem.

    Theorem 7.2 of the paper: a SUM equilibrium with all budgets >= k is
    k-connected or has diameter < 4.  This module provides the exact
    connectivity oracle used to check that claim empirically.

    Implementation: local connectivity [kappa(u, v)] for non-adjacent
    [u], [v] equals the max flow in the vertex-split network (each vertex
    becomes an [in -> out] unit-capacity edge).  The global value follows
    Even's scheme: it suffices to take the minimum of [kappa(v_i, v_j)]
    over all non-adjacent pairs with [i <= kappa + 1], so we scan seeds
    [0, 1, 2, ...] and stop once the current best is below the next seed
    index. *)

val local_connectivity : Undirected.t -> int -> int -> int
(** [local_connectivity g u v] is the maximum number of internally
    vertex-disjoint [u]-[v] paths.
    @raise Invalid_argument if [u = v] or the vertices are adjacent (the
    quantity is unbounded by convention in that case). *)

val vertex_connectivity : Undirected.t -> int
(** Global vertex connectivity; [n-1] for a complete graph, [0] for a
    disconnected or single-vertex graph. *)

val is_k_connected : Undirected.t -> int -> bool
(** [is_k_connected g k] iff [n > k] and no cut of fewer than [k]
    vertices disconnects [g].  Every graph is 0-connected; short-circuits
    cheap cases ([k <= 1]) without flow computations. *)

val min_vertex_cut : Undirected.t -> int list option
(** A minimum vertex cut, or [None] when none exists (complete graphs
    and graphs with fewer than 2 vertices).  The empty list is returned
    for disconnected graphs. *)
