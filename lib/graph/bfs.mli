(** Breadth-first search on the underlying undirected graph.

    All distances in the game are hop counts in [U(G)], so BFS is the
    single metric primitive of the whole system.  Unreachable vertices
    get distance {!unreachable} = [-1]; translation to the paper's
    [Cinf = n^2] convention happens in the game's cost layer.

    The one-shot walkers ({!distances}, {!distances_from_set},
    {!distance}, {!level_sets}) run over a flat {!Csr.t} snapshot of
    the graph (memoized per domain) with per-domain frontier scratch,
    so each call allocates only its result row; {!legacy_distances} is
    the retained adjacency-walking implementation, kept as the qcheck
    oracle the CSR engine is pinned against. *)

val unreachable : int
(** [-1], the sentinel for "no path". *)

val distances :
  ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int array
(** [distances g src] is the array of hop distances from [src];
    [unreachable] where there is no path.

    [?budget] (default unlimited) makes the traversal cancellable at
    run granularity: the popped-vertex count is charged as work, and a
    call on an expired token raises {!Bbng_obs.Budgeted.Expired} before
    doing any work — budget-aware search loops (the solvers' exact
    enumerations) catch it at their boundary and degrade. *)

val distances_from_set :
  ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int list -> int array
(** Multi-source BFS: distance to the nearest source.  The paper's
    [dist(u, A)].  All sources get 0.  [?budget] as in {!distances}.
    @raise Invalid_argument if the source list is empty. *)

val distance :
  ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int -> int option
(** [distance g u v] is [Some d] or [None] if disconnected.
    [u = v] answers [Some 0] without a traversal (and without touching
    the token); [?budget] as in {!distances} otherwise.
    @raise Invalid_argument if [u] or [v] is out of range — including
    on the [u = v] fast path. *)

val legacy_distances :
  ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int array
(** {!distances} computed by the retained per-vertex-adjacency walker
    instead of the CSR snapshot.  Same contract, slower: this is the
    oracle the CSR engine is property-tested against, not an API to
    build on. *)

val parents : ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int array
(** BFS tree parents; [parents.(src) = src]; [-1] for unreachable.  Ties
    broken toward the smallest-index parent, so the tree is canonical.
    [?budget] as in {!distances}. *)

val shortest_path :
  ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int -> int list option
(** A shortest [u -> v] vertex sequence including both endpoints.
    [?budget] as in {!distances}. *)

val level_sets :
  ?budget:Bbng_obs.Budgeted.t -> Undirected.t -> int -> int list array
(** [level_sets g src] groups vertices by distance: element [d] lists the
    vertices at distance exactly [d] (increasing index order).  The array
    length is [ecc+1] where [ecc] is the largest finite distance;
    unreachable vertices are not listed. *)
