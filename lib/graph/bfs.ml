let unreachable = -1

let c_runs = Bbng_obs.Counter.make "bfs.runs"
let c_popped = Bbng_obs.Counter.make "bfs.vertices_popped"
let h_popped = Bbng_obs.Histogram.make "bfs.popped_per_run"

(* batched: two atomic adds per traversal, none per vertex; the
   per-run distribution only when observability is on (one extra
   atomic load otherwise) *)
let observe popped =
  Bbng_obs.Counter.bump c_runs;
  Bbng_obs.Counter.add c_popped popped;
  if Bbng_obs.Span.enabled () then Bbng_obs.Histogram.record h_popped popped

(* --- legacy engine: walks the per-vertex adjacency arrays ---

   Kept as the qcheck oracle for the CSR fast path below (and as the
   parent-recording walker, which is off the hot path).  The queue is a
   preallocated ring over at most n vertices, so each run allocates
   exactly two arrays.

   Budget accounting is per-traversal: one checkpoint before the work
   (an expired token stops a search between BFS runs, never mid-run —
   a single run is O(n + m) and bounded) and one spend of the popped
   count after, so work units line up with vertex visits across every
   evaluator. *)
let legacy_core ?(budget = Bbng_obs.Budgeted.unlimited) g sources ~record_parent =
  Bbng_obs.Budgeted.checkpoint budget;
  let n = Undirected.n g in
  let dist = Array.make n unreachable in
  let parent = if record_parent then Array.make n (-1) else [||] in
  let queue = Array.make (max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) = unreachable then begin
        dist.(s) <- 0;
        if record_parent then parent.(s) <- s;
        queue.(!tail) <- s;
        incr tail
      end)
    sources;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    Array.iter
      (fun v ->
        if dist.(v) = unreachable then begin
          dist.(v) <- du + 1;
          if record_parent then parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end)
      (Undirected.neighbors g u)
  done;
  Bbng_obs.Budgeted.spend budget !head;
  observe !head;
  (dist, parent)

let legacy_distances ?budget g src =
  fst (legacy_core ?budget g [ src ] ~record_parent:false)

(* --- CSR fast path ---

   The snapshot lookup is a per-domain one-slot memo (see Csr), and the
   frontier queue is per-domain scratch grown to the largest n seen, so
   a steady-state [distances] call allocates exactly its result row. *)

let queue_key : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let queue_for n =
  let cell = Domain.DLS.get queue_key in
  if Array.length !cell < n then cell := Array.make (max n 16) 0;
  !cell

let distances ?budget g src =
  let csr = Csr.snapshot g in
  let n = Undirected.n g in
  let dist = Array.make (max n 1) unreachable in
  let popped = Csr.bfs_into ?budget csr ~src ~dist ~queue:(queue_for n) in
  observe popped;
  dist

let distances_from_set ?budget g sources =
  if sources = [] then invalid_arg "Bfs.distances_from_set: empty source set";
  let csr = Csr.snapshot g in
  let n = Undirected.n g in
  let dist = Array.make (max n 1) unreachable in
  let popped = Csr.bfs_set_into ?budget csr ~sources ~dist ~queue:(queue_for n) in
  observe popped;
  dist

let distance ?budget g u v =
  (* validate before the u = v fast path: [distance g 99 99] on a
     3-vertex graph must raise like every other entry point, not
     silently answer [Some 0] *)
  let n = Undirected.n g in
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Bfs.distance: vertex %d out of range [0,%d)" u n);
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Bfs.distance: vertex %d out of range [0,%d)" v n);
  if u = v then Some 0
  else
    let dist = distances ?budget g u in
    if dist.(v) = unreachable then None else Some dist.(v)

let parents ?budget g src = snd (legacy_core ?budget g [ src ] ~record_parent:true)

let shortest_path ?budget g u v =
  let parent = parents ?budget g u in
  if parent.(v) = -1 then None
  else begin
    let rec walk acc x = if x = u then u :: acc else walk (x :: acc) parent.(x) in
    Some (walk [] v)
  end

let level_sets ?budget g src =
  let dist = distances ?budget g src in
  let ecc = Array.fold_left max 0 dist in
  let levels = Array.make (ecc + 1) [] in
  for v = Undirected.n g - 1 downto 0 do
    if dist.(v) <> unreachable then levels.(dist.(v)) <- v :: levels.(dist.(v))
  done;
  levels
