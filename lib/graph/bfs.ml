let unreachable = -1

let c_runs = Bbng_obs.Counter.make "bfs.runs"
let c_popped = Bbng_obs.Counter.make "bfs.vertices_popped"
let h_popped = Bbng_obs.Histogram.make "bfs.popped_per_run"

(* The queue is a preallocated ring over at most n vertices, so each BFS
   allocates exactly two arrays.

   Budget accounting is per-traversal: one checkpoint before the work
   (an expired token stops a search between BFS runs, never mid-run —
   a single run is O(n + m) and bounded) and one spend of the popped
   count after, so work units line up with vertex visits across every
   evaluator. *)
let bfs_core ?(budget = Bbng_obs.Budgeted.unlimited) g sources ~record_parent =
  Bbng_obs.Budgeted.checkpoint budget;
  let n = Undirected.n g in
  let dist = Array.make n unreachable in
  let parent = if record_parent then Array.make n (-1) else [||] in
  let queue = Array.make (max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) = unreachable then begin
        dist.(s) <- 0;
        if record_parent then parent.(s) <- s;
        queue.(!tail) <- s;
        incr tail
      end)
    sources;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    Array.iter
      (fun v ->
        if dist.(v) = unreachable then begin
          dist.(v) <- du + 1;
          if record_parent then parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end)
      (Undirected.neighbors g u)
  done;
  (* batched: two atomic adds per traversal, none per vertex; the
     per-run distribution only when observability is on (one extra
     atomic load otherwise) *)
  Bbng_obs.Counter.bump c_runs;
  Bbng_obs.Counter.add c_popped !head;
  Bbng_obs.Budgeted.spend budget !head;
  if Bbng_obs.Span.enabled () then Bbng_obs.Histogram.record h_popped !head;
  (dist, parent)

let distances ?budget g src = fst (bfs_core ?budget g [ src ] ~record_parent:false)

let distances_from_set ?budget g sources =
  if sources = [] then invalid_arg "Bfs.distances_from_set: empty source set";
  fst (bfs_core ?budget g sources ~record_parent:false)

let distance ?budget g u v =
  if u = v then Some 0
  else
    let dist = distances ?budget g u in
    if dist.(v) = unreachable then None else Some dist.(v)

let parents ?budget g src = snd (bfs_core ?budget g [ src ] ~record_parent:true)

let shortest_path ?budget g u v =
  let parent = parents ?budget g u in
  if parent.(v) = -1 then None
  else begin
    let rec walk acc x = if x = u then u :: acc else walk (x :: acc) parent.(x) in
    Some (walk [] v)
  end

let level_sets ?budget g src =
  let dist = distances ?budget g src in
  let ecc = Array.fold_left max 0 dist in
  let levels = Array.make (ecc + 1) [] in
  for v = Undirected.n g - 1 downto 0 do
    if dist.(v) <> unreachable then levels.(dist.(v)) <- v :: levels.(dist.(v))
  done;
  levels
