let is_tree g =
  Undirected.n g >= 1
  && Undirected.edge_count g = Undirected.n g - 1
  && Components.is_connected g

let is_forest g =
  let l = Components.components g in
  (* A graph is a forest iff every component has (size - 1) edges, i.e.
     m = n_used - count where n_used counts all vertices. *)
  Undirected.edge_count g = Undirected.n g - l.count

type rooted = {
  root : int;
  parent : int array;
  depth : int array;
  order : int array;
}

let root_at g root =
  let parent = Bfs.parents g root in
  let depth = Bfs.distances g root in
  let n = Undirected.n g in
  let reachable = ref [] in
  (* BFS order = non-decreasing depth; a stable sort of reachable
     vertices by depth reconstructs it. *)
  for v = n - 1 downto 0 do
    if depth.(v) >= 0 then reachable := v :: !reachable
  done;
  let order = Array.of_list !reachable in
  let by_depth = Array.map (fun v -> (depth.(v), v)) order in
  Array.stable_sort compare by_depth;
  let order = Array.map snd by_depth in
  { root; parent; depth; order }

let subtree_sizes r =
  let n = Array.length r.parent in
  let sizes = Array.make n 0 in
  Array.iter (fun v -> sizes.(v) <- 1) r.order;
  (* Deepest first: each vertex pushes its accumulated size up to its
     parent. *)
  for i = Array.length r.order - 1 downto 0 do
    let v = r.order.(i) in
    if v <> r.root then sizes.(r.parent.(v)) <- sizes.(r.parent.(v)) + sizes.(v)
  done;
  sizes

let children r v =
  let acc = ref [] in
  for u = Array.length r.parent - 1 downto 0 do
    if u <> r.root && r.parent.(u) = v then acc := u :: !acc
  done;
  !acc

let height r = Array.fold_left max 0 r.depth

let tree_diameter_path g =
  if not (is_tree g) then invalid_arg "Trees.tree_diameter_path: not a tree";
  let a, _ = Distances.farthest g 0 in
  let b, _ = Distances.farthest g a in
  match Bfs.shortest_path g a b with
  | Some p -> p
  | None -> assert false (* a tree is connected *)

let path_attachment_sizes g path =
  let n = Undirected.n g in
  let path_arr = Array.of_list path in
  let len = Array.length path_arr in
  if len = 0 then invalid_arg "Trees.path_attachment_sizes: empty path";
  let on_path = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then invalid_arg "Trees.path_attachment_sizes: bad vertex";
      if on_path.(v) >= 0 then invalid_arg "Trees.path_attachment_sizes: repeated vertex";
      on_path.(v) <- i;
      if i > 0 && not (Undirected.mem_edge g path_arr.(i - 1) v) then
        invalid_arg "Trees.path_attachment_sizes: not a path of the graph")
    path_arr;
  (* Multi-source BFS from the path; each vertex inherits the path index
     of the source its BFS tree hangs from. *)
  let owner = Array.make n (-1) in
  Array.iteri (fun i v -> owner.(v) <- i) path_arr;
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun v ->
      dist.(v) <- 0;
      Queue.add v queue)
    path_arr;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          owner.(v) <- owner.(u);
          Queue.add v queue
        end)
      (Undirected.neighbors g u)
  done;
  let a = Array.make len 0 in
  Array.iter (fun i -> if i >= 0 then a.(i) <- a.(i) + 1) owner;
  a

let leaves g =
  let acc = ref [] in
  for v = Undirected.n g - 1 downto 0 do
    if Undirected.degree g v = 1 then acc := v :: !acc
  done;
  !acc

let centers g =
  if not (is_tree g) then invalid_arg "Trees.centers: not a tree";
  let n = Undirected.n g in
  if n = 1 then [ 0 ]
  else begin
    (* Iteratively strip leaves until <= 2 vertices remain. *)
    let deg = Array.init n (Undirected.degree g) in
    let removed = Array.make n false in
    let frontier = ref [] in
    for v = n - 1 downto 0 do
      if deg.(v) = 1 then frontier := v :: !frontier
    done;
    let remaining = ref n in
    let current = ref !frontier in
    while !remaining > 2 do
      let next = ref [] in
      List.iter
        (fun v ->
          removed.(v) <- true;
          decr remaining;
          Array.iter
            (fun u ->
              if not removed.(u) then begin
                deg.(u) <- deg.(u) - 1;
                if deg.(u) = 1 then next := u :: !next
              end)
            (Undirected.neighbors g v))
        !current;
      current := !next
    done;
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if not removed.(v) then acc := v :: !acc
    done;
    !acc
  end
