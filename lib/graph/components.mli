(** Connected components of the underlying graph.

    The game's cost functions penalize disconnection through the number
    of components [kappa] (MAX version) and through [Cinf] distances
    (SUM version), so component counting sits on the hot path of cost
    evaluation. *)

type labelling = {
  label : int array;  (** [label.(v)] is the component id of [v], ids are
                          [0 .. count-1] in order of smallest member. *)
  count : int;        (** number of connected components; 0 iff the graph
                          is empty. *)
}

val components : Undirected.t -> labelling

val count : Undirected.t -> int
(** [count g = (components g).count] without materializing labels. *)

val is_connected : Undirected.t -> bool
(** [true] iff the graph has at most one component (the empty graph is
    connected by convention). *)

val same_component : Undirected.t -> int -> int -> bool

val component_members : labelling -> int -> int list
(** Vertices of a component id, increasing. *)

val sizes : labelling -> int array
(** [sizes l] maps component id to its cardinality. *)

val is_connected_except : Undirected.t -> int list -> bool
(** [is_connected_except g vs] is [true] iff deleting the vertex set
    [vs] leaves a graph whose {e remaining} vertices are all in one
    component (vacuously true when nothing remains).  This is the
    separator test of Section 7: [vs] is a vertex cut iff the result is
    [false]. *)
