(* Vertex split: v_in = 2v, v_out = 2v + 1.  Internal edges have capacity
   1; adjacency edges get capacity n (effectively infinite), so every
   unit of flow consumes one internal vertex on each internal hop. *)

let infinite_cap g = Undirected.n g + 1

let build_split g =
  let n = Undirected.n g in
  let net = Flow.create (2 * n) in
  for v = 0 to n - 1 do
    Flow.add_edge net ~src:(2 * v) ~dst:((2 * v) + 1) ~capacity:1
  done;
  let cap = infinite_cap g in
  Undirected.iter_edges
    (fun u v ->
      Flow.add_edge net ~src:((2 * u) + 1) ~dst:(2 * v) ~capacity:cap;
      Flow.add_edge net ~src:((2 * v) + 1) ~dst:(2 * u) ~capacity:cap)
    g;
  net

let local_flow g u v =
  let net = build_split g in
  let flow = Flow.max_flow net ~source:((2 * u) + 1) ~sink:(2 * v) in
  (net, flow)

let local_connectivity g u v =
  if u = v then invalid_arg "Connectivity.local_connectivity: u = v";
  if Undirected.mem_edge g u v then
    invalid_arg "Connectivity.local_connectivity: adjacent vertices";
  snd (local_flow g u v)

(* Even's seed scheme; [on_best] observes every time the best bound is
   improved with the pair that achieved it, letting [min_vertex_cut]
   recover a witness without duplicating the scan. *)
let connectivity_scan g ~on_best =
  let n = Undirected.n g in
  if n <= 1 then 0
  else if not (Components.is_connected g) then begin
    on_best 0 None;
    0
  end
  else begin
    let best = ref (min (Undirected.min_degree g) (n - 1)) in
    let seed = ref 0 in
    while !seed <= !best && !seed < n do
      let s = !seed in
      for v = 0 to n - 1 do
        if v <> s && not (Undirected.mem_edge g s v) then begin
          let k = local_connectivity g s v in
          if k < !best then begin
            best := k;
            on_best k (Some (s, v))
          end
        end
      done;
      incr seed
    done;
    !best
  end

let vertex_connectivity g = connectivity_scan g ~on_best:(fun _ _ -> ())

let is_k_connected g k =
  let n = Undirected.n g in
  if k <= 0 then true
  else if n <= k then false
  else if k = 1 then Components.is_connected g
  else Components.is_connected g && Undirected.min_degree g >= k
       && vertex_connectivity g >= k

let min_vertex_cut g =
  let n = Undirected.n g in
  if n < 2 then None
  else begin
    let witness = ref None in
    let k = connectivity_scan g ~on_best:(fun _ pair -> witness := pair) in
    if k = 0 then Some []
    else if k = n - 1 then None (* complete graph: no cut exists *)
    else
      match !witness with
      | None ->
          (* best never improved below the degree bound: a minimum-degree
             vertex's neighborhood is a minimum cut. *)
          let v =
            let best = ref 0 in
            for u = 1 to n - 1 do
              if Undirected.degree g u < Undirected.degree g !best then best := u
            done;
            !best
          in
          Some (Array.to_list (Undirected.neighbors g v))
      | Some (s, t) ->
          let net, _flow = local_flow g s t in
          let side = Flow.min_cut_side net ~source:((2 * s) + 1) in
          let cut = ref [] in
          for v = n - 1 downto 0 do
            if side.(2 * v) = 1 && side.((2 * v) + 1) = 0 then cut := v :: !cut
          done;
          Some !cut
  end
