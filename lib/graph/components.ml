type labelling = { label : int array; count : int }

(* Iterative DFS with an explicit stack; component ids are assigned in
   order of the smallest vertex they contain because the outer loop scans
   vertices increasingly. *)
let components_skip g skip =
  let n = Undirected.n g in
  let label = Array.make n (-1) in
  let stack = Array.make (max n 1) 0 in
  let count = ref 0 in
  for start = 0 to n - 1 do
    if label.(start) = -1 && not skip.(start) then begin
      let id = !count in
      incr count;
      let top = ref 0 in
      stack.(0) <- start;
      top := 1;
      label.(start) <- id;
      while !top > 0 do
        decr top;
        let u = stack.(!top) in
        Array.iter
          (fun v ->
            if label.(v) = -1 && not skip.(v) then begin
              label.(v) <- id;
              stack.(!top) <- v;
              incr top
            end)
          (Undirected.neighbors g u)
      done
    end
  done;
  { label; count = !count }

let no_skip g = Array.make (Undirected.n g) false

let components g = components_skip g (no_skip g)

let count g = (components g).count

let is_connected g = count g <= 1

let same_component g u v =
  let l = components g in
  l.label.(u) = l.label.(v)

let component_members l id =
  let acc = ref [] in
  for v = Array.length l.label - 1 downto 0 do
    if l.label.(v) = id then acc := v :: !acc
  done;
  !acc

let sizes l =
  let s = Array.make l.count 0 in
  Array.iter (fun id -> if id >= 0 then s.(id) <- s.(id) + 1) l.label;
  s

let is_connected_except g vs =
  let skip = no_skip g in
  List.iter (fun v -> skip.(v) <- true) vs;
  (components_skip g skip).count <= 1
