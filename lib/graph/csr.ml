(* Flat CSR snapshot of the undirected view.  See the interface for the
   invariant story; the short version: graphs are immutable, so a
   snapshot is a pure function of the graph and the per-domain memo can
   key on physical identity. *)

type ivec = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  graph_id : int;
  n : int;
  arcs : int;
  offs : ivec;    (* length n + 1; offs.{0} = 0, offs.{n} = arcs *)
  targets : ivec; (* length max(arcs, 1); row u = [offs.{u}, offs.{u+1}) *)
}

let c_builds = Bbng_obs.Counter.make "csr.snapshots_built"
let c_hits = Bbng_obs.Counter.make "csr.snapshot_hits"

let graph_id t = t.graph_id
let n t = t.n
let arc_count t = t.arcs

let of_undirected g =
  Bbng_obs.Counter.bump c_builds;
  let n = Undirected.n g in
  let offs = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (n + 1) in
  Bigarray.Array1.set offs 0 0l;
  let arcs = ref 0 in
  for u = 0 to n - 1 do
    arcs := !arcs + Undirected.degree g u;
    Bigarray.Array1.set offs (u + 1) (Int32.of_int !arcs)
  done;
  let targets =
    Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max !arcs 1)
  in
  let k = ref 0 in
  for u = 0 to n - 1 do
    let nbrs = Undirected.neighbors g u in
    for i = 0 to Array.length nbrs - 1 do
      Bigarray.Array1.set targets !k (Int32.of_int nbrs.(i));
      incr k
    done
  done;
  { graph_id = Undirected.id g; n; arcs = !arcs; offs; targets }

(* One-slot memo per domain: the BFS-heavy loops (diameter, usage
   costs, census per-equilibrium stats) hammer one graph at a time, so
   a last-graph cache captures nearly every hit without a table to
   clean, and per-domain slots make it race-free under Parallel. *)
let slot : (Undirected.t * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let snapshot g =
  let cell = Domain.DLS.get slot in
  match !cell with
  | Some (g0, c) when g0 == g ->
      Bbng_obs.Counter.bump c_hits;
      c
  | _ ->
      let c = of_undirected g in
      cell := Some (g, c);
      c

let degree t u =
  if u < 0 || u >= t.n then
    invalid_arg (Printf.sprintf "Csr.degree: vertex %d out of range [0,%d)" u t.n);
  Int32.to_int (Bigarray.Array1.get t.offs (u + 1))
  - Int32.to_int (Bigarray.Array1.get t.offs u)

let check_scratch name t ~dist ~queue =
  if Array.length dist < t.n || Array.length queue < t.n then
    invalid_arg (name ^ ": scratch arrays shorter than n")

(* The hot loop: a direction-optimizing (Beamer-style) level-
   synchronous BFS.  Top-down levels pop the frontier segment of
   [queue] and scan its arcs; once the frontier's arc count dominates
   the arcs still leaving unvisited vertices (the small-world endgame,
   where a classic BFS spends most of its arc visits re-probing
   already-visited targets), the sweep flips bottom-up: the unvisited
   pool — packed into the tail of [queue], which is exact because
   visited + unvisited = n — probes its own arcs and stops at the
   first parent in the current level.

   All accesses are unsafe: [queue]/[dist] only ever hold vertices the
   seeding and the loop itself put in range, and [offs]/[targets]
   indices come from [offs] monotonicity.  The int32 loads are
   consumed immediately by [Int32.to_int], so the non-flambda Cmm
   unboxing pass elides the boxes — the kernel allocates nothing
   (pinned by the bench's zero minor-words line). *)

(* switch to bottom-up when frontier_arcs * alpha > unvisited_arcs *)
let alpha = 4

let sweep t budget ~dist ~queue ~tail =
  let offs = t.offs and targets = t.targets in
  let n = t.n in
  let lo = ref 0 and tl = ref tail in
  let level = ref 0 in
  let frontier_arcs = ref 0 and unvisited_arcs = ref t.arcs in
  for i = 0 to tail - 1 do
    let u = Array.unsafe_get queue i in
    let d =
      Int32.to_int (Bigarray.Array1.unsafe_get offs (u + 1))
      - Int32.to_int (Bigarray.Array1.unsafe_get offs u)
    in
    frontier_arcs := !frontier_arcs + d;
    unvisited_arcs := !unvisited_arcs - d
  done;
  let bottom_up = ref false in
  while !lo < !tl do
    if (not !bottom_up) && !frontier_arcs * alpha > !unvisited_arcs then begin
      (* flip: pack every unvisited vertex into queue.[tl, n) *)
      bottom_up := true;
      let w = ref !tl in
      for v = 0 to n - 1 do
        if Array.unsafe_get dist v < 0 then begin
          Array.unsafe_set queue !w v;
          incr w
        end
      done
    end;
    let hi = !tl in
    let du1 = !level + 1 in
    if !bottom_up then begin
      (* examine the pool queue.[hi, n); vertices adjacent to the
         current level move (swap-compacted) into the next frontier
         segment queue.[hi, w) *)
      let w = ref hi in
      for j = hi to n - 1 do
        let v = Array.unsafe_get queue j in
        let k0 = Int32.to_int (Bigarray.Array1.unsafe_get offs v) in
        let k1 = Int32.to_int (Bigarray.Array1.unsafe_get offs (v + 1)) in
        let k = ref k0 and found = ref false in
        while (not !found) && !k < k1 do
          let u = Int32.to_int (Bigarray.Array1.unsafe_get targets !k) in
          if Array.unsafe_get dist u = !level then found := true else incr k
        done;
        if !found then begin
          Array.unsafe_set dist v du1;
          Array.unsafe_set queue j (Array.unsafe_get queue !w);
          Array.unsafe_set queue !w v;
          incr w
        end
      done;
      tl := !w
    end
    else begin
      let next_arcs = ref 0 in
      for i = !lo to hi - 1 do
        let u = Array.unsafe_get queue i in
        let k0 = Int32.to_int (Bigarray.Array1.unsafe_get offs u) in
        let k1 = Int32.to_int (Bigarray.Array1.unsafe_get offs (u + 1)) in
        for k = k0 to k1 - 1 do
          let v = Int32.to_int (Bigarray.Array1.unsafe_get targets k) in
          if Array.unsafe_get dist v < 0 then begin
            Array.unsafe_set dist v du1;
            Array.unsafe_set queue !tl v;
            incr tl;
            let d =
              Int32.to_int (Bigarray.Array1.unsafe_get offs (v + 1))
              - Int32.to_int (Bigarray.Array1.unsafe_get offs v)
            in
            next_arcs := !next_arcs + d;
            unvisited_arcs := !unvisited_arcs - d
          end
        done
      done;
      frontier_arcs := !next_arcs
    end;
    lo := hi;
    incr level
  done;
  Bbng_obs.Budgeted.spend budget !lo;
  !lo

let bfs_into ?(budget = Bbng_obs.Budgeted.unlimited) t ~src ~dist ~queue =
  if src < 0 || src >= t.n then
    invalid_arg
      (Printf.sprintf "Csr.bfs_into: source %d out of range [0,%d)" src t.n);
  check_scratch "Csr.bfs_into" t ~dist ~queue;
  Bbng_obs.Budgeted.checkpoint budget;
  Array.fill dist 0 t.n (-1);
  dist.(src) <- 0;
  queue.(0) <- src;
  sweep t budget ~dist ~queue ~tail:1

let bfs_set_into ?(budget = Bbng_obs.Budgeted.unlimited) t ~sources ~dist ~queue =
  if sources = [] then invalid_arg "Csr.bfs_set_into: empty source set";
  List.iter
    (fun s ->
      if s < 0 || s >= t.n then
        invalid_arg
          (Printf.sprintf "Csr.bfs_set_into: source %d out of range [0,%d)" s t.n))
    sources;
  check_scratch "Csr.bfs_set_into" t ~dist ~queue;
  Bbng_obs.Budgeted.checkpoint budget;
  Array.fill dist 0 t.n (-1);
  let tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    sources;
  sweep t budget ~dist ~queue ~tail:!tail

let max_dist t dist =
  if Array.length dist < t.n then invalid_arg "Csr.max_dist: short dist row";
  let m = ref 0 in
  for v = 0 to t.n - 1 do
    let d = Array.unsafe_get dist v in
    if d > !m then m := d
  done;
  !m
