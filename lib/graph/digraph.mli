(** Directed multigraphs with arc ownership.

    This is the realization object of a bounded budget network creation
    game: vertex [u] {e owns} every arc [u -> v] leaving it.  Both arcs
    [u -> v] and [v -> u] may be present simultaneously; such a pair is
    called a {e brace} in the paper and is treated as a cycle of length 2
    by the structural theorems.  Self-loops and parallel arcs with the
    same head and tail are rejected at construction time, matching the
    game's strategy sets ([S_i] is a subset of the other players).

    Vertices are the integers [0 .. n-1].  The type is immutable: all
    "modifications" in the game layer go through strategy profiles, which
    are re-realized into fresh graphs. *)

type t

(** {1 Construction} *)

val create : n:int -> t
(** [create ~n] is the arcless graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val of_arcs : n:int -> (int * int) list -> t
(** [of_arcs ~n arcs] builds the graph with the given arc list, where
    [(u, v)] denotes the arc [u -> v] owned by [u].
    @raise Invalid_argument on out-of-range endpoints, self-loops, or a
    duplicate arc (same tail and head listed twice). *)

val of_out_neighbors : int array array -> t
(** [of_out_neighbors out] builds the graph on [Array.length out]
    vertices in which vertex [u]'s owned arcs point to [out.(u)].  The
    inner arrays are copied and sorted.  Validation as in {!of_arcs}. *)

(** {1 Size} *)

val n : t -> int
(** Number of vertices. *)

val arc_count : t -> int
(** Total number of arcs (braces count twice). *)

(** {1 Incidence} *)

val out_neighbors : t -> int -> int array
(** [out_neighbors g u] are the heads of arcs owned by [u], sorted
    increasingly.  The returned array must not be mutated. *)

val in_neighbors : t -> int -> int array
(** [in_neighbors g u] are the tails of arcs pointing to [u], sorted
    increasingly.  The returned array must not be mutated. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val degree : t -> int -> int
(** [degree g u] is [out_degree g u + in_degree g u]; a brace partner is
    counted twice, matching multiplicity-2 edges of the underlying
    multigraph [U(G)]. *)

val mem_arc : t -> int -> int -> bool
(** [mem_arc g u v] is [true] iff the arc [u -> v] is present. *)

val arcs : t -> (int * int) list
(** All arcs as [(tail, head)] pairs, in lexicographic order. *)

val iter_arcs : (int -> int -> unit) -> t -> unit

(** {1 Braces} *)

val is_brace : t -> int -> int -> bool
(** [is_brace g u v] is [true] iff both [u -> v] and [v -> u] exist. *)

val braces : t -> (int * int) list
(** All braces as pairs [(u, v)] with [u < v]. *)

val in_some_brace : t -> int -> bool
(** [in_some_brace g u] is [true] iff [u] belongs to some brace; used by
    the Lemma 2.2 best-response short-circuit. *)

(** {1 Transformations} *)

val reverse : t -> t
(** Reverse every arc (ownership flips with direction). *)

val replace_out_neighbors : t -> int -> int array -> t
(** [replace_out_neighbors g u targets] is [g] with all arcs owned by [u]
    replaced by arcs to [targets].  Validation as in {!of_arcs}.  Cost is
    O(n + m); used for single-player deviations. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Structural equality (same vertex count and same arc set). *)

val pp : Format.formatter -> t -> unit
(** Prints ["n=<n>; u->v, ..."], mainly for test failures and the CLI. *)

val to_string : t -> string
