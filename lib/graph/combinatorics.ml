let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        (* acc * (n - k + i) / i is exact at every step. *)
        let num = n - k + i in
        if acc > max_int / num then max_int
        else go (acc * num / i) (i + 1)
    in
    go 1 1
  end

exception Stop

(* Lexicographic successor on index arrays: find the rightmost index
   that can still be advanced, advance it, reset the suffix. *)
let iter_combinations ~n ~k f =
  if k < 0 || n < 0 then invalid_arg "Combinatorics: negative argument";
  if k = 0 then f [||]
  else if k <= n then begin
    let c = Array.init k (fun i -> i) in
    let continue = ref true in
    while !continue do
      f c;
      let i = ref (k - 1) in
      while !i >= 0 && c.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then continue := false
      else begin
        c.(!i) <- c.(!i) + 1;
        for j = !i + 1 to k - 1 do
          c.(j) <- c.(j - 1) + 1
        done
      end
    done
  end

let exists_combination ~n ~k pred =
  try
    iter_combinations ~n ~k (fun c -> if pred c then raise Stop);
    false
  with Stop -> true

let iter_combinations_of elements ~k f =
  let n = Array.length elements in
  if k = 0 then f [||]
  else if k <= n then begin
    let buf = Array.make k elements.(0) in
    iter_combinations ~n ~k (fun c ->
        for i = 0 to k - 1 do
          buf.(i) <- elements.(c.(i))
        done;
        f buf)
  end

let fold_best ~n ~k ~score ?stop_at () =
  let best = ref None in
  (try
     iter_combinations ~n ~k (fun c ->
         let s = score c in
         (match !best with
         | Some (_, b) when b <= s -> ()
         | Some _ | None -> best := Some (Array.copy c, s));
         match stop_at with
         | Some floor when s <= floor -> raise Stop
         | Some _ | None -> ())
   with Stop -> ());
  !best
