type count = Exact of int | Saturated

let count_to_string = function
  | Exact c -> string_of_int c
  | Saturated -> "saturated"

let count_at_most limit = function Exact c -> c <= limit | Saturated -> false

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let binomial n k =
  if k < 0 || k > n then Exact 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then Exact acc
      else
        (* acc * (n - k + i) / i is exact at every step; dividing the
           reduced denominator out of acc *before* multiplying makes the
           overflow check exact too — it trips iff the intermediate
           C(n-k+i, i) itself exceeds max_int, and the intermediates
           increase toward C(n, k), so Saturated means exactly "the true
           value does not fit", never a false alarm on a large
           numerator. *)
        let num = n - k + i in
        let d = gcd num i in
        let num = num / d and den = i / d in
        (* den | acc: acc * num is divisible by i and gcd(num, den) = 1 *)
        let acc = acc / den in
        if acc > max_int / num then Saturated else go (acc * num) (i + 1)
    in
    go 1 1
  end

let binomial_sat n k = match binomial n k with Exact c -> c | Saturated -> max_int

exception Stop

(* Lexicographic rank/unrank over k-subsets of {0..n-1}: the census
   shards a profile space into pure (lo, hi) index ranges, so a shard
   restart needs "the rank-r subset" without replaying r predecessors.
   Both directions are only meaningful on non-saturated spaces; the
   intermediate binomials are then sub-counts of an exact total, hence
   exact themselves. *)

let unrank_combination ~n ~k rank =
  (match binomial n k with
  | Exact total when 0 <= rank && rank < total -> ()
  | Exact _ -> invalid_arg "Combinatorics.unrank_combination: rank out of range"
  | Saturated ->
      invalid_arg "Combinatorics.unrank_combination: saturated subset space");
  let c = Array.make k 0 in
  let rank = ref rank in
  let v = ref 0 in
  for i = 0 to k - 1 do
    (* the subsets starting with value v at slot i form a block of
       C(n - 1 - v, k - 1 - i); walk blocks until the rank falls inside *)
    let rec pick v' =
      let block = binomial_sat (n - 1 - v') (k - 1 - i) in
      if !rank < block then v'
      else begin
        rank := !rank - block;
        pick (v' + 1)
      end
    in
    let chosen = pick !v in
    c.(i) <- chosen;
    v := chosen + 1
  done;
  c

let rank_combination ~n c =
  let k = Array.length c in
  (match binomial n k with
  | Exact _ -> ()
  | Saturated ->
      invalid_arg "Combinatorics.rank_combination: saturated subset space");
  let rank = ref 0 in
  let prev = ref 0 in
  for i = 0 to k - 1 do
    for v = !prev to c.(i) - 1 do
      rank := !rank + binomial_sat (n - 1 - v) (k - 1 - i)
    done;
    prev := c.(i) + 1
  done;
  !rank

let next_combination ~n c =
  let k = Array.length c in
  let i = ref (k - 1) in
  while !i >= 0 && c.(!i) = n - k + !i do
    decr i
  done;
  if !i < 0 then false
  else begin
    c.(!i) <- c.(!i) + 1;
    for j = !i + 1 to k - 1 do
      c.(j) <- c.(j - 1) + 1
    done;
    true
  end

(* Lexicographic successor on index arrays: find the rightmost index
   that can still be advanced, advance it, reset the suffix. *)
let iter_combinations ~n ~k f =
  if k < 0 || n < 0 then invalid_arg "Combinatorics: negative argument";
  if k = 0 then f [||]
  else if k <= n then begin
    let c = Array.init k (fun i -> i) in
    let continue = ref true in
    while !continue do
      f c;
      let i = ref (k - 1) in
      while !i >= 0 && c.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then continue := false
      else begin
        c.(!i) <- c.(!i) + 1;
        for j = !i + 1 to k - 1 do
          c.(j) <- c.(j - 1) + 1
        done
      end
    done
  end

let exists_combination ~n ~k pred =
  try
    iter_combinations ~n ~k (fun c -> if pred c then raise Stop);
    false
  with Stop -> true

let iter_combinations_of elements ~k f =
  let n = Array.length elements in
  if k = 0 then f [||]
  else if k <= n then begin
    let buf = Array.make k elements.(0) in
    iter_combinations ~n ~k (fun c ->
        for i = 0 to k - 1 do
          buf.(i) <- elements.(c.(i))
        done;
        f buf)
  end

let fold_best ~n ~k ~score ?stop_at () =
  let best = ref None in
  (try
     iter_combinations ~n ~k (fun c ->
         let s = score c in
         (match !best with
         | Some (_, b) when b <= s -> ()
         | Some _ | None -> best := Some (Array.copy c, s));
         match stop_at with
         | Some floor when s <= floor -> raise Stop
         | Some _ | None -> ())
   with Stop -> ());
  !best
