let check_positive name v = if v < 0 then invalid_arg (name ^ ": negative size")

(* {1 Deterministic digraphs} *)

let directed_path n =
  check_positive "Generators.directed_path" n;
  Digraph.of_arcs ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let directed_cycle n =
  if n < 2 then invalid_arg "Generators.directed_cycle: n < 2";
  Digraph.of_arcs ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let out_star n =
  if n < 1 then invalid_arg "Generators.out_star: n < 1";
  Digraph.of_arcs ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let in_star n =
  if n < 1 then invalid_arg "Generators.in_star: n < 1";
  Digraph.of_arcs ~n (List.init (n - 1) (fun i -> (i + 1, 0)))

let spider ~legs ~leg_len =
  if legs < 1 || leg_len < 1 then invalid_arg "Generators.spider: legs and leg_len must be >= 1";
  let hub = legs * leg_len in
  let arcs = ref [] in
  for leg = 0 to legs - 1 do
    let base = leg * leg_len in
    arcs := (base, hub) :: !arcs;
    for p = 0 to leg_len - 2 do
      arcs := (base + p, base + p + 1) :: !arcs
    done
  done;
  Digraph.of_arcs ~n:(hub + 1) !arcs

let tripod k =
  if k < 1 then invalid_arg "Generators.tripod: k < 1";
  spider ~legs:3 ~leg_len:k

let perfect_binary_tree k =
  if k < 0 then invalid_arg "Generators.perfect_binary_tree: negative depth";
  let n = (1 lsl (k + 1)) - 1 in
  let arcs = ref [] in
  for i = 0 to n - 1 do
    if (2 * i) + 1 < n then arcs := (i, (2 * i) + 1) :: !arcs;
    if (2 * i) + 2 < n then arcs := (i, (2 * i) + 2) :: !arcs
  done;
  Digraph.of_arcs ~n !arcs

let broom ~handle ~bristles =
  if handle < 1 || bristles < 0 then invalid_arg "Generators.broom: bad sizes";
  let n = handle + bristles in
  let arcs = ref [] in
  for i = 0 to handle - 2 do
    arcs := (i, i + 1) :: !arcs
  done;
  for b = 0 to bristles - 1 do
    arcs := (handle - 1, handle + b) :: !arcs
  done;
  Digraph.of_arcs ~n !arcs

let complete_digraph n =
  check_positive "Generators.complete_digraph" n;
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      arcs := (u, v) :: !arcs
    done
  done;
  Digraph.of_arcs ~n !arcs

(* {1 Shift graph (Lemma 5.2)} *)

let shift_graph_size ~t ~k =
  if t < 2 || k < 1 then invalid_arg "Generators.shift_graph: need t >= 2, k >= 1";
  let rec power acc i =
    if i = 0 then acc
    else begin
      let acc = acc * t in
      if acc > 1 lsl 22 then invalid_arg "Generators.shift_graph: t^k too large";
      power acc (i - 1)
    end
  in
  power 1 k

(* Vertices are base-t encodings, most significant digit first.  x ~ y
   iff y = a * t^(k-1) + x / t (y's suffix is x's prefix) or
   y = (x mod t^(k-1)) * t + a (y's prefix is x's suffix). *)
let shift_neighbors ~t ~k x =
  let high = ref 1 in
  for _ = 2 to k do
    high := !high * t
  done;
  let high = !high in
  let nbrs = ref [] in
  for a = 0 to t - 1 do
    let y1 = (a * high) + (x / t) in
    let y2 = ((x mod high) * t) + a in
    if y1 <> x then nbrs := y1 :: !nbrs;
    if y2 <> x then nbrs := y2 :: !nbrs
  done;
  List.sort_uniq compare !nbrs

let shift_graph ~t ~k =
  let n = shift_graph_size ~t ~k in
  let edges = ref [] in
  for x = 0 to n - 1 do
    List.iter (fun y -> if x < y then edges := (x, y) :: !edges) (shift_neighbors ~t ~k x)
  done;
  Undirected.of_edges ~n !edges

let shift_graph_orientation ~t ~k =
  let g = shift_graph ~t ~k in
  let n = Undirected.n g in
  (* Pass 1: each vertex claims the edge to its smallest neighbor, giving
     everyone out-degree >= 1.  Pass 2: unclaimed edges go to their
     smaller endpoint. *)
  let arcs = Hashtbl.create (4 * n) in
  for u = 0 to n - 1 do
    let nbrs = Undirected.neighbors g u in
    if Array.length nbrs = 0 then
      invalid_arg "Generators.shift_graph_orientation: isolated vertex";
    Hashtbl.replace arcs (u, nbrs.(0)) ()
  done;
  Undirected.iter_edges
    (fun u v ->
      if not (Hashtbl.mem arcs (u, v)) && not (Hashtbl.mem arcs (v, u)) then
        Hashtbl.replace arcs (u, v) ())
    g;
  Digraph.of_arcs ~n (Hashtbl.fold (fun arc () acc -> arc :: acc) arcs [])

(* {1 Undirected families} *)

let path_graph n =
  check_positive "Generators.path_graph" n;
  Undirected.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle_graph n =
  if n < 3 then invalid_arg "Generators.cycle_graph: n < 3";
  Undirected.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let star_graph n =
  if n < 1 then invalid_arg "Generators.star_graph: n < 1";
  Undirected.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete_graph n = Undirected.of_digraph (complete_digraph n)

let grid_graph ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid_graph: bad sizes";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Undirected.of_edges ~n:(rows * cols) !edges

(* {1 Random workloads} *)

let random_gnp rng ~n ~p =
  check_positive "Generators.random_gnp" n;
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.random_gnp: p out of [0,1]";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Undirected.of_edges ~n !edges

let random_connected_gnp rng ~n ~p =
  let g = random_gnp rng ~n ~p in
  let l = Components.components g in
  if l.count <= 1 then g
  else begin
    let pick_member id =
      let members = Components.component_members l id in
      List.nth members (Random.State.int rng (List.length members))
    in
    let extra = ref [] in
    for id = 1 to l.count - 1 do
      extra := (pick_member (id - 1), pick_member id) :: !extra
    done;
    Undirected.of_edges ~n (!extra @ Undirected.edges g)
  end

let random_tree rng n =
  if n < 1 then invalid_arg "Generators.random_tree: n < 1";
  if n = 1 then Undirected.of_edges ~n []
  else if n = 2 then Undirected.of_edges ~n [ (0, 1) ]
  else begin
    (* Prüfer decoding. *)
    let seq = Array.init (n - 2) (fun _ -> Random.State.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let edges = ref [] in
    (* Min-leaf selection via a scan pointer + "reusable leaf" trick. *)
    let ptr = ref 0 in
    while deg.(!ptr) <> 1 do
      incr ptr
    done;
    let leaf = ref !ptr in
    Array.iter
      (fun v ->
        edges := (!leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 && v < !ptr then leaf := v
        else begin
          incr ptr;
          while deg.(!ptr) <> 1 do
            incr ptr
          done;
          leaf := !ptr
        end)
      seq;
    (* Two vertices of degree 1 remain; connect the last leaf to n-1. *)
    edges := (!leaf, n - 1) :: !edges;
    Undirected.of_edges ~n !edges
  end

let random_regularish rng ~n ~degree =
  if degree < 0 || degree >= n then
    invalid_arg "Generators.random_regularish: need 0 <= degree < n";
  let edges = ref [] in
  for u = 0 to n - 1 do
    let chosen = Hashtbl.create degree in
    while Hashtbl.length chosen < degree do
      let v = Random.State.int rng n in
      if v <> u && not (Hashtbl.mem chosen v) then begin
        Hashtbl.replace chosen v ();
        edges := (u, v) :: !edges
      end
    done
  done;
  Undirected.of_edges ~n !edges
