(** Underlying undirected graphs.

    [U(G)] in the paper: arc directions are dropped and a brace becomes a
    single undirected edge for the purpose of {e distances} (multiplicity
    never changes shortest paths).  Structural facts that depend on
    multiplicity (Theorems 4.1/4.2 treat a brace as a 2-cycle) query the
    original {!Digraph.t} instead.

    The adjacency lists are deduplicated and sorted, so this type is also
    the general-purpose simple-undirected-graph of the substrate, usable
    on its own (e.g. for k-center instances). *)

type t

val of_digraph : Digraph.t -> t
(** Underlying graph of a realization. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a simple graph; edges are unordered pairs,
    duplicates are merged, self-loops rejected.
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val n : t -> int

val id : t -> int
(** Process-unique build stamp.  Graphs are immutable, so the stamp is
    also a version: derived snapshots ({!Csr.t}) cache against it and
    can never go stale.  Not a structural hash — two [equal] graphs
    built separately have different ids. *)

val edge_count : t -> int
(** Number of distinct undirected edges. *)

val neighbors : t -> int -> int array
(** Sorted, duplicate-free.  Must not be mutated by callers. *)

val degree : t -> int -> int
val max_degree : t -> int
val min_degree : t -> int
val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], lexicographic. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each edge visited once, with [u < v]. *)

val remove_vertices : t -> int list -> t
(** [remove_vertices g vs] is the induced subgraph on [V \ vs], with the
    surviving vertices {e keeping their original indices}; removed
    vertices remain present but isolated.  This keeps index bookkeeping
    trivial for connectivity checks (Section 7), where we only ask
    whether the remainder is connected {e ignoring} the removed
    vertices — see {!Components.is_connected_except}. *)

val complement : t -> t
(** Simple complement graph (no self-loops). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
