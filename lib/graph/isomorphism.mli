(** Graph isomorphism for small graphs.

    The equilibrium-enumeration experiments produce hundreds of
    profiles whose realizations differ only by relabelling; reporting
    "#equilibria up to isomorphism" needs an exact isomorphism test.
    The implementation is classical: iterated degree refinement to
    produce a color partition, then backtracking search over
    color-respecting bijections.  Exponential in the worst case, fine
    for the [n <= 12] graphs the experiments enumerate.

    Both the undirected and the arc-owned digraph notions are provided;
    digraph isomorphism preserves arc direction (hence ownership
    structure), which is the right equivalence for strategy profiles. *)

val undirected_isomorphic : Undirected.t -> Undirected.t -> bool

val digraph_isomorphic : Digraph.t -> Digraph.t -> bool

val find_undirected_isomorphism : Undirected.t -> Undirected.t -> int array option
(** A vertex bijection [pi] with [u ~ v] iff [pi u ~ pi v], if any. *)

val find_digraph_isomorphism : Digraph.t -> Digraph.t -> int array option

val canonical_key_undirected : Undirected.t -> string
(** A label-invariant certificate: two graphs on the same vertex count
    share the key iff {e likely} isomorphic — the key is the
    lexicographically smallest adjacency encoding over color-respecting
    relabellings, so equality is exact (not a hash). Exponential in the
    worst case; intended for [n <= 12]. *)

val dedup_digraphs : Digraph.t list -> Digraph.t list
(** Representatives of each isomorphism class, preserving first
    occurrences (quadratic in the list length). *)
