type t = {
  n : int;
  out : int array array;
  in_ : int array array;
  arc_count : int;
}

let check_vertex n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Digraph: vertex %d out of range [0,%d)" u n)

(* Sorts [a] in place and checks it is duplicate-free and a valid target
   set for [u]: no self-loop, all in range. *)
let normalize_targets n u a =
  Array.sort compare a;
  Array.iteri
    (fun i v ->
      check_vertex n v;
      if v = u then invalid_arg (Printf.sprintf "Digraph: self-loop at %d" u);
      if i > 0 && a.(i - 1) = v then
        invalid_arg (Printf.sprintf "Digraph: duplicate arc %d->%d" u v))
    a;
  a

let of_out_neighbors out =
  let n = Array.length out in
  let out = Array.mapi (fun u a -> normalize_targets n u (Array.copy a)) out in
  let in_deg = Array.make n 0 in
  Array.iter (Array.iter (fun v -> in_deg.(v) <- in_deg.(v) + 1)) out;
  let in_ = Array.map (fun d -> Array.make d 0) in_deg in
  let fill = Array.make n 0 in
  (* Tails are visited in increasing order, so each in_ array ends up
     sorted without an extra pass. *)
  Array.iteri
    (fun u targets ->
      Array.iter
        (fun v ->
          in_.(v).(fill.(v)) <- u;
          fill.(v) <- fill.(v) + 1)
        targets)
    out;
  let arc_count = Array.fold_left (fun acc a -> acc + Array.length a) 0 out in
  { n; out; in_; arc_count }

let create ~n =
  if n < 0 then invalid_arg "Digraph.create: negative n";
  { n; out = Array.make n [||]; in_ = Array.make n [||]; arc_count = 0 }

let of_arcs ~n arcs =
  if n < 0 then invalid_arg "Digraph.of_arcs: negative n";
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      deg.(u) <- deg.(u) + 1)
    arcs;
  let out = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1)
    arcs;
  of_out_neighbors out

let n g = g.n
let arc_count g = g.arc_count
let out_neighbors g u = check_vertex g.n u; g.out.(u)
let in_neighbors g u = check_vertex g.n u; g.in_.(u)
let out_degree g u = Array.length (out_neighbors g u)
let in_degree g u = Array.length (in_neighbors g u)
let degree g u = out_degree g u + in_degree g u

(* Binary search in a sorted int array. *)
let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let mem_arc g u v =
  check_vertex g.n u;
  check_vertex g.n v;
  mem_sorted g.out.(u) v

let iter_arcs f g =
  Array.iteri (fun u targets -> Array.iter (fun v -> f u v) targets) g.out

let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let targets = g.out.(u) in
    for i = Array.length targets - 1 downto 0 do
      acc := (u, targets.(i)) :: !acc
    done
  done;
  !acc

let is_brace g u v = mem_arc g u v && mem_arc g v u

let braces g =
  let acc = ref [] in
  iter_arcs (fun u v -> if u < v && mem_sorted g.out.(v) u then acc := (u, v) :: !acc) g;
  List.rev !acc

let in_some_brace g u =
  Array.exists (fun v -> mem_sorted g.out.(v) u) g.out.(u)

let reverse g =
  (* in_ arrays are already sorted, so they are valid out-neighbor sets. *)
  { n = g.n; out = Array.map Array.copy g.in_; in_ = Array.map Array.copy g.out;
    arc_count = g.arc_count }

let replace_out_neighbors g u targets =
  check_vertex g.n u;
  let out = Array.copy g.out in
  out.(u) <- targets;
  of_out_neighbors out

let equal g1 g2 =
  g1.n = g2.n && g1.out = g2.out

let pp ppf g =
  Format.fprintf ppf "n=%d;" g.n;
  iter_arcs (fun u v -> Format.fprintf ppf " %d->%d" u v) g

let to_string g = Format.asprintf "%a" pp g
