let parse_header expected_kind line =
  match String.split_on_char ' ' (String.trim line) with
  | [ kind; n ] when kind = expected_kind -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | Some _ | None ->
          invalid_arg (Printf.sprintf "Serialize: bad vertex count %S" n))
  | _ ->
      invalid_arg
        (Printf.sprintf "Serialize: expected header %S <n>, got %S" expected_kind
           line)

let parse_pairs lines =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match String.split_on_char ' ' line with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v -> Some (u, v)
            | _ -> invalid_arg (Printf.sprintf "Serialize: bad line %S" line))
        | _ -> invalid_arg (Printf.sprintf "Serialize: bad line %S" line))
    lines

let split_header text =
  match String.split_on_char '\n' text with
  | [] -> invalid_arg "Serialize: empty input"
  | header :: rest -> (header, rest)

module Digraph_io = struct
  let to_text g =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "digraph %d\n" (Digraph.n g));
    Digraph.iter_arcs (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
    Buffer.contents buf

  let of_text text =
    let header, rest = split_header text in
    let n = parse_header "digraph" header in
    Digraph.of_arcs ~n (parse_pairs rest)

  let to_dot ?(name = "g") g =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
    for v = 0 to Digraph.n g - 1 do
      Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
    done;
    Digraph.iter_arcs
      (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" u v))
      g;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
end

module Undirected_io = struct
  let to_text g =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "graph %d\n" (Undirected.n g));
    Undirected.iter_edges
      (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
      g;
    Buffer.contents buf

  let of_text text =
    let header, rest = split_header text in
    let n = parse_header "graph" header in
    Undirected.of_edges ~n (parse_pairs rest)

  let to_dot ?(name = "g") g =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
    for v = 0 to Undirected.n g - 1 do
      Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
    done;
    Undirected.iter_edges
      (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
      g;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
end
