(** Subset enumeration utilities.

    Strategy spaces in the game are exactly the [b]-subsets of the other
    [n-1] players, and the k-center / k-median exact solvers enumerate
    [k]-subsets of vertices, so subset iteration is shared substrate. *)

type count = Exact of int | Saturated
    (** A subset-space cardinality.  [Saturated] marks a value that
        overflowed the native int range: it is an explicit "too many to
        count" answer, never a silently wrong number.  Certificate
        [candidates] fields carry this distinction so a verifier can tell
        "scanned all 406" apart from "space too large to have scanned". *)

val count_to_string : count -> string
(** Decimal digits for [Exact], ["saturated"] otherwise. *)

val count_at_most : int -> count -> bool
(** [count_at_most limit c] is [true] iff [c] is exact and [<= limit].
    A saturated count is never within any int limit. *)

val binomial : int -> int -> count
(** [binomial n k]; [Exact 0] when [k < 0] or [k > n]; [Saturated] when
    the true value exceeds [max_int]. *)

val binomial_sat : int -> int -> int
(** Saturating convenience for work *estimates* (scheduling, progress
    bars): [max_int] on overflow.  Anything user-visible or verified must
    use [binomial] and handle [Saturated] explicitly. *)

val unrank_combination : n:int -> k:int -> int -> int array
(** [unrank_combination ~n ~k r] is the rank-[r] (0-based) subset in the
    lexicographic order {!iter_combinations} uses, as a fresh sorted
    array.  This is what lets a census shard start mid-space without
    replaying its predecessors.
    @raise Invalid_argument if the space is saturated or [r] is outside
    [[0, C(n,k))]. *)

val rank_combination : n:int -> int array -> int
(** Inverse of {!unrank_combination} on sorted subsets of [{0..n-1}].
    @raise Invalid_argument if the space is saturated. *)

val next_combination : n:int -> int array -> bool
(** In-place lexicographic successor; [false] (array untouched) on the
    last subset.  Together with {!unrank_combination} this gives
    resumable iteration from an arbitrary rank. *)

val iter_combinations : n:int -> k:int -> (int array -> unit) -> unit
(** [iter_combinations ~n ~k f] calls [f] once per size-[k] subset of
    [{0, ..., n-1}], in lexicographic order, passing the subset as a
    sorted array.  The array is reused between calls: callers must copy
    if they retain it.  [f] is called once with [[||]] when [k = 0], and
    never when [k > n].
    @raise Invalid_argument if [k < 0] or [n < 0]. *)

val exists_combination : n:int -> k:int -> (int array -> bool) -> bool
(** Short-circuiting variant: [true] iff some subset satisfies the
    predicate.  Same reuse caveat. *)

val iter_combinations_of : 'a array -> k:int -> ('a array -> unit) -> unit
(** Subsets of an arbitrary element array (elements in input order);
    same reuse caveat. *)

val fold_best :
  n:int -> k:int -> score:(int array -> int) -> ?stop_at:int -> unit ->
  (int array * int) option
(** Minimizes [score] over all [k]-subsets; returns the first best
    subset (copied) and its score.  If [stop_at] is given, stops early
    as soon as a subset scoring [<= stop_at] is found (used with the
    Lemma 2.2 cost floor).  [None] iff there are no subsets. *)
