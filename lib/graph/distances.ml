type sum_result = { sum : int; unreachable : int }

let c_sweeps = Bbng_obs.Counter.make "distances.full_sweeps"
let c_ifub_sweeps = Bbng_obs.Counter.make "distances.ifub_bfs"
let c_ifub_pruned = Bbng_obs.Counter.make "distances.ifub_pruned"

let eccentricity_of_row row =
  let ecc = ref 0 and ok = ref true in
  Array.iter
    (fun d -> if d = Bfs.unreachable then ok := false else if d > !ecc then ecc := d)
    row;
  if !ok then Some !ecc else None

let eccentricity ?budget g u = eccentricity_of_row (Bfs.distances ?budget g u)

(* The aggregate sweeps below share one scratch (dist row + frontier)
   across all n BFS runs of a call, so the per-sweep allocation is
   zero; only entry points that hand rows to the caller ([all_pairs],
   [distance_sum]) still materialize them.  ?budget is threaded into
   every sweep — the PR-4 invariant: a census-scale aggregate stops at
   the next sweep boundary with {!Bbng_obs.Budgeted.Expired}, which
   budget-aware callers catch ({!Bbng_obs.Budgeted.guard}). *)

let fold_eccentricities ?budget g f init =
  Bbng_obs.Counter.bump c_sweeps;
  let n = Undirected.n g in
  if n = 0 then Some init
  else begin
    let csr = Csr.snapshot g in
    let dist = Array.make n Bfs.unreachable and queue = Array.make n 0 in
    let rec go u acc =
      if u >= n then Some acc
      else if Csr.bfs_into ?budget csr ~src:u ~dist ~queue < n then None
      else go (u + 1) (f acc u (Csr.max_dist csr dist))
    in
    go 0 init
  end

(* iFUB (iterative fringe upper bound) diameter, 4-sweep variant: a
   double sweep from a max-degree seed finds a distant pair [(a, b)]
   (their eccentricities seed the lower bound), the levels are then
   rooted at the *midpoint* of an a-b shortest path — a near-center
   vertex, so [ecc_root ~ diam/2] and [lb >= 2 * level] certifies the
   bound after few (often zero) fringe sweeps.  Remaining fringe
   vertices are processed deepest level first, each BFS raising the
   lower bound, until [lb >= 2 * i] proves that any pair confined to
   levels <= i — all that remains — is within [lb] through the root.
   On small-world graphs the loop stops after a handful of sweeps
   instead of n (distances.ifub_pruned counts the vertices never
   swept); the adversarial worst case (even cycles) degrades to the
   old full all-eccentricities scan. *)
let diameter ?budget g =
  let n = Undirected.n g in
  if n = 0 then Some 0
  else begin
    Bbng_obs.Counter.bump c_sweeps;
    let csr = Csr.snapshot g in
    let dist = Array.make n Bfs.unreachable and queue = Array.make n 0 in
    let sweep src = Csr.bfs_into ?budget csr ~src ~dist ~queue in
    let seed = ref 0 in
    for u = 1 to n - 1 do
      if Csr.degree csr u > Csr.degree csr !seed then seed := u
    done;
    if sweep !seed < n then None
    else begin
      (* per-vertex eccentricity upper bounds, tightened by every sweep:
         ecc(v) <= d(w, v) + ecc(w) for any swept w (Takes-Kosters).
         Fringe vertices whose bound sinks to lb are skipped — their
         pairs are already certified within lb *)
      let ub = Array.make n max_int in
      let absorb row e =
        for v = 0 to n - 1 do
          let b = row.(v) + e in
          if b < ub.(v) then ub.(v) <- b
        done
      in
      let ds = Array.copy dist in
      let ecc_seed = Csr.max_dist csr ds in
      absorb ds ecc_seed;
      let a = ref !seed in
      for v = 0 to n - 1 do
        if ds.(v) > ds.(!a) then a := v
      done;
      let a = !a in
      ignore (sweep a);
      Bbng_obs.Counter.bump c_ifub_sweeps;
      let da = Array.copy dist in
      let ecc_a = Csr.max_dist csr da in
      absorb da ecc_a;
      let b = ref a in
      for v = 0 to n - 1 do
        if da.(v) > da.(!b) then b := v
      done;
      let b = !b in
      ignore (sweep b);
      Bbng_obs.Counter.bump c_ifub_sweeps;
      let ecc_b = Csr.max_dist csr dist in
      absorb dist ecc_b;
      let lb = ref (max ecc_seed (max ecc_a ecc_b)) in
      (* midpoint of an a-b shortest path: on it and halfway along, as
         witnessed by the two distance rows ([dist] currently = from b) *)
      let d_ab = da.(b) in
      let half = (d_ab + 1) / 2 in
      let mid = ref a in
      for v = 0 to n - 1 do
        if da.(v) = half && dist.(v) = d_ab - half then mid := v
      done;
      let mid = !mid in
      ignore (sweep mid);
      Bbng_obs.Counter.bump c_ifub_sweeps;
      let dm = dist in
      let ecc_mid = Csr.max_dist csr dm in
      absorb dm ecc_mid;
      if ecc_mid > !lb then lb := ecc_mid;
      (* root choice: the fringe loop below sweeps every vertex deeper
         than lb/2 from the root, so of the two leveled candidates —
         the max-degree seed and the a-b midpoint — take the one whose
         lb/2-ball covers more of the graph (the hub on dense
         small-world graphs, the midpoint on path-like ones) *)
      let r = !lb / 2 in
      let deep_seed = ref 0 and deep_mid = ref 0 in
      for v = 0 to n - 1 do
        if ds.(v) > r then incr deep_seed;
        if dm.(v) > r then incr deep_mid
      done;
      let levels = da in
      if !deep_seed < !deep_mid then Array.blit ds 0 levels 0 n
      else Array.blit dm 0 levels 0 n;
      let ecc_root = Csr.max_dist csr levels in
      (* counting sort of the vertices by decreasing root level *)
      let count = Array.make (ecc_root + 1) 0 in
      for v = 0 to n - 1 do
        count.(levels.(v)) <- count.(levels.(v)) + 1
      done;
      let next = Array.make (ecc_root + 1) 0 in
      let idx = ref 0 in
      for l = ecc_root downto 0 do
        next.(l) <- !idx;
        idx := !idx + count.(l)
      done;
      let order = Array.make n 0 in
      for v = 0 to n - 1 do
        let l = levels.(v) in
        order.(next.(l)) <- v;
        next.(l) <- next.(l) + 1
      done;
      let i = ref ecc_root and pos = ref 0 in
      while !i > 0 && !lb < 2 * !i do
        (* re-check the bound after every sweep, not just per level:
           stopping mid-level is sound because every unprocessed vertex
           already sits at level <= i *)
        while !pos < n && levels.(order.(!pos)) = !i && !lb < 2 * !i do
          let v = order.(!pos) in
          incr pos;
          (* a and b were already swept (their eccentricities seed lb);
             a vertex whose upper bound sank to lb is certified *)
          if v <> a && v <> b && ub.(v) > !lb then begin
            ignore (sweep v);
            Bbng_obs.Counter.bump c_ifub_sweeps;
            let e = Csr.max_dist csr dist in
            absorb dist e;
            if e > !lb then lb := e
          end
        done;
        decr i
      done;
      if !pos < n then Bbng_obs.Counter.add c_ifub_pruned (n - !pos);
      Some !lb
    end
  end

let radius ?budget g =
  if Undirected.n g = 0 then Some 0
  else fold_eccentricities ?budget g (fun acc _ e -> min acc e) max_int

let center ?budget g =
  let n = Undirected.n g in
  if n = 0 then []
  else
    let eccs = Array.make n 0 in
    match fold_eccentricities ?budget g (fun () u e -> eccs.(u) <- e) () with
    | None -> []
    | Some () ->
        let r = Array.fold_left min max_int eccs in
        let acc = ref [] in
        for u = n - 1 downto 0 do
          if eccs.(u) = r then acc := u :: !acc
        done;
        !acc

let distance_sum ?budget g u =
  let row = Bfs.distances ?budget g u in
  let sum = ref 0 and unreachable = ref 0 in
  Array.iter
    (fun d -> if d = Bfs.unreachable then incr unreachable else sum := !sum + d)
    row;
  { sum = !sum; unreachable = !unreachable }

let wiener_index ?budget g =
  let n = Undirected.n g in
  if n = 0 then Some 0
  else begin
    let csr = Csr.snapshot g in
    let dist = Array.make n Bfs.unreachable and queue = Array.make n 0 in
    let rec go u acc =
      if u >= n then Some (acc / 2)
      else if Csr.bfs_into ?budget csr ~src:u ~dist ~queue < n then None
      else begin
        let sum = ref 0 in
        for v = 0 to n - 1 do
          sum := !sum + Array.unsafe_get dist v
        done;
        go (u + 1) (acc + !sum)
      end
    in
    go 0 0
  end

let all_pairs ?budget g =
  Bbng_obs.Counter.bump c_sweeps;
  Bbng_obs.Span.time "distances.all_pairs" (fun () ->
      Array.init (Undirected.n g) (Bfs.distances ?budget g))

let diameter_of_matrix m =
  if Array.length m = 0 then Some 0
  else
    Array.fold_left
      (fun acc row ->
        match (acc, eccentricity_of_row row) with
        | Some d, Some e -> Some (max d e)
        | _, _ -> None)
      (Some 0) m

let farthest ?budget g u =
  let row = Bfs.distances ?budget g u in
  let best_v = ref u and best_d = ref 0 in
  Array.iteri
    (fun v d -> if d <> Bfs.unreachable && d > !best_d then begin best_v := v; best_d := d end)
    row;
  (!best_v, !best_d)
